//! Storage-engine microbenchmarks: clustered B-tree inserts, point
//! lookups, range scans, and the cursor-vs-scan access patterns that
//! underpin the §2.6 observations.

use criterion::{criterion_group, criterion_main, Criterion};
use stardb::buffer::{BufferPool, DiskProfile};
use stardb::btree::BTree;
use stardb::store::MemStore;
use std::hint::black_box;
use std::ops::Bound;
use std::sync::Arc;

fn tree_with(n: u64) -> BTree {
    let pool = Arc::new(BufferPool::new(Arc::new(MemStore::new()), 8192, DiskProfile::instant()));
    let mut t = BTree::create(pool).unwrap();
    for i in 0..n {
        t.insert(&i.to_be_bytes(), &[0u8; 48]).unwrap();
    }
    t
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.sample_size(20);

    group.bench_function("insert_10k_sequential", |b| {
        b.iter(|| black_box(tree_with(10_000).len()))
    });

    let tree = tree_with(100_000);
    group.bench_function("get_hot_100k", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 7919) % 100_000;
            black_box(tree.get(&k.to_be_bytes()).unwrap())
        })
    });

    group.bench_function("range_scan_1k_of_100k", |b| {
        b.iter(|| {
            let mut n = 0u64;
            tree.scan_range_with(
                Bound::Included(&40_000u64.to_be_bytes()[..]),
                Bound::Excluded(&41_000u64.to_be_bytes()[..]),
                |_, _| {
                    n += 1;
                    true
                },
            )
            .unwrap();
            black_box(n)
        })
    });

    // The cursor pattern: one descent per row (the paper's "SQL cursors
    // ... are very slow").
    group.bench_function("cursor_style_1k_descents", |b| {
        b.iter(|| {
            let mut last: Option<Vec<u8>> = None;
            for _ in 0..1_000 {
                let lo = match &last {
                    None => Bound::Unbounded,
                    Some(k) => Bound::Excluded(k.as_slice()),
                };
                let mut hit = None;
                tree.scan_range_with(lo, Bound::Unbounded, |k, _| {
                    hit = Some(k.to_vec());
                    false
                })
                .unwrap();
                last = hit;
            }
            black_box(last)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_btree);
criterion_main!(benches);
