//! Per-galaxy cost of `fBCGCandidate` — the operation Table 1 shows
//! dominating the pipeline — with and without the early χ² filter (§2.6).

use criterion::{criterion_group, criterion_main, Criterion};
use maxbcg::candidate::f_bcg_candidate;
use maxbcg::import::{galaxy_from_payload, sp_import_galaxy};
use maxbcg::schema::create_schema;
use maxbcg::zone_task::sp_zone;
use skycore::bcg::BcgParams;
use skycore::kcorr::{KcorrConfig, KcorrTable};
use skycore::types::Galaxy;
use skycore::{SkyRegion, ZoneScheme};
use skysim::{Sky, SkyConfig};
use stardb::{Database, DbConfig, Value};
use std::hint::black_box;

struct Fixture {
    db: Database,
    kcorr: KcorrTable,
    scheme: ZoneScheme,
    sample: Vec<Galaxy>,
}

fn fixture() -> Fixture {
    let kcorr = KcorrTable::generate(KcorrConfig::sql());
    let region = SkyRegion::new(180.0, 181.0, -0.5, 0.5);
    let sky = Sky::generate(region, &SkyConfig::scaled(0.5), &kcorr, 7);
    let mut db = Database::new(DbConfig::in_memory());
    create_schema(&mut db, &kcorr).unwrap();
    sp_import_galaxy(&mut db, &sky, &region).unwrap();
    let scheme = ZoneScheme::default();
    sp_zone(&mut db, &scheme).unwrap();
    // A representative galaxy sample, as the engine sees them.
    let sample = sky
        .galaxies
        .iter()
        .step_by(sky.galaxies.len() / 64)
        .map(|g| {
            let row = db.get("Galaxy", &[Value::BigInt(g.objid)]).unwrap().unwrap();
            galaxy_from_payload(&row.encode())
        })
        .collect();
    Fixture { db, kcorr, scheme, sample }
}

fn bench_candidate(c: &mut Criterion) {
    let f = fixture();
    let params = BcgParams::default();
    let mut group = c.benchmark_group("fBCGCandidate");
    group.sample_size(10);
    group.bench_function("early_filter", |b| {
        b.iter(|| {
            for g in &f.sample {
                black_box(
                    f_bcg_candidate(&f.db, None, &f.kcorr, &f.scheme, &params, g, true).unwrap(),
                );
            }
        })
    });
    group.bench_function("deferred_filter", |b| {
        b.iter(|| {
            for g in &f.sample {
                black_box(
                    f_bcg_candidate(&f.db, None, &f.kcorr, &f.scheme, &params, g, false).unwrap(),
                );
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_candidate);
criterion_main!(benches);
