//! Microbenchmark behind §2.3's design choice: zone-indexed neighbor
//! search vs the HTM index vs the TAM-style brute-force scan, at survey
//! density (Criterion companion of the `ablation_spatial` binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use htm::HtmIndex;
use maxbcg::neighbors::nearby_obj_eq_zd;
use maxbcg::schema::create_schema;
use maxbcg::zone_task::sp_zone;
use skycore::angle::chord2_of_deg;
use skycore::kcorr::{KcorrConfig, KcorrTable};
use skycore::{SkyRegion, UnitVec, ZoneScheme};
use skysim::{Sky, SkyConfig};
use stardb::{Database, DbConfig};
use std::hint::black_box;

struct Fixture {
    db: Database,
    scheme: ZoneScheme,
    htm: HtmIndex,
    positions: Vec<UnitVec>,
    queries: Vec<(f64, f64)>,
}

fn fixture() -> Fixture {
    let kcorr = KcorrTable::generate(KcorrConfig::sql());
    let region = SkyRegion::new(180.0, 181.5, -0.75, 0.75);
    // Half the paper's density: ~7000 galaxies/deg² over 2.25 deg².
    let sky = Sky::generate(region, &SkyConfig::scaled(0.5), &kcorr, 99);
    let mut db = Database::new(DbConfig::in_memory());
    create_schema(&mut db, &kcorr).unwrap();
    maxbcg::import::sp_import_galaxy(&mut db, &sky, &region).unwrap();
    let scheme = ZoneScheme::default();
    sp_zone(&mut db, &scheme).unwrap();
    let htm = HtmIndex::build(sky.galaxies.iter().map(|g| (g.objid, g.ra, g.dec)), 12);
    let positions = sky.galaxies.iter().map(|g| g.unit_vec()).collect();
    let interior = region.shrunk(0.45);
    let queries = sky
        .galaxies
        .iter()
        .filter(|g| interior.contains(g.ra, g.dec))
        .step_by(200)
        .map(|g| (g.ra, g.dec))
        .collect();
    Fixture { db, scheme, htm, positions, queries }
}

fn bench_neighbor_search(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("neighbor_search");
    group.sample_size(20);
    for radius in [0.1, 0.42] {
        group.bench_with_input(BenchmarkId::new("zone", radius), &radius, |b, &r| {
            b.iter(|| {
                for &(ra, dec) in &f.queries {
                    black_box(nearby_obj_eq_zd(&f.db, &f.scheme, ra, dec, r).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("htm", radius), &radius, |b, &r| {
            b.iter(|| {
                for &(ra, dec) in &f.queries {
                    black_box(f.htm.within(ra, dec, r));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("brute_force", radius), &radius, |b, &r| {
            b.iter(|| {
                let r2 = chord2_of_deg(r);
                for &(ra, dec) in &f.queries {
                    let center = UnitVec::from_radec(ra, dec);
                    black_box(f.positions.iter().filter(|p| center.chord2(p) < r2).count());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_neighbor_search);
criterion_main!(benches);
