//! The Table 1 experiment as a Criterion benchmark: the full pipeline
//! sequentially vs 3-way zone-partitioned, on a small sky.

use criterion::{criterion_group, criterion_main, Criterion};
use maxbcg::{run_partitioned, IterationMode, MaxBcgConfig, MaxBcgDb};
use skycore::kcorr::KcorrTable;
use skycore::SkyRegion;
use skysim::{Sky, SkyConfig};
use std::hint::black_box;

fn bench_partitioning(c: &mut Criterion) {
    let config = MaxBcgConfig { iteration: IterationMode::SetBased, ..Default::default() };
    let kcorr = KcorrTable::generate(config.kcorr);
    let import = SkyRegion::new(180.0, 182.0, -2.0, 2.0);
    let candidates = import.shrunk(0.5);
    let sky = Sky::generate(import, &SkyConfig::scaled(0.1), &kcorr, 31);

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut db = MaxBcgDb::new(config).unwrap();
            black_box(db.run("seq", &sky, &import, &candidates).unwrap())
        })
    });
    group.bench_function("partitioned_3way", |b| {
        b.iter(|| black_box(run_partitioned(&config, &sky, &import, &candidates, 3).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioning);
criterion_main!(benches);
