//! Per-field cost of the TAM pipeline at the paper's production settings
//! vs the SQL-equivalent physics (Table 2's measured factor), plus the
//! field file codec.

use criterion::{criterion_group, criterion_main, Criterion};
use skycore::bcg::BcgParams;
use skycore::kcorr::{KcorrConfig, KcorrTable};
use skycore::SkyRegion;
use skysim::{Sky, SkyConfig};
use std::hint::black_box;
use tam::pipeline::process_field;

fn bench_tam_field(c: &mut Criterion) {
    let kcorr_prod = KcorrTable::generate(KcorrConfig::tam());
    let kcorr_fine = KcorrTable::generate(KcorrConfig::sql());
    let target = SkyRegion::new(180.5, 181.0, 0.0, 0.5);
    let survey = target.expanded(1.0);
    let sky = Sky::generate(survey, &SkyConfig::scaled(0.25), &kcorr_fine, 11);
    let params = BcgParams::default();

    let buffer_prod = target.expanded(0.25);
    let galaxies_prod: Vec<_> = sky.galaxies_in(&buffer_prod).copied().collect();
    let buffer_fine = target.expanded(0.5);
    let galaxies_fine: Vec<_> = sky.galaxies_in(&buffer_fine).copied().collect();

    let mut group = c.benchmark_group("tam_field");
    group.sample_size(10);
    group.bench_function("production_0.25buf_dz0.01", |b| {
        b.iter(|| {
            black_box(process_field(
                &target,
                &buffer_prod,
                &galaxies_prod,
                &kcorr_prod,
                &params,
                false,
            ))
        })
    });
    group.bench_function("sql_equivalent_0.5buf_dz0.001", |b| {
        b.iter(|| {
            black_box(process_field(
                &target,
                &buffer_fine,
                &galaxies_fine,
                &kcorr_fine,
                &params,
                false,
            ))
        })
    });
    group.bench_function("file_codec_roundtrip", |b| {
        b.iter(|| {
            let bytes = tam::files::encode(&galaxies_fine);
            black_box(tam::files::decode(&bytes).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_tam_field);
criterion_main!(benches);
