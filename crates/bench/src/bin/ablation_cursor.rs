//! **Ablation (§2.6)** — "The iteration through the galaxy table uses SQL
//! cursors which are very slow. But there was no easy way to avoid them."
//!
//! Runs `spMakeCandidates` with the paper's row-at-a-time cursor (each
//! fetch re-descends the clustered index) and with the set-based streaming
//! scan the authors wished for. Identical answers, different cost — the
//! optimization the paper lists as future work.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_cursor [-- --scale 0.1]
//! ```

use bench::{secs, BenchOpts, TextTable};
use maxbcg::{IterationMode, MaxBcgConfig, MaxBcgDb};
use serde::Serialize;
use skycore::kcorr::KcorrTable;
use skycore::SkyRegion;

#[derive(Serialize)]
struct CursorReport {
    scale: f64,
    galaxies: u64,
    cursor_s: f64,
    cursor_logical_reads: u64,
    set_based_s: f64,
    set_based_logical_reads: u64,
    overhead: f64,
    identical: bool,
    hash_join_rows: u64,
}

fn main() {
    let opts = BenchOpts::parse();
    let survey = SkyRegion::new(180.0, 182.0, -1.0, 1.0);
    let candidate_window = survey.shrunk(0.5);

    let mut runs = Vec::new();
    let mut set_db: Option<MaxBcgDb> = None;
    for mode in [IterationMode::Cursor, IterationMode::SetBased] {
        let config = MaxBcgConfig { iteration: mode, db: bench::server_db(), ..Default::default() };
        let kcorr = KcorrTable::generate(config.kcorr);
        let sky = opts.sky(survey, &kcorr);
        let mut db = MaxBcgDb::new(config).expect("schema");
        db.import_galaxy(&sky, &survey).expect("import");
        db.make_zone().expect("zone");
        let stats = db.make_candidates(&candidate_window).expect("candidates");
        runs.push((stats, db.candidates().expect("rows"), db.db().row_count("Galaxy").unwrap()));
        if mode == IterationMode::SetBased {
            set_db = Some(db);
        }
    }
    let (cursor_stats, cursor_rows, galaxies) = &runs[0];
    let (set_stats, set_rows, _) = &runs[1];
    let identical = cursor_rows == set_rows;
    let overhead = cursor_stats.cpu.as_secs_f64() / set_stats.cpu.as_secs_f64();

    let mut t = TextTable::new(&["iteration", "cpu (s)", "logical reads"]);
    t.row(&[
        "SQL cursor (paper)".into(),
        secs(cursor_stats.cpu),
        cursor_stats.logical_reads.to_string(),
    ]);
    t.row(&["set-based scan".into(), secs(set_stats.cpu), set_stats.logical_reads.to_string()]);
    println!("{}", t.render());
    println!("identical catalogs: {}", if identical { "YES" } else { "NO — BUG" });
    println!(
        "cursor overhead: {overhead:.2}x cpu, {:.1}x logical reads",
        cursor_stats.logical_reads as f64 / set_stats.logical_reads.max(1) as f64
    );
    assert!(identical);

    // The set-based endgame of §2.6, now with a set-based join to match:
    // re-join the candidate catalog to the galaxies it was k-corrected
    // from, as one SQL hash equi-join on objid instead of a per-cursor-row
    // index descent. Every candidate must find exactly its source galaxy.
    let hash_rows = obs::counter("stardb.exec.hash_join_rows");
    let hash_rows_0 = hash_rows.get();
    let db = set_db.as_mut().expect("set-based run kept");
    // The planner must pick the hash strategy for this query — check the
    // plan it renders (the same object the execution below runs from).
    let (_, plan) = db
        .db_mut()
        .execute_sql(
            "EXPLAIN SELECT COUNT(*) FROM Candidates c JOIN Galaxy g ON c.objid = g.objid",
        )
        .expect("explain")
        .rows()
        .expect("plan rows");
    assert!(
        plan.iter().any(|r| r[0].as_str().is_ok_and(|s| s.contains("hash inner join"))),
        "planner must choose the hash join for the objid equi-join"
    );
    let (_, rows) = db
        .db_mut()
        .execute_sql(
            "SELECT COUNT(*) FROM Candidates c JOIN Galaxy g ON c.objid = g.objid",
        )
        .expect("hash equi-join")
        .rows()
        .expect("result set");
    let joined = rows[0].i64(0).expect("count") as usize;
    let hash_join_rows = hash_rows.get() - hash_rows_0;
    assert_eq!(joined, set_rows.len(), "every candidate joins its source galaxy");
    assert_eq!(hash_join_rows as usize, joined, "the equi-join must take the hash path");
    println!("k-correction re-join: {joined} candidates matched via hash join");

    let report = CursorReport {
        scale: opts.scale,
        galaxies: *galaxies,
        cursor_s: cursor_stats.cpu.as_secs_f64(),
        cursor_logical_reads: cursor_stats.logical_reads,
        set_based_s: set_stats.cpu.as_secs_f64(),
        set_based_logical_reads: set_stats.logical_reads,
        overhead,
        identical,
        hash_join_rows,
    };
    let path = opts.write_report("ablation_cursor", &report);
    println!("report written to {}", path.display());
    opts.emit_report("ablation_cursor", &report);
}
