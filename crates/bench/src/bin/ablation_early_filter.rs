//! **Ablation (§2.6)** — "the SQL implementation discards candidates early
//! in the process by doing a natural JOIN with the k-correction table and
//! filtering out those rows where the likelihood is below some threshold
//! ... early filtering and indexing are a big part of the answer."
//!
//! Runs `spMakeCandidates` twice on the same data: with the paper's early
//! χ² filter, and with the filter deferred to the very end (every redshift
//! searched, every window maximal). The catalogs must be identical; the
//! cost must not be.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_early_filter [-- --scale 0.1]
//! ```

use bench::{secs, BenchOpts, TextTable};
use maxbcg::{IterationMode, MaxBcgConfig, MaxBcgDb};
use serde::Serialize;
use skycore::kcorr::KcorrTable;
use skycore::SkyRegion;

#[derive(Serialize)]
struct FilterReport {
    scale: f64,
    galaxies: u64,
    candidates: u64,
    early_s: f64,
    deferred_s: f64,
    slowdown: f64,
    identical: bool,
}

fn main() {
    let opts = BenchOpts::parse();
    let survey = SkyRegion::new(180.0, 182.0, -1.0, 1.0);
    let candidate_window = survey.shrunk(0.5);

    let mut runs = Vec::new();
    for early in [true, false] {
        let config = MaxBcgConfig {
            iteration: IterationMode::SetBased,
            early_filter: early,
            db: bench::server_db(),
            ..Default::default()
        };
        let kcorr = KcorrTable::generate(config.kcorr);
        let sky = opts.sky(survey, &kcorr);
        let mut db = MaxBcgDb::new(config).expect("schema");
        db.import_galaxy(&sky, &survey).expect("import");
        db.make_zone().expect("zone");
        let stats = db.make_candidates(&candidate_window).expect("candidates");
        runs.push((early, stats, db.candidates().expect("rows"), db.db().row_count("Galaxy").unwrap()));
    }

    let (_, early_stats, early_rows, galaxies) = &runs[0];
    let (_, late_stats, late_rows, _) = &runs[1];
    let identical = early_rows == late_rows;
    let slowdown = late_stats.cpu.as_secs_f64() / early_stats.cpu.as_secs_f64();

    let mut t = TextTable::new(&["variant", "fBCGCandidate cpu (s)", "logical reads", "candidates"]);
    t.row(&[
        "early filter (paper)".into(),
        secs(early_stats.cpu),
        early_stats.logical_reads.to_string(),
        early_rows.len().to_string(),
    ]);
    t.row(&[
        "deferred filter".into(),
        secs(late_stats.cpu),
        late_stats.logical_reads.to_string(),
        late_rows.len().to_string(),
    ]);
    println!("{}", t.render());
    println!("identical catalogs: {}", if identical { "YES" } else { "NO — BUG" });
    println!("deferred-filter slowdown: {slowdown:.1}x (the early-filter win of §2.6)");
    assert!(identical);

    let report = FilterReport {
        scale: opts.scale,
        galaxies: *galaxies,
        candidates: early_rows.len() as u64,
        early_s: early_stats.cpu.as_secs_f64(),
        deferred_s: late_stats.cpu.as_secs_f64(),
        slowdown,
        identical,
    };
    let path = opts.write_report("ablation_early_filter", &report);
    println!("report written to {}", path.display());
    opts.emit_report("ablation_early_filter", &report);
}
