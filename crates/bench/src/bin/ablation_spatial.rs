//! **Ablation (§2.3)** — "We tried both the Hierarchical Triangular Mesh
//! (HTM) and the zone-based neighbor techniques. ... the Zone index was
//! chosen to perform the neighbor counts because it offered better
//! performance."
//!
//! Compares three neighbor-search strategies on the same sky: the
//! zone-indexed search through the database, the HTM index (the external
//! C-library approach, here in-process), and the brute-force scan the TAM
//! files use. Reports mean query time per radius.
//!
//! ```text
//! cargo run -p bench --release --bin ablation_spatial [-- --scale 0.2]
//! ```

use bench::{BenchOpts, TextTable};
use htm::HtmIndex;
use maxbcg::neighbors::nearby_obj_eq_zd;
use maxbcg::schema::create_schema;
use maxbcg::zone_task::sp_zone;
use serde::Serialize;
use skycore::angle::chord2_of_deg;
use skycore::kcorr::{KcorrConfig, KcorrTable};
use skycore::{SkyRegion, UnitVec, ZoneScheme};
use stardb::{Database, DbConfig};
use std::time::Instant;

#[derive(Serialize)]
struct RadiusRow {
    radius_deg: f64,
    zone_us: f64,
    htm_us: f64,
    brute_us: f64,
    mean_hits: f64,
}

#[derive(Serialize)]
struct TableSizeRow {
    region_deg2: f64,
    galaxies: usize,
    zone_us: f64,
    htm_us: f64,
    brute_us: f64,
}

#[derive(Serialize)]
struct SpatialReport {
    scale: f64,
    galaxies: usize,
    queries: usize,
    rows: Vec<RadiusRow>,
    /// Table-size sweep at the MaxBCG working radius (0.42 deg): the
    /// query circle is fixed, the searchable table grows — the flat scan
    /// pays for the whole table, the indexes only for the hits. The
    /// paper's real case is a 104 deg² table.
    table_size_sweep: Vec<TableSizeRow>,
}

fn main() {
    let opts = BenchOpts::parse();
    let kcorr = KcorrTable::generate(KcorrConfig::sql());
    let region = SkyRegion::new(180.0, 183.0, -1.5, 1.5);
    let sky = opts.sky(region, &kcorr);
    let n = sky.galaxies.len();
    println!("sky: {n} galaxies over {region}");

    // Zone-indexed database.
    let mut db = Database::new(DbConfig::in_memory());
    create_schema(&mut db, &kcorr).expect("schema");
    maxbcg::import::sp_import_galaxy(&mut db, &sky, &region).expect("import");
    let scheme = ZoneScheme::default();
    sp_zone(&mut db, &scheme).expect("zone");

    // HTM index at depth 12 (~40 arcsec trixels, comparable to 30" zones).
    let htm = HtmIndex::build(sky.galaxies.iter().map(|g| (g.objid, g.ra, g.dec)), 12);

    // Brute-force arrays (the TAM way).
    let positions: Vec<UnitVec> = sky.galaxies.iter().map(|g| g.unit_vec()).collect();

    // Query points: every k-th galaxy, interior only.
    let interior = region.shrunk(0.5);
    let queries: Vec<(f64, f64)> = sky
        .galaxies
        .iter()
        .filter(|g| interior.contains(g.ra, g.dec))
        .step_by((n / 200).max(1))
        .map(|g| (g.ra, g.dec))
        .collect();
    println!("{} query points\n", queries.len());

    let mut rows = Vec::new();
    let mut t =
        TextTable::new(&["radius (deg)", "zone (us)", "HTM (us)", "brute force (us)", "mean hits"]);
    for radius in [0.05, 0.1, 0.25, 0.42] {
        let mut hits_total = 0usize;

        let t0 = Instant::now();
        for &(ra, dec) in &queries {
            hits_total += nearby_obj_eq_zd(&db, &scheme, ra, dec, radius).expect("zone").len();
        }
        let zone_us = t0.elapsed().as_micros() as f64 / queries.len() as f64;

        let t0 = Instant::now();
        let mut htm_hits = 0usize;
        for &(ra, dec) in &queries {
            htm_hits += htm.within(ra, dec, radius).len();
        }
        let htm_us = t0.elapsed().as_micros() as f64 / queries.len() as f64;

        let t0 = Instant::now();
        let mut brute_hits = 0usize;
        for &(ra, dec) in &queries {
            let center = UnitVec::from_radec(ra, dec);
            let r2 = chord2_of_deg(radius);
            brute_hits += positions.iter().filter(|p| center.chord2(p) < r2).count();
        }
        let brute_us = t0.elapsed().as_micros() as f64 / queries.len() as f64;

        assert_eq!(hits_total, htm_hits, "zone and HTM must agree");
        assert_eq!(hits_total, brute_hits, "zone and brute force must agree");
        let mean_hits = hits_total as f64 / queries.len() as f64;
        t.row(&[
            format!("{radius}"),
            format!("{zone_us:.1}"),
            format!("{htm_us:.1}"),
            format!("{brute_us:.1}"),
            format!("{mean_hits:.1}"),
        ]);
        rows.push(RadiusRow { radius_deg: radius, zone_us, htm_us, brute_us, mean_hits });
    }
    println!("{}", t.render());
    let last = rows.last().expect("rows");
    if last.brute_us > last.zone_us {
        println!(
            "at this density the zone join beats the brute-force scan by {:.1}x (HTM: {:.1}x).",
            last.brute_us / last.zone_us,
            last.brute_us / last.htm_us
        );
    } else {
        println!(
            "note: at only {n} galaxies a flat scan is still competitive; the index \
             win appears at survey densities — rerun with --scale 0.5 or more."
        );
    }

    // ---- table-size sweep at the working radius -----------------------
    println!("\ntable-size sweep at radius 0.42 deg, fixed density (per-query microseconds):");
    let mut sweep = Vec::new();
    let mut ts =
        TextTable::new(&["region (deg2)", "galaxies", "zone (us)", "HTM (us)", "brute force (us)"]);
    for side in [2.0, 4.0, 8.0, 12.0] {
        let region_s = SkyRegion::new(180.0, 180.0 + side, -side / 2.0, side / 2.0);
        let sky_s = skysim::Sky::generate(
            region_s,
            &skysim::SkyConfig::scaled(opts.scale),
            &kcorr,
            opts.seed,
        );
        let mut db_s = Database::new(DbConfig::in_memory());
        create_schema(&mut db_s, &kcorr).expect("schema");
        maxbcg::import::sp_import_galaxy(&mut db_s, &sky_s, &region_s).expect("import");
        sp_zone(&mut db_s, &scheme).expect("zone");
        let htm_s =
            HtmIndex::build(sky_s.galaxies.iter().map(|g| (g.objid, g.ra, g.dec)), 12);
        let pos_s: Vec<UnitVec> = sky_s.galaxies.iter().map(|g| g.unit_vec()).collect();
        // Fixed query set near the region center so only the table size
        // varies across sweep rows.
        let qwin = SkyRegion::new(180.5, 181.5, -0.5, 0.5);
        let qs: Vec<(f64, f64)> = sky_s
            .galaxies
            .iter()
            .filter(|g| qwin.contains(g.ra, g.dec))
            .step_by((sky_s.galaxies_in(&qwin).count() / 64).max(1))
            .map(|g| (g.ra, g.dec))
            .collect();
        let r = 0.42;
        let t0 = Instant::now();
        for &(ra, dec) in &qs {
            std::hint::black_box(nearby_obj_eq_zd(&db_s, &scheme, ra, dec, r).unwrap());
        }
        let zone_us = t0.elapsed().as_micros() as f64 / qs.len() as f64;
        let t0 = Instant::now();
        for &(ra, dec) in &qs {
            std::hint::black_box(htm_s.within(ra, dec, r));
        }
        let htm_us = t0.elapsed().as_micros() as f64 / qs.len() as f64;
        let t0 = Instant::now();
        let r2 = chord2_of_deg(r);
        for &(ra, dec) in &qs {
            let center = UnitVec::from_radec(ra, dec);
            std::hint::black_box(pos_s.iter().filter(|p| center.chord2(p) < r2).count());
        }
        let brute_us = t0.elapsed().as_micros() as f64 / qs.len() as f64;
        ts.row(&[
            format!("{:.0}", region_s.area_deg2()),
            sky_s.galaxies.len().to_string(),
            format!("{zone_us:.1}"),
            format!("{htm_us:.1}"),
            format!("{brute_us:.1}"),
        ]);
        sweep.push(TableSizeRow {
            region_deg2: region_s.area_deg2(),
            galaxies: sky_s.galaxies.len(),
            zone_us,
            htm_us,
            brute_us,
        });
    }
    println!("{}", ts.render());
    println!("index cost tracks the (fixed) hit count; the flat scan grows with");
    println!("the table. The paper's case is a 104 deg2 / 1.5M-row table, far");
    println!("right of the crossover — which is why it zones the data.");

    let report = SpatialReport {
        scale: opts.scale,
        galaxies: n,
        queries: queries.len(),
        rows,
        table_size_sweep: sweep,
    };
    let path = opts.write_report("ablation_spatial", &report);
    println!("report written to {}", path.display());
    opts.emit_report("ablation_spatial", &report);
}
