//! **Chaos Table 1** — the Table 1 / Figure 6 identity claim under an
//! escalating deterministic fault schedule. Each schedule drives the same
//! seeded fault plan through three layers: the zone-partitioned MaxBCG run
//! (partition crashes and buffer-pool pressure with failover), the CasJobs
//! data grid (contained node panics re-run on survivors), and the TAM field
//! grid (dropped/corrupted transfers, stragglers, and job crashes with
//! retry + backoff). For every schedule the recovered answer must equal the
//! clean sequential catalog bit for bit; the table reports injected fault
//! counts, recovery effort, and elapsed-time degradation versus the clean
//! run.
//!
//! ```text
//! cargo run -p bench --release --bin chaos_table1 [-- --scale 0.05 --seed 2005]
//! ```

use bench::{secs, BenchOpts, PaperCase, TextTable};
use gridsim::das::NetworkModel;
use gridsim::node::tam_cluster;
use gridsim::{DataArchiveServer, FaultConfig, FaultPlan, FaultReport, GridCluster};
use maxbcg::{
    run_partitioned_recovering, IterationMode, MaxBcgConfig, MaxBcgDb, RecoveryPolicy,
};
use serde::Serialize;
use skycore::kcorr::KcorrTable;
use stardb::DbError;
use std::sync::Arc;
use std::time::Instant;
use tam::{publish_region, run_region, TamConfig};

#[derive(Serialize)]
struct ScheduleOutcome {
    schedule: String,
    injected: FaultReport,
    partition_attempts: Vec<u32>,
    partition_failovers: u32,
    grid_failovers: u32,
    tam_retried: u32,
    tam_backoff_s: f64,
    elapsed_s: f64,
    degradation: f64,
    identical: bool,
}

#[derive(Serialize)]
struct ChaosReport {
    scale: f64,
    seed: u64,
    schedules: Vec<ScheduleOutcome>,
}

fn main() {
    let opts = BenchOpts::parse();
    let case = PaperCase::reduced();
    let config = MaxBcgConfig {
        iteration: IterationMode::SetBased,
        db: bench::server_db(),
        ..Default::default()
    };
    let kcorr = KcorrTable::generate(config.kcorr);
    println!(
        "Chaos Table 1: target {} inside import {} at density scale {}",
        case.target, case.import, opts.scale
    );
    let sky = Arc::new(opts.sky(case.import, &kcorr));
    println!("  sky: {} galaxies, {} injected clusters\n", sky.galaxies.len(), sky.truth.len());

    // ---- clean sequential reference ---------------------------------------
    let mut seq_db = MaxBcgDb::new(config).expect("schema");
    seq_db.run("sequential", &sky, &case.import, &case.candidates).expect("sequential run");
    let seq_candidates = seq_db.candidates().expect("candidates");
    let seq_clusters = seq_db.clusters().expect("clusters");
    let mut seq_members = seq_db.members().expect("members");
    seq_members.sort_by_key(|m| (m.cluster_objid, m.galaxy_objid));

    // ---- clean TAM reference over the target region -----------------------
    let tam_cfg = TamConfig::default();
    let das = DataArchiveServer::new(NetworkModel::instant());
    let (fields, bytes) = publish_region(&sky, &case.target, &tam_cfg, &das);
    println!("  TAM leg: {} fields, {} bytes published (sealed)\n", fields.len(), bytes);
    let tam_clean = run_region(&GridCluster::new(tam_cluster()), &das, fields.clone(), &tam_cfg);
    assert!(tam_clean.failures.is_empty(), "clean TAM run failed: {:?}", tam_clean.failures);

    let schedules: Vec<(&str, Option<FaultConfig>)> = vec![
        ("clean", None),
        ("mild", Some(FaultConfig::mild(opts.seed))),
        ("severe", Some(FaultConfig::severe(opts.seed))),
        ("crash-storm", Some(FaultConfig::always(opts.seed, 2))),
    ];

    // Injected crashes are real panics; keep their backtraces out of the
    // report. The hook is restored before any assertion can fire.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let mut outcomes: Vec<ScheduleOutcome> = Vec::new();
    let mut clean_elapsed = 0.0f64;
    for (name, fault_cfg) in schedules {
        let plan = fault_cfg.map(FaultPlan::new);
        let t0 = Instant::now();

        // Leg 1: 3-way zone partitioning with failover. Even stripes lose
        // their first attempts to buffer pressure, odd stripes to a panic.
        let mut inject = |index: usize, attempt: u32| -> Option<DbError> {
            let plan = plan.as_ref()?;
            let key = format!("P{}", index + 1);
            if index % 2 == 0 {
                plan.buffer_exhausts(&key, attempt).then_some(DbError::BufferExhausted)
            } else if plan.node_crashes(&key, attempt) {
                panic!("injected crash on {key}");
            } else {
                None
            }
        };
        let (par, recovery) = run_partitioned_recovering(
            &config,
            &sky,
            &case.import,
            &case.candidates,
            3,
            RecoveryPolicy { max_attempts: 4 },
            &mut inject,
        )
        .expect("partitioned run must recover under a bounded schedule");

        // Leg 2: the CasJobs data grid with contained panics + failover.
        let mut grid = casjobs::DataGrid::new(Arc::clone(&sky), &case.import, 3, config);
        if let Some(p) = &plan {
            grid = grid.with_faults(p.clone());
        }
        let grid_report = grid.submit_maxbcg(casjobs::UserId(1), &case.candidates);
        let grid_ok = grid_report.outcomes.iter().all(|o| o.error.is_none());

        // Leg 3: the TAM field grid — transfer drops/corruption, stragglers,
        // and job crashes drained by retry + backoff.
        let mut cluster = GridCluster::new(tam_cluster());
        if let Some(p) = &plan {
            cluster = cluster.with_faults(p.clone());
        }
        cluster.retries = 4;
        let tam_run = run_region(&cluster, &das, fields.clone(), &tam_cfg);

        let elapsed = t0.elapsed().as_secs_f64();
        if plan.is_none() {
            clean_elapsed = elapsed;
        }

        let identical = par.candidates == seq_candidates
            && par.clusters == seq_clusters
            && par.members == seq_members
            && grid_ok
            && grid_report.collected == seq_clusters
            && tam_run.failures.is_empty()
            && tam_run.clusters == tam_clean.clusters
            && tam_run.candidates == tam_clean.candidates
            && tam_run.members == tam_clean.members;

        outcomes.push(ScheduleOutcome {
            schedule: name.to_owned(),
            injected: plan.as_ref().map(|p| p.report()).unwrap_or_default(),
            partition_attempts: recovery.attempts.clone(),
            partition_failovers: recovery.failovers,
            grid_failovers: grid_report.failovers,
            tam_retried: tam_run.batch.retried,
            tam_backoff_s: tam_run.batch.backoff_total.as_secs_f64(),
            elapsed_s: elapsed,
            degradation: if clean_elapsed > 0.0 { elapsed / clean_elapsed } else { 1.0 },
            identical,
        });
    }
    std::panic::set_hook(default_hook);

    // ---- render -----------------------------------------------------------
    let mut t = TextTable::new(&[
        "schedule",
        "crash",
        "drop",
        "corrupt",
        "straggle",
        "bufpool",
        "part fo",
        "grid fo",
        "tam retry",
        "backoff (s)",
        "elapse (s)",
        "vs clean",
        "identical",
    ]);
    for o in &outcomes {
        t.row(&[
            o.schedule.clone(),
            o.injected.node_crashes.to_string(),
            o.injected.transfers_dropped.to_string(),
            o.injected.transfers_corrupted.to_string(),
            o.injected.stragglers.to_string(),
            o.injected.buffer_exhausts.to_string(),
            o.partition_failovers.to_string(),
            o.grid_failovers.to_string(),
            o.tam_retried.to_string(),
            format!("{:.2}", o.tam_backoff_s),
            secs(std::time::Duration::from_secs_f64(o.elapsed_s)),
            format!("{:.0}%", o.degradation * 100.0),
            if o.identical { "YES".into() } else { "NO — BUG".into() },
        ]);
    }
    println!("{}", t.render());
    println!("identity invariant: recovered union == sequential catalog, at every schedule");

    // ---- zone-cache staleness drill ---------------------------------------
    // Recovery re-runs spZone, so a snapshot captured before a fault must
    // degrade to the clustered index, never to wrong answers: hold the old
    // snapshot across a re-zone (its epoch is now stale), search through
    // it, and demand bit-identical hits plus a moving fallback counter.
    let fallbacks = obs::counter("maxbcg.zonecache.fallbacks");
    let stale = seq_db.zone_snapshot().expect("zone cache on by default").clone();
    seq_db.make_zone().expect("re-zone");
    assert!(!stale.is_fresh(seq_db.db()), "re-running spZone must move the Zone epoch");
    let fallbacks_0 = fallbacks.get();
    let (mut via_stale, mut via_fresh) = (Vec::new(), Vec::new());
    for g in sky.galaxies.iter().step_by(97) {
        maxbcg::visit_nearby_with(seq_db.db(), Some(&*stale), seq_db.scheme(), g.ra, g.dec, 0.2, |o, d, _| {
            via_stale.push((o, d.to_bits()));
            true
        })
        .expect("stale-snapshot search");
        let fresh = seq_db.zone_snapshot().map(|s| &**s);
        maxbcg::visit_nearby_with(seq_db.db(), fresh, seq_db.scheme(), g.ra, g.dec, 0.2, |o, d, _| {
            via_fresh.push((o, d.to_bits()));
            true
        })
        .expect("fresh-snapshot search");
    }
    assert_eq!(via_stale, via_fresh, "stale-snapshot fallback changed answers");
    assert!(
        fallbacks.get() > fallbacks_0,
        "maxbcg.zonecache.fallbacks must move when a stale snapshot is offered"
    );
    println!(
        "zone-cache drill: {} stale searches fell back to the clustered index, identically",
        fallbacks.get() - fallbacks_0
    );

    let report =
        ChaosReport { scale: opts.scale, seed: opts.seed, schedules: outcomes };
    let path = opts.write_report("chaos_table1", &report);
    println!("report written to {}", path.display());
    opts.emit_report("chaos", &report);

    for o in &report.schedules {
        assert!(
            o.identical,
            "schedule '{}' broke result identity — recovery is not lossless",
            o.schedule
        );
    }
}
