//! **Distributed fabric sweep** — the zone-sharded scatter–gather layer
//! at 1/2/4/8 database nodes over the paper's region workload.
//!
//! Imports a sky into a `Galaxy` catalog, shards it across N simulated
//! stardb nodes with [`distfab::DistCluster`], and drives the workload at
//! every node count:
//!
//! * **Identity** — every query's result must be byte-for-byte identical
//!   across 1/2/4/8 nodes (the Figure-4 region window is the headline).
//! * **Scaling** — the full-slice scan+filter kernel's *virtual cluster
//!   makespan* (node-clock scaled, host-independent — the same time base
//!   as every other gridsim number) must drop near-linearly: ≥ 2.5×
//!   faster at 4 nodes than at 1, asserted.
//! * **Pruning** — the dec-window region query must ship strictly fewer
//!   rows than the broadcast baseline, and contact fewer shards.
//!
//! ```text
//! cargo run -p bench --release --bin dist_fabric [-- --scale 0.05 --seed 2005]
//! ```
//!
//! Emits `BENCH_dist.json`.

use bench::{BenchOpts, TextTable};
use distfab::{DistCluster, DistConfig};
use serde::Serialize;
use skycore::kcorr::KcorrTable;
use skycore::SkyRegion;
use skysim::{Sky, SkyConfig};
use stardb::{Database, DbConfig, Row};
use std::time::Instant;

const NODE_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One (query, node-count) measurement.
#[derive(Serialize)]
struct SweepPoint {
    query: &'static str,
    nodes: usize,
    wall_s: f64,
    /// Virtual cluster makespan of the scatter (seconds).
    makespan_s: f64,
    rows_shipped: u64,
    bytes_shipped: u64,
    shards_contacted: usize,
    shards_pruned: usize,
    result_rows: usize,
    identical_to_one_node: bool,
}

#[derive(Serialize)]
struct DistReport {
    scale: f64,
    galaxies: u64,
    sweep: Vec<SweepPoint>,
    /// makespan(1 node) / makespan(4 nodes) on the scan+filter kernel —
    /// the headline scaling number, asserted >= 2.5.
    kernel_speedup_4x: f64,
    /// Same ratio at 8 nodes, reported for the scaling curve.
    kernel_speedup_8x: f64,
    /// Rows the pruned region plan shipped at 8 nodes.
    pruned_rows_shipped: u64,
    /// Rows the broadcast baseline shipped for the same query — must be
    /// strictly greater.
    broadcast_rows_shipped: u64,
    /// Shards the pruned region plan contacted at 8 nodes (of 8).
    pruned_shards_contacted: usize,
}

/// Build the source catalog: Galaxy only, clustered on objid, with the
/// region secondary index so the per-shard subplans use the same access
/// paths the single-node engine picks.
fn setup(opts: &BenchOpts, survey: &SkyRegion) -> (Database, u64) {
    let kcorr = KcorrTable::generate(skycore::kcorr::KcorrConfig::default());
    let sky = Sky::generate(*survey, &SkyConfig::scaled(opts.scale), &kcorr, opts.seed);
    let mut db = Database::new(DbConfig::in_memory());
    db.create_clustered_table("Galaxy", maxbcg::schema::galaxy_schema(), &["objid"])
        .expect("schema");
    db.create_index("Galaxy", "idx_region", &["dec", "ra"]).expect("index");
    let rows: Vec<Row> =
        sky.galaxies_in(survey).map(maxbcg::import::galaxy_row).collect();
    let n = rows.len() as u64;
    db.insert_rows("Galaxy", rows).expect("import");
    (db, n)
}

fn digest(rows: &[Row]) -> Vec<Vec<u8>> {
    rows.iter().map(Row::encode).collect()
}

fn main() {
    let opts = BenchOpts::parse();
    obs::set_enabled(true);
    let survey = SkyRegion::new(194.0, 196.5, 1.25, 3.75);
    let window = survey.shrunk(0.8);
    let (src, galaxies) = setup(&opts, &survey);
    println!("catalog: {galaxies} galaxies over dec [{}, {}]", survey.dec_min, survey.dec_max);

    let queries: Vec<(&'static str, String)> = vec![
        // Full-slice scan+filter: contacts every shard, each scanning its
        // own slice — the near-linear-scaling kernel.
        (
            "scan_filter_kernel",
            "SELECT objid, ra, dec, i FROM Galaxy WHERE i < 20.5 ORDER BY objid".to_owned(),
        ),
        // The paper's Figure-4 region window (dec-sargable: prunes).
        ("fig4_region", maxbcg::region_query::region_select(&window)),
        // Distributed aggregation: partial COUNT/MIN/MAX fold.
        (
            "grouped_agg",
            "SELECT COUNT(*), MIN(i), MAX(ra) FROM Galaxy WHERE i < 21.0".to_owned(),
        ),
        // Distributed top-n with a per-shard pushed LIMIT.
        (
            "top_n",
            "SELECT objid, i FROM Galaxy ORDER BY i, objid LIMIT 32".to_owned(),
        ),
    ];

    let mut sweep: Vec<SweepPoint> = Vec::new();
    let mut table = TextTable::new(&[
        "query", "nodes", "wall (s)", "makespan (s)", "rows shipped", "contacted", "identical",
    ]);
    let mut kernel_makespans = [0f64; NODE_COUNTS.len()];
    let mut reference: Vec<(usize, Vec<Vec<u8>>)> = Vec::new(); // query idx -> 1-node digest
    let mut pruned_rows_shipped = 0u64;
    let mut pruned_shards_contacted = 0usize;
    let mut broadcast_rows_shipped = 0u64;

    for (ni, &nodes) in NODE_COUNTS.iter().enumerate() {
        let fab = DistCluster::build(
            &src,
            DistConfig::new(nodes, "Galaxy", "dec", survey.dec_min, survey.dec_max),
        )
        .expect("build fabric");
        for (qi, (name, sql)) in queries.iter().enumerate() {
            let t0 = Instant::now();
            let (_, rows) = fab.execute_sql(sql).expect("query").rows().expect("rows");
            let wall_s = t0.elapsed().as_secs_f64();
            let p = fab.last_dist().expect("profile");
            let d = digest(&rows);
            let identical = if nodes == 1 {
                reference.push((qi, d.clone()));
                true
            } else {
                reference.iter().find(|(i, _)| *i == qi).expect("reference").1 == d
            };
            assert!(identical, "{name}@{nodes} nodes diverged from the 1-node answer");
            if *name == "scan_filter_kernel" {
                kernel_makespans[ni] = p.virtual_makespan_s;
            }
            if *name == "fig4_region" && nodes == 8 {
                pruned_rows_shipped = p.rows_shipped;
                pruned_shards_contacted = p.contacted;
                let (_, brows) =
                    fab.execute_broadcast(sql).expect("broadcast").rows().expect("rows");
                assert_eq!(digest(&brows), d, "broadcast baseline disagreed");
                broadcast_rows_shipped = fab.last_dist().expect("profile").rows_shipped;
            }
            table.row(&[
                (*name).into(),
                nodes.to_string(),
                format!("{wall_s:.5}"),
                format!("{:.5}", p.virtual_makespan_s),
                p.rows_shipped.to_string(),
                format!("{}/{}", p.contacted, p.contacted + p.pruned),
                identical.to_string(),
            ]);
            sweep.push(SweepPoint {
                query: name,
                nodes,
                wall_s,
                makespan_s: p.virtual_makespan_s,
                rows_shipped: p.rows_shipped,
                bytes_shipped: p.bytes_shipped,
                shards_contacted: p.contacted,
                shards_pruned: p.pruned,
                result_rows: rows.len(),
                identical_to_one_node: identical,
            });
        }
    }
    print!("{}", table.render());

    let kernel_speedup_4x = kernel_makespans[0] / kernel_makespans[2];
    let kernel_speedup_8x = kernel_makespans[0] / kernel_makespans[3];
    println!(
        "scan+filter kernel: {kernel_speedup_4x:.2}x at 4 nodes, {kernel_speedup_8x:.2}x at 8 \
         (virtual makespan vs 1 node)"
    );
    println!(
        "fig4 pruning at 8 nodes: {pruned_shards_contacted}/8 shards, {pruned_rows_shipped} rows \
         shipped vs {broadcast_rows_shipped} broadcast"
    );
    assert!(
        kernel_speedup_4x >= 2.5,
        "scan+filter kernel must scale >= 2.5x at 4 nodes, got {kernel_speedup_4x:.2}x"
    );
    assert!(
        pruned_rows_shipped < broadcast_rows_shipped,
        "zone pruning must ship strictly fewer rows than broadcast \
         ({pruned_rows_shipped} vs {broadcast_rows_shipped})"
    );
    assert!(pruned_shards_contacted < 8, "the dec window must not touch every shard");

    let report = DistReport {
        scale: opts.scale,
        galaxies,
        sweep,
        kernel_speedup_4x,
        kernel_speedup_8x,
        pruned_rows_shipped,
        broadcast_rows_shipped,
        pruned_shards_contacted,
    };
    let path = opts.write_report("dist_fabric", &report);
    println!("report written to {}", path.display());
    opts.emit_report("dist", &report);
}
