//! **Figures 1 and 2** — the TAM buffer compromise and the candidate
//! geometry.
//!
//! Figure 1: TAM limits each field's Buffer file to 1 x 1 deg² (a 0.25 deg
//! margin) instead of the ideal 1.5 x 1.5 deg², accepting truncated
//! neighborhoods. This binary quantifies that compromise by sweeping the
//! buffer margin and scoring each TAM catalog against the database
//! reference (full data, fine grid).
//!
//! Figure 2: candidates are compared against neighboring candidates; the
//! text around it gives the population rates — ~3% of galaxies become
//! candidates, ~0.13% become BCGs, ~4.5 clusters per 0.25 deg² field —
//! which the reference run reports here.
//!
//! ```text
//! cargo run -p bench --release --bin fig1_buffer_truncation [-- --scale 0.1]
//! ```

use bench::{BenchOpts, TextTable};
use gridsim::das::NetworkModel;
use gridsim::node::tam_cluster;
use gridsim::{DataArchiveServer, GridCluster};
use maxbcg::{IterationMode, MaxBcgConfig, MaxBcgDb};
use serde::Serialize;
use skycore::kcorr::{KcorrConfig, KcorrTable};
use skycore::SkyRegion;
use tam::{publish_region, run_region, TamConfig};

#[derive(Serialize)]
struct MarginRow {
    margin_deg: f64,
    z_step: f64,
    clusters: usize,
    matching_reference: usize,
    missed: usize,
    spurious: usize,
    agreement_pct: f64,
    /// Fraction of reference candidates in the target whose (z, ngal,
    /// chi2) are bit-identical in the TAM run — the sensitive metric:
    /// truncated neighborhoods change ngal/chi2 before they change which
    /// BCGs win.
    candidate_exact_pct: f64,
}

#[derive(Serialize)]
struct Fig1Report {
    scale: f64,
    reference_clusters: usize,
    rows: Vec<MarginRow>,
    candidate_fraction_pct: f64,
    bcg_fraction_pct: f64,
    clusters_per_quarter_deg2: f64,
    paper_candidate_fraction_pct: f64,
    paper_bcg_fraction_pct: f64,
    paper_clusters_per_field: f64,
}

fn main() {
    let opts = BenchOpts::parse();
    let config = MaxBcgConfig { iteration: IterationMode::SetBased, db: bench::server_db(), ..Default::default() };
    let kcorr = KcorrTable::generate(config.kcorr);
    let survey = SkyRegion::new(180.0, 183.0, -1.5, 1.5);
    let target = SkyRegion::new(181.0, 182.0, -0.5, 0.5);
    let sky = opts.sky(survey, &kcorr);
    println!(
        "sky {} galaxies over {survey}; target {target}\n",
        sky.galaxies.len()
    );

    // ---- reference: the database run ------------------------------------
    let mut db = MaxBcgDb::new(config).expect("schema");
    let report = db.run("reference", &sky, &survey, &target.expanded(0.5)).expect("run");
    let reference: Vec<i64> = db
        .clusters()
        .expect("clusters")
        .into_iter()
        .filter(|c| target.contains(c.ra, c.dec))
        .map(|c| c.objid)
        .collect();
    // Candidate-level reference: the sensitive agreement metric.
    let ref_candidates: std::collections::HashMap<i64, skycore::Candidate> = db
        .candidates()
        .expect("candidates")
        .into_iter()
        .filter(|c| target.contains(c.ra, c.dec))
        .map(|c| (c.objid, c))
        .collect();
    let galaxies_in_b = sky.galaxies_in(&target.expanded(0.5)).count();
    let candidate_fraction = 100.0 * report.candidates as f64 / galaxies_in_b.max(1) as f64;
    let bcg_fraction = 100.0 * report.clusters as f64 / galaxies_in_b.max(1) as f64;
    let clusters_per_field = reference.len() as f64 / (target.area_deg2() / 0.25);
    println!("reference (database): {} clusters in target", reference.len());
    println!(
        "Figure 2 rates: candidates {:.2}% of galaxies (paper ~3%), BCGs {:.3}% (paper ~0.13%), {:.2} clusters per 0.25 deg2 field (paper ~4.5; rates scale with density, see EXPERIMENTS.md)\n",
        candidate_fraction, bcg_fraction, clusters_per_field
    );

    // ---- TAM margin sweep ------------------------------------------------
    let mut rows = Vec::new();
    let mut t = TextTable::new(&[
        "buffer margin (deg)",
        "z-step",
        "clusters",
        "match ref",
        "missed",
        "spurious",
        "agreement",
        "cand exact",
    ]);
    for (margin, kc) in [
        (0.25, KcorrConfig::tam()), // the paper's production compromise
        (0.25, KcorrConfig::sql()),
        (0.5, KcorrConfig::sql()),  // the "ideal" Figure 1 geometry
        (1.0, KcorrConfig::sql()),  // enough buffer for exact agreement
    ] {
        let cfg = TamConfig { buffer_margin: margin, kcorr: kc, ..TamConfig::default() };
        let das = DataArchiveServer::new(NetworkModel::instant());
        let (fields, _) = publish_region(&sky, &target, &cfg, &das);
        let cluster = GridCluster::new(tam_cluster());
        let run = run_region(&cluster, &das, fields, &cfg);
        assert!(run.failures.is_empty(), "{:?}", run.failures);
        let tam_ids: std::collections::HashSet<i64> =
            run.clusters.iter().map(|c| c.objid).collect();
        let matching = reference.iter().filter(|id| tam_ids.contains(id)).count();
        let missed = reference.len() - matching;
        let spurious = tam_ids.len() - matching;
        let agreement = 100.0 * matching as f64 / reference.len().max(1) as f64;
        // Candidate-level exactness in the target window.
        let mut cand_exact = 0usize;
        for c in run.candidates.iter().filter(|c| target.contains(c.ra, c.dec)) {
            if let Some(r) = ref_candidates.get(&c.objid) {
                if (r.z - c.z).abs() < 1e-12
                    && r.ngal == c.ngal
                    && (r.chi2 - c.chi2).abs() < 1e-9
                {
                    cand_exact += 1;
                }
            }
        }
        let candidate_exact =
            100.0 * cand_exact as f64 / ref_candidates.len().max(1) as f64;
        t.row(&[
            format!("{margin}"),
            format!("{}", kc.z_step),
            tam_ids.len().to_string(),
            matching.to_string(),
            missed.to_string(),
            spurious.to_string(),
            format!("{agreement:.0}%"),
            format!("{candidate_exact:.1}%"),
        ]);
        rows.push(MarginRow {
            margin_deg: margin,
            z_step: kc.z_step,
            clusters: tam_ids.len(),
            matching_reference: matching,
            missed,
            spurious,
            agreement_pct: agreement,
            candidate_exact_pct: candidate_exact,
        });
    }
    println!("{}", t.render());
    println!("shape check: candidate-level exactness rises with buffer margin and");
    println!("grid fineness; the 1.0 deg margin at dz=0.001 agrees exactly (the");
    println!("tam_vs_db_agreement integration test proves it).");

    let out = Fig1Report {
        scale: opts.scale,
        reference_clusters: reference.len(),
        rows,
        candidate_fraction_pct: candidate_fraction,
        bcg_fraction_pct: bcg_fraction,
        clusters_per_quarter_deg2: clusters_per_field,
        paper_candidate_fraction_pct: 3.0,
        paper_bcg_fraction_pct: 0.13,
        paper_clusters_per_field: 4.5,
    };
    let path = opts.write_report("fig1_fig2", &out);
    println!("report written to {}", path.display());
    opts.emit_report("fig1_fig2", &out);
}
