//! **Figure 3** — "Larger target areas give better performance because the
//! relative buffer area (overhead) decreases."
//!
//! Sweeps the target side with the fixed 0.5/1.0 deg margins of the paper
//! and reports, per target size: the geometric overhead (import area over
//! target area) and the measured database cost per target deg². The
//! per-deg² cost must fall as the target grows.
//!
//! ```text
//! cargo run -p bench --release --bin fig3_target_sweep [-- --scale 0.1]
//! ```

use bench::{BenchOpts, TextTable};
use maxbcg::{IterationMode, MaxBcgConfig, MaxBcgDb};
use serde::Serialize;
use skycore::kcorr::KcorrTable;
use skycore::SkyRegion;

#[derive(Serialize)]
struct SweepRow {
    target_side_deg: f64,
    target_area_deg2: f64,
    import_area_deg2: f64,
    geometric_overhead: f64,
    total_s: f64,
    s_per_target_deg2: f64,
    galaxies: u64,
}

#[derive(Serialize)]
struct Fig3Report {
    scale: f64,
    rows: Vec<SweepRow>,
}

fn main() {
    let opts = BenchOpts::parse();
    let config = MaxBcgConfig { iteration: IterationMode::SetBased, db: bench::server_db(), ..Default::default() };
    let kcorr = KcorrTable::generate(config.kcorr);

    let mut rows = Vec::new();
    let mut t = TextTable::new(&[
        "target side (deg)",
        "target (deg2)",
        "import (deg2)",
        "overhead",
        "total (s)",
        "s per target deg2",
    ]);
    for side in [0.5, 1.0, 2.0, 3.0] {
        let target = SkyRegion::new(180.0, 180.0 + side, 0.0, side);
        let candidates = target.expanded(0.5);
        let import = target.expanded(1.0);
        let sky = opts.sky(import, &kcorr);
        let mut db = MaxBcgDb::new(config).expect("schema");
        let report = db
            .run(&format!("side-{side}"), &sky, &import, &candidates)
            .expect("run");
        let total = report.total_elapsed().as_secs_f64();
        let per_deg2 = total / target.area_deg2();
        let overhead = import.area_deg2() / target.area_deg2();
        t.row(&[
            format!("{side}"),
            format!("{:.2}", target.area_deg2()),
            format!("{:.2}", import.area_deg2()),
            format!("{overhead:.2}x"),
            format!("{total:.2}"),
            format!("{per_deg2:.3}"),
        ]);
        rows.push(SweepRow {
            target_side_deg: side,
            target_area_deg2: target.area_deg2(),
            import_area_deg2: import.area_deg2(),
            geometric_overhead: overhead,
            total_s: total,
            s_per_target_deg2: per_deg2,
            galaxies: report.galaxies,
        });
    }
    println!("{}", t.render());
    println!("shape check: geometric overhead falls from {:.1}x toward 1x and the", rows[0].geometric_overhead);
    println!("cost per target deg2 falls with it — the paper's rationale for 66 deg2 targets.");

    let report = Fig3Report { scale: opts.scale, rows };
    let path = opts.write_report("fig3", &report);
    println!("report written to {}", path.display());
    opts.emit_report("fig3", &report);
}
