//! **Parallel sweep** — worker-count scaling of the CPU-bound pipeline
//! stages, plus the threaded 3-way partition fan-out: the paper's Figure 6
//! tradeoff (~2x elapsed at ~25% extra cpu/I/O) re-expressed as thread
//! parallelism on one host.
//!
//! For each worker count the full pipeline runs on a fresh server-profile
//! database and the resulting catalogs are checked byte-for-byte against
//! the 1-worker baseline — the sweep measures *time*, never *answers*.
//! Speedup is reported, not asserted: on a single-core host every point
//! legitimately costs the same.
//!
//! ```text
//! cargo run -p bench --release --bin parallel_sweep [-- --scale 0.05 --seed 2005]
//! ```
//!
//! Emits `BENCH_parallel.json`.

use bench::{secs, BenchOpts, PaperCase, TextTable};
use maxbcg::{run_partitioned, IterationMode, MaxBcgConfig, MaxBcgDb};
use serde::Serialize;
use skycore::kcorr::KcorrTable;

const WORKER_SWEEP: [usize; 4] = [1, 2, 4, 8];

#[derive(Serialize)]
struct SweepPoint {
    workers: usize,
    total_elapsed_s: f64,
    candidates_task_s: f64,
    clusters_task_s: f64,
    members_task_s: f64,
    total_cpu_s: f64,
    total_io: u64,
    identical_to_baseline: bool,
}

#[derive(Serialize)]
struct PartitionPoint {
    partitions: usize,
    workers: usize,
    batch_wall_s: f64,
    max_partition_wall_s: f64,
    composed_elapsed_s: f64,
    union_identical: bool,
}

#[derive(Serialize)]
struct ParallelReport {
    scale: f64,
    seed: u64,
    host_cores: usize,
    sweep: Vec<SweepPoint>,
    partition: PartitionPoint,
}

fn main() {
    let opts = BenchOpts::parse();
    let case = PaperCase::reduced();
    let base = MaxBcgConfig {
        iteration: IterationMode::SetBased,
        db: bench::server_db(),
        ..Default::default()
    };
    let kcorr = KcorrTable::generate(base.kcorr);
    let host_cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    println!(
        "Parallel sweep: target {} inside import {} at density scale {} ({} host cores)",
        case.target, case.import, opts.scale, host_cores
    );
    let sky = opts.sky(case.import, &kcorr);
    println!("  sky: {} galaxies, {} injected clusters\n", sky.galaxies.len(), sky.truth.len());

    // ---- worker sweep, one full pipeline per point -------------------------
    let mut baseline: Option<(Vec<_>, Vec<_>, Vec<_>)> = None;
    let mut sweep = Vec::new();
    let mut t = TextTable::new(&[
        "workers",
        "total (s)",
        "fBCGCandidate (s)",
        "fIsCluster (s)",
        "spMakeGalaxiesMetric (s)",
        "cpu (s)",
        "I/O",
        "identical",
    ]);
    let cache_hits = obs::counter("maxbcg.zonecache.hits");
    let cache_hits_0 = cache_hits.get();
    for workers in WORKER_SWEEP {
        let config = MaxBcgConfig { workers, ..base };
        let mut db = MaxBcgDb::new(config).expect("schema");
        let report = db
            .run(&format!("workers={workers}"), &sky, &case.import, &case.candidates)
            .expect("pipeline run");
        let catalogs = (
            db.candidates().expect("candidates"),
            db.clusters().expect("clusters"),
            db.members().expect("members"),
        );
        let identical = match &baseline {
            None => {
                baseline = Some(catalogs);
                true
            }
            Some(b) => *b == catalogs,
        };
        let task_s = |name: &str| {
            report.task(name).map(|t| t.elapsed().as_secs_f64()).unwrap_or_default()
        };
        t.row(&[
            workers.to_string(),
            secs(report.total_elapsed()),
            format!("{:.3}", task_s("fBCGCandidate")),
            format!("{:.3}", task_s("fIsCluster")),
            format!("{:.3}", task_s("spMakeGalaxiesMetric")),
            secs(report.total_cpu()),
            report.total_io().to_string(),
            if identical { "yes".into() } else { "NO — BUG".into() },
        ]);
        sweep.push(SweepPoint {
            workers,
            total_elapsed_s: report.total_elapsed().as_secs_f64(),
            candidates_task_s: task_s("fBCGCandidate"),
            clusters_task_s: task_s("fIsCluster"),
            members_task_s: task_s("spMakeGalaxiesMetric"),
            total_cpu_s: report.total_cpu().as_secs_f64(),
            total_io: report.total_io(),
            identical_to_baseline: identical,
        });
    }
    println!("{}", t.render());
    // Every sweep point ran with the zone cache on (the default); the
    // snapshot must actually have served the zone joins.
    assert!(
        cache_hits.get() > cache_hits_0,
        "maxbcg.zonecache.hits must move across the sweep — the snapshot never served"
    );

    // ---- zone cache off: identity, not speed -------------------------------
    // One extra point with the snapshot disabled: every search takes the
    // clustered-index path and the catalogs must still match the baseline
    // byte for byte — the cache is a cost knob, never an answer knob.
    let cache_off_identical = {
        let config = MaxBcgConfig { workers: 2, zone_cache: false, ..base };
        let mut db = MaxBcgDb::new(config).expect("schema");
        db.run("cache-off", &sky, &case.import, &case.candidates).expect("cache-off run");
        assert!(db.zone_snapshot().is_none(), "zone_cache=false must not build a snapshot");
        let catalogs = (
            db.candidates().expect("candidates"),
            db.clusters().expect("clusters"),
            db.members().expect("members"),
        );
        baseline.as_ref() == Some(&catalogs)
    };
    println!(
        "zone cache off (2 workers): identical to baseline: {}",
        if cache_off_identical { "YES" } else { "NO — BUG" }
    );
    assert!(cache_off_identical, "disabling the zone cache changed the catalogs");

    // ---- threaded 3-way partition fan-out ----------------------------------
    let workers = host_cores.clamp(1, 2);
    let par_config = MaxBcgConfig { workers, ..base };
    let par = run_partitioned(&par_config, &sky, &case.import, &case.candidates, 3)
        .expect("partitioned run");
    let union_identical = baseline
        .as_ref()
        .map(|(c, k, m)| {
            let mut ms = m.clone();
            ms.sort_by_key(|x| (x.cluster_objid, x.galaxy_objid));
            par.candidates == *c && par.clusters == *k && par.members == ms
        })
        .unwrap_or(false);
    println!(
        "3-way fan-out ({} workers each): batch wall {} vs slowest partition {} \
         (composed elapsed {}), union identical: {}",
        workers,
        secs(par.wall_elapsed),
        secs(par.max_partition_wall()),
        secs(par.elapsed()),
        if union_identical { "YES" } else { "NO — BUG" }
    );

    let report = ParallelReport {
        scale: opts.scale,
        seed: opts.seed,
        host_cores,
        sweep,
        partition: PartitionPoint {
            partitions: 3,
            workers,
            batch_wall_s: par.wall_elapsed.as_secs_f64(),
            max_partition_wall_s: par.max_partition_wall().as_secs_f64(),
            composed_elapsed_s: par.elapsed().as_secs_f64(),
            union_identical,
        },
    };
    let path = opts.write_report("parallel_sweep", &report);
    println!("report written to {}", path.display());
    opts.emit_report("parallel", &report);
    assert!(
        report.sweep.iter().all(|p| p.identical_to_baseline) && report.partition.union_identical,
        "parallel execution must be lossless"
    );
}
