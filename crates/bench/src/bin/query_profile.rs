//! **Query profile** — the overhead budget of per-operator profiling.
//!
//! Every SELECT executed while telemetry is on runs with per-operator
//! tallies (rows, batches, wall time) and feeds the `stardb.op.*` counter
//! family plus the `stardb.query.latency_ns` histogram. That
//! instrumentation must be close to free, or nobody leaves it on. This
//! bench measures the planned Figure-4 region query in interleaved A/B
//! rounds — telemetry off, then on, alternating so drift hits both modes
//! equally — and compares the *minimum* wall time per mode (minimum, not
//! mean: the floor is the honest cost once the noise of scheduling and
//! cache warmup is excluded). The run fails if profiling costs more than
//! the 5% budget DESIGN.md §6g commits to.
//!
//! It also re-checks the tentpole invariant end to end: the `rows=` the
//! EXPLAIN ANALYZE tree reports equal the actual result cardinality.
//!
//! ```text
//! cargo run -p bench --release --bin query_profile [-- --scale 0.05 --seed 2005]
//! ```
//!
//! Emits `BENCH_profile.json`.

use bench::{BenchOpts, TextTable};
use maxbcg::region_query;
use maxbcg::{IterationMode, MaxBcgConfig, MaxBcgDb};
use serde::Serialize;
use skycore::kcorr::KcorrTable;
use skycore::SkyRegion;
use stardb::sql::execute_with;
use stardb::{Database, PlanOptions};
use std::time::Instant;

/// The profiling overhead budget, as a ratio (1.05 = 5%).
const BUDGET: f64 = 1.05;

#[derive(Serialize)]
struct ProfileReport {
    scale: f64,
    galaxies: u64,
    result_rows: u64,
    rounds: u32,
    unprofiled_min_s: f64,
    profiled_min_s: f64,
    overhead_pct: f64,
    latency_ns_p50: u64,
    latency_ns_p95: u64,
    latency_ns_p99: u64,
    analyze: Vec<String>,
}

/// One timed execution; returns (rows, seconds).
fn run_once(db: &mut Database, sql: &str) -> (u64, f64) {
    let t0 = Instant::now();
    let (_, rows) = execute_with(db, sql, &PlanOptions::default())
        .expect("query")
        .rows()
        .expect("rows");
    (rows.len() as u64, t0.elapsed().as_secs_f64())
}

fn main() {
    let opts = BenchOpts::parse();
    obs::set_enabled(true);
    let config = MaxBcgConfig { iteration: IterationMode::SetBased, ..Default::default() };
    let kcorr = KcorrTable::generate(config.kcorr);
    let survey = SkyRegion::new(194.0, 196.5, 1.25, 3.75);
    let sky = opts.sky(survey, &kcorr);
    let mut engine = MaxBcgDb::new(config).expect("schema");
    engine.import_galaxy(&sky, &survey).expect("import");
    let db = engine.db_mut();
    region_query::ensure_region_index(db).expect("index");
    let galaxies = db.row_count("Galaxy").expect("rows");

    let window = survey.shrunk(0.8);
    let sql = region_query::region_select(&window);

    // Warm the buffer pool and the plan path in both modes before timing.
    for _ in 0..3 {
        run_once(db, &sql);
    }
    obs::set_enabled(false);
    for _ in 0..3 {
        run_once(db, &sql);
    }
    obs::set_enabled(true);

    // Interleaved A/B: off/on per round, minimum wall per mode. At small
    // scales a single query is ~1ms and scheduler noise swamps one pass,
    // so the measurement repeats (mins accumulate) until the floor
    // settles under budget — a real regression fails every pass.
    let rounds: u32 = ((200.0 * opts.scale) as u32).clamp(40, 200);
    let mut off_min = f64::INFINITY;
    let mut on_min = f64::INFINITY;
    let mut result_rows = 0;
    for _pass in 0..3 {
        for _ in 0..rounds {
            obs::set_enabled(false);
            let (n_off, s_off) = run_once(db, &sql);
            obs::set_enabled(true);
            let (n_on, s_on) = run_once(db, &sql);
            assert_eq!(n_off, n_on, "profiling changed the result cardinality");
            result_rows = n_on;
            off_min = off_min.min(s_off);
            on_min = on_min.min(s_on);
        }
        if on_min <= off_min * BUDGET {
            break;
        }
    }
    let overhead_pct = (on_min / off_min.max(1e-12) - 1.0) * 100.0;

    // The tentpole invariant, end to end: ANALYZE rows == actual rows.
    let (_, analyzed) = db
        .execute_sql(&format!("EXPLAIN ANALYZE {sql}"))
        .expect("analyze")
        .rows()
        .expect("rows");
    let analyze: Vec<String> =
        analyzed.iter().map(|r| r[0].as_str().unwrap().to_owned()).collect();
    let last = analyze.last().expect("plan lines");
    assert!(
        last.contains(&format!("rows={result_rows}")),
        "ANALYZE output operator must report the actual cardinality \
         ({result_rows} rows): {last:?}"
    );

    let mut table = TextTable::new(&["mode", "min wall (s)"]);
    table.row(&["telemetry off".into(), format!("{off_min:.6}")]);
    table.row(&["telemetry on".into(), format!("{on_min:.6}")]);
    print!("{}", table.render());
    println!("profiling overhead at the floor: {overhead_pct:+.2}% (budget {:.0}%)", (BUDGET - 1.0) * 100.0);
    for l in &analyze {
        println!("  {l}");
    }

    let latency = obs::histogram("stardb.query.latency_ns").snapshot();
    let report = ProfileReport {
        scale: opts.scale,
        galaxies,
        result_rows,
        rounds,
        unprofiled_min_s: off_min,
        profiled_min_s: on_min,
        overhead_pct,
        latency_ns_p50: latency.p50,
        latency_ns_p95: latency.p95,
        latency_ns_p99: latency.p99,
        analyze,
    };
    let path = opts.write_report("profile", &report);
    println!("report written to {}", path.display());
    opts.emit_report("profile", &report);

    assert!(
        on_min <= off_min * BUDGET,
        "profiling overhead {overhead_pct:.2}% exceeds the {:.0}% budget \
         (off {off_min:.6}s, on {on_min:.6}s)",
        (BUDGET - 1.0) * 100.0
    );
}
