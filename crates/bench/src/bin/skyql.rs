//! `skyql` — an interactive SQL shell over a synthetic CAS catalog.
//!
//! Boots a MySkyServer-style database (schema + k-correction + imported
//! galaxies + zone index), then reads SQL statements from stdin — the
//! closest thing to poking at the paper's SkyServer with Query Analyzer.
//!
//! ```text
//! cargo run -p bench --release --bin skyql [-- --scale 0.1]
//! skyql> SELECT COUNT(*) FROM Galaxy WHERE i < 20;
//! skyql> SELECT TOP 5 * FROM Clusters ORDER BY ngal DESC;
//! skyql> .tables
//! skyql> .quit
//! ```

use bench::{BenchOpts, TextTable};
use maxbcg::{IterationMode, MaxBcgConfig, MaxBcgDb};
use skycore::kcorr::KcorrTable;
use skycore::SkyRegion;
use stardb::SqlOutput;
use std::io::{BufRead, Write};

fn main() {
    let opts = BenchOpts::parse();
    let config = MaxBcgConfig { iteration: IterationMode::SetBased, ..Default::default() };
    let kcorr = KcorrTable::generate(config.kcorr);
    let survey = SkyRegion::new(194.0, 196.5, 1.25, 3.75);
    eprintln!("generating sky over {survey} at scale {} ...", opts.scale);
    let sky = opts.sky(survey, &kcorr);
    let mut engine = MaxBcgDb::new(config).expect("schema");
    eprintln!("running the MaxBCG pipeline to populate Candidates/Clusters ...");
    engine
        .run("skyql", &sky, &survey, &survey.shrunk(0.75).expanded(0.5))
        .expect("pipeline");
    let db = engine.db_mut();
    eprintln!(
        "ready: {} galaxies, {} candidates, {} clusters. \
         Type SQL (one line), .tables, .schema <t>, or .quit",
        db.row_count("Galaxy").unwrap_or(0),
        db.row_count("Candidates").unwrap_or(0),
        db.row_count("Clusters").unwrap_or(0),
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    let mut statements = 0u64;
    let mut errors = 0u64;
    let mut profile_on = false;
    loop {
        print!("skyql> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line.eq_ignore_ascii_case(".quit") || line.eq_ignore_ascii_case(".exit") {
            break;
        }
        if line.eq_ignore_ascii_case(".tables") {
            for t in db.table_names() {
                println!("  {t} ({} rows)", db.row_count(&t).unwrap_or(0));
            }
            continue;
        }
        if let Some(t) = line.strip_prefix(".schema ") {
            match db.schema_of(t.trim()) {
                Ok(schema) => {
                    for c in schema.columns() {
                        println!(
                            "  {} {}{}",
                            c.name,
                            c.dtype,
                            if c.nullable { "" } else { " NOT NULL" }
                        );
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if line == ".help" {
            println!("  SQL: SELECT/INSERT/CREATE TABLE/CREATE INDEX/DELETE/TRUNCATE/DROP");
            println!("       EXPLAIN [ANALYZE] SELECT ...");
            println!("  meta: .tables  .schema <table>  \\profile  .quit");
            continue;
        }
        if line == "\\profile" {
            profile_on = !profile_on;
            println!(
                "profile {}",
                if profile_on { "on: every SELECT prints its executed plan" } else { "off" }
            );
            continue;
        }
        statements += 1;
        match db.execute_sql(line) {
            Ok(SqlOutput::Rows { columns, rows }) => {
                let header: Vec<&str> = columns.iter().map(String::as_str).collect();
                let mut t = TextTable::new(&header);
                for row in rows.iter().take(50) {
                    let cells: Vec<String> =
                        row.values().iter().map(ToString::to_string).collect();
                    t.row(&cells);
                }
                print!("{}", t.render());
                if rows.len() > 50 {
                    println!("  ... {} more rows", rows.len() - 50);
                }
                println!("({} rows)", rows.len());
                // \profile: echo the executed plan (EXPLAIN ANALYZE form)
                // for the statement that just ran.
                if profile_on {
                    if let Some(profile) = db.last_profile() {
                        for l in &profile.lines {
                            println!("  {l}");
                        }
                        println!(
                            "  ({} rows in {}s)",
                            profile.plan.rows_out,
                            bench::secs(std::time::Duration::from_nanos(profile.plan.wall_ns))
                        );
                    }
                }
            }
            Ok(SqlOutput::Affected(n)) => println!("({n} rows affected)"),
            Ok(SqlOutput::Done) => println!("(ok)"),
            Err(e) => {
                errors += 1;
                println!("error: {e}");
            }
        }
    }
    // Session telemetry: the boot pipeline's counters plus the shell tally
    // and the planner's access-path counters for everything typed above.
    opts.emit_report(
        "skyql",
        &serde_json::json!({
            "statements": statements,
            "errors": errors,
            "galaxies": db.row_count("Galaxy").unwrap_or(0),
            "clusters": db.row_count("Clusters").unwrap_or(0),
            "plan": {
                "index_scans": obs::counter("stardb.plan.index_scans").get(),
                "full_scans": obs::counter("stardb.plan.full_scans").get(),
                "pushed_predicates": obs::counter("stardb.plan.pushed_predicates").get(),
                "rows_pruned": obs::counter("stardb.plan.rows_pruned").get(),
            },
        }),
    );
}
