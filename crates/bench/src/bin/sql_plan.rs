//! **SQL plan** — the streaming planner vs the planner-free reference
//! pipeline on the paper's region queries.
//!
//! Imports a sky into `Galaxy`, builds the `(ra, dec)` secondary index,
//! then runs a Figure-4-shaped window selection twice: once through
//! `PlanOptions::default()` (index range scan, predicate pushdown, hash
//! joins, top-n) and once through `PlanOptions::naive()` (full scan, late
//! filter). The two result sets must be byte-identical; the planned run
//! must examine strictly fewer rows — that is the entire point of the
//! planner — and its EXPLAIN must say "index range scan". A joined
//! aggregate and a top-n query round out the workload.
//!
//! ```text
//! cargo run -p bench --release --bin sql_plan [-- --scale 0.1 --seed 2005]
//! ```
//!
//! Emits `BENCH_sql_plan.json`.

use bench::{BenchOpts, TextTable};
use maxbcg::region_query;
use maxbcg::{IterationMode, MaxBcgConfig, MaxBcgDb};
use serde::Serialize;
use skycore::kcorr::KcorrTable;
use skycore::SkyRegion;
use stardb::sql::execute_with;
use stardb::{Database, PlanOptions, Row};
use std::time::Instant;

#[derive(Serialize)]
struct QueryPoint {
    query: &'static str,
    planned_s: f64,
    naive_s: f64,
    planned_rows_examined: u64,
    naive_rows_examined: u64,
    result_rows: usize,
    identical: bool,
}

#[derive(Serialize)]
struct PlanReport {
    scale: f64,
    galaxies: u64,
    queries: Vec<QueryPoint>,
    index_scans: u64,
    full_scans: u64,
    pushed_predicates: u64,
    rows_pruned: u64,
    /// Per-query latency percentiles from `stardb.query.latency_ns` over
    /// every profiled SELECT of the workload (both pipelines).
    latency_ns_p50: u64,
    latency_ns_p95: u64,
    latency_ns_p99: u64,
}

/// Run `sql` under `opts`, returning (sorted rows, rows examined, secs).
/// "Rows examined" is scan output plus everything the scans pruned — the
/// figure an index range scan shrinks.
fn measure(db: &mut Database, sql: &str, opts: &PlanOptions) -> (Vec<Row>, u64, f64) {
    let pruned = obs::counter("stardb.plan.rows_pruned");
    let filtered = obs::counter("stardb.exec.rows_filtered");
    let (p0, f0) = (pruned.get(), filtered.get());
    let t0 = Instant::now();
    let (_, mut rows) = execute_with(db, sql, opts).expect("query").rows().expect("rows");
    let secs = t0.elapsed().as_secs_f64();
    let examined = rows.len() as u64 + (pruned.get() - p0) + (filtered.get() - f0);
    rows.sort_by_key(|a| a.encode());
    (rows, examined, secs)
}

fn main() {
    let opts = BenchOpts::parse();
    obs::set_enabled(true);
    let config = MaxBcgConfig { iteration: IterationMode::SetBased, ..Default::default() };
    let kcorr = KcorrTable::generate(config.kcorr);
    let survey = SkyRegion::new(194.0, 196.5, 1.25, 3.75);
    let sky = opts.sky(survey, &kcorr);
    let mut engine = MaxBcgDb::new(config).expect("schema");
    engine.import_galaxy(&sky, &survey).expect("import");
    let db = engine.db_mut();
    region_query::ensure_region_index(db).expect("index");
    let galaxies = db.row_count("Galaxy").expect("rows");
    db.execute_sql("CREATE TABLE Bright (objid BIGINT PRIMARY KEY)").expect("create");
    let (_, bright) =
        db.execute_sql("SELECT objid FROM Galaxy WHERE i < 19").unwrap().rows().unwrap();
    for chunk in bright.chunks(64) {
        let vals: Vec<String> =
            chunk.iter().map(|r| format!("({})", r.i64(0).unwrap())).collect();
        db.execute_sql(&format!("INSERT INTO Bright VALUES {}", vals.join(", ")))
            .expect("fill Bright");
    }

    // The shrunk window makes the index selective: the query touches a
    // fraction of Galaxy, so the planned scan must examine strictly fewer
    // rows than the naive full pass.
    let window = survey.shrunk(0.8);
    let region_sql = region_query::region_select(&window);
    let queries: Vec<(&'static str, String)> = vec![
        ("region_window", region_sql.clone()),
        (
            "joined_aggregate",
            format!(
                "SELECT COUNT(*) FROM Galaxy g JOIN Bright b ON g.objid = b.objid \
                 WHERE g.ra BETWEEN {} AND {}",
                window.ra_min, window.ra_max
            ),
        ),
        (
            "top_n",
            format!(
                "SELECT objid, i FROM Galaxy WHERE ra BETWEEN {} AND {} \
                 ORDER BY i DESC, objid LIMIT 20",
                window.ra_min, window.ra_max
            ),
        ),
    ];

    // EXPLAIN must show the index path before we measure it.
    let (_, plan) =
        db.execute_sql(&format!("EXPLAIN {region_sql}")).expect("explain").rows().expect("rows");
    let steps: Vec<String> = plan.iter().map(|r| r[0].as_str().unwrap().to_owned()).collect();
    assert!(
        steps[0].contains("index range scan Galaxy") && steps[0].contains(region_query::REGION_INDEX),
        "region query must plan as an index range scan: {steps:?}"
    );
    println!("plan for {}:", queries[0].0);
    for s in &steps {
        println!("  {s}");
    }

    let plan_counters = [
        obs::counter("stardb.plan.index_scans"),
        obs::counter("stardb.plan.full_scans"),
        obs::counter("stardb.plan.pushed_predicates"),
        obs::counter("stardb.plan.rows_pruned"),
    ];
    let base: Vec<u64> = plan_counters.iter().map(|c| c.get()).collect();

    let mut points = Vec::new();
    let mut table =
        TextTable::new(&["query", "planned (s)", "naive (s)", "rows examined", "naive examined"]);
    for (name, sql) in &queries {
        let (planned, planned_examined, planned_s) = measure(db, sql, &PlanOptions::default());
        let (naive, naive_examined, naive_s) = measure(db, sql, &PlanOptions::naive());
        let identical = planned == naive;
        assert!(identical, "{name}: planned and naive result sets diverged");
        assert!(
            planned_examined < naive_examined,
            "{name}: planned path must examine strictly fewer rows \
             ({planned_examined} vs {naive_examined})"
        );
        table.row(&[
            (*name).into(),
            format!("{planned_s:.4}"),
            format!("{naive_s:.4}"),
            planned_examined.to_string(),
            naive_examined.to_string(),
        ]);
        points.push(QueryPoint {
            query: name,
            planned_s,
            naive_s,
            planned_rows_examined: planned_examined,
            naive_rows_examined: naive_examined,
            result_rows: planned.len(),
            identical,
        });
    }
    print!("{}", table.render());

    let delta: Vec<u64> =
        plan_counters.iter().zip(&base).map(|(c, b)| c.get() - b).collect();
    let latency = obs::histogram("stardb.query.latency_ns").snapshot();
    let report = PlanReport {
        scale: opts.scale,
        galaxies,
        queries: points,
        index_scans: delta[0],
        full_scans: delta[1],
        pushed_predicates: delta[2],
        rows_pruned: delta[3],
        latency_ns_p50: latency.p50,
        latency_ns_p95: latency.p95,
        latency_ns_p99: latency.p99,
    };
    assert!(report.index_scans > 0, "the workload must hit the index path");
    println!(
        "plan counters for the workload: {} index scans, {} full scans, \
         {} pushed predicates, {} rows pruned",
        report.index_scans, report.full_scans, report.pushed_predicates, report.rows_pruned
    );
    println!(
        "query latency: p50 {}ns, p95 {}ns, p99 {}ns over {} profiled SELECTs",
        report.latency_ns_p50, report.latency_ns_p95, report.latency_ns_p99, latency.count
    );
    let path = opts.write_report("sql_plan", &report);
    println!("report written to {}", path.display());
    opts.emit_report("sql_plan", &report);
}
