//! **Table 1** — SQL Server cluster performance, with no partitioning and
//! with 3-way partitioning: per-task elapsed/cpu/I/O, per-partition galaxy
//! counts, and the 1-node/3-node ratios (paper: elapsed 48%, cpu 127%,
//! I/O 126%).
//!
//! ```text
//! cargo run -p bench --release --bin table1 [-- --scale 0.1 --seed 2005]
//! ```

use bench::{secs, BenchOpts, PaperCase, TextTable};
use maxbcg::stats::RunReport;
use maxbcg::{run_partitioned, IterationMode, MaxBcgConfig, MaxBcgDb};
use serde::Serialize;
use skycore::kcorr::KcorrTable;

#[derive(Serialize)]
struct Table1Report {
    scale: f64,
    seed: u64,
    sequential: RunReport,
    partitions: Vec<RunReport>,
    elapsed_ratio: f64,
    cpu_ratio: f64,
    io_ratio: f64,
    galaxies_sequential: u64,
    galaxies_partitioned_total: u64,
    union_identical: bool,
    paper: PaperNumbers,
}

#[derive(Serialize)]
struct PaperNumbers {
    elapsed_ratio: f64,
    cpu_ratio: f64,
    io_ratio: f64,
}

fn main() {
    let opts = BenchOpts::parse();
    let case = PaperCase::full();
    let config = MaxBcgConfig {
        iteration: IterationMode::Cursor,
        db: bench::server_db(),
        workers: opts.workers,
        ..Default::default()
    };
    let kcorr = KcorrTable::generate(config.kcorr);
    println!(
        "Table 1 reproduction: target {} inside import {} at density scale {}",
        case.target, case.import, opts.scale
    );
    let sky = opts.sky(case.import, &kcorr);
    println!("  sky: {} galaxies, {} injected clusters\n", sky.galaxies.len(), sky.truth.len());

    // ---- no partitioning --------------------------------------------------
    let mut seq_db = MaxBcgDb::new(config).expect("schema");
    let sequential = seq_db
        .run("No Partitioning", &sky, &case.import, &case.candidates)
        .expect("sequential run");

    // ---- 3-node partitioning ----------------------------------------------
    let par = run_partitioned(&config, &sky, &case.import, &case.candidates, 3)
        .expect("partitioned run");
    let union_identical = par.clusters == seq_db.clusters().expect("clusters");

    // ---- render -------------------------------------------------------------
    let mut t = TextTable::new(&["", "Task", "elapse (s)", "cpu (s)", "I/O", "Galaxies"]);
    let block = |t: &mut TextTable, label: &str, r: &RunReport| {
        for (i, name) in maxbcg::stats::TABLE1_TASKS.iter().enumerate() {
            let task = r.task(name).expect("task present");
            t.row(&[
                if i == 0 { label.to_owned() } else { String::new() },
                task.name.clone(),
                secs(task.elapsed()),
                secs(task.cpu),
                (task.physical_reads + task.physical_writes).to_string(),
                String::new(),
            ]);
        }
        t.row(&[
            String::new(),
            "total".into(),
            secs(r.total_elapsed()),
            secs(r.total_cpu()),
            r.total_io().to_string(),
            r.galaxies.to_string(),
        ]);
    };
    block(&mut t, "No Partitioning", &sequential);
    for p in &par.partitions {
        block(&mut t, &p.report.label, &p.report);
    }
    t.row(&[
        "Partitioning Total".into(),
        String::new(),
        secs(par.elapsed()),
        secs(par.total_cpu()),
        par.total_io().to_string(),
        par.total_galaxies().to_string(),
    ]);
    let elapsed_ratio = par.elapsed().as_secs_f64() / sequential.total_elapsed().as_secs_f64();
    let cpu_ratio = par.total_cpu().as_secs_f64() / sequential.total_cpu().as_secs_f64();
    let io_ratio = par.total_io() as f64 / sequential.total_io().max(1) as f64;
    t.row(&[
        "Ratio 1node/3node".into(),
        String::new(),
        format!("{:.0}%", elapsed_ratio * 100.0),
        format!("{:.0}%", cpu_ratio * 100.0),
        format!("{:.0}%", io_ratio * 100.0),
        String::new(),
    ]);
    println!("{}", t.render());
    println!("paper's ratios:        elapsed 48%   cpu 127%   I/O 126%");
    println!(
        "union of partition answers identical to sequential: {}",
        if union_identical { "YES" } else { "NO — BUG" }
    );

    let report = Table1Report {
        scale: opts.scale,
        seed: opts.seed,
        sequential,
        partitions: par.partitions.iter().map(|p| p.report.clone()).collect(),
        elapsed_ratio,
        cpu_ratio,
        io_ratio,
        galaxies_sequential: sky.galaxies.len() as u64,
        galaxies_partitioned_total: par.total_galaxies(),
        union_identical,
        paper: PaperNumbers { elapsed_ratio: 0.48, cpu_ratio: 1.27, io_ratio: 1.26 },
    };
    let path = opts.write_report("table1", &report);
    println!("report written to {}", path.display());
    opts.emit_report("table1", &report);
    assert!(union_identical, "partitioned execution must be lossless");
}
