//! **Table 2** — the scale factors converting the TAM test case (one 600
//! MHz CPU, one 0.25 deg² field, z-steps of 0.01, 0.25 deg buffer) to the
//! SQL test case (dual 2.6 GHz, 66 deg², z-steps of 0.001, 0.5 deg
//! buffer). The paper's factors: CPUs 0.5, CPU speed ~0.25, target area
//! 264, z-steps+buffer 25 → total 825.
//!
//! The hardware factors are definitional; the physics factor (finer grid ×
//! larger buffer) is *measured* by running the same fields at both
//! settings.
//!
//! ```text
//! cargo run -p bench --release --bin table2 [-- --scale 0.1]
//! ```

use bench::{BenchOpts, TextTable};
use gridsim::das::NetworkModel;
use gridsim::node::tam_cluster;
use gridsim::{DataArchiveServer, GridCluster};
use serde::Serialize;
use skycore::kcorr::{KcorrConfig, KcorrTable};
use skycore::SkyRegion;
use tam::{publish_region, run_region, TamConfig};

#[derive(Serialize)]
struct Table2Report {
    scale: f64,
    cpus_factor: f64,
    cpu_speed_factor: f64,
    area_factor: f64,
    physics_factor_measured: f64,
    physics_factor_paper: f64,
    total_measured: f64,
    total_paper: f64,
    prod_per_field_s: f64,
    ideal_per_field_s: f64,
}

fn measure(cfg: &TamConfig, opts: &BenchOpts, target: SkyRegion) -> f64 {
    let kcorr = KcorrTable::generate(cfg.kcorr);
    // Survey leaves room for the widest buffer in the sweep.
    let survey = target.expanded(1.2);
    let sky = opts.sky(survey, &kcorr);
    let das = DataArchiveServer::new(NetworkModel::instant());
    let (fields, _) = publish_region(&sky, &target, cfg, &das);
    let cluster = GridCluster::new(tam_cluster());
    let run = run_region(&cluster, &das, fields, cfg);
    assert!(run.failures.is_empty(), "{:?}", run.failures);
    run.mean_field_compute.as_secs_f64()
}

fn main() {
    let opts = BenchOpts::parse();
    // A 2 x 2 deg block (16 production fields) gives a stable per-field mean.
    let target = SkyRegion::new(180.0, 182.0, -1.0, 1.0);

    println!("measuring TAM per-field cost at production settings (0.25 deg buffer, dz=0.01)...");
    let prod = measure(&TamConfig::default(), &opts, target);
    println!("  {:.2} ms/field on this host", prod * 1e3);
    println!("measuring TAM per-field cost at SQL-equivalent settings (0.5 deg buffer, dz=0.001)...");
    let ideal_cfg = TamConfig {
        buffer_margin: 0.5,
        kcorr: KcorrConfig::sql(),
        ..TamConfig::default()
    };
    let ideal = measure(&ideal_cfg, &opts, target);
    println!("  {:.2} ms/field on this host\n", ideal * 1e3);

    let cpus_factor = 0.5; // 1 TAM CPU vs dual-CPU SQL node
    let cpu_speed_factor = 0.6 / 2.6; // 600 MHz vs 2.6 GHz
    let area_factor = 66.0 / 0.25; // 264 fields
    let physics = ideal / prod;
    let total = cpus_factor * cpu_speed_factor * area_factor * physics;

    let mut t = TextTable::new(&["", "TAM", "SQL Server", "Scale Factor", "paper"]);
    t.row(&["CPUs used".into(), "1".into(), "2".into(), format!("{cpus_factor}"), "0.5".into()]);
    t.row(&[
        "CPU".into(),
        "600 MHz".into(),
        "2.6 GHz".into(),
        format!("{cpu_speed_factor:.3}"),
        "~0.25".into(),
    ]);
    t.row(&[
        "Target field".into(),
        "0.25 deg2".into(),
        "66 deg2".into(),
        format!("{area_factor}"),
        "264".into(),
    ]);
    t.row(&[
        "z-steps + buffer".into(),
        "0.01 / 0.25deg".into(),
        "0.001 / 0.5deg".into(),
        format!("{physics:.1} (measured)"),
        "25".into(),
    ]);
    t.row(&[
        "Total Scale Factor".into(),
        String::new(),
        String::new(),
        format!("{total:.0}"),
        "825".into(),
    ]);
    println!("{}", t.render());

    let report = Table2Report {
        scale: opts.scale,
        cpus_factor,
        cpu_speed_factor,
        area_factor,
        physics_factor_measured: physics,
        physics_factor_paper: 25.0,
        total_measured: total,
        total_paper: 825.0,
        prod_per_field_s: prod,
        ideal_per_field_s: ideal,
    };
    let path = opts.write_report("table2", &report);
    println!("report written to {}", path.display());
    opts.emit_report("table2", &report);
}
