//! **Table 3** — scaled TAM vs measured SQL Server performance for one
//! target region at equivalent physics (fine z grid, 0.5 deg buffers).
//!
//! The paper measures SQL directly (18,635 s on 1 node, 8,988 s on 3) and
//! *scales* TAM (1000 s/field × 264 fields × 25 physics = 825,000 s on one
//! CPU; 165,000 s across the 5-node/10-CPU cluster), giving ratios of 44
//! (per node) and 18 (cluster vs cluster). This binary does the same on
//! one host: TAM per-field cost is measured at production settings, scaled
//! by the measured physics factor and the field count, and compared to the
//! measured database runs. Everything is same-host, so the paper's
//! hardware-normalization factors drop out.
//!
//! **Read the output carefully**: both sides here are compiled Rust, so
//! the measured gap isolates the *architectural* factor (physics penalty ×
//! file-pipeline duplication). The paper's 44x additionally contains the
//! implementation factor of its Tcl/Astrotools baseline, which this
//! reproduction deliberately does not re-create; the binary reports the
//! implied implementation factor as `paper_ratio / measured_ratio`. See
//! EXPERIMENTS.md for the full decomposition.
//!
//! ```text
//! cargo run -p bench --release --bin table3 [-- --scale 0.1]
//! ```

use bench::{BenchOpts, PaperCase, TextTable};
use gridsim::das::NetworkModel;
use gridsim::node::tam_cluster;
use gridsim::{DataArchiveServer, GridCluster};
use maxbcg::{run_partitioned, IterationMode, MaxBcgConfig, MaxBcgDb};
use serde::Serialize;
use skycore::kcorr::{KcorrConfig, KcorrTable};
use skycore::SkyRegion;
use tam::{publish_region, run_region, TamConfig};

#[derive(Serialize)]
struct Table3Report {
    scale: f64,
    tam_per_field_s: f64,
    physics_factor: f64,
    fields: usize,
    tam_scaled_1cpu_s: f64,
    tam_scaled_cluster_s: f64,
    sql_1node_s: f64,
    sql_3node_s: f64,
    ratio_single: f64,
    ratio_cluster: f64,
    paper_ratio_single: f64,
    paper_ratio_cluster: f64,
}

fn main() {
    let opts = BenchOpts::parse();
    let case = PaperCase::full();
    let fields = (case.target.area_deg2() / 0.25).round() as usize;

    // ---- TAM side: measure, then scale as the paper does ----------------
    println!("measuring TAM per-field cost (production settings)...");
    let tam_cfg = TamConfig::default();
    let kcorr_tam = KcorrTable::generate(tam_cfg.kcorr);
    let probe_target = SkyRegion::new(180.0, 182.0, -1.0, 1.0);
    let probe_sky = opts.sky(probe_target.expanded(1.2), &kcorr_tam);
    let das = DataArchiveServer::new(NetworkModel::instant());
    let (probe_fields, _) = publish_region(&probe_sky, &probe_target, &tam_cfg, &das);
    let grid = GridCluster::new(tam_cluster());
    let probe_run = run_region(&grid, &das, probe_fields, &tam_cfg);
    assert!(probe_run.failures.is_empty(), "{:?}", probe_run.failures);
    let per_field = probe_run.mean_field_compute.as_secs_f64();
    println!("  {:.2} ms/field on this host", per_field * 1e3);

    println!("measuring the TAM physics factor (dz 0.001 + 0.5 deg buffer)...");
    let ideal_cfg =
        TamConfig { buffer_margin: 0.5, kcorr: KcorrConfig::sql(), ..TamConfig::default() };
    let das2 = DataArchiveServer::new(NetworkModel::instant());
    let ideal_sky = opts.sky(probe_target.expanded(1.2), &KcorrTable::generate(ideal_cfg.kcorr));
    let (ideal_fields, _) = publish_region(&ideal_sky, &probe_target, &ideal_cfg, &das2);
    let ideal_run = run_region(&grid, &das2, ideal_fields, &ideal_cfg);
    let physics = ideal_run.mean_field_compute.as_secs_f64() / per_field;
    println!("  physics factor {physics:.1} (paper: 25)\n");

    let tam_1cpu = per_field * fields as f64 * physics;
    let tam_cluster_time = tam_1cpu / grid.slots() as f64;

    // ---- SQL side: measured ------------------------------------------------
    let config = MaxBcgConfig { iteration: IterationMode::Cursor, db: bench::server_db(), ..Default::default() };
    let kcorr = KcorrTable::generate(config.kcorr);
    let sky = opts.sky(case.import, &kcorr);
    println!("running the database implementation (1 node)...");
    let mut db = MaxBcgDb::new(config).expect("schema");
    let seq = db.run("sql-1node", &sky, &case.import, &case.candidates).expect("run");
    let sql_1node = seq.total_elapsed().as_secs_f64();
    println!("  {sql_1node:.1} s");
    println!("running the database implementation (3-node partitioned)...");
    let par =
        run_partitioned(&config, &sky, &case.import, &case.candidates, 3).expect("partitioned");
    let sql_3node = par.elapsed().as_secs_f64();
    println!("  {sql_3node:.1} s\n");

    // ---- Table 3 -------------------------------------------------------------
    let ratio_single = tam_1cpu / sql_1node;
    let ratio_cluster = tam_cluster_time / sql_3node;
    let mut t = TextTable::new(&["Cluster", "Nodes", "Time (s)", "Ratio", "paper"]);
    t.row(&["TAM (scaled)".into(), "1 cpu".into(), format!("{tam_1cpu:.1}"), String::new(), "825,000".into()]);
    t.row(&[
        "SQL Server".into(),
        "1".into(),
        format!("{sql_1node:.1}"),
        format!("{ratio_single:.1}"),
        "18,635 (44)".into(),
    ]);
    t.row(&[
        "TAM (scaled)".into(),
        "5 (10 cpus)".into(),
        format!("{tam_cluster_time:.1}"),
        String::new(),
        "165,000".into(),
    ]);
    t.row(&[
        "SQL Server".into(),
        "3".into(),
        format!("{sql_3node:.1}"),
        format!("{ratio_cluster:.1}"),
        "8,988 (18)".into(),
    ]);
    println!("{}", t.render());
    println!("decomposition: measured architectural ratio {ratio_single:.2}x;");
    println!("the paper's 44x / measured implies a ~{:.0}x implementation factor", 44.0 / ratio_single.max(1e-9));
    println!("for the original Tcl/Astrotools stack relative to compiled code");
    println!("(both sides here are Rust by design — see EXPERIMENTS.md).");

    let report = Table3Report {
        scale: opts.scale,
        tam_per_field_s: per_field,
        physics_factor: physics,
        fields,
        tam_scaled_1cpu_s: tam_1cpu,
        tam_scaled_cluster_s: tam_cluster_time,
        sql_1node_s: sql_1node,
        sql_3node_s: sql_3node,
        ratio_single,
        ratio_cluster,
        paper_ratio_single: 44.0,
        paper_ratio_cluster: 18.0,
    };
    let path = opts.write_report("table3", &report);
    println!("report written to {}", path.display());
    opts.emit_report("table3", &report);
}
