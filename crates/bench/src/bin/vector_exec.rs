//! **Vectorized execution** — row-at-a-time vs columnar batch pipeline on
//! the paper's region workload.
//!
//! Imports a sky into `Galaxy` at two densities, then runs the
//! Figure-4-shaped window selection and a hash-join query through both
//! pipelines: `PlanOptions::rowwise()` (the classic `Row` exchange) and
//! `PlanOptions::default()` (column-major `ColumnBatch` exchange with
//! compiled predicate kernels and late materialization). Result sets must
//! be byte-identical; the scan+filter kernel — the window predicate with
//! no sort, where vectorization does its work — must be at least 1.5x
//! faster columnar at the default scale.
//!
//! ```text
//! cargo run -p bench --release --bin vector_exec [-- --scale 0.05 --seed 2005]
//! ```
//!
//! Emits `BENCH_vector.json`.

use bench::{BenchOpts, TextTable};
use maxbcg::{IterationMode, MaxBcgConfig, MaxBcgDb};
use serde::Serialize;
use skycore::kcorr::KcorrTable;
use skycore::SkyRegion;
use skysim::{Sky, SkyConfig};
use stardb::sql::execute_with;
use stardb::{Database, PlanOptions};
use std::time::Instant;

/// Timed comparison of one query under both pipelines.
#[derive(Serialize)]
struct QueryPoint {
    query: &'static str,
    scale: f64,
    galaxies: u64,
    rowwise_s: f64,
    vectorized_s: f64,
    speedup: f64,
    result_rows: usize,
    identical: bool,
}

#[derive(Serialize)]
struct VectorReport {
    scale: f64,
    queries: Vec<QueryPoint>,
    /// Columnar speedup on the scan+filter kernel at the default scale —
    /// the headline number, asserted >= 1.5.
    kernel_speedup: f64,
    /// Column batches emitted by vectorized scans over the workload.
    vector_batches: u64,
    /// Sum of per-batch kept-row percentages (divide by `vector_batches`
    /// for the mean scan selectivity).
    vector_selectivity_pct: u64,
    /// Rows materialized at the columnar pipeline's boundary.
    vector_materialized_rows: u64,
    /// Allocation-churn fixes riding along with the vectorized pipeline,
    /// recorded so A/B reports state what changed on the row path too.
    alloc_note: &'static str,
}

const ALLOC_NOTE: &str = "before: HashTable::probe encoded a fresh key Vec per probe row and \
     operator outputs grew from empty; after: one scratch key buffer is reused across rows and \
     batches, and join/filter outputs are pre-sized to the incoming batch length";

/// Run `sql` under `opts` `iters` times; return (sorted row encodings,
/// best wall seconds). Best-of keeps the comparison insensitive to one-off
/// scheduling noise; the digest is the byte-identity witness.
fn measure(db: &mut Database, sql: &str, opts: &PlanOptions, iters: usize) -> (Vec<Vec<u8>>, f64) {
    let mut best = f64::INFINITY;
    let mut digest = Vec::new();
    for _ in 0..iters {
        let t0 = Instant::now();
        let (_, rows) = execute_with(db, sql, opts).expect("query").rows().expect("rows");
        let secs = t0.elapsed().as_secs_f64();
        best = best.min(secs);
        let mut keys: Vec<Vec<u8>> = rows.iter().map(stardb::Row::encode).collect();
        keys.sort();
        digest = keys;
    }
    (digest, best)
}

/// Build a Galaxy database at `scale` with a companion `Bright` table for
/// the join workload. No secondary index: the window queries stay full
/// scans with pushed predicates, isolating the scan+filter kernel.
fn setup(scale: f64, seed: u64, survey: &SkyRegion) -> (MaxBcgDb, u64) {
    let config = MaxBcgConfig { iteration: IterationMode::SetBased, ..Default::default() };
    let kcorr = KcorrTable::generate(config.kcorr);
    let sky = Sky::generate(*survey, &SkyConfig::scaled(scale), &kcorr, seed);
    let mut engine = MaxBcgDb::new(config).expect("schema");
    engine.import_galaxy(&sky, survey).expect("import");
    let db = engine.db_mut();
    let galaxies = db.row_count("Galaxy").expect("rows");
    db.execute_sql("CREATE TABLE Bright (objid BIGINT PRIMARY KEY)").expect("create");
    let (_, bright) =
        db.execute_sql("SELECT objid FROM Galaxy WHERE i < 19").unwrap().rows().unwrap();
    for chunk in bright.chunks(64) {
        let vals: Vec<String> =
            chunk.iter().map(|r| format!("({})", r.i64(0).unwrap())).collect();
        db.execute_sql(&format!("INSERT INTO Bright VALUES {}", vals.join(", ")))
            .expect("fill Bright");
    }
    (engine, galaxies)
}

fn main() {
    let opts = BenchOpts::parse();
    obs::set_enabled(true);
    let survey = SkyRegion::new(194.0, 196.5, 1.25, 3.75);
    let window = survey.shrunk(0.8);
    let iters = 7;

    let kernel_sql = format!(
        "SELECT objid, ra, dec, i FROM Galaxy \
         WHERE ra BETWEEN {} AND {} AND dec BETWEEN {} AND {}",
        window.ra_min, window.ra_max, window.dec_min, window.dec_max
    );
    let queries: Vec<(&'static str, String)> = vec![
        ("scan_filter_kernel", kernel_sql),
        ("region_window", maxbcg::region_query::region_select(&window)),
        (
            "hash_join",
            format!(
                "SELECT COUNT(*) FROM Galaxy g JOIN Bright b ON g.objid = b.objid \
                 WHERE g.ra BETWEEN {} AND {}",
                window.ra_min, window.ra_max
            ),
        ),
    ];

    let vector_counters = [
        obs::counter("stardb.op.vector.batches"),
        obs::counter("stardb.op.vector.selectivity_pct"),
        obs::counter("stardb.op.vector.materialized_rows"),
    ];

    let mut points = Vec::new();
    let mut kernel_speedup = 0.0;
    let mut table = TextTable::new(&[
        "query", "scale", "galaxies", "rowwise (s)", "vectorized (s)", "speedup",
    ]);
    for scale in [opts.scale * 0.5, opts.scale] {
        let (mut engine, galaxies) = setup(scale, opts.seed, &survey);
        let db = engine.db_mut();
        for (name, sql) in &queries {
            let (rd, rowwise_s) = measure(db, sql, &PlanOptions::rowwise(), iters);
            let (vd, vectorized_s) = measure(db, sql, &PlanOptions::default(), iters);
            let identical = rd == vd;
            assert!(identical, "{name}@{scale}: pipelines must be byte-identical");
            let speedup = rowwise_s / vectorized_s;
            if *name == "scan_filter_kernel" && scale == opts.scale {
                kernel_speedup = speedup;
            }
            table.row(&[
                (*name).into(),
                format!("{scale}"),
                galaxies.to_string(),
                format!("{rowwise_s:.5}"),
                format!("{vectorized_s:.5}"),
                format!("{speedup:.2}x"),
            ]);
            points.push(QueryPoint {
                query: name,
                scale,
                galaxies,
                rowwise_s,
                vectorized_s,
                speedup,
                result_rows: rd.len(),
                identical,
            });
        }
    }
    print!("{}", table.render());

    assert!(
        kernel_speedup >= 1.5,
        "columnar scan+filter kernel must be >= 1.5x the row pipeline, got {kernel_speedup:.2}x"
    );
    let report = VectorReport {
        scale: opts.scale,
        queries: points,
        kernel_speedup,
        vector_batches: vector_counters[0].get(),
        vector_selectivity_pct: vector_counters[1].get(),
        vector_materialized_rows: vector_counters[2].get(),
        alloc_note: ALLOC_NOTE,
    };
    assert!(report.vector_batches > 0, "the vectorized path must have run");
    println!(
        "kernel speedup {:.2}x; {} column batches, {} rows materialized at the boundary",
        report.kernel_speedup, report.vector_batches, report.vector_materialized_rows
    );
    println!("allocation note: {ALLOC_NOTE}");
    let path = opts.write_report("vector", &report);
    println!("report written to {}", path.display());
    opts.emit_report("vector", &report);
}
