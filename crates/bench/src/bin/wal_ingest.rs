//! **WAL ingest** — durability-cost microbenchmark: committed batch
//! ingest through the write-ahead log, across fsync policies and
//! concurrent snapshot readers.
//!
//! The durability story has two prices: the log itself (page images +
//! commit records, fsynced per the policy) and snapshot isolation (MVCC
//! copy-on-write while a reader pins an old epoch). This bench measures
//! both on one matrix: fsync {commit, never} x readers {0, 2, 4}. Each
//! point opens a fresh durable database, seeds it, pins one snapshot per
//! reader thread, then ingests fixed-size batches with one commit per
//! batch while the readers scan their pinned snapshot in a loop and
//! assert it never moves. Reported per point: commit throughput, row
//! throughput, reader scan counts, and the WAL append/fsync deltas.
//!
//! ```text
//! cargo run -p bench --release --bin wal_ingest [-- --scale 0.05 --seed 2005]
//! ```
//!
//! Emits `BENCH_wal.json`.

use bench::{BenchOpts, TextTable};
use serde::Serialize;
use stardb::{
    Column, DataType, Database, DbConfig, FsyncPolicy, Row, Schema, Value, WalConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const READER_SWEEP: [usize; 3] = [0, 2, 4];
const ROWS_PER_BATCH: u64 = 256;

#[derive(Serialize)]
struct IngestPoint {
    fsync: &'static str,
    readers: usize,
    batches: u64,
    rows: u64,
    wall_s: f64,
    commits_per_s: f64,
    rows_per_s: f64,
    reader_scans: u64,
    wal_appends: u64,
    wal_fsyncs: u64,
    mvcc_cow_pages: u64,
}

#[derive(Serialize)]
struct IngestReport {
    scale: f64,
    seed: u64,
    rows_per_batch: u64,
    points: Vec<IngestPoint>,
    fsync_cost_ratio_at_0_readers: f64,
    /// Commit-latency percentiles from `stardb.wal.commit_latency_ns`
    /// across every committed batch of the whole matrix.
    commit_latency_ns_p50: u64,
    commit_latency_ns_p95: u64,
    commit_latency_ns_p99: u64,
}

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("objid", DataType::BigInt),
        Column::new("ra", DataType::Float),
        Column::new("dec", DataType::Float),
    ])
}

fn ingest_batch(db: &mut Database, seed: u64, batch: u64) {
    for j in 0..ROWS_PER_BATCH {
        let objid = (batch * ROWS_PER_BATCH + j) as i64;
        let mix = gridsim::faults::mix64(seed ^ objid as u64);
        db.insert(
            "ingest",
            Row(vec![
                Value::BigInt(objid),
                Value::Float((mix % 3_600_000) as f64 * 1e-4),
                Value::Float(-90.0 + (mix >> 32 & 0x1b_7740) as f64 * 1e-4),
            ]),
        )
        .expect("insert");
    }
    db.commit().expect("commit");
}

fn run_point(opts: &BenchOpts, fsync: FsyncPolicy, readers: usize, batches: u64) -> IngestPoint {
    let dir = std::env::temp_dir().join(format!(
        "stardb-wal-ingest-{}-{readers}-{}",
        if matches!(fsync, FsyncPolicy::Never) { "never" } else { "commit" },
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let wal_cfg = WalConfig { fsync, ..WalConfig::default() };
    let mut db = Database::open(&dir, DbConfig::tiny(2048), wal_cfg).expect("open durable db");
    db.create_clustered_table("ingest", schema(), &["objid"]).expect("schema");
    ingest_batch(&mut db, opts.seed, 0); // seed batch the readers pin

    let appends0 = obs::counter("stardb.wal.appends").get();
    let fsyncs0 = obs::counter("stardb.wal.fsyncs").get();
    let cow0 = obs::counter("stardb.mvcc.cow_pages").get();

    let done = Arc::new(AtomicBool::new(false));
    let reader_handles: Vec<_> = (0..readers)
        .map(|_| {
            let snap = db.snapshot();
            let done = done.clone();
            std::thread::spawn(move || {
                let pinned = snap.row_count("ingest").expect("pinned rows");
                assert_eq!(pinned, ROWS_PER_BATCH, "snapshot must pin the seed batch");
                let mut scans = 0u64;
                loop {
                    let stop = done.load(Ordering::Acquire);
                    let mut rows = 0u64;
                    snap.scan_raw("ingest", |_| {
                        rows += 1;
                        true
                    })
                    .expect("snapshot scan");
                    assert_eq!(rows, pinned, "pinned snapshot moved during ingest");
                    scans += 1;
                    if stop {
                        return scans;
                    }
                }
            })
        })
        .collect();

    let t0 = Instant::now();
    for b in 1..=batches {
        ingest_batch(&mut db, opts.seed, b);
    }
    let wall = t0.elapsed().as_secs_f64();
    done.store(true, Ordering::Release);
    let reader_scans: u64 = reader_handles.into_iter().map(|h| h.join().expect("reader")).sum();

    let rows = batches * ROWS_PER_BATCH;
    let point = IngestPoint {
        fsync: if matches!(fsync, FsyncPolicy::Never) { "never" } else { "commit" },
        readers,
        batches,
        rows,
        wall_s: wall,
        commits_per_s: batches as f64 / wall.max(1e-9),
        rows_per_s: rows as f64 / wall.max(1e-9),
        reader_scans,
        wal_appends: obs::counter("stardb.wal.appends").get() - appends0,
        wal_fsyncs: obs::counter("stardb.wal.fsyncs").get() - fsyncs0,
        mvcc_cow_pages: obs::counter("stardb.mvcc.cow_pages").get() - cow0,
    };
    db.close().expect("close");
    let _ = std::fs::remove_dir_all(&dir);
    point
}

fn main() {
    let opts = BenchOpts::parse();
    obs::set_enabled(true);
    // Scale the batch count with --scale, bounded so CI stays quick.
    let batches = ((400.0 * opts.scale) as u64).clamp(16, 400);

    let mut points = Vec::new();
    for fsync in [FsyncPolicy::Commit, FsyncPolicy::Never] {
        for readers in READER_SWEEP {
            points.push(run_point(&opts, fsync, readers, batches));
        }
    }

    let per_commit = |p: &IngestPoint| p.wall_s / p.batches as f64;
    let fsync_ratio = per_commit(&points[0]) / per_commit(&points[READER_SWEEP.len()]).max(1e-12);

    let mut table = TextTable::new(&[
        "fsync", "readers", "commits/s", "rows/s", "scans", "appends", "fsyncs", "cow",
    ]);
    for p in &points {
        table.row(&[
            p.fsync.to_string(),
            p.readers.to_string(),
            format!("{:.0}", p.commits_per_s),
            format!("{:.0}", p.rows_per_s),
            p.reader_scans.to_string(),
            p.wal_appends.to_string(),
            p.wal_fsyncs.to_string(),
            p.mvcc_cow_pages.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!("fsync=commit / fsync=never cost per commit (0 readers): {fsync_ratio:.2}x");

    let commit_latency = obs::histogram("stardb.wal.commit_latency_ns").snapshot();
    println!(
        "commit latency: p50 {}ns, p95 {}ns, p99 {}ns over {} commits",
        commit_latency.p50, commit_latency.p95, commit_latency.p99, commit_latency.count
    );
    let report = IngestReport {
        scale: opts.scale,
        seed: opts.seed,
        rows_per_batch: ROWS_PER_BATCH,
        points,
        fsync_cost_ratio_at_0_readers: fsync_ratio,
        commit_latency_ns_p50: commit_latency.p50,
        commit_latency_ns_p95: commit_latency.p95,
        commit_latency_ns_p99: commit_latency.p99,
    };
    opts.emit_report("wal", &report);
}
