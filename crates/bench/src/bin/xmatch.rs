//! **Cross-survey XMatch sweep** — the planned zone join as an end-to-end
//! workload: a truth catalog and its re-observation cross-matched by SQL,
//! swept over local worker counts and 1/2/4/8 co-partitioned fabric nodes.
//!
//! Generates a `skysim` sky over a 90 deg² stripe (≈1.26 M truth galaxies
//! at `--scale 1.0`), re-observes it as a second survey (90% complete,
//! 0.3″ positional scatter), loads both as zoned survey tables, and runs
//! the match radius as a planned zone join:
//!
//! * **Identity** — the pair catalog must be byte-for-byte identical at
//!   every worker count and every node count (asserted).
//! * **Pruning** — the zone join must examine strictly fewer candidate
//!   pairs than the n₁·n₂ broadcast nested-loop cross product (asserted
//!   from the `stardb.op.zonejoin.pairs_examined` counter).
//! * **Speed** — wall time must beat a nested-loop matcher extrapolated
//!   from a measured calibration slice by ≥ 5× (asserted).
//! * **Physics** — the fraction of truth objects correctly matched must
//!   sit inside the closed-form band `completeness · Rayleigh(r; σ)`
//!   (asserted to ±0.02).
//!
//! ```text
//! cargo run -p bench --release --bin xmatch [-- --scale 0.05 --seed 2005]
//! ```
//!
//! Emits `BENCH_xmatch.json`.

use bench::{BenchOpts, TextTable};
use distfab::{DistCluster, DistConfig};
use maxbcg::xmatch::{
    brute_force_xmatch, create_survey_table, expected_match_rate, load_survey, run_xmatch,
    XmatchObj, XmatchSpec,
};
use serde::Serialize;
use skycore::kcorr::KcorrTable;
use skycore::{SkyRegion, ZoneScheme};
use skysim::{Sky, SkyConfig, SurveyConfig};
use stardb::{Database, DbConfig, PlanOptions};
use std::time::Instant;

const NODE_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Match radius, arcseconds. 1″ over 0.3″ scatter puts the Rayleigh CDF
/// at 0.996, so the expected correct-match rate is ≈ 0.9 · 0.996.
const RADIUS_ARCSEC: f64 = 1.0;
/// The paper's 30″ zone height: the radius spans a fraction of a zone, so
/// the join band is ±1 zone.
const ZONE_HEIGHT_DEG: f64 = 30.0 / 3600.0;

/// One local measurement at a worker count.
#[derive(Serialize)]
struct WorkerPoint {
    workers: usize,
    wall_s: f64,
    pairs: usize,
    identical_to_one_worker: bool,
}

/// One fabric measurement at a node count.
#[derive(Serialize)]
struct NodePoint {
    nodes: usize,
    wall_s: f64,
    rows_shipped: u64,
    bytes_shipped: u64,
    result_pairs: usize,
    identical_to_local: bool,
    co_partitioned: bool,
}

#[derive(Serialize)]
struct XmatchReport {
    scale: f64,
    radius_arcsec: f64,
    zone_height_deg: f64,
    truth_objects: u64,
    survey2_objects: u64,
    pairs: u64,
    correct_matches: u64,
    match_rate: f64,
    expected_match_rate: f64,
    /// Candidate pairs the zone join actually examined (counter delta of
    /// the canonical single-worker run).
    pairs_examined: u64,
    /// n₁ · n₂ — what a broadcast nested loop would examine.
    cross_product_pairs: u64,
    /// Measured nested-loop calibration: slice size and wall.
    calibration_pairs: u64,
    calibration_wall_s: f64,
    /// The calibration extrapolated to the full cross product.
    nested_loop_extrapolated_s: f64,
    /// Canonical single-worker planned zone-join wall.
    zone_join_wall_s: f64,
    /// `nested_loop_extrapolated_s / zone_join_wall_s` — asserted ≥ 5.
    speedup_vs_nested_loop: f64,
    halo_rows: u64,
    workers_sweep: Vec<WorkerPoint>,
    nodes_sweep: Vec<NodePoint>,
}

/// Truth objects of the generated sky as `(objid, ra, dec)` triples.
fn truth_objects(sky: &Sky) -> Vec<XmatchObj> {
    sky.galaxies.iter().map(|g| (g.objid, g.ra, g.dec)).collect()
}

fn main() {
    let opts = BenchOpts::parse();
    obs::set_enabled(true);
    let region = SkyRegion::new(150.0, 186.0, 1.25, 3.75);
    let kcorr = KcorrTable::generate(skycore::kcorr::KcorrConfig::default());
    let sky = Sky::generate(region, &SkyConfig::scaled(opts.scale), &kcorr, opts.seed);
    let survey_cfg = SurveyConfig::paper();
    let obs2 = sky.second_survey(&survey_cfg, opts.seed + 1);
    let truth = truth_objects(&sky);
    let second: Vec<XmatchObj> = obs2.iter().map(|o| (o.objid, o.ra, o.dec)).collect();
    let (n1, n2) = (truth.len() as u64, second.len() as u64);
    println!(
        "catalogs: {n1} truth x {n2} observed over {:.0} deg2 (scale {})",
        (region.ra_max - region.ra_min) * (region.dec_max - region.dec_min),
        opts.scale
    );

    let radius_deg = RADIUS_ARCSEC / 3600.0;
    let scheme = ZoneScheme::with_height(ZONE_HEIGHT_DEG);
    let max_dec = truth
        .iter()
        .chain(&second)
        .map(|&(_, _, d)| d.abs())
        .fold(0.0f64, f64::max);
    let spec = XmatchSpec::new(radius_deg, scheme, max_dec);

    let mut db = Database::new(DbConfig::in_memory());
    create_survey_table(&mut db, "Survey1").expect("Survey1 schema");
    create_survey_table(&mut db, "Survey2").expect("Survey2 schema");
    load_survey(&mut db, "Survey1", &truth, &scheme, 0.0).expect("load truth");
    load_survey(&mut db, "Survey2", &second, &scheme, spec.margin_deg()).expect("load survey2");

    // Nested-loop calibration: measure the brute-force matcher on a slice
    // and extrapolate its per-pair cost to the full cross product.
    let m = 4000.min(truth.len()).min(second.len());
    let t0 = Instant::now();
    let calib = brute_force_xmatch(&truth[..m], &second[..m], &spec);
    let calibration_wall_s = t0.elapsed().as_secs_f64();
    let calibration_pairs = (m * m) as u64;
    let per_pair_s = calibration_wall_s / calibration_pairs as f64;
    let cross_product_pairs = n1 * n2;
    let nested_loop_extrapolated_s = per_pair_s * cross_product_pairs as f64;
    println!(
        "nested-loop calibration: {m}x{m} slice in {calibration_wall_s:.3}s \
         ({} matched) -> {nested_loop_extrapolated_s:.1}s extrapolated",
        calib.len()
    );

    // Canonical single-worker run, with the pairs-examined counter delta.
    let examined_c = obs::counter("stardb.op.zonejoin.pairs_examined");
    let examined_before = examined_c.get();
    let t0 = Instant::now();
    let reference =
        run_xmatch(&mut db, &spec, "Survey1", "Survey2", 1, &PlanOptions::default())
            .expect("xmatch");
    let zone_join_wall_s = t0.elapsed().as_secs_f64();
    let pairs_examined = examined_c.get() - examined_before;
    let speedup_vs_nested_loop = nested_loop_extrapolated_s / zone_join_wall_s;

    let correct_matches = reference.iter().filter(|&&(a, b)| a == b).count() as u64;
    let match_rate = correct_matches as f64 / n1 as f64;
    let expected = expected_match_rate(
        survey_cfg.completeness,
        survey_cfg.scatter_arcsec,
        radius_deg,
    );
    println!(
        "{} pairs, {correct_matches} correct ({match_rate:.4} vs {expected:.4} expected), \
         {pairs_examined} of {cross_product_pairs} candidate pairs examined, \
         {zone_join_wall_s:.3}s wall ({speedup_vs_nested_loop:.1}x over nested loop)",
        reference.len()
    );

    // Worker-count axis: the stripe decomposition must not change a byte.
    let mut table = TextTable::new(&["axis", "workers/nodes", "wall (s)", "pairs", "identical"]);
    let mut workers_sweep: Vec<WorkerPoint> = Vec::new();
    for &workers in &WORKER_COUNTS {
        let t0 = Instant::now();
        let pairs = run_xmatch(&mut db, &spec, "Survey1", "Survey2", workers, &PlanOptions::default())
            .expect("xmatch");
        let wall_s = t0.elapsed().as_secs_f64();
        let identical = pairs == reference;
        assert!(identical, "{workers} workers diverged from the 1-worker catalog");
        table.row(&[
            "workers".into(),
            workers.to_string(),
            format!("{wall_s:.3}"),
            pairs.len().to_string(),
            identical.to_string(),
        ]);
        workers_sweep.push(WorkerPoint {
            workers,
            wall_s,
            pairs: pairs.len(),
            identical_to_one_worker: identical,
        });
    }

    // Node-count axis: the co-partitioned fabric must answer identically
    // with shard-local joins (no probe-side shuffle).
    let sql = spec.sql("Survey1", "Survey2", None);
    let mut nodes_sweep: Vec<NodePoint> = Vec::new();
    for &nodes in &NODE_COUNTS {
        let mut cfg = DistConfig::new(
            nodes,
            "Survey1",
            "dec",
            region.dec_min - 0.01,
            region.dec_max + 0.01,
        )
        .with_co_shard("Survey2", "zoneid", spec.dzone());
        cfg.scheme = scheme;
        let fab = DistCluster::build(&db, cfg).expect("build fabric");
        let co_partitioned = fab
            .explain_lines(&sql, false)
            .expect("explain")
            .iter()
            .any(|l| l.contains("co-partitioned"));
        assert!(
            nodes == 1 || co_partitioned,
            "the fabric plan at {nodes} nodes is not co-partitioned"
        );
        let t0 = Instant::now();
        let (_, rows) = fab.execute_sql(&sql).expect("fabric xmatch").rows().expect("rows");
        let wall_s = t0.elapsed().as_secs_f64();
        let p = fab.last_dist().expect("profile");
        let pairs: Vec<(i64, i64)> = rows
            .iter()
            .map(|r| (r.i64(0).expect("objid1"), r.i64(1).expect("objid2")))
            .collect();
        let identical = pairs == reference;
        assert!(identical, "{nodes} nodes diverged from the local catalog");
        table.row(&[
            "nodes".into(),
            nodes.to_string(),
            format!("{wall_s:.3}"),
            pairs.len().to_string(),
            identical.to_string(),
        ]);
        nodes_sweep.push(NodePoint {
            nodes,
            wall_s,
            rows_shipped: p.rows_shipped,
            bytes_shipped: p.bytes_shipped,
            result_pairs: pairs.len(),
            identical_to_local: identical,
            co_partitioned,
        });
    }
    print!("{}", table.render());

    let halo_rows = obs::counter("stardb.op.zonejoin.halo_rows").get();
    assert!(pairs_examined > 0, "the zone-join profile never moved");
    assert!(
        pairs_examined < cross_product_pairs,
        "zone join examined {pairs_examined} pairs, no better than the \
         {cross_product_pairs} cross product"
    );
    assert!(
        speedup_vs_nested_loop >= 5.0,
        "planned zone join must beat the extrapolated nested loop by >= 5x, \
         got {speedup_vs_nested_loop:.2}x"
    );
    assert!(
        (match_rate - expected).abs() <= 0.02,
        "correct-match rate {match_rate:.4} outside the expected band around {expected:.4}"
    );

    let report = XmatchReport {
        scale: opts.scale,
        radius_arcsec: RADIUS_ARCSEC,
        zone_height_deg: ZONE_HEIGHT_DEG,
        truth_objects: n1,
        survey2_objects: n2,
        pairs: reference.len() as u64,
        correct_matches,
        match_rate,
        expected_match_rate: expected,
        pairs_examined,
        cross_product_pairs,
        calibration_pairs,
        calibration_wall_s,
        nested_loop_extrapolated_s,
        zone_join_wall_s,
        speedup_vs_nested_loop,
        halo_rows,
        workers_sweep,
        nodes_sweep,
    };
    let path = opts.write_report("xmatch_sweep", &report);
    println!("report written to {}", path.display());
    opts.emit_report("xmatch", &report);
}
