//! **Zone kernel** — `fGetNearbyObjEqZd` microbenchmark: the clustered
//! B-tree path vs the columnar zone-snapshot path, across worker counts.
//!
//! The pipeline stages wrap the zone join in per-galaxy photometry and
//! likelihood work; this bench isolates the join itself. It imports the
//! Table 1 sky, runs `spZone`, then fires the neighbor search once per
//! candidate-region galaxy — first through the clustered `(zoneid, ra,
//! objid)` index (every scan latches buffer-pool pages), then through the
//! immutable struct-of-arrays snapshot (binary-searched RA windows over
//! contiguous columns, no latches) — at 1, 2, and 4 worker threads.
//!
//! Per-query hit checksums are compared across every (path, workers)
//! point: the snapshot changes cost, never answers. At the default scale
//! the snapshot path must be at least 3x faster than the B-tree path at 4
//! workers, with fewer contended latch acquisitions; tiny CI skies print
//! the ratio without asserting it.
//!
//! ```text
//! cargo run -p bench --release --bin zone_kernel [-- --scale 0.05 --seed 2005]
//! ```
//!
//! Emits `BENCH_zone_kernel.json`.

use bench::{secs, BenchOpts, PaperCase, TextTable};
use maxbcg::{visit_nearby_with, MaxBcgConfig, MaxBcgDb, ZoneSnapshot};
use serde::Serialize;
use std::time::Instant;

/// Search radius in degrees: the upper end of the likelihood search radii
/// `fBCGCandidate` issues on the Table 1 sky, so per-query work matches
/// the pipeline's.
const R_DEG: f64 = 0.3;

const WORKER_SWEEP: [usize; 3] = [1, 2, 4];

/// Order-independent digest of one query's hit stream. Sums and XORs are
/// commutative, so worker scheduling cannot change it; the exact distance
/// bits still make any numeric divergence between the paths visible.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
struct QueryDigest {
    hits: u64,
    objid_sum: i64,
    dist_xor: u64,
}

#[derive(Serialize)]
struct KernelPoint {
    path: &'static str,
    workers: usize,
    wall_s: f64,
    queries_per_s: f64,
    latch_waits: u64,
    pairs_examined: u64,
    identical_to_baseline: bool,
}

#[derive(Serialize)]
struct KernelReport {
    scale: f64,
    seed: u64,
    galaxies: usize,
    queries: usize,
    total_hits: u64,
    snapshot_rows: usize,
    snapshot_bytes: usize,
    points: Vec<KernelPoint>,
    btree_over_snapshot_at_4_workers: f64,
}

/// Run every query on `workers` threads and return per-query digests.
/// Queries are split into contiguous chunks; each thread fills its own
/// chunk of the output, so the digest vector is deterministic.
fn run_queries(
    db: &MaxBcgDb,
    snap: Option<&ZoneSnapshot>,
    queries: &[(f64, f64)],
    workers: usize,
) -> Vec<QueryDigest> {
    let mut digests = vec![QueryDigest::default(); queries.len()];
    let chunk = queries.len().div_ceil(workers).max(1);
    std::thread::scope(|s| {
        for (qs, ds) in queries.chunks(chunk).zip(digests.chunks_mut(chunk)) {
            s.spawn(move || {
                for (&(ra, dec), d) in qs.iter().zip(ds.iter_mut()) {
                    visit_nearby_with(db.db(), snap, db.scheme(), ra, dec, R_DEG, |objid, dist, _| {
                        d.hits += 1;
                        d.objid_sum = d.objid_sum.wrapping_add(objid);
                        d.dist_xor ^= dist.to_bits();
                        true
                    })
                    .expect("neighbor search");
                }
            });
        }
    });
    digests
}

fn main() {
    let opts = BenchOpts::parse();
    let case = PaperCase::reduced();
    let config = MaxBcgConfig { db: bench::server_db(), ..Default::default() };
    let mut db = MaxBcgDb::new(config).expect("schema");
    let sky = opts.sky(case.import, db.kcorr());
    println!(
        "Zone kernel: target {} inside import {} at density scale {}",
        case.target, case.import, opts.scale
    );
    println!("  sky: {} galaxies, {} injected clusters", sky.galaxies.len(), sky.truth.len());
    db.import_galaxy(&sky, &case.import).expect("spImportGalaxy");
    db.make_zone().expect("spZone");
    let snap = db.zone_snapshot().expect("zone cache on by default").clone();
    println!(
        "  snapshot: {} rows, {} bytes, epoch {}\n",
        snap.rows(),
        snap.bytes(),
        snap.epoch()
    );

    // One query per candidate-region galaxy, like spMakeCandidates fires.
    let queries: Vec<(f64, f64)> = sky
        .galaxies
        .iter()
        .filter(|g| case.candidates.contains(g.ra, g.dec))
        .map(|g| (g.ra, g.dec))
        .collect();
    assert!(!queries.is_empty(), "candidate region must hold galaxies");

    let latch_waits = obs::counter("stardb.buffer.latch_waits");
    let pairs = obs::counter("maxbcg.neighbors.pairs_examined");
    let mut baseline: Option<Vec<QueryDigest>> = None;
    let mut points = Vec::new();
    let mut walls = std::collections::HashMap::new();
    let mut t = TextTable::new(&[
        "path",
        "workers",
        "wall (s)",
        "queries/s",
        "latch waits",
        "pairs examined",
        "identical",
    ]);
    for path in ["btree", "snapshot"] {
        for workers in WORKER_SWEEP {
            let snap_arg = (path == "snapshot").then_some(&*snap);
            let (latch0, pairs0) = (latch_waits.get(), pairs.get());
            let start = Instant::now();
            let digests = run_queries(&db, snap_arg, &queries, workers);
            let wall = start.elapsed();
            let (latch, pair) = (latch_waits.get() - latch0, pairs.get() - pairs0);
            let identical = match &baseline {
                None => {
                    baseline = Some(digests);
                    true
                }
                Some(b) => *b == digests,
            };
            walls.insert((path, workers), wall.as_secs_f64());
            t.row(&[
                path.to_string(),
                workers.to_string(),
                secs(wall),
                format!("{:.0}", queries.len() as f64 / wall.as_secs_f64()),
                latch.to_string(),
                pair.to_string(),
                if identical { "yes".into() } else { "NO — BUG".into() },
            ]);
            points.push(KernelPoint {
                path,
                workers,
                wall_s: wall.as_secs_f64(),
                queries_per_s: queries.len() as f64 / wall.as_secs_f64(),
                latch_waits: latch,
                pairs_examined: pair,
                identical_to_baseline: identical,
            });
        }
    }
    println!("{}", t.render());

    let ratio = walls[&("btree", 4)] / walls[&("snapshot", 4)];
    println!("B-tree / snapshot wall at 4 workers: {ratio:.2}x");
    let total_hits = baseline.as_ref().map(|b| b.iter().map(|d| d.hits).sum()).unwrap_or(0);
    let report = KernelReport {
        scale: opts.scale,
        seed: opts.seed,
        galaxies: sky.galaxies.len(),
        queries: queries.len(),
        total_hits,
        snapshot_rows: snap.rows(),
        snapshot_bytes: snap.bytes(),
        points,
        btree_over_snapshot_at_4_workers: ratio,
    };
    let path = opts.write_report("zone_kernel", &report);
    println!("report written to {}", path.display());
    opts.emit_report("zone_kernel", &report);

    assert!(
        report.points.iter().all(|p| p.identical_to_baseline),
        "snapshot and B-tree paths must agree on every query"
    );
    // Perf claims only hold once the sky is dense enough that per-query
    // work dominates thread startup; tiny CI skies just print the ratio.
    if opts.scale >= 0.05 {
        assert!(ratio >= 3.0, "snapshot path must be >=3x faster at 4 workers, got {ratio:.2}x");
        let lw = |p: &str| {
            report
                .points
                .iter()
                .find(|k| k.path == p && k.workers == 4)
                .map(|k| k.latch_waits)
                .unwrap_or(0)
        };
        assert!(
            lw("snapshot") <= lw("btree"),
            "snapshot path must not add latch contention ({} vs {})",
            lw("snapshot"),
            lw("btree")
        );
    }
}
