//! Shared harness for the experiment binaries: scenario construction,
//! scaling knobs, table formatting, and JSON report output.
//!
//! Every table/figure binary accepts:
//!
//! * `--scale <f>` — sky density relative to the paper's (default 0.05;
//!   1.0 reproduces the full ~14,000 galaxies/deg² and takes hours, just
//!   like the paper's runs did);
//! * `--seed <n>` — sky seed (default 2005);
//! * `--out <dir>` — where JSON reports land (default `reports/`);
//! * `--workers <n>` — worker threads for the CPU-bound pipeline stages
//!   (default 1 = sequential; catalogs are byte-identical either way).

#![warn(missing_docs)]

use serde::Serialize;
use skycore::kcorr::KcorrTable;
use skycore::SkyRegion;
use skysim::{Sky, SkyConfig};
use std::path::PathBuf;

/// Common command-line options.
#[derive(Debug, Clone)]
pub struct BenchOpts {
    /// Density scale relative to the paper's survey.
    pub scale: f64,
    /// Sky seed.
    pub seed: u64,
    /// Report directory.
    pub out: PathBuf,
    /// Worker threads for the CPU-bound pipeline stages.
    pub workers: usize,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts { scale: 0.05, seed: 2005, out: PathBuf::from("reports"), workers: 1 }
    }
}

impl BenchOpts {
    /// Parse from `std::env::args`.
    pub fn parse() -> Self {
        let mut opts = BenchOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    opts.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--scale needs a float");
                }
                "--seed" => {
                    opts.seed = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--out" => {
                    opts.out = args.next().map(PathBuf::from).expect("--out needs a path");
                }
                "--workers" => {
                    opts.workers = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&w| w >= 1)
                        .expect("--workers needs a positive integer");
                }
                other => {
                    panic!("unknown flag {other} (supported: --scale --seed --out --workers)")
                }
            }
        }
        opts
    }

    /// Generate a sky over `region` at the chosen scale.
    pub fn sky(&self, region: SkyRegion, kcorr: &KcorrTable) -> Sky {
        Sky::generate(region, &SkyConfig::scaled(self.scale), kcorr, self.seed)
    }

    /// Write a JSON report next to the experiment name and return its path.
    pub fn write_report<T: Serialize>(&self, name: &str, report: &T) -> PathBuf {
        std::fs::create_dir_all(&self.out).expect("create report dir");
        let path = self.out.join(format!("{name}.json"));
        let json = serde_json::to_string_pretty(report).expect("serialize report");
        std::fs::write(&path, json).expect("write report");
        path
    }

    /// Capture the global `obs` registry into a unified machine-readable
    /// run report — provenance (git revision, seed), config (scale),
    /// every counter/gauge/histogram and finished span, plus the
    /// experiment-specific `payload` — and write it as `BENCH_{name}.json`
    /// in the current directory (the workspace root under `cargo run`).
    /// Returns the path. Every experiment binary calls this once, after
    /// its measured phases, so all BENCH files share one schema.
    pub fn emit_report<T: Serialize>(&self, name: &str, payload: &T) -> PathBuf {
        let report = obs::RunReport::capture(name)
            .with_seed(self.seed)
            .with_config("scale", self.scale)
            .with_payload(payload);
        let path = report.write(std::path::Path::new(".")).expect("write BENCH report");
        println!("machine report: {}", path.display());
        path
    }
}

/// The scaled-down analogue of the paper's test case: the target region,
/// its 0.5 deg candidate buffer (B), and the import region (P). To keep
/// bench wall times sane the default geometry is a 3 x 2 deg² target in a
/// 5 x 4 deg² import region — the same nesting as the paper's 66-in-104,
/// at 1/11 the area; `--scale` controls density independently.
#[derive(Debug, Clone, Copy)]
pub struct PaperCase {
    /// The target area T.
    pub target: SkyRegion,
    /// The candidate window B = T + 0.5 deg.
    pub candidates: SkyRegion,
    /// The import region P = T + 1.0 deg.
    pub import: SkyRegion,
}

impl PaperCase {
    /// The reduced default case.
    pub fn reduced() -> Self {
        let target = SkyRegion::new(180.0, 183.0, -1.0, 1.0);
        PaperCase { target, candidates: target.expanded(0.5), import: target.expanded(1.0) }
    }

    /// The paper's full 66 deg² target inside 104 deg².
    pub fn full() -> Self {
        let target = SkyRegion::paper_target_66();
        PaperCase { target, candidates: target.expanded(0.5), import: target.expanded(1.0) }
    }
}

/// Simple fixed-width table printer.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
    }

    /// Render with right-aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format seconds with sensible precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// The database configuration experiment binaries run with: a 2 GB buffer
/// pool (the paper's SQL nodes had 2 GB of RAM) over the modeled spinning
/// disk, so Table 1's elapsed/cpu/I/O decomposition matches the paper's
/// conditions instead of a deliberately starved test pool.
pub fn server_db() -> stardb::DbConfig {
    stardb::DbConfig { buffer_frames: 262_144, disk: stardb::DiskProfile::spinning_disk() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_opts() {
        let o = BenchOpts::default();
        assert_eq!(o.scale, 0.05);
        assert_eq!(o.out, PathBuf::from("reports"));
    }

    #[test]
    fn paper_case_nesting() {
        for case in [PaperCase::reduced(), PaperCase::full()] {
            assert_eq!(case.target.expanded(0.5), case.candidates);
            assert_eq!(case.target.expanded(1.0), case.import);
        }
        assert!((PaperCase::full().target.area_deg2() - 66.0).abs() < 1e-9);
    }

    #[test]
    fn text_table_renders_aligned() {
        let mut t = TextTable::new(&["task", "elapsed"]);
        t.row(&["spZone".into(), "563.7".into()]);
        t.row(&["fBCGCandidate".into(), "15758.2".into()]);
        let s = t.render();
        assert!(s.contains("spZone"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn emit_report_captures_registry_and_provenance() {
        obs::counter("bench.test.marker").incr();
        let opts = BenchOpts::default();
        let path = opts.emit_report("benchunit", &serde_json::json!({"rows": 1}));
        assert_eq!(path.file_name().unwrap(), "BENCH_benchunit.json");
        let body = std::fs::read_to_string(&path).unwrap();
        let report = obs::RunReport::from_json(&body).unwrap();
        assert_eq!(report.seed, Some(2005));
        assert!(report.counters.contains_key("bench.test.marker"));
        assert!(report.config.contains_key("scale"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn report_written_to_disk() {
        let dir = std::env::temp_dir().join(format!("benchrep-{}", std::process::id()));
        let opts = BenchOpts { out: dir.clone(), ..BenchOpts::default() };
        #[derive(Serialize)]
        struct R {
            x: u32,
        }
        let path = opts.write_report("unit", &R { x: 7 });
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("\"x\": 7"));
        std::fs::remove_dir_all(dir).ok();
    }
}
