//! The "gridified" MaxBCG of §4: deploy the code to the Data-Grid nodes
//! hosting CAS partitions, run in parallel, collect results at the origin.
//!
//! "When the user submits the MaxBCG application, upon authentication and
//! authorization, the SQL code (about 500 lines) is deployed on the
//! available Data-Grid nodes hosting the CAS database system. Each node
//! will analyze a piece of the sky in parallel and store the results
//! locally or, depending on the policy, transfer the final results back to
//! the origin." Autonomy is modeled by nodes belonging to different
//! organizations with their own deployment policies.

use crate::users::UserId;
use gridsim::FaultPlan;
use maxbcg::{IterationMode, MaxBcgConfig, MaxBcgDb};
use skycore::types::Cluster;
use skycore::SkyRegion;
use skysim::Sky;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

struct GridObs {
    submissions: obs::Counter,
    nodes_run: obs::Counter,
    panics_contained: obs::Counter,
    refusals: obs::Counter,
    failovers: obs::Counter,
    clusters_collected: obs::Counter,
}

/// Grid-deployment accounting under `casjobs.grid.*`: `panics_contained`
/// counts node attempts that died and were absorbed by the coordinator
/// (crash containment), `refusals` counts authorization denials (policy,
/// never failed over), `failovers` counts lost partitions re-run to
/// completion on a surviving host.
fn gobs() -> &'static GridObs {
    static G: OnceLock<GridObs> = OnceLock::new();
    G.get_or_init(|| GridObs {
        submissions: obs::counter("casjobs.grid.submissions"),
        nodes_run: obs::counter("casjobs.grid.nodes_run"),
        panics_contained: obs::counter("casjobs.grid.panics_contained"),
        refusals: obs::counter("casjobs.grid.refusals"),
        failovers: obs::counter("casjobs.grid.failovers"),
        clusters_collected: obs::counter("casjobs.grid.clusters_collected"),
    })
}

/// What a node does with its results (the "policy" of §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultPolicy {
    /// Ship the cluster catalog back to the submitting site.
    TransferBack,
    /// Keep results local; only row counts travel.
    StoreLocally,
}

/// One Data-Grid node hosting a CAS partition.
pub struct CasNode {
    /// Node name (e.g. `fnal-cas`).
    pub name: String,
    /// Hosting organization (e.g. `Fermilab`).
    pub organization: String,
    /// The stripe of sky this node's CAS database holds.
    pub native: SkyRegion,
    /// The stripe actually imported (native plus duplicated buffers).
    pub imported: SkyRegion,
    /// Result-return policy.
    pub policy: ResultPolicy,
    /// Whether this node accepts code deployment from the submitter's
    /// organization (authorization).
    pub accepts_deployment: bool,
}

/// Outcome of one node's run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Node name.
    pub node: String,
    /// Whether the code was deployed and ran.
    pub deployed: bool,
    /// Clusters found natively (present only under
    /// [`ResultPolicy::TransferBack`]).
    pub clusters: Vec<Cluster>,
    /// Clusters counted locally (always present).
    pub cluster_count: u64,
    /// Node wall time.
    pub elapsed: Duration,
    /// Failure message, if the node errored.
    pub error: Option<String>,
    /// Host that re-ran this node's partition after it was lost
    /// (`"origin"` when no surviving node was available to adopt it).
    pub recovered_by: Option<String>,
}

/// A federation of CAS-hosting nodes.
pub struct DataGrid {
    sky: Arc<Sky>,
    nodes: Vec<CasNode>,
    config: MaxBcgConfig,
    faults: Option<FaultPlan>,
}

/// A full grid run.
#[derive(Debug, Clone)]
pub struct GridRunReport {
    /// Submitting user.
    pub user: UserId,
    /// Per-node outcomes.
    pub outcomes: Vec<NodeOutcome>,
    /// Clusters transferred back to the origin, merged and sorted.
    pub collected: Vec<Cluster>,
    /// Wall time of the parallel phase.
    pub elapsed: Duration,
    /// Lost partitions that were successfully re-run on a surviving host.
    pub failovers: u32,
}

impl DataGrid {
    /// Federate `n` nodes over a CAS catalog, stripe-partitioning
    /// `import_window` with 1 degree duplicated buffers (Figure 6 layout).
    /// Node organizations cycle through the paper's hosts.
    pub fn new(
        sky: Arc<Sky>,
        import_window: &SkyRegion,
        n: usize,
        config: MaxBcgConfig,
    ) -> Self {
        let orgs = ["Fermilab", "JHU", "IUCAA"];
        let nodes = import_window
            .partition_with_buffers(n, maxbcg::partition::PARTITION_MARGIN_DEG)
            .into_iter()
            .enumerate()
            .map(|(k, (native, imported))| CasNode {
                name: format!("cas-{}", k + 1),
                organization: orgs[k % orgs.len()].to_owned(),
                native,
                imported,
                policy: ResultPolicy::TransferBack,
                accepts_deployment: true,
            })
            .collect();
        DataGrid { sky, nodes, config, faults: None }
    }

    /// Attach a fault schedule (builder style): node crashes from the plan
    /// surface as real panics inside node threads, exercising the
    /// containment and failover paths.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Mutable access to node policies (tests flip them).
    pub fn nodes_mut(&mut self) -> &mut [CasNode] {
        &mut self.nodes
    }

    /// Node list.
    pub fn nodes(&self) -> &[CasNode] {
        &self.nodes
    }

    /// Deploy MaxBCG for `user` over `candidate_window` and collect
    /// results per node policy. Nodes run concurrently, each against its
    /// own local database — the code travels to the data. A panicking node
    /// is contained into a failed [`NodeOutcome`] (never crashing the
    /// coordinator), and its partition is resubmitted to a surviving host
    /// so the collected union stays complete.
    pub fn submit_maxbcg(&self, user: UserId, candidate_window: &SkyRegion) -> GridRunReport {
        let _span = obs::span("submit_maxbcg");
        gobs().submissions.incr();
        let start = Instant::now();
        let config = MaxBcgConfig { iteration: IterationMode::SetBased, ..self.config };
        let faults = self.faults.as_ref();
        let mut outcomes: Vec<NodeOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .nodes
                .iter()
                .map(|node| {
                    let sky = Arc::clone(&self.sky);
                    scope.spawn(move || {
                        run_node_contained(node, &sky, candidate_window, config, faults, 0)
                    })
                })
                .collect();
            self.nodes
                .iter()
                .zip(handles)
                .map(|(node, h)| {
                    // run_node_contained already catches worker panics; this
                    // fallback covers a thread dying outside that guard.
                    h.join().unwrap_or_else(|payload| {
                        failed_outcome(&node.name, Duration::ZERO, panic_message(&payload))
                    })
                })
                .collect()
        });

        // Failover: a lost partition (crash/panic, not an authorization
        // refusal) is resubmitted — in the paper's terms, a surviving
        // Data-Grid node adopts the dead node's stripe of sky.
        let mut failovers = 0u32;
        for i in 0..outcomes.len() {
            if outcomes[i].error.is_none() || !self.nodes[i].accepts_deployment {
                continue;
            }
            let adopter = outcomes
                .iter()
                .enumerate()
                .find(|(j, o)| *j != i && o.deployed && o.error.is_none())
                .map_or_else(|| "origin".to_owned(), |(j, _)| self.nodes[j].name.clone());
            for attempt in 1..=3u32 {
                let retry = run_node_contained(
                    &self.nodes[i],
                    &self.sky,
                    candidate_window,
                    config,
                    faults,
                    attempt,
                );
                let done = retry.error.is_none();
                outcomes[i] = retry;
                if done {
                    outcomes[i].recovered_by = Some(adopter.clone());
                    failovers += 1;
                    gobs().failovers.incr();
                    break;
                }
            }
        }

        let mut collected: Vec<Cluster> = outcomes
            .iter()
            .flat_map(|o| o.clusters.iter().copied())
            .collect();
        collected.sort_by_key(|c| c.objid);
        gobs().clusters_collected.add(collected.len() as u64);
        GridRunReport { user, outcomes, collected, elapsed: start.elapsed(), failovers }
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("node panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("node panicked: {s}")
    } else {
        "node panicked with a non-string payload".to_owned()
    }
}

fn failed_outcome(name: &str, elapsed: Duration, error: String) -> NodeOutcome {
    NodeOutcome {
        node: name.to_owned(),
        deployed: true,
        clusters: Vec::new(),
        cluster_count: 0,
        elapsed,
        error: Some(error),
        recovered_by: None,
    }
}

/// Run one node with panic containment: a panic anywhere inside the
/// MaxBCG engine (or injected by the fault plan) becomes a failed
/// [`NodeOutcome`] instead of tearing down the coordinator.
fn run_node_contained(
    node: &CasNode,
    sky: &Sky,
    candidate_window: &SkyRegion,
    config: MaxBcgConfig,
    faults: Option<&FaultPlan>,
    attempt: u32,
) -> NodeOutcome {
    let t0 = Instant::now();
    gobs().nodes_run.incr();
    catch_unwind(AssertUnwindSafe(|| {
        run_node(node, sky, candidate_window, config, faults, attempt)
    }))
    .unwrap_or_else(|payload| {
        gobs().panics_contained.incr();
        failed_outcome(&node.name, t0.elapsed(), panic_message(&payload))
    })
}

fn run_node(
    node: &CasNode,
    sky: &Sky,
    candidate_window: &SkyRegion,
    config: MaxBcgConfig,
    faults: Option<&FaultPlan>,
    attempt: u32,
) -> NodeOutcome {
    let t0 = Instant::now();
    if !node.accepts_deployment {
        gobs().refusals.incr();
        return NodeOutcome {
            node: node.name.clone(),
            deployed: false,
            clusters: Vec::new(),
            cluster_count: 0,
            elapsed: t0.elapsed(),
            error: Some(format!("{} refused code deployment", node.organization)),
            recovered_by: None,
        };
    }
    if let Some(plan) = faults {
        if plan.node_crashes(&node.name, attempt) {
            // A real panic, on purpose: the containment path must be the
            // thing that rescues the run, not a polite error return.
            panic!("injected node crash on {}", node.name);
        }
    }
    let fringe = SkyRegion::new(
        candidate_window.ra_min,
        candidate_window.ra_max,
        (node.native.dec_min - 0.5).max(candidate_window.dec_min),
        (node.native.dec_max + 0.5).min(candidate_window.dec_max),
    );
    let run = (|| -> Result<Vec<Cluster>, stardb::DbError> {
        let mut engine = MaxBcgDb::new(config)?;
        engine.run(&node.name, sky, &node.imported, &fringe)?;
        Ok(engine
            .clusters()?
            .into_iter()
            .filter(|c| node.native.contains(c.ra, c.dec))
            .collect())
    })();
    match run {
        Ok(clusters) => NodeOutcome {
            node: node.name.clone(),
            deployed: true,
            cluster_count: clusters.len() as u64,
            clusters: if node.policy == ResultPolicy::TransferBack {
                clusters
            } else {
                Vec::new()
            },
            elapsed: t0.elapsed(),
            error: None,
            recovered_by: None,
        },
        Err(e) => failed_outcome(&node.name, t0.elapsed(), e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycore::kcorr::{KcorrConfig, KcorrTable};
    use skysim::SkyConfig;

    fn grid(n: usize) -> (DataGrid, SkyRegion) {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let survey = SkyRegion::new(180.0, 181.0, -1.5, 1.5);
        let sky = Arc::new(Sky::generate(survey, &SkyConfig::scaled(0.08), &kcorr, 555));
        let cand = survey.shrunk(0.5);
        (DataGrid::new(sky, &survey, n, MaxBcgConfig::default()), cand)
    }

    #[test]
    fn grid_run_collects_all_native_clusters() {
        let (g, cand) = grid(3);
        let report = g.submit_maxbcg(UserId(1), &cand);
        assert_eq!(report.outcomes.len(), 3);
        assert!(report.outcomes.iter().all(|o| o.deployed && o.error.is_none()));
        let per_node: u64 = report.outcomes.iter().map(|o| o.cluster_count).sum();
        assert_eq!(per_node as usize, report.collected.len());
        // No duplicate objids across nodes.
        let mut ids: Vec<i64> = report.collected.iter().map(|c| c.objid).collect();
        ids.dedup();
        assert_eq!(ids.len(), report.collected.len());
    }

    #[test]
    fn grid_matches_single_site_run() {
        let (g, cand) = grid(2);
        let report = g.submit_maxbcg(UserId(1), &cand);
        let mut single = MaxBcgDb::new(MaxBcgConfig::default()).unwrap();
        single.run("one-site", &g.sky, &g.sky.region.clone(), &cand).unwrap();
        let expected = single.clusters().unwrap();
        assert_eq!(report.collected, expected, "grid union must equal one-site run");
    }

    #[test]
    fn store_locally_policy_withholds_rows() {
        let (mut g, cand) = grid(2);
        g.nodes_mut()[0].policy = ResultPolicy::StoreLocally;
        let report = g.submit_maxbcg(UserId(1), &cand);
        let o = &report.outcomes[0];
        assert!(o.clusters.is_empty());
        // Counts still travel.
        assert!(o.error.is_none());
    }

    #[test]
    fn refusing_node_reports_authorization_failure() {
        let (mut g, cand) = grid(3);
        g.nodes_mut()[1].accepts_deployment = false;
        let report = g.submit_maxbcg(UserId(1), &cand);
        let refused = &report.outcomes[1];
        assert!(!refused.deployed);
        assert!(refused.error.as_ref().unwrap().contains("refused"));
        // An authorization refusal is a policy decision, not a crash — it
        // must not be failed over to another host.
        assert_eq!(report.failovers, 0);
        assert!(refused.recovered_by.is_none());
        // The other nodes still produce their stripes.
        assert!(report.outcomes[0].deployed && report.outcomes[2].deployed);
    }

    #[test]
    fn injected_crashes_are_contained_and_failed_over() {
        use gridsim::{FaultConfig, FaultPlan};
        // Every node panics on its first attempt; the coordinator must
        // survive, re-run each lost stripe, and still produce the full
        // catalog (Figure 6 identity under failure).
        let plan = FaultPlan::new(FaultConfig::always(9, 1));
        let (g, cand) = grid(3);
        let g = g.with_faults(plan.clone());
        let report = g.submit_maxbcg(UserId(1), &cand);
        assert_eq!(plan.report().node_crashes, 3, "each node crashed exactly once");
        assert_eq!(report.failovers, 3);
        assert!(report.outcomes.iter().all(|o| o.error.is_none()));
        assert!(report.outcomes.iter().all(|o| o.recovered_by.is_some()));

        let mut single = MaxBcgDb::new(MaxBcgConfig::default()).unwrap();
        single.run("one-site", &g.sky, &g.sky.region.clone(), &cand).unwrap();
        let expected = single.clusters().unwrap();
        assert_eq!(report.collected, expected, "recovered union must equal one-site run");
    }

    #[test]
    fn organizations_cycle_through_paper_hosts() {
        let (g, _) = grid(3);
        let orgs: Vec<&str> = g.nodes().iter().map(|n| n.organization.as_str()).collect();
        assert_eq!(orgs, vec!["Fermilab", "JHU", "IUCAA"]);
    }
}
