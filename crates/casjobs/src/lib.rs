//! # casjobs — the batch query system of §4
//!
//! The SDSS Batch Query System: users with personal server-side databases
//! (MyDB), a queue of long-running query jobs against the CAS catalog,
//! group-based table sharing, and the "gridified" MaxBCG deployment that
//! ships code to the Data-Grid nodes hosting CAS partitions instead of
//! shipping hundreds of thousands of files to compute nodes.

#![warn(missing_docs)]

pub mod grid;
pub mod service;
pub mod users;
pub mod wire;

pub use grid::{CasNode, DataGrid, GridRunReport, ResultPolicy};
pub use service::{CasError, CasJobs, JobId, JobSpec, JobState, SlowQuery};
pub use users::{GroupId, Registry, UserId};
pub use wire::{handle_json, Envelope, Request, Response};
