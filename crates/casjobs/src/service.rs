//! The CasJobs batch query service: long-running queries against the CAS
//! database, results into per-user MyDBs, table sharing through groups.
//!
//! "CasJobs is an application ... that lets users submit long-running SQL
//! queries on the CAS databases. The query output can be stored on the
//! server-side in the user's personal relational database (MyDB). Users may
//! upload and download data ... CasJobs allows creating new tables,
//! indexes, and stored procedures. CasJobs provides a collaborative
//! environment where users can form groups and share data" (§4).

use crate::users::{GroupId, Registry, UserError, UserId};
use maxbcg::import::galaxy_row;
use maxbcg::schema::galaxy_schema;
use maxbcg::{IterationMode, MaxBcgConfig, MaxBcgDb};
use skycore::SkyRegion;
use skysim::Sky;
use stardb::{Database, DbConfig, DbError, Row, Schema};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, OnceLock};

struct ServiceObs {
    submitted: obs::Counter,
    finished: obs::Counter,
    failed: obs::Counter,
    cancelled: obs::Counter,
    rows_uploaded: obs::Counter,
    rows_downloaded: obs::Counter,
    slow_queries: obs::Counter,
}

/// Job-queue accounting under `casjobs.jobs.*` / `casjobs.mydb.*` — the
/// service-level view the paper's CasJobs portal shows its users.
fn sobs() -> &'static ServiceObs {
    static S: OnceLock<ServiceObs> = OnceLock::new();
    S.get_or_init(|| ServiceObs {
        submitted: obs::counter("casjobs.jobs.submitted"),
        finished: obs::counter("casjobs.jobs.finished"),
        failed: obs::counter("casjobs.jobs.failed"),
        cancelled: obs::counter("casjobs.jobs.cancelled"),
        rows_uploaded: obs::counter("casjobs.mydb.rows_uploaded"),
        rows_downloaded: obs::counter("casjobs.mydb.rows_downloaded"),
        slow_queries: obs::counter("casjobs.jobs.slow_queries"),
    })
}

/// Job identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(pub u64);

/// Job lifecycle states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the queue.
    Submitted,
    /// Currently executing.
    Running,
    /// Completed; the message summarizes the output.
    Finished(String),
    /// Failed with an error message.
    Failed(String),
    /// Cancelled before execution.
    Cancelled,
}

/// What a job does. CasJobs queries are represented as typed operations
/// rather than SQL text (the engine has no parser; the operations cover
/// what the paper's workflows do).
#[derive(Debug, Clone)]
pub enum JobSpec {
    /// Extract a sky window from the CAS `Galaxy` catalog into a MyDB
    /// table (the long-running SELECT INTO of a typical CasJobs session).
    ExtractRegion {
        /// Window to extract.
        window: SkyRegion,
        /// Destination MyDB table.
        into: String,
    },
    /// Run the full MaxBCG pipeline over CAS data, storing the cluster
    /// catalog into `into` in the user's MyDB.
    RunMaxBcg {
        /// Import window (target plus 1 deg, as in the paper).
        import_window: SkyRegion,
        /// Candidate window (target plus 0.5 deg).
        candidate_window: SkyRegion,
        /// Destination MyDB table for clusters.
        into: String,
    },
    /// Count rows of one of the user's MyDB tables.
    CountRows {
        /// Table to count.
        table: String,
    },
    /// Run a SQL statement against the user's MyDB (the literal "submit
    /// long-running SQL queries" surface; see `stardb::sql` for the
    /// dialect).
    Sql {
        /// The statement.
        statement: String,
    },
}

/// One job record.
#[derive(Debug, Clone)]
pub struct Job {
    /// Id.
    pub id: JobId,
    /// Submitting user.
    pub user: UserId,
    /// The operation.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
}

/// Service errors.
#[derive(Debug)]
pub enum CasError {
    /// User/group registry error.
    User(UserError),
    /// Database error inside a MyDB or the CAS store.
    Db(DbError),
    /// Unknown job.
    NoSuchJob(JobId),
    /// Sharing denied: no common group with the owner.
    NotShared,
    /// MyDB row quota exceeded.
    QuotaExceeded {
        /// The quota in rows.
        quota: u64,
    },
}

impl From<UserError> for CasError {
    fn from(e: UserError) -> Self {
        CasError::User(e)
    }
}
impl From<DbError> for CasError {
    fn from(e: DbError) -> Self {
        CasError::Db(e)
    }
}

impl std::fmt::Display for CasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CasError::User(e) => write!(f, "{e}"),
            CasError::Db(e) => write!(f, "{e}"),
            CasError::NoSuchJob(id) => write!(f, "no such job: {}", id.0),
            CasError::NotShared => write!(f, "table is not shared with you"),
            CasError::QuotaExceeded { quota } => write!(f, "MyDB quota of {quota} rows exceeded"),
        }
    }
}

impl std::error::Error for CasError {}

/// One entry in the slow-query log: what ran, for whom, how long it took,
/// and the executed plan it ran with.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// Submitting user.
    pub user: UserId,
    /// The user's login name at execution time.
    pub user_name: String,
    /// The batch job the statement ran under, or `None` for interactive
    /// [`CasJobs::query`] calls.
    pub job: Option<JobId>,
    /// The statement text.
    pub statement: String,
    /// End-to-end wall time (parse + plan + execute), nanoseconds.
    pub wall_ns: u64,
    /// The rendered `EXPLAIN ANALYZE` tree of the executed plan. Empty for
    /// statements without a profile (DML/DDL, or telemetry disabled).
    pub plan: Vec<String>,
}

/// The CasJobs service over one CAS catalog.
pub struct CasJobs {
    /// User/group registry.
    pub registry: Registry,
    cas_sky: Arc<Sky>,
    maxbcg_config: MaxBcgConfig,
    mydbs: HashMap<UserId, Database>,
    mydb_quota_rows: u64,
    shares: Vec<(UserId, String, GroupId)>,
    queue: VecDeque<JobId>,
    jobs: HashMap<JobId, Job>,
    next_job: u64,
    slow_query_threshold: std::time::Duration,
    slow_log: Vec<SlowQuery>,
}

impl CasJobs {
    /// Stand up the service over a CAS catalog.
    pub fn new(cas_sky: Arc<Sky>, maxbcg_config: MaxBcgConfig) -> Self {
        CasJobs {
            registry: Registry::new(),
            cas_sky,
            maxbcg_config,
            mydbs: HashMap::new(),
            mydb_quota_rows: u64::MAX,
            shares: Vec::new(),
            queue: VecDeque::new(),
            jobs: HashMap::new(),
            next_job: 0,
            slow_query_threshold: std::time::Duration::from_millis(250),
            slow_log: Vec::new(),
        }
    }

    /// Cap every MyDB at `rows` total rows (failure-injection and fairness
    /// testing).
    pub fn set_mydb_quota(&mut self, rows: u64) {
        self.mydb_quota_rows = rows;
    }

    /// Statements slower than `threshold` land in the slow-query log
    /// (default 250ms). `Duration::ZERO` logs everything; `Duration::MAX`
    /// disables the log.
    pub fn set_slow_query_threshold(&mut self, threshold: std::time::Duration) {
        self.slow_query_threshold = threshold;
    }

    /// The slow-query log, oldest first.
    pub fn slow_queries(&self) -> &[SlowQuery] {
        &self.slow_log
    }

    /// Append to the slow-query log if `wall_ns` crossed the threshold.
    /// `rows_out` gates profile attachment: only statements that produced a
    /// result set (SELECT / EXPLAIN) may claim the database's last profile;
    /// anything else would misattribute a stale SELECT's plan to DML.
    fn log_if_slow(
        &mut self,
        user: UserId,
        job: Option<JobId>,
        statement: &str,
        wall_ns: u64,
        rows_out: bool,
    ) {
        if std::time::Duration::from_nanos(wall_ns) < self.slow_query_threshold {
            return;
        }
        let plan = if rows_out {
            self.mydbs
                .get(&user)
                .and_then(|db| db.last_profile())
                .map(|p| p.lines)
                .unwrap_or_default()
        } else {
            Vec::new()
        };
        self.slow_log.push(SlowQuery {
            user,
            user_name: self.registry.name_of(user),
            job,
            statement: statement.to_owned(),
            wall_ns,
            plan,
        });
        sobs().slow_queries.incr();
    }

    /// A JSON summary of the session: job-queue tallies plus the full
    /// slow-query log with user/job provenance and executed plans — the
    /// per-session page a CasJobs operator would read after a batch run.
    pub fn session_report(&self) -> serde_json::Value {
        let mut finished = 0u64;
        let mut failed = 0u64;
        let mut cancelled = 0u64;
        let mut queued = 0u64;
        for job in self.jobs.values() {
            match job.state {
                JobState::Finished(_) => finished += 1,
                JobState::Failed(_) => failed += 1,
                JobState::Cancelled => cancelled += 1,
                JobState::Submitted | JobState::Running => queued += 1,
            }
        }
        let slow: Vec<serde_json::Value> = self
            .slow_log
            .iter()
            .map(|q| {
                serde_json::json!({
                    "user": q.user_name,
                    "job": q.job.map(|j| j.0),
                    "statement": q.statement,
                    "wall_ns": q.wall_ns,
                    "plan": q.plan,
                })
            })
            .collect();
        serde_json::json!({
            "users": self.mydbs.len() as u64,
            "jobs": {
                "finished": finished,
                "failed": failed,
                "cancelled": cancelled,
                "queued": queued,
            },
            "slow_query_threshold_ns": self.slow_query_threshold.as_nanos() as u64,
            "slow_queries": slow,
        })
    }

    /// Register a user, provisioning an empty MyDB.
    pub fn register(&mut self, name: &str) -> Result<UserId, CasError> {
        let id = self.registry.create_user(name)?;
        self.mydbs.insert(id, Database::new(DbConfig::in_memory()));
        Ok(id)
    }

    /// Read access to a user's MyDB.
    pub fn mydb(&self, user: UserId) -> Result<&Database, CasError> {
        self.mydbs.get(&user).ok_or(CasError::User(UserError::NoSuchUser(user)))
    }

    /// Create a table in the user's MyDB (CasJobs lets users create their
    /// own tables and indexes).
    pub fn create_table(
        &mut self,
        user: UserId,
        name: &str,
        schema: Schema,
        clustered_on: Option<&[&str]>,
    ) -> Result<(), CasError> {
        let db = self.mydbs.get_mut(&user).ok_or(CasError::User(UserError::NoSuchUser(user)))?;
        match clustered_on {
            Some(cols) => db.create_clustered_table(name, schema, cols)?,
            None => db.create_table(name, schema)?,
        }
        Ok(())
    }

    /// Upload rows into a MyDB table ("Users may upload and download data
    /// to and from their MyDB"). The table must exist; rows are appended,
    /// subject to the quota.
    pub fn upload(
        &mut self,
        user: UserId,
        table: &str,
        rows: Vec<Row>,
    ) -> Result<u64, CasError> {
        self.check_quota(user, rows.len() as u64)?;
        let db = self.mydbs.get_mut(&user).ok_or(CasError::User(UserError::NoSuchUser(user)))?;
        let mut n = 0;
        for row in rows {
            db.insert(table, row)?;
            n += 1;
        }
        sobs().rows_uploaded.add(n);
        Ok(n)
    }

    /// Download a MyDB table (the owner's view; for shared reads see
    /// [`CasJobs::read_shared`]).
    pub fn download(&self, user: UserId, table: &str) -> Result<Vec<Row>, CasError> {
        let rows = self.mydb(user)?.scan(table)?;
        sobs().rows_downloaded.add(rows.len() as u64);
        Ok(rows)
    }

    /// Share a MyDB table with a group the owner belongs to.
    pub fn share_table(
        &mut self,
        owner: UserId,
        table: &str,
        group: GroupId,
    ) -> Result<(), CasError> {
        let u = self.registry.user(owner)?;
        if !u.groups.contains(&group) {
            return Err(CasError::NotShared);
        }
        self.mydb(owner)?.schema_of(table)?; // must exist
        self.shares.push((owner, table.to_ascii_lowercase(), group));
        Ok(())
    }

    /// Read a table shared by `owner` — allowed for the owner, or for
    /// users sharing a group the table was shared with.
    pub fn read_shared(
        &self,
        reader: UserId,
        owner: UserId,
        table: &str,
    ) -> Result<Vec<Row>, CasError> {
        if reader != owner {
            let reader_groups = &self.registry.user(reader)?.groups;
            let allowed = self.shares.iter().any(|(o, t, g)| {
                *o == owner && t == &table.to_ascii_lowercase() && reader_groups.contains(g)
            });
            if !allowed {
                return Err(CasError::NotShared);
            }
        }
        Ok(self.mydb(owner)?.scan(table)?)
    }

    /// Submit a job; it waits in the queue until [`CasJobs::run_pending`].
    pub fn submit(&mut self, user: UserId, spec: JobSpec) -> Result<JobId, CasError> {
        self.registry.user(user)?;
        self.next_job += 1;
        let id = JobId(self.next_job);
        self.jobs.insert(id, Job { id, user, spec, state: JobState::Submitted });
        self.queue.push_back(id);
        sobs().submitted.incr();
        Ok(id)
    }

    /// Job status.
    pub fn status(&self, id: JobId) -> Result<&JobState, CasError> {
        Ok(&self.jobs.get(&id).ok_or(CasError::NoSuchJob(id))?.state)
    }

    /// Cancel a queued job.
    pub fn cancel(&mut self, id: JobId) -> Result<(), CasError> {
        let job = self.jobs.get_mut(&id).ok_or(CasError::NoSuchJob(id))?;
        if job.state == JobState::Submitted {
            job.state = JobState::Cancelled;
            self.queue.retain(|&q| q != id);
            sobs().cancelled.incr();
        }
        Ok(())
    }

    /// Run every queued job to completion, in submission order. Returns
    /// the number of jobs executed. (The real CasJobs runs queues
    /// asynchronously; synchronous draining keeps tests deterministic.)
    pub fn run_pending(&mut self) -> usize {
        let mut ran = 0;
        while let Some(id) = self.queue.pop_front() {
            let job = self.jobs.get(&id).cloned().expect("queued job exists");
            if job.state != JobState::Submitted {
                continue;
            }
            self.jobs.get_mut(&id).expect("exists").state = JobState::Running;
            let outcome = {
                let _span = obs::span("casjobs_job");
                self.execute(&job)
            };
            let state = match outcome {
                Ok(msg) => {
                    sobs().finished.incr();
                    JobState::Finished(msg)
                }
                Err(e) => {
                    sobs().failed.incr();
                    JobState::Failed(e.to_string())
                }
            };
            self.jobs.get_mut(&id).expect("exists").state = state;
            ran += 1;
        }
        ran
    }

    fn check_quota(&self, user: UserId, adding: u64) -> Result<(), CasError> {
        let db = self.mydb(user)?;
        let total: u64 = db
            .table_names()
            .iter()
            .map(|t| db.row_count(t).unwrap_or(0))
            .sum();
        if total + adding > self.mydb_quota_rows {
            return Err(CasError::QuotaExceeded { quota: self.mydb_quota_rows });
        }
        Ok(())
    }

    fn execute(&mut self, job: &Job) -> Result<String, CasError> {
        match &job.spec {
            JobSpec::ExtractRegion { window, into } => {
                let galaxies: Vec<_> = self.cas_sky.galaxies_in(window).copied().collect();
                self.check_quota(job.user, galaxies.len() as u64)?;
                let db = self
                    .mydbs
                    .get_mut(&job.user)
                    .ok_or(CasError::User(UserError::NoSuchUser(job.user)))?;
                if !db.has_table(into) {
                    db.create_clustered_table(into, galaxy_schema(), &["objid"])?;
                }
                db.truncate(into)?;
                for g in &galaxies {
                    db.insert(into, galaxy_row(g))?;
                }
                Ok(format!("{} rows into {into}", galaxies.len()))
            }
            JobSpec::RunMaxBcg { import_window, candidate_window, into } => {
                let mut engine = MaxBcgDb::new(MaxBcgConfig {
                    iteration: IterationMode::SetBased,
                    ..self.maxbcg_config
                })?;
                let report =
                    engine.run("casjobs", &self.cas_sky, import_window, candidate_window)?;
                let clusters = engine.clusters()?;
                self.check_quota(job.user, clusters.len() as u64)?;
                let db = self
                    .mydbs
                    .get_mut(&job.user)
                    .ok_or(CasError::User(UserError::NoSuchUser(job.user)))?;
                if !db.has_table(into) {
                    db.create_clustered_table(
                        into,
                        maxbcg::schema::candidates_schema(),
                        &["objid"],
                    )?;
                }
                db.truncate(into)?;
                for c in &clusters {
                    db.insert(into, maxbcg::cluster::candidate_row(c))?;
                }
                Ok(format!(
                    "{} clusters into {into} ({} galaxies scanned)",
                    clusters.len(),
                    report.galaxies
                ))
            }
            JobSpec::CountRows { table } => {
                let n = self.mydb(job.user)?.row_count(table)?;
                Ok(format!("{n}"))
            }
            JobSpec::Sql { statement } => {
                let db = self
                    .mydbs
                    .get_mut(&job.user)
                    .ok_or(CasError::User(UserError::NoSuchUser(job.user)))?;
                let t0 = std::time::Instant::now();
                let out = db.execute_sql(statement)?;
                let wall_ns = t0.elapsed().as_nanos() as u64;
                let rows_out = matches!(out, stardb::SqlOutput::Rows { .. });
                self.log_if_slow(job.user, Some(job.id), statement, wall_ns, rows_out);
                match out {
                    stardb::SqlOutput::Rows { rows, columns } => {
                        Ok(format!("{} rows, {} columns", rows.len(), columns.len()))
                    }
                    stardb::SqlOutput::Affected(n) => Ok(format!("{n} rows affected")),
                    stardb::SqlOutput::Done => Ok("ok".into()),
                }
            }
        }
    }

    /// Run a SQL statement against the user's MyDB synchronously and
    /// return the full output (interactive CasJobs queries; long-running
    /// work should go through [`CasJobs::submit`]).
    pub fn query(&mut self, user: UserId, sql: &str) -> Result<stardb::SqlOutput, CasError> {
        let db = self
            .mydbs
            .get_mut(&user)
            .ok_or(CasError::User(UserError::NoSuchUser(user)))?;
        let t0 = std::time::Instant::now();
        let out = db.execute_sql(sql)?;
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let rows_out = matches!(out, stardb::SqlOutput::Rows { .. });
        self.log_if_slow(user, None, sql, wall_ns, rows_out);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycore::kcorr::{KcorrConfig, KcorrTable};
    use skysim::SkyConfig;

    fn service() -> CasJobs {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let region = SkyRegion::new(180.0, 181.2, -0.6, 0.6);
        let sky = Sky::generate(region, &SkyConfig::scaled(0.1), &kcorr, 321);
        CasJobs::new(Arc::new(sky), MaxBcgConfig::default())
    }

    #[test]
    fn extract_region_into_mydb() {
        let mut s = service();
        let alice = s.register("alice").unwrap();
        let window = SkyRegion::new(180.2, 180.8, -0.3, 0.3);
        let id = s
            .submit(alice, JobSpec::ExtractRegion { window, into: "mygal".into() })
            .unwrap();
        assert_eq!(*s.status(id).unwrap(), JobState::Submitted);
        assert_eq!(s.run_pending(), 1);
        let JobState::Finished(msg) = s.status(id).unwrap() else {
            panic!("job should finish: {:?}", s.status(id).unwrap())
        };
        assert!(msg.contains("rows into mygal"));
        let n = s.mydb(alice).unwrap().row_count("mygal").unwrap();
        assert!(n > 0);
        assert_eq!(n as usize, s.cas_sky.galaxies_in(&window).count());
    }

    #[test]
    fn maxbcg_job_end_to_end() {
        let mut s = service();
        let alice = s.register("alice").unwrap();
        let import = s.cas_sky.region;
        let cand = import.shrunk(0.5);
        let id = s
            .submit(
                alice,
                JobSpec::RunMaxBcg {
                    import_window: import,
                    candidate_window: cand,
                    into: "myclusters".into(),
                },
            )
            .unwrap();
        s.run_pending();
        assert!(matches!(s.status(id).unwrap(), JobState::Finished(_)));
        // A follow-up query over the job output.
        let id2 = s.submit(alice, JobSpec::CountRows { table: "myclusters".into() }).unwrap();
        s.run_pending();
        let JobState::Finished(count) = s.status(id2).unwrap() else { panic!() };
        let n: u64 = count.parse().unwrap();
        assert_eq!(n, s.mydb(alice).unwrap().row_count("myclusters").unwrap());
    }

    #[test]
    fn sharing_requires_common_group() {
        let mut s = service();
        let alice = s.register("alice").unwrap();
        let bob = s.register("bob").unwrap();
        let eve = s.register("eve").unwrap();
        s.submit(
            alice,
            JobSpec::ExtractRegion {
                window: SkyRegion::new(180.2, 180.4, -0.1, 0.1),
                into: "t".into(),
            },
        )
        .unwrap();
        s.run_pending();
        let g = s.registry.create_group(alice, "collab").unwrap();
        s.registry.add_member(alice, g, bob).unwrap();
        s.share_table(alice, "t", g).unwrap();
        assert!(s.read_shared(bob, alice, "t").is_ok());
        assert!(matches!(s.read_shared(eve, alice, "t"), Err(CasError::NotShared)));
        // The owner always reads their own tables.
        assert!(s.read_shared(alice, alice, "t").is_ok());
    }

    #[test]
    fn quota_fails_jobs_gracefully() {
        let mut s = service();
        s.set_mydb_quota(10);
        let alice = s.register("alice").unwrap();
        let id = s
            .submit(
                alice,
                JobSpec::ExtractRegion { window: s.cas_sky.region, into: "big".into() },
            )
            .unwrap();
        s.run_pending();
        let JobState::Failed(msg) = s.status(id).unwrap() else {
            panic!("job must fail on quota")
        };
        assert!(msg.contains("quota"));
    }

    #[test]
    fn upload_download_roundtrip() {
        use stardb::{Column, DataType, Value};
        let mut s = service();
        let alice = s.register("alice").unwrap();
        let schema = Schema::new(vec![
            Column::new("id", DataType::BigInt),
            Column::new("note", DataType::Text),
        ]);
        s.create_table(alice, "notes", schema, Some(&["id"])).unwrap();
        let rows = vec![
            Row(vec![Value::BigInt(1), Value::Text("first".into())]),
            Row(vec![Value::BigInt(2), Value::Text("second".into())]),
        ];
        assert_eq!(s.upload(alice, "notes", rows.clone()).unwrap(), 2);
        let back = s.download(alice, "notes").unwrap();
        assert_eq!(back, rows);
        // Upload respects the quota.
        s.set_mydb_quota(2);
        let err = s
            .upload(alice, "notes", vec![Row(vec![Value::BigInt(3), Value::Null])])
            .unwrap_err();
        assert!(matches!(err, CasError::QuotaExceeded { .. }));
    }

    #[test]
    fn sql_jobs_and_interactive_queries() {
        let mut s = service();
        let alice = s.register("alice").unwrap();
        // Create and fill a table through pure SQL jobs.
        for stmt in [
            "CREATE TABLE sn (id BIGINT PRIMARY KEY, z FLOAT, mag FLOAT)",
            "INSERT INTO sn VALUES (1, 0.05, 17.2), (2, 0.12, 18.9), (3, 0.30, 21.0)",
        ] {
            let id = s.submit(alice, JobSpec::Sql { statement: stmt.into() }).unwrap();
            s.run_pending();
            assert!(
                matches!(s.status(id).unwrap(), JobState::Finished(_)),
                "{stmt}: {:?}",
                s.status(id).unwrap()
            );
        }
        // Interactive query over the job output.
        let out = s
            .query(alice, "SELECT COUNT(*) AS n, MAX(mag) FROM sn WHERE z < 0.2")
            .unwrap();
        let (cols, rows) = out.rows().unwrap();
        assert_eq!(cols[0], "n");
        assert_eq!(rows[0][0], stardb::Value::BigInt(2));
        assert_eq!(rows[0].f64(1).unwrap(), 18.9);
        // A bad statement fails the job, not the service.
        let id = s
            .submit(alice, JobSpec::Sql { statement: "SELEKT * FROM sn".into() })
            .unwrap();
        s.run_pending();
        assert!(matches!(s.status(id).unwrap(), JobState::Failed(_)));
    }

    #[test]
    fn indexed_mydb_queries_take_the_planned_index_path() {
        let mut s = service();
        let alice = s.register("alice").unwrap();
        let window = SkyRegion::new(180.1, 181.1, -0.5, 0.5);
        s.submit(alice, JobSpec::ExtractRegion { window, into: "mygal".into() }).unwrap();
        let stmt = "CREATE INDEX idx_mag ON mygal (i)";
        s.submit(alice, JobSpec::Sql { statement: stmt.into() }).unwrap();
        assert_eq!(s.run_pending(), 2);

        // A sargable interactive query over the user's own index goes
        // through the planner's index range scan, and EXPLAIN (the same
        // plan object the execution used) says so.
        obs::set_enabled(true);
        let scans = obs::counter("stardb.plan.index_scans");
        let before = scans.get();
        let (_, rows) = s
            .query(alice, "SELECT objid, i FROM mygal WHERE i BETWEEN 17 AND 19")
            .unwrap()
            .rows()
            .unwrap();
        assert!(scans.get() > before, "MyDB query must use idx_mag");
        for r in &rows {
            let mag = r.f64(1).unwrap();
            assert!((17.0..=19.0).contains(&mag));
        }
        let (_, plan) = s
            .query(alice, "EXPLAIN SELECT objid, i FROM mygal WHERE i BETWEEN 17 AND 19")
            .unwrap()
            .rows()
            .unwrap();
        let first = plan[0][0].as_str().unwrap();
        assert!(
            first.contains("index range scan mygal") && first.contains("via idx_mag"),
            "plan: {first}"
        );
    }

    #[test]
    fn slow_query_log_records_plan_and_provenance() {
        obs::set_enabled(true);
        let mut s = service();
        s.set_slow_query_threshold(std::time::Duration::ZERO); // log everything
        let alice = s.register("alice").unwrap();
        for stmt in [
            "CREATE TABLE pts (id BIGINT PRIMARY KEY, x FLOAT)",
            "INSERT INTO pts VALUES (1, 0.5), (2, 1.5), (3, 2.5)",
        ] {
            s.submit(alice, JobSpec::Sql { statement: stmt.into() }).unwrap();
        }
        let job = s
            .submit(alice, JobSpec::Sql { statement: "SELECT id FROM pts WHERE x < 2".into() })
            .unwrap();
        assert_eq!(s.run_pending(), 3);

        // All three statements crossed the zero threshold; only the SELECT
        // carries an executed-plan tree.
        assert_eq!(s.slow_queries().len(), 3);
        let ddl = &s.slow_queries()[0];
        assert!(ddl.plan.is_empty(), "DDL has no profile: {:?}", ddl.plan);
        let sel = &s.slow_queries()[2];
        assert_eq!(sel.user_name, "alice");
        assert_eq!(sel.job, Some(job));
        assert!(!sel.plan.is_empty(), "SELECT must carry its ANALYZE tree");
        assert!(
            sel.plan.last().unwrap().contains("rows=2"),
            "plan ends at actual cardinality: {:?}",
            sel.plan
        );

        // Interactive queries log with no job id.
        let before = s.slow_queries().len();
        s.query(alice, "SELECT COUNT(*) FROM pts").unwrap().rows().unwrap();
        let q = &s.slow_queries()[before];
        assert_eq!(q.job, None);
        assert!(q.statement.contains("COUNT"));

        // The session report carries the log and the queue tallies.
        let report = s.session_report();
        let slow = report.get("slow_queries").unwrap();
        assert!(slow.to_string().contains("alice"));

        // Raising the threshold silences the log.
        s.set_slow_query_threshold(std::time::Duration::from_secs(3600));
        let before = s.slow_queries().len();
        s.query(alice, "SELECT id FROM pts").unwrap().rows().unwrap();
        assert_eq!(s.slow_queries().len(), before);
    }

    #[test]
    fn cancel_prevents_execution() {
        let mut s = service();
        let alice = s.register("alice").unwrap();
        let id = s.submit(alice, JobSpec::CountRows { table: "none".into() }).unwrap();
        s.cancel(id).unwrap();
        assert_eq!(s.run_pending(), 0);
        assert_eq!(*s.status(id).unwrap(), JobState::Cancelled);
    }

    #[test]
    fn jobs_run_in_submission_order() {
        let mut s = service();
        let alice = s.register("alice").unwrap();
        let w = SkyRegion::new(180.2, 180.4, -0.1, 0.1);
        let a = s.submit(alice, JobSpec::ExtractRegion { window: w, into: "t".into() }).unwrap();
        // Depends on "t" existing: only correct if run after job a.
        let b = s.submit(alice, JobSpec::CountRows { table: "t".into() }).unwrap();
        s.run_pending();
        assert!(matches!(s.status(a).unwrap(), JobState::Finished(_)));
        assert!(matches!(s.status(b).unwrap(), JobState::Finished(_)));
    }
}
