//! Users and groups — the collaborative side of CasJobs: "users can form
//! groups and share data with others" (§4).

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A user id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct UserId(pub u64);

/// A group id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GroupId(pub u64);

/// One registered user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct User {
    /// Id.
    pub id: UserId,
    /// Login name (unique).
    pub name: String,
    /// Groups the user belongs to.
    pub groups: BTreeSet<GroupId>,
}

/// One group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Group {
    /// Id.
    pub id: GroupId,
    /// Group name (unique).
    pub name: String,
    /// The user who created the group (always a member).
    pub owner: UserId,
}

/// Registry errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserError {
    /// Login or group name taken.
    NameTaken(String),
    /// Unknown user.
    NoSuchUser(UserId),
    /// Unknown group.
    NoSuchGroup(GroupId),
    /// Operation requires group ownership.
    NotOwner,
}

impl std::fmt::Display for UserError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UserError::NameTaken(n) => write!(f, "name already taken: {n}"),
            UserError::NoSuchUser(u) => write!(f, "no such user: {}", u.0),
            UserError::NoSuchGroup(g) => write!(f, "no such group: {}", g.0),
            UserError::NotOwner => write!(f, "only the group owner may do that"),
        }
    }
}

impl std::error::Error for UserError {}

/// The user/group registry.
#[derive(Debug, Default)]
pub struct Registry {
    users: BTreeMap<UserId, User>,
    groups: BTreeMap<GroupId, Group>,
    next_user: u64,
    next_group: u64,
}

impl Registry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a user.
    pub fn create_user(&mut self, name: &str) -> Result<UserId, UserError> {
        if self.users.values().any(|u| u.name == name) {
            return Err(UserError::NameTaken(name.to_owned()));
        }
        self.next_user += 1;
        let id = UserId(self.next_user);
        self.users.insert(id, User { id, name: name.to_owned(), groups: BTreeSet::new() });
        Ok(id)
    }

    /// Look up a user.
    pub fn user(&self, id: UserId) -> Result<&User, UserError> {
        self.users.get(&id).ok_or(UserError::NoSuchUser(id))
    }

    /// Find a user by login name.
    pub fn user_by_name(&self, name: &str) -> Option<&User> {
        self.users.values().find(|u| u.name == name)
    }

    /// A user's login name, for provenance labels (slow-query log, job
    /// listings). Unknown ids render as `user-<id>` rather than erroring so
    /// diagnostics never fail.
    pub fn name_of(&self, id: UserId) -> String {
        match self.users.get(&id) {
            Some(u) => u.name.clone(),
            None => format!("user-{}", id.0),
        }
    }

    /// Create a group owned by `owner`, who becomes a member.
    pub fn create_group(&mut self, owner: UserId, name: &str) -> Result<GroupId, UserError> {
        self.user(owner)?;
        if self.groups.values().any(|g| g.name == name) {
            return Err(UserError::NameTaken(name.to_owned()));
        }
        self.next_group += 1;
        let id = GroupId(self.next_group);
        self.groups.insert(id, Group { id, name: name.to_owned(), owner });
        self.users.get_mut(&owner).expect("checked").groups.insert(id);
        Ok(id)
    }

    /// Add `member` to `group` (owner only).
    pub fn add_member(
        &mut self,
        actor: UserId,
        group: GroupId,
        member: UserId,
    ) -> Result<(), UserError> {
        let g = self.groups.get(&group).ok_or(UserError::NoSuchGroup(group))?;
        if g.owner != actor {
            return Err(UserError::NotOwner);
        }
        self.users
            .get_mut(&member)
            .ok_or(UserError::NoSuchUser(member))?
            .groups
            .insert(group);
        Ok(())
    }

    /// Do two users share at least one group?
    pub fn share_group(&self, a: UserId, b: UserId) -> bool {
        match (self.users.get(&a), self.users.get(&b)) {
            (Some(a), Some(b)) => a.groups.intersection(&b.groups).next().is_some(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_lookup_users() {
        let mut r = Registry::new();
        let alice = r.create_user("alice").unwrap();
        assert_eq!(r.user(alice).unwrap().name, "alice");
        assert_eq!(r.user_by_name("alice").unwrap().id, alice);
        assert!(r.user_by_name("bob").is_none());
        assert_eq!(r.create_user("alice"), Err(UserError::NameTaken("alice".into())));
    }

    #[test]
    fn groups_and_membership() {
        let mut r = Registry::new();
        let alice = r.create_user("alice").unwrap();
        let bob = r.create_user("bob").unwrap();
        let eve = r.create_user("eve").unwrap();
        let g = r.create_group(alice, "sdss-clusters").unwrap();
        assert!(!r.share_group(alice, bob));
        r.add_member(alice, g, bob).unwrap();
        assert!(r.share_group(alice, bob));
        assert!(!r.share_group(bob, eve));
        // Only the owner can add members.
        assert_eq!(r.add_member(bob, g, eve), Err(UserError::NotOwner));
    }

    #[test]
    fn unknown_ids_error() {
        let mut r = Registry::new();
        let ghost = UserId(99);
        assert!(r.user(ghost).is_err());
        assert!(r.create_group(ghost, "g").is_err());
        let alice = r.create_user("alice").unwrap();
        let g = r.create_group(alice, "g").unwrap();
        assert_eq!(r.add_member(alice, g, ghost), Err(UserError::NoSuchUser(ghost)));
        assert_eq!(
            r.add_member(alice, GroupId(42), alice),
            Err(UserError::NoSuchGroup(GroupId(42)))
        );
    }
}
