//! The web-service boundary of §4.
//!
//! "CasJobs is accessible not only through the Web interface but also
//! through Web services. Once the GGF DAIS protocol becomes a final
//! recommendation, it should be fairly easy to expose CasJobs Web services
//! wrapped into the official Grid specification."
//!
//! This module is that wrapper: a versioned, serialized request/response
//! protocol over the in-process service. Transport is out of scope (any
//! byte channel works); what matters for the reproduction is that every
//! CasJobs operation round-trips through a stable wire format, so a remote
//! site could drive the service without linking the Rust API — the
//! interoperability property DAIS was after.

use crate::service::{CasJobs, JobId, JobSpec, JobState};
use crate::users::UserId;
use serde::{Deserialize, Serialize};
use skycore::SkyRegion;

/// Protocol version tag; requests carrying another version are rejected.
pub const WIRE_VERSION: u32 = 1;

/// A request envelope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Envelope {
    /// Protocol version.
    pub version: u32,
    /// Authenticated user id (authentication itself is the host's job;
    /// "upon authentication and authorization, the SQL code is deployed").
    pub user: u64,
    /// The operation.
    pub request: Request,
}

/// Operations exposed over the wire.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Submit an extract-region job.
    SubmitExtract {
        /// Window bounds (ra_min, ra_max, dec_min, dec_max).
        window: (f64, f64, f64, f64),
        /// Destination MyDB table.
        into: String,
    },
    /// Submit a MaxBCG run.
    SubmitMaxBcg {
        /// Import window bounds.
        import: (f64, f64, f64, f64),
        /// Candidate window bounds.
        candidates: (f64, f64, f64, f64),
        /// Destination MyDB table.
        into: String,
    },
    /// Submit an arbitrary SQL statement against MyDB.
    SubmitSql {
        /// The statement.
        statement: String,
    },
    /// Poll a job.
    Status {
        /// Job id.
        job: u64,
    },
    /// Cancel a queued job.
    Cancel {
        /// Job id.
        job: u64,
    },
    /// Drain the queue (the host would do this on a timer; exposed so a
    /// remote test harness can drive the lifecycle deterministically).
    RunPending,
    /// Interactive SQL with the full result set returned.
    Query {
        /// The statement.
        statement: String,
    },
}

/// A response envelope.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Job accepted.
    Submitted {
        /// Assigned job id.
        job: u64,
    },
    /// Job status.
    Status {
        /// One of `submitted`, `running`, `finished`, `failed`, `cancelled`.
        state: String,
        /// Completion message or failure reason, when finished/failed.
        message: Option<String>,
    },
    /// Queue drained.
    Ran {
        /// Jobs executed.
        jobs: usize,
    },
    /// Cancel acknowledged.
    Cancelled,
    /// Query result.
    Rows {
        /// Column names.
        columns: Vec<String>,
        /// Row values rendered as strings (wire-stable; NULL is `"NULL"`).
        rows: Vec<Vec<String>>,
    },
    /// Non-query statement result.
    Affected {
        /// Rows affected.
        rows: u64,
    },
    /// DDL succeeded.
    Done,
    /// The request failed.
    Error {
        /// Message.
        message: String,
    },
}

fn region(b: (f64, f64, f64, f64)) -> SkyRegion {
    SkyRegion::new(b.0, b.1, b.2, b.3)
}

/// Handle one JSON-encoded request against the service, returning the
/// JSON-encoded response. Malformed input or version skew yields an
/// `Error` response, never a panic.
pub fn handle_json(service: &mut CasJobs, request_json: &str) -> String {
    let response = match serde_json::from_str::<Envelope>(request_json) {
        Ok(env) => handle(service, env),
        Err(e) => Response::Error { message: format!("malformed request: {e}") },
    };
    serde_json::to_string(&response).expect("responses always serialize")
}

/// Handle one decoded request.
pub fn handle(service: &mut CasJobs, env: Envelope) -> Response {
    if env.version != WIRE_VERSION {
        return Response::Error {
            message: format!("unsupported wire version {} (want {WIRE_VERSION})", env.version),
        };
    }
    let user = UserId(env.user);
    let submitted = |r: Result<JobId, crate::service::CasError>| match r {
        Ok(job) => Response::Submitted { job: job.0 },
        Err(e) => Response::Error { message: e.to_string() },
    };
    match env.request {
        Request::SubmitExtract { window, into } => submitted(
            service.submit(user, JobSpec::ExtractRegion { window: region(window), into }),
        ),
        Request::SubmitMaxBcg { import, candidates, into } => submitted(service.submit(
            user,
            JobSpec::RunMaxBcg {
                import_window: region(import),
                candidate_window: region(candidates),
                into,
            },
        )),
        Request::SubmitSql { statement } => {
            submitted(service.submit(user, JobSpec::Sql { statement }))
        }
        Request::Status { job } => match service.status(JobId(job)) {
            Ok(state) => {
                let (s, message) = match state {
                    JobState::Submitted => ("submitted", None),
                    JobState::Running => ("running", None),
                    JobState::Finished(m) => ("finished", Some(m.clone())),
                    JobState::Failed(m) => ("failed", Some(m.clone())),
                    JobState::Cancelled => ("cancelled", None),
                };
                Response::Status { state: s.to_owned(), message }
            }
            Err(e) => Response::Error { message: e.to_string() },
        },
        Request::Cancel { job } => match service.cancel(JobId(job)) {
            Ok(()) => Response::Cancelled,
            Err(e) => Response::Error { message: e.to_string() },
        },
        Request::RunPending => Response::Ran { jobs: service.run_pending() },
        Request::Query { statement } => match service.query(user, &statement) {
            Ok(stardb::SqlOutput::Rows { columns, rows }) => Response::Rows {
                columns,
                rows: rows
                    .iter()
                    .map(|r| r.values().iter().map(ToString::to_string).collect())
                    .collect(),
            },
            Ok(stardb::SqlOutput::Affected(rows)) => Response::Affected { rows },
            Ok(stardb::SqlOutput::Done) => Response::Done,
            Err(e) => Response::Error { message: e.to_string() },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxbcg::MaxBcgConfig;
    use skycore::kcorr::{KcorrConfig, KcorrTable};
    use skysim::{Sky, SkyConfig};
    use std::sync::Arc;

    fn service_with_user() -> (CasJobs, u64) {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let region = SkyRegion::new(180.0, 181.0, -0.5, 0.5);
        let sky = Arc::new(Sky::generate(region, &SkyConfig::test(), &kcorr, 9));
        let mut s = CasJobs::new(sky, MaxBcgConfig::default());
        let u = s.register("wire-user").unwrap();
        (s, u.0)
    }

    fn call(s: &mut CasJobs, user: u64, request: Request) -> Response {
        let env = Envelope { version: WIRE_VERSION, user, request };
        let json = serde_json::to_string(&env).unwrap();
        serde_json::from_str(&handle_json(s, &json)).unwrap()
    }

    #[test]
    fn full_job_lifecycle_over_the_wire() {
        let (mut s, user) = service_with_user();
        let r = call(
            &mut s,
            user,
            Request::SubmitExtract { window: (180.0, 180.5, -0.2, 0.2), into: "w".into() },
        );
        let Response::Submitted { job } = r else { panic!("{r:?}") };
        let r = call(&mut s, user, Request::Status { job });
        assert!(matches!(r, Response::Status { ref state, .. } if state == "submitted"));
        let r = call(&mut s, user, Request::RunPending);
        assert!(matches!(r, Response::Ran { jobs: 1 }));
        let r = call(&mut s, user, Request::Status { job });
        let Response::Status { state, message } = r else { panic!() };
        assert_eq!(state, "finished");
        assert!(message.unwrap().contains("rows into w"));
    }

    #[test]
    fn interactive_query_over_the_wire() {
        let (mut s, user) = service_with_user();
        call(
            &mut s,
            user,
            Request::SubmitSql {
                statement: "CREATE TABLE t (id BIGINT PRIMARY KEY, v FLOAT)".into(),
            },
        );
        call(&mut s, user, Request::RunPending);
        let r = call(
            &mut s,
            user,
            Request::Query { statement: "INSERT INTO t VALUES (1, 2.5), (2, NULL)".into() },
        );
        assert!(matches!(r, Response::Affected { rows: 2 }));
        let r = call(
            &mut s,
            user,
            Request::Query { statement: "SELECT id, v FROM t ORDER BY id".into() },
        );
        let Response::Rows { columns, rows } = r else { panic!("{r:?}") };
        assert_eq!(columns, vec!["id", "v"]);
        assert_eq!(rows, vec![vec!["1", "2.5"], vec!["2", "NULL"]]);
    }

    #[test]
    fn version_skew_and_garbage_are_rejected_gracefully() {
        let (mut s, user) = service_with_user();
        let env = Envelope { version: 99, user, request: Request::RunPending };
        let out = handle_json(&mut s, &serde_json::to_string(&env).unwrap());
        assert!(out.contains("unsupported wire version"));
        let out = handle_json(&mut s, "{not json");
        assert!(out.contains("malformed request"));
    }

    #[test]
    fn unknown_user_and_job_error() {
        let (mut s, _) = service_with_user();
        let r = call(&mut s, 424242, Request::Query { statement: "SELECT 1 FROM t".into() });
        assert!(matches!(r, Response::Error { .. }));
        let r = call(&mut s, 1, Request::Status { job: 777 });
        assert!(matches!(r, Response::Error { .. }));
    }
}
