//! `fBCGCandidate`: the per-galaxy likelihood evaluation, database style —
//! the χ² filter as a k-correction join, one zone-indexed neighbor search
//! bounded by the windows of the passing redshifts, and the neighbor join
//! back to `Galaxy` for photometry.

use crate::import::galaxy_from_payload;
use crate::neighbors::visit_nearby_with;
use crate::zone_cache::ZoneSnapshot;
use skycore::bcg::{self, BcgParams, PassingRedshift};
use skycore::kcorr::KcorrTable;
use skycore::types::{Candidate, Friend, Galaxy};
use skycore::ZoneScheme;
use stardb::{Database, DbError, DbResult, Value};
use std::sync::OnceLock;

struct CandidateObs {
    evaluated: obs::Counter,
    early_rejected: obs::Counter,
    friends_joined: obs::Counter,
}

/// Counters for the paper's §2.6 early-filter claim: `early_rejected /
/// evaluated` is the fraction of galaxies the k-correction χ² cut
/// discards before any spatial work.
fn cobs() -> &'static CandidateObs {
    static C: OnceLock<CandidateObs> = OnceLock::new();
    C.get_or_init(|| CandidateObs {
        evaluated: obs::counter("maxbcg.candidate.evaluated"),
        early_rejected: obs::counter("maxbcg.candidate.early_rejected"),
        friends_joined: obs::counter("maxbcg.candidate.friends_joined"),
    })
}

/// Evaluate one galaxy. Returns the zero-or-one-row result of the paper's
/// table-valued function.
///
/// `early_filter` is the paper's §2.6 design choice: when `true` (the
/// paper's implementation), galaxies failing `χ² < 7` at every redshift are
/// discarded before any spatial work; when `false` (the ablation), the
/// neighbor search and per-redshift counting run for *all* redshifts and
/// the χ² cut is applied only at the very end — same answer, dramatically
/// more work.
///
/// `snap` is the optional zone snapshot: when fresh, the neighbor search
/// runs columnar; stale or `None` takes the clustered-index path. Either
/// way the answer is identical (see [`crate::zone_cache`]).
pub fn f_bcg_candidate(
    db: &Database,
    snap: Option<&ZoneSnapshot>,
    kcorr: &KcorrTable,
    scheme: &ZoneScheme,
    params: &BcgParams,
    g: &Galaxy,
    early_filter: bool,
) -> DbResult<Option<Candidate>> {
    // Filter step: JOIN with Kcorr, keep redshifts with chisq < 7.
    cobs().evaluated.incr();
    let passing = bcg::passing_redshifts(g, kcorr, params);
    if passing.is_empty() {
        cobs().early_rejected.incr();
        return Ok(None);
    }
    let (search_set, windows) = if early_filter {
        (passing.clone(), bcg::search_windows(g.i, &passing, kcorr, params))
    } else {
        // Ablation: pretend every redshift passed, so the search radius
        // and photometric windows balloon to the full table's extent.
        let all: Vec<PassingRedshift> = kcorr
            .rows()
            .iter()
            .map(|k| PassingRedshift { zid: k.zid, chisq: bcg::chisq(g, k, params) })
            .collect();
        let w = bcg::search_windows(g.i, &all, kcorr, params);
        (all, w)
    };

    // Look for neighbors in the Zone table, then join with Galaxy for
    // photometry and apply the bounding windows.
    let mut friends: Vec<Friend> = Vec::new();
    let mut join_err: Option<DbError> = None;
    visit_nearby_with(db, snap, scheme, g.ra, g.dec, windows.radius_deg, |objid, distance, _| {
        if objid == g.objid {
            return true;
        }
        match db.get("Galaxy", &[Value::BigInt(objid)]) {
            Ok(Some(row)) => {
                let n = galaxy_from_payload(&row.encode());
                let f = Friend { objid, distance, i: n.i, gr: n.gr, ri: n.ri };
                if windows.admits(&f) {
                    friends.push(f);
                }
                true
            }
            // Zone rows always reference Galaxy rows; a miss would mean
            // the zone table is stale, which insert/truncate discipline
            // prevents — but surface it rather than ignore it.
            Ok(None) => true,
            Err(e) => {
                join_err = Some(e);
                false
            }
        }
    })?;
    if let Some(e) = join_err {
        return Err(e);
    }
    cobs().friends_joined.add(friends.len() as u64);

    // Count neighbors per redshift and pick the most likely.
    let counts = bcg::count_neighbors(&search_set, &friends, kcorr, g.i, params);
    let best = if early_filter {
        bcg::best_likelihood(&search_set, &counts, params)
    } else {
        // Apply the deferred chisq cut now: only truly passing redshifts
        // may win, so the ablation returns identical answers.
        let mut filtered_counts = counts.clone();
        for (c, pr) in filtered_counts.iter_mut().zip(&search_set) {
            if pr.chisq >= params.chisq_cut {
                *c = 0;
            }
        }
        bcg::best_likelihood(&search_set, &filtered_counts, params)
    };
    let Some((idx, chi)) = best else {
        return Ok(None);
    };
    // The winning zid came from this same table, so a miss means the
    // k-correction grid was corrupted mid-run — propagate, don't panic.
    let k = kcorr.row(search_set[idx].zid).ok_or_else(|| {
        DbError::Corrupt(format!(
            "kcorr row {} missing for winning redshift",
            search_set[idx].zid
        ))
    })?;
    Ok(Some(Candidate {
        objid: g.objid,
        ra: g.ra,
        dec: g.dec,
        z: k.z,
        i: g.i,
        ngal: counts[idx] as i32 + 1,
        chi2: chi,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::import::sp_import_galaxy;
    use crate::schema::create_schema;
    use crate::zone_task::sp_zone;
    use skycore::kcorr::KcorrConfig;
    use skycore::SkyRegion;
    use skysim::{Sky, SkyConfig};
    use stardb::DbConfig;

    fn setup() -> (Database, Sky, KcorrTable, ZoneScheme) {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        let region = SkyRegion::new(180.0, 182.0, -1.0, 1.0);
        let mut sky_cfg = SkyConfig::scaled(0.2);
        // Boost the cluster rate so sparse test skies still carry signal.
        sky_cfg.clusters.density_per_deg2 = 12.0;
        let sky = Sky::generate(region, &sky_cfg, &kcorr, 77);
        sp_import_galaxy(&mut db, &sky, &region).unwrap();
        let scheme = ZoneScheme::default();
        sp_zone(&mut db, &scheme).unwrap();
        (db, sky, kcorr, scheme)
    }

    /// Galaxies as the database sees them (real-rounded photometry).
    fn db_galaxy(db: &Database, objid: i64) -> Galaxy {
        let row = db.get("Galaxy", &[Value::BigInt(objid)]).unwrap().unwrap();
        galaxy_from_payload(&row.encode())
    }

    #[test]
    fn recovers_injected_bcgs() {
        let (db, sky, kcorr, scheme) = setup();
        let params = BcgParams::default();
        let interior = sky.region.shrunk(0.45);
        let mut found = 0;
        let mut total = 0;
        for t in sky.truth_in(&interior).filter(|t| t.members >= 8) {
            total += 1;
            let g = db_galaxy(&db, t.bcg_objid);
            if let Some(c) =
                f_bcg_candidate(&db, None, &kcorr, &scheme, &params, &g, true).unwrap()
            {
                assert!((c.z - t.z).abs() < 0.08, "z {} vs {}", c.z, t.z);
                assert!(c.ngal >= 2);
                found += 1;
            }
        }
        assert!(total > 0, "need rich interior clusters");
        assert!(found * 10 >= total * 7, "recovered {found}/{total}");
    }

    #[test]
    fn matches_brute_force_evaluation() {
        // The DB path (zone search + Galaxy join) must equal the shared
        // in-memory evaluation over the same real-rounded inputs.
        let (db, sky, kcorr, scheme) = setup();
        let params = BcgParams::default();
        let mut checked = 0;
        for g_raw in sky.galaxies.iter().step_by(37) {
            let g = db_galaxy(&db, g_raw.objid);
            let via_db = f_bcg_candidate(&db, None, &kcorr, &scheme, &params, &g, true).unwrap();
            let center = g.unit_vec();
            let via_mem = bcg::evaluate_candidate(&g, &kcorr, &params, |w| {
                sky.galaxies
                    .iter()
                    .filter(|o| o.objid != g.objid)
                    .filter_map(|o| {
                        let og = db_galaxy(&db, o.objid);
                        let d = center.sep_deg_approx(&og.unit_vec());
                        (d < w.radius_deg).then_some(Friend {
                            objid: og.objid,
                            distance: d,
                            i: og.i,
                            gr: og.gr,
                            ri: og.ri,
                        })
                    })
                    .collect()
            });
            assert_eq!(via_db, via_mem, "objid {}", g.objid);
            checked += 1;
        }
        assert!(checked > 10);
    }

    #[test]
    fn ablation_returns_identical_answers() {
        let (db, sky, kcorr, scheme) = setup();
        let params = BcgParams::default();
        for g_raw in sky.galaxies.iter().step_by(101) {
            let g = db_galaxy(&db, g_raw.objid);
            let fast = f_bcg_candidate(&db, None, &kcorr, &scheme, &params, &g, true).unwrap();
            let slow = f_bcg_candidate(&db, None, &kcorr, &scheme, &params, &g, false).unwrap();
            assert_eq!(fast, slow, "objid {}", g.objid);
        }
    }

    #[test]
    fn junk_galaxy_rejected_without_spatial_work() {
        let (db, _, kcorr, scheme) = setup();
        let params = BcgParams::default();
        let junk = Galaxy::with_derived_errors(999_999_999, 180.5, 0.0, 18.0, -1.5, 3.0);
        let io_before = db.io_stats().logical_reads;
        let out = f_bcg_candidate(&db, None, &kcorr, &scheme, &params, &junk, true).unwrap();
        assert!(out.is_none());
        assert_eq!(
            db.io_stats().logical_reads,
            io_before,
            "early filter must reject junk with zero page reads"
        );
    }
}
