//! `fIsCluster` and `spMakeClusters`: decide which candidates are the
//! centers of their clusters.
//!
//! A candidate is a cluster center when it carries the maximum likelihood
//! among all candidates within `radius(z)` degrees and `|Δz| <= 0.05` —
//! found, as in the paper, by running the zone neighborhood search over the
//! galaxy Zone table and joining the hits against `Candidates`.

use crate::neighbors::visit_nearby_with;
use crate::zone_cache::ZoneSnapshot;
use skycore::bcg::{self, BcgParams};
use skycore::kcorr::KcorrTable;
use skycore::types::Candidate;
use skycore::ZoneScheme;
use stardb::{Database, DbResult, Row, Value};

/// Decode a `Candidates`/`Clusters` row.
pub fn candidate_from_row(row: &Row) -> DbResult<Candidate> {
    Ok(Candidate {
        objid: row.i64(0)?,
        ra: row.f64(1)?,
        dec: row.f64(2)?,
        z: row.f64(3)?,
        i: row.f64(4)?,
        ngal: row.i64(5)? as i32,
        chi2: row.f64(6)?,
    })
}

/// Encode a candidate as a table row.
pub fn candidate_row(c: &Candidate) -> Row {
    Row(vec![
        Value::BigInt(c.objid),
        Value::Float(c.ra),
        Value::Float(c.dec),
        Value::Float(c.z),
        Value::Real(c.i as f32),
        Value::Int(c.ngal),
        Value::Float(c.chi2),
    ])
}

/// `fIsCluster`: is this candidate the best in its neighborhood?
///
/// `snap` is the optional zone snapshot; fresh → columnar search, stale or
/// `None` → clustered-index scan, identical answers either way.
pub fn f_is_cluster(
    db: &Database,
    snap: Option<&ZoneSnapshot>,
    kcorr: &KcorrTable,
    scheme: &ZoneScheme,
    params: &BcgParams,
    c: &Candidate,
) -> DbResult<bool> {
    let rad = kcorr.nearest(c.z).radius;
    let mut best = f64::NEG_INFINITY;
    let mut join_err: Option<stardb::DbError> = None;
    visit_nearby_with(db, snap, scheme, c.ra, c.dec, rad, |objid, _distance, _| {
        match db.get("Candidates", &[Value::BigInt(objid)]) {
            Ok(Some(row)) => {
                // Only the z and chi2 columns matter for the max.
                let z = row.f64(3).unwrap_or(f64::NAN);
                let chi2 = row.f64(6).unwrap_or(f64::NEG_INFINITY);
                if (z - c.z).abs() <= params.z_window {
                    best = best.max(chi2);
                }
                true
            }
            Ok(None) => true, // a galaxy that is not a candidate
            Err(e) => {
                join_err = Some(e);
                false
            }
        }
    })?;
    if let Some(e) = join_err {
        return Err(e);
    }
    Ok(bcg::is_cluster_center(c.chi2, best, params))
}

/// `spMakeClusters`: truncate `Clusters` and insert every candidate for
/// which `fIsCluster` returns 1. Returns the number of clusters.
///
/// `workers > 1` evaluates `fIsCluster` on a zone-striped worker pool
/// (`fIsCluster` only reads `Zone` and the fully built `Candidates`
/// table); survivors are re-sorted by objid before insertion so the
/// `Clusters` table is byte-identical at any worker count.
pub fn sp_make_clusters(
    db: &mut Database,
    snap: Option<&ZoneSnapshot>,
    kcorr: &KcorrTable,
    scheme: &ZoneScheme,
    params: &BcgParams,
    workers: usize,
) -> DbResult<u64> {
    db.truncate("Clusters")?;
    // Materialize the candidate list first (the scan must not alias the
    // inserts); candidate counts are ~3% of galaxies, so this is small.
    let mut candidates = Vec::new();
    db.scan_with("Candidates", |row| {
        candidates.push(candidate_from_row(row)?);
        Ok(true)
    })?;
    let mut keep: Vec<Candidate> = if workers <= 1 {
        let mut out = Vec::new();
        for c in &candidates {
            if f_is_cluster(db, snap, kcorr, scheme, params, c)? {
                out.push(*c);
            }
        }
        out
    } else {
        let reader = db.reader();
        let stripes = crate::parallel::zone_stripes(candidates, |c| scheme.zone_of(c.dec), workers);
        crate::parallel::map_stripes(workers, stripes, |c| {
            Ok(f_is_cluster(&reader, snap, kcorr, scheme, params, c)?.then_some(*c))
        })?
        .into_iter()
        .flatten()
        .flatten()
        .collect()
    };
    keep.sort_by_key(|c| c.objid);
    let mut n = 0;
    let mut keep = keep.into_iter();
    loop {
        let batch: Vec<_> =
            keep.by_ref().take(crate::parallel::INSERT_BATCH).map(|c| candidate_row(&c)).collect();
        if batch.is_empty() {
            break;
        }
        n += db.insert_rows("Clusters", batch)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::import::sp_import_galaxy;
    use crate::schema::create_schema;
    use crate::zone_task::sp_zone;
    use skycore::kcorr::KcorrConfig;
    use skycore::SkyRegion;
    use stardb::DbConfig;

    /// A hand-built Candidates table: one dominant candidate and one
    /// nearby weaker one at the same redshift, plus a distant candidate.
    fn setup() -> (Database, KcorrTable, ZoneScheme, Vec<Candidate>) {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        // Galaxies backing the zone table: the three candidates.
        let k = kcorr.nearest(0.2);
        let mk = |objid: i64, ra: f64, dec: f64| {
            skycore::Galaxy::with_derived_errors(objid, ra, dec, k.i, k.gr, k.ri)
        };
        let sky = skysim::Sky {
            region: SkyRegion::new(179.0, 182.0, -1.0, 1.0),
            galaxies: vec![mk(1, 180.5, 0.0), mk(2, 180.52, 0.01), mk(3, 181.5, 0.5)],
            truth: vec![],
        };
        sp_import_galaxy(&mut db, &sky, &sky.region.clone()).unwrap();
        let scheme = ZoneScheme::default();
        sp_zone(&mut db, &scheme).unwrap();
        let candidates = vec![
            Candidate { objid: 1, ra: 180.5, dec: 0.0, z: 0.2, i: k.i, ngal: 10, chi2: 2.0 },
            Candidate { objid: 2, ra: 180.52, dec: 0.01, z: 0.2, i: k.i, ngal: 4, chi2: 1.0 },
            Candidate { objid: 3, ra: 181.5, dec: 0.5, z: 0.2, i: k.i, ngal: 5, chi2: 1.5 },
        ];
        for c in &candidates {
            db.insert("Candidates", candidate_row(c)).unwrap();
        }
        (db, kcorr, scheme, candidates)
    }

    #[test]
    fn dominant_candidate_wins_weaker_neighbor_loses() {
        let (db, kcorr, scheme, cands) = setup();
        let p = BcgParams::default();
        assert!(f_is_cluster(&db, None, &kcorr, &scheme, &p, &cands[0]).unwrap());
        assert!(!f_is_cluster(&db, None, &kcorr, &scheme, &p, &cands[1]).unwrap());
        // The distant candidate has no competition.
        assert!(f_is_cluster(&db, None, &kcorr, &scheme, &p, &cands[2]).unwrap());
    }

    #[test]
    fn different_redshift_slices_do_not_compete() {
        let (mut db, kcorr, scheme, mut cands) = setup();
        let p = BcgParams::default();
        // Move the weaker neighbor far in redshift: it now wins its own slice.
        db.delete_by_key("Candidates", &[Value::BigInt(2)]).unwrap();
        cands[1].z = 0.30;
        db.insert("Candidates", candidate_row(&cands[1])).unwrap();
        assert!(f_is_cluster(&db, None, &kcorr, &scheme, &p, &cands[1]).unwrap());
    }

    #[test]
    fn sp_make_clusters_fills_table() {
        let (mut db, kcorr, scheme, _) = setup();
        let p = BcgParams::default();
        let n = sp_make_clusters(&mut db, None, &kcorr, &scheme, &p, 1).unwrap();
        assert_eq!(n, 2);
        assert_eq!(db.row_count("Clusters").unwrap(), 2);
        let ids: Vec<i64> = db
            .scan("Clusters")
            .unwrap()
            .iter()
            .map(|r| r.i64(0).unwrap())
            .collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn rerun_is_idempotent() {
        let (mut db, kcorr, scheme, _) = setup();
        let p = BcgParams::default();
        let a = sp_make_clusters(&mut db, None, &kcorr, &scheme, &p, 1).unwrap();
        let b = sp_make_clusters(&mut db, None, &kcorr, &scheme, &p, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn worker_pool_matches_sequential_table() {
        let (mut db, kcorr, scheme, _) = setup();
        let p = BcgParams::default();
        let n1 = sp_make_clusters(&mut db, None, &kcorr, &scheme, &p, 1).unwrap();
        let seq = db.scan("Clusters").unwrap();
        for workers in [2, 4] {
            let n = sp_make_clusters(&mut db, None, &kcorr, &scheme, &p, workers).unwrap();
            assert_eq!(n, n1, "workers={workers}");
            assert_eq!(db.scan("Clusters").unwrap(), seq, "workers={workers}");
        }
    }
}
