//! `spImportGalaxy`: pull the region of interest out of the archive
//! catalog into the local `Galaxy` table, deriving the color-error model.

use skycore::types::{sigma_gr, sigma_ri, Galaxy};
use skycore::SkyRegion;
use skysim::Sky;
use stardb::{Database, DbResult, Row, Value};

/// Truncate `Galaxy` and import every catalog galaxy inside the window,
/// computing `sigmagr`/`sigmari` exactly as the paper's stored procedure
/// does. Returns the number of rows imported.
pub fn sp_import_galaxy(db: &mut Database, sky: &Sky, window: &SkyRegion) -> DbResult<u64> {
    db.truncate("Galaxy")?;
    let mut n = 0;
    for g in sky.galaxies_in(window) {
        db.insert("Galaxy", galaxy_row(g))?;
        n += 1;
    }
    Ok(n)
}

/// Encode a catalog galaxy as a `Galaxy` table row (photometry rounds to
/// `real`, matching both the paper's schema and the TAM file format).
pub fn galaxy_row(g: &Galaxy) -> Row {
    Row(vec![
        Value::BigInt(g.objid),
        Value::Float(g.ra),
        Value::Float(g.dec),
        Value::Real(g.i as f32),
        Value::Real(g.gr as f32),
        Value::Real(g.ri as f32),
        Value::Real(sigma_gr(g.i) as f32),
        Value::Real(sigma_ri(g.i) as f32),
    ])
}

/// Decode a `Galaxy` table row back into the shared galaxy type (values
/// carry the `real` rounding from storage).
pub fn galaxy_from_row(row: &Row) -> DbResult<Galaxy> {
    Ok(Galaxy {
        objid: row.i64(0)?,
        ra: row.f64(1)?,
        dec: row.f64(2)?,
        i: row.f64(3)?,
        gr: row.f64(4)?,
        ri: row.f64(5)?,
        sigma_gr: row.f64(6)?,
        sigma_ri: row.f64(7)?,
    })
}

/// Fast path: decode the fixed-layout `Galaxy` payload bytes without
/// constructing a `Row`. Layout (row codec, one tag byte per value):
/// `[1+8 objid][1+8 ra][1+8 dec][1+4 i][1+4 gr][1+4 ri][1+4 sgr][1+4 sri]`
/// = 52 bytes.
pub fn galaxy_from_payload(p: &[u8]) -> Galaxy {
    debug_assert_eq!(p.len(), 52, "galaxy payload layout drifted");
    #[inline]
    fn f64_at(p: &[u8], off: usize) -> f64 {
        f64::from_le_bytes(p[off..off + 8].try_into().unwrap())
    }
    #[inline]
    fn f32_at(p: &[u8], off: usize) -> f32 {
        f32::from_le_bytes(p[off..off + 4].try_into().unwrap())
    }
    Galaxy {
        objid: i64::from_le_bytes(p[1..9].try_into().unwrap()),
        ra: f64_at(p, 10),
        dec: f64_at(p, 19),
        i: f64::from(f32_at(p, 28)),
        gr: f64::from(f32_at(p, 33)),
        ri: f64::from(f32_at(p, 38)),
        sigma_gr: f64::from(f32_at(p, 43)),
        sigma_ri: f64::from(f32_at(p, 48)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::create_schema;
    use skycore::kcorr::{KcorrConfig, KcorrTable};
    use skysim::SkyConfig;
    use stardb::DbConfig;

    fn setup() -> (Database, Sky) {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        let region = SkyRegion::new(180.0, 181.0, 0.0, 1.0);
        let sky = Sky::generate(region, &SkyConfig::test(), &kcorr, 5);
        (db, sky)
    }

    #[test]
    fn import_respects_window() {
        let (mut db, sky) = setup();
        let window = SkyRegion::new(180.0, 180.5, 0.0, 0.5);
        let n = sp_import_galaxy(&mut db, &sky, &window).unwrap();
        assert_eq!(n, db.row_count("Galaxy").unwrap());
        assert_eq!(n as usize, sky.galaxies_in(&window).count());
        db.scan_with("Galaxy", |row| {
            let g = galaxy_from_row(row)?;
            assert!(window.contains(g.ra, g.dec));
            Ok(true)
        })
        .unwrap();
    }

    #[test]
    fn reimport_replaces() {
        let (mut db, sky) = setup();
        let n1 = sp_import_galaxy(&mut db, &sky, &sky.region.clone()).unwrap();
        let n2 = sp_import_galaxy(&mut db, &sky, &SkyRegion::new(180.0, 180.1, 0.0, 0.1)).unwrap();
        assert!(n2 < n1);
        assert_eq!(db.row_count("Galaxy").unwrap(), n2);
    }

    #[test]
    fn sigma_columns_match_error_model() {
        let (mut db, sky) = setup();
        sp_import_galaxy(&mut db, &sky, &sky.region.clone()).unwrap();
        let g = &sky.galaxies[0];
        let row = db.get("Galaxy", &[Value::BigInt(g.objid)]).unwrap().unwrap();
        assert!((row.f64(6).unwrap() - sigma_gr(g.i)).abs() < 1e-6);
        assert!((row.f64(7).unwrap() - sigma_ri(g.i)).abs() < 1e-6);
    }

    #[test]
    fn fast_payload_decode_matches_row_decode() {
        let g = Galaxy::with_derived_errors(987654321, 183.25, -1.75, 18.35, 1.21, 0.55);
        let row = galaxy_row(&g);
        let payload = row.encode();
        let via_row = galaxy_from_row(&Row::decode(&payload, 8).unwrap()).unwrap();
        let via_fast = galaxy_from_payload(&payload);
        assert_eq!(via_row, via_fast);
        // And the rounding is the TAM file rounding.
        assert_eq!(via_fast.i, f64::from(18.35f32));
    }
}
