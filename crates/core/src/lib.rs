//! # maxbcg — the paper's contribution
//!
//! MaxBCG on the database: the stored procedures and table-valued functions
//! of the paper's appendix (`spImportGalaxy`, `spZone`,
//! `fGetNearbyObjEqZd`, `fBCGCandidate`, `fIsCluster`, `fBCGr200`,
//! `fGetClusterGalaxiesMetric`, `spMakeCandidates`, `spMakeClusters`,
//! `spMakeGalaxiesMetric`) implemented against the `stardb` engine, plus
//! the zone-partitioned share-nothing parallel runner of Figure 6 and the
//! per-task statistics of Table 1.

#![warn(missing_docs)]

pub mod candidate;
pub mod cluster;
pub mod import;
pub mod members;
pub mod neighbors;
pub mod parallel;
pub mod partition;
pub mod pipeline;
pub mod region_query;
pub mod schema;
pub mod script;
pub mod stats;
pub mod xmatch;
pub mod zone_cache;
pub mod zone_task;

pub use neighbors::{nearby_obj_eq_zd, visit_nearby, visit_nearby_with, Neighbor};
pub use partition::{
    run_partitioned, run_partitioned_recovering, PartitionedRun, RecoveryPolicy, RecoveryReport,
};
pub use pipeline::{IterationMode, MaxBcgConfig, MaxBcgDb};
pub use stats::RunReport;
pub use xmatch::{
    brute_force_xmatch, create_survey_table, expected_match_rate, load_survey, run_xmatch,
    XmatchObj, XmatchSpec,
};
pub use zone_cache::{ZoneBucket, ZoneSnapshot};
