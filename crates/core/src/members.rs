//! `fGetClusterGalaxiesMetric` and `spMakeGalaxiesMetric`: retrieve the
//! galaxies belonging to each cluster — everything within
//! `radius(z) * r200(ngal)` degrees of the BCG that sits inside the
//! magnitude and ridge-line color windows at the cluster redshift.

use crate::cluster::candidate_from_row;
use crate::import::galaxy_from_payload;
use crate::neighbors::visit_nearby_with;
use crate::zone_cache::ZoneSnapshot;
use skycore::bcg::{self, BcgParams};
use skycore::kcorr::KcorrTable;
use skycore::types::{Cluster, ClusterMember, Friend};
use skycore::ZoneScheme;
use stardb::{Database, DbResult, Row, Value};

/// `fGetClusterGalaxiesMetric` for one cluster: the BCG itself (distance
/// 0) plus every admitted member.
///
/// `snap` is the optional zone snapshot; fresh → columnar search, stale or
/// `None` → clustered-index scan, identical answers either way.
pub fn f_get_cluster_galaxies(
    db: &Database,
    snap: Option<&ZoneSnapshot>,
    kcorr: &KcorrTable,
    scheme: &ZoneScheme,
    params: &BcgParams,
    cluster: &Cluster,
) -> DbResult<Vec<ClusterMember>> {
    let k = kcorr.nearest(cluster.z);
    let w = bcg::member_windows(k, cluster.i, f64::from(cluster.ngal), params);
    // Insert the central galaxy first, as the SQL does.
    let mut members = vec![ClusterMember {
        cluster_objid: cluster.objid,
        galaxy_objid: cluster.objid,
        distance: 0.0,
    }];
    let mut join_err: Option<stardb::DbError> = None;
    visit_nearby_with(db, snap, scheme, cluster.ra, cluster.dec, w.radius_deg, |objid, distance, _| {
        if objid == cluster.objid {
            return true;
        }
        match db.get("Galaxy", &[Value::BigInt(objid)]) {
            Ok(Some(row)) => {
                let g = galaxy_from_payload(&row.encode());
                let f = Friend { objid, distance, i: g.i, gr: g.gr, ri: g.ri };
                if w.admits(&f) {
                    members.push(ClusterMember {
                        cluster_objid: cluster.objid,
                        galaxy_objid: objid,
                        distance,
                    });
                }
                true
            }
            Ok(None) => true,
            Err(e) => {
                join_err = Some(e);
                false
            }
        }
    })?;
    match join_err {
        Some(e) => Err(e),
        None => Ok(members),
    }
}

/// `spMakeGalaxiesMetric`: loop over `Clusters` (a cursor in the paper)
/// filling `ClusterGalaxiesMetric`. Returns the number of membership rows.
///
/// `workers > 1` expands clusters on a zone-striped worker pool
/// (`fGetClusterGalaxiesMetric` only reads `Galaxy` and `Zone`). The
/// metric table is a heap whose scan order is insertion order, so the
/// per-cluster groups are merged back into cluster-objid order — the
/// sequential insertion order, `Clusters` being objid-clustered — before
/// writing; within a group the BCG-first visit order is already
/// deterministic.
pub fn sp_make_galaxies_metric(
    db: &mut Database,
    snap: Option<&ZoneSnapshot>,
    kcorr: &KcorrTable,
    scheme: &ZoneScheme,
    params: &BcgParams,
    workers: usize,
) -> DbResult<u64> {
    db.truncate("ClusterGalaxiesMetric")?;
    let mut clusters = Vec::new();
    db.scan_with("Clusters", |row| {
        clusters.push(candidate_from_row(row)?);
        Ok(true)
    })?;
    let groups: Vec<Vec<ClusterMember>> = if workers <= 1 {
        let mut out = Vec::with_capacity(clusters.len());
        for cluster in &clusters {
            out.push(f_get_cluster_galaxies(db, snap, kcorr, scheme, params, cluster)?);
        }
        out
    } else {
        let reader = db.reader();
        let stripes = crate::parallel::zone_stripes(clusters, |c| scheme.zone_of(c.dec), workers);
        let mut groups: Vec<Vec<ClusterMember>> =
            crate::parallel::map_stripes(workers, stripes, |cluster| {
                f_get_cluster_galaxies(&reader, snap, kcorr, scheme, params, cluster)
            })?
            .into_iter()
            .flatten()
            .collect();
        // Every group leads with its BCG row, so the key always exists.
        groups.sort_by_key(|ms| ms.first().map(|m| m.cluster_objid));
        groups
    };
    let mut n = 0;
    let mut rows = groups.into_iter().flatten().map(|m| {
        Row(vec![
            Value::BigInt(m.cluster_objid),
            Value::BigInt(m.galaxy_objid),
            Value::Float(m.distance),
        ])
    });
    loop {
        let batch: Vec<Row> = rows.by_ref().take(crate::parallel::INSERT_BATCH).collect();
        if batch.is_empty() {
            break;
        }
        n += db.insert_rows("ClusterGalaxiesMetric", batch)?;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::candidate_row;
    use crate::import::sp_import_galaxy;
    use crate::schema::create_schema;
    use crate::zone_task::sp_zone;
    use skycore::kcorr::KcorrConfig;
    use skycore::types::Candidate;
    use skycore::{Galaxy, SkyRegion};
    use stardb::DbConfig;

    /// One cluster of known membership: BCG + 5 on-ridge members inside
    /// the metric radius + contaminants (too blue / too bright / too far).
    fn setup() -> (Database, KcorrTable, ZoneScheme, Cluster) {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        let k = kcorr.nearest(0.15);
        let ngal = 6.0;
        let rad = k.radius * bcg::r200_mpc(ngal);
        let mut galaxies = vec![Galaxy::with_derived_errors(1, 180.0, 0.0, k.i, k.gr, k.ri)];
        for j in 0..5i64 {
            let ang = j as f64 * std::f64::consts::TAU / 5.0;
            galaxies.push(Galaxy::with_derived_errors(
                10 + j,
                180.0 + 0.6 * rad * ang.cos(),
                0.6 * rad * ang.sin(),
                k.i + 1.0,
                k.gr,
                k.ri,
            ));
        }
        // Contaminants: wrong color, brighter than BCG, outside radius.
        galaxies.push(Galaxy::with_derived_errors(20, 180.01, 0.01, k.i + 1.0, k.gr - 0.5, k.ri));
        galaxies.push(Galaxy::with_derived_errors(21, 180.02, 0.0, k.i - 1.0, k.gr, k.ri));
        galaxies.push(Galaxy::with_derived_errors(22, 180.0 + 3.0 * rad, 0.0, k.i + 1.0, k.gr, k.ri));
        let sky = skysim::Sky {
            region: SkyRegion::new(179.0, 181.0, -1.0, 1.0),
            galaxies,
            truth: vec![],
        };
        sp_import_galaxy(&mut db, &sky, &sky.region.clone()).unwrap();
        let scheme = ZoneScheme::default();
        sp_zone(&mut db, &scheme).unwrap();
        let cluster =
            Candidate { objid: 1, ra: 180.0, dec: 0.0, z: 0.15, i: k.i, ngal: 6, chi2: 1.0 };
        db.insert("Clusters", candidate_row(&cluster)).unwrap();
        (db, kcorr, scheme, cluster)
    }

    #[test]
    fn members_are_exactly_the_injected_ones() {
        let (db, kcorr, scheme, cluster) = setup();
        let p = BcgParams::default();
        let members = f_get_cluster_galaxies(&db, None, &kcorr, &scheme, &p, &cluster).unwrap();
        let mut ids: Vec<i64> = members.iter().map(|m| m.galaxy_objid).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 10, 11, 12, 13, 14]);
    }

    #[test]
    fn bcg_row_comes_first_with_distance_zero() {
        let (db, kcorr, scheme, cluster) = setup();
        let p = BcgParams::default();
        let members = f_get_cluster_galaxies(&db, None, &kcorr, &scheme, &p, &cluster).unwrap();
        assert_eq!(members[0].galaxy_objid, 1);
        assert_eq!(members[0].distance, 0.0);
        assert!(members[1..].iter().all(|m| m.distance > 0.0));
    }

    #[test]
    fn metric_table_filled_by_procedure() {
        let (mut db, kcorr, scheme, _) = setup();
        let p = BcgParams::default();
        let n = sp_make_galaxies_metric(&mut db, None, &kcorr, &scheme, &p, 1).unwrap();
        assert_eq!(n, 6);
        assert_eq!(db.row_count("ClusterGalaxiesMetric").unwrap(), 6);
        // Re-running truncates and refills.
        let n2 = sp_make_galaxies_metric(&mut db, None, &kcorr, &scheme, &p, 1).unwrap();
        assert_eq!(n2, 6);
        assert_eq!(db.row_count("ClusterGalaxiesMetric").unwrap(), 6);
    }

    #[test]
    fn worker_pool_matches_sequential_table() {
        let (mut db, kcorr, scheme, _) = setup();
        let p = BcgParams::default();
        let n1 = sp_make_galaxies_metric(&mut db, None, &kcorr, &scheme, &p, 1).unwrap();
        let seq = db.scan("ClusterGalaxiesMetric").unwrap();
        for workers in [2, 4] {
            let n = sp_make_galaxies_metric(&mut db, None, &kcorr, &scheme, &p, workers).unwrap();
            assert_eq!(n, n1, "workers={workers}");
            assert_eq!(db.scan("ClusterGalaxiesMetric").unwrap(), seq, "workers={workers}");
        }
    }
}
