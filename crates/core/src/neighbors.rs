//! `fGetNearbyObjEqZd`: the zone-indexed neighborhood search.
//!
//! A line-by-line port of the paper's table-valued function: loop over the
//! zones a search circle overlaps, cut on right ascension inside each zone
//! with the per-zone narrowing factor `@x`, then keep objects whose squared
//! chord distance beats `4 sin²(r/2)`. The range scans run against the
//! `(zoneid, ra, objid)` clustered index — "this pure SQL approach avoids
//! the cost of using expensive calls to the external C-HTM libraries".

use crate::zone_cache::{zobs, ZoneSnapshot};
use crate::zone_task::zone_entry_from_payload;
use skycore::angle::{chord2_of_deg, deg_of_chord_approx};
use skycore::{ra_intervals, UnitVec, ZoneScheme};
use stardb::{Database, DbResult, Value};
use std::sync::OnceLock;

struct NeighborObs {
    searches: obs::Counter,
    zones_scanned: obs::Counter,
    pairs_examined: obs::Counter,
    pairs_per_zone: obs::Histogram,
}

/// Pair-examination accounting for the zone join. `pairs_examined` counts
/// rows the RA range scan surfaced (before the dec/chord cut);
/// `pairs_per_zone` is its per-zone-stripe distribution, the quantity the
/// zone-height tuning in the paper's tech report optimizes.
fn nobs() -> &'static NeighborObs {
    static N: OnceLock<NeighborObs> = OnceLock::new();
    N.get_or_init(|| NeighborObs {
        searches: obs::counter("maxbcg.neighbors.searches"),
        zones_scanned: obs::counter("maxbcg.neighbors.zones_scanned"),
        pairs_examined: obs::counter("maxbcg.neighbors.pairs_examined"),
        pairs_per_zone: obs::histogram("maxbcg.neighbors.pairs_per_zone"),
    })
}

/// One neighbor hit: object id and angular distance in degrees (the
/// paper's chord/d2r convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Object id from the Zone table.
    pub objid: i64,
    /// Angular distance to the query point, degrees.
    pub distance: f64,
}

/// Find every Zone-table object within `r` degrees of `(ra, dec)`.
/// The result includes the query object itself when it is in the table
/// (distance 0), exactly as the SQL function does — callers exclude self
/// where the paper's SQL has `n.objid != @objid`.
pub fn nearby_obj_eq_zd(
    db: &Database,
    scheme: &ZoneScheme,
    ra: f64,
    dec: f64,
    r: f64,
) -> DbResult<Vec<Neighbor>> {
    let mut out = Vec::new();
    visit_nearby(db, scheme, ra, dec, r, |objid, distance, _| {
        out.push(Neighbor { objid, distance });
        true
    })?;
    Ok(out)
}

/// Visitor-form of [`nearby_obj_eq_zd`] for hot loops: called with
/// `(objid, distance_deg, dec)` per hit; return `false` to stop.
///
/// Hits are buffered one zone at a time and `visit` runs *after* each
/// zone's index scan completes, so the callback is free to query the
/// database again (the `JOIN Galaxy` / `JOIN Candidates` of the paper's
/// functions) — index scans themselves hold the buffer-pool latch and must
/// not re-enter the engine.
pub fn visit_nearby(
    db: &Database,
    scheme: &ZoneScheme,
    ra: f64,
    dec: f64,
    r: f64,
    visit: impl FnMut(i64, f64, f64) -> bool,
) -> DbResult<()> {
    visit_nearby_with(db, None, scheme, ra, dec, r, visit)
}

/// [`visit_nearby`] with an optional [`ZoneSnapshot`]: a fresh snapshot is
/// served from its struct-of-arrays buckets (binary-searched RA window,
/// contiguous column slices, no latches, no payload decode); a stale or
/// absent one falls back to the clustered-index scan. Both paths surface
/// the same rows in the same order and feed the same stored unit vectors
/// to the same chord arithmetic, so results are bit-identical — the
/// snapshot changes cost, never answers.
pub fn visit_nearby_with(
    db: &Database,
    snap: Option<&ZoneSnapshot>,
    scheme: &ZoneScheme,
    ra: f64,
    dec: f64,
    r: f64,
    mut visit: impl FnMut(i64, f64, f64) -> bool,
) -> DbResult<()> {
    // Resolve the path once per search: the epoch read and the scans below
    // share one `&Database` borrow, so freshness cannot change mid-search.
    let snap = match snap {
        Some(s) if s.is_fresh(db) => {
            zobs().hits.incr();
            Some(s)
        }
        Some(_) => {
            zobs().fallbacks.incr();
            None
        }
        None => None,
    };
    let center = UnitVec::from_radec(ra, dec);
    let r2 = chord2_of_deg(r);
    let (zone_min, zone_max) = scheme.zone_range(dec, r);
    let (dec_lo, dec_hi) = (dec - r, dec + r);
    nobs().searches.incr();
    // Reused per-zone hit buffer: a zone stripe within the RA window holds
    // at most a few dozen objects at survey densities. Hits carry the raw
    // squared chord — the asin in `deg_of_chord_approx` runs after the
    // scan, only for survivors of the chord cut, outside the latch-holding
    // closure.
    let mut hits: Vec<(i64, f64, f64)> = Vec::with_capacity(32);
    for zone in zone_min..=zone_max {
        let x = scheme.ra_half_window(dec, r, zone);
        let (intervals, n_intervals) = ra_intervals(ra, x);
        hits.clear();
        let mut scanned: u64 = 0;
        for &(ra_lo, ra_hi) in &intervals[..n_intervals] {
            match snap {
                Some(s) => {
                    let b = s.bucket(zone);
                    let (start, end) = b.ra_window(ra_lo, ra_hi);
                    scanned += (end - start) as u64;
                    for i in start..end {
                        // The paper's WHERE clause: dec window plus exact
                        // chord cut, on columns instead of decoded rows.
                        let d = b.dec[i];
                        if d >= dec_lo && d <= dec_hi {
                            let pos = UnitVec { x: b.cx[i], y: b.cy[i], z: b.cz[i] };
                            let c2 = center.chord2(&pos);
                            if c2 < r2 {
                                hits.push((b.objid[i], c2, d));
                            }
                        }
                    }
                }
                None => {
                    let lo = [Value::Int(zone), Value::Float(ra_lo)];
                    let hi = [Value::Int(zone), Value::Float(ra_hi)];
                    db.range_scan_prefix_raw("Zone", &lo, &hi, |payload| {
                        scanned += 1;
                        let e = zone_entry_from_payload(payload);
                        // The paper's WHERE clause: dec window plus exact
                        // chord cut.
                        if e.dec >= dec_lo && e.dec <= dec_hi {
                            let c2 = center.chord2(&e.pos);
                            if c2 < r2 {
                                hits.push((e.objid, c2, e.dec));
                            }
                        }
                        true
                    })?;
                }
            }
        }
        nobs().zones_scanned.incr();
        nobs().pairs_examined.add(scanned);
        nobs().pairs_per_zone.record(scanned);
        for &(objid, c2, hit_dec) in &hits {
            if !visit(objid, deg_of_chord_approx(c2.sqrt()), hit_dec) {
                return Ok(());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::import::sp_import_galaxy;
    use crate::schema::create_schema;
    use crate::zone_task::sp_zone;
    use skycore::kcorr::{KcorrConfig, KcorrTable};
    use skycore::SkyRegion;
    use skysim::{Sky, SkyConfig};
    use stardb::DbConfig;

    fn setup(seed: u64) -> (Database, Sky, ZoneScheme) {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        let region = SkyRegion::new(180.0, 181.0, -0.5, 0.5);
        let sky = Sky::generate(region, &SkyConfig::scaled(0.15), &kcorr, seed);
        sp_import_galaxy(&mut db, &sky, &region).unwrap();
        let scheme = ZoneScheme::default();
        sp_zone(&mut db, &scheme).unwrap();
        (db, sky, scheme)
    }

    fn brute_force(sky: &Sky, ra: f64, dec: f64, r: f64) -> Vec<i64> {
        let center = UnitVec::from_radec(ra, dec);
        let r2 = chord2_of_deg(r);
        let mut ids: Vec<i64> = sky
            .galaxies
            .iter()
            .filter(|g| center.chord2(&g.unit_vec()) < r2)
            .map(|g| g.objid)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn matches_brute_force_at_several_radii() {
        let (db, sky, scheme) = setup(31);
        for &(ra, dec, r) in &[
            (180.5, 0.0, 0.5),
            (180.2, 0.3, 0.25),
            (180.9, -0.4, 0.1),
            (180.5, 0.45, 0.3), // circle sticks out of the populated region
        ] {
            let mut got: Vec<i64> = nearby_obj_eq_zd(&db, &scheme, ra, dec, r)
                .unwrap()
                .into_iter()
                .map(|n| n.objid)
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute_force(&sky, ra, dec, r), "at ({ra},{dec},{r})");
        }
    }

    #[test]
    fn includes_self_at_distance_zero() {
        let (db, sky, scheme) = setup(32);
        let g = &sky.galaxies[sky.galaxies.len() / 2];
        let hits = nearby_obj_eq_zd(&db, &scheme, g.ra, g.dec, 0.05).unwrap();
        let me = hits.iter().find(|n| n.objid == g.objid).expect("self must be found");
        assert!(me.distance < 1e-9);
    }

    #[test]
    fn distances_match_chord_convention() {
        let (db, sky, scheme) = setup(33);
        let g = &sky.galaxies[0];
        let center = UnitVec::from_radec(g.ra, g.dec);
        for n in nearby_obj_eq_zd(&db, &scheme, g.ra, g.dec, 0.3).unwrap() {
            let other = sky.galaxies.iter().find(|x| x.objid == n.objid).unwrap();
            let expect = center.sep_deg_approx(&other.unit_vec());
            assert!((n.distance - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_region_returns_nothing() {
        let (db, _, scheme) = setup(34);
        // Far away from the populated window.
        let hits = nearby_obj_eq_zd(&db, &scheme, 10.0, 45.0, 0.5).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn early_stop_via_visitor() {
        let (db, _, scheme) = setup(35);
        let mut n = 0;
        visit_nearby(&db, &scheme, 180.5, 0.0, 0.5, |_, _, _| {
            n += 1;
            n < 5
        })
        .unwrap();
        assert_eq!(n, 5);
    }

    /// Dual-path harness: run a search on the B-tree path and on a fresh
    /// snapshot, assert the *ordered* hit streams are bit-identical, and
    /// return the sorted ids for brute-force comparison.
    fn both_paths(
        db: &Database,
        snap: &ZoneSnapshot,
        scheme: &ZoneScheme,
        ra: f64,
        dec: f64,
        r: f64,
    ) -> Vec<i64> {
        let mut btree: Vec<(i64, u64, u64)> = Vec::new();
        visit_nearby_with(db, None, scheme, ra, dec, r, |id, d, hd| {
            btree.push((id, d.to_bits(), hd.to_bits()));
            true
        })
        .unwrap();
        let mut soa: Vec<(i64, u64, u64)> = Vec::new();
        visit_nearby_with(db, Some(snap), scheme, ra, dec, r, |id, d, hd| {
            soa.push((id, d.to_bits(), hd.to_bits()));
            true
        })
        .unwrap();
        assert_eq!(btree, soa, "paths diverged at ({ra},{dec},{r})");
        let mut ids: Vec<i64> = soa.into_iter().map(|(id, _, _)| id).collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn snapshot_path_matches_btree_and_brute_force() {
        let (db, sky, scheme) = setup(41);
        let snap = ZoneSnapshot::build(&db).unwrap();
        for &(ra, dec, r) in &[
            (180.5, 0.0, 0.5),
            (180.2, 0.3, 0.25),
            (180.9, -0.4, 0.1),
            (180.5, 0.45, 0.3),
            (180.0, 0.0, 0.02), // window pokes past the populated edge
        ] {
            assert_eq!(
                both_paths(&db, &snap, &scheme, ra, dec, r),
                brute_force(&sky, ra, dec, r),
                "at ({ra},{dec},{r})"
            );
        }
    }

    /// Hand-built sky at chosen positions (the generator only fills
    /// axis-aligned boxes; wrap and pole coverage needs exact placement).
    fn setup_at(positions: &[(f64, f64)]) -> (Database, Sky, ZoneScheme) {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        let region = SkyRegion::new(0.0, 360.0, -90.0, 90.0);
        let galaxies = positions
            .iter()
            .enumerate()
            .map(|(i, &(ra, dec))| {
                skycore::types::Galaxy::with_derived_errors(i as i64 + 1, ra, dec, 17.5, 1.1, 0.5)
            })
            .collect();
        let sky = Sky { region, galaxies, truth: Vec::new() };
        sp_import_galaxy(&mut db, &sky, &region).unwrap();
        let scheme = ZoneScheme::default();
        sp_zone(&mut db, &scheme).unwrap();
        (db, sky, scheme)
    }

    #[test]
    fn circles_crossing_the_ra_wrap_find_far_side_neighbors() {
        let (db, sky, scheme) = setup_at(&[
            (359.62, 0.01),
            (359.80, -0.05),
            (359.95, 0.02),
            (359.999, 0.0),
            (0.001, 0.0),
            (0.05, -0.03),
            (0.30, 0.04),
            (0.65, 0.0),
            (180.0, 0.0), // far control, must never appear
        ]);
        let snap = ZoneSnapshot::build(&db).unwrap();
        for &(ra, dec, r) in &[
            (0.05, 0.0, 0.5),   // center just east of the seam
            (359.9, 0.0, 0.5),  // center just west of the seam
            (0.0, 0.0, 0.4),    // center exactly on the seam
            (359.99, 0.02, 0.05),
        ] {
            let got = both_paths(&db, &snap, &scheme, ra, dec, r);
            assert_eq!(got, brute_force(&sky, ra, dec, r), "at ({ra},{dec},{r})");
            assert!(!got.is_empty(), "wrap search at ({ra},{dec},{r}) found nothing");
            assert!(!got.contains(&9), "far control leaked in at ({ra},{dec},{r})");
        }
        // Sanity: at least one query must actually straddle the seam.
        let straddles = both_paths(&db, &snap, &scheme, 0.05, 0.0, 0.5);
        assert!(straddles.contains(&2) && straddles.contains(&7));
    }

    #[test]
    fn centers_within_r_of_the_poles_match_brute_force() {
        let (db, sky, scheme) = setup_at(&[
            (0.0, 89.96),
            (45.0, 89.97),
            (90.0, 89.99),
            (180.0, 89.95),
            (270.0, 89.98),
            (359.0, 89.999),
            (10.0, -89.97),
            (200.0, -89.99),
            (0.0, 89.0), // just outside a 0.1-degree polar cap
        ]);
        let snap = ZoneSnapshot::build(&db).unwrap();
        for &(ra, dec, r) in &[
            (0.0, 89.98, 0.1),    // cap contains the north pole
            (120.0, 89.97, 0.08), // wide in RA but not over the pole
            (200.0, -89.98, 0.1), // south polar cap
            (350.0, 89.999, 0.05),
        ] {
            let got = both_paths(&db, &snap, &scheme, ra, dec, r);
            assert_eq!(got, brute_force(&sky, ra, dec, r), "at ({ra},{dec},{r})");
        }
        // The polar caps really do capture objects all around in RA.
        let cap = both_paths(&db, &snap, &scheme, 0.0, 89.98, 0.1);
        assert!(cap.len() >= 4, "polar cap found only {cap:?}");
    }

    #[test]
    fn radius_larger_than_zone_height_matches_brute_force() {
        // Coarse 1-degree zones, 2.5-degree search radius: the circle spans
        // several whole zones and the central zone's widest RA extent is
        // interior, not at an edge.
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        let region = SkyRegion::new(178.0, 184.0, -3.0, 3.0);
        let sky = Sky::generate(region, &SkyConfig::scaled(0.05), &kcorr, 44);
        sp_import_galaxy(&mut db, &sky, &region).unwrap();
        let coarse = ZoneScheme::with_height(1.0);
        sp_zone(&mut db, &coarse).unwrap();
        let snap = ZoneSnapshot::build(&db).unwrap();
        for &(ra, dec, r) in &[(181.0, 0.3, 2.5), (180.0, -1.2, 1.7)] {
            let got = both_paths(&db, &snap, &coarse, ra, dec, r);
            assert_eq!(got, brute_force(&sky, ra, dec, r), "at ({ra},{dec},{r})");
            assert!(!got.is_empty());
        }
    }

    #[test]
    fn stale_snapshot_falls_back_to_the_btree_path() {
        let (mut db, sky, scheme) = setup(45);
        let snap = ZoneSnapshot::build(&db).unwrap();
        let hits_0 = zobs().hits.get();
        let falls_0 = zobs().fallbacks.get();

        // Fresh: the columnar path serves the search. (Counters are
        // process-global and sibling tests run concurrently, so assert
        // monotonic movement, not exact deltas.)
        let fresh = both_paths(&db, &snap, &scheme, 180.5, 0.0, 0.3);
        assert!(zobs().hits.get() > hits_0, "fresh search must count a hit");

        // Mutate Zone after the build: the same snapshot must now be
        // bypassed, and results must still be correct (the table was
        // rebuilt with identical content, only its epoch moved).
        sp_zone(&mut db, &scheme).unwrap();
        let mut stale: Vec<i64> = Vec::new();
        visit_nearby_with(&db, Some(&snap), &scheme, 180.5, 0.0, 0.3, |id, _, _| {
            stale.push(id);
            true
        })
        .unwrap();
        assert!(zobs().fallbacks.get() > falls_0, "stale search must count a fallback");
        stale.sort_unstable();
        assert_eq!(stale, fresh);
        assert_eq!(stale, brute_force(&sky, 180.5, 0.0, 0.3));
    }

    #[test]
    fn coarse_zones_also_correct() {
        // The search must be zone-height independent (the paper tried
        // several heights in the zone-index tech report).
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        let region = SkyRegion::new(180.0, 181.0, -0.5, 0.5);
        let sky = Sky::generate(region, &SkyConfig::scaled(0.1), &kcorr, 36);
        sp_import_galaxy(&mut db, &sky, &region).unwrap();
        let coarse = ZoneScheme::with_height(0.25);
        sp_zone(&mut db, &coarse).unwrap();
        let mut got: Vec<i64> = nearby_obj_eq_zd(&db, &coarse, 180.5, 0.0, 0.4)
            .unwrap()
            .into_iter()
            .map(|n| n.objid)
            .collect();
        got.sort_unstable();
        assert_eq!(got, brute_force(&sky, 180.5, 0.0, 0.4));
    }
}
