//! `fGetNearbyObjEqZd`: the zone-indexed neighborhood search.
//!
//! A line-by-line port of the paper's table-valued function: loop over the
//! zones a search circle overlaps, cut on right ascension inside each zone
//! with the per-zone narrowing factor `@x`, then keep objects whose squared
//! chord distance beats `4 sin²(r/2)`. The range scans run against the
//! `(zoneid, ra, objid)` clustered index — "this pure SQL approach avoids
//! the cost of using expensive calls to the external C-HTM libraries".

use crate::zone_task::zone_entry_from_payload;
use skycore::angle::{chord2_of_deg, deg_of_chord_approx};
use skycore::{UnitVec, ZoneScheme};
use stardb::{Database, DbResult, Value};
use std::sync::OnceLock;

struct NeighborObs {
    searches: obs::Counter,
    zones_scanned: obs::Counter,
    pairs_examined: obs::Counter,
    pairs_per_zone: obs::Histogram,
}

/// Pair-examination accounting for the zone join. `pairs_examined` counts
/// rows the RA range scan surfaced (before the dec/chord cut);
/// `pairs_per_zone` is its per-zone-stripe distribution, the quantity the
/// zone-height tuning in the paper's tech report optimizes.
fn nobs() -> &'static NeighborObs {
    static N: OnceLock<NeighborObs> = OnceLock::new();
    N.get_or_init(|| NeighborObs {
        searches: obs::counter("maxbcg.neighbors.searches"),
        zones_scanned: obs::counter("maxbcg.neighbors.zones_scanned"),
        pairs_examined: obs::counter("maxbcg.neighbors.pairs_examined"),
        pairs_per_zone: obs::histogram("maxbcg.neighbors.pairs_per_zone"),
    })
}

/// One neighbor hit: object id and angular distance in degrees (the
/// paper's chord/d2r convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Object id from the Zone table.
    pub objid: i64,
    /// Angular distance to the query point, degrees.
    pub distance: f64,
}

/// Find every Zone-table object within `r` degrees of `(ra, dec)`.
/// The result includes the query object itself when it is in the table
/// (distance 0), exactly as the SQL function does — callers exclude self
/// where the paper's SQL has `n.objid != @objid`.
pub fn nearby_obj_eq_zd(
    db: &Database,
    scheme: &ZoneScheme,
    ra: f64,
    dec: f64,
    r: f64,
) -> DbResult<Vec<Neighbor>> {
    let mut out = Vec::new();
    visit_nearby(db, scheme, ra, dec, r, |objid, distance, _| {
        out.push(Neighbor { objid, distance });
        true
    })?;
    Ok(out)
}

/// Visitor-form of [`nearby_obj_eq_zd`] for hot loops: called with
/// `(objid, distance_deg, dec)` per hit; return `false` to stop.
///
/// Hits are buffered one zone at a time and `visit` runs *after* each
/// zone's index scan completes, so the callback is free to query the
/// database again (the `JOIN Galaxy` / `JOIN Candidates` of the paper's
/// functions) — index scans themselves hold the buffer-pool latch and must
/// not re-enter the engine.
pub fn visit_nearby(
    db: &Database,
    scheme: &ZoneScheme,
    ra: f64,
    dec: f64,
    r: f64,
    mut visit: impl FnMut(i64, f64, f64) -> bool,
) -> DbResult<()> {
    let center = UnitVec::from_radec(ra, dec);
    let r2 = chord2_of_deg(r);
    let (zone_min, zone_max) = scheme.zone_range(dec, r);
    let (dec_lo, dec_hi) = (dec - r, dec + r);
    nobs().searches.incr();
    // Reused per-zone hit buffer: a zone stripe within the RA window holds
    // at most a few dozen objects at survey densities. Hits carry the raw
    // squared chord — the asin in `deg_of_chord_approx` runs after the
    // scan, only for survivors of the chord cut, outside the latch-holding
    // closure.
    let mut hits: Vec<(i64, f64, f64)> = Vec::with_capacity(32);
    for zone in zone_min..=zone_max {
        let x = scheme.ra_half_window(dec, r, zone);
        let lo = [Value::Int(zone), Value::Float(ra - x)];
        let hi = [Value::Int(zone), Value::Float(ra + x)];
        hits.clear();
        let mut scanned: u64 = 0;
        db.range_scan_prefix_raw("Zone", &lo, &hi, |payload| {
            scanned += 1;
            let e = zone_entry_from_payload(payload);
            // The paper's WHERE clause: dec window plus exact chord cut.
            if e.dec >= dec_lo && e.dec <= dec_hi {
                let c2 = center.chord2(&e.pos);
                if c2 < r2 {
                    hits.push((e.objid, c2, e.dec));
                }
            }
            true
        })?;
        nobs().zones_scanned.incr();
        nobs().pairs_examined.add(scanned);
        nobs().pairs_per_zone.record(scanned);
        for &(objid, c2, hit_dec) in &hits {
            if !visit(objid, deg_of_chord_approx(c2.sqrt()), hit_dec) {
                return Ok(());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::import::sp_import_galaxy;
    use crate::schema::create_schema;
    use crate::zone_task::sp_zone;
    use skycore::kcorr::{KcorrConfig, KcorrTable};
    use skycore::SkyRegion;
    use skysim::{Sky, SkyConfig};
    use stardb::DbConfig;

    fn setup(seed: u64) -> (Database, Sky, ZoneScheme) {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        let region = SkyRegion::new(180.0, 181.0, -0.5, 0.5);
        let sky = Sky::generate(region, &SkyConfig::scaled(0.15), &kcorr, seed);
        sp_import_galaxy(&mut db, &sky, &region).unwrap();
        let scheme = ZoneScheme::default();
        sp_zone(&mut db, &scheme).unwrap();
        (db, sky, scheme)
    }

    fn brute_force(sky: &Sky, ra: f64, dec: f64, r: f64) -> Vec<i64> {
        let center = UnitVec::from_radec(ra, dec);
        let r2 = chord2_of_deg(r);
        let mut ids: Vec<i64> = sky
            .galaxies
            .iter()
            .filter(|g| center.chord2(&g.unit_vec()) < r2)
            .map(|g| g.objid)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn matches_brute_force_at_several_radii() {
        let (db, sky, scheme) = setup(31);
        for &(ra, dec, r) in &[
            (180.5, 0.0, 0.5),
            (180.2, 0.3, 0.25),
            (180.9, -0.4, 0.1),
            (180.5, 0.45, 0.3), // circle sticks out of the populated region
        ] {
            let mut got: Vec<i64> = nearby_obj_eq_zd(&db, &scheme, ra, dec, r)
                .unwrap()
                .into_iter()
                .map(|n| n.objid)
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute_force(&sky, ra, dec, r), "at ({ra},{dec},{r})");
        }
    }

    #[test]
    fn includes_self_at_distance_zero() {
        let (db, sky, scheme) = setup(32);
        let g = &sky.galaxies[sky.galaxies.len() / 2];
        let hits = nearby_obj_eq_zd(&db, &scheme, g.ra, g.dec, 0.05).unwrap();
        let me = hits.iter().find(|n| n.objid == g.objid).expect("self must be found");
        assert!(me.distance < 1e-9);
    }

    #[test]
    fn distances_match_chord_convention() {
        let (db, sky, scheme) = setup(33);
        let g = &sky.galaxies[0];
        let center = UnitVec::from_radec(g.ra, g.dec);
        for n in nearby_obj_eq_zd(&db, &scheme, g.ra, g.dec, 0.3).unwrap() {
            let other = sky.galaxies.iter().find(|x| x.objid == n.objid).unwrap();
            let expect = center.sep_deg_approx(&other.unit_vec());
            assert!((n.distance - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_region_returns_nothing() {
        let (db, _, scheme) = setup(34);
        // Far away from the populated window.
        let hits = nearby_obj_eq_zd(&db, &scheme, 10.0, 45.0, 0.5).unwrap();
        assert!(hits.is_empty());
    }

    #[test]
    fn early_stop_via_visitor() {
        let (db, _, scheme) = setup(35);
        let mut n = 0;
        visit_nearby(&db, &scheme, 180.5, 0.0, 0.5, |_, _, _| {
            n += 1;
            n < 5
        })
        .unwrap();
        assert_eq!(n, 5);
    }

    #[test]
    fn coarse_zones_also_correct() {
        // The search must be zone-height independent (the paper tried
        // several heights in the zone-index tech report).
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        let region = SkyRegion::new(180.0, 181.0, -0.5, 0.5);
        let sky = Sky::generate(region, &SkyConfig::scaled(0.1), &kcorr, 36);
        sp_import_galaxy(&mut db, &sky, &region).unwrap();
        let coarse = ZoneScheme::with_height(0.25);
        sp_zone(&mut db, &coarse).unwrap();
        let mut got: Vec<i64> = nearby_obj_eq_zd(&db, &coarse, 180.5, 0.0, 0.4)
            .unwrap()
            .into_iter()
            .map(|n| n.objid)
            .collect();
        got.sort_unstable();
        assert_eq!(got, brute_force(&sky, 180.5, 0.0, 0.4));
    }
}
