//! Deterministic worker-pool fan-out for the CPU-bound pipeline stages.
//!
//! `spMakeCandidates`, `spMakeClusters`, and `spMakeGalaxiesMetric` all
//! share one shape: a read-only function evaluated independently per row
//! of a materialized input, followed by inserts of the survivors. The
//! fan-out here splits the input into *zone stripes* — runs of consecutive
//! declination zones — and lets a pool of worker threads claim stripes
//! from a shared counter. Stripes keep each worker inside a contiguous
//! band of the `(zoneid, ra, objid)` clustered index, so concurrent
//! workers touch mostly disjoint pages (and therefore disjoint buffer-pool
//! latch shards).
//!
//! Determinism contract: workers only *compute*; they never insert. The
//! caller merges stripe results back into objid order before writing, so
//! the produced catalogs are byte-identical to the sequential run at any
//! worker count. Telemetry is counters and histograms only (never spans,
//! which are thread-local) and no-ops when `obs` is disabled, so disabling
//! telemetry cannot perturb results either.

use stardb::DbResult;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Rows per `insert_rows` batch when writing merged results back.
pub(crate) const INSERT_BATCH: usize = 256;

struct ParObs {
    pools: obs::Counter,
    stripes: obs::Counter,
    queue_wait_us: obs::Histogram,
    worker_busy_us: obs::Histogram,
}

/// Worker-pool accounting: `queue_wait_us` is how long each stripe sat in
/// the queue before a worker claimed it (pool start → claim);
/// `worker_busy_us` is each worker's total evaluation time for one pool
/// run — the spread between its min and max is the load imbalance.
fn pobs() -> &'static ParObs {
    static P: OnceLock<ParObs> = OnceLock::new();
    P.get_or_init(|| ParObs {
        pools: obs::counter("maxbcg.parallel.pools"),
        stripes: obs::counter("maxbcg.parallel.stripes"),
        queue_wait_us: obs::histogram("maxbcg.parallel.queue_wait_us"),
        worker_busy_us: obs::histogram("maxbcg.parallel.worker_busy_us"),
    })
}

/// Group `items` into stripes of consecutive zones, each stripe holding
/// roughly `len / (4 * workers)` items (4x oversubscription smooths load
/// imbalance between dense and sparse stripes). Items within a stripe keep
/// their input order; stripes are ordered by zone.
pub fn zone_stripes<T>(
    items: Vec<T>,
    zone_of: impl Fn(&T) -> i32,
    workers: usize,
) -> Vec<Vec<T>> {
    let total = items.len();
    let mut zones: BTreeMap<i32, Vec<T>> = BTreeMap::new();
    for item in items {
        zones.entry(zone_of(&item)).or_default().push(item);
    }
    let target = total.div_ceil(workers.max(1) * 4).max(1);
    let mut stripes = Vec::new();
    let mut current: Vec<T> = Vec::new();
    for (_, mut bucket) in zones {
        current.append(&mut bucket);
        if current.len() >= target {
            stripes.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        stripes.push(current);
    }
    stripes
}

/// Evaluate `eval` over every item of every stripe on `workers` threads.
/// Workers claim whole stripes from an atomic counter; results come back
/// indexed by stripe, with items in stripe order, regardless of which
/// thread ran what. Errors are reported in deterministic stripe order
/// (the first failing stripe wins, not the first failing thread).
pub fn map_stripes<T, R>(
    workers: usize,
    stripes: Vec<Vec<T>>,
    eval: impl Fn(&T) -> DbResult<R> + Sync,
) -> DbResult<Vec<Vec<R>>>
where
    T: Sync,
    R: Send,
{
    pobs().pools.incr();
    pobs().stripes.add(stripes.len() as u64);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<DbResult<Vec<R>>>>> =
        (0..stripes.len()).map(|_| Mutex::new(None)).collect();
    let pool_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| {
                let mut busy = Duration::ZERO;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= stripes.len() {
                        break;
                    }
                    pobs().queue_wait_us.record(pool_start.elapsed().as_micros() as u64);
                    let t0 = Instant::now();
                    let out: DbResult<Vec<R>> = stripes[i].iter().map(&eval).collect();
                    busy += t0.elapsed();
                    *slots[i].lock().unwrap() = Some(out);
                }
                pobs().worker_busy_us.record(busy.as_micros() as u64);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every stripe claimed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardb::DbError;

    #[test]
    fn stripes_preserve_items_and_zone_order() {
        // Items tagged with a zone; zones deliberately out of order.
        let items: Vec<(i32, u32)> =
            vec![(5, 0), (1, 1), (3, 2), (1, 3), (5, 4), (2, 5), (3, 6)];
        let stripes = zone_stripes(items.clone(), |&(z, _)| z, 1);
        let flat: Vec<(i32, u32)> = stripes.concat();
        assert_eq!(flat.len(), items.len());
        // Zone-major order, input order within a zone.
        let mut expect = items;
        expect.sort_by_key(|&(z, i)| (z, i));
        assert_eq!(flat, expect);
    }

    #[test]
    fn every_input_size_is_fully_striped() {
        for n in [0usize, 1, 2, 7, 100, 1000] {
            for workers in [1usize, 2, 4, 8] {
                let items: Vec<i32> = (0..n as i32).collect();
                let stripes = zone_stripes(items, |&i| i / 10, workers);
                let total: usize = stripes.iter().map(Vec::len).sum();
                assert_eq!(total, n, "n={n} workers={workers}");
                assert!(stripes.iter().all(|s| !s.is_empty()));
            }
        }
    }

    #[test]
    fn map_stripes_results_are_worker_count_independent() {
        let items: Vec<i64> = (0..500).collect();
        let run = |workers: usize| -> Vec<Vec<i64>> {
            let stripes = zone_stripes(items.clone(), |&i| (i / 7) as i32, workers);
            map_stripes(workers, stripes, |&i| Ok(i * i)).unwrap()
        };
        let flat1: Vec<i64> = run(1).concat();
        for workers in [2, 4, 8] {
            assert_eq!(run(workers).concat(), flat1, "workers={workers}");
        }
    }

    #[test]
    fn first_stripe_error_wins_in_stripe_order() {
        // Two failing stripes: the error from the *earlier* stripe must be
        // returned no matter which thread hits its failure first.
        let stripes: Vec<Vec<i32>> = vec![vec![1], vec![-2], vec![3], vec![-4]];
        for workers in [1, 2, 4] {
            let err = map_stripes(workers, stripes.clone(), |&i| {
                if i < 0 {
                    Err(DbError::Corrupt(format!("bad {i}")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert_eq!(err, DbError::Corrupt("bad -2".into()), "workers={workers}");
        }
    }
}
