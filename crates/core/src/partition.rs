//! Zone-partitioned parallel execution — Figure 6 and the 3-way rows of
//! Table 1.
//!
//! The import region is split into `n` declination stripes; every server
//! imports its native stripe plus 1 degree of duplicated buffer on each
//! interior edge (0.5 deg so fringe candidates exist, another 0.5 deg so
//! those fringe candidates see their own neighbors). Each server runs the
//! whole pipeline independently on its own database — share-nothing, as in
//! the paper — and the union of the per-stripe answers is **identical** to
//! the sequential answer, which `merge` verifies structurally and the
//! integration tests verify against an actual sequential run.

use crate::pipeline::{MaxBcgConfig, MaxBcgDb};
use crate::stats::RunReport;
use skycore::types::{Candidate, Cluster, ClusterMember};
use skycore::{ShardMap, SkyRegion, ZoneScheme};
use skysim::Sky;
use stardb::{DbError, DbResult};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// The duplicated-buffer margin of Figure 6, degrees.
pub const PARTITION_MARGIN_DEG: f64 = 1.0;

/// Result of one partition's run.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// Partition index (paper names them P1, P2, P3).
    pub index: usize,
    /// The stripe this server owns.
    pub native: SkyRegion,
    /// The stripe it actually imported (native + duplicated buffers).
    pub imported: SkyRegion,
    /// Pipeline statistics for this server.
    pub report: RunReport,
    /// Candidates native to this stripe.
    pub candidates: Vec<Candidate>,
    /// Clusters native to this stripe.
    pub clusters: Vec<Cluster>,
    /// Membership rows for those clusters.
    pub members: Vec<ClusterMember>,
    /// Host wall time this partition's thread spent across all of its
    /// attempts (failed ones included), measured inside the thread.
    pub wall: Duration,
}

/// A complete partitioned run.
#[derive(Debug, Clone)]
pub struct PartitionedRun {
    /// Per-partition results, in stripe order.
    pub partitions: Vec<PartitionResult>,
    /// Merged candidate catalog (equals the sequential one).
    pub candidates: Vec<Candidate>,
    /// Merged cluster catalog.
    pub clusters: Vec<Cluster>,
    /// Merged membership rows.
    pub members: Vec<ClusterMember>,
    /// Host wall time for the whole fan-out. Partitions run concurrently
    /// on real threads, so this tracks the *slowest* partition
    /// ([`PartitionedRun::max_partition_wall`]) plus spawn/join overhead —
    /// not the sum of partition times. The paper-style cluster elapsed
    /// composed from per-task clocks is [`PartitionedRun::elapsed`].
    pub wall_elapsed: Duration,
}

impl PartitionedRun {
    /// Sum of per-partition cpu over Table 1 tasks (the paper's
    /// "Partitioning Total" cpu, which exceeds the 1-node cpu by the
    /// duplicated work).
    pub fn total_cpu(&self) -> Duration {
        self.partitions.iter().map(|p| p.report.total_cpu()).sum()
    }

    /// Sum of per-partition physical I/O.
    pub fn total_io(&self) -> u64 {
        self.partitions.iter().map(|p| p.report.total_io()).sum()
    }

    /// The slowest partition's sequential-task elapsed — the cluster's
    /// elapsed time, since partitions run concurrently.
    pub fn elapsed(&self) -> Duration {
        self.partitions.iter().map(|p| p.report.total_elapsed()).max().unwrap_or_default()
    }

    /// The slowest partition's host wall time (all attempts included).
    /// [`PartitionedRun::wall_elapsed`] exceeds this only by thread
    /// spawn/join and merge overhead.
    pub fn max_partition_wall(&self) -> Duration {
        self.partitions.iter().map(|p| p.wall).max().unwrap_or_default()
    }

    /// Total galaxies across partitions (with duplication), Table 1's
    /// 2,348,050 row.
    pub fn total_galaxies(&self) -> u64 {
        self.partitions.iter().map(|p| p.report.galaxies).sum()
    }
}

/// Partition-level failover policy for
/// [`run_partitioned_recovering`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Attempts per partition (1 = no recovery; a failed partition fails
    /// the batch).
    pub max_attempts: u32,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy { max_attempts: 3 }
    }
}

/// What recovery actually did during a partitioned run.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Attempts consumed per partition, in stripe order (1 = clean).
    pub attempts: Vec<u32>,
    /// Partitions that failed at least once and were re-run to success.
    pub failovers: u32,
    /// Every failure message observed along the way (the run still
    /// succeeded if the result is `Ok` — these are the recovered ones).
    pub errors: Vec<String>,
}

/// Run one stripe's share-nothing database end to end.
///
/// Each node builds its own zone snapshot inside `node.run` (after its
/// `spZone`), so the stripe's worker pool shares one columnar image per
/// partition instead of contending on the node's buffer pool — and a
/// partition retried after a fault rebuilds both table and snapshot from
/// scratch, never inheriting a stale image across attempts.
fn run_one_partition(
    config: &MaxBcgConfig,
    sky: &Sky,
    native: &SkyRegion,
    imported: &SkyRegion,
    index: usize,
    n: usize,
    candidate_window: &SkyRegion,
) -> DbResult<PartitionResult> {
    let mut node = MaxBcgDb::new(*config)?;
    // Candidates this node must produce: the candidate window clipped
    // to native ± 0.5 (fringe candidates are duplicated work shared
    // with the neighboring node).
    let cand_fringe = SkyRegion::new(
        candidate_window.ra_min,
        candidate_window.ra_max,
        (native.dec_min - 0.5).max(candidate_window.dec_min),
        (native.dec_max + 0.5).min(candidate_window.dec_max),
    );
    let report = node.run(&format!("P{}", index + 1), sky, imported, &cand_fringe)?;
    // Keep only what the node natively owns; the fringe is the
    // neighbor's property.
    let candidates: Vec<Candidate> = node
        .candidates()?
        .into_iter()
        .filter(|c| owns(native, index, n, c.dec))
        .collect();
    let clusters: Vec<Cluster> = node
        .clusters()?
        .into_iter()
        .filter(|c| owns(native, index, n, c.dec))
        .collect();
    let own_ids: std::collections::HashSet<i64> = clusters.iter().map(|c| c.objid).collect();
    let members: Vec<ClusterMember> = node
        .members()?
        .into_iter()
        .filter(|m| own_ids.contains(&m.cluster_objid))
        .collect();
    Ok(PartitionResult {
        index,
        native: *native,
        imported: *imported,
        report,
        candidates,
        clusters,
        members,
        wall: Duration::ZERO, // filled in by the partition thread
    })
}

/// Run the pipeline partitioned `n` ways over dec stripes of
/// `import_window`, with candidates over `candidate_window`.
///
/// Each partition is a fully independent share-nothing database running on
/// its own thread, so nothing is shared but the host's cores and the
/// paper's topology is executed for real: on a machine with `>= n` cores
/// [`PartitionedRun::wall_elapsed`] approaches the slowest single stripe.
/// Because a loaded host time-slices the threads, the *reported*
/// cluster-level elapsed time is still composed from per-task clocks as
/// `max` over partitions ([`PartitionedRun::elapsed`]), exactly the
/// quantity the paper reports for its three real servers.
pub fn run_partitioned(
    config: &MaxBcgConfig,
    sky: &Sky,
    import_window: &SkyRegion,
    candidate_window: &SkyRegion,
    n: usize,
) -> DbResult<PartitionedRun> {
    let policy = RecoveryPolicy { max_attempts: 1 };
    let (run, _) = run_partitioned_recovering(
        config,
        sky,
        import_window,
        candidate_window,
        n,
        policy,
        &mut |_, _| None,
    )?;
    Ok(run)
}

/// Fold a contained panic payload into the partition's error, preserving
/// the panic message for the recovery report.
fn panic_to_error(payload: Box<dyn std::any::Any + Send>, index: usize) -> DbError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string payload".to_owned());
    DbError::Corrupt(format!("partition P{} panicked: {msg}", index + 1))
}

/// What one partition thread hands back: the run (or its final error),
/// plus the attempt/error history the recovery report is built from.
struct PartitionOutcome {
    result: DbResult<PartitionResult>,
    attempts: u32,
    errors: Vec<String>,
}

/// [`run_partitioned`] with partition-level failover: a crashed or
/// panicking partition is re-planned and re-run (fresh database, same
/// stripe) up to `policy.max_attempts` times rather than aborting the
/// batch. `inject` is a fault hook called as `(partition_index, attempt)`
/// before each attempt; returning `Some(err)` fails that attempt — the
/// seam `gridsim`-driven chaos tests inject through without `maxbcg`
/// depending on the grid layer.
///
/// Partitions run on one thread each. The hook is serialized behind a
/// mutex, so `FnMut` state stays sound; fault *decisions* should key on
/// the `(partition_index, attempt)` arguments (as `gridsim::FaultPlan`
/// does, by pure hashing) rather than call order, which thread scheduling
/// makes nondeterministic. Retries happen inside the owning thread, so a
/// failing stripe never blocks its siblings, and the batch's errors and
/// the recovery report are assembled in stripe order regardless of
/// completion order.
pub fn run_partitioned_recovering(
    config: &MaxBcgConfig,
    sky: &Sky,
    import_window: &SkyRegion,
    candidate_window: &SkyRegion,
    n: usize,
    policy: RecoveryPolicy,
    inject: &mut (dyn FnMut(usize, u32) -> Option<DbError> + Send),
) -> DbResult<(PartitionedRun, RecoveryReport)> {
    assert!(n > 0);
    assert!(policy.max_attempts > 0);
    let attempts_counter = obs::counter("maxbcg.partition.attempts");
    let failover_counter = obs::counter("maxbcg.partition.failovers");
    // Stripe boundaries come from the shared zone-range shard map — the
    // same bucketing the distributed query fabric uses to place shards on
    // nodes — so a partition's native stripe holds exactly its shard's
    // zones and the two layers can never disagree about ownership.
    let shard_map =
        ShardMap::build(ZoneScheme::default(), import_window.dec_min, import_window.dec_max, n);
    let stripes = shard_map.stripes_with_buffers(import_window, PARTITION_MARGIN_DEG);
    let start = Instant::now();
    let inject = Mutex::new(inject);
    let outcomes: Vec<PartitionOutcome> = std::thread::scope(|scope| {
        let handles: Vec<_> = stripes
            .iter()
            .enumerate()
            .map(|(index, (native, imported))| {
                let inject = &inject;
                let attempts_counter = &attempts_counter;
                scope.spawn(move || {
                    let thread_start = Instant::now();
                    let mut errors = Vec::new();
                    let mut attempt = 0u32;
                    let result = loop {
                        attempts_counter.incr();
                        // The hook may panic (chaos tests inject crashes
                        // that way) — and it may do so while holding the
                        // lock, so lock acquisition shrugs off poisoning:
                        // a poisoned hook only means some earlier attempt
                        // crashed, which is exactly the state being
                        // simulated.
                        let fault = catch_unwind(AssertUnwindSafe(|| {
                            let mut guard =
                                inject.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                            (*guard)(index, attempt)
                        }));
                        let outcome = match fault {
                            Err(payload) => Err(panic_to_error(payload, index)),
                            Ok(Some(e)) => Err(e),
                            Ok(None) => catch_unwind(AssertUnwindSafe(|| {
                                run_one_partition(
                                    config,
                                    sky,
                                    native,
                                    imported,
                                    index,
                                    n,
                                    candidate_window,
                                )
                            }))
                            .unwrap_or_else(|payload| Err(panic_to_error(payload, index))),
                        };
                        attempt += 1;
                        match outcome {
                            Ok(mut p) => {
                                p.wall = thread_start.elapsed();
                                break Ok(p);
                            }
                            Err(e) => {
                                errors.push(format!("P{} attempt {attempt}: {e}", index + 1));
                                if attempt >= policy.max_attempts {
                                    break Err(e);
                                }
                            }
                        }
                    };
                    PartitionOutcome { result, attempts: attempt, errors }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("partition thread must not panic outside catch_unwind"))
            .collect()
    });
    let mut partitions = Vec::with_capacity(n);
    let mut recovery = RecoveryReport::default();
    for outcome in outcomes {
        recovery.attempts.push(outcome.attempts);
        recovery.errors.extend(outcome.errors);
        if outcome.attempts > 1 && outcome.result.is_ok() {
            recovery.failovers += 1;
            failover_counter.incr();
        }
        partitions.push(outcome.result?);
    }
    let wall_elapsed = start.elapsed();

    // Merge: native stripes tile the window, so ownership is unique.
    let mut candidates = Vec::new();
    let mut clusters = Vec::new();
    let mut members = Vec::new();
    for p in &partitions {
        candidates.extend(p.candidates.iter().copied());
        clusters.extend(p.clusters.iter().copied());
        members.extend(p.members.iter().copied());
    }
    candidates.sort_by_key(|c| c.objid);
    clusters.sort_by_key(|c| c.objid);
    members.sort_by_key(|a| (a.cluster_objid, a.galaxy_objid));
    // Ownership must be disjoint: duplicate objids mean the stripe
    // ownership rule broke.
    for w in candidates.windows(2) {
        if w[0].objid == w[1].objid {
            return Err(DbError::Corrupt(format!(
                "candidate {} claimed by two partitions",
                w[0].objid
            )));
        }
    }
    Ok((PartitionedRun { partitions, candidates, clusters, members, wall_elapsed }, recovery))
}

/// The sky-partitioning planner of §2.6: "A possible optimization is to
/// define some sort of sky partitioning algorithm that breaks the sky in
/// areas that can fit in memory, 2 GB in our case."
///
/// Given the import window, an expected surface density, and a memory
/// budget, returns the smallest partition count whose *buffered* stripes
/// (native + the 1 deg duplicated margins) fit the budget. The per-galaxy
/// footprint covers the Galaxy row, its Zone row, and index overhead.
/// Returns `None` when even the margins alone exceed the budget (the
/// region cannot be stripe-partitioned into memory at this density).
pub fn plan_for_memory(
    import_window: &SkyRegion,
    galaxies_per_deg2: f64,
    budget_bytes: u64,
) -> Option<usize> {
    /// Galaxy row (~60 B payload) + Zone row (~65 B) + B-tree slot/page
    /// overhead, rounded up.
    const BYTES_PER_GALAXY: f64 = 192.0;
    for n in 1..=1024 {
        let worst_stripe_deg2 = import_window.ra_span()
            * (import_window.dec_span() / n as f64 + 2.0 * PARTITION_MARGIN_DEG)
                .min(import_window.dec_span());
        let bytes = worst_stripe_deg2 * galaxies_per_deg2 * BYTES_PER_GALAXY;
        if bytes <= budget_bytes as f64 {
            return Some(n);
        }
        // Once the stripe height is dominated by the fixed margins, more
        // partitions cannot help.
        if import_window.dec_span() / n as f64 <= PARTITION_MARGIN_DEG / 8.0 {
            break;
        }
    }
    None
}

/// The automated version of §2.6's proposal: plan the partition count from
/// a memory budget, then run it. "Once an area has been defined, the
/// MaxBCG task is scheduled for execution."
///
/// Returns the chosen partition count together with the run. Errors if the
/// region cannot fit the budget at any stripe count.
pub fn run_memory_fit(
    config: &MaxBcgConfig,
    sky: &Sky,
    import_window: &SkyRegion,
    candidate_window: &SkyRegion,
    budget_bytes: u64,
) -> DbResult<(usize, PartitionedRun)> {
    let density = sky.galaxies.len() as f64 / sky.region.area_deg2();
    let mut n = plan_for_memory(import_window, density, budget_bytes).ok_or_else(|| {
        DbError::Corrupt(format!(
            "no stripe count fits {budget_bytes} bytes at {density:.0} galaxies/deg2"
        ))
    })?;
    // The §2.6 re-plan loop: if a run still hits buffer-pool pressure
    // (the planner's footprint model is an estimate, not a guarantee),
    // split finer and try again instead of surfacing the transient error.
    loop {
        match run_partitioned(config, sky, import_window, candidate_window, n) {
            Ok(run) => return Ok((n, run)),
            Err(e) if e.is_transient() && n < 64 => n += 1,
            Err(e) => return Err(e),
        }
    }
}

/// Stripe ownership with half-open boundaries: a galaxy exactly on an
/// interior stripe edge belongs to the stripe above, so no object is owned
/// twice. The top stripe keeps its inclusive upper edge.
fn owns(native: &SkyRegion, index: usize, n: usize, dec: f64) -> bool {
    let above_ok = if index + 1 == n { dec <= native.dec_max } else { dec < native.dec_max };
    dec >= native.dec_min && above_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycore::kcorr::KcorrTable;
    use skysim::SkyConfig;

    fn setup() -> (MaxBcgConfig, Sky, SkyRegion, SkyRegion) {
        let config = MaxBcgConfig::default();
        let kcorr = KcorrTable::generate(config.kcorr);
        // A tall-enough region that 3 stripes plus 1 deg buffers make
        // sense, wide enough that the 0.5 deg candidate margins leave room.
        let survey = SkyRegion::new(180.0, 182.0, -2.0, 2.0);
        let mut sky_cfg = SkyConfig::scaled(0.08);
        sky_cfg.clusters.density_per_deg2 = 10.0;
        let sky = Sky::generate(survey, &sky_cfg, &kcorr, 777);
        let candidate_window = survey.shrunk(0.5);
        (config, sky, survey, candidate_window)
    }

    #[test]
    fn partition_union_identical_to_sequential() {
        let (config, sky, survey, cand_window) = setup();
        let mut seq = MaxBcgDb::new(config).unwrap();
        seq.run("seq", &sky, &survey, &cand_window).unwrap();
        let par = run_partitioned(&config, &sky, &survey, &cand_window, 3).unwrap();
        assert_eq!(par.candidates, seq.candidates().unwrap(), "candidate catalogs differ");
        assert_eq!(par.clusters, seq.clusters().unwrap(), "cluster catalogs differ");
        let mut seq_members = seq.members().unwrap();
        seq_members.sort_by(|a, b| {
            (a.cluster_objid, a.galaxy_objid).cmp(&(b.cluster_objid, b.galaxy_objid))
        });
        assert_eq!(par.members, seq_members, "membership tables differ");
        assert!(par.candidates.len() > 10, "test region too sparse to be meaningful");
    }

    #[test]
    fn two_way_partition_also_identical() {
        let (config, sky, survey, cand_window) = setup();
        let mut seq = MaxBcgDb::new(config).unwrap();
        seq.run("seq", &sky, &survey, &cand_window).unwrap();
        let par = run_partitioned(&config, &sky, &survey, &cand_window, 2).unwrap();
        assert_eq!(par.clusters, seq.clusters().unwrap());
    }

    #[test]
    fn duplicated_galaxies_exceed_window_population() {
        let (config, sky, survey, cand_window) = setup();
        let par = run_partitioned(&config, &sky, &survey, &cand_window, 3).unwrap();
        let window_pop = sky.galaxies_in(&survey).count() as u64;
        assert!(
            par.total_galaxies() > window_pop,
            "partitions must import duplicated buffer rows"
        );
        // Figure 6: total duplication is 4 stripes x margin; with a 4 deg
        // dec span split 3 ways and 1 deg margins, duplication is about
        // 4/(4+4) = 50% here. Allow broad slack for Poisson noise.
        let dup_frac = par.total_galaxies() as f64 / window_pop as f64;
        assert!((1.2..2.2).contains(&dup_frac), "duplication fraction {dup_frac}");
    }

    #[test]
    fn partition_reports_carry_paper_labels() {
        let (config, sky, survey, cand_window) = setup();
        let par = run_partitioned(&config, &sky, &survey, &cand_window, 3).unwrap();
        let labels: Vec<&str> =
            par.partitions.iter().map(|p| p.report.label.as_str()).collect();
        assert_eq!(labels, vec!["P1", "P2", "P3"]);
        assert!(par.elapsed() > Duration::ZERO);
        assert!(par.total_cpu() >= par.elapsed(), "sum of partition cpu >= max elapsed");
        // Partitions run concurrently: the batch wall tracks the slowest
        // partition thread, not the sum. The slack term absorbs
        // spawn/join/merge overhead on a loaded host.
        let max_wall = par.max_partition_wall();
        assert!(max_wall > Duration::ZERO);
        assert!(par.wall_elapsed >= max_wall, "batch wall below slowest partition");
        assert!(
            par.wall_elapsed <= max_wall.mul_f64(1.25) + Duration::from_millis(250),
            "batch wall {:?} far exceeds slowest partition {:?} — fan-out is not concurrent",
            par.wall_elapsed,
            max_wall
        );
    }

    #[test]
    fn memory_planner_matches_paper_case() {
        // The paper's case: 104 deg² at ~15k galaxies/deg² in 2 GB — one
        // node suffices (their data was ~66 MB of rows; the engine's
        // footprint model is fatter but far below 2 GB).
        let p = SkyRegion::paper_import_104();
        assert_eq!(plan_for_memory(&p, 15_000.0, 2 << 30), Some(1));
        // A tight budget forces partitioning (the duplicated margins put a
        // ~75 MB floor under any stripe of this region at this density).
        let n = plan_for_memory(&p, 15_000.0, 128 << 20).expect("must be partitionable");
        assert!(n > 1, "128 MB cannot hold the whole region");
        // And the plan actually fits: recompute the worst stripe.
        let worst = p.ra_span() * (p.dec_span() / n as f64 + 2.0);
        assert!(worst * 15_000.0 * 192.0 <= (128 << 20) as f64);
        // An absurd budget cannot be satisfied (margins alone overflow).
        assert_eq!(plan_for_memory(&p, 15_000.0, 1 << 20), None);
    }

    #[test]
    fn planner_scales_with_density() {
        let p = SkyRegion::paper_import_104();
        let sparse = plan_for_memory(&p, 1_000.0, 128 << 20).unwrap();
        let dense = plan_for_memory(&p, 15_000.0, 128 << 20).unwrap();
        assert!(dense >= sparse);
    }

    #[test]
    fn memory_fit_runner_plans_and_matches_sequential() {
        let (config, sky, survey, cand_window) = setup();
        // A budget that forces more than one stripe at this sky's density.
        let density = sky.galaxies.len() as f64 / sky.region.area_deg2();
        let one_stripe_bytes = (survey.area_deg2() * density * 192.0) as u64;
        let budget = one_stripe_bytes.saturating_sub(one_stripe_bytes / 4);
        let (n, run) = run_memory_fit(&config, &sky, &survey, &cand_window, budget).unwrap();
        assert!(n > 1, "budget below one-stripe footprint must split");
        let mut seq = MaxBcgDb::new(config).unwrap();
        seq.run("seq", &sky, &survey, &cand_window).unwrap();
        assert_eq!(run.clusters, seq.clusters().unwrap());
        // An impossible budget errors instead of running.
        assert!(run_memory_fit(&config, &sky, &survey, &cand_window, 1024).is_err());
    }

    #[test]
    fn injected_partition_failures_recover_to_identical_catalog() {
        let (config, sky, survey, cand_window) = setup();
        let mut seq = MaxBcgDb::new(config).unwrap();
        seq.run("seq", &sky, &survey, &cand_window).unwrap();
        // Every partition fails its first attempt (a mix of error returns
        // and real panics); failover must rebuild each stripe and the
        // union must still match the sequential catalog exactly.
        let policy = RecoveryPolicy::default();
        let (par, recovery) = run_partitioned_recovering(
            &config,
            &sky,
            &survey,
            &cand_window,
            3,
            policy,
            &mut |index, attempt| {
                if attempt == 0 {
                    if index % 2 == 0 {
                        Some(DbError::BufferExhausted)
                    } else {
                        panic!("injected partition crash on P{}", index + 1);
                    }
                } else {
                    None
                }
            },
        )
        .unwrap();
        assert_eq!(recovery.failovers, 3);
        assert_eq!(recovery.attempts, vec![2, 2, 2]);
        assert_eq!(recovery.errors.len(), 3);
        assert!(recovery.errors.iter().any(|e| e.contains("panicked")));
        assert_eq!(par.candidates, seq.candidates().unwrap());
        assert_eq!(par.clusters, seq.clusters().unwrap());
    }

    #[test]
    fn unrecoverable_partition_fails_the_batch_with_last_error() {
        let (config, sky, survey, cand_window) = setup();
        let policy = RecoveryPolicy { max_attempts: 2 };
        let err = run_partitioned_recovering(
            &config,
            &sky,
            &survey,
            &cand_window,
            2,
            policy,
            &mut |index, _| (index == 1).then_some(DbError::BufferExhausted),
        )
        .unwrap_err();
        assert_eq!(err, DbError::BufferExhausted);
    }

    #[test]
    fn boundary_ownership_is_exclusive() {
        let native = SkyRegion::new(0.0, 1.0, 0.0, 1.0);
        // Interior stripe: top edge exclusive, bottom inclusive.
        assert!(owns(&native, 1, 3, 0.0));
        assert!(!owns(&native, 1, 3, 1.0));
        // Top stripe keeps its top edge.
        assert!(owns(&native, 2, 3, 1.0));
    }
}
