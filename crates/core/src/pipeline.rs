//! The MaxBCG database pipeline: the stored-procedure sequence of the
//! paper's appendix, instrumented per task exactly as Table 1 reports it.

use crate::candidate::f_bcg_candidate;
use crate::cluster::{candidate_from_row, candidate_row, sp_make_clusters};
use crate::import::{galaxy_from_row, sp_import_galaxy};
use crate::members::sp_make_galaxies_metric;
use crate::parallel;
use crate::schema::create_schema;
use crate::stats::RunReport;
use crate::zone_cache::ZoneSnapshot;
use crate::zone_task::sp_zone;
use skycore::bcg::BcgParams;
use skycore::kcorr::{KcorrConfig, KcorrTable};
use skycore::types::{Candidate, Cluster, ClusterMember};
use skycore::{SkyRegion, ZoneScheme};
use skysim::Sky;
use stardb::{Database, DbConfig, DbResult, TaskStats};

/// How `spMakeCandidates` iterates the galaxy table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationMode {
    /// The paper's implementation: a SQL cursor, fetched row at a time
    /// ("the iteration through the galaxy table uses SQL cursors which are
    /// very slow. But there was no easy way to avoid them").
    Cursor,
    /// The set-based alternative §2.6 wishes for: one streaming scan.
    SetBased,
}

/// Configuration of the database implementation.
#[derive(Debug, Clone, Copy)]
pub struct MaxBcgConfig {
    /// Engine configuration.
    pub db: DbConfig,
    /// k-correction grid (the paper's SQL case: z-steps of 0.001).
    pub kcorr: KcorrConfig,
    /// Likelihood parameters.
    pub params: BcgParams,
    /// Zone height in degrees (the paper: 30 arcsec).
    pub zone_height_deg: f64,
    /// Galaxy-table iteration strategy.
    pub iteration: IterationMode,
    /// Early χ² filtering (§2.6); disable only for the ablation bench.
    pub early_filter: bool,
    /// Worker threads for the CPU-bound stages (`fBCGCandidate`,
    /// `fIsCluster`, `fGetClusterGalaxiesMetric`). `1` (the default) runs
    /// the sequential path; any count produces byte-identical catalogs —
    /// workers only evaluate, the merge and all inserts stay ordered by
    /// objid (see [`crate::parallel`]).
    pub workers: usize,
    /// Materialize the Zone table into a columnar snapshot after `spZone`
    /// and serve the zone join from it (see [`crate::zone_cache`]). Off
    /// runs every search on the clustered index; catalogs are byte
    /// identical either way, so this is purely a cost knob.
    pub zone_cache: bool,
}

impl Default for MaxBcgConfig {
    fn default() -> Self {
        MaxBcgConfig {
            db: DbConfig::in_memory(),
            kcorr: KcorrConfig::sql(),
            params: BcgParams::default(),
            zone_height_deg: skycore::angle::ZONE_HEIGHT_DEG,
            iteration: IterationMode::Cursor,
            early_filter: true,
            workers: 1,
            zone_cache: true,
        }
    }
}

/// A MaxBCG database instance: one `stardb` database holding the paper's
/// schema, plus the k-correction table and zone scheme.
pub struct MaxBcgDb {
    db: Database,
    kcorr: KcorrTable,
    scheme: ZoneScheme,
    config: MaxBcgConfig,
    /// Columnar image of the Zone table, rebuilt after every `spZone` when
    /// `config.zone_cache` is on. `Arc`-shared so worker pools and the
    /// partition runner read one copy; epoch checks inside the neighbor
    /// kernel keep it safe against out-of-band Zone mutations.
    snapshot: Option<std::sync::Arc<ZoneSnapshot>>,
}

impl MaxBcgDb {
    /// Create the database, schema, and k-correction table.
    pub fn new(config: MaxBcgConfig) -> DbResult<Self> {
        let kcorr = KcorrTable::generate(config.kcorr);
        let mut db = Database::new(config.db);
        create_schema(&mut db, &kcorr)?;
        Ok(MaxBcgDb {
            db,
            kcorr,
            scheme: ZoneScheme::with_height(config.zone_height_deg),
            config,
            snapshot: None,
        })
    }

    /// The underlying database (read access for tests and reports).
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the underlying database (ad-hoc SQL sessions over
    /// the populated catalog, as `skyql` provides).
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The k-correction table in use.
    pub fn kcorr(&self) -> &KcorrTable {
        &self.kcorr
    }

    /// The zone scheme in use (derived from `config.zone_height_deg`).
    pub fn scheme(&self) -> &ZoneScheme {
        &self.scheme
    }

    /// `spImportGalaxy` as a measured task.
    pub fn import_galaxy(&mut self, sky: &Sky, window: &SkyRegion) -> DbResult<TaskStats> {
        let (_, stats) =
            self.db.run_task("spImportGalaxy", |db| sp_import_galaxy(db, sky, window))?;
        Ok(stats)
    }

    /// `spZone` as a measured task. With the zone cache enabled this also
    /// rebuilds the columnar snapshot, since the truncate-and-refill just
    /// moved the Zone table's epoch.
    pub fn make_zone(&mut self) -> DbResult<TaskStats> {
        let scheme = self.scheme;
        let (_, stats) = self.db.run_task("spZone", |db| sp_zone(db, &scheme))?;
        self.snapshot = if self.config.zone_cache {
            Some(std::sync::Arc::new(ZoneSnapshot::build(&self.db)?))
        } else {
            None
        };
        Ok(stats)
    }

    /// The current zone snapshot, if the cache is enabled and `spZone` has
    /// run. May be stale if the Zone table was mutated out of band — the
    /// neighbor kernel checks the epoch and falls back on its own.
    pub fn zone_snapshot(&self) -> Option<&std::sync::Arc<ZoneSnapshot>> {
        self.snapshot.as_ref()
    }

    /// `spMakeCandidates` over `window` as a measured task (the paper files
    /// its time under `fBCGCandidate`, the function doing the work).
    pub fn make_candidates(&mut self, window: &SkyRegion) -> DbResult<TaskStats> {
        let kcorr = &self.kcorr;
        let scheme = self.scheme;
        let params = self.config.params;
        let iteration = self.config.iteration;
        let early = self.config.early_filter;
        let workers = self.config.workers.max(1);
        let snapshot = self.snapshot.clone();
        let snap = snapshot.as_deref();
        let (_, stats) = self.db.run_task("fBCGCandidate", |db| {
            db.truncate("Candidates")?;
            // Materialize the galaxy list with the configured iteration
            // strategy: the cursor's fetch-at-a-time cost profile is the
            // paper's, the streaming scan is §2.6's set-based wish.
            let mut galaxies = Vec::new();
            match iteration {
                IterationMode::Cursor => {
                    let mut cursor = db.cursor("Galaxy")?;
                    while let Some(row) = cursor.fetch_next(db)? {
                        let g = galaxy_from_row(&row)?;
                        if window.contains(g.ra, g.dec) {
                            galaxies.push(g);
                        }
                    }
                }
                IterationMode::SetBased => {
                    db.scan_with("Galaxy", |row| {
                        let g = galaxy_from_row(row)?;
                        if window.contains(g.ra, g.dec) {
                            galaxies.push(g);
                        }
                        Ok(true)
                    })?;
                }
            }
            let mut cands: Vec<Candidate> = if workers <= 1 {
                let mut out = Vec::new();
                for g in &galaxies {
                    if let Some(c) = f_bcg_candidate(db, snap, kcorr, &scheme, &params, g, early)? {
                        out.push(c);
                    }
                }
                out
            } else {
                let reader = db.reader();
                let stripes = parallel::zone_stripes(galaxies, |g| scheme.zone_of(g.dec), workers);
                parallel::map_stripes(workers, stripes, |g| {
                    f_bcg_candidate(&reader, snap, kcorr, &scheme, &params, g, early)
                })?
                .into_iter()
                .flatten()
                .flatten()
                .collect()
            };
            // The galaxy scan surfaces objid order; re-sorting after the
            // stripe merge restores it, so the catalog bytes never depend
            // on the worker count.
            cands.sort_by_key(|c| c.objid);
            let mut cands = cands.into_iter();
            loop {
                let batch: Vec<_> =
                    cands.by_ref().take(parallel::INSERT_BATCH).map(|c| candidate_row(&c)).collect();
                if batch.is_empty() {
                    break;
                }
                db.insert_rows("Candidates", batch)?;
            }
            Ok(())
        })?;
        Ok(stats)
    }

    /// `spMakeClusters` as a measured task (Table 1's `fIsCluster` row).
    pub fn make_clusters(&mut self) -> DbResult<TaskStats> {
        let kcorr = &self.kcorr;
        let scheme = self.scheme;
        let params = self.config.params;
        let workers = self.config.workers;
        let snapshot = self.snapshot.clone();
        let snap = snapshot.as_deref();
        let (_, stats) = self.db.run_task("fIsCluster", |db| {
            sp_make_clusters(db, snap, kcorr, &scheme, &params, workers)
        })?;
        Ok(stats)
    }

    /// `spMakeGalaxiesMetric` as a measured task.
    pub fn make_galaxies_metric(&mut self) -> DbResult<TaskStats> {
        let kcorr = &self.kcorr;
        let scheme = self.scheme;
        let params = self.config.params;
        let workers = self.config.workers;
        let snapshot = self.snapshot.clone();
        let snap = snapshot.as_deref();
        let (_, stats) = self.db.run_task("spMakeGalaxiesMetric", |db| {
            sp_make_galaxies_metric(db, snap, kcorr, &scheme, &params, workers)
        })?;
        Ok(stats)
    }

    /// Run the full pipeline: import `import_window`, zone, find candidates
    /// over `candidate_window` (the target plus its 0.5 deg buffer, Figure
    /// 4), select clusters, retrieve members.
    ///
    /// ```
    /// use maxbcg::{IterationMode, MaxBcgConfig, MaxBcgDb};
    /// use skycore::kcorr::KcorrTable;
    /// use skycore::SkyRegion;
    /// use skysim::{Sky, SkyConfig};
    ///
    /// let config = MaxBcgConfig { iteration: IterationMode::SetBased, ..Default::default() };
    /// let kcorr = KcorrTable::generate(config.kcorr);
    /// let survey = SkyRegion::new(180.0, 181.5, -0.75, 0.75);
    /// let sky = Sky::generate(survey, &SkyConfig::test(), &kcorr, 7);
    /// let mut db = MaxBcgDb::new(config).unwrap();
    /// let report = db.run("demo", &sky, &survey, &survey.shrunk(0.5)).unwrap();
    /// assert_eq!(report.galaxies as usize, sky.galaxies.len());
    /// assert_eq!(report.tasks.len(), 5); // import, zone, candidates, clusters, members
    /// ```
    pub fn run(
        &mut self,
        label: &str,
        sky: &Sky,
        import_window: &SkyRegion,
        candidate_window: &SkyRegion,
    ) -> DbResult<RunReport> {
        let _span = obs::span(label);
        let tasks = vec![
            self.import_galaxy(sky, import_window)?,
            self.make_zone()?,
            self.make_candidates(candidate_window)?,
            self.make_clusters()?,
            self.make_galaxies_metric()?,
        ];
        let report = RunReport {
            label: label.to_owned(),
            tasks,
            galaxies: self.db.row_count("Galaxy")?,
            candidates: self.db.row_count("Candidates")?,
            clusters: self.db.row_count("Clusters")?,
            members: self.db.row_count("ClusterGalaxiesMetric")?,
        };
        report.record_to_obs();
        Ok(report)
    }

    /// Materialize the candidate catalog.
    pub fn candidates(&self) -> DbResult<Vec<Candidate>> {
        let mut out = Vec::new();
        self.db.scan_with("Candidates", |row| {
            out.push(candidate_from_row(row)?);
            Ok(true)
        })?;
        Ok(out)
    }

    /// Materialize the cluster catalog.
    pub fn clusters(&self) -> DbResult<Vec<Cluster>> {
        let mut out = Vec::new();
        self.db.scan_with("Clusters", |row| {
            out.push(candidate_from_row(row)?);
            Ok(true)
        })?;
        Ok(out)
    }

    /// Materialize the membership table.
    pub fn members(&self) -> DbResult<Vec<ClusterMember>> {
        let mut out = Vec::new();
        self.db.scan_with("ClusterGalaxiesMetric", |row| {
            out.push(ClusterMember {
                cluster_objid: row.i64(0)?,
                galaxy_objid: row.i64(1)?,
                distance: row.f64(2)?,
            });
            Ok(true)
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skysim::SkyConfig;

    fn run_pipeline(iteration: IterationMode) -> (MaxBcgDb, RunReport, Sky) {
        let config = MaxBcgConfig { iteration, ..MaxBcgConfig::default() };
        let kcorr = KcorrTable::generate(config.kcorr);
        let survey = SkyRegion::new(180.0, 182.2, -1.1, 1.1);
        let mut sky_cfg = SkyConfig::scaled(0.15);
        sky_cfg.clusters.density_per_deg2 = 12.0;
        let sky = Sky::generate(survey, &sky_cfg, &kcorr, 404);
        let target = survey.shrunk(0.5); // leave a candidate buffer
        let mut db = MaxBcgDb::new(config).unwrap();
        let report = db.run("test", &sky, &survey, &target).unwrap();
        (db, report, sky)
    }

    #[test]
    fn full_pipeline_produces_catalogs() {
        let (db, report, sky) = run_pipeline(IterationMode::Cursor);
        assert_eq!(report.galaxies as usize, sky.galaxies.len());
        assert!(report.candidates > 0, "must find candidates");
        assert!(report.clusters > 0, "must find clusters");
        assert!(report.clusters <= report.candidates);
        assert!(report.members >= report.clusters, "every cluster lists its BCG");
        assert_eq!(report.tasks.len(), 5);
        // Every cluster is a candidate.
        let clusters = db.clusters().unwrap();
        let cands = db.candidates().unwrap();
        for c in &clusters {
            assert!(cands.iter().any(|k| k == c));
        }
    }

    #[test]
    fn cursor_and_set_based_agree_exactly() {
        let (a, _, _) = run_pipeline(IterationMode::Cursor);
        let (b, _, _) = run_pipeline(IterationMode::SetBased);
        assert_eq!(a.candidates().unwrap(), b.candidates().unwrap());
        assert_eq!(a.clusters().unwrap(), b.clusters().unwrap());
        assert_eq!(a.members().unwrap(), b.members().unwrap());
    }

    #[test]
    fn worker_count_never_changes_the_catalogs() {
        let (seq, _, _) = run_pipeline(IterationMode::Cursor);
        for workers in [2, 4] {
            let config = MaxBcgConfig { workers, ..MaxBcgConfig::default() };
            let kcorr = KcorrTable::generate(config.kcorr);
            let survey = SkyRegion::new(180.0, 182.2, -1.1, 1.1);
            let mut sky_cfg = SkyConfig::scaled(0.15);
            sky_cfg.clusters.density_per_deg2 = 12.0;
            let sky = Sky::generate(survey, &sky_cfg, &kcorr, 404);
            let mut db = MaxBcgDb::new(config).unwrap();
            db.run("par", &sky, &survey, &survey.shrunk(0.5)).unwrap();
            assert_eq!(db.candidates().unwrap(), seq.candidates().unwrap(), "workers={workers}");
            assert_eq!(db.clusters().unwrap(), seq.clusters().unwrap(), "workers={workers}");
            assert_eq!(db.members().unwrap(), seq.members().unwrap(), "workers={workers}");
        }
    }

    #[test]
    fn zone_cache_off_produces_identical_catalogs() {
        let (on, _, _) = run_pipeline(IterationMode::Cursor);
        assert!(on.zone_snapshot().is_some(), "default config must build the snapshot");
        for workers in [1, 2] {
            let config =
                MaxBcgConfig { zone_cache: false, workers, ..MaxBcgConfig::default() };
            let kcorr = KcorrTable::generate(config.kcorr);
            let survey = SkyRegion::new(180.0, 182.2, -1.1, 1.1);
            let mut sky_cfg = SkyConfig::scaled(0.15);
            sky_cfg.clusters.density_per_deg2 = 12.0;
            let sky = Sky::generate(survey, &sky_cfg, &kcorr, 404);
            let mut db = MaxBcgDb::new(config).unwrap();
            db.run("nocache", &sky, &survey, &survey.shrunk(0.5)).unwrap();
            assert!(db.zone_snapshot().is_none(), "cache off must not materialize");
            assert_eq!(db.candidates().unwrap(), on.candidates().unwrap(), "workers={workers}");
            assert_eq!(db.clusters().unwrap(), on.clusters().unwrap(), "workers={workers}");
            assert_eq!(db.members().unwrap(), on.members().unwrap(), "workers={workers}");
        }
    }

    #[test]
    fn recovers_most_injected_interior_clusters() {
        let (db, _, sky) = run_pipeline(IterationMode::Cursor);
        let clusters = db.clusters().unwrap();
        let interior = sky.region.shrunk(0.6);
        let mut hit = 0;
        let mut total = 0;
        for t in sky.truth_in(&interior).filter(|t| t.members >= 8) {
            total += 1;
            // Recovered if some cluster BCG sits within 2 arcmin.
            if clusters.iter().any(|c| {
                skycore::coords::sep_radec_deg(c.ra, c.dec, t.ra, t.dec) < 2.0 / 60.0
            }) {
                hit += 1;
            }
        }
        assert!(total >= 3, "need clusters to score, got {total}");
        // Boosted cluster density makes clusters compete inside each
        // other's comparison radius (real MaxBCG behavior: only the best
        // candidate of a neighborhood survives fIsCluster), so recovery
        // of *individual* injections saturates below 100%.
        assert!(hit * 2 >= total, "recovered {hit}/{total}");
    }

    #[test]
    fn task_stats_have_paper_names() {
        let (_, report, _) = run_pipeline(IterationMode::SetBased);
        let names: Vec<&str> = report.tasks.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["spImportGalaxy", "spZone", "fBCGCandidate", "fIsCluster", "spMakeGalaxiesMetric"]
        );
        // Every task did measurable work. (The Table 1 claim that
        // fBCGCandidate dominates holds at survey densities and is checked
        // by the table1 bench, not at unit-test scale.)
        assert!(report.tasks.iter().all(|t| t.logical_reads > 0));
    }
}
