//! Region selections through the SQL planner.
//!
//! The paper's Figures 4 and 5 are rectangular `ra/dec BETWEEN` windows
//! over `Galaxy`. The stored procedures reach those rows through the Zone
//! table, but ad-hoc CasJobs-style questions ("how many galaxies are in
//! this window?") are plain SQL — and with a secondary index on
//! `(ra, dec)` the streaming planner turns the window's `ra` bounds into
//! a B-tree index range scan instead of a full pass over `Galaxy`.

use skycore::SkyRegion;
use stardb::{Database, DbResult, Row};

/// Name of the secondary index region queries lean on.
pub const REGION_INDEX: &str = "idx_galaxy_radec";

/// Create the `(ra, dec)` secondary index on `Galaxy` if it does not
/// exist yet. Idempotent: callers can invoke it before every query batch.
pub fn ensure_region_index(db: &mut Database) -> DbResult<()> {
    if db.index_names("Galaxy")?.iter().any(|n| n == REGION_INDEX) {
        return Ok(());
    }
    db.execute_sql(&format!("CREATE INDEX {REGION_INDEX} ON Galaxy (ra, dec)"))?;
    Ok(())
}

/// The Figure-4-shaped window selection as SQL. `BETWEEN` is inclusive on
/// both edges, matching [`SkyRegion::contains`].
pub fn region_select(window: &SkyRegion) -> String {
    format!(
        "SELECT objid, ra, dec, i FROM Galaxy \
         WHERE ra BETWEEN {} AND {} AND dec BETWEEN {} AND {} ORDER BY objid",
        window.ra_min, window.ra_max, window.dec_min, window.dec_max
    )
}

/// Galaxies inside `window`, selected through the planned SQL path
/// (index range scan when [`ensure_region_index`] has run).
pub fn galaxies_in_region(db: &mut Database, window: &SkyRegion) -> DbResult<Vec<Row>> {
    Ok(db.execute_sql(&region_select(window))?.rows()?.1)
}

/// `COUNT(*)` of galaxies inside `window`, through the same planned path.
pub fn count_in_region(db: &mut Database, window: &SkyRegion) -> DbResult<u64> {
    let sql = format!(
        "SELECT COUNT(*) FROM Galaxy WHERE ra BETWEEN {} AND {} AND dec BETWEEN {} AND {}",
        window.ra_min, window.ra_max, window.dec_min, window.dec_max
    );
    let (_, rows) = db.execute_sql(&sql)?.rows()?;
    Ok(rows[0].i64(0)? as u64)
}
