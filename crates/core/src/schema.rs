//! The MaxBCG database schema — the `CREATE TABLE` section of the paper's
//! appendix, expressed against `stardb`.
//!
//! Column types follow the paper: `real` (f32) for photometry, `float`
//! (f64) for coordinates and derived quantities, `bigint` object ids. The
//! f32 rounding of photometry is deliberate and load-bearing: the TAM file
//! format stores the same fields at the same precision, so both
//! implementations see bit-identical inputs.

use skycore::kcorr::KcorrTable;
use stardb::{Column, DataType, Database, DbResult, Row, Schema, Value};

/// `Kcorr`: expected brightness and color of a BCG at a given redshift.
pub fn kcorr_schema() -> Schema {
    Schema::new(vec![
        Column::new("zid", DataType::Int),
        Column::new("z", DataType::Float),
        Column::new("i", DataType::Float),
        Column::new("ilim", DataType::Float),
        Column::new("ug", DataType::Float),
        Column::new("gr", DataType::Float),
        Column::new("ri", DataType::Float),
        Column::new("iz", DataType::Float),
        Column::new("radius", DataType::Float),
    ])
}

/// `Galaxy`: one row per galaxy, extracted from the archive catalog.
pub fn galaxy_schema() -> Schema {
    Schema::new(vec![
        Column::new("objid", DataType::BigInt),
        Column::new("ra", DataType::Float),
        Column::new("dec", DataType::Float),
        Column::new("i", DataType::Real),
        Column::new("gr", DataType::Real),
        Column::new("ri", DataType::Real),
        Column::new("sigmagr", DataType::Real),
        Column::new("sigmari", DataType::Real),
    ])
}

/// `Zone`: the spatial index table, clustered on `(zoneid, ra, objid)`.
pub fn zone_schema() -> Schema {
    Schema::new(vec![
        Column::new("zoneid", DataType::Int),
        Column::new("ra", DataType::Float),
        Column::new("objid", DataType::BigInt),
        Column::new("dec", DataType::Float),
        Column::new("cx", DataType::Float),
        Column::new("cy", DataType::Float),
        Column::new("cz", DataType::Float),
    ])
}

/// `Candidates` / `Clusters`: the BCG candidate list and the selected
/// cluster catalog share a shape.
pub fn candidates_schema() -> Schema {
    Schema::new(vec![
        Column::new("objid", DataType::BigInt),
        Column::new("ra", DataType::Float),
        Column::new("dec", DataType::Float),
        Column::new("z", DataType::Float),
        Column::new("i", DataType::Real),
        Column::new("ngal", DataType::Int),
        Column::new("chi2", DataType::Float),
    ])
}

/// `ClusterGalaxiesMetric`: cluster membership rows (no primary key in the
/// paper — a heap).
pub fn members_schema() -> Schema {
    Schema::new(vec![
        Column::new("clusterObjID", DataType::BigInt),
        Column::new("galaxyObjID", DataType::BigInt),
        Column::new("distance", DataType::Float),
    ])
}

/// Create every MaxBCG table in `db` and load the k-correction table.
pub fn create_schema(db: &mut Database, kcorr: &KcorrTable) -> DbResult<()> {
    db.create_clustered_table("Kcorr", kcorr_schema(), &["zid"])?;
    db.create_clustered_table("Galaxy", galaxy_schema(), &["objid"])?;
    db.create_clustered_table("Zone", zone_schema(), &["zoneid", "ra", "objid"])?;
    db.create_clustered_table("Candidates", candidates_schema(), &["objid"])?;
    db.create_clustered_table("Clusters", candidates_schema(), &["objid"])?;
    db.create_table("ClusterGalaxiesMetric", members_schema())?;
    import_kcorr(db, kcorr)
}

/// Load (or reload) the `Kcorr` table.
pub fn import_kcorr(db: &mut Database, kcorr: &KcorrTable) -> DbResult<()> {
    db.truncate("Kcorr")?;
    for r in kcorr.rows() {
        db.insert(
            "Kcorr",
            Row(vec![
                Value::Int(r.zid as i32),
                Value::Float(r.z),
                Value::Float(r.i),
                Value::Float(r.ilim),
                Value::Float(r.ug),
                Value::Float(r.gr),
                Value::Float(r.ri),
                Value::Float(r.iz),
                Value::Float(r.radius),
            ]),
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycore::kcorr::KcorrConfig;
    use stardb::DbConfig;

    #[test]
    fn schema_creates_all_paper_tables() {
        let mut db = Database::new(DbConfig::in_memory());
        let kcorr = KcorrTable::generate(KcorrConfig::tam());
        create_schema(&mut db, &kcorr).unwrap();
        for t in ["Kcorr", "Galaxy", "Zone", "Candidates", "Clusters", "ClusterGalaxiesMetric"] {
            assert!(db.has_table(t), "missing {t}");
        }
        assert_eq!(db.row_count("Kcorr").unwrap(), 100);
    }

    #[test]
    fn kcorr_lookup_by_zid() {
        let mut db = Database::new(DbConfig::in_memory());
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        create_schema(&mut db, &kcorr).unwrap();
        let row = db.get("Kcorr", &[Value::Int(500)]).unwrap().unwrap();
        assert!(
            (row.f64(1).unwrap() - 0.549).abs() < 1e-12,
            "zid 500 is z = 0.05 + 499 * 0.001"
        );
        assert_eq!(db.row_count("Kcorr").unwrap(), 1000);
    }
}
