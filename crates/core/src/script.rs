//! The paper's appendix schema, verbatim — executed through the engine's
//! SQL front end.
//!
//! The appendix ships the complete `CREATE TABLE` script for
//! MySkyServerDr1. This module carries that DDL (modulo the `--/D`
//! documentation comments, which the lexer strips as `--` comments anyway)
//! and executes it statement by statement, proving the SQL surface accepts
//! the paper's own schema. `crate::schema::create_schema` remains the
//! programmatic path the pipeline uses; the two produce identical catalogs,
//! which the tests assert.

use stardb::{Database, DbResult};

/// The appendix `CREATE TABLE` script (documentation comments preserved).
pub const APPENDIX_SCHEMA: &[&str] = &[
    // -- ********************************** Schema
    "CREATE TABLE Kcorr (   --/D expected brightness and color of a BCG at given redshift
        zid int PRIMARY KEY NOT NULL,
        z real,      --/D redshift
        i real,      --/D apparent i petro mag of the BCG @z
        ilim real,   --/D limiting i magnitude @z
        ug real,     --/D K(u-g)
        gr real,     --/D K(g-r)
        ri real,     --/D K(r-i)
        iz real,     --/D K(i-z)
        radius float --/D radius of 1Mpc @z
    )",
    "CREATE TABLE Galaxy (   --/D One row per SDSS Galaxy, extracted from PhotoObjAll
        objid bigint PRIMARY KEY, --/D Unique identifier of SDSS object
        ra float,      --/D Right ascension in degrees
        dec float,     --/D Declination in degrees
        i real,        --/D Magnitude in i-band
        gr real,       --/D color dimension g-r
        ri real,       --/D color dimension r-i
        sigmagr real,  --/D Standard error of g-r (paper: float; stored at
        sigmari real   --/D the TAM file format's f32 so both pipelines see
    )",
    "CREATE TABLE Candidates (  --/D The list of BCG candidates
        objid bigint PRIMARY KEY, --/D Unique identifier of SDSS object
        ra float,   --/D Right ascension in degrees
        dec float,  --/D Declination in degrees
        z float,    --/D redshift
        i real,     --/D magnitude in the i-band
        ngal int,   --/D number of galaxies in the cluster
        chi2 float  --/D chi-squared confidence in cluster
    )",
    "CREATE TABLE Clusters ( --/D Selected BCGs from the candidate list
        objid bigint PRIMARY KEY, --/D Unique identifier of SDSS object
        ra float,   --/D Right ascension in degrees
        dec float,  --/D Declination in degrees
        z float,    --/D redshift
        i real,     --/D magnitude in the i band
        ngal int,   --/D number of galaxies in the cluster
        chi2 float  --/D chi-squared confidence in cluster
    )",
    "CREATE TABLE ClusterGalaxiesMetric (--/D Cluster galaxies inside 1 MPc at R200
        clusterObjID bigint, --/D BCG unique identifier (cluster center)
        galaxyObjID bigint,  --/D Galaxy unique identifier (galaxy part of the cluster)
        distance float       --/D distance between cluster and galaxy
    )",
    // The paper's Zone object is a VIEW over the SDSS Zone table; this
    // engine materializes it as the clustered table spZone rebuilds.
    "CREATE TABLE Zone ( --/D Primary Galaxy view of the zone table in SDSS database
        zoneid int NOT NULL,  --/D Zone number based on 30 arcseconds
        ra float NOT NULL,    --/D Right ascension in degrees
        objid bigint NOT NULL,--/D Unique identifier of SDSS object
        dec float,            --/D Declination in degrees
        cx float,             --/D x, y, z unit vector of object on celestial sphere
        cy float,
        cz float,
        PRIMARY KEY (zoneid, ra, objid)
    )",
];

/// Execute the appendix DDL against a fresh database.
pub fn create_schema_from_script(db: &mut Database) -> DbResult<()> {
    for stmt in APPENDIX_SCHEMA {
        db.execute_sql(stmt)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema;
    use skycore::kcorr::{KcorrConfig, KcorrTable};
    use stardb::{Database, DbConfig};

    #[test]
    fn appendix_ddl_parses_and_creates_everything() {
        let mut db = Database::new(DbConfig::in_memory());
        create_schema_from_script(&mut db).unwrap();
        for t in ["Kcorr", "Galaxy", "Candidates", "Clusters", "ClusterGalaxiesMetric", "Zone"] {
            assert!(db.has_table(t), "missing {t}");
        }
    }

    #[test]
    fn script_schema_matches_programmatic_schema() {
        let mut via_sql = Database::new(DbConfig::in_memory());
        create_schema_from_script(&mut via_sql).unwrap();
        let kcorr = KcorrTable::generate(KcorrConfig::tam());
        let mut via_api = Database::new(DbConfig::in_memory());
        schema::create_schema(&mut via_api, &kcorr).unwrap();

        for table in ["Galaxy", "Candidates", "Clusters", "ClusterGalaxiesMetric", "Zone"] {
            let a = via_sql.schema_of(table).unwrap();
            let b = via_api.schema_of(table).unwrap();
            let names_a: Vec<&str> =
                a.columns().iter().map(|c| c.name.as_str()).collect();
            let names_b: Vec<&str> =
                b.columns().iter().map(|c| c.name.as_str()).collect();
            assert!(
                names_a.iter().zip(&names_b).all(|(x, y)| x.eq_ignore_ascii_case(y)),
                "{table}: {names_a:?} vs {names_b:?}"
            );
            assert_eq!(a.arity(), b.arity(), "{table}");
        }
        // Clustering keys agree.
        assert_eq!(
            via_sql.clustered_key_cols("Zone").unwrap(),
            via_api.clustered_key_cols("Zone").unwrap()
        );
        assert_eq!(
            via_sql.clustered_key_cols("Galaxy").unwrap(),
            via_api.clustered_key_cols("Galaxy").unwrap()
        );
    }

    #[test]
    fn pipeline_runs_on_script_created_schema() {
        use skycore::SkyRegion;
        use skysim::{Sky, SkyConfig};
        // Build the schema from the appendix script, load kcorr rows, and
        // run the stored procedures against it.
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema_from_script(&mut db).unwrap();
        // The appendix declares Kcorr's physics columns as `real`; the
        // engine's pipeline keeps them at `float` so z survives the
        // Candidates round trip at full precision. Swap in the engine's
        // Kcorr definition before loading (the one deliberate deviation).
        db.execute_sql("DROP TABLE Kcorr").unwrap();
        db.create_clustered_table("Kcorr", schema::kcorr_schema(), &["zid"]).unwrap();
        schema::import_kcorr(&mut db, &kcorr).unwrap();
        let region = SkyRegion::new(180.0, 181.2, -0.6, 0.6);
        let sky = Sky::generate(region, &SkyConfig::scaled(0.1), &kcorr, 5150);
        crate::import::sp_import_galaxy(&mut db, &sky, &region).unwrap();
        let scheme = skycore::ZoneScheme::default();
        crate::zone_task::sp_zone(&mut db, &scheme).unwrap();
        assert_eq!(db.row_count("Zone").unwrap(), db.row_count("Galaxy").unwrap());
        // And the SQL surface can query what the procedures wrote.
        let (_, rows) = db
            .execute_sql("SELECT COUNT(*) FROM Galaxy WHERE i < 20")
            .unwrap()
            .rows()
            .unwrap();
        assert!(rows[0].i64(0).unwrap() > 0);
    }
}
