//! Run reports in the shape of the paper's Table 1.
//!
//! This domain report stays the Table 1 source of truth; the `obs`
//! registry is its unified sink. [`RunReport::record_to_obs`] mirrors
//! every task row into `maxbcg.task.*` counters, so bench reports carry
//! the same numbers the printed table shows without a second measurement
//! path.

use serde::{Deserialize, Serialize};
use stardb::TaskStats;
use std::time::Duration;

/// One pipeline run: per-task statistics plus catalog cardinalities.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Run label (e.g. "No Partitioning", "P1").
    pub label: String,
    /// Task statistics in execution order.
    pub tasks: Vec<TaskStats>,
    /// Galaxies imported ("Galaxies on each partition" in Table 1).
    pub galaxies: u64,
    /// Candidate rows produced.
    pub candidates: u64,
    /// Cluster rows produced.
    pub clusters: u64,
    /// Membership rows produced.
    pub members: u64,
}

/// The three tasks Table 1 itemizes.
pub const TABLE1_TASKS: [&str; 3] = ["spZone", "fBCGCandidate", "fIsCluster"];

impl RunReport {
    /// Find a task by name.
    pub fn task(&self, name: &str) -> Option<&TaskStats> {
        self.tasks.iter().find(|t| t.name == name)
    }

    /// Total elapsed over the Table 1 tasks (sequential sum).
    pub fn total_elapsed(&self) -> Duration {
        self.table1_tasks().map(|t| t.elapsed()).sum()
    }

    /// Total cpu over the Table 1 tasks.
    pub fn total_cpu(&self) -> Duration {
        self.table1_tasks().map(|t| t.cpu).sum()
    }

    /// Total physical I/O over the Table 1 tasks (the paper's "I/O"
    /// column counts physical operations: compare spZone's 102,144 against
    /// fBCGCandidate's 562 — buffer-resident work barely registers).
    pub fn total_io(&self) -> u64 {
        self.table1_tasks().map(|t| t.physical_reads + t.physical_writes).sum()
    }

    fn table1_tasks(&self) -> impl Iterator<Item = &TaskStats> {
        self.tasks.iter().filter(|t| TABLE1_TASKS.contains(&t.name.as_str()))
    }

    /// Mirror this report into the global `obs` registry: per-task
    /// elapsed/cpu/I/O under `maxbcg.task.{name}.*`, catalog cardinalities
    /// under `maxbcg.catalog.*`. Counters accumulate across partitions, so
    /// a partitioned run reports totals, matching [`TaskStats::absorb`].
    pub fn record_to_obs(&self) {
        obs::counter("maxbcg.pipeline.runs").incr();
        for t in &self.tasks {
            let base = format!("maxbcg.task.{}", t.name);
            obs::counter(&format!("{base}.elapsed_ns")).add(t.elapsed().as_nanos() as u64);
            obs::counter(&format!("{base}.cpu_ns")).add(t.cpu.as_nanos() as u64);
            obs::counter(&format!("{base}.io_wait_ns")).add(t.io_wait.as_nanos() as u64);
            obs::counter(&format!("{base}.logical_reads")).add(t.logical_reads);
            obs::counter(&format!("{base}.physical_reads")).add(t.physical_reads);
            obs::counter(&format!("{base}.physical_writes")).add(t.physical_writes);
        }
        obs::counter("maxbcg.catalog.galaxies").add(self.galaxies);
        obs::counter("maxbcg.catalog.candidates").add(self.candidates);
        obs::counter("maxbcg.catalog.clusters").add(self.clusters);
        obs::counter("maxbcg.catalog.members").add(self.members);
    }

    /// Render the Table 1 block for this run.
    pub fn table1_block(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for t in self.table1_tasks() {
            let _ = writeln!(
                out,
                "  {:<22} {:>10.1} {:>10.1} {:>12}",
                t.name,
                t.elapsed().as_secs_f64(),
                t.cpu.as_secs_f64(),
                t.physical_reads + t.physical_writes,
            );
        }
        let _ = writeln!(
            out,
            "  {:<22} {:>10.1} {:>10.1} {:>12}   {}",
            "total",
            self.total_elapsed().as_secs_f64(),
            self.total_cpu().as_secs_f64(),
            self.total_io(),
            self.galaxies,
        );
        out
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{}  ({} galaxies -> {} candidates -> {} clusters, {} members)",
            self.label, self.galaxies, self.candidates, self.clusters, self.members
        )?;
        write!(f, "{}", self.table1_block())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardb::buffer::IoSnapshot;

    fn task(name: &str, cpu_ms: u64, pr: u64, pw: u64) -> TaskStats {
        TaskStats::from_delta(
            name,
            Duration::from_millis(cpu_ms),
            IoSnapshot {
                logical_reads: 10 * (pr + pw),
                physical_reads: pr,
                physical_writes: pw,
                modeled_io: Duration::from_millis(pr + pw),
            },
        )
    }

    fn report() -> RunReport {
        RunReport {
            label: "No Partitioning".into(),
            tasks: vec![
                task("spImportGalaxy", 50, 5, 5),
                task("spZone", 100, 50, 52),
                task("fBCGCandidate", 1500, 3, 0),
                task("fIsCluster", 200, 10, 6),
                task("spMakeGalaxiesMetric", 30, 1, 1),
            ],
            galaxies: 1_574_656,
            candidates: 47_000,
            clusters: 2_000,
            members: 20_000,
        }
    }

    #[test]
    fn totals_cover_only_table1_tasks() {
        let r = report();
        // 100 + 1500 + 200 cpu, + io_wait 102+3+16 ms elapsed.
        assert_eq!(r.total_cpu(), Duration::from_millis(1800));
        assert_eq!(r.total_elapsed(), Duration::from_millis(1800 + 102 + 3 + 16));
        assert_eq!(r.total_io(), 102 + 3 + 16);
    }

    #[test]
    fn task_lookup() {
        let r = report();
        assert!(r.task("spZone").is_some());
        assert!(r.task("nope").is_none());
    }

    #[test]
    fn display_renders_all_rows() {
        let s = report().to_string();
        assert!(s.contains("spZone") && s.contains("fBCGCandidate") && s.contains("fIsCluster"));
        assert!(s.contains("1574656"));
        assert!(!s.contains("spImportGalaxy"), "Table 1 shows only its three tasks");
    }
}
