//! Cross-survey XMatch: spatial cross-matching of two `(ra, dec)` catalogs
//! as planned SQL (DESIGN.md §6j).
//!
//! Both surveys are zoned like the `Zone` table — clustered on
//! `(zoneid, ra, objid)` with precomputed unit vectors — and the match is
//! ONE declarative query: a zone-band join with a sargable RA window and
//! the exact chord² (dot-product) residual, the shape the `stardb` planner
//! recognizes and runs as a vectorized zone join. The RA 0/360 wrap is
//! handled *relationally*, with margin rows: probe-side objects within the
//! window width of the wrap are duplicated at `ra ± 360`, so one BETWEEN
//! window sees across the seam and every true pair matches exactly once.
//!
//! Determinism contract: the pair list is byte-identical across planner
//! modes (the zone join is candidate pruning over the same conjunction),
//! across worker counts (stripes partition the left survey by zone; a
//! final `(objid1, objid2)` sort erases the decomposition), and across
//! distributed node counts (the same SQL routes through `distfab`'s
//! co-partitioned shard-local join).

use skycore::angle::chord2_of_deg;
use skycore::{ShardMap, UnitVec, ZoneScheme};
use stardb::sql::execute_with;
use stardb::{Database, DbResult, PlanOptions, Row, Value};
use std::sync::OnceLock;

/// One catalog object to load: `(objid, ra_deg, dec_deg)`.
pub type XmatchObj = (i64, f64, f64);

struct XmatchObs {
    runs: obs::Counter,
    stripes: obs::Counter,
    margin_rows: obs::Counter,
    pairs: obs::Counter,
}

fn xobs() -> &'static XmatchObs {
    static X: OnceLock<XmatchObs> = OnceLock::new();
    X.get_or_init(|| XmatchObs {
        runs: obs::counter("maxbcg.xmatch.runs"),
        stripes: obs::counter("maxbcg.xmatch.stripes"),
        margin_rows: obs::counter("maxbcg.xmatch.margin_rows"),
        pairs: obs::counter("maxbcg.xmatch.pairs"),
    })
}

/// The derived constants of one cross-match: zone band, RA window, margin
/// width, and the dot-product cut, all fixed by
/// `(radius, zone scheme, max |dec|)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XmatchSpec {
    /// Match radius, degrees. Pairs strictly closer than this match.
    pub radius_deg: f64,
    /// Zone layout both surveys were zoned with.
    pub scheme: ZoneScheme,
    /// Zone half-band: `|zone_a - zone_b| <= dz` for every true pair.
    dz: i64,
    /// RA half-window, degrees. `360` is the saturated polar fallback: the
    /// window is vacuous and the zone band + exact cut do all the work.
    ra_w: f64,
    /// `1 - 4 sin²(r/2) / 2`: pairs match iff `a·b > mindot`. Stored
    /// SQL-round-tripped so the text plan and native code compare against
    /// bit-identical constants.
    mindot: f64,
}

/// Format an `f64` for embedding in SQL text: plain decimal (the lexer
/// takes no exponents), with enough digits that values down to the 1e-9
/// slack term round-trip far below every tolerance in play.
fn fmt_f64(x: f64) -> String {
    format!("{x:.24}")
}

impl XmatchSpec {
    /// Derive the constants for matching at `radius_deg` over catalogs
    /// zoned with `scheme` whose declinations satisfy
    /// `|dec| <= max_abs_dec_deg` (over BOTH surveys).
    ///
    /// The RA window comes from the haversine identity: for separation
    /// `< r` at declinations within `D`,
    /// `sin(Δra/2) <= sin(r/2) / cos(D)`, widened by a 1.0001 factor and
    /// an additive 1e-9 against rounding — the window and band are
    /// candidate cuts, only the dot product decides, so widening is always
    /// safe. When the window saturates (polar caps, or radius comparable
    /// to the circle) it degrades to the vacuous `±360`, mirroring the
    /// zone kernel's scan-it-all fallback — and the margin drops to zero
    /// so no duplicate rows exist to double-match.
    pub fn new(radius_deg: f64, scheme: ZoneScheme, max_abs_dec_deg: f64) -> XmatchSpec {
        assert!(radius_deg > 0.0, "match radius must be positive");
        let dz = (radius_deg / scheme.height_deg).floor() as i64 + 1;
        let cos_d = max_abs_dec_deg.min(90.0).to_radians().cos();
        let s = (radius_deg.to_radians() / 2.0).sin() / cos_d.max(f64::EPSILON);
        let ra_w = if s >= 1.0 {
            360.0
        } else {
            let w = 2.0 * s.asin().to_degrees() * 1.0001 + 1e-9;
            if w >= 179.0 {
                360.0
            } else {
                w
            }
        };
        let mindot = 1.0 - chord2_of_deg(radius_deg) / 2.0;
        // Round-trip through the SQL text representation so the native
        // matcher and the parsed plan cut on the identical bit pattern.
        let mindot = fmt_f64(mindot).parse::<f64>().expect("fmt_f64 round-trips");
        let ra_w = fmt_f64(ra_w).parse::<f64>().expect("fmt_f64 round-trips");
        XmatchSpec { radius_deg, scheme, dz, ra_w, mindot }
    }

    /// The zone half-band `Δzone`.
    pub fn dzone(&self) -> i64 {
        self.dz
    }

    /// The RA half-window, degrees (`360` = saturated/vacuous).
    pub fn ra_window(&self) -> f64 {
        self.ra_w
    }

    /// The dot-product cut: pairs match iff `a·b > mindot`.
    pub fn mindot(&self) -> f64 {
        self.mindot
    }

    /// Margin width for probe-side loading: objects within this many
    /// degrees of RA 0/360 get a wrapped duplicate. Zero when the window
    /// is saturated (the vacuous window would see both copies).
    pub fn margin_deg(&self) -> f64 {
        if self.ra_w >= 180.0 {
            0.0
        } else {
            self.ra_w
        }
    }

    /// The cross-match SELECT over left survey `a_table` and probe survey
    /// `b_table`, optionally restricted to left zones
    /// `stripe = [lo, hi]` (inclusive). This is the exact textual shape
    /// the planner's zone-join recognizer matches.
    pub fn sql(&self, a_table: &str, b_table: &str, stripe: Option<(i64, i64)>) -> String {
        let stripe_pred = match stripe {
            Some((lo, hi)) => format!("a.zoneid BETWEEN {lo} AND {hi} AND "),
            None => String::new(),
        };
        format!(
            "SELECT a.objid AS objid1, b.objid AS objid2 \
             FROM {a_table} a JOIN {b_table} b \
             ON b.zoneid BETWEEN a.zoneid - {dz} AND a.zoneid + {dz} \
             WHERE {stripe_pred}b.ra BETWEEN a.ra - {w} AND a.ra + {w} \
             AND a.cx * b.cx + a.cy * b.cy + a.cz * b.cz > {mindot} \
             ORDER BY objid1, objid2",
            dz = self.dz,
            w = fmt_f64(self.ra_w),
            mindot = fmt_f64(self.mindot),
        )
    }
}

/// Create a zoned survey table (the `Zone` shape: clustered on
/// `(zoneid, ra, objid)` with the precomputed unit vector).
pub fn create_survey_table(db: &mut Database, table: &str) -> DbResult<()> {
    db.create_clustered_table(table, crate::schema::zone_schema(), &["zoneid", "ra", "objid"])
}

/// Load one catalog into `table` (created by [`create_survey_table`] and
/// truncated here): zone assignment, unit vectors, and — when
/// `margin_deg > 0` — wrapped duplicates of objects within the margin of
/// RA 0/360 at `ra ± 360`, carrying the *same* objid/zone/unit vector.
///
/// Load the probe (right/inner) survey with `spec.margin_deg()`; load the
/// left survey with margin `0.0` — left-side duplicates would emit
/// duplicate output pairs. Returns `(rows, margin_rows)`.
pub fn load_survey(
    db: &mut Database,
    table: &str,
    objects: &[XmatchObj],
    scheme: &ZoneScheme,
    margin_deg: f64,
) -> DbResult<(u64, u64)> {
    db.truncate(table)?;
    let mut rows: Vec<(i32, f64, Row)> = Vec::with_capacity(objects.len());
    let mut margin_rows = 0u64;
    for &(objid, ra, dec) in objects {
        let zoneid = scheme.zone_of(dec);
        let v = UnitVec::from_radec(ra, dec);
        let mut push = |ra: f64| {
            rows.push((
                zoneid,
                ra,
                Row(vec![
                    Value::Int(zoneid),
                    Value::Float(ra),
                    Value::BigInt(objid),
                    Value::Float(dec),
                    Value::Float(v.x),
                    Value::Float(v.y),
                    Value::Float(v.z),
                ]),
            ));
        };
        push(ra);
        if margin_deg > 0.0 && ra < margin_deg {
            push(ra + 360.0);
            margin_rows += 1;
        } else if margin_deg > 0.0 && ra > 360.0 - margin_deg {
            push(ra - 360.0);
            margin_rows += 1;
        }
    }
    // Clustered-key order so the B-tree builds append-mostly.
    rows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let n = rows.len() as u64;
    db.insert_rows(table, rows.into_iter().map(|(_, _, r)| r))?;
    xobs().margin_rows.add(margin_rows);
    Ok((n, margin_rows))
}

/// Inclusive `zoneid` span present in a survey table, or `None` when the
/// table is empty.
fn zone_span(db: &Database, table: &str) -> DbResult<Option<(i32, i32)>> {
    let mut span: Option<(i32, i32)> = None;
    db.scan_with(table, |row| {
        let z = row.i64(0).unwrap_or(0) as i32;
        span = Some(match span {
            Some((lo, hi)) => (lo.min(z), hi.max(z)),
            None => (z, z),
        });
        Ok(true)
    })?;
    Ok(span)
}

/// Run the cross-match end to end: stripe the left survey's zone span into
/// `~4 × workers` contiguous chunks (the same oversubscription discipline
/// as [`crate::parallel`]), run the striped SELECT per chunk, and merge
/// with a final `(objid1, objid2)` sort.
///
/// The engine is single-writer, so stripes execute serially here — the
/// stripe axis proves *decomposition invariance* (the same invariance the
/// distributed fabric leans on), and scale-out parallelism comes from
/// `distfab`'s co-partitioned shard-local joins over the identical SQL.
/// Output is byte-identical for every `workers` value and every
/// `PlanOptions` mode.
pub fn run_xmatch(
    db: &mut Database,
    spec: &XmatchSpec,
    a_table: &str,
    b_table: &str,
    workers: usize,
    opts: &PlanOptions,
) -> DbResult<Vec<(i64, i64)>> {
    xobs().runs.incr();
    let Some((zlo, zhi)) = zone_span(db, a_table)? else {
        return Ok(Vec::new());
    };
    let span = i64::from(zhi) - i64::from(zlo) + 1;
    let n_stripes = (workers.max(1) * 4).min(span as usize);
    let map = ShardMap::from_zone_span(spec.scheme, zlo, zhi, n_stripes);
    let mut pairs: Vec<(i64, i64)> = Vec::new();
    let mut used = 0u64;
    for k in 0..map.shard_count() {
        let (lo, hi) = map.shard_zones(k);
        if lo == hi {
            continue; // empty stripe (more stripes than zones)
        }
        used += 1;
        let sql = spec.sql(a_table, b_table, Some((i64::from(lo), i64::from(hi) - 1)));
        let (_, rows) = execute_with(db, &sql, opts)?.rows()?;
        for row in rows {
            pairs.push((
                row.i64(0).expect("objid1 is BIGINT"),
                row.i64(1).expect("objid2 is BIGINT"),
            ));
        }
    }
    // The stripes partition left rows disjointly, so no pair appears
    // twice; the global sort erases the stripe decomposition.
    pairs.sort_unstable();
    xobs().stripes.add(used);
    xobs().pairs.add(pairs.len() as u64);
    Ok(pairs)
}

/// Reference matcher: O(n·m) over all pairs, cutting on the identical
/// dot-product expression in the identical association order as the SQL
/// evaluator (`(ax·bx + ay·by) + az·bz > mindot`), over the same
/// `UnitVec::from_radec` coordinates the loader stored — so its output is
/// bit-for-bit the ground truth the relational plan must reproduce.
pub fn brute_force_xmatch(
    a: &[XmatchObj],
    b: &[XmatchObj],
    spec: &XmatchSpec,
) -> Vec<(i64, i64)> {
    let bv: Vec<(i64, UnitVec)> =
        b.iter().map(|&(id, ra, dec)| (id, UnitVec::from_radec(ra, dec))).collect();
    let mindot = spec.mindot();
    let mut pairs = Vec::new();
    for &(aid, ra, dec) in a {
        let av = UnitVec::from_radec(ra, dec);
        for (bid, bv) in &bv {
            let dot = (av.x * bv.x + av.y * bv.y) + av.z * bv.z;
            if dot > mindot {
                pairs.push((aid, *bid));
            }
        }
    }
    pairs.sort_unstable();
    pairs
}

/// Expected fraction of probe objects matched when the probe survey is a
/// re-observation with per-axis Gaussian scatter `scatter_arcsec` and the
/// given completeness (the [`skysim`] second-survey model): completeness
/// times the Rayleigh CDF of the match radius.
pub fn expected_match_rate(completeness: f64, scatter_arcsec: f64, radius_deg: f64) -> f64 {
    let sigma = scatter_arcsec / 3600.0;
    completeness * (1.0 - (-radius_deg * radius_deg / (2.0 * sigma * sigma)).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardb::DbConfig;

    fn setup(
        a: &[XmatchObj],
        b: &[XmatchObj],
        spec: &XmatchSpec,
    ) -> DbResult<Database> {
        let mut db = Database::new(DbConfig::in_memory());
        create_survey_table(&mut db, "Survey1")?;
        create_survey_table(&mut db, "Survey2")?;
        load_survey(&mut db, "Survey1", a, &spec.scheme, 0.0)?;
        load_survey(&mut db, "Survey2", b, &spec.scheme, spec.margin_deg())?;
        Ok(db)
    }

    #[test]
    fn sql_plan_matches_brute_force_on_a_simple_field() {
        let scheme = ZoneScheme::with_height(0.1);
        let spec = XmatchSpec::new(0.05, scheme, 5.0);
        // A tight pair, a far pair, and an isolated object.
        let a: Vec<XmatchObj> = vec![(1, 10.0, 1.0), (2, 20.0, -2.0), (3, 30.0, 0.0)];
        let b: Vec<XmatchObj> =
            vec![(101, 10.01, 1.01), (102, 20.5, -2.0), (103, 30.0, 0.049)];
        let mut db = setup(&a, &b, &spec).unwrap();
        let got = run_xmatch(&mut db, &spec, "Survey1", "Survey2", 1, &PlanOptions::default())
            .unwrap();
        let want = brute_force_xmatch(&a, &b, &spec);
        assert_eq!(got, want);
        assert_eq!(got, vec![(1, 101), (3, 103)]);
    }

    #[test]
    fn margin_rows_surface_matches_across_the_ra_wrap() {
        let scheme = ZoneScheme::with_height(0.1);
        let spec = XmatchSpec::new(0.05, scheme, 5.0);
        let a: Vec<XmatchObj> = vec![(1, 359.99, 0.0), (2, 0.01, 1.0)];
        let b: Vec<XmatchObj> = vec![(101, 0.005, 0.0), (102, 359.995, 1.0)];
        let mut db = setup(&a, &b, &spec).unwrap();
        let (_, margin) = load_survey(&mut db, "Survey2", &b, &scheme, spec.margin_deg()).unwrap();
        assert_eq!(margin, 2, "both probe objects sit inside the margin");
        let got = run_xmatch(&mut db, &spec, "Survey1", "Survey2", 1, &PlanOptions::default())
            .unwrap();
        assert_eq!(got, brute_force_xmatch(&a, &b, &spec));
        assert_eq!(got, vec![(1, 101), (2, 102)]);
    }

    #[test]
    fn saturated_window_near_the_pole_still_agrees() {
        let scheme = ZoneScheme::with_height(0.5);
        // cos(89.9°) makes the naive window huge: the spec must saturate.
        let spec = XmatchSpec::new(0.4, scheme, 89.95);
        assert_eq!(spec.ra_window(), 360.0);
        assert_eq!(spec.margin_deg(), 0.0);
        let a: Vec<XmatchObj> = vec![(1, 10.0, 89.9), (2, 200.0, 89.85)];
        // 190° of RA away at dec 89.9 is under 0.4° of arc away.
        let b: Vec<XmatchObj> = vec![(101, 200.0, 89.9), (102, 20.0, 89.2)];
        let mut db = setup(&a, &b, &spec).unwrap();
        let got = run_xmatch(&mut db, &spec, "Survey1", "Survey2", 1, &PlanOptions::default())
            .unwrap();
        let want = brute_force_xmatch(&a, &b, &spec);
        assert_eq!(got, want);
        assert!(want.contains(&(1, 101)), "cross-meridian polar pair must match");
    }

    #[test]
    fn stripe_count_does_not_change_the_answer() {
        let scheme = ZoneScheme::with_height(0.25);
        let spec = XmatchSpec::new(0.1, scheme, 3.0);
        let a: Vec<XmatchObj> = (0..40)
            .map(|i| (i, 5.0 + 0.37 * f64::from(i as i32), -2.0 + 0.11 * f64::from(i as i32)))
            .collect();
        let b: Vec<XmatchObj> = a
            .iter()
            .map(|&(id, ra, dec)| (1000 + id, ra + 0.00002, dec - 0.00003))
            .collect();
        let mut db = setup(&a, &b, &spec).unwrap();
        let one =
            run_xmatch(&mut db, &spec, "Survey1", "Survey2", 1, &PlanOptions::default()).unwrap();
        assert_eq!(one.len(), 40);
        for workers in [2usize, 4, 8, 32] {
            let w = run_xmatch(&mut db, &spec, "Survey1", "Survey2", workers, &PlanOptions::default())
                .unwrap();
            assert_eq!(w, one, "workers={workers}");
        }
        assert_eq!(one, brute_force_xmatch(&a, &b, &spec));
    }

    #[test]
    fn planner_runs_the_match_as_a_zone_join() {
        let scheme = ZoneScheme::with_height(0.1);
        let spec = XmatchSpec::new(0.05, scheme, 5.0);
        let a: Vec<XmatchObj> = vec![(1, 10.0, 1.0)];
        let b: Vec<XmatchObj> = vec![(101, 10.01, 1.01)];
        let mut db = setup(&a, &b, &spec).unwrap();
        let sql = format!("EXPLAIN {}", spec.sql("Survey1", "Survey2", None));
        let (_, rows) = execute_with(&mut db, &sql, &PlanOptions::default())
            .unwrap()
            .rows()
            .unwrap();
        let plan: Vec<String> = rows
            .into_iter()
            .filter_map(|r| match r.0.into_iter().next() {
                Some(Value::Text(s)) => Some(s),
                _ => None,
            })
            .collect();
        assert!(
            plan.iter().any(|l| l.contains("zone join")),
            "plan must show a zone join: {plan:#?}"
        );
    }

    #[test]
    fn expected_match_rate_has_the_right_limits() {
        // Radius far beyond the scatter: rate → completeness.
        assert!((expected_match_rate(0.9, 0.3, 1.0) - 0.9).abs() < 1e-12);
        // Radius a fraction of the scatter: rate ≈ c · r²/2σ².
        let r = expected_match_rate(1.0, 3600.0, 0.1);
        assert!((r - (1.0 - (-0.005f64).exp())).abs() < 1e-12);
        assert!(r < 0.006);
    }
}
