//! Columnar zone-snapshot cache: the Zone table as an immutable
//! struct-of-arrays index.
//!
//! The zone join is the pipeline's hottest loop, and on the B-tree path
//! every probe pays a tree descent, buffer-pool latch traffic, and a
//! per-row payload decode — costs the worker pools of the partitioned
//! runs multiply. After `sp_zone` rebuilds the Zone table, the pipeline
//! materializes it once into a [`ZoneSnapshot`]: per-zone buckets of
//! RA-sorted columns `(ra, objid, dec, cx, cy, cz)` behind a dense
//! per-zone offset table. The neighbor kernel then binary-searches the RA
//! window inside a bucket and runs the dec-window + chord² cut over
//! contiguous slices, entirely off the buffer pool.
//!
//! Correctness is by construction, not by trust: the snapshot records the
//! Zone table's mutation epoch at build time, and the kernel compares it
//! against the live epoch on every search — a stale or absent snapshot
//! falls back to the clustered-index scan, which remains the source of
//! truth. Rows enter the snapshot via `scan_raw` in clustered-key order
//! `(zoneid, ra, objid)`, so the columnar path surfaces the same rows in
//! the same order and feeds the same chord arithmetic the same stored
//! unit vectors: results are bit-identical on either path.

use crate::zone_task::zone_entry_from_payload;
use stardb::{Database, DbResult};
use std::sync::OnceLock;
use std::time::Instant;

pub(crate) struct ZoneCacheObs {
    pub builds: obs::Counter,
    pub hits: obs::Counter,
    pub fallbacks: obs::Counter,
    pub build_us: obs::Histogram,
    pub bytes: obs::Gauge,
}

/// Cache accounting: `builds`/`build_us`/`bytes` describe snapshot
/// construction; `hits` counts searches served columnar and `fallbacks`
/// counts searches that detected a stale or missing snapshot and took the
/// B-tree path instead. Recovery drills assert `fallbacks > 0` whenever a
/// fault rebuilt the Zone table under a live snapshot.
pub(crate) fn zobs() -> &'static ZoneCacheObs {
    static Z: OnceLock<ZoneCacheObs> = OnceLock::new();
    Z.get_or_init(|| ZoneCacheObs {
        builds: obs::counter("maxbcg.zonecache.builds"),
        hits: obs::counter("maxbcg.zonecache.hits"),
        fallbacks: obs::counter("maxbcg.zonecache.fallbacks"),
        build_us: obs::histogram("maxbcg.zonecache.build_us"),
        bytes: obs::gauge("maxbcg.zonecache.bytes"),
    })
}

/// Immutable struct-of-arrays image of the Zone table.
///
/// Columns are parallel arrays in clustered-key order; `offsets` maps zone
/// `zone_min + i` to its half-open row range `offsets[i]..offsets[i + 1]`,
/// so a zone lookup is one subtraction and two loads. The snapshot is
/// `Send + Sync` by construction (all fields immutable after build) and is
/// shared across worker pools behind an `Arc`.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneSnapshot {
    epoch: u64,
    zone_min: i32,
    /// Dense per-zone start offsets plus one trailing sentinel.
    offsets: Vec<u32>,
    ra: Vec<f64>,
    objid: Vec<i64>,
    dec: Vec<f64>,
    cx: Vec<f64>,
    cy: Vec<f64>,
    cz: Vec<f64>,
}

/// Borrowed column slices for one zone, RA-ascending (ties in objid order,
/// exactly like the clustered index).
#[derive(Debug, Clone, Copy)]
pub struct ZoneBucket<'a> {
    /// Right ascension, degrees, ascending.
    pub ra: &'a [f64],
    /// Object ids, parallel to `ra`.
    pub objid: &'a [i64],
    /// Declination, degrees, parallel to `ra`.
    pub dec: &'a [f64],
    /// Unit-vector x, parallel to `ra`.
    pub cx: &'a [f64],
    /// Unit-vector y, parallel to `ra`.
    pub cy: &'a [f64],
    /// Unit-vector z, parallel to `ra`.
    pub cz: &'a [f64],
}

impl<'a> ZoneBucket<'a> {
    /// Row range with `lo <= ra <= hi` — both ends inclusive, matching the
    /// B-tree prefix scan whose upper bound admits every objid extension
    /// of the `(zone, hi)` prefix.
    pub fn ra_window(&self, lo: f64, hi: f64) -> (usize, usize) {
        let start = self.ra.partition_point(|&v| v < lo);
        let end = self.ra.partition_point(|&v| v <= hi);
        (start, end.max(start))
    }

    /// Number of rows in the bucket.
    pub fn len(&self) -> usize {
        self.ra.len()
    }

    /// True when the zone holds no rows.
    pub fn is_empty(&self) -> bool {
        self.ra.is_empty()
    }
}

impl ZoneSnapshot {
    /// Materialize the Zone table. Runs one full clustered scan via
    /// `scan_raw` (key order, raw payloads) and decodes each row exactly
    /// once. The version is read under the same shared borrow as the scan,
    /// so no mutation can slip between the two. Using `table_version`
    /// (commit epoch while clean, mutation epoch while dirty) instead of
    /// the raw mutation epoch means a snapshot built from committed state
    /// stays fresh until the next commit that actually touches Zone.
    pub fn build(db: &Database) -> DbResult<ZoneSnapshot> {
        let t0 = Instant::now();
        let mut snap = ZoneSnapshot {
            epoch: db.table_version("Zone")?,
            zone_min: 0,
            offsets: Vec::new(),
            ra: Vec::new(),
            objid: Vec::new(),
            dec: Vec::new(),
            cx: Vec::new(),
            cy: Vec::new(),
            cz: Vec::new(),
        };
        let mut last_zone: Option<i32> = None;
        db.scan_raw("Zone", |payload| {
            let e = zone_entry_from_payload(payload);
            let at = snap.ra.len() as u32;
            match last_zone {
                None => {
                    snap.zone_min = e.zoneid;
                    snap.offsets.push(at);
                }
                Some(prev) => {
                    // Clustered order guarantees non-decreasing zones; open
                    // a start offset for each skipped (empty) zone too.
                    debug_assert!(e.zoneid >= prev, "scan_raw out of zone order");
                    for _ in prev..e.zoneid {
                        snap.offsets.push(at);
                    }
                }
            }
            last_zone = Some(e.zoneid);
            snap.ra.push(e.ra);
            snap.objid.push(e.objid);
            snap.dec.push(e.dec);
            snap.cx.push(e.pos.x);
            snap.cy.push(e.pos.y);
            snap.cz.push(e.pos.z);
            true
        })?;
        snap.offsets.push(snap.ra.len() as u32);
        let z = zobs();
        z.builds.incr();
        z.build_us.record(t0.elapsed().as_micros() as u64);
        z.bytes.set(snap.bytes() as i64);
        Ok(snap)
    }

    /// Zone-table version (commit epoch) this snapshot was built at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True when the live Zone table still matches this snapshot.
    pub fn is_fresh(&self, db: &Database) -> bool {
        db.table_version("Zone").is_ok_and(|e| e == self.epoch)
    }

    /// Total rows materialized.
    pub fn rows(&self) -> usize {
        self.ra.len()
    }

    /// Heap footprint of the column arrays and offset table.
    pub fn bytes(&self) -> usize {
        self.offsets.len() * 4 + self.ra.len() * 8 * 6
    }

    /// Column slices for `zone`; empty bucket when the zone holds no rows
    /// (including zones outside the materialized range).
    pub fn bucket(&self, zone: i32) -> ZoneBucket<'_> {
        let idx = i64::from(zone) - i64::from(self.zone_min);
        if idx < 0 || idx as usize + 1 >= self.offsets.len() {
            return ZoneBucket { ra: &[], objid: &[], dec: &[], cx: &[], cy: &[], cz: &[] };
        }
        let a = self.offsets[idx as usize] as usize;
        let b = self.offsets[idx as usize + 1] as usize;
        ZoneBucket {
            ra: &self.ra[a..b],
            objid: &self.objid[a..b],
            dec: &self.dec[a..b],
            cx: &self.cx[a..b],
            cy: &self.cy[a..b],
            cz: &self.cz[a..b],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::import::sp_import_galaxy;
    use crate::schema::create_schema;
    use crate::zone_task::{sp_zone, ZoneEntry};
    use skycore::kcorr::{KcorrConfig, KcorrTable};
    use skycore::{SkyRegion, ZoneScheme};
    use skysim::{Sky, SkyConfig};
    use stardb::{DbConfig, Value};

    fn setup(seed: u64) -> (Database, ZoneScheme) {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        let region = SkyRegion::new(180.0, 181.0, -0.5, 0.5);
        let sky = Sky::generate(region, &SkyConfig::scaled(0.1), &kcorr, seed);
        sp_import_galaxy(&mut db, &sky, &region).unwrap();
        let scheme = ZoneScheme::default();
        sp_zone(&mut db, &scheme).unwrap();
        (db, scheme)
    }

    fn zone_rows(db: &Database) -> Vec<ZoneEntry> {
        let mut rows = Vec::new();
        db.scan_raw("Zone", |p| {
            rows.push(zone_entry_from_payload(p));
            true
        })
        .unwrap();
        rows
    }

    #[test]
    fn snapshot_mirrors_the_zone_table_exactly() {
        let (db, _) = setup(71);
        let snap = ZoneSnapshot::build(&db).unwrap();
        let rows = zone_rows(&db);
        assert!(!rows.is_empty());
        assert_eq!(snap.rows(), rows.len());
        assert_eq!(snap.epoch(), db.table_version("Zone").unwrap());
        assert!(snap.is_fresh(&db));

        // Every row appears in its zone's bucket, in table order, with
        // bit-identical columns.
        let mut walked = 0usize;
        let (zmin, zmax) = (rows[0].zoneid, rows[rows.len() - 1].zoneid);
        for zone in zmin..=zmax {
            let b = snap.bucket(zone);
            let expect: Vec<&ZoneEntry> = rows.iter().filter(|e| e.zoneid == zone).collect();
            assert_eq!(b.len(), expect.len(), "zone {zone}");
            for (i, e) in expect.iter().enumerate() {
                assert_eq!(b.ra[i].to_bits(), e.ra.to_bits());
                assert_eq!(b.objid[i], e.objid);
                assert_eq!(b.dec[i].to_bits(), e.dec.to_bits());
                assert_eq!(b.cx[i].to_bits(), e.pos.x.to_bits());
                assert_eq!(b.cy[i].to_bits(), e.pos.y.to_bits());
                assert_eq!(b.cz[i].to_bits(), e.pos.z.to_bits());
            }
            walked += b.len();
            // RA ascending inside the bucket.
            for w in b.ra.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
        assert_eq!(walked, rows.len(), "offset table must partition the rows");
        // Out-of-range zones resolve to empty buckets, not panics.
        assert!(snap.bucket(zmin - 3).is_empty());
        assert!(snap.bucket(zmax + 3).is_empty());
        assert!(snap.bytes() > 0);
    }

    #[test]
    fn ra_window_matches_btree_prefix_scan() {
        let (db, _) = setup(72);
        let snap = ZoneSnapshot::build(&db).unwrap();
        let rows = zone_rows(&db);
        let mid_zone = rows[rows.len() / 2].zoneid;
        for &(lo, hi) in &[(180.0, 181.0), (180.2, 180.4), (180.35, 180.35), (180.9, 180.1)] {
            let b = snap.bucket(mid_zone);
            let (s, e) = b.ra_window(lo, hi);
            let fast: Vec<i64> = b.objid[s..e].to_vec();
            let mut slow = Vec::new();
            db.range_scan_prefix_raw(
                "Zone",
                &[Value::Int(mid_zone), Value::Float(lo)],
                &[Value::Int(mid_zone), Value::Float(hi)],
                |p| {
                    slow.push(zone_entry_from_payload(p).objid);
                    true
                },
            )
            .unwrap();
            assert_eq!(fast, slow, "window [{lo}, {hi}] in zone {mid_zone}");
        }
    }

    #[test]
    fn mutation_after_build_marks_the_snapshot_stale() {
        let (mut db, scheme) = setup(73);
        let before = zobs().builds.get();
        let snap = ZoneSnapshot::build(&db).unwrap();
        assert!(zobs().builds.get() > before, "builds counter must move");
        assert!(snap.is_fresh(&db));

        // Any Zone mutation — here the truncate inside a re-run of
        // sp_zone — must flip freshness; a rebuild catches back up.
        sp_zone(&mut db, &scheme).unwrap();
        assert!(!snap.is_fresh(&db), "stale snapshot must be detected");
        let fresh = ZoneSnapshot::build(&db).unwrap();
        assert!(fresh.is_fresh(&db));
        assert_eq!(fresh.rows(), snap.rows(), "same data, new epoch");
        assert_ne!(fresh.epoch(), snap.epoch());
    }

    #[test]
    fn empty_zone_table_builds_an_empty_snapshot() {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        let snap = ZoneSnapshot::build(&db).unwrap();
        assert_eq!(snap.rows(), 0);
        assert!(snap.bucket(10800).is_empty());
        assert!(snap.is_fresh(&db));
    }
}
