//! `spZone`: arrange the data in zones so neighborhood searches are
//! efficient — "this task assigns a ZoneID and creates a clustered index on
//! the data" (§2.4, Table 1's first row).

use crate::import::galaxy_from_payload;
use skycore::{UnitVec, ZoneScheme};
use stardb::{Database, DbResult, Row, Value};

/// Rebuild the `Zone` table from `Galaxy`: one row per galaxy with its
/// zone number and unit vector, clustered on `(zoneid, ra, objid)`.
/// Returns the number of zone rows written.
pub fn sp_zone(db: &mut Database, scheme: &ZoneScheme) -> DbResult<u64> {
    db.truncate("Zone")?;
    // Collect first: the scan borrows the database immutably while inserts
    // need it mutably — and a real engine would similarly materialize the
    // sort run before building the clustered index. Carry the clustered
    // key alongside each row so the sort needs no fallible row decoding.
    let mut rows: Vec<(i32, f64, Row)> = Vec::new();
    db.scan_with("Galaxy", |row| {
        let g = galaxy_from_payload(&row.encode());
        let v = UnitVec::from_radec(g.ra, g.dec);
        let zoneid = scheme.zone_of(g.dec);
        rows.push((
            zoneid,
            g.ra,
            Row(vec![
                Value::Int(zoneid),
                Value::Float(g.ra),
                Value::BigInt(g.objid),
                Value::Float(g.dec),
                Value::Float(v.x),
                Value::Float(v.y),
                Value::Float(v.z),
            ]),
        ));
        Ok(true)
    })?;
    // Sort by the clustered key so the B-tree builds append-mostly, the
    // way `CREATE CLUSTERED INDEX` bulk-sorts. `total_cmp` keeps the sort
    // total even if a NaN ra ever sneaks in.
    rows.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
    let mut n = 0;
    for (_, _, row) in rows {
        db.insert("Zone", row)?;
        n += 1;
    }
    Ok(n)
}

/// Fast decode of the fixed-layout `Zone` payload:
/// `[1+4 zoneid][1+8 ra][1+8 objid][1+8 dec][1+8 cx][1+8 cy][1+8 cz]`
/// = 59 bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneEntry {
    /// Zone number.
    pub zoneid: i32,
    /// Right ascension, degrees.
    pub ra: f64,
    /// Object id.
    pub objid: i64,
    /// Declination, degrees.
    pub dec: f64,
    /// Unit vector.
    pub pos: UnitVec,
}

/// Decode a `Zone` row payload (see [`ZoneEntry`]).
pub fn zone_entry_from_payload(p: &[u8]) -> ZoneEntry {
    debug_assert_eq!(p.len(), 59, "zone payload layout drifted");
    #[inline]
    fn f64_at(p: &[u8], off: usize) -> f64 {
        f64::from_le_bytes(p[off..off + 8].try_into().unwrap())
    }
    ZoneEntry {
        zoneid: i32::from_le_bytes(p[1..5].try_into().unwrap()),
        ra: f64_at(p, 6),
        objid: i64::from_le_bytes(p[15..23].try_into().unwrap()),
        dec: f64_at(p, 24),
        pos: UnitVec { x: f64_at(p, 33), y: f64_at(p, 42), z: f64_at(p, 51) },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::import::sp_import_galaxy;
    use crate::schema::create_schema;
    use skycore::kcorr::{KcorrConfig, KcorrTable};
    use skycore::SkyRegion;
    use skysim::{Sky, SkyConfig};
    use stardb::DbConfig;

    fn setup() -> Database {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let mut db = Database::new(DbConfig::in_memory());
        create_schema(&mut db, &kcorr).unwrap();
        let region = SkyRegion::new(180.0, 180.6, 0.0, 0.6);
        let sky = Sky::generate(region, &SkyConfig::test(), &kcorr, 11);
        sp_import_galaxy(&mut db, &sky, &region).unwrap();
        db
    }

    #[test]
    fn zone_rows_match_galaxy_rows() {
        let mut db = setup();
        let n = sp_zone(&mut db, &ZoneScheme::default()).unwrap();
        assert_eq!(n, db.row_count("Galaxy").unwrap());
        assert_eq!(n, db.row_count("Zone").unwrap());
    }

    #[test]
    fn zone_assignment_follows_formula() {
        let mut db = setup();
        let scheme = ZoneScheme::default();
        sp_zone(&mut db, &scheme).unwrap();
        db.scan_with("Zone", |row| {
            let zoneid = row.i64(0).unwrap() as i32;
            let dec = row.f64(3).unwrap();
            assert_eq!(zoneid, scheme.zone_of(dec));
            Ok(true)
        })
        .unwrap();
    }

    #[test]
    fn zone_table_is_ordered_by_zone_then_ra() {
        let mut db = setup();
        sp_zone(&mut db, &ZoneScheme::default()).unwrap();
        let mut last: Option<(i64, f64)> = None;
        db.scan_with("Zone", |row| {
            let key = (row.i64(0).unwrap(), row.f64(1).unwrap());
            if let Some(prev) = last {
                assert!(prev <= key, "{prev:?} > {key:?}");
            }
            last = Some(key);
            Ok(true)
        })
        .unwrap();
    }

    #[test]
    fn rezone_is_idempotent() {
        let mut db = setup();
        let scheme = ZoneScheme::default();
        let n1 = sp_zone(&mut db, &scheme).unwrap();
        let n2 = sp_zone(&mut db, &scheme).unwrap();
        assert_eq!(n1, n2);
    }

    #[test]
    fn fast_zone_decode_matches_row() {
        let mut db = setup();
        sp_zone(&mut db, &ZoneScheme::default()).unwrap();
        let rows = db.scan("Zone").unwrap();
        let row = &rows[0];
        let entry = zone_entry_from_payload(&row.encode());
        assert_eq!(entry.zoneid as i64, row.i64(0).unwrap());
        assert_eq!(entry.ra, row.f64(1).unwrap());
        assert_eq!(entry.objid, row.i64(2).unwrap());
        assert_eq!(entry.pos.x, row.f64(4).unwrap());
    }
}
