//! # distfab — the distributed zone-sharded scatter–gather query fabric
//!
//! §5 of the paper sketches the zone-partitioned cluster the SDSS team
//! built after the single-node port: the catalog split into contiguous
//! declination-zone ranges, one range per database server, a coordinator
//! that scatters planned subqueries to the shard-holding nodes and merges
//! the partial answers. This crate is that layer over the reproduction's
//! substrates: [`stardb`] shards hosted on [`gridsim`] nodes, sharded by
//! [`skycore::ShardMap`] — the *same* zone bucketing the MaxBCG partition
//! driver uses, so the science pipeline and the query fabric can never
//! disagree about who owns a declination. Tables registered as co-shards
//! ([`CoShard`]) ride that map zone-aligned with a halo fringe, so
//! cross-survey zone-band joins run shard-local (DESIGN.md §6j) instead
//! of broadcasting a survey through the coordinator.
//!
//! The flow for one query:
//!
//! 1. **Plan** — parse the SELECT, intersect its sargable shard-column
//!    interval ([`stardb::sql::column_interval`]) with the shard map's
//!    zone ranges, and rewrite it into a per-shard subquery plus a gather
//!    recipe (merge keys, or a finalization query over a scratch table).
//! 2. **Scatter** — ship the subquery *text* to each contacted shard via
//!    [`gridsim::GridCluster::run_routed`]: node crashes re-route one
//!    ring step per attempt with backoff, so a mid-gather kill degrades
//!    latency, never answers.
//! 3. **Gather** — shard results come back row-codec encoded
//!    ([`stardb::Row::encode`]); the coordinator decodes them into
//!    [`stardb::ColumnBatch`] streams and recombines with the exchange
//!    operators in [`stardb::dist`]: order-preserving k-way merge,
//!    distributed top-n, duplicate elimination, or partial→final
//!    aggregation over a scratch table.
//!
//! Results are **deterministic in the node count**: per-shard streams are
//! produced in a canonical total order (explicit ORDER BY keys extended
//! with every remaining column, NULLs first, floats by `total_cmp`), and
//! every gather operator is insensitive to shard arrival interleaving.
//! Known, documented divergences from the single-node engine: `LIMIT`
//! without a total order selects the canonically-first rows (the engine
//! picks scan-order rows), and `AVG`/float-`SUM` fold in canonical row
//! order (last-ulp differences from the engine's scan order, still exact
//! across node counts). See DESIGN.md §6i.

#![warn(missing_docs)]

mod render;

pub use render::{render_col, render_expr, render_select};

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use gridsim::{db_cluster, FaultPlan, GridCluster, RoutedJob};
use skycore::{ShardMap, ZoneScheme};
use stardb::dist::{
    canonical_keys, decode_wire_stream, dedup_sorted_rows, dist_counters, gather_latency,
    merge_streams, merge_top_n, SortKey,
};
use stardb::sql::ast::{AggFunc, ColRef, OrderItem, Select, SelectItem, SqlExpr, Stmt, TableRef};
use stardb::sql::{column_interval, parse, zone_band_halo};
use stardb::{
    ColumnBatch, Column, DataType, Database, DbConfig, DbError, DbResult, Row, Schema, SqlOutput,
    Value,
};

/// Name of the coordinator's scratch table for aggregate finalization.
const SCRATCH: &str = "__dist_gather";

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// A table co-partitioned with the shard table: zone-aligned on the same
/// [`ShardMap`], with rows duplicated into every shard whose owned zone
/// range lies within `halo_zones` of the row's zone. A zone-band join
/// between the shard table and a co-sharded table whose band fits inside
/// the halo can then run **shard-local** — every matching pair is
/// produced exactly once, by the shard owning the left row's zone —
/// instead of broadcasting a whole survey through the coordinator.
#[derive(Debug, Clone)]
pub struct CoShard {
    /// The co-partitioned table.
    pub table: String,
    /// Its integer zone column (the routing key).
    pub zone_col: String,
    /// Halo half-width, zones: a row of zone `z` is also materialized on
    /// each neighbor shard owning any zone in `[z - halo, z + halo]`.
    pub halo_zones: i64,
}

/// How to shard a catalog over a simulated cluster.
#[derive(Debug)]
pub struct DistConfig {
    /// Number of shards == number of database nodes (shard `k` is homed
    /// on node `db{k}`).
    pub nodes: usize,
    /// The partitioned table; every other table is replicated everywhere
    /// unless listed in `co_shard`.
    pub shard_table: String,
    /// The declination column the zone bucketing keys on.
    pub shard_col: String,
    /// Zone layout shared with the science pipeline.
    pub scheme: ZoneScheme,
    /// Inclusive lower edge of the sharded declination span.
    pub dec_min: f64,
    /// Inclusive upper edge of the sharded declination span.
    pub dec_max: f64,
    /// Coordinator-side rebatching granularity for gathered wire rows.
    pub batch_rows: usize,
    /// Extra subquery attempts after a failure (crash failover budget).
    pub retries: u32,
    /// Strikes before a node is blacklisted for later routing (0 = off).
    pub blacklist_after: u32,
    /// Deterministic fault schedule injected into the scatter.
    pub faults: Option<FaultPlan>,
    /// Tables co-partitioned with the shard table (zone-aligned + halo).
    pub co_shard: Vec<CoShard>,
}

impl DistConfig {
    /// A config with the shared defaults (30″ zones, 1024-row gather
    /// batches, 3 failover retries, blacklist after 2 strikes).
    pub fn new(nodes: usize, shard_table: &str, shard_col: &str, dec_min: f64, dec_max: f64) -> Self {
        DistConfig {
            nodes,
            shard_table: shard_table.to_owned(),
            shard_col: shard_col.to_owned(),
            scheme: ZoneScheme::default(),
            dec_min,
            dec_max,
            batch_rows: 1024,
            retries: 3,
            blacklist_after: 2,
            faults: None,
            co_shard: Vec::new(),
        }
    }

    /// Attach a fault schedule (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Co-partition `table` with the shard table (builder style): routed
    /// by its integer `zone_col` through the same shard map, with a
    /// `halo_zones`-wide duplication fringe on shard boundaries.
    pub fn with_co_shard(mut self, table: &str, zone_col: &str, halo_zones: i64) -> Self {
        self.co_shard.push(CoShard {
            table: table.to_owned(),
            zone_col: zone_col.to_owned(),
            halo_zones: halo_zones.max(0),
        });
        self
    }

    fn co_of(&self, table: &str) -> Option<&CoShard> {
        self.co_shard.iter().find(|c| table.eq_ignore_ascii_case(&c.table))
    }
}

// ---------------------------------------------------------------------------
// Per-query profile
// ---------------------------------------------------------------------------

/// What one shard shipped back for the last distributed query.
#[derive(Debug, Clone)]
pub struct ShardShip {
    /// Shard index.
    pub shard: usize,
    /// Node that finally ran the subquery (after any failovers).
    pub node: String,
    /// Half-open zone range the shard owns.
    pub zones: (i32, i32),
    /// Result rows shipped to the coordinator.
    pub rows: u64,
    /// Wire bytes shipped.
    pub bytes: u64,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
}

/// Execution profile of the last query routed through the fabric.
#[derive(Debug, Clone, Default)]
pub struct DistProfile {
    /// Gather mode: `merge`, `top-n`, `merge+dedup`, `partial-agg`,
    /// `raw-agg`, `broadcast`, or `local`.
    pub mode: String,
    /// Shards in the map.
    pub shards_total: usize,
    /// Shards actually contacted.
    pub contacted: usize,
    /// Shards skipped by zone-range pruning.
    pub pruned: usize,
    /// Total rows shipped shard → coordinator.
    pub rows_shipped: u64,
    /// Total wire bytes shipped.
    pub bytes_shipped: u64,
    /// Subquery attempts beyond the first (crash failovers).
    pub retries: u64,
    /// End-to-end scatter–gather wall time, nanoseconds.
    pub gather_ns: u64,
    /// Virtual cluster makespan of the scatter (node-clock scaled, the
    /// grid simulator's host-independent time base), seconds.
    pub virtual_makespan_s: f64,
    /// The per-shard subquery text.
    pub subquery: String,
    /// Coordinator finalization query, for aggregate/broadcast gathers.
    pub final_sql: Option<String>,
    /// Per-shard shipping detail.
    pub per_shard: Vec<ShardShip>,
    /// Nodes blacklisted during the scatter.
    pub blacklisted: Vec<String>,
}

// ---------------------------------------------------------------------------
// Plan
// ---------------------------------------------------------------------------

/// How gathered streams recombine at the coordinator.
enum Gather {
    /// Streams arrive totally ordered; k-way merge, then optional
    /// adjacent dedup (DISTINCT) and truncation (LIMIT), then cut hidden
    /// sort columns down to `visible`.
    Merge { keys: Vec<SortKey>, visible: usize, distinct: bool, limit: Option<usize> },
    /// Decode every shipped row, optionally sort canonically, load into a
    /// coordinator table, and run `final_sql` over it. `temp_cols` names
    /// the scratch columns; `None` loads into the (empty) coordinator
    /// copy of the shard table instead (broadcast mode).
    Finalize { sort_rows: bool, temp_cols: Option<Vec<String>>, final_sql: String },
}

struct DistPlan {
    mode: &'static str,
    subquery: String,
    /// Arity of each shipped row.
    width: usize,
    /// Inclusive contacted shard range.
    contacted: (usize, usize),
    pruned: usize,
    gather: Gather,
    /// Co-partitioned tables the plan leans on for shard-locality:
    /// `(table, join band ±zones, provisioned halo ±zones)`.
    co: Vec<(String, i64, i64)>,
}

// ---------------------------------------------------------------------------
// The cluster
// ---------------------------------------------------------------------------

/// A zone-sharded database cluster: one [`Database`] shard per simulated
/// grid node, plus a coordinator catalog holding the replicated tables
/// and every schema.
pub struct DistCluster {
    cfg: DistConfig,
    map: ShardMap,
    grid: GridCluster,
    shards: Vec<Mutex<Database>>,
    /// Coordinator store: all schemas, replicated-table rows, an *empty*
    /// shard-table slice (probing plans against it), and scratch space.
    catalog: Mutex<Database>,
    qid: AtomicU64,
    last: Mutex<Option<DistProfile>>,
}

impl DistCluster {
    /// Shard `src` across `cfg.nodes` simulated database nodes. The shard
    /// table's rows are routed by [`ShardMap::shard_of_dec`] on the shard
    /// column; every other table (and every index definition) is
    /// replicated on each node and kept at the coordinator.
    pub fn build(src: &Database, mut cfg: DistConfig) -> DbResult<DistCluster> {
        assert!(cfg.nodes > 0, "a fabric needs at least one node");
        let map = ShardMap::build(cfg.scheme, cfg.dec_min, cfg.dec_max, cfg.nodes);
        let mut grid = GridCluster::new(db_cluster(cfg.nodes));
        grid.retries = cfg.retries;
        grid.blacklist_after = cfg.blacklist_after;
        if let Some(plan) = cfg.faults.take() {
            grid = grid.with_faults(plan.clone());
            cfg.faults = Some(plan);
        }

        let mut shards: Vec<Database> =
            (0..cfg.nodes).map(|_| Database::new(DbConfig::in_memory())).collect();
        let mut catalog = Database::new(DbConfig::in_memory());

        for table in src.table_names() {
            let schema = src.schema_of(&table)?.clone();
            let clustered: Option<Vec<String>> = src.clustered_key_cols(&table).ok().map(|pos| {
                pos.iter().map(|&p| schema.columns()[p].name.clone()).collect()
            });
            let indexes: Vec<(String, Vec<String>)> = src
                .index_names(&table)?
                .into_iter()
                .map(|idx| {
                    let cols = src
                        .index_key_cols(&table, &idx)
                        .map(|pos| {
                            pos.iter().map(|&p| schema.columns()[p].name.clone()).collect()
                        })
                        .unwrap_or_default();
                    (idx, cols)
                })
                .collect();
            let create = |db: &mut Database| -> DbResult<()> {
                match &clustered {
                    Some(key) => {
                        let key: Vec<&str> = key.iter().map(String::as_str).collect();
                        db.create_clustered_table(&table, schema.clone(), &key)?;
                    }
                    None => db.create_table(&table, schema.clone())?,
                }
                for (idx, cols) in &indexes {
                    let cols: Vec<&str> = cols.iter().map(String::as_str).collect();
                    db.create_index(&table, idx, &cols)?;
                }
                Ok(())
            };
            create(&mut catalog)?;
            for shard in &mut shards {
                create(shard)?;
            }

            let rows = src.scan(&table)?;
            if table.eq_ignore_ascii_case(&cfg.shard_table) {
                let dec_idx = schema.col(&cfg.shard_col)?;
                let mut slices: Vec<Vec<Row>> = vec![Vec::new(); cfg.nodes];
                for row in rows {
                    let dec = match &row.0[dec_idx] {
                        Value::Float(x) => *x,
                        Value::Real(x) => f64::from(*x),
                        Value::BigInt(x) => *x as f64,
                        Value::Int(x) => f64::from(*x),
                        // NULL / non-numeric declinations park on shard 0.
                        _ => f64::NEG_INFINITY,
                    };
                    let k = if dec.is_finite() { map.shard_of_dec(dec) } else { 0 };
                    slices[k].push(row);
                }
                for (shard, slice) in shards.iter_mut().zip(slices) {
                    shard.insert_rows(&table, slice)?;
                }
            } else if let Some(co) = cfg.co_of(&table).cloned() {
                // Co-partitioned: routed by zone through the same map as
                // the shard table, with halo duplicates on each neighbor
                // shard owning zones within `halo_zones` — so zone-band
                // joins against the shard table run shard-local. The
                // coordinator keeps the only full copy (plan probing,
                // broadcast finalization, and purely local queries).
                let zone_idx = schema.col(&co.zone_col)?;
                let mut slices: Vec<Vec<Row>> = vec![Vec::new(); cfg.nodes];
                let mut halo_rows = 0u64;
                for row in &rows {
                    let z = match &row.0[zone_idx] {
                        Value::Int(x) => Some(i64::from(*x)),
                        Value::BigInt(x) => Some(*x),
                        // NULL / non-integer zones can never satisfy a
                        // zone-band join; park one copy deterministically.
                        _ => None,
                    };
                    let mut placed = 0u64;
                    if let Some(z) = z {
                        for (k, slice) in slices.iter_mut().enumerate() {
                            let (lo, hi) = map.shard_zones(k);
                            if lo < hi
                                && z + co.halo_zones >= i64::from(lo)
                                && z - co.halo_zones < i64::from(hi)
                            {
                                slice.push(row.clone());
                                placed += 1;
                            }
                        }
                    }
                    match placed {
                        0 => {
                            let clamped = z
                                .unwrap_or(i64::MIN)
                                .clamp(i64::from(i32::MIN), i64::from(i32::MAX));
                            slices[map.shard_of_zone(clamped as i32)].push(row.clone());
                        }
                        n => halo_rows += n - 1,
                    }
                }
                stardb::zonejoin_halo_rows().add(halo_rows);
                for (shard, slice) in shards.iter_mut().zip(slices) {
                    shard.insert_rows(&table, slice)?;
                }
                catalog.insert_rows(&table, rows)?;
            } else {
                catalog.insert_rows(&table, rows.iter().cloned())?;
                for shard in &mut shards {
                    shard.insert_rows(&table, rows.iter().cloned())?;
                }
            }
        }

        Ok(DistCluster {
            cfg,
            map,
            grid,
            shards: shards.into_iter().map(Mutex::new).collect(),
            catalog: Mutex::new(catalog),
            qid: AtomicU64::new(0),
            last: Mutex::new(None),
        })
    }

    /// The shard map in force.
    pub fn shard_map(&self) -> &ShardMap {
        &self.map
    }

    /// The configuration in force.
    pub fn config(&self) -> &DistConfig {
        &self.cfg
    }

    /// Profile of the last query routed through the fabric.
    pub fn last_dist(&self) -> Option<DistProfile> {
        self.last.lock().unwrap().clone()
    }

    /// Rows of the shard table resident on shard `k` (test/bench aid).
    pub fn shard_rows(&self, k: usize) -> usize {
        let db = self.shards[k].lock().unwrap();
        db.scan(&self.cfg.shard_table).map(|r| r.len()).unwrap_or(0)
    }

    /// Execute one SQL statement against the fabric. `SELECT` scatters;
    /// `EXPLAIN [ANALYZE] SELECT` renders the distributed plan tree; all
    /// writes are rejected (the fabric is a read-only query layer).
    pub fn execute_sql(&self, sql: &str) -> DbResult<SqlOutput> {
        match parse(sql)? {
            Stmt::Select(s) => self.run_select(&s, sql, false),
            Stmt::Explain { select, analyze } => self.explain_select(&select, analyze),
            _ => Err(DbError::TypeError(
                "the distributed fabric is read-only: only SELECT and EXPLAIN route".into(),
            )),
        }
    }

    /// Execute a SELECT with scatter–gather but **no** zone pruning and
    /// **no** operator pushdown: every shard ships its whole slice and
    /// the coordinator runs the original query over the reassembled
    /// table. The naive-federation baseline the benchmarks compare
    /// against — and an independent correctness oracle.
    pub fn execute_broadcast(&self, sql: &str) -> DbResult<SqlOutput> {
        match parse(sql)? {
            Stmt::Select(s) => self.run_select(&s, sql, true),
            _ => Err(DbError::TypeError("broadcast baseline takes a SELECT".into())),
        }
    }

    /// The distributed EXPLAIN lines for `sql` (a SELECT).
    pub fn explain_lines(&self, sql: &str, analyze: bool) -> DbResult<Vec<String>> {
        let select = match parse(sql)? {
            Stmt::Select(s) => s,
            Stmt::Explain { select, .. } => select,
            _ => return Err(DbError::TypeError("EXPLAIN takes a SELECT".into())),
        };
        match self.explain_select(&select, analyze)? {
            SqlOutput::Rows { rows, .. } => Ok(rows
                .into_iter()
                .map(|r| match r.0.into_iter().next() {
                    Some(Value::Text(s)) => s,
                    other => format!("{other:?}"),
                })
                .collect()),
            _ => unreachable!("EXPLAIN yields rows"),
        }
    }

    // -- query path ---------------------------------------------------------

    fn involves_shard_table(&self, s: &Select) -> bool {
        let st = &self.cfg.shard_table;
        s.from.table.eq_ignore_ascii_case(st)
            || s.joins.iter().any(|j| j.table.table.eq_ignore_ascii_case(st))
    }

    fn run_select(&self, s: &Select, raw_sql: &str, force_broadcast: bool) -> DbResult<SqlOutput> {
        // Engine-parity probe: plan and execute the original query at the
        // coordinator (the shard-table slice there is empty). This yields
        // the exact output column names — including the engine's
        // dedup-suffix naming — and surfaces the engine's own error for
        // invalid SQL before anything is scattered.
        let probe = self.catalog.lock().unwrap().execute_sql(raw_sql)?;
        let (probe_cols, local_rows) = match probe {
            SqlOutput::Rows { columns, rows } => (columns, rows),
            other => return Ok(other),
        };

        if !self.involves_shard_table(s) {
            // Fully replicated at the coordinator: nothing to scatter.
            *self.last.lock().unwrap() = Some(DistProfile {
                mode: "local".into(),
                shards_total: self.map.shard_count(),
                ..DistProfile::default()
            });
            return Ok(SqlOutput::Rows { columns: probe_cols, rows: local_rows });
        }

        let plan = self.plan_select(s, raw_sql, force_broadcast)?;
        let t0 = Instant::now();
        let (streams, per_shard, retries, blacklisted, makespan_s) = self.scatter(&plan)?;
        let rows = self.gather(&plan, streams)?;
        let gather_ns = t0.elapsed().as_nanos() as u64;

        let rows_shipped: u64 = per_shard.iter().map(|p| p.rows).sum();
        let bytes_shipped: u64 = per_shard.iter().map(|p| p.bytes).sum();
        let c = dist_counters();
        c.subqueries.add(per_shard.len() as u64);
        c.shards_pruned.add(plan.pruned as u64);
        c.rows_shipped.add(rows_shipped);
        c.bytes_shipped.add(bytes_shipped);
        c.retries.add(retries);
        gather_latency().record(gather_ns);

        let final_sql = match &plan.gather {
            Gather::Finalize { final_sql, .. } => Some(final_sql.clone()),
            Gather::Merge { .. } => None,
        };
        *self.last.lock().unwrap() = Some(DistProfile {
            mode: plan.mode.into(),
            shards_total: self.map.shard_count(),
            contacted: per_shard.len(),
            pruned: plan.pruned,
            rows_shipped,
            bytes_shipped,
            retries,
            gather_ns,
            virtual_makespan_s: makespan_s,
            subquery: plan.subquery.clone(),
            final_sql,
            per_shard,
            blacklisted,
        });
        Ok(SqlOutput::Rows { columns: probe_cols, rows })
    }

    /// Scatter the planned subquery to every contacted shard over the
    /// routed grid scheduler. Returns per-shard encoded row payloads in
    /// ascending shard order (the merge tie-break relies on it).
    #[allow(clippy::type_complexity)]
    fn scatter(
        &self,
        plan: &DistPlan,
    ) -> DbResult<(Vec<Vec<Vec<u8>>>, Vec<ShardShip>, u64, Vec<String>, f64)> {
        let qid = self.qid.fetch_add(1, Ordering::Relaxed);
        let shards: Vec<usize> = (plan.contacted.0..=plan.contacted.1).collect();
        let jobs: Vec<RoutedJob<usize>> = shards
            .iter()
            .map(|&k| RoutedJob {
                name: format!("q{qid}.s{k}"),
                ram_mb: 256,
                home: k,
                payload: k,
            })
            .collect();
        let subquery = plan.subquery.clone();
        let (runs, report) = self.grid.run_routed(jobs, |&k, _node| {
            let mut db = self.shards[k].lock().unwrap();
            match db.execute_sql(&subquery) {
                Ok(SqlOutput::Rows { rows, .. }) => {
                    Ok(rows.iter().map(Row::encode).collect::<Vec<Vec<u8>>>())
                }
                Ok(_) => Err("subquery did not produce a row set".to_owned()),
                Err(e) => Err(format!("{e:?}")),
            }
        });

        let mut streams = Vec::with_capacity(runs.len());
        let mut per_shard = Vec::with_capacity(runs.len());
        let mut retries = 0u64;
        for (run, &k) in runs.into_iter().zip(&shards) {
            retries += u64::from(run.attempts.saturating_sub(1));
            let payloads = run.output.map_err(|e| DbError::Io {
                op: format!("scatter {}", run.name),
                detail: e,
                transient: true,
            })?;
            per_shard.push(ShardShip {
                shard: k,
                node: run.node.unwrap_or_else(|| "unscheduled".into()),
                zones: self.map.shard_zones(k),
                rows: payloads.len() as u64,
                bytes: payloads.iter().map(|p| p.len() as u64).sum(),
                attempts: run.attempts,
            });
            streams.push(payloads);
        }
        let makespan_s = report.virtual_makespan.as_secs_f64();
        Ok((streams, per_shard, retries, report.blacklisted, makespan_s))
    }

    /// Recombine gathered wire streams per the plan's gather recipe.
    fn gather(&self, plan: &DistPlan, streams: Vec<Vec<Vec<u8>>>) -> DbResult<Vec<Row>> {
        let dtypes = infer_dtypes(&streams, plan.width)?;
        match &plan.gather {
            Gather::Merge { keys, visible, distinct, limit } => {
                let batches: Vec<Vec<ColumnBatch>> = streams
                    .iter()
                    .map(|payloads| decode_wire_stream(payloads, &dtypes, self.cfg.batch_rows))
                    .collect::<DbResult<_>>()?;
                // DISTINCT must dedup *before* the top-n cut: duplicates
                // of one value arriving from several shards would
                // otherwise crowd distinct values out of the first n.
                let mut rows = match limit {
                    Some(n) if !*distinct => merge_top_n(&batches, keys, *n),
                    _ => merge_streams(&batches, keys),
                };
                if *distinct {
                    rows = dedup_sorted_rows(rows);
                }
                if let Some(n) = limit {
                    rows.truncate(*n);
                }
                for row in &mut rows {
                    row.0.truncate(*visible);
                }
                Ok(rows)
            }
            Gather::Finalize { sort_rows, temp_cols, final_sql } => {
                let mut rows: Vec<Row> = Vec::new();
                for payload in streams.iter().flatten() {
                    rows.push(Row::decode(payload, plan.width)?);
                }
                if *sort_rows {
                    // Canonical load order: the coordinator's fold (AVG,
                    // float SUM) must not depend on the shard split.
                    rows.sort_by(cmp_rows);
                }
                let mut db = self.catalog.lock().unwrap();
                let (table, temp) = match temp_cols {
                    Some(cols) => {
                        let _ = db.drop_table(SCRATCH);
                        let schema = Schema::new(
                            cols.iter()
                                .zip(&dtypes)
                                .map(|(name, dt)| Column::nullable(name, *dt))
                                .collect(),
                        );
                        db.create_table(SCRATCH, schema)?;
                        (SCRATCH.to_owned(), true)
                    }
                    None => {
                        db.truncate(&self.cfg.shard_table)?;
                        (self.cfg.shard_table.clone(), false)
                    }
                };
                let loaded = db.insert_rows(&table, rows).and_then(|_| db.execute_sql(final_sql));
                // Leave the coordinator clean even on failure.
                if temp {
                    let _ = db.drop_table(SCRATCH);
                } else {
                    let _ = db.truncate(&table);
                }
                match loaded? {
                    SqlOutput::Rows { rows, .. } => Ok(rows),
                    _ => Err(DbError::TypeError("finalize query did not yield rows".into())),
                }
            }
        }
    }

    // -- planning -----------------------------------------------------------

    /// The inclusive shard range a query must contact, and how many
    /// shards zone pruning skipped.
    fn contacted_range(&self, s: &Select) -> ((usize, usize), usize) {
        let contacted = match column_interval(s, &self.cfg.shard_col) {
            Some((lo, hi)) => {
                let lo = lo.unwrap_or(self.cfg.dec_min);
                let hi = hi.unwrap_or(self.cfg.dec_max).max(lo);
                self.map.shards_for_dec_range(lo, hi)
            }
            None => (0, self.map.shard_count() - 1),
        };
        let pruned = self.map.shard_count() - (contacted.1 - contacted.0 + 1);
        (contacted, pruned)
    }

    fn plan_select(&self, s: &Select, raw_sql: &str, force_broadcast: bool) -> DbResult<DistPlan> {
        if force_broadcast {
            return self.plan_broadcast(raw_sql, true);
        }
        // Co-partitioning gate: a query touching co-sharded tables runs
        // shard-local only when every such table carries a zone-band join
        // conjunct no wider than its provisioned halo — otherwise a pair
        // could straddle a shard boundary and the plan must broadcast.
        let mut co: Vec<(String, i64, i64)> = Vec::new();
        let mut tables = vec![&s.from];
        tables.extend(s.joins.iter().map(|j| &j.table));
        for t in &tables {
            let Some(c) = self.cfg.co_of(&t.table) else { continue };
            match zone_band_halo(s, &c.zone_col) {
                Some(dz) if dz <= c.halo_zones => co.push((c.table.clone(), dz, c.halo_zones)),
                _ => return self.plan_broadcast(raw_sql, false),
            }
        }
        let (contacted, pruned) = self.contacted_range(s);
        let aggregated = s.group_by.is_some()
            || s.items
                .iter()
                .any(|i| matches!(i, SelectItem::Expr { expr: SqlExpr::Agg { .. }, .. }));
        let planned = if aggregated {
            self.plan_agg(s, contacted, pruned)
        } else {
            self.plan_plain(s, contacted, pruned)
        };
        match planned {
            Some(mut plan) => {
                plan.co = co;
                Ok(plan)
            }
            // Shapes the pushdown rewriter does not cover fall back to
            // shipping whole slices — slower, never wrong.
            None => self.plan_broadcast(raw_sql, false),
        }
    }

    fn plan_broadcast(&self, raw_sql: &str, _all: bool) -> DbResult<DistPlan> {
        let width = {
            let db = self.catalog.lock().unwrap();
            db.schema_of(&self.cfg.shard_table)?.columns().len()
        };
        Ok(DistPlan {
            mode: "broadcast",
            subquery: format!("SELECT * FROM {}", self.cfg.shard_table),
            width,
            contacted: (0, self.map.shard_count() - 1),
            pruned: 0,
            gather: Gather::Finalize {
                sort_rows: true,
                temp_cols: None,
                final_sql: raw_sql.to_owned(),
            },
            co: Vec::new(),
        })
    }

    /// Rewrite a non-aggregate SELECT: alias every output expression,
    /// append hidden ORDER BY columns the projection dropped, extend the
    /// sort to a canonical total order, and push LIMIT per shard.
    fn plan_plain(
        &self,
        s: &Select,
        contacted: (usize, usize),
        pruned: usize,
    ) -> Option<DistPlan> {
        // Expand the projection the way the planner's scope does: `*`
        // pulls every visible column, FROM table first, joins in order.
        let mut out: Vec<(SqlExpr, String)> = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    let db = self.catalog.lock().unwrap();
                    let mut tables = vec![&s.from];
                    tables.extend(s.joins.iter().map(|j| &j.table));
                    for t in tables {
                        let schema = db.schema_of(&t.table).ok()?;
                        for c in schema.columns() {
                            out.push((
                                SqlExpr::Col(ColRef {
                                    table: Some(t.alias.clone()),
                                    column: c.name.clone(),
                                }),
                                c.name.to_ascii_lowercase(),
                            ));
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    out.push((expr.clone(), output_name(expr, alias)));
                }
            }
        }
        let visible = out.len();

        // ORDER BY resolution mirrors the engine: qualified or bare name
        // against pre-dedup output names, first match wins; a miss on a
        // plain non-DISTINCT select becomes a hidden appended column.
        let mut explicit: Vec<SortKey> = Vec::new();
        for item in &s.order_by {
            let qualified = display_col(&item.col);
            let bare = item.col.column.to_ascii_lowercase();
            let pos = out.iter().position(|(_, n)| *n == qualified || *n == bare);
            let pos = match pos {
                Some(p) => p,
                None if s.distinct => return None, // engine rejects; probe already did
                None => {
                    out.push((SqlExpr::Col(item.col.clone()), String::new()));
                    out.len() - 1
                }
            };
            explicit.push(SortKey { col: pos, desc: item.desc });
        }
        let keys = canonical_keys(out.len(), &explicit);

        let sub = Select {
            distinct: s.distinct,
            items: out
                .iter()
                .enumerate()
                .map(|(k, (expr, _))| SelectItem::Expr {
                    expr: expr.clone(),
                    alias: Some(format!("__c{k}")),
                })
                .collect(),
            from: s.from.clone(),
            joins: s.joins.clone(),
            filter: s.filter.clone(),
            group_by: None,
            having: None,
            order_by: keys
                .iter()
                .map(|k| OrderItem {
                    col: ColRef { table: None, column: format!("__c{}", k.col) },
                    desc: k.desc,
                })
                .collect(),
            limit: s.limit,
        };
        let mode = if s.limit.is_some() && !explicit.is_empty() {
            "top-n"
        } else if s.distinct {
            "merge+dedup"
        } else {
            "merge"
        };
        Some(DistPlan {
            mode,
            subquery: render_select(&sub),
            width: out.len(),
            contacted,
            pruned,
            gather: Gather::Merge { keys, visible, distinct: s.distinct, limit: s.limit },
            co: Vec::new(),
        })
    }

    /// Rewrite an aggregate SELECT. Decomposable aggregates (`COUNT`,
    /// `MIN`, `MAX`, integer `SUM`) ship per-shard *partials* that a
    /// finalization query folds (`COUNT` → `SUM` of partial counts);
    /// everything else (`AVG`, float `SUM`, `HAVING`) ships the raw
    /// argument columns and aggregates once at the coordinator.
    fn plan_agg(&self, s: &Select, contacted: (usize, usize), pruned: usize) -> Option<DistPlan> {
        #[derive(Clone, Copy)]
        enum Kind {
            Group,
            Agg(usize),
        }
        let group = s.group_by.as_ref();
        let mut aggs: Vec<(AggFunc, Option<SqlExpr>)> = Vec::new();
        let mut kinds: Vec<Kind> = Vec::new();
        let mut names: Vec<String> = Vec::new();
        for item in &s.items {
            let SelectItem::Expr { expr, alias } = item else { return None };
            names.push(output_name(expr, alias));
            match expr {
                SqlExpr::Agg { func, arg } => {
                    kinds.push(Kind::Agg(push_agg(&mut aggs, *func, arg.as_deref())));
                }
                SqlExpr::Col(c) if group.is_some_and(|g| same_col(c, g)) => {
                    kinds.push(Kind::Group);
                }
                _ => return None,
            }
        }
        // HAVING aggregates ship alongside the projection's.
        let having_rewritten = match &s.having {
            Some(h) => Some(rewrite_having(h, group, &mut aggs)?),
            None => None,
        };

        let partial_ok = s.having.is_none()
            && !s.distinct
            && aggs.iter().all(|(f, a)| self.partial_eligible(s, *f, a.as_ref()));

        // Map each original ORDER BY item to a final-query output alias.
        let order_by: Vec<OrderItem> = s
            .order_by
            .iter()
            .map(|o| {
                let qualified = display_col(&o.col);
                let bare = o.col.column.to_ascii_lowercase();
                names
                    .iter()
                    .position(|n| *n == qualified || *n == bare)
                    .map(|j| OrderItem {
                        col: ColRef { table: None, column: format!("__f{j}") },
                        desc: o.desc,
                    })
            })
            .collect::<Option<_>>()?;

        let scratch_ref = TableRef { table: SCRATCH.to_owned(), alias: SCRATCH.to_owned() };
        let group_col = |_: &ColRef| ColRef { table: None, column: "__g0".to_owned() };

        if partial_ok {
            // Per-shard: the original aggregation, shipped as partials.
            let mut items: Vec<SelectItem> = Vec::new();
            let mut cols: Vec<String> = Vec::new();
            if let Some(g) = group {
                items.push(SelectItem::Expr {
                    expr: SqlExpr::Col((*g).clone()),
                    alias: Some("__g0".to_owned()),
                });
                cols.push("__g0".to_owned());
            }
            for (i, (func, arg)) in aggs.iter().enumerate() {
                items.push(SelectItem::Expr {
                    expr: SqlExpr::Agg {
                        func: *func,
                        arg: arg.clone().map(Box::new),
                    },
                    alias: Some(format!("__p{i}")),
                });
                cols.push(format!("__p{i}"));
            }
            let sub = Select {
                distinct: false,
                items,
                from: s.from.clone(),
                joins: s.joins.clone(),
                filter: s.filter.clone(),
                group_by: s.group_by.clone(),
                having: None,
                order_by: vec![],
                limit: None,
            };
            // Final: fold partials (COUNT folds with SUM).
            let final_items: Vec<SelectItem> = kinds
                .iter()
                .enumerate()
                .map(|(j, kind)| match kind {
                    Kind::Group => SelectItem::Expr {
                        expr: SqlExpr::Col(group_col(group.unwrap())),
                        alias: Some(format!("__f{j}")),
                    },
                    Kind::Agg(i) => {
                        let fold = match aggs[*i].0 {
                            AggFunc::Count | AggFunc::Sum => AggFunc::Sum,
                            AggFunc::Min => AggFunc::Min,
                            AggFunc::Max => AggFunc::Max,
                            AggFunc::Avg => unreachable!("AVG is never partial"),
                        };
                        SelectItem::Expr {
                            expr: SqlExpr::Agg {
                                func: fold,
                                arg: Some(Box::new(SqlExpr::Col(ColRef {
                                    table: None,
                                    column: format!("__p{i}"),
                                }))),
                            },
                            alias: Some(format!("__f{j}")),
                        }
                    }
                })
                .collect();
            let final_q = Select {
                distinct: false,
                items: final_items,
                from: scratch_ref,
                joins: vec![],
                filter: None,
                group_by: group.map(group_col),
                having: None,
                order_by,
                limit: s.limit,
            };
            let width = cols.len();
            return Some(DistPlan {
                mode: "partial-agg",
                subquery: render_select(&sub),
                width,
                contacted,
                pruned,
                gather: Gather::Finalize {
                    sort_rows: false,
                    temp_cols: Some(cols),
                    final_sql: render_select(&final_q),
                },
                co: Vec::new(),
            });
        }

        // Raw mode: ship the group key and every aggregate argument as
        // plain columns; aggregate exactly once at the coordinator.
        let mut items: Vec<SelectItem> = Vec::new();
        let mut cols: Vec<String> = Vec::new();
        if let Some(g) = group {
            items.push(SelectItem::Expr {
                expr: SqlExpr::Col((*g).clone()),
                alias: Some("__g0".to_owned()),
            });
            cols.push("__g0".to_owned());
        }
        for (i, (_, arg)) in aggs.iter().enumerate() {
            if let Some(arg) = arg {
                items.push(SelectItem::Expr {
                    expr: arg.clone(),
                    alias: Some(format!("__a{i}")),
                });
                cols.push(format!("__a{i}"));
            }
        }
        if items.is_empty() {
            // COUNT(*)-only and group-less: ship a 1 per matching row.
            items.push(SelectItem::Expr {
                expr: SqlExpr::Integer(1),
                alias: Some("__one".to_owned()),
            });
            cols.push("__one".to_owned());
        }
        let sub = Select {
            distinct: false,
            items,
            from: s.from.clone(),
            joins: s.joins.clone(),
            filter: s.filter.clone(),
            group_by: None,
            having: None,
            order_by: vec![],
            limit: None,
        };
        let final_items: Vec<SelectItem> = kinds
            .iter()
            .enumerate()
            .map(|(j, kind)| match kind {
                Kind::Group => SelectItem::Expr {
                    expr: SqlExpr::Col(group_col(group.unwrap())),
                    alias: Some(format!("__f{j}")),
                },
                Kind::Agg(i) => SelectItem::Expr {
                    expr: scratch_agg(&aggs, *i),
                    alias: Some(format!("__f{j}")),
                },
            })
            .collect();
        let final_q = Select {
            distinct: false,
            items: final_items,
            from: scratch_ref,
            joins: vec![],
            filter: None,
            group_by: group.map(group_col),
            having: having_rewritten,
            order_by,
            limit: s.limit,
        };
        let width = cols.len();
        Some(DistPlan {
            mode: "raw-agg",
            subquery: render_select(&sub),
            width,
            contacted,
            pruned,
            gather: Gather::Finalize {
                sort_rows: true,
                temp_cols: Some(cols),
                final_sql: render_select(&final_q),
            },
            co: Vec::new(),
        })
    }

    /// Whether one aggregate decomposes into exact per-shard partials.
    /// Float `SUM` does not: the partial sums would fold in a different
    /// order per node count, breaking bytewise identity across N.
    fn partial_eligible(&self, s: &Select, func: AggFunc, arg: Option<&SqlExpr>) -> bool {
        match func {
            AggFunc::Count | AggFunc::Min | AggFunc::Max => true,
            AggFunc::Avg => false,
            AggFunc::Sum => {
                let Some(SqlExpr::Col(c)) = arg else { return false };
                matches!(
                    self.resolve_dtype(s, c),
                    Some(DataType::Int | DataType::BigInt)
                )
            }
        }
    }

    /// Resolve a column reference's declared type against the catalog.
    fn resolve_dtype(&self, s: &Select, c: &ColRef) -> Option<DataType> {
        let db = self.catalog.lock().unwrap();
        let mut tables = vec![&s.from];
        tables.extend(s.joins.iter().map(|j| &j.table));
        for t in tables {
            if let Some(q) = &c.table {
                if !q.eq_ignore_ascii_case(&t.alias) {
                    continue;
                }
            }
            if let Ok(schema) = db.schema_of(&t.table) {
                if let Ok(pos) = schema.col(&c.column) {
                    return Some(schema.columns()[pos].dtype);
                }
            }
        }
        None
    }

    // -- EXPLAIN ------------------------------------------------------------

    fn explain_select(&self, s: &Select, analyze: bool) -> DbResult<SqlOutput> {
        let raw = render_select(s);
        let mut lines: Vec<String> = Vec::new();
        if !self.involves_shard_table(s) {
            lines.push(
                "gather[local]: no shard table referenced; executed at the coordinator".into(),
            );
            let prefix = if analyze { "EXPLAIN ANALYZE " } else { "EXPLAIN " };
            let out = self.catalog.lock().unwrap().execute_sql(&format!("{prefix}{raw}"))?;
            push_engine_lines(&mut lines, out, "  ");
            return Ok(explain_rows(lines));
        }

        let plan = self.plan_select(s, &raw, false)?;
        let profile = if analyze {
            self.run_select(s, &raw, false)?;
            self.last_dist()
        } else {
            None
        };

        let (zlo, zhi) = self.map.zone_span();
        let n_contacted = plan.contacted.1 - plan.contacted.0 + 1;
        let mut head = format!(
            "gather[{}]: shards {}/{} contacted, {} pruned by zone range, zones {}..={}, wire batch {} rows",
            plan.mode,
            n_contacted,
            self.map.shard_count(),
            plan.pruned,
            zlo,
            zhi,
            self.cfg.batch_rows,
        );
        if let Some(p) = &profile {
            head.push_str(&format!(
                ", rows shipped {}, bytes {}, retries {}, gather {:.3}ms",
                p.rows_shipped,
                p.bytes_shipped,
                p.retries,
                p.gather_ns as f64 / 1e6
            ));
        }
        lines.push(head);
        for (table, band, halo) in &plan.co {
            lines.push(format!(
                "  exchange[co-partitioned]: {table} zone-aligned with {}, \
                 join band \u{b1}{band} zones within halo \u{b1}{halo} \u{2014} \
                 shard-local join, no probe-side shuffle",
                self.cfg.shard_table,
            ));
        }
        match &plan.gather {
            Gather::Merge { keys, visible, distinct, limit } => {
                let mut l = format!(
                    "  exchange[merge]: {} sort key(s) over {} shipped col(s), {} visible",
                    keys.len(),
                    plan.width,
                    visible
                );
                if *distinct {
                    l.push_str(", distinct");
                }
                if let Some(n) = limit {
                    l.push_str(&format!(", limit {n}"));
                }
                lines.push(l);
            }
            Gather::Finalize { sort_rows, temp_cols, final_sql } => {
                let target = match temp_cols {
                    Some(cols) => format!("scratch({})", cols.join(", ")),
                    None => self.cfg.shard_table.clone(),
                };
                let order = if *sort_rows { "canonical order" } else { "arrival order" };
                lines.push(format!("  exchange[gather-insert]: into {target}, {order}"));
                lines.push(format!("  finalize: {final_sql}"));
            }
        }
        let prefix = if analyze { "EXPLAIN ANALYZE " } else { "EXPLAIN " };
        for k in plan.contacted.0..=plan.contacted.1 {
            let (za, zb) = self.map.shard_zones(k);
            let (da, db_hi) = self.map.shard_dec_range(k);
            let mut l = format!(
                "  shard {k}: zones [{za}..{zb}), dec [{da:.4}..{db_hi:.4}), home db{k}"
            );
            if let Some(p) = &profile {
                if let Some(ship) = p.per_shard.iter().find(|x| x.shard == k) {
                    l.push_str(&format!(
                        ", rows {}, bytes {}, attempts {}, node {}",
                        ship.rows, ship.bytes, ship.attempts, ship.node
                    ));
                }
            }
            lines.push(l);
            let out = {
                let mut db = self.shards[k].lock().unwrap();
                db.execute_sql(&format!("{prefix}{}", plan.subquery))?
            };
            push_engine_lines(&mut lines, out, "    ");
        }
        Ok(explain_rows(lines))
    }
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Lowercased engine output name for a projection item (pre-dedup).
fn output_name(expr: &SqlExpr, alias: &Option<String>) -> String {
    if let Some(a) = alias {
        return a.to_ascii_lowercase();
    }
    match expr {
        SqlExpr::Col(c) => c.column.to_ascii_lowercase(),
        SqlExpr::Agg { func, .. } => format!("{func:?}").to_ascii_lowercase(),
        _ => "expr".to_owned(),
    }
}

/// Lowercased qualified display form (`t.c` / `c`), as the engine matches
/// ORDER BY targets.
fn display_col(c: &ColRef) -> String {
    match &c.table {
        Some(t) => format!("{}.{}", t.to_ascii_lowercase(), c.column.to_ascii_lowercase()),
        None => c.column.to_ascii_lowercase(),
    }
}

/// Whether a projection column reference names the GROUP BY column.
fn same_col(c: &ColRef, g: &ColRef) -> bool {
    c.column.eq_ignore_ascii_case(&g.column)
}

/// Intern an aggregate call, deduplicating identical (func, arg) pairs.
fn push_agg(
    aggs: &mut Vec<(AggFunc, Option<SqlExpr>)>,
    func: AggFunc,
    arg: Option<&SqlExpr>,
) -> usize {
    let arg = arg.cloned();
    if let Some(i) = aggs.iter().position(|(f, a)| *f == func && *a == arg) {
        return i;
    }
    aggs.push((func, arg));
    aggs.len() - 1
}

/// The coordinator-side aggregate over raw shipped columns: `COUNT(*)`
/// stays `COUNT(*)` (one scratch row per source row); everything else
/// re-aggregates its shipped argument column.
fn scratch_agg(aggs: &[(AggFunc, Option<SqlExpr>)], i: usize) -> SqlExpr {
    let (func, arg) = &aggs[i];
    SqlExpr::Agg {
        func: *func,
        arg: arg.as_ref().map(|_| {
            Box::new(SqlExpr::Col(ColRef { table: None, column: format!("__a{i}") }))
        }),
    }
}

/// Rewrite a HAVING predicate for the raw-mode finalization query:
/// aggregate calls point at shipped argument columns, bare group-column
/// references become the scratch group key. Returns `None` when the
/// predicate contains something the rewriter cannot place.
fn rewrite_having(
    e: &SqlExpr,
    group: Option<&ColRef>,
    aggs: &mut Vec<(AggFunc, Option<SqlExpr>)>,
) -> Option<SqlExpr> {
    Some(match e {
        SqlExpr::Agg { func, arg } => {
            let i = push_agg(aggs, *func, arg.as_deref());
            scratch_agg(aggs, i)
        }
        SqlExpr::Col(c) if group.is_some_and(|g| same_col(c, g)) => {
            SqlExpr::Col(ColRef { table: None, column: "__g0".to_owned() })
        }
        SqlExpr::Col(_) => return None,
        SqlExpr::Null | SqlExpr::Number(_) | SqlExpr::Integer(_) | SqlExpr::Str(_) => e.clone(),
        SqlExpr::Neg(x) => SqlExpr::Neg(Box::new(rewrite_having(x, group, aggs)?)),
        SqlExpr::Bin { op, left, right } => SqlExpr::Bin {
            op: *op,
            left: Box::new(rewrite_having(left, group, aggs)?),
            right: Box::new(rewrite_having(right, group, aggs)?),
        },
        SqlExpr::Between { expr, lo, hi } => SqlExpr::Between {
            expr: Box::new(rewrite_having(expr, group, aggs)?),
            lo: Box::new(rewrite_having(lo, group, aggs)?),
            hi: Box::new(rewrite_having(hi, group, aggs)?),
        },
        SqlExpr::IsNull { expr, negated } => SqlExpr::IsNull {
            expr: Box::new(rewrite_having(expr, group, aggs)?),
            negated: *negated,
        },
        SqlExpr::Not(x) => SqlExpr::Not(Box::new(rewrite_having(x, group, aggs)?)),
        SqlExpr::Func { name, args } => SqlExpr::Func {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| rewrite_having(a, group, aggs))
                .collect::<Option<_>>()?,
        },
    })
}

/// First non-NULL wire tag per column across every stream, in shard
/// order; all-NULL columns fall back to `BigInt` (NULL decodes under any
/// dtype).
fn infer_dtypes(streams: &[Vec<Vec<u8>>], width: usize) -> DbResult<Vec<DataType>> {
    let mut dtypes: Vec<Option<DataType>> = vec![None; width];
    'outer: for payload in streams.iter().flatten() {
        if dtypes.iter().all(|d| d.is_some()) {
            break 'outer;
        }
        let row = Row::decode(payload, width)?;
        for (slot, v) in dtypes.iter_mut().zip(&row.0) {
            if slot.is_none() {
                *slot = v.dtype();
            }
        }
    }
    Ok(dtypes.into_iter().map(|d| d.unwrap_or(DataType::BigInt)).collect())
}

/// Lexicographic canonical row order (NULLs first, floats total-ordered).
fn cmp_rows(a: &Row, b: &Row) -> CmpOrdering {
    for (x, y) in a.0.iter().zip(&b.0) {
        let c = x.total_cmp(y);
        if c != CmpOrdering::Equal {
            return c;
        }
    }
    CmpOrdering::Equal
}

fn explain_rows(lines: Vec<String>) -> SqlOutput {
    SqlOutput::Rows {
        columns: vec!["plan".to_owned()],
        rows: lines.into_iter().map(|l| Row(vec![Value::Text(l)])).collect(),
    }
}

fn push_engine_lines(lines: &mut Vec<String>, out: SqlOutput, indent: &str) {
    if let SqlOutput::Rows { rows, .. } = out {
        for row in rows {
            if let Some(Value::Text(s)) = row.0.into_iter().next() {
                lines.push(format!("{indent}{s}"));
            }
        }
    }
}

#[cfg(test)]
mod tests;
