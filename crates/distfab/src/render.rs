//! Render a parsed [`Select`] back to SQL text.
//!
//! The fabric plans against the AST but ships *text* to shard nodes — the
//! wire protocol a real federation uses, and the reason subqueries stay
//! engine-agnostic. The renderer is conservative: every compound
//! expression is parenthesized, so operator precedence never depends on
//! the parser agreeing with the printer. Float literals use Rust's `{:?}`
//! formatting, which round-trips exactly through the SQL lexer (it
//! accepts exponents and bare fractions).

use stardb::sql::ast::{
    AggFunc, ColRef, Join, OrderItem, Select, SelectItem, SqlBinOp, SqlExpr,
};

/// Render a column reference, qualified when the AST is.
pub fn render_col(c: &ColRef) -> String {
    match &c.table {
        Some(t) => format!("{t}.{}", c.column),
        None => c.column.clone(),
    }
}

fn render_agg(func: AggFunc, arg: &Option<Box<SqlExpr>>) -> String {
    let name = match func {
        AggFunc::Count => "COUNT",
        AggFunc::Min => "MIN",
        AggFunc::Max => "MAX",
        AggFunc::Sum => "SUM",
        AggFunc::Avg => "AVG",
    };
    match arg {
        None => format!("{name}(*)"),
        Some(e) => format!("{name}({})", render_expr(e)),
    }
}

/// Render an expression to SQL text that reparses to the same semantics.
pub fn render_expr(e: &SqlExpr) -> String {
    match e {
        SqlExpr::Col(c) => render_col(c),
        SqlExpr::Null => "NULL".to_owned(),
        SqlExpr::Number(x) => format!("{x:?}"),
        SqlExpr::Integer(i) => {
            if *i < 0 {
                format!("({i})")
            } else {
                format!("{i}")
            }
        }
        SqlExpr::Str(s) => format!("'{}'", s.replace('\'', "''")),
        SqlExpr::Neg(inner) => format!("(-{})", render_expr(inner)),
        SqlExpr::Bin { op, left, right } => {
            let op = match op {
                SqlBinOp::Add => "+",
                SqlBinOp::Sub => "-",
                SqlBinOp::Mul => "*",
                SqlBinOp::Div => "/",
                SqlBinOp::Eq => "=",
                SqlBinOp::Ne => "<>",
                SqlBinOp::Lt => "<",
                SqlBinOp::Le => "<=",
                SqlBinOp::Gt => ">",
                SqlBinOp::Ge => ">=",
                SqlBinOp::And => "AND",
                SqlBinOp::Or => "OR",
            };
            format!("({} {op} {})", render_expr(left), render_expr(right))
        }
        SqlExpr::Between { expr, lo, hi } => format!(
            "({} BETWEEN {} AND {})",
            render_expr(expr),
            render_expr(lo),
            render_expr(hi)
        ),
        SqlExpr::IsNull { expr, negated } => {
            let not = if *negated { " NOT" } else { "" };
            format!("({} IS{not} NULL)", render_expr(expr))
        }
        SqlExpr::Not(inner) => format!("(NOT {})", render_expr(inner)),
        SqlExpr::Func { name, args } => {
            let args: Vec<String> = args.iter().map(render_expr).collect();
            format!("{name}({})", args.join(", "))
        }
        SqlExpr::Agg { func, arg } => render_agg(*func, arg),
    }
}

fn render_join(j: &Join) -> String {
    let t = if j.table.alias.eq_ignore_ascii_case(&j.table.table) {
        j.table.table.clone()
    } else {
        format!("{} AS {}", j.table.table, j.table.alias)
    };
    match &j.on {
        Some(on) => format!(" JOIN {t} ON {}", render_expr(on)),
        None => format!(" CROSS JOIN {t}"),
    }
}

fn render_order(items: &[OrderItem]) -> String {
    let parts: Vec<String> = items
        .iter()
        .map(|o| {
            if o.desc {
                format!("{} DESC", render_col(&o.col))
            } else {
                render_col(&o.col)
            }
        })
        .collect();
    parts.join(", ")
}

/// Render a full SELECT statement.
pub fn render_select(s: &Select) -> String {
    let mut out = String::from("SELECT ");
    if s.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = s
        .items
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => "*".to_owned(),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => format!("{} AS {a}", render_expr(expr)),
                None => render_expr(expr),
            },
        })
        .collect();
    out.push_str(&items.join(", "));
    out.push_str(" FROM ");
    out.push_str(&s.from.table);
    if !s.from.alias.eq_ignore_ascii_case(&s.from.table) {
        out.push_str(" AS ");
        out.push_str(&s.from.alias);
    }
    for j in &s.joins {
        out.push_str(&render_join(j));
    }
    if let Some(f) = &s.filter {
        out.push_str(" WHERE ");
        out.push_str(&render_expr(f));
    }
    if let Some(g) = &s.group_by {
        out.push_str(" GROUP BY ");
        out.push_str(&render_col(g));
    }
    if let Some(h) = &s.having {
        out.push_str(" HAVING ");
        out.push_str(&render_expr(h));
    }
    if !s.order_by.is_empty() {
        out.push_str(" ORDER BY ");
        out.push_str(&render_order(&s.order_by));
    }
    if let Some(n) = s.limit {
        out.push_str(&format!(" LIMIT {n}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use stardb::sql::ast::Stmt;
    use stardb::sql::parse;

    fn roundtrip(sql: &str) -> Select {
        match parse(sql).expect("parse") {
            Stmt::Select(s) => *s,
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn rendered_select_reparses_to_same_ast() {
        let cases = [
            "SELECT * FROM Galaxy",
            "SELECT g.ra, g.dec FROM Galaxy g WHERE g.dec BETWEEN -1.25 AND 2.5e-1",
            "SELECT objid AS id FROM Galaxy WHERE (mag IS NOT NULL) AND NOT (cls = 3)",
            "SELECT DISTINCT cls FROM Galaxy ORDER BY cls",
            "SELECT cls, COUNT(*), SUM(cls), AVG(dec) FROM Galaxy GROUP BY cls",
            "SELECT g.objid FROM Galaxy g JOIN Label l ON g.cls = l.cls WHERE l.weight > 2",
            "SELECT g.objid, l.cls FROM Galaxy g CROSS JOIN Label l LIMIT 7",
            "SELECT objid FROM Galaxy WHERE ABS(dec) < 0.5 ORDER BY ra DESC, objid LIMIT 3",
            "SELECT cls FROM Galaxy GROUP BY cls HAVING COUNT(*) > 10",
            "SELECT objid FROM Galaxy WHERE mag > -1.5 AND ra * 2.0 < 400.0",
        ];
        for sql in cases {
            let ast = roundtrip(sql);
            let rendered = render_select(&ast);
            let again = roundtrip(&rendered);
            assert_eq!(ast, again, "render not faithful for {sql:?}: {rendered:?}");
        }
    }

    #[test]
    fn rendered_text_is_stable_under_double_render() {
        let sql = "SELECT g.ra AS x FROM Galaxy g WHERE g.dec >= -3.0 ORDER BY x DESC LIMIT 9";
        let once = render_select(&roundtrip(sql));
        let twice = render_select(&roundtrip(&once));
        assert_eq!(once, twice);
    }

    #[test]
    fn string_literals_escape_quotes() {
        let e = SqlExpr::Str("it's".to_owned());
        assert_eq!(render_expr(&e), "'it''s'");
    }
}
