//! Fabric unit tests: identity across node counts, pruning, failover.

use super::*;

fn lcg(x: &mut u64) -> u64 {
    *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *x >> 11
}

/// A miniature survey catalog in the corpus shape: a sharded `Galaxy`
/// table spanning dec [-5, 5) and a small replicated `Label` dimension.
fn sample_db(n: usize) -> Database {
    let mut db = Database::new(DbConfig::in_memory());
    db.create_clustered_table(
        "Galaxy",
        Schema::new(vec![
            Column::new("objid", DataType::BigInt),
            Column::new("ra", DataType::Float),
            Column::new("dec", DataType::Float),
            Column::nullable("mag", DataType::Real),
            Column::new("cls", DataType::Int),
        ]),
        &["objid"],
    )
    .unwrap();
    db.create_index("Galaxy", "idx_ra", &["ra", "dec"]).unwrap();
    db.create_clustered_table(
        "Label",
        Schema::new(vec![
            Column::new("cls", DataType::BigInt),
            Column::new("weight", DataType::Int),
        ]),
        &["cls"],
    )
    .unwrap();
    let mut x = 0xC0FFEE_u64;
    let mut rows = Vec::new();
    for i in 0..n {
        let ra = 170.0 + (lcg(&mut x) % 20_000) as f64 / 1000.0;
        let dec = -5.0 + (lcg(&mut x) % 10_000) as f64 / 1000.0;
        let mag = if lcg(&mut x) % 7 == 0 {
            Value::Null
        } else {
            Value::Real(14.0 + (lcg(&mut x) % 800) as f32 / 100.0)
        };
        let cls = (lcg(&mut x) % 6) as i32;
        rows.push(Row(vec![
            Value::BigInt(i as i64),
            Value::Float(ra),
            Value::Float(dec),
            mag,
            Value::Int(cls),
        ]));
    }
    db.insert_rows("Galaxy", rows).unwrap();
    for cls in 0..6 {
        db.insert("Label", Row(vec![Value::BigInt(cls), Value::Int((cls as i32) * 3 + 1)]))
            .unwrap();
    }
    db
}

fn fabric(src: &Database, nodes: usize) -> DistCluster {
    DistCluster::build(src, DistConfig::new(nodes, "Galaxy", "dec", -5.0, 5.0)).unwrap()
}

fn engine_rows(db: &mut Database, sql: &str) -> Vec<Row> {
    match db.execute_sql(sql).unwrap() {
        SqlOutput::Rows { rows, .. } => rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn fabric_rows(f: &DistCluster, sql: &str) -> Vec<Row> {
    match f.execute_sql(sql).unwrap() {
        SqlOutput::Rows { rows, .. } => rows,
        other => panic!("expected rows, got {other:?}"),
    }
}

fn multiset(rows: &[Row]) -> Vec<Vec<u8>> {
    let mut m: Vec<Vec<u8>> = rows.iter().map(Row::encode).collect();
    m.sort();
    m
}

/// Positional comparison with a relative float tolerance, for aggregate
/// outputs whose fold order legitimately differs from the engine's.
fn assert_rows_approx_eq(engine: &[Row], fabric: &[Row], sql: &str) {
    assert_eq!(engine.len(), fabric.len(), "row count diverged for {sql}");
    for (a, b) in engine.iter().zip(fabric) {
        assert_eq!(a.0.len(), b.0.len(), "arity diverged for {sql}");
        for (x, y) in a.0.iter().zip(&b.0) {
            match (x, y) {
                (Value::Float(p), Value::Float(q)) => {
                    let scale = p.abs().max(q.abs()).max(1.0);
                    assert!(
                        (p - q).abs() <= 1e-9 * scale,
                        "float diverged beyond ulp noise for {sql}: {p} vs {q}"
                    );
                }
                _ => assert_eq!(x, y, "value diverged for {sql}"),
            }
        }
    }
}

const QUERIES: &[&str] = &[
    "SELECT objid, ra, dec FROM Galaxy WHERE dec BETWEEN -1.5 AND 0.5 ORDER BY objid",
    "SELECT objid, mag FROM Galaxy WHERE ra > 180.0 AND dec >= 2.0 AND dec < 4.0 ORDER BY objid",
    "SELECT objid FROM Galaxy WHERE mag IS NULL ORDER BY objid",
    "SELECT DISTINCT cls FROM Galaxy ORDER BY cls",
    "SELECT cls, COUNT(*), SUM(cls), MIN(mag), MAX(ra) FROM Galaxy GROUP BY cls",
    "SELECT COUNT(*) FROM Galaxy WHERE dec < -4.5",
    "SELECT cls, AVG(dec) FROM Galaxy WHERE dec > 1.0 GROUP BY cls",
    "SELECT objid, cls FROM Galaxy ORDER BY cls DESC, objid LIMIT 11",
    "SELECT g.objid, l.weight FROM Galaxy g JOIN Label l ON g.cls = l.cls \
     WHERE g.dec BETWEEN 0.0 AND 1.0 ORDER BY g.objid",
    "SELECT cls, COUNT(*) FROM Galaxy GROUP BY cls HAVING COUNT(*) > 20",
    "SELECT COUNT(*) FROM Galaxy WHERE dec > 99.0",
];

#[test]
fn answers_are_identical_across_node_counts_and_match_the_engine() {
    let mut src = sample_db(400);
    let fabrics: Vec<DistCluster> = [1, 2, 4, 8].iter().map(|&n| fabric(&src, n)).collect();
    for sql in QUERIES {
        let reference = fabric_rows(&fabrics[0], sql);
        for f in &fabrics[1..] {
            let got = fabric_rows(f, sql);
            assert_eq!(
                multiset(&reference).len(),
                multiset(&got).len(),
                "row count diverged for {sql}"
            );
            assert_eq!(
                reference.iter().map(Row::encode).collect::<Vec<_>>(),
                got.iter().map(Row::encode).collect::<Vec<_>>(),
                "byte identity broke across node counts for {sql}"
            );
        }
        // Engine agreement as a multiset (the fabric's output order is
        // canonical; the engine's is scan/plan order). AVG folds in
        // canonical row order at the coordinator, so it may differ from
        // the engine's scan-order fold in the last ulp — compare those
        // with a relative tolerance (DESIGN.md §6i).
        let engine = engine_rows(&mut src, sql);
        if sql.contains("AVG") {
            assert_rows_approx_eq(&engine, &reference, sql);
        } else {
            assert_eq!(multiset(&engine), multiset(&reference), "engine disagreement for {sql}");
        }
    }
}

#[test]
fn shard_slices_cover_the_catalog_exactly() {
    let src = sample_db(300);
    let f = fabric(&src, 8);
    let total: usize = (0..8).map(|k| f.shard_rows(k)).sum();
    assert_eq!(total, 300, "sharding must partition rows exactly");
}

#[test]
fn zone_pruning_contacts_fewer_shards_and_ships_fewer_rows() {
    let src = sample_db(400);
    let f = fabric(&src, 8);
    let sql = "SELECT objid, dec FROM Galaxy WHERE dec BETWEEN -1.0 AND 0.0 ORDER BY objid";
    let pruned_rows = fabric_rows(f_ref(&f), sql);
    let p = f.last_dist().unwrap();
    assert!(p.contacted < 8, "pruning should skip shards, contacted {}", p.contacted);
    assert!(p.pruned > 0);
    let pruned_shipped = p.rows_shipped;

    let broadcast_rows = match f.execute_broadcast(sql).unwrap() {
        SqlOutput::Rows { rows, .. } => rows,
        _ => unreachable!(),
    };
    let b = f.last_dist().unwrap();
    assert_eq!(b.mode, "broadcast");
    assert_eq!(b.contacted, 8);
    assert_eq!(multiset(&pruned_rows), multiset(&broadcast_rows));
    assert!(
        pruned_shipped < b.rows_shipped,
        "pruned plan shipped {pruned_shipped} rows, broadcast {}",
        b.rows_shipped
    );
}

fn f_ref(f: &DistCluster) -> &DistCluster {
    f
}

#[test]
fn replicated_only_queries_stay_local() {
    let src = sample_db(50);
    let f = fabric(&src, 4);
    let rows = fabric_rows(&f, "SELECT cls, weight FROM Label ORDER BY cls");
    assert_eq!(rows.len(), 6);
    assert_eq!(f.last_dist().unwrap().mode, "local");
}

#[test]
fn explain_renders_the_distributed_tree() {
    let src = sample_db(200);
    let f = fabric(&src, 4);
    let sql = "SELECT objid FROM Galaxy WHERE dec BETWEEN 2.0 AND 3.0 ORDER BY objid";
    let lines = f.explain_lines(sql, false).unwrap();
    assert!(lines[0].starts_with("gather["), "missing gather head: {lines:?}");
    assert!(lines[0].contains("pruned by zone range"));
    assert!(lines.iter().any(|l| l.trim_start().starts_with("shard ")));
    assert!(
        lines.iter().any(|l| l.contains("scan") || l.contains("seek")),
        "per-shard engine subplans missing: {lines:?}"
    );

    let analyzed = f.explain_lines(sql, true).unwrap();
    assert!(analyzed[0].contains("rows shipped"), "analyze totals missing: {analyzed:?}");
    assert!(analyzed.iter().any(|l| l.contains("attempts")));
}

#[test]
fn node_crash_mid_scatter_is_retried_and_answers_are_unchanged() {
    use gridsim::{FaultConfig, FaultPlan};
    let src = sample_db(300);
    let calm = fabric(&src, 4);
    let stormy = DistCluster::build(
        &src,
        DistConfig::new(4, "Galaxy", "dec", -5.0, 5.0)
            .with_faults(FaultPlan::new(FaultConfig::always(7, 1))),
    )
    .unwrap();
    for sql in QUERIES {
        let want = fabric_rows(&calm, sql);
        let got = fabric_rows(&stormy, sql);
        assert_eq!(
            want.iter().map(Row::encode).collect::<Vec<_>>(),
            got.iter().map(Row::encode).collect::<Vec<_>>(),
            "crash failover changed the answer for {sql}"
        );
        let p = stormy.last_dist().unwrap();
        if p.mode != "local" {
            assert!(p.retries > 0, "always-crash plan must cost retries for {sql}");
        }
    }
}

#[test]
fn writes_are_rejected() {
    let src = sample_db(10);
    let f = fabric(&src, 2);
    assert!(f.execute_sql("INSERT INTO Label VALUES (9, 1)").is_err());
    assert!(f.execute_sql("DROP TABLE Galaxy").is_err());
}

#[test]
fn top_n_pushes_the_limit_to_every_shard() {
    let src = sample_db(400);
    let f = fabric(&src, 4);
    let rows = fabric_rows(&f, "SELECT objid, ra FROM Galaxy ORDER BY ra DESC, objid LIMIT 5");
    assert_eq!(rows.len(), 5);
    let p = f.last_dist().unwrap();
    assert_eq!(p.mode, "top-n");
    // Each shard ships at most LIMIT rows, not its whole slice.
    assert!(p.rows_shipped <= 4 * 5, "limit not pushed down: shipped {}", p.rows_shipped);
    assert!(p.subquery.contains("LIMIT 5"), "subquery lost the limit: {}", p.subquery);
}

#[test]
fn review_distinct_limit_repro() {
    let mut src = sample_db(400);
    let f2 = fabric(&src, 2);
    let sql = "SELECT DISTINCT cls FROM Galaxy ORDER BY cls LIMIT 4";
    let engine = engine_rows(&mut src, sql);
    let got = fabric_rows(&f2, sql);
    assert_eq!(engine.len(), got.len(), "engine {} vs fabric {}", engine.len(), got.len());
}

// ---------------------------------------------------------------------------
// Co-partitioned zone joins
// ---------------------------------------------------------------------------

/// Two zoned survey tables over dec [-5, 5): `Survey1` (the shard table,
/// routed by dec) and `Survey2` (co-sharded by zoneid), with deterministic
/// positions so roughly half the objects pair up within the band.
fn xmatch_db(n: usize) -> Database {
    let scheme = ZoneScheme::with_height(0.5);
    let mut db = Database::new(DbConfig::in_memory());
    let survey = Schema::new(vec![
        Column::new("zoneid", DataType::Int),
        Column::new("ra", DataType::Float),
        Column::new("objid", DataType::BigInt),
        Column::new("dec", DataType::Float),
    ]);
    db.create_clustered_table("Survey1", survey.clone(), &["zoneid", "ra", "objid"]).unwrap();
    db.create_clustered_table("Survey2", survey, &["zoneid", "ra", "objid"]).unwrap();
    let mut x = 0xBEEF_u64;
    let mut s1 = Vec::new();
    let mut s2 = Vec::new();
    for i in 0..n {
        let ra = 170.0 + (lcg(&mut x) % 20_000) as f64 / 1000.0;
        let dec = -5.0 + (lcg(&mut x) % 9_999) as f64 / 1000.0;
        s1.push((i as i64, ra, dec));
        // Every other object re-observed a touch away; the rest displaced
        // far outside the match window.
        let (dra, ddec) = if i % 2 == 0 { (0.01, 0.02) } else { (3.0, 1.0) };
        s2.push((10_000 + i as i64, ra + dra, (dec + ddec).min(4.999)));
    }
    for (table, objs) in [("Survey1", s1), ("Survey2", s2)] {
        let mut rows: Vec<Row> = objs
            .into_iter()
            .map(|(objid, ra, dec)| {
                Row(vec![
                    Value::Int(scheme.zone_of(dec)),
                    Value::Float(ra),
                    Value::BigInt(objid),
                    Value::Float(dec),
                ])
            })
            .collect();
        rows.sort_by(|a, b| a.0[0].total_cmp(&b.0[0]).then(a.0[1].total_cmp(&b.0[1])));
        db.insert_rows(table, rows).unwrap();
    }
    db
}

fn co_fabric(src: &Database, nodes: usize, halo: i64) -> DistCluster {
    let mut cfg = DistConfig::new(nodes, "Survey1", "dec", -5.0, 5.0)
        .with_co_shard("Survey2", "zoneid", halo);
    cfg.scheme = ZoneScheme::with_height(0.5);
    DistCluster::build(src, cfg).unwrap()
}

const ZONE_JOIN: &str = "SELECT a.objid AS o1, b.objid AS o2 FROM Survey1 a \
     JOIN Survey2 b ON b.zoneid BETWEEN a.zoneid - 1 AND a.zoneid + 1 \
     WHERE b.ra BETWEEN a.ra - 0.1 AND a.ra + 0.1 ORDER BY o1, o2";

#[test]
fn co_partitioned_zone_join_is_shard_local_and_node_count_invariant() {
    let mut src = xmatch_db(240);
    let want = engine_rows(&mut src, ZONE_JOIN);
    assert!(want.len() >= 100, "expected plenty of pairs, got {}", want.len());
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for nodes in [1, 2, 4, 8] {
        let f = co_fabric(&src, nodes, 1);
        let got = fabric_rows(&f, ZONE_JOIN);
        let enc: Vec<Vec<u8>> = got.iter().map(Row::encode).collect();
        assert_eq!(
            enc,
            want.iter().map(Row::encode).collect::<Vec<_>>(),
            "co-sharded join diverged from the engine at {nodes} nodes"
        );
        match &reference {
            Some(r) => assert_eq!(*r, enc, "answer changed between node counts"),
            None => reference = Some(enc),
        }
        let p = f.last_dist().unwrap();
        assert_eq!(p.mode, "merge", "zone join should run shard-local, not {}", p.mode);
    }
}

#[test]
fn halo_duplicates_exist_only_on_boundary_shards() {
    let src = xmatch_db(240);
    let f = co_fabric(&src, 4, 2);
    let total: usize =
        (0..4).map(|k| f.shards[k].lock().unwrap().scan("Survey2").unwrap().len()).sum();
    assert!(total > 240, "halo fringe should duplicate boundary rows, held {total}");
    assert!(total < 2 * 240, "halo should copy a fringe, not whole slices: {total}");
    // The coordinator keeps the one full (duplicate-free) copy.
    let n = f.catalog.lock().unwrap().scan("Survey2").unwrap().len();
    assert_eq!(n, 240);
}

#[test]
fn band_wider_than_the_halo_broadcasts_instead_of_answering_wrong() {
    let mut src = xmatch_db(120);
    let wide = "SELECT a.objid AS o1, b.objid AS o2 FROM Survey1 a \
         JOIN Survey2 b ON b.zoneid BETWEEN a.zoneid - 3 AND a.zoneid + 3 \
         WHERE b.ra BETWEEN a.ra - 0.1 AND a.ra + 0.1 ORDER BY o1, o2";
    let want = engine_rows(&mut src, wide);
    let f = co_fabric(&src, 4, 1);
    let got = fabric_rows(&f, wide);
    assert_eq!(multiset(&want), multiset(&got));
    assert_eq!(f.last_dist().unwrap().mode, "broadcast");
}

#[test]
fn co_shard_only_queries_answer_locally_from_the_catalog_copy() {
    let src = xmatch_db(120);
    let f = co_fabric(&src, 4, 1);
    let rows = fabric_rows(&f, "SELECT COUNT(*) FROM Survey2");
    assert_eq!(rows, vec![Row(vec![Value::BigInt(120)])]);
    assert_eq!(f.last_dist().unwrap().mode, "local");
}

#[test]
fn explain_renders_the_co_partitioned_exchange() {
    let src = xmatch_db(120);
    let f = co_fabric(&src, 4, 1);
    let lines = f.explain_lines(ZONE_JOIN, false).unwrap();
    assert!(
        lines.iter().any(|l| l.contains("co-partitioned") && l.contains("Survey2")),
        "missing co-partitioned exchange line: {lines:#?}"
    );
    assert!(lines[0].contains("gather[merge]"), "unexpected head: {}", lines[0]);
}
