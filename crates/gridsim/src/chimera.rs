//! A Chimera-style virtual data catalog.
//!
//! The TAM pipeline entered the Grid world through the Chimera Virtual Data
//! System ("Applying Chimera Virtual Data Concepts to Cluster Finding in
//! the Sloan Sky Survey", the paper's reference [6]): files are *virtual* —
//! described by the transformation that derives them from other files — and
//! materialized on demand. This module implements that model over the
//! [`DataArchiveServer`]: register derivations, ask for a file, and the
//! catalog recursively materializes missing ancestors, records lineage, and
//! counts what actually ran.

use crate::das::{DasError, DataArchiveServer};
use std::collections::{HashMap, HashSet};

/// A derivation executor: given the input files' bytes, produce the
/// outputs' bytes (parallel to the registered output list).
pub type Executor = Box<dyn Fn(&[Vec<u8>]) -> Result<Vec<Vec<u8>>, String> + Send + Sync>;

/// One registered derivation.
struct Derivation {
    transformation: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
}

/// Errors from the catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChimeraError {
    /// The file is neither present in the archive nor derivable.
    NotDerivable(String),
    /// A derivation cycle was detected while materializing.
    Cycle(String),
    /// The executor for a transformation failed.
    ExecutorFailed {
        /// Transformation name.
        transformation: String,
        /// Failure message.
        message: String,
    },
    /// Fetch from the archive failed unexpectedly.
    Das(String),
    /// Two derivations claim the same output.
    DuplicateOutput(String),
    /// No executor registered for a transformation.
    NoExecutor(String),
}

impl std::fmt::Display for ChimeraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChimeraError::NotDerivable(f0) => write!(f, "{f0} is not derivable"),
            ChimeraError::Cycle(f0) => write!(f, "derivation cycle through {f0}"),
            ChimeraError::ExecutorFailed { transformation, message } => {
                write!(f, "{transformation} failed: {message}")
            }
            ChimeraError::Das(m) => write!(f, "archive error: {m}"),
            ChimeraError::DuplicateOutput(o) => write!(f, "{o} already has a derivation"),
            ChimeraError::NoExecutor(t) => write!(f, "no executor for {t}"),
        }
    }
}

impl std::error::Error for ChimeraError {}

/// The virtual data catalog.
#[derive(Default)]
pub struct VirtualDataCatalog {
    derivations: Vec<Derivation>,
    by_output: HashMap<String, usize>,
    executors: HashMap<String, Executor>,
    materialized: std::sync::atomic::AtomicU64,
}

impl VirtualDataCatalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a transformation executor.
    pub fn register_executor(&mut self, transformation: &str, exec: Executor) {
        self.executors.insert(transformation.to_owned(), exec);
    }

    /// Register a derivation: `outputs` are produced by `transformation`
    /// from `inputs`.
    pub fn register_derivation(
        &mut self,
        transformation: &str,
        inputs: &[&str],
        outputs: &[&str],
    ) -> Result<(), ChimeraError> {
        for o in outputs {
            if self.by_output.contains_key(*o) {
                return Err(ChimeraError::DuplicateOutput((*o).to_owned()));
            }
        }
        let idx = self.derivations.len();
        self.derivations.push(Derivation {
            transformation: transformation.to_owned(),
            inputs: inputs.iter().map(|s| (*s).to_owned()).collect(),
            outputs: outputs.iter().map(|s| (*s).to_owned()).collect(),
        });
        for o in outputs {
            self.by_output.insert((*o).to_owned(), idx);
        }
        Ok(())
    }

    /// Number of derivations actually executed so far (virtual-data hit
    /// rate accounting: re-requests of materialized files run nothing).
    pub fn materializations(&self) -> u64 {
        self.materialized.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The transitive input closure of a file (its provenance), in
    /// dependency order, not including the file itself. Raw (underived)
    /// files appear too.
    pub fn lineage(&self, file: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        self.lineage_rec(file, &mut seen, &mut out);
        out
    }

    fn lineage_rec(&self, file: &str, seen: &mut HashSet<String>, out: &mut Vec<String>) {
        if let Some(&idx) = self.by_output.get(file) {
            for input in &self.derivations[idx].inputs {
                if seen.insert(input.clone()) {
                    self.lineage_rec(input, seen, out);
                    out.push(input.clone());
                }
            }
        }
    }

    /// Ensure `file` exists in the archive, deriving it (and any missing
    /// ancestors) if needed. Returns the file's bytes.
    pub fn materialize(
        &self,
        das: &DataArchiveServer,
        file: &str,
    ) -> Result<Vec<u8>, ChimeraError> {
        let mut in_flight = HashSet::new();
        self.materialize_rec(das, file, &mut in_flight)
    }

    fn materialize_rec(
        &self,
        das: &DataArchiveServer,
        file: &str,
        in_flight: &mut HashSet<String>,
    ) -> Result<Vec<u8>, ChimeraError> {
        if das.exists(file) {
            return das
                .fetch(file)
                .map(|(bytes, _)| bytes)
                .map_err(|e: DasError| ChimeraError::Das(e.to_string()));
        }
        let Some(&idx) = self.by_output.get(file) else {
            return Err(ChimeraError::NotDerivable(file.to_owned()));
        };
        if !in_flight.insert(file.to_owned()) {
            return Err(ChimeraError::Cycle(file.to_owned()));
        }
        let d = &self.derivations[idx];
        let mut inputs = Vec::with_capacity(d.inputs.len());
        for input in &d.inputs {
            inputs.push(self.materialize_rec(das, input, in_flight)?);
        }
        let exec = self
            .executors
            .get(&d.transformation)
            .ok_or_else(|| ChimeraError::NoExecutor(d.transformation.clone()))?;
        let outputs = exec(&inputs).map_err(|message| ChimeraError::ExecutorFailed {
            transformation: d.transformation.clone(),
            message,
        })?;
        if outputs.len() != d.outputs.len() {
            return Err(ChimeraError::ExecutorFailed {
                transformation: d.transformation.clone(),
                message: format!(
                    "produced {} outputs, {} registered",
                    outputs.len(),
                    d.outputs.len()
                ),
            });
        }
        self.materialized.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut wanted = None;
        for (name, bytes) in d.outputs.iter().zip(outputs) {
            if name == file {
                wanted = Some(bytes.clone());
            }
            das.publish(name.clone(), bytes);
        }
        in_flight.remove(file);
        Ok(wanted.expect("file is one of the derivation's outputs"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::das::NetworkModel;

    /// raw.cat --cut--> field.target + field.buffer --find--> field.clusters
    fn catalog() -> (VirtualDataCatalog, DataArchiveServer) {
        let das = DataArchiveServer::new(NetworkModel::instant());
        das.publish("raw.cat", b"g1 g2 g3 g4".to_vec());
        let mut vdc = VirtualDataCatalog::new();
        vdc.register_executor(
            "cut",
            Box::new(|inputs| {
                let raw = String::from_utf8_lossy(&inputs[0]).to_string();
                let gals: Vec<&str> = raw.split_whitespace().collect();
                Ok(vec![
                    gals[..2].join(" ").into_bytes(),
                    gals.join(" ").into_bytes(),
                ])
            }),
        );
        vdc.register_executor(
            "find",
            Box::new(|inputs| {
                let n = inputs.iter().map(|b| b.split(|&c| c == b' ').count()).sum::<usize>();
                Ok(vec![format!("clusters:{n}").into_bytes()])
            }),
        );
        vdc.register_derivation("cut", &["raw.cat"], &["field.target", "field.buffer"])
            .unwrap();
        vdc.register_derivation(
            "find",
            &["field.target", "field.buffer"],
            &["field.clusters"],
        )
        .unwrap();
        (vdc, das)
    }

    #[test]
    fn materializes_transitively() {
        let (vdc, das) = catalog();
        assert!(!das.exists("field.clusters"));
        let bytes = vdc.materialize(&das, "field.clusters").unwrap();
        assert_eq!(bytes, b"clusters:6");
        // Both stages ran, and every intermediate is now published.
        assert_eq!(vdc.materializations(), 2);
        assert!(das.exists("field.target") && das.exists("field.buffer"));
    }

    #[test]
    fn rerequests_hit_the_archive_not_the_executor() {
        let (vdc, das) = catalog();
        vdc.materialize(&das, "field.clusters").unwrap();
        vdc.materialize(&das, "field.clusters").unwrap();
        assert_eq!(vdc.materializations(), 2, "second request must be a pure fetch");
    }

    #[test]
    fn lineage_is_complete_and_ordered() {
        let (vdc, _) = catalog();
        let lineage = vdc.lineage("field.clusters");
        assert_eq!(lineage, vec!["raw.cat", "field.target", "field.buffer"]);
        assert!(vdc.lineage("raw.cat").is_empty());
    }

    #[test]
    fn underivable_and_missing_executor_errors() {
        let (vdc, das) = catalog();
        assert_eq!(
            vdc.materialize(&das, "nope.fits"),
            Err(ChimeraError::NotDerivable("nope.fits".into()))
        );
        let mut vdc2 = VirtualDataCatalog::new();
        vdc2.register_derivation("ghost", &["raw.cat"], &["x"]).unwrap();
        let das2 = DataArchiveServer::new(NetworkModel::instant());
        das2.publish("raw.cat", vec![1]);
        assert_eq!(
            vdc2.materialize(&das2, "x"),
            Err(ChimeraError::NoExecutor("ghost".into()))
        );
    }

    #[test]
    fn cycles_are_detected() {
        let mut vdc = VirtualDataCatalog::new();
        vdc.register_executor("id", Box::new(|i| Ok(vec![i[0].clone()])));
        vdc.register_derivation("id", &["b"], &["a"]).unwrap();
        vdc.register_derivation("id", &["a"], &["b"]).unwrap();
        let das = DataArchiveServer::new(NetworkModel::instant());
        assert!(matches!(vdc.materialize(&das, "a"), Err(ChimeraError::Cycle(_))));
    }

    #[test]
    fn duplicate_outputs_rejected() {
        let mut vdc = VirtualDataCatalog::new();
        vdc.register_derivation("t", &[], &["out"]).unwrap();
        assert_eq!(
            vdc.register_derivation("t2", &[], &["out"]),
            Err(ChimeraError::DuplicateOutput("out".into()))
        );
    }

    #[test]
    fn executor_failure_surfaces() {
        let mut vdc = VirtualDataCatalog::new();
        vdc.register_executor("boom", Box::new(|_| Err("no disk".into())));
        vdc.register_derivation("boom", &[], &["out"]).unwrap();
        let das = DataArchiveServer::new(NetworkModel::instant());
        assert!(matches!(
            vdc.materialize(&das, "out"),
            Err(ChimeraError::ExecutorFailed { .. })
        ));
    }
}
