//! The Data Archive Server: the remote file store Grid jobs stage their
//! inputs from.
//!
//! "As is common in astronomical file-based Grid applications, the TAM and
//! Chimera implementations use hundreds of thousands of files fetched from
//! the SDSS Data Archive Server (DAS) to the computing nodes" (§2). This
//! module models that store: named files, a network cost model, and
//! transfer accounting. Fetches return real bytes (jobs actually parse
//! them) plus the *modeled* wall time the transfer would have cost.
//!
//! Every published file carries an FNV-1a checksum, and
//! [`DataArchiveServer::fetch_verified`] turns a raw fetch into a
//! checksum-verified transfer with bounded retry — the layer where
//! injected transfer drops and corruptions (see [`crate::faults`]) are
//! detected and re-fetched instead of silently poisoning a job.

use crate::faults::{fnv1a, FaultPlan, TransferFault};
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

struct DasObs {
    files: obs::Counter,
    bytes: obs::Counter,
    modeled_ns: obs::Counter,
    checksum_failures: obs::Counter,
    retries: obs::Counter,
}

/// Archive-wide transfer accounting, mirrored from the per-server atomics
/// into the global registry so run reports can show grid I/O next to
/// database I/O. `checksum_failures` counts corrupted deliveries caught by
/// FNV-1a verification; `retries` counts extra transfer attempts beyond
/// the first (drops + corruptions re-fetched).
fn dobs() -> &'static DasObs {
    static D: OnceLock<DasObs> = OnceLock::new();
    D.get_or_init(|| DasObs {
        files: obs::counter("gridsim.das.files"),
        bytes: obs::counter("gridsim.das.bytes"),
        modeled_ns: obs::counter("gridsim.das.modeled_ns"),
        checksum_failures: obs::counter("gridsim.das.checksum_failures"),
        retries: obs::counter("gridsim.das.transfer_retries"),
    })
}

/// Network cost model for DAS transfers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Sustained bandwidth in megabytes per second.
    pub bandwidth_mb_s: f64,
    /// Per-file latency (request + metadata + seek).
    pub latency_ms: f64,
}

impl NetworkModel {
    /// A 2004-era campus link: ~10 MB/s with 20 ms per-file overhead.
    pub fn campus_2004() -> Self {
        NetworkModel { bandwidth_mb_s: 10.0, latency_ms: 20.0 }
    }

    /// Free transfers (unit tests).
    pub fn instant() -> Self {
        NetworkModel { bandwidth_mb_s: f64::INFINITY, latency_ms: 0.0 }
    }

    /// Modeled wall time to move `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let secs = self.latency_ms / 1000.0 + bytes as f64 / (self.bandwidth_mb_s * 1e6);
        Duration::from_secs_f64(secs)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::campus_2004()
    }
}

/// Errors from the archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DasError {
    /// The requested file does not exist.
    NotFound(String),
    /// Every transfer attempt was dropped or failed checksum verification.
    TransferFailed {
        /// File that could not be delivered intact.
        name: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for DasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DasError::NotFound(name) => write!(f, "DAS file not found: {name}"),
            DasError::TransferFailed { name, attempts } => {
                write!(f, "DAS transfer of {name} failed after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for DasError {}

/// Cumulative transfer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferTotals {
    /// Files served.
    pub files: u64,
    /// Bytes served.
    pub bytes: u64,
    /// Modeled transfer nanoseconds.
    pub modeled_nanos: u64,
}

impl TransferTotals {
    /// Modeled transfer time.
    pub fn modeled(&self) -> Duration {
        Duration::from_nanos(self.modeled_nanos)
    }
}

/// A stored file: bytes plus the checksum computed at publish time.
struct StoredFile {
    data: Vec<u8>,
    checksum: u64,
}

/// The archive server. Thread-safe: many node slots fetch concurrently.
pub struct DataArchiveServer {
    files: RwLock<HashMap<String, StoredFile>>,
    network: NetworkModel,
    files_served: AtomicU64,
    bytes_served: AtomicU64,
    modeled_nanos: AtomicU64,
}

impl DataArchiveServer {
    /// Create an empty archive with the given network model.
    pub fn new(network: NetworkModel) -> Self {
        DataArchiveServer {
            files: RwLock::new(HashMap::new()),
            network,
            files_served: AtomicU64::new(0),
            bytes_served: AtomicU64::new(0),
            modeled_nanos: AtomicU64::new(0),
        }
    }

    /// Publish (or replace) a file, recording its checksum.
    pub fn publish(&self, name: impl Into<String>, data: Vec<u8>) {
        let checksum = fnv1a(&data);
        self.files.write().insert(name.into(), StoredFile { data, checksum });
    }

    /// The publish-time checksum of `name`, if it exists.
    pub fn checksum_of(&self, name: &str) -> Option<u64> {
        self.files.read().get(name).map(|f| f.checksum)
    }

    /// Number of files in the archive.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }

    /// `true` when `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    /// Fetch a file: returns the bytes and the modeled transfer time, and
    /// updates the counters.
    pub fn fetch(&self, name: &str) -> Result<(Vec<u8>, Duration), DasError> {
        let (data, t, _) = self.fetch_raw(name)?;
        Ok((data, t))
    }

    /// One raw transfer: bytes, modeled time, and the stored checksum.
    fn fetch_raw(&self, name: &str) -> Result<(Vec<u8>, Duration, u64), DasError> {
        let (data, checksum) = {
            let files = self.files.read();
            let f = files.get(name).ok_or_else(|| DasError::NotFound(name.to_owned()))?;
            (f.data.clone(), f.checksum)
        };
        let t = self.network.transfer_time(data.len() as u64);
        self.files_served.fetch_add(1, Ordering::Relaxed);
        self.bytes_served.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.modeled_nanos.fetch_add(t.as_nanos() as u64, Ordering::Relaxed);
        let o = dobs();
        o.files.incr();
        o.bytes.add(data.len() as u64);
        o.modeled_ns.add(t.as_nanos() as u64);
        Ok((data, t, checksum))
    }

    /// Checksum-verified fetch with bounded retry under fault injection.
    ///
    /// Each attempt pays full modeled transfer time (a dropped or corrupted
    /// transfer wastes the wire time it consumed); corruption is caught by
    /// comparing the received bytes' FNV-1a checksum against the published
    /// one. Returns the intact bytes, the total modeled time across all
    /// attempts, and the number of attempts used. Fails with
    /// [`DasError::TransferFailed`] once `max_attempts` transfers have all
    /// been lost or corrupted. Missing files fail immediately: retrying a
    /// deterministic `NotFound` cannot help.
    pub fn fetch_verified(
        &self,
        name: &str,
        faults: Option<&FaultPlan>,
        max_attempts: u32,
    ) -> Result<(Vec<u8>, Duration, u32), DasError> {
        let max_attempts = max_attempts.max(1);
        let mut total = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            let (mut data, t, checksum) = self.fetch_raw(name)?;
            total += t;
            let fault = faults
                .map(|p| p.transfer_fault(name, attempt))
                .unwrap_or(TransferFault::Deliver);
            attempt += 1;
            match fault {
                TransferFault::Deliver => return Ok((data, total, attempt)),
                TransferFault::Drop => {}
                TransferFault::Corrupt { byte, bit } => {
                    if !data.is_empty() {
                        let i = byte % data.len();
                        data[i] ^= 1 << (bit % 8);
                    }
                    // The checksum catches the flip; an empty file has
                    // nothing to corrupt and arrives intact.
                    if fnv1a(&data) == checksum {
                        return Ok((data, total, attempt));
                    }
                    dobs().checksum_failures.incr();
                }
            }
            if attempt >= max_attempts {
                return Err(DasError::TransferFailed { name: name.to_owned(), attempts: attempt });
            }
            dobs().retries.incr();
        }
    }

    /// Snapshot the transfer counters.
    pub fn totals(&self) -> TransferTotals {
        TransferTotals {
            files: self.files_served.load(Ordering::Relaxed),
            bytes: self.bytes_served.load(Ordering::Relaxed),
            modeled_nanos: self.modeled_nanos.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_fetch() {
        let das = DataArchiveServer::new(NetworkModel::instant());
        das.publish("field-001.tgt", vec![1, 2, 3]);
        assert!(das.exists("field-001.tgt"));
        let (data, _t) = das.fetch("field-001.tgt").unwrap();
        assert_eq!(data, vec![1, 2, 3]);
        assert_eq!(das.file_count(), 1);
    }

    #[test]
    fn missing_file_errors() {
        let das = DataArchiveServer::new(NetworkModel::instant());
        assert_eq!(
            das.fetch("nope"),
            Err(DasError::NotFound("nope".into()))
        );
    }

    #[test]
    fn transfer_model_scales_with_size() {
        let n = NetworkModel { bandwidth_mb_s: 10.0, latency_ms: 20.0 };
        let small = n.transfer_time(0);
        let big = n.transfer_time(10_000_000); // 10 MB at 10 MB/s = 1 s
        assert_eq!(small, Duration::from_millis(20));
        assert!((big.as_secs_f64() - 1.02).abs() < 1e-9);
    }

    #[test]
    fn verified_fetch_retries_past_injected_faults() {
        use crate::faults::{FaultConfig, FaultPlan};
        let das = DataArchiveServer::new(NetworkModel::campus_2004());
        das.publish("field", vec![9u8; 10_000]);
        // Every file faults on its first 2 attempts (drop), then delivers.
        let plan = FaultPlan::new(FaultConfig::always(11, 2));
        let (data, t, attempts) = das.fetch_verified("field", Some(&plan), 5).unwrap();
        assert_eq!(data, vec![9u8; 10_000]);
        assert_eq!(attempts, 3);
        // Three transfers were paid for.
        let single = NetworkModel::campus_2004().transfer_time(10_000);
        assert!(t >= single * 3);
        assert!(plan.report().transfers_dropped >= 2);
    }

    #[test]
    fn verified_fetch_detects_corruption_via_checksum() {
        use crate::faults::{FaultConfig, FaultPlan};
        let das = DataArchiveServer::new(NetworkModel::instant());
        das.publish("f", (0..255u8).collect());
        let cfg = FaultConfig {
            transfer_drop_p: 0.0,
            transfer_corrupt_p: 1.0,
            max_faults_per_key: 1,
            ..FaultConfig::none()
        };
        let plan = FaultPlan::new(cfg);
        let (data, _, attempts) = das.fetch_verified("f", Some(&plan), 3).unwrap();
        assert_eq!(data, (0..255u8).collect::<Vec<u8>>(), "delivered bytes must be intact");
        assert_eq!(attempts, 2, "one corrupted attempt, one clean retry");
        assert_eq!(plan.report().transfers_corrupted, 1);
    }

    #[test]
    fn verified_fetch_gives_up_after_bounded_attempts() {
        use crate::faults::{FaultConfig, FaultPlan};
        let das = DataArchiveServer::new(NetworkModel::instant());
        das.publish("f", vec![1, 2, 3]);
        // Unbounded faulting: every attempt drops.
        let plan = FaultPlan::new(FaultConfig::always(5, u32::MAX));
        let err = das.fetch_verified("f", Some(&plan), 4).unwrap_err();
        assert_eq!(err, DasError::TransferFailed { name: "f".into(), attempts: 4 });
        // Missing files fail immediately, no retry burn.
        assert_eq!(
            das.fetch_verified("ghost", Some(&plan), 4).unwrap_err(),
            DasError::NotFound("ghost".into())
        );
    }

    #[test]
    fn verified_fetch_without_plan_is_a_plain_fetch() {
        let das = DataArchiveServer::new(NetworkModel::instant());
        das.publish("f", vec![5; 64]);
        let (data, _, attempts) = das.fetch_verified("f", None, 3).unwrap();
        assert_eq!(attempts, 1);
        assert_eq!(data.len(), 64);
        assert_eq!(das.checksum_of("f"), Some(crate::faults::fnv1a(&data)));
    }

    #[test]
    fn counters_accumulate() {
        let das = DataArchiveServer::new(NetworkModel::campus_2004());
        das.publish("a", vec![0u8; 1000]);
        das.publish("b", vec![0u8; 3000]);
        das.fetch("a").unwrap();
        das.fetch("b").unwrap();
        das.fetch("a").unwrap();
        let t = das.totals();
        assert_eq!(t.files, 3);
        assert_eq!(t.bytes, 5000);
        assert!(t.modeled() >= Duration::from_millis(60), "3 fetches x 20 ms latency");
    }
}
