//! The Data Archive Server: the remote file store Grid jobs stage their
//! inputs from.
//!
//! "As is common in astronomical file-based Grid applications, the TAM and
//! Chimera implementations use hundreds of thousands of files fetched from
//! the SDSS Data Archive Server (DAS) to the computing nodes" (§2). This
//! module models that store: named files, a network cost model, and
//! transfer accounting. Fetches return real bytes (jobs actually parse
//! them) plus the *modeled* wall time the transfer would have cost.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Network cost model for DAS transfers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// Sustained bandwidth in megabytes per second.
    pub bandwidth_mb_s: f64,
    /// Per-file latency (request + metadata + seek).
    pub latency_ms: f64,
}

impl NetworkModel {
    /// A 2004-era campus link: ~10 MB/s with 20 ms per-file overhead.
    pub fn campus_2004() -> Self {
        NetworkModel { bandwidth_mb_s: 10.0, latency_ms: 20.0 }
    }

    /// Free transfers (unit tests).
    pub fn instant() -> Self {
        NetworkModel { bandwidth_mb_s: f64::INFINITY, latency_ms: 0.0 }
    }

    /// Modeled wall time to move `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        let secs = self.latency_ms / 1000.0 + bytes as f64 / (self.bandwidth_mb_s * 1e6);
        Duration::from_secs_f64(secs)
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::campus_2004()
    }
}

/// Errors from the archive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DasError {
    /// The requested file does not exist.
    NotFound(String),
}

impl std::fmt::Display for DasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DasError::NotFound(name) => write!(f, "DAS file not found: {name}"),
        }
    }
}

impl std::error::Error for DasError {}

/// Cumulative transfer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransferTotals {
    /// Files served.
    pub files: u64,
    /// Bytes served.
    pub bytes: u64,
    /// Modeled transfer nanoseconds.
    pub modeled_nanos: u64,
}

impl TransferTotals {
    /// Modeled transfer time.
    pub fn modeled(&self) -> Duration {
        Duration::from_nanos(self.modeled_nanos)
    }
}

/// The archive server. Thread-safe: many node slots fetch concurrently.
pub struct DataArchiveServer {
    files: RwLock<HashMap<String, Vec<u8>>>,
    network: NetworkModel,
    files_served: AtomicU64,
    bytes_served: AtomicU64,
    modeled_nanos: AtomicU64,
}

impl DataArchiveServer {
    /// Create an empty archive with the given network model.
    pub fn new(network: NetworkModel) -> Self {
        DataArchiveServer {
            files: RwLock::new(HashMap::new()),
            network,
            files_served: AtomicU64::new(0),
            bytes_served: AtomicU64::new(0),
            modeled_nanos: AtomicU64::new(0),
        }
    }

    /// Publish (or replace) a file.
    pub fn publish(&self, name: impl Into<String>, data: Vec<u8>) {
        self.files.write().insert(name.into(), data);
    }

    /// Number of files in the archive.
    pub fn file_count(&self) -> usize {
        self.files.read().len()
    }

    /// `true` when `name` exists.
    pub fn exists(&self, name: &str) -> bool {
        self.files.read().contains_key(name)
    }

    /// Fetch a file: returns the bytes and the modeled transfer time, and
    /// updates the counters.
    pub fn fetch(&self, name: &str) -> Result<(Vec<u8>, Duration), DasError> {
        let data = self
            .files
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| DasError::NotFound(name.to_owned()))?;
        let t = self.network.transfer_time(data.len() as u64);
        self.files_served.fetch_add(1, Ordering::Relaxed);
        self.bytes_served.fetch_add(data.len() as u64, Ordering::Relaxed);
        self.modeled_nanos.fetch_add(t.as_nanos() as u64, Ordering::Relaxed);
        Ok((data, t))
    }

    /// Snapshot the transfer counters.
    pub fn totals(&self) -> TransferTotals {
        TransferTotals {
            files: self.files_served.load(Ordering::Relaxed),
            bytes: self.bytes_served.load(Ordering::Relaxed),
            modeled_nanos: self.modeled_nanos.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_fetch() {
        let das = DataArchiveServer::new(NetworkModel::instant());
        das.publish("field-001.tgt", vec![1, 2, 3]);
        assert!(das.exists("field-001.tgt"));
        let (data, _t) = das.fetch("field-001.tgt").unwrap();
        assert_eq!(data, vec![1, 2, 3]);
        assert_eq!(das.file_count(), 1);
    }

    #[test]
    fn missing_file_errors() {
        let das = DataArchiveServer::new(NetworkModel::instant());
        assert_eq!(
            das.fetch("nope"),
            Err(DasError::NotFound("nope".into()))
        );
    }

    #[test]
    fn transfer_model_scales_with_size() {
        let n = NetworkModel { bandwidth_mb_s: 10.0, latency_ms: 20.0 };
        let small = n.transfer_time(0);
        let big = n.transfer_time(10_000_000); // 10 MB at 10 MB/s = 1 s
        assert_eq!(small, Duration::from_millis(20));
        assert!((big.as_secs_f64() - 1.02).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate() {
        let das = DataArchiveServer::new(NetworkModel::campus_2004());
        das.publish("a", vec![0u8; 1000]);
        das.publish("b", vec![0u8; 3000]);
        das.fetch("a").unwrap();
        das.fetch("b").unwrap();
        das.fetch("a").unwrap();
        let t = das.totals();
        assert_eq!(t.files, 3);
        assert_eq!(t.bytes, 5000);
        assert!(t.modeled() >= Duration::from_millis(60), "3 fetches x 20 ms latency");
    }
}
