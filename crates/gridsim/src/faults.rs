//! Deterministic, seed-driven fault injection for the grid substrate.
//!
//! A real data grid loses nodes, drops transfers, and stalls on stragglers;
//! a reproduction that only models the happy path has no story for why
//! CasJobs and the batch scheduler exist. This module provides a
//! [`FaultPlan`]: a set of *pure* fault decisions derived by hashing
//! `(seed, domain, key, attempt)`, so the same plan injects exactly the
//! same faults on every run — independent of thread interleaving, host
//! speed, or the order consumers happen to ask. Reproducibility is the
//! whole point: a chaos run that cannot be replayed cannot be debugged.
//!
//! Decisions are stateless; an attempt-number bound (`max_faults_per_key`)
//! guarantees every fault sequence is finite, so bounded-retry recovery
//! machinery provably converges instead of flaking forever.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

struct FaultObs {
    crashes: obs::Counter,
    drops: obs::Counter,
    corruptions: obs::Counter,
    stragglers: obs::Counter,
    buffer_exhausts: obs::Counter,
}

/// Fault injections by kind, mirrored from every plan's per-plan ledger
/// into the global registry — a chaos run's report shows what was injected
/// next to what the recovery machinery absorbed.
fn fobs() -> &'static FaultObs {
    static F: OnceLock<FaultObs> = OnceLock::new();
    F.get_or_init(|| FaultObs {
        crashes: obs::counter("gridsim.faults.node_crashes"),
        drops: obs::counter("gridsim.faults.transfers_dropped"),
        corruptions: obs::counter("gridsim.faults.transfers_corrupted"),
        stragglers: obs::counter("gridsim.faults.stragglers"),
        buffer_exhausts: obs::counter("gridsim.faults.buffer_exhausts"),
    })
}

/// The 64-bit finalizer of splitmix64 — a fast, well-mixed hash step.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over a byte string (used to fold names into fault-decision keys
/// and as the DAS transfer checksum).
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A small deterministic RNG (splitmix64 sequence). Dependency-free so
/// `gridsim` consumers can corrupt bytes or jitter backoff reproducibly
/// without pulling `rand` into library code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Seed the sequence.
    pub fn new(seed: u64) -> Self {
        DetRng { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        mix64(self.state)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[0, n)`; returns 0 when `n == 0`.
    pub fn next_below(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// Pure crash-point draw for kill-at-offset drills: a byte offset in
/// `[lo, hi)` derived only from `(seed, key)`, so a crash drill's kill
/// point is replayable from its seed alone (same contract as
/// [`FaultPlan::draw_u64`]). Returns `lo` when the range is empty.
pub fn crash_offset(seed: u64, key: &str, lo: u64, hi: u64) -> u64 {
    if hi <= lo {
        return lo;
    }
    lo + mix64(seed ^ fnv1a(key.as_bytes())) % (hi - lo)
}

/// Probabilities and bounds of a fault schedule. All probabilities are per
/// *decision* (one job attempt, one file transfer), in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Probability that a node/job attempt crashes outright.
    pub node_crash_p: f64,
    /// Probability that a DAS transfer attempt is dropped on the floor.
    pub transfer_drop_p: f64,
    /// Probability that a DAS transfer attempt delivers corrupted bytes
    /// (caught by the transfer checksum, costing a retry).
    pub transfer_corrupt_p: f64,
    /// Probability that a job attempt straggles.
    pub straggler_p: f64,
    /// Compute-time multiplier applied to straggling attempts (> 1).
    pub straggler_factor: f64,
    /// Probability that an attempt hits buffer-pool pressure
    /// (`DbError::BufferExhausted` at the consumer's discretion).
    pub buffer_exhaust_p: f64,
    /// Hard cap on injected faults per key: attempts numbered at or above
    /// this bound never fault, so bounded retry always converges.
    pub max_faults_per_key: u32,
}

impl FaultConfig {
    /// No faults at all (every decision is benign).
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            node_crash_p: 0.0,
            transfer_drop_p: 0.0,
            transfer_corrupt_p: 0.0,
            straggler_p: 0.0,
            straggler_factor: 1.0,
            buffer_exhaust_p: 0.0,
            max_faults_per_key: 0,
        }
    }

    /// A mild schedule: occasional faults, at most one per key.
    pub fn mild(seed: u64) -> Self {
        FaultConfig {
            seed,
            node_crash_p: 0.2,
            transfer_drop_p: 0.1,
            transfer_corrupt_p: 0.1,
            straggler_p: 0.2,
            straggler_factor: 4.0,
            buffer_exhaust_p: 0.1,
            max_faults_per_key: 1,
        }
    }

    /// A severe schedule: most first attempts fault, two faults per key.
    pub fn severe(seed: u64) -> Self {
        FaultConfig {
            seed,
            node_crash_p: 0.75,
            transfer_drop_p: 0.4,
            transfer_corrupt_p: 0.4,
            straggler_p: 0.5,
            straggler_factor: 8.0,
            buffer_exhaust_p: 0.4,
            max_faults_per_key: 2,
        }
    }

    /// Every key faults on exactly its first `max_faults_per_key` attempts
    /// — the worst bounded schedule, for recovery proofs.
    pub fn always(seed: u64, faults_per_key: u32) -> Self {
        FaultConfig {
            seed,
            node_crash_p: 1.0,
            transfer_drop_p: 1.0,
            transfer_corrupt_p: 0.0,
            straggler_p: 1.0,
            straggler_factor: 3.0,
            buffer_exhaust_p: 1.0,
            max_faults_per_key: faults_per_key,
        }
    }
}

/// What the plan does to one transfer attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferFault {
    /// The bytes arrive intact.
    Deliver,
    /// The transfer is lost; the time is wasted, the bytes never arrive.
    Drop,
    /// The bytes arrive with one bit flipped at `byte % len`.
    Corrupt {
        /// Byte offset to corrupt (consumer reduces modulo length).
        byte: usize,
        /// Bit within the byte (0..8).
        bit: u8,
    },
}

/// Injection counters, shared across plan clones.
#[derive(Debug, Default)]
struct Ledger {
    crashes: AtomicU64,
    drops: AtomicU64,
    corruptions: AtomicU64,
    stragglers: AtomicU64,
    buffer_exhausts: AtomicU64,
}

/// Snapshot of what a plan actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Node/job crashes injected.
    pub node_crashes: u64,
    /// Transfers dropped.
    pub transfers_dropped: u64,
    /// Transfers corrupted.
    pub transfers_corrupted: u64,
    /// Straggler slowdowns injected.
    pub stragglers: u64,
    /// Buffer-pressure faults injected.
    pub buffer_exhausts: u64,
}

impl FaultReport {
    /// Total faults of any kind.
    pub fn total(&self) -> u64 {
        self.node_crashes
            + self.transfers_dropped
            + self.transfers_corrupted
            + self.stragglers
            + self.buffer_exhausts
    }

    /// How many distinct fault kinds fired at least once.
    pub fn distinct_kinds(&self) -> usize {
        [
            self.node_crashes,
            self.transfers_dropped,
            self.transfers_corrupted,
            self.stragglers,
            self.buffer_exhausts,
        ]
        .iter()
        .filter(|&&n| n > 0)
        .count()
    }
}

/// A reproducible fault schedule. Cloning shares the injection ledger, so
/// a plan handed to several layers still reports one consolidated tally.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The schedule parameters.
    pub config: FaultConfig,
    ledger: Arc<Ledger>,
}

impl FaultPlan {
    /// Build a plan from a schedule.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config, ledger: Arc::new(Ledger::default()) }
    }

    /// A plan that never injects anything.
    pub fn disabled() -> Self {
        FaultPlan::new(FaultConfig::none())
    }

    /// The raw 64-bit decision value for `(domain, key, attempt)` — a pure
    /// function of the seed, exposed so tests can prove byte-for-byte
    /// reproducibility of the whole schedule.
    pub fn draw_u64(&self, domain: &str, key: &str, attempt: u32) -> u64 {
        let mut h = self.config.seed;
        h = mix64(h ^ fnv1a(domain.as_bytes()));
        h = mix64(h ^ fnv1a(key.as_bytes()));
        mix64(h ^ (u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// The decision value mapped to `[0, 1)`.
    pub fn draw(&self, domain: &str, key: &str, attempt: u32) -> f64 {
        (self.draw_u64(domain, key, attempt) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn armed(&self, attempt: u32) -> bool {
        attempt < self.config.max_faults_per_key
    }

    /// Does attempt `attempt` of the node/job named `key` crash?
    pub fn node_crashes(&self, key: &str, attempt: u32) -> bool {
        let hit = self.armed(attempt) && self.draw("crash", key, attempt) < self.config.node_crash_p;
        if hit {
            self.ledger.crashes.fetch_add(1, Ordering::Relaxed);
            fobs().crashes.incr();
        }
        hit
    }

    /// Does attempt `attempt` of `key` hit buffer-pool pressure?
    pub fn buffer_exhausts(&self, key: &str, attempt: u32) -> bool {
        let hit =
            self.armed(attempt) && self.draw("bufpool", key, attempt) < self.config.buffer_exhaust_p;
        if hit {
            self.ledger.buffer_exhausts.fetch_add(1, Ordering::Relaxed);
            fobs().buffer_exhausts.incr();
        }
        hit
    }

    /// What happens to transfer attempt `attempt` of file `key`?
    pub fn transfer_fault(&self, key: &str, attempt: u32) -> TransferFault {
        if !self.armed(attempt) {
            return TransferFault::Deliver;
        }
        let d = self.draw("transfer", key, attempt);
        if d < self.config.transfer_drop_p {
            self.ledger.drops.fetch_add(1, Ordering::Relaxed);
            fobs().drops.incr();
            TransferFault::Drop
        } else if d < self.config.transfer_drop_p + self.config.transfer_corrupt_p {
            self.ledger.corruptions.fetch_add(1, Ordering::Relaxed);
            fobs().corruptions.incr();
            let bits = self.draw_u64("corrupt-at", key, attempt);
            TransferFault::Corrupt { byte: (bits >> 8) as usize, bit: (bits & 7) as u8 }
        } else {
            TransferFault::Deliver
        }
    }

    /// Compute-time multiplier for attempt `attempt` of job `key`:
    /// `straggler_factor` when the attempt straggles, 1.0 otherwise.
    pub fn straggler_multiplier(&self, key: &str, attempt: u32) -> f64 {
        if self.armed(attempt) && self.draw("straggle", key, attempt) < self.config.straggler_p {
            self.ledger.stragglers.fetch_add(1, Ordering::Relaxed);
            fobs().stragglers.incr();
            self.config.straggler_factor.max(1.0)
        } else {
            1.0
        }
    }

    /// Deterministic backoff jitter in `[0, 1)` for `(key, attempt)` — a
    /// pure draw that does not count as an injected fault.
    pub fn jitter01(&self, key: &str, attempt: u32) -> f64 {
        self.draw("jitter", key, attempt)
    }

    /// Snapshot the injection tally.
    pub fn report(&self) -> FaultReport {
        FaultReport {
            node_crashes: self.ledger.crashes.load(Ordering::Relaxed),
            transfers_dropped: self.ledger.drops.load(Ordering::Relaxed),
            transfers_corrupted: self.ledger.corruptions.load(Ordering::Relaxed),
            stragglers: self.ledger.stragglers.load(Ordering::Relaxed),
            buffer_exhausts: self.ledger.buffer_exhausts.load(Ordering::Relaxed),
        }
    }
}

/// Exponential backoff with a cap: `base * 2^(attempt-1)`, clamped to
/// `cap`, stretched by up to 50% of itself by `jitter01`. Pure, so the
/// scheduler's virtual-clock accounting is reproducible.
pub fn backoff_delay(base: Duration, cap: Duration, attempt: u32, jitter01: f64) -> Duration {
    let exp = attempt.saturating_sub(1).min(16);
    let raw = base.as_secs_f64() * (1u64 << exp) as f64;
    let capped = raw.min(cap.as_secs_f64());
    Duration::from_secs_f64(capped * (1.0 + 0.5 * jitter01.clamp(0.0, 1.0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(FaultConfig::severe(42));
        let b = FaultPlan::new(FaultConfig::severe(42));
        for key in ["cas-1", "cas-2", "field-00003.tgt", "P2"] {
            for attempt in 0..4 {
                assert_eq!(
                    a.draw_u64("crash", key, attempt),
                    b.draw_u64("crash", key, attempt)
                );
                assert_eq!(a.transfer_fault(key, attempt), b.transfer_fault(key, attempt));
                assert_eq!(
                    a.straggler_multiplier(key, attempt),
                    b.straggler_multiplier(key, attempt)
                );
            }
        }
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(FaultConfig::severe(1));
        let b = FaultPlan::new(FaultConfig::severe(2));
        let differs = (0..64).any(|i| {
            a.draw_u64("crash", "node", i) != b.draw_u64("crash", "node", i)
        });
        assert!(differs, "64 identical draws from different seeds is impossible");
    }

    #[test]
    fn faults_are_bounded_per_key() {
        let plan = FaultPlan::new(FaultConfig::always(7, 2));
        assert!(plan.node_crashes("n", 0));
        assert!(plan.node_crashes("n", 1));
        assert!(!plan.node_crashes("n", 2), "attempt >= bound must never fault");
        assert_eq!(plan.transfer_fault("f", 5), TransferFault::Deliver);
        assert_eq!(plan.straggler_multiplier("j", 9), 1.0);
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        let plan = FaultPlan::disabled();
        for attempt in 0..8 {
            assert!(!plan.node_crashes("x", attempt));
            assert!(!plan.buffer_exhausts("x", attempt));
            assert_eq!(plan.transfer_fault("x", attempt), TransferFault::Deliver);
            assert_eq!(plan.straggler_multiplier("x", attempt), 1.0);
        }
        assert_eq!(plan.report(), FaultReport::default());
    }

    #[test]
    fn ledger_is_shared_across_clones() {
        let plan = FaultPlan::new(FaultConfig::always(3, 1));
        let clone = plan.clone();
        assert!(clone.node_crashes("a", 0));
        assert!(plan.node_crashes("b", 0));
        assert_eq!(plan.report().node_crashes, 2);
        assert_eq!(clone.report(), plan.report());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let base = Duration::from_millis(100);
        let cap = Duration::from_secs(2);
        let d1 = backoff_delay(base, cap, 1, 0.0);
        let d2 = backoff_delay(base, cap, 2, 0.0);
        let d3 = backoff_delay(base, cap, 3, 0.0);
        assert_eq!(d1, Duration::from_millis(100));
        assert_eq!(d2, Duration::from_millis(200));
        assert_eq!(d3, Duration::from_millis(400));
        let huge = backoff_delay(base, cap, 12, 0.0);
        assert_eq!(huge, cap);
        let jittered = backoff_delay(base, cap, 1, 1.0);
        assert_eq!(jittered, Duration::from_millis(150));
    }

    #[test]
    fn det_rng_is_reproducible_and_uniformish() {
        let mut a = DetRng::new(99);
        let mut b = DetRng::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = DetRng::new(5);
        let mean: f64 = (0..1000).map(|_| r.next_f64()).sum::<f64>() / 1000.0;
        assert!((mean - 0.5).abs() < 0.1, "mean of uniform draws was {mean}");
        assert!(DetRng::new(0).next_below(0) == 0);
    }

    #[test]
    fn fnv_distinguishes_names() {
        assert_ne!(fnv1a(b"cas-1"), fnv1a(b"cas-2"));
        assert_ne!(fnv1a(b""), fnv1a(b"\0"));
    }
}
