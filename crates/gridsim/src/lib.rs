//! # gridsim — the Grid substrate
//!
//! A simulation of the 2004-era Grid environment the paper's file-based
//! MaxBCG ran in: virtual compute nodes ([`node`]), a Data Archive Server
//! with a network cost model ([`das`]), and a Condor-style batch scheduler
//! ([`scheduler`]) that executes real Rust jobs while accounting node time
//! virtually (scaled by node clock speed) so TAM-vs-SQL comparisons do not
//! depend on the benchmark host. The [`faults`] module adds deterministic,
//! seed-driven fault injection (node crashes, dropped/corrupted transfers,
//! stragglers, buffer pressure) that the scheduler and archive honor, so
//! recovery machinery can be exercised reproducibly.

#![warn(missing_docs)]

pub mod chimera;
pub mod das;
pub mod faults;
pub mod node;
pub mod scheduler;

pub use chimera::VirtualDataCatalog;
pub use das::{DataArchiveServer, NetworkModel, TransferTotals};
pub use faults::{crash_offset, DetRng, FaultConfig, FaultPlan, FaultReport, TransferFault};
pub use node::{db_cluster, sql_cluster, tam_cluster, NodeSpec};
pub use scheduler::{BatchReport, GridCluster, JobRun, JobSpec, RetryPolicy, RoutedJob, StageIn};
