//! Virtual compute nodes.

use serde::{Deserialize, Serialize};

/// Description of one grid node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Node name (e.g. `tam3`).
    pub name: String,
    /// Clock speed in GHz, used to scale measured compute time into the
    /// node's virtual time (a 600 MHz TAM node runs a job `host/0.6`
    /// times slower than the benchmark host).
    pub cpu_ghz: f64,
    /// Number of CPUs (job slots).
    pub cpus: usize,
    /// RAM in MB. Jobs whose declared working set exceeds this cannot be
    /// scheduled on the node — the constraint that forced the TAM
    /// implementation down to a 1 x 1 deg² buffer (§2.2).
    pub ram_mb: u64,
}

impl NodeSpec {
    /// One node of the paper's Terabyte Analysis Machine: a dual 600 MHz
    /// Pentium III with 1 GB of RAM.
    pub fn tam(idx: usize) -> Self {
        NodeSpec { name: format!("tam{idx}"), cpu_ghz: 0.6, cpus: 2, ram_mb: 1024 }
    }

    /// One node of the paper's SQL Server cluster: a dual 2.6 GHz Xeon
    /// with 2 GB of RAM.
    pub fn sql_server(idx: usize) -> Self {
        NodeSpec { name: format!("sql{idx}"), cpu_ghz: 2.6, cpus: 2, ram_mb: 2048 }
    }

    /// One node of the distributed query fabric: a database server holding
    /// a contiguous zone-range shard of the catalog. Same hardware class as
    /// the SQL Server cluster, named after the shard it homes.
    pub fn db_node(shard: usize) -> Self {
        NodeSpec { name: format!("db{shard}"), cpu_ghz: 2.6, cpus: 2, ram_mb: 2048 }
    }
}

/// The five-node TAM Beowulf cluster (10 job slots).
pub fn tam_cluster() -> Vec<NodeSpec> {
    (1..=5).map(NodeSpec::tam).collect()
}

/// The three-node SQL Server cluster.
pub fn sql_cluster() -> Vec<NodeSpec> {
    (1..=3).map(NodeSpec::sql_server).collect()
}

/// An `n`-node shard-holding database cluster for the query fabric:
/// node `k` homes shard `k`.
pub fn db_cluster(n: usize) -> Vec<NodeSpec> {
    (0..n).map(NodeSpec::db_node).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shapes() {
        let tam = tam_cluster();
        assert_eq!(tam.len(), 5);
        assert_eq!(tam.iter().map(|n| n.cpus).sum::<usize>(), 10);
        assert!(tam.iter().all(|n| (n.cpu_ghz - 0.6).abs() < 1e-9 && n.ram_mb == 1024));

        let sql = sql_cluster();
        assert_eq!(sql.len(), 3);
        assert!(sql.iter().all(|n| (n.cpu_ghz - 2.6).abs() < 1e-9 && n.ram_mb == 2048));
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<String> =
            tam_cluster().into_iter().map(|n| n.name).collect();
        assert_eq!(names.len(), 5);
    }
}
