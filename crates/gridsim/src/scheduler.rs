//! The batch scheduler: Condor-style matchmaking over virtual nodes.
//!
//! Jobs run for real (the worker closure executes actual Rust code against
//! actually-fetched files) while node timing is **simulated**: measured
//! compute time is scaled by the node's clock relative to the benchmark
//! host, stage-in cost comes from the archive's network model, and jobs are
//! placed on node slots by greedy earliest-available list scheduling — the
//! behavior of a matchmaking batch system over an embarrassingly parallel
//! workload.
//!
//! Execution and scheduling are deliberately decoupled into two phases
//! (measure, then simulate placement) so the virtual makespan is
//! deterministic and independent of host core count or oversubscription —
//! the reproduction's TAM numbers must not depend on how many cores this
//! machine happens to have.

use crate::das::{DasError, DataArchiveServer};
use crate::node::NodeSpec;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One job to schedule.
pub struct JobSpec<J> {
    /// Job name (for reports).
    pub name: String,
    /// Declared working-set size; nodes with less RAM cannot run the job.
    pub ram_mb: u64,
    /// Workload payload handed to the worker.
    pub payload: J,
}

/// Stage-in handle passed to workers: fetches go through the archive and
/// are accounted to the current job.
pub struct StageIn<'a> {
    das: &'a DataArchiveServer,
    accum: Mutex<(Duration, u64)>,
}

impl StageIn<'_> {
    /// Fetch a file from the archive, accumulating modeled transfer time.
    pub fn fetch(&self, name: &str) -> Result<Vec<u8>, DasError> {
        let (bytes, t) = self.das.fetch(name)?;
        let mut acc = self.accum.lock();
        acc.0 += t;
        acc.1 += bytes.len() as u64;
        Ok(bytes)
    }
}

/// Result of one job.
#[derive(Debug, Clone)]
pub struct JobRun<T> {
    /// Job name.
    pub name: String,
    /// Worker output, or the failure message.
    pub output: Result<T, String>,
    /// Measured compute time on the host.
    pub compute_real: Duration,
    /// Modeled stage-in time.
    pub stage_in: Duration,
    /// Bytes staged in.
    pub bytes_in: u64,
    /// Node the simulator placed the job on (`None` if unschedulable).
    pub node: Option<String>,
    /// Virtual completion time of the job within the batch.
    pub virtual_end: Duration,
}

/// Whole-batch accounting.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Virtual wall time for the cluster to drain the batch.
    pub virtual_makespan: Duration,
    /// Sum of virtual compute across jobs.
    pub virtual_compute_total: Duration,
    /// Sum of modeled stage-in across jobs.
    pub stage_in_total: Duration,
    /// Real wall time of the measurement phase on the host.
    pub real_elapsed: Duration,
    /// Jobs no node could satisfy (RAM constraint).
    pub unschedulable: u32,
    /// Jobs that returned an error.
    pub failed: u32,
}

/// A virtual cluster: nodes plus the host clock they are scaled against.
#[derive(Debug, Clone)]
pub struct GridCluster {
    /// Member nodes.
    pub nodes: Vec<NodeSpec>,
    /// Benchmark-host clock in GHz; measured compute is multiplied by
    /// `host_ghz / node.cpu_ghz` to produce node-virtual time.
    pub host_ghz: f64,
    /// Re-run a failing job up to this many extra attempts (Condor
    /// requeue-on-failure).
    pub retries: u32,
}

impl GridCluster {
    /// A cluster with the default host clock estimate (3 GHz).
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        GridCluster { nodes, host_ghz: 3.0, retries: 1 }
    }

    /// Total job slots.
    pub fn slots(&self) -> usize {
        self.nodes.iter().map(|n| n.cpus).sum()
    }

    /// Run a batch: execute every job (in parallel on the host), then place
    /// the measured jobs onto node slots in virtual time.
    pub fn run_batch<J, T>(
        &self,
        das: &DataArchiveServer,
        jobs: Vec<JobSpec<J>>,
        worker: impl Fn(&J, &StageIn) -> Result<T, String> + Sync,
    ) -> (Vec<JobRun<T>>, BatchReport)
    where
        J: Send + Sync,
        T: Send,
    {
        // ---- phase 1: measure -----------------------------------------
        let start = Instant::now();
        let n = jobs.len();
        let results: Vec<Mutex<Option<JobRun<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).min(n.max(1));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let job = &jobs[idx];
                    let stage = StageIn { das, accum: Mutex::new((Duration::ZERO, 0)) };
                    let t0 = Instant::now();
                    let mut output = worker(&job.payload, &stage);
                    let mut attempts_left = self.retries;
                    while output.is_err() && attempts_left > 0 {
                        attempts_left -= 1;
                        output = worker(&job.payload, &stage);
                    }
                    let compute_real = t0.elapsed();
                    let (stage_in, bytes_in) = *stage.accum.lock();
                    *results[idx].lock() = Some(JobRun {
                        name: job.name.clone(),
                        output,
                        compute_real,
                        stage_in,
                        bytes_in,
                        node: None,
                        virtual_end: Duration::ZERO,
                    });
                });
            }
        });
        let real_elapsed = start.elapsed();
        let mut runs: Vec<JobRun<T>> = results
            .into_iter()
            .map(|m| m.into_inner().expect("every job measured"))
            .collect();

        // ---- phase 2: simulate placement -------------------------------
        struct Slot {
            node_idx: usize,
            available: Duration,
        }
        let mut slots: Vec<Slot> = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(i, node)| {
                (0..node.cpus).map(move |_| Slot { node_idx: i, available: Duration::ZERO })
            })
            .collect();
        let mut report = BatchReport { real_elapsed, ..BatchReport::default() };
        for (run, job) in runs.iter_mut().zip(&jobs) {
            if run.output.is_err() {
                report.failed += 1;
            }
            let slot = slots
                .iter_mut()
                .filter(|s| self.nodes[s.node_idx].ram_mb >= job.ram_mb)
                .min_by_key(|s| s.available);
            let Some(slot) = slot else {
                report.unschedulable += 1;
                continue;
            };
            let node = &self.nodes[slot.node_idx];
            let virtual_compute =
                Duration::from_secs_f64(run.compute_real.as_secs_f64() * self.host_ghz / node.cpu_ghz);
            let end = slot.available + run.stage_in + virtual_compute;
            slot.available = end;
            run.node = Some(node.name.clone());
            run.virtual_end = end;
            report.virtual_compute_total += virtual_compute;
            report.stage_in_total += run.stage_in;
            report.virtual_makespan = report.virtual_makespan.max(end);
        }
        (runs, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::das::NetworkModel;
    use crate::node::{tam_cluster, NodeSpec};

    fn das_with(files: &[(&str, usize)]) -> DataArchiveServer {
        let das = DataArchiveServer::new(NetworkModel::campus_2004());
        for (name, size) in files {
            das.publish(*name, vec![7u8; *size]);
        }
        das
    }

    fn jobs(n: usize, ram: u64) -> Vec<JobSpec<usize>> {
        (0..n).map(|i| JobSpec { name: format!("job{i}"), ram_mb: ram, payload: i }).collect()
    }

    #[test]
    fn all_jobs_run_and_schedule() {
        let das = das_with(&[("f", 1000)]);
        let cluster = GridCluster::new(tam_cluster());
        let (runs, report) = cluster.run_batch(&das, jobs(25, 512), |&i, stage| {
            let bytes = stage.fetch("f").map_err(|e| e.to_string())?;
            Ok(i + bytes.len())
        });
        assert_eq!(runs.len(), 25);
        assert!(runs.iter().all(|r| r.output == Ok(r.name[3..].parse::<usize>().unwrap() + 1000)));
        assert!(runs.iter().all(|r| r.node.is_some()));
        assert_eq!(report.unschedulable, 0);
        assert_eq!(report.failed, 0);
        assert!(report.virtual_makespan > Duration::ZERO);
    }

    #[test]
    fn makespan_reflects_parallelism() {
        // 20 equal jobs on 10 slots take ~2 job-times; on 2 slots ~10.
        // Jobs sleep rather than spin so their measured wall time is
        // immune to host CPU contention while the suite runs.
        let das = das_with(&[]);
        let nap = |_: &usize, _: &StageIn| -> Result<(), String> {
            std::thread::sleep(Duration::from_millis(5));
            Ok(())
        };
        let wide = GridCluster::new(tam_cluster()); // 10 slots
        let (_, wide_report) = wide.run_batch(&das, jobs(20, 1), nap);
        let narrow = GridCluster::new(vec![NodeSpec::tam(1)]); // 2 slots
        let (_, narrow_report) = narrow.run_batch(&das, jobs(20, 1), nap);
        let ratio =
            narrow_report.virtual_makespan.as_secs_f64() / wide_report.virtual_makespan.as_secs_f64();
        assert!(
            (2.5..9.0).contains(&ratio),
            "5x slots should shrink makespan ~5x, got {ratio:.2}"
        );
    }

    #[test]
    fn slower_nodes_yield_longer_virtual_time() {
        let das = das_with(&[]);
        let nap = |_: &usize, _: &StageIn| -> Result<(), String> {
            std::thread::sleep(Duration::from_millis(5));
            Ok(())
        };
        let tam = GridCluster::new(vec![NodeSpec::tam(1)]); // 0.6 GHz
        let sql = GridCluster::new(vec![NodeSpec::sql_server(1)]); // 2.6 GHz
        let (_, t_tam) = tam.run_batch(&das, jobs(4, 1), nap);
        let (_, t_sql) = sql.run_batch(&das, jobs(4, 1), nap);
        let ratio = t_tam.virtual_compute_total.as_secs_f64()
            / t_sql.virtual_compute_total.as_secs_f64();
        assert!(
            (ratio - 2.6 / 0.6).abs() < 1.5,
            "virtual time should scale by clock ratio, got {ratio:.2}"
        );
    }

    #[test]
    fn ram_constraint_blocks_scheduling() {
        let das = das_with(&[]);
        let cluster = GridCluster::new(tam_cluster()); // 1 GB nodes
        let (runs, report) =
            cluster.run_batch(&das, jobs(3, 4096), |_, _| -> Result<(), String> { Ok(()) });
        assert_eq!(report.unschedulable, 3);
        assert!(runs.iter().all(|r| r.node.is_none()));
    }

    #[test]
    fn failures_are_reported_and_retried() {
        let das = das_with(&[]);
        let mut cluster = GridCluster::new(tam_cluster());
        cluster.retries = 0;
        let (runs, report) = cluster.run_batch(&das, jobs(4, 1), |&i, _| {
            if i % 2 == 0 {
                Err(format!("job {i} exploded"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(report.failed, 2);
        assert!(runs[0].output.is_err() && runs[1].output.is_ok());
        // Retries rescue flaky jobs: a counter-based worker that fails on
        // first attempt succeeds with retries = 1.
        cluster.retries = 1;
        let attempts = AtomicUsize::new(0);
        let (runs, report) = cluster.run_batch(&das, jobs(1, 1), |_, _| {
            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                Err("flaky".into())
            } else {
                Ok(0usize)
            }
        });
        assert_eq!(report.failed, 0);
        assert!(runs[0].output.is_ok());
    }

    #[test]
    fn stage_in_accounted_per_job() {
        let das = das_with(&[("big", 5_000_000)]); // 0.5 s at 10 MB/s
        let cluster = GridCluster::new(tam_cluster());
        let (runs, report) = cluster.run_batch(&das, jobs(2, 1), |_, stage| {
            stage.fetch("big").map_err(|e| e.to_string()).map(|b| b.len())
        });
        assert!(runs.iter().all(|r| r.bytes_in == 5_000_000));
        assert!(runs.iter().all(|r| r.stage_in > Duration::from_millis(400)));
        assert!(report.stage_in_total > Duration::from_millis(800));
    }
}
