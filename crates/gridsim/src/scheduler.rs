//! The batch scheduler: Condor-style matchmaking over virtual nodes.
//!
//! Jobs run for real (the worker closure executes actual Rust code against
//! actually-fetched files) while node timing is **simulated**: measured
//! compute time is scaled by the node's clock relative to the benchmark
//! host, stage-in cost comes from the archive's network model, and jobs are
//! placed on node slots by greedy earliest-available list scheduling — the
//! behavior of a matchmaking batch system over an embarrassingly parallel
//! workload.
//!
//! Execution and scheduling are deliberately decoupled into two phases
//! (measure, then simulate placement) so the virtual makespan is
//! deterministic and independent of host core count or oversubscription —
//! the reproduction's TAM numbers must not depend on how many cores this
//! machine happens to have.

use crate::das::{DasError, DataArchiveServer};
use crate::faults::{backoff_delay, FaultPlan};
use crate::node::NodeSpec;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One job to schedule.
pub struct JobSpec<J> {
    /// Job name (for reports).
    pub name: String,
    /// Declared working-set size; nodes with less RAM cannot run the job.
    pub ram_mb: u64,
    /// Workload payload handed to the worker.
    pub payload: J,
}

/// One routed job: a subquery pinned to the node that homes its shard.
///
/// Unlike [`JobSpec`] batch jobs — which the matchmaker may place on any
/// node because they stage their own data in — a routed job's data already
/// lives on a specific node (a zone-range shard of the catalog), so the
/// scheduler sends the job *to the data*, the paper's central argument.
/// Only when the home node fails does the job move: each failed attempt
/// advances one step around the node ring (a replica / re-opened shard),
/// skipping blacklisted nodes.
pub struct RoutedJob<J> {
    /// Job name (also the fault-plan key, so chaos schedules can target
    /// one shard's subquery deterministically).
    pub name: String,
    /// Declared working-set size; nodes with less RAM cannot run the job.
    pub ram_mb: u64,
    /// Index into the cluster's node list of the shard-holding node.
    pub home: usize,
    /// Workload payload handed to the worker.
    pub payload: J,
}

/// Stage-in handle passed to workers: fetches go through the archive and
/// are accounted to the current job. When the cluster carries a
/// [`FaultPlan`], fetches are checksum-verified with bounded retry, and
/// the wasted time of dropped/corrupted attempts is billed to the job.
pub struct StageIn<'a> {
    das: &'a DataArchiveServer,
    accum: Mutex<(Duration, u64)>,
    faults: Option<&'a FaultPlan>,
    transfer_attempts: u32,
}

impl StageIn<'_> {
    /// Fetch a file from the archive, accumulating modeled transfer time.
    pub fn fetch(&self, name: &str) -> Result<Vec<u8>, DasError> {
        let (bytes, t, _attempts) =
            self.das.fetch_verified(name, self.faults, self.transfer_attempts)?;
        let mut acc = self.accum.lock();
        acc.0 += t;
        acc.1 += bytes.len() as u64;
        Ok(bytes)
    }
}

/// Result of one job.
#[derive(Debug, Clone)]
pub struct JobRun<T> {
    /// Job name.
    pub name: String,
    /// Worker output, or the failure message.
    pub output: Result<T, String>,
    /// Measured compute time on the host, summed over attempts (straggler
    /// faults inflate it by their slowdown factor).
    pub compute_real: Duration,
    /// Modeled stage-in time.
    pub stage_in: Duration,
    /// Bytes staged in.
    pub bytes_in: u64,
    /// Node the simulator placed the job on (`None` if unschedulable).
    pub node: Option<String>,
    /// Virtual completion time of the job within the batch.
    pub virtual_end: Duration,
    /// Attempts the job consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Virtual requeue delay accumulated by exponential backoff.
    pub backoff: Duration,
    /// Whether the final attempt was killed by the per-job timeout.
    pub timed_out: bool,
}

/// Virtual-time accounting for one node across a batch: how much of the
/// makespan this node spent computing vs. waiting on stage-in. The paper's
/// Figure 6 discussion ("about 25% more CPU time than the DB approach")
/// is checkable from these totals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeUsage {
    /// Node name (matches [`NodeSpec::name`]).
    pub node: String,
    /// Virtual compute charged to this node's slots.
    pub virtual_cpu: Duration,
    /// Modeled stage-in (I/O wait) charged to this node's slots.
    pub io_wait: Duration,
    /// Jobs placed on this node.
    pub jobs: u32,
}

/// Whole-batch accounting.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Virtual wall time for the cluster to drain the batch.
    pub virtual_makespan: Duration,
    /// Sum of virtual compute across jobs.
    pub virtual_compute_total: Duration,
    /// Sum of modeled stage-in across jobs.
    pub stage_in_total: Duration,
    /// Real wall time of the measurement phase on the host.
    pub real_elapsed: Duration,
    /// Jobs no node could satisfy (RAM constraint).
    pub unschedulable: u32,
    /// Jobs that returned an error.
    pub failed: u32,
    /// Jobs that needed more than one attempt.
    pub retried: u32,
    /// Total attempts across all jobs.
    pub attempts_total: u32,
    /// Jobs whose final attempt exceeded the per-job timeout.
    pub timed_out: u32,
    /// Total virtual backoff delay across jobs.
    pub backoff_total: Duration,
    /// Nodes blacklisted during placement for accumulating failures.
    pub blacklisted: Vec<String>,
    /// Per-node virtual CPU and I/O-wait totals, one entry per cluster
    /// node in declaration order (including nodes that received no jobs).
    pub per_node: Vec<NodeUsage>,
}

impl BatchReport {
    /// Mirror this report into the global `obs` registry: batch totals
    /// under `gridsim.scheduler.*`, per-node virtual time under
    /// `gridsim.node.{name}.*`. Called by [`GridCluster::run_batch`]; the
    /// makespan is a max (not additive) so it lands in a gauge.
    pub fn record_to_obs(&self) {
        obs::counter("gridsim.scheduler.batches").incr();
        obs::counter("gridsim.scheduler.jobs_failed").add(self.failed as u64);
        obs::counter("gridsim.scheduler.jobs_retried").add(self.retried as u64);
        obs::counter("gridsim.scheduler.jobs_timed_out").add(self.timed_out as u64);
        obs::counter("gridsim.scheduler.jobs_unschedulable").add(self.unschedulable as u64);
        obs::counter("gridsim.scheduler.attempts").add(self.attempts_total as u64);
        obs::counter("gridsim.scheduler.nodes_blacklisted").add(self.blacklisted.len() as u64);
        obs::counter("gridsim.scheduler.backoff_ns").add(self.backoff_total.as_nanos() as u64);
        obs::counter("gridsim.scheduler.virtual_compute_ns")
            .add(self.virtual_compute_total.as_nanos() as u64);
        obs::counter("gridsim.scheduler.stage_in_ns").add(self.stage_in_total.as_nanos() as u64);
        obs::gauge("gridsim.scheduler.virtual_makespan_ns")
            .set(self.virtual_makespan.as_nanos() as i64);
        for nu in &self.per_node {
            let base = format!("gridsim.node.{}", nu.node);
            obs::counter(&format!("{base}.virtual_cpu_ns")).add(nu.virtual_cpu.as_nanos() as u64);
            obs::counter(&format!("{base}.io_wait_ns")).add(nu.io_wait.as_nanos() as u64);
            obs::counter(&format!("{base}.jobs")).add(nu.jobs as u64);
        }
    }
}

/// Requeue-on-failure policy: exponential backoff with a cap, jittered
/// deterministically from the cluster's fault-plan seed so virtual-time
/// accounting is reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// First requeue delay.
    pub backoff_base: Duration,
    /// Upper bound on any single requeue delay.
    pub backoff_cap: Duration,
    /// Checksum-verified transfer attempts per stage-in fetch.
    pub transfer_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            backoff_base: Duration::from_millis(200),
            backoff_cap: Duration::from_secs(30),
            transfer_attempts: 3,
        }
    }
}

/// A virtual cluster: nodes plus the host clock they are scaled against.
#[derive(Debug, Clone)]
pub struct GridCluster {
    /// Member nodes.
    pub nodes: Vec<NodeSpec>,
    /// Benchmark-host clock in GHz; measured compute is multiplied by
    /// `host_ghz / node.cpu_ghz` to produce node-virtual time.
    pub host_ghz: f64,
    /// Re-run a failing job up to this many extra attempts (Condor
    /// requeue-on-failure).
    pub retries: u32,
    /// Backoff shape for those re-runs.
    pub retry: RetryPolicy,
    /// Kill a job attempt whose (straggler-inflated) host compute exceeds
    /// this bound; the attempt fails and is requeued like any other
    /// failure. `None` disables the timeout.
    pub job_timeout: Option<Duration>,
    /// Blacklist a node once this many failed jobs have been placed on it
    /// (0 disables blacklisting). The last healthy node is never
    /// blacklisted — the grid must stay able to drain the queue.
    pub blacklist_after: u32,
    /// Fault schedule injected into job attempts and stage-in transfers.
    pub faults: Option<FaultPlan>,
}

impl GridCluster {
    /// A cluster with the default host clock estimate (3 GHz).
    pub fn new(nodes: Vec<NodeSpec>) -> Self {
        GridCluster {
            nodes,
            host_ghz: 3.0,
            retries: 1,
            retry: RetryPolicy::default(),
            job_timeout: None,
            blacklist_after: 0,
            faults: None,
        }
    }

    /// Attach a fault schedule (builder style).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Total job slots.
    pub fn slots(&self) -> usize {
        self.nodes.iter().map(|n| n.cpus).sum()
    }

    /// Run a batch: execute every job (in parallel on the host), then place
    /// the measured jobs onto node slots in virtual time.
    pub fn run_batch<J, T>(
        &self,
        das: &DataArchiveServer,
        jobs: Vec<JobSpec<J>>,
        worker: impl Fn(&J, &StageIn) -> Result<T, String> + Sync,
    ) -> (Vec<JobRun<T>>, BatchReport)
    where
        J: Send + Sync,
        T: Send,
    {
        // ---- phase 1: measure -----------------------------------------
        let _span = obs::span("run_batch");
        let start = Instant::now();
        let n = jobs.len();
        let results: Vec<Mutex<Option<JobRun<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).min(n.max(1));
        let max_attempts = self.retries.saturating_add(1);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let job = &jobs[idx];
                    let stage = StageIn {
                        das,
                        accum: Mutex::new((Duration::ZERO, 0)),
                        faults: self.faults.as_ref(),
                        transfer_attempts: self.retry.transfer_attempts,
                    };
                    let mut attempt = 0u32;
                    let mut compute_real = Duration::ZERO;
                    let mut backoff = Duration::ZERO;
                    let (output, timed_out) = loop {
                        let t0 = Instant::now();
                        let mut out = match &self.faults {
                            Some(plan) if plan.node_crashes(&job.name, attempt) => Err(format!(
                                "injected fault: {} crashed on attempt {}",
                                job.name,
                                attempt + 1
                            )),
                            _ => worker(&job.payload, &stage),
                        };
                        // Stragglers: the attempt's measured compute is
                        // stretched by the injected slowdown factor.
                        let mult = self
                            .faults
                            .as_ref()
                            .map_or(1.0, |p| p.straggler_multiplier(&job.name, attempt));
                        let eff =
                            Duration::from_secs_f64(t0.elapsed().as_secs_f64() * mult);
                        compute_real += eff;
                        let mut timed = false;
                        if out.is_ok() {
                            if let Some(limit) = self.job_timeout {
                                if eff > limit {
                                    timed = true;
                                    out = Err(format!(
                                        "job {} killed by timeout: ran {:.3}s against a {:.3}s bound",
                                        job.name,
                                        eff.as_secs_f64(),
                                        limit.as_secs_f64()
                                    ));
                                }
                            }
                        }
                        attempt += 1;
                        if out.is_ok() || attempt >= max_attempts {
                            break (out, timed);
                        }
                        let jitter = self
                            .faults
                            .as_ref()
                            .map_or(0.0, |p| p.jitter01(&job.name, attempt));
                        backoff += backoff_delay(
                            self.retry.backoff_base,
                            self.retry.backoff_cap,
                            attempt,
                            jitter,
                        );
                    };
                    let (stage_in, bytes_in) = *stage.accum.lock();
                    *results[idx].lock() = Some(JobRun {
                        name: job.name.clone(),
                        output,
                        compute_real,
                        stage_in,
                        bytes_in,
                        node: None,
                        virtual_end: Duration::ZERO,
                        attempts: attempt,
                        backoff,
                        timed_out,
                    });
                });
            }
        });
        let real_elapsed = start.elapsed();
        let mut runs: Vec<JobRun<T>> = results
            .into_iter()
            .map(|m| m.into_inner().expect("every job measured"))
            .collect();

        // ---- phase 2: simulate placement -------------------------------
        struct Slot {
            node_idx: usize,
            available: Duration,
        }
        let mut slots: Vec<Slot> = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(i, node)| {
                (0..node.cpus).map(move |_| Slot { node_idx: i, available: Duration::ZERO })
            })
            .collect();
        let mut report = BatchReport { real_elapsed, ..BatchReport::default() };
        report.per_node = self
            .nodes
            .iter()
            .map(|n| NodeUsage { node: n.name.clone(), ..NodeUsage::default() })
            .collect();
        let mut strikes: Vec<u32> = vec![0; self.nodes.len()];
        let mut blacklisted: Vec<bool> = vec![false; self.nodes.len()];
        for (run, job) in runs.iter_mut().zip(&jobs) {
            if run.output.is_err() {
                report.failed += 1;
            }
            if run.attempts > 1 {
                report.retried += 1;
            }
            report.attempts_total += run.attempts;
            if run.timed_out {
                report.timed_out += 1;
            }
            report.backoff_total += run.backoff;
            // Prefer healthy nodes; fall back to blacklisted ones rather
            // than stranding a schedulable job.
            let healthy_fits = slots
                .iter()
                .any(|s| !blacklisted[s.node_idx] && self.nodes[s.node_idx].ram_mb >= job.ram_mb);
            let slot = slots
                .iter_mut()
                .filter(|s| {
                    self.nodes[s.node_idx].ram_mb >= job.ram_mb
                        && (!healthy_fits || !blacklisted[s.node_idx])
                })
                .min_by_key(|s| s.available);
            let Some(slot) = slot else {
                report.unschedulable += 1;
                continue;
            };
            let node_idx = slot.node_idx;
            let node = &self.nodes[node_idx];
            let virtual_compute =
                Duration::from_secs_f64(run.compute_real.as_secs_f64() * self.host_ghz / node.cpu_ghz);
            // Requeue backoff holds the slot: Condor charges the queue,
            // not the job's own cpu.
            let end = slot.available + run.stage_in + run.backoff + virtual_compute;
            slot.available = end;
            run.node = Some(node.name.clone());
            run.virtual_end = end;
            report.virtual_compute_total += virtual_compute;
            report.stage_in_total += run.stage_in;
            report.virtual_makespan = report.virtual_makespan.max(end);
            report.per_node[node_idx].virtual_cpu += virtual_compute;
            report.per_node[node_idx].io_wait += run.stage_in;
            report.per_node[node_idx].jobs += 1;
            // Flaky-node accounting: a failed job strikes the node it ran
            // on; enough strikes blacklist the node for later placements,
            // unless it is the last healthy one.
            if run.output.is_err() && self.blacklist_after > 0 {
                strikes[node_idx] += 1;
                let healthy = blacklisted.iter().filter(|b| !**b).count();
                if strikes[node_idx] >= self.blacklist_after && healthy > 1 {
                    blacklisted[node_idx] = true;
                    report.blacklisted.push(node.name.clone());
                }
            }
        }
        report.record_to_obs();
        (runs, report)
    }

    /// Run a scatter of routed jobs: each job executes on its home node
    /// (the node holding its shard), re-routing one ring step per failed
    /// attempt. Measurement is sequential and placement is interleaved
    /// with it, because routing decisions depend on the evolving
    /// strike/blacklist state — the whole pass is deterministic for a
    /// given fault plan, which the distributed-identity tests rely on.
    ///
    /// There is no stage-in: the data is already resident on the node.
    /// The worker receives the payload and the node actually executing
    /// the attempt, and must produce a node-independent result (shard
    /// stores are re-opened elsewhere on failover, not recomputed), so
    /// retries cannot perturb query answers.
    pub fn run_routed<J, T>(
        &self,
        jobs: Vec<RoutedJob<J>>,
        worker: impl Fn(&J, &NodeSpec) -> Result<T, String>,
    ) -> (Vec<JobRun<T>>, BatchReport) {
        let _span = obs::span("run_routed");
        let start = Instant::now();
        let n_nodes = self.nodes.len();
        assert!(n_nodes > 0, "routed scatter needs at least one node");
        let max_attempts = self.retries.saturating_add(1);

        struct Slot {
            node_idx: usize,
            available: Duration,
        }
        let mut slots: Vec<Slot> = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(i, node)| {
                (0..node.cpus).map(move |_| Slot { node_idx: i, available: Duration::ZERO })
            })
            .collect();
        let mut report = BatchReport {
            per_node: self
                .nodes
                .iter()
                .map(|n| NodeUsage { node: n.name.clone(), ..NodeUsage::default() })
                .collect(),
            ..BatchReport::default()
        };
        let mut strikes: Vec<u32> = vec![0; n_nodes];
        let mut blacklisted: Vec<bool> = vec![false; n_nodes];
        let mut runs: Vec<JobRun<T>> = Vec::with_capacity(jobs.len());

        for job in &jobs {
            // Ring routing: failed attempt k+1 runs on the next fitting,
            // non-blacklisted node after the one attempt k used; if every
            // fitting node is blacklisted, fall back to blacklisted ones
            // rather than stranding the subquery.
            let route = |step: u32, blacklisted: &[bool]| -> Option<usize> {
                let start = (job.home + step as usize) % n_nodes;
                let ring = (0..n_nodes).map(|d| (start + d) % n_nodes);
                let fits = |i: &usize| self.nodes[*i].ram_mb >= job.ram_mb;
                ring.clone()
                    .filter(fits)
                    .find(|&i| !blacklisted[i])
                    .or_else(|| ring.clone().find(fits))
            };
            if route(0, &blacklisted).is_none() {
                report.unschedulable += 1;
                runs.push(JobRun {
                    name: job.name.clone(),
                    output: Err(format!("no node can satisfy {} MB", job.ram_mb)),
                    compute_real: Duration::ZERO,
                    stage_in: Duration::ZERO,
                    bytes_in: 0,
                    node: None,
                    virtual_end: Duration::ZERO,
                    attempts: 0,
                    backoff: Duration::ZERO,
                    timed_out: false,
                });
                continue;
            }
            let mut attempt = 0u32;
            let mut compute_real = Duration::ZERO;
            let mut backoff = Duration::ZERO;
            let (output, timed_out, node_idx) = loop {
                let node_idx = route(attempt, &blacklisted).expect("checked above");
                let node = &self.nodes[node_idx];
                let t0 = Instant::now();
                let mut out = match &self.faults {
                    Some(plan) if plan.node_crashes(&job.name, attempt) => Err(format!(
                        "injected fault: node {} crashed running {} on attempt {}",
                        node.name,
                        job.name,
                        attempt + 1
                    )),
                    _ => worker(&job.payload, node),
                };
                let mult = self
                    .faults
                    .as_ref()
                    .map_or(1.0, |p| p.straggler_multiplier(&job.name, attempt));
                let eff = Duration::from_secs_f64(t0.elapsed().as_secs_f64() * mult);
                compute_real += eff;
                let mut timed = false;
                if out.is_ok() {
                    if let Some(limit) = self.job_timeout {
                        if eff > limit {
                            timed = true;
                            out = Err(format!(
                                "job {} killed by timeout: ran {:.3}s against a {:.3}s bound",
                                job.name,
                                eff.as_secs_f64(),
                                limit.as_secs_f64()
                            ));
                        }
                    }
                }
                // A failed attempt strikes the node it actually ran on —
                // the same flaky-node accounting as batch placement, but
                // applied eagerly so the *next* attempt routes around it.
                if out.is_err() && self.blacklist_after > 0 {
                    strikes[node_idx] += 1;
                    let healthy = blacklisted.iter().filter(|b| !**b).count();
                    if strikes[node_idx] >= self.blacklist_after && healthy > 1 {
                        blacklisted[node_idx] = true;
                        report.blacklisted.push(node.name.clone());
                    }
                }
                attempt += 1;
                if out.is_ok() || attempt >= max_attempts {
                    break (out, timed, node_idx);
                }
                let jitter =
                    self.faults.as_ref().map_or(0.0, |p| p.jitter01(&job.name, attempt));
                backoff += backoff_delay(
                    self.retry.backoff_base,
                    self.retry.backoff_cap,
                    attempt,
                    jitter,
                );
            };
            if output.is_err() {
                report.failed += 1;
            }
            if attempt > 1 {
                report.retried += 1;
            }
            report.attempts_total += attempt;
            if timed_out {
                report.timed_out += 1;
            }
            report.backoff_total += backoff;
            let node = &self.nodes[node_idx];
            let virtual_compute =
                Duration::from_secs_f64(compute_real.as_secs_f64() * self.host_ghz / node.cpu_ghz);
            let slot = slots
                .iter_mut()
                .filter(|s| s.node_idx == node_idx)
                .min_by_key(|s| s.available)
                .expect("every node has at least one slot");
            let end = slot.available + backoff + virtual_compute;
            slot.available = end;
            report.virtual_compute_total += virtual_compute;
            report.virtual_makespan = report.virtual_makespan.max(end);
            report.per_node[node_idx].virtual_cpu += virtual_compute;
            report.per_node[node_idx].jobs += 1;
            runs.push(JobRun {
                name: job.name.clone(),
                output,
                compute_real,
                stage_in: Duration::ZERO,
                bytes_in: 0,
                node: Some(node.name.clone()),
                virtual_end: end,
                attempts: attempt,
                backoff,
                timed_out,
            });
        }
        report.real_elapsed = start.elapsed();
        report.record_to_obs();
        (runs, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::das::NetworkModel;
    use crate::node::{tam_cluster, NodeSpec};

    fn das_with(files: &[(&str, usize)]) -> DataArchiveServer {
        let das = DataArchiveServer::new(NetworkModel::campus_2004());
        for (name, size) in files {
            das.publish(*name, vec![7u8; *size]);
        }
        das
    }

    fn jobs(n: usize, ram: u64) -> Vec<JobSpec<usize>> {
        (0..n).map(|i| JobSpec { name: format!("job{i}"), ram_mb: ram, payload: i }).collect()
    }

    #[test]
    fn all_jobs_run_and_schedule() {
        let das = das_with(&[("f", 1000)]);
        let cluster = GridCluster::new(tam_cluster());
        let (runs, report) = cluster.run_batch(&das, jobs(25, 512), |&i, stage| {
            let bytes = stage.fetch("f").map_err(|e| e.to_string())?;
            Ok(i + bytes.len())
        });
        assert_eq!(runs.len(), 25);
        assert!(runs.iter().all(|r| r.output == Ok(r.name[3..].parse::<usize>().unwrap() + 1000)));
        assert!(runs.iter().all(|r| r.node.is_some()));
        assert_eq!(report.unschedulable, 0);
        assert_eq!(report.failed, 0);
        assert!(report.virtual_makespan > Duration::ZERO);
    }

    #[test]
    fn makespan_reflects_parallelism() {
        // 20 equal jobs on 10 slots take ~2 job-times; on 2 slots ~10.
        // Jobs sleep rather than spin so their measured wall time is
        // immune to host CPU contention while the suite runs.
        let das = das_with(&[]);
        let nap = |_: &usize, _: &StageIn| -> Result<(), String> {
            std::thread::sleep(Duration::from_millis(5));
            Ok(())
        };
        let wide = GridCluster::new(tam_cluster()); // 10 slots
        let (_, wide_report) = wide.run_batch(&das, jobs(20, 1), nap);
        let narrow = GridCluster::new(vec![NodeSpec::tam(1)]); // 2 slots
        let (_, narrow_report) = narrow.run_batch(&das, jobs(20, 1), nap);
        let ratio =
            narrow_report.virtual_makespan.as_secs_f64() / wide_report.virtual_makespan.as_secs_f64();
        assert!(
            (2.5..9.0).contains(&ratio),
            "5x slots should shrink makespan ~5x, got {ratio:.2}"
        );
    }

    #[test]
    fn slower_nodes_yield_longer_virtual_time() {
        let das = das_with(&[]);
        let nap = |_: &usize, _: &StageIn| -> Result<(), String> {
            std::thread::sleep(Duration::from_millis(5));
            Ok(())
        };
        let tam = GridCluster::new(vec![NodeSpec::tam(1)]); // 0.6 GHz
        let sql = GridCluster::new(vec![NodeSpec::sql_server(1)]); // 2.6 GHz
        let (_, t_tam) = tam.run_batch(&das, jobs(4, 1), nap);
        let (_, t_sql) = sql.run_batch(&das, jobs(4, 1), nap);
        let ratio = t_tam.virtual_compute_total.as_secs_f64()
            / t_sql.virtual_compute_total.as_secs_f64();
        assert!(
            (ratio - 2.6 / 0.6).abs() < 1.5,
            "virtual time should scale by clock ratio, got {ratio:.2}"
        );
    }

    #[test]
    fn ram_constraint_blocks_scheduling() {
        let das = das_with(&[]);
        let cluster = GridCluster::new(tam_cluster()); // 1 GB nodes
        let (runs, report) =
            cluster.run_batch(&das, jobs(3, 4096), |_, _| -> Result<(), String> { Ok(()) });
        assert_eq!(report.unschedulable, 3);
        assert!(runs.iter().all(|r| r.node.is_none()));
    }

    #[test]
    fn failures_are_reported_and_retried() {
        let das = das_with(&[]);
        let mut cluster = GridCluster::new(tam_cluster());
        cluster.retries = 0;
        let (runs, report) = cluster.run_batch(&das, jobs(4, 1), |&i, _| {
            if i % 2 == 0 {
                Err(format!("job {i} exploded"))
            } else {
                Ok(i)
            }
        });
        assert_eq!(report.failed, 2);
        assert!(runs[0].output.is_err() && runs[1].output.is_ok());
        // Retries rescue flaky jobs: a counter-based worker that fails on
        // first attempt succeeds with retries = 1.
        cluster.retries = 1;
        let attempts = AtomicUsize::new(0);
        let (runs, report) = cluster.run_batch(&das, jobs(1, 1), |_, _| {
            if attempts.fetch_add(1, Ordering::Relaxed) == 0 {
                Err("flaky".into())
            } else {
                Ok(0usize)
            }
        });
        assert_eq!(report.failed, 0);
        assert!(runs[0].output.is_ok());
    }

    #[test]
    fn stage_in_accounted_per_job() {
        let das = das_with(&[("big", 5_000_000)]); // 0.5 s at 10 MB/s
        let cluster = GridCluster::new(tam_cluster());
        let (runs, report) = cluster.run_batch(&das, jobs(2, 1), |_, stage| {
            stage.fetch("big").map_err(|e| e.to_string()).map(|b| b.len())
        });
        assert!(runs.iter().all(|r| r.bytes_in == 5_000_000));
        assert!(runs.iter().all(|r| r.stage_in > Duration::from_millis(400)));
        assert!(report.stage_in_total > Duration::from_millis(800));
    }

    #[test]
    fn injected_crashes_are_recovered_by_retries_with_backoff() {
        use crate::faults::{FaultConfig, FaultPlan};
        let das = das_with(&[]);
        // Every job crashes on exactly its first attempt; one retry rescues it.
        let mut cluster = GridCluster::new(tam_cluster())
            .with_faults(FaultPlan::new(FaultConfig::always(11, 1)));
        cluster.retries = 2;
        let (runs, report) =
            cluster.run_batch(&das, jobs(6, 1), |&i, _| -> Result<usize, String> { Ok(i) });
        assert_eq!(report.failed, 0, "bounded faults + retries must converge");
        assert_eq!(report.retried, 6);
        assert_eq!(report.attempts_total, 12, "each job: 1 crash + 1 success");
        assert!(report.backoff_total > Duration::ZERO);
        assert!(runs.iter().all(|r| r.output.is_ok() && r.attempts == 2 && r.backoff > Duration::ZERO));
        let injected = cluster.faults.as_ref().unwrap().report();
        assert_eq!(injected.node_crashes, 6);
    }

    #[test]
    fn fault_schedule_is_reproducible_across_runs() {
        use crate::faults::{FaultConfig, FaultPlan};
        let das = das_with(&[]);
        let batch = |seed: u64| {
            let mut cluster = GridCluster::new(tam_cluster())
                .with_faults(FaultPlan::new(FaultConfig::severe(seed)));
            cluster.retries = 4;
            let (runs, report) =
                cluster.run_batch(&das, jobs(8, 1), |_, _| -> Result<(), String> { Ok(()) });
            let shape: Vec<(u32, Duration)> =
                runs.iter().map(|r| (r.attempts, r.backoff)).collect();
            (shape, report.backoff_total)
        };
        let (a, a_total) = batch(77);
        let (b, b_total) = batch(77);
        assert_eq!(a, b, "same seed must yield identical attempts and backoff");
        assert_eq!(a_total, b_total);
        let (c, _) = batch(78);
        assert_ne!(a, c, "a different seed should perturb the schedule");
    }

    #[test]
    fn flaky_nodes_are_blacklisted_but_last_healthy_survives() {
        let das = das_with(&[]);
        let mut cluster = GridCluster::new(vec![NodeSpec::tam(1), NodeSpec::tam(2)]);
        cluster.retries = 0;
        cluster.blacklist_after = 1;
        let (runs, report) =
            cluster.run_batch(&das, jobs(6, 1), |_, _| -> Result<(), String> {
                Err("hardware fault".into())
            });
        // The first failure strikes tam1 out; tam2 must keep taking work
        // (never blacklist the last healthy node).
        assert_eq!(report.blacklisted, vec!["tam1".to_string()]);
        assert!(runs.iter().all(|r| r.node.is_some()), "jobs must not strand");
        assert!(runs.iter().skip(1).all(|r| r.node.as_deref() == Some("tam2")));
    }

    #[test]
    fn per_node_usage_sums_to_batch_totals() {
        let das = das_with(&[("f", 2_000_000)]);
        let cluster = GridCluster::new(tam_cluster());
        let (_, report) = cluster.run_batch(&das, jobs(12, 1), |&i, stage| {
            let bytes = stage.fetch("f").map_err(|e| e.to_string())?;
            Ok(i + bytes.len())
        });
        assert_eq!(report.per_node.len(), tam_cluster().len());
        let cpu: Duration = report.per_node.iter().map(|n| n.virtual_cpu).sum();
        let io: Duration = report.per_node.iter().map(|n| n.io_wait).sum();
        let placed: u32 = report.per_node.iter().map(|n| n.jobs).sum();
        assert_eq!(cpu, report.virtual_compute_total);
        assert_eq!(io, report.stage_in_total);
        assert_eq!(placed, 12);
        assert!(io > Duration::ZERO, "stage-in must show up as node I/O wait");
    }

    fn routed(n: usize, ram: u64) -> Vec<RoutedJob<usize>> {
        (0..n)
            .map(|i| RoutedJob { name: format!("q0.s{i}"), ram_mb: ram, home: i, payload: i })
            .collect()
    }

    #[test]
    fn routed_jobs_land_on_their_home_nodes() {
        let cluster = GridCluster::new(crate::node::db_cluster(4));
        let (runs, report) = cluster.run_routed(routed(4, 512), |&i, node| {
            assert_eq!(node.name, format!("db{i}"), "fault-free scatter must stay home");
            Ok(i * 10)
        });
        assert_eq!(runs.len(), 4);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.output, Ok(i * 10));
            assert_eq!(r.node.as_deref(), Some(format!("db{i}").as_str()));
            assert_eq!(r.attempts, 1);
        }
        assert_eq!(report.failed, 0);
        assert_eq!(report.unschedulable, 0);
        // One job per node: every node shows exactly one placement.
        assert!(report.per_node.iter().all(|n| n.jobs == 1));
    }

    #[test]
    fn routed_scatter_spreads_makespan_across_nodes() {
        // 8 equal jobs over 1 node vs 4 nodes: with data-local placement
        // the virtual makespan shrinks ~4x (2 slots per node).
        let nap = |_: &usize, _: &NodeSpec| -> Result<(), String> {
            std::thread::sleep(Duration::from_millis(5));
            Ok(())
        };
        let spread = |n: usize| {
            let cluster = GridCluster::new(crate::node::db_cluster(n));
            let jobs = (0..8)
                .map(|i| RoutedJob {
                    name: format!("j{i}"),
                    ram_mb: 1,
                    home: i % n,
                    payload: i,
                })
                .collect();
            cluster.run_routed(jobs, nap).1.virtual_makespan
        };
        let one = spread(1);
        let four = spread(4);
        let ratio = one.as_secs_f64() / four.as_secs_f64();
        assert!((2.5..6.0).contains(&ratio), "4x nodes should shrink makespan ~4x, got {ratio:.2}");
    }

    #[test]
    fn routed_crash_reroutes_to_next_ring_node() {
        use crate::faults::{FaultConfig, FaultPlan};
        // Every subquery's first attempt crashes its home node; the retry
        // must land one ring step over and succeed with the same answer.
        let mut cluster = GridCluster::new(crate::node::db_cluster(4))
            .with_faults(FaultPlan::new(FaultConfig::always(3, 1)));
        cluster.retries = 2;
        let (runs, report) = cluster.run_routed(routed(4, 1), |&i, _| Ok(i));
        assert_eq!(report.failed, 0, "one retry must rescue a single injected crash");
        assert_eq!(report.retried, 4);
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.output, Ok(i), "failover must not change the answer");
            assert_eq!(r.attempts, 2);
            assert!(r.backoff > Duration::ZERO);
            assert_eq!(
                r.node.as_deref(),
                Some(format!("db{}", (i + 1) % 4).as_str()),
                "retry must advance one ring step off the crashed home node"
            );
        }
    }

    #[test]
    fn routed_reroute_skips_blacklisted_nodes() {
        use crate::faults::{FaultConfig, FaultPlan};
        // Two nodes, both subqueries homed on db0, which always crashes
        // first attempts: after db0 is struck out, the second subquery's
        // first attempt must route straight to db1 (no blind retry on a
        // known-dead node).
        let mut cluster = GridCluster::new(crate::node::db_cluster(2))
            .with_faults(FaultPlan::new(FaultConfig::always(9, 1)));
        cluster.retries = 2;
        cluster.blacklist_after = 1;
        let jobs = vec![
            RoutedJob { name: "q0.s0".into(), ram_mb: 1, home: 0, payload: 0usize },
            RoutedJob { name: "q1.s0".into(), ram_mb: 1, home: 0, payload: 1usize },
        ];
        let (runs, report) = cluster.run_routed(jobs, |&i, _| Ok(i));
        assert_eq!(report.failed, 0);
        assert_eq!(report.blacklisted, vec!["db0".to_string()]);
        assert_eq!(runs[0].attempts, 2, "first subquery pays the crash");
        assert_eq!(runs[0].node.as_deref(), Some("db1"));
        // db0 blacklisted by the time the second subquery routes: it goes
        // to db1 directly. (Its fault-plan key still schedules one crash,
        // burned on db1's first attempt, so it may legitimately retry —
        // but never on db0.)
        assert_eq!(runs[1].node.as_deref(), Some("db1"));
    }

    #[test]
    fn routed_ram_constraint_reports_unschedulable() {
        let cluster = GridCluster::new(crate::node::db_cluster(2)); // 2 GB nodes
        let (runs, report) = cluster.run_routed(routed(2, 4096), |&i, _| Ok(i));
        assert_eq!(report.unschedulable, 2);
        assert!(runs.iter().all(|r| r.node.is_none() && r.output.is_err()));
    }

    #[test]
    fn routed_scatter_is_deterministic_for_a_seed() {
        use crate::faults::{FaultConfig, FaultPlan};
        let shape = |seed: u64| {
            let mut cluster = GridCluster::new(crate::node::db_cluster(4))
                .with_faults(FaultPlan::new(FaultConfig::severe(seed)));
            cluster.retries = 4;
            cluster.blacklist_after = 2;
            let (runs, report) = cluster.run_routed(routed(6, 1), |&i, _| Ok(i));
            // Attempts, routing, backoff, and blacklist order must all
            // reproduce; virtual times are excluded — they scale *measured*
            // host time, which carries scheduler jitter.
            let per_job: Vec<(u32, Option<String>, Duration)> =
                runs.iter().map(|r| (r.attempts, r.node.clone(), r.backoff)).collect();
            (per_job, report.blacklisted)
        };
        assert_eq!(shape(41), shape(41), "same seed must reproduce the whole scatter");
    }

    #[test]
    fn timeout_kills_overlong_jobs() {
        let das = das_with(&[]);
        let mut cluster = GridCluster::new(tam_cluster());
        cluster.retries = 0;
        cluster.job_timeout = Some(Duration::from_millis(1));
        let (runs, report) = cluster.run_batch(&das, jobs(1, 1), |_, _| -> Result<(), String> {
            std::thread::sleep(Duration::from_millis(25));
            Ok(())
        });
        assert_eq!(report.timed_out, 1);
        assert_eq!(report.failed, 1);
        assert!(runs[0].timed_out);
        assert!(runs[0].output.as_ref().unwrap_err().contains("timeout"));
    }
}
