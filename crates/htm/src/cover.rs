//! Circle coverage: which trixels does a spherical cap touch?
//!
//! The cover is *conservative*: it may include trixels that only graze the
//! cap (callers re-check exact distances, as the paper's SQL does after its
//! HTM ranges), but it never misses a trixel containing a point of the cap
//! — the property the correctness proptests pin down.

use crate::trixel::{id_range_at_depth, roots, Trixel};
use skycore::angle::{chord2_of_deg, deg_to_rad};
use skycore::UnitVec;

/// A half-open id range `[lo, hi)` of leaf trixels.
pub type IdRange = (u64, u64);

/// Compute the leaf-depth trixel ranges overlapping the cap at
/// `(ra, dec)` with angular radius `radius_deg`.
pub fn circle_cover(ra: f64, dec: f64, radius_deg: f64, depth: u32) -> Vec<IdRange> {
    let center = UnitVec::from_radec(ra, dec);
    let cap = Cap {
        center,
        cos_r: deg_to_rad(radius_deg).cos(),
        chord2: chord2_of_deg(radius_deg),
    };
    let mut ranges = Vec::new();
    for root in roots() {
        visit(&root, &cap, depth, &mut ranges);
    }
    merge(ranges)
}

struct Cap {
    center: UnitVec,
    cos_r: f64,
    chord2: f64,
}

impl Cap {
    fn contains(&self, p: &UnitVec) -> bool {
        self.center.chord2(p) <= self.chord2
    }
}

enum Class {
    Full,
    Partial,
    Outside,
}

fn classify(t: &Trixel, cap: &Cap) -> Class {
    let inside = t.v.iter().filter(|v| cap.contains(v)).count();
    if inside == 3 {
        return Class::Full;
    }
    if inside > 0 {
        return Class::Partial;
    }
    // No corner inside. The cap may still poke into the triangle through a
    // face or an edge.
    if t.contains(&cap.center) {
        return Class::Partial;
    }
    for i in 0..3 {
        if edge_intersects_cap(&t.v[i], &t.v[(i + 1) % 3], cap) {
            return Class::Partial;
        }
    }
    Class::Outside
}

/// Does the great-circle arc from `a` to `b` pass within the cap?
fn edge_intersects_cap(a: &UnitVec, b: &UnitVec, cap: &Cap) -> bool {
    let n = a.cross(b).normalized();
    let d = n.dot(&cap.center);
    // Distance from the cap center to the edge's great circle is
    // asin(|d|); compare against the cap radius via cosines.
    let sin_r2 = 1.0 - cap.cos_r * cap.cos_r;
    if d * d > sin_r2 {
        return false;
    }
    // Closest point of the great circle to the center.
    let p = UnitVec {
        x: cap.center.x - d * n.x,
        y: cap.center.y - d * n.y,
        z: cap.center.z - d * n.z,
    }
    .normalized();
    // On the arc segment when angle(a,p) + angle(p,b) == angle(a,b).
    let full = a.dot(b).clamp(-1.0, 1.0).acos();
    let part = a.dot(&p).clamp(-1.0, 1.0).acos() + p.dot(b).clamp(-1.0, 1.0).acos();
    (part - full).abs() < 1e-9
}

fn visit(t: &Trixel, cap: &Cap, depth: u32, out: &mut Vec<IdRange>) {
    match classify(t, cap) {
        Class::Outside => {}
        Class::Full => out.push(id_range_at_depth(t.id, depth)),
        Class::Partial => {
            if t.depth() >= depth {
                out.push(id_range_at_depth(t.id, depth));
            } else {
                for child in t.children() {
                    visit(&child, cap, depth, out);
                }
            }
        }
    }
}

/// Merge adjacent/overlapping sorted ranges.
fn merge(mut ranges: Vec<IdRange>) -> Vec<IdRange> {
    ranges.sort_unstable();
    let mut out: Vec<IdRange> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match out.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trixel::lookup_id;

    /// Every point inside the circle must land in some covered range.
    fn assert_no_false_negatives(ra: f64, dec: f64, r: f64, depth: u32) {
        let cover = circle_cover(ra, dec, r, depth);
        assert!(!cover.is_empty(), "cover cannot be empty");
        // Probe a spiral of interior points.
        for k in 0..200 {
            let frac = f64::from(k) / 200.0;
            let ang = frac * 40.0;
            let pr = r * frac.sqrt();
            let pra = ra + pr * ang.cos() / deg_to_rad(dec).cos().max(0.05);
            let pdec = (dec + pr * ang.sin()).clamp(-89.9, 89.9);
            let p = UnitVec::from_radec(pra, pdec);
            if p.sep_deg(&UnitVec::from_radec(ra, dec)) > r {
                continue;
            }
            let id = lookup_id(&p, depth);
            assert!(
                cover.iter().any(|&(lo, hi)| lo <= id && id < hi),
                "point ({pra},{pdec}) id {id} escaped the cover of ({ra},{dec},{r})"
            );
        }
    }

    #[test]
    fn covers_small_circles() {
        assert_no_false_negatives(195.163, 2.5, 0.5, 10);
        assert_no_false_negatives(10.0, -5.0, 0.25, 10);
    }

    #[test]
    fn covers_across_root_boundaries() {
        // Circle straddling the equator (S/N root boundary) and ra=0.
        assert_no_false_negatives(0.0, 0.0, 1.0, 8);
        assert_no_false_negatives(90.0, 0.5, 0.7, 8);
    }

    #[test]
    fn covers_near_pole() {
        assert_no_false_negatives(123.0, 88.5, 1.0, 8);
    }

    #[test]
    fn cover_is_tight_for_small_radius() {
        // A 0.1 degree circle at depth 10 (trixel side ~0.1 deg) should
        // need only a handful of ranges, not hundreds.
        let cover = circle_cover(180.0, 1.0, 0.1, 10);
        let total: u64 = cover.iter().map(|(lo, hi)| hi - lo).sum();
        assert!(total < 200, "cover too loose: {total} leaf trixels");
    }

    #[test]
    fn whole_sphere_cap_covers_everything() {
        let cover = circle_cover(0.0, 0.0, 180.0, 4);
        let total: u64 = cover.iter().map(|(lo, hi)| hi - lo).sum();
        assert_eq!(total, 8 * 4u64.pow(4), "every leaf trixel must be covered");
    }

    #[test]
    fn merge_collapses_adjacent() {
        assert_eq!(merge(vec![(4, 6), (0, 2), (2, 4)]), vec![(0, 6)]);
        assert_eq!(merge(vec![(0, 3), (1, 2)]), vec![(0, 3)]);
        assert_eq!(merge(vec![(0, 1), (5, 6)]), vec![(0, 1), (5, 6)]);
    }
}
