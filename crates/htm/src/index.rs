//! A sorted HTM index over point objects.
//!
//! This is the shape the paper's "external C-HTM library" usage takes: map
//! every object to its leaf trixel id, keep `(htm_id, objid)` sorted, and
//! answer circle queries by scanning the id ranges of a cover and
//! re-checking exact distances. The neighbor-search ablation bench compares
//! this against the zone join.

use crate::cover::circle_cover;
use crate::trixel::lookup_id;
use skycore::angle::chord2_of_deg;
use skycore::coords::UnitVec;

/// One indexed object.
#[derive(Debug, Clone, Copy)]
struct Entry {
    htm_id: u64,
    objid: i64,
    pos: UnitVec,
}

/// An immutable HTM index (build once, query many — matching how the
/// benches use it).
///
/// ```
/// use htm::HtmIndex;
///
/// let idx = HtmIndex::build(vec![(1, 180.0, 0.0), (2, 180.2, 0.0), (3, 182.0, 1.0)], 10);
/// let hits = idx.within(180.0, 0.0, 0.5);
/// let mut ids: Vec<i64> = hits.iter().map(|&(id, _)| id).collect();
/// ids.sort();
/// assert_eq!(ids, vec![1, 2]);
/// ```
pub struct HtmIndex {
    depth: u32,
    entries: Vec<Entry>,
}

impl HtmIndex {
    /// Build from `(objid, ra, dec)` triples at the given mesh depth.
    /// Depth 12 gives ~40 arcsec trixels, comparable to the paper's
    /// 30 arcsec zones.
    pub fn build(objects: impl IntoIterator<Item = (i64, f64, f64)>, depth: u32) -> Self {
        let mut entries: Vec<Entry> = objects
            .into_iter()
            .map(|(objid, ra, dec)| {
                let pos = UnitVec::from_radec(ra, dec);
                Entry { htm_id: lookup_id(&pos, depth), objid, pos }
            })
            .collect();
        entries.sort_by_key(|e| (e.htm_id, e.objid));
        HtmIndex { depth, entries }
    }

    /// Number of indexed objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Mesh depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// All objects within `radius_deg` of `(ra, dec)`, as
    /// `(objid, distance_deg)` with the paper's chord/d2r distance
    /// convention. Order follows the index (htm id, objid).
    pub fn within(&self, ra: f64, dec: f64, radius_deg: f64) -> Vec<(i64, f64)> {
        let center = UnitVec::from_radec(ra, dec);
        let chord2 = chord2_of_deg(radius_deg);
        let mut out = Vec::new();
        for (lo, hi) in circle_cover(ra, dec, radius_deg, self.depth) {
            let start = self.entries.partition_point(|e| e.htm_id < lo);
            for e in &self.entries[start..] {
                if e.htm_id >= hi {
                    break;
                }
                let c2 = center.chord2(&e.pos);
                if c2 < chord2 {
                    out.push((e.objid, skycore::angle::deg_of_chord_approx(c2.sqrt())));
                }
            }
        }
        out
    }

    /// Count of candidate entries the cover touches before the exact
    /// distance check (a measure of index selectivity for the ablation).
    pub fn candidates_scanned(&self, ra: f64, dec: f64, radius_deg: f64) -> usize {
        circle_cover(ra, dec, radius_deg, self.depth)
            .into_iter()
            .map(|(lo, hi)| {
                let start = self.entries.partition_point(|e| e.htm_id < lo);
                let end = self.entries.partition_point(|e| e.htm_id < hi);
                end - start
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic pseudo-random sky patch.
    fn patch(n: usize) -> Vec<(i64, f64, f64)> {
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|i| (i as i64, 180.0 + next() * 5.0, -2.0 + next() * 5.0))
            .collect()
    }

    #[test]
    fn within_matches_brute_force() {
        let objs = patch(2000);
        let idx = HtmIndex::build(objs.iter().copied(), 11);
        let (qra, qdec, r) = (182.5, 0.3, 0.4);
        let center = UnitVec::from_radec(qra, qdec);
        let mut expected: Vec<i64> = objs
            .iter()
            .filter(|&&(_, ra, dec)| {
                center.chord2(&UnitVec::from_radec(ra, dec)) < chord2_of_deg(r)
            })
            .map(|&(id, _, _)| id)
            .collect();
        expected.sort_unstable();
        let mut got: Vec<i64> = idx.within(qra, qdec, r).into_iter().map(|(id, _)| id).collect();
        got.sort_unstable();
        assert_eq!(got, expected);
        assert!(!got.is_empty(), "test patch should have neighbors");
    }

    #[test]
    fn distances_are_correct() {
        let objs = vec![(1, 180.0, 0.0), (2, 180.3, 0.0), (3, 181.0, 0.0)];
        let idx = HtmIndex::build(objs, 10);
        let hits = idx.within(180.0, 0.0, 0.5);
        let d: std::collections::HashMap<i64, f64> = hits.into_iter().collect();
        assert!(d[&1].abs() < 1e-9);
        assert!((d[&2] - 0.3).abs() < 1e-4);
        assert!(!d.contains_key(&3));
    }

    #[test]
    fn selectivity_beats_full_scan() {
        let objs = patch(5000);
        let idx = HtmIndex::build(objs, 11);
        let scanned = idx.candidates_scanned(182.0, 0.0, 0.2);
        assert!(scanned < 1000, "cover should prune most of 5000: {scanned}");
    }

    #[test]
    fn empty_index() {
        let idx = HtmIndex::build(Vec::<(i64, f64, f64)>::new(), 8);
        assert!(idx.is_empty());
        assert!(idx.within(0.0, 0.0, 1.0).is_empty());
    }
}
