//! # htm — Hierarchical Triangular Mesh
//!
//! A pure-Rust HTM spatial index for the celestial sphere, standing in for
//! the "external C-HTM libraries" the paper tried before settling on zone
//! indexing (§2.3). The trixel scheme follows Kunszt et al., the paper's
//! reference [12]. Used by the spatial-index ablation benchmark.

#![warn(missing_docs)]

pub mod cover;
pub mod index;
pub mod trixel;

pub use cover::circle_cover;
pub use index::HtmIndex;
pub use trixel::{lookup_id, Trixel};
