//! Trixels: the triangular cells of the Hierarchical Triangular Mesh.
//!
//! The sphere is seeded with 8 spherical triangles (4 per hemisphere);
//! each triangle splits into 4 children by joining the edge midpoints.
//! A trixel id encodes the path: root ids are 8..=15 (so the top bit of
//! every valid id at depth d sits at bit 3 + 2d), and each level appends
//! two bits selecting the child. This is the id scheme of Kunszt et al.,
//! "The Indexing of the SDSS Science Archive" (the paper's reference [12]).

use skycore::UnitVec;

/// A trixel: id plus corner vertices.
#[derive(Debug, Clone, Copy)]
pub struct Trixel {
    /// HTM id (depth-tagged by magnitude).
    pub id: u64,
    /// Corner vertices, counter-clockwise seen from outside the sphere.
    pub v: [UnitVec; 3],
}

const V: [UnitVec; 6] = [
    UnitVec { x: 0.0, y: 0.0, z: 1.0 },  // north pole
    UnitVec { x: 1.0, y: 0.0, z: 0.0 },  // ra 0
    UnitVec { x: 0.0, y: 1.0, z: 0.0 },  // ra 90
    UnitVec { x: -1.0, y: 0.0, z: 0.0 }, // ra 180
    UnitVec { x: 0.0, y: -1.0, z: 0.0 }, // ra 270
    UnitVec { x: 0.0, y: 0.0, z: -1.0 }, // south pole
];

/// The 8 root trixels, ids 8..=15.
pub fn roots() -> [Trixel; 8] {
    [
        Trixel { id: 8, v: [V[1], V[5], V[2]] },  // S0
        Trixel { id: 9, v: [V[2], V[5], V[3]] },  // S1
        Trixel { id: 10, v: [V[3], V[5], V[4]] }, // S2
        Trixel { id: 11, v: [V[4], V[5], V[1]] }, // S3
        Trixel { id: 12, v: [V[1], V[0], V[4]] }, // N0
        Trixel { id: 13, v: [V[4], V[0], V[3]] }, // N1
        Trixel { id: 14, v: [V[3], V[0], V[2]] }, // N2
        Trixel { id: 15, v: [V[2], V[0], V[1]] }, // N3
    ]
}

impl Trixel {
    /// Depth of this trixel (roots are depth 0).
    pub fn depth(&self) -> u32 {
        depth_of(self.id)
    }

    /// The four children, by midpoint subdivision.
    pub fn children(&self) -> [Trixel; 4] {
        let [v0, v1, v2] = self.v;
        let w0 = v1.midpoint(&v2);
        let w1 = v0.midpoint(&v2);
        let w2 = v0.midpoint(&v1);
        [
            Trixel { id: self.id * 4, v: [v0, w2, w1] },
            Trixel { id: self.id * 4 + 1, v: [v1, w0, w2] },
            Trixel { id: self.id * 4 + 2, v: [v2, w1, w0] },
            Trixel { id: self.id * 4 + 3, v: [w0, w1, w2] },
        ]
    }

    /// `true` when `p` lies inside (or on the boundary of) this spherical
    /// triangle: on the non-negative side of each directed edge plane.
    pub fn contains(&self, p: &UnitVec) -> bool {
        let [a, b, c] = &self.v;
        a.cross(b).dot(p) >= -1e-12
            && b.cross(c).dot(p) >= -1e-12
            && c.cross(a).dot(p) >= -1e-12
    }
}

/// Depth encoded in an id's magnitude.
pub fn depth_of(id: u64) -> u32 {
    debug_assert!(id >= 8, "invalid trixel id {id}");
    (63 - id.leading_zeros() - 3) / 2
}

/// The id of the depth-`d` trixel containing the point, walking down from
/// the roots.
pub fn lookup_id(p: &UnitVec, depth: u32) -> u64 {
    let root = roots()
        .into_iter()
        .find(|t| t.contains(p))
        .expect("every point is inside some root trixel");
    let mut cur = root;
    for _ in 0..depth {
        let children = cur.children();
        cur = children
            .into_iter()
            .find(|t| t.contains(p))
            // Points on shared edges satisfy `contains` for both sides;
            // `find` picks the lower child id deterministically.
            .expect("children tile the parent");
    }
    cur.id
}

/// The trixel (with vertices) for an id.
pub fn trixel_of(id: u64) -> Trixel {
    let d = depth_of(id);
    let root_id = id >> (2 * d);
    let mut cur = roots()[(root_id - 8) as usize];
    for level in (0..d).rev() {
        let child = ((id >> (2 * level)) & 3) as usize;
        cur = cur.children()[child];
    }
    cur
}

/// The id range `[lo, hi)` at `leaf_depth` covered by trixel `id`.
pub fn id_range_at_depth(id: u64, leaf_depth: u32) -> (u64, u64) {
    let d = depth_of(id);
    debug_assert!(leaf_depth >= d);
    let shift = 2 * (leaf_depth - d);
    (id << shift, (id + 1) << shift)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_tile_the_sphere() {
        // A grid of points: each inside at least one root.
        for dec10 in -8..=8 {
            for ra10 in 0..36 {
                let p = UnitVec::from_radec(f64::from(ra10) * 10.0, f64::from(dec10) * 10.0);
                let hits = roots().iter().filter(|t| t.contains(&p)).count();
                assert!(hits >= 1, "point uncovered at ra={} dec={}", ra10 * 10, dec10 * 10);
            }
        }
    }

    #[test]
    fn children_tile_parent() {
        let parent = roots()[4];
        for dec in [5, 25, 45, 65, 85] {
            for ra in [275, 300, 330, 355] {
                let p = UnitVec::from_radec(f64::from(ra), f64::from(dec));
                if parent.contains(&p) {
                    let hits = parent.children().iter().filter(|t| t.contains(&p)).count();
                    assert!(hits >= 1);
                }
            }
        }
    }

    #[test]
    fn depth_encoding() {
        assert_eq!(depth_of(8), 0);
        assert_eq!(depth_of(15), 0);
        assert_eq!(depth_of(32), 1);
        assert_eq!(depth_of(63), 1);
        assert_eq!(depth_of(8 << 20), 10);
    }

    #[test]
    fn lookup_is_consistent_with_trixel_of() {
        for &(ra, dec) in &[(0.5, 0.5), (195.163, 2.5), (300.0, -45.0), (90.0, 89.0), (180.0, -89.0)] {
            let p = UnitVec::from_radec(ra, dec);
            for depth in [0, 3, 8, 12] {
                let id = lookup_id(&p, depth);
                assert_eq!(depth_of(id), depth);
                assert!(trixel_of(id).contains(&p), "ra={ra} dec={dec} depth={depth}");
            }
        }
    }

    #[test]
    fn deeper_trixels_nest() {
        let p = UnitVec::from_radec(42.0, 17.0);
        let shallow = lookup_id(&p, 5);
        let deep = lookup_id(&p, 9);
        assert_eq!(deep >> (2 * 4), shallow, "deep id must extend the shallow id");
    }

    #[test]
    fn id_ranges() {
        assert_eq!(id_range_at_depth(8, 0), (8, 9));
        assert_eq!(id_range_at_depth(8, 2), (128, 144));
        let (lo, hi) = id_range_at_depth(9, 1);
        assert_eq!(hi - lo, 4);
    }

    #[test]
    fn trixel_vertices_are_unit_length() {
        let mut t = roots()[0];
        for _ in 0..6 {
            t = t.children()[3];
            for v in &t.v {
                assert!((v.norm() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn trixel_area_shrinks_with_depth() {
        // Corner spread (max pairwise chord) roughly halves per level.
        let mut t = roots()[2];
        let spread = |t: &Trixel| {
            t.v[0]
                .chord2(&t.v[1])
                .max(t.v[1].chord2(&t.v[2]))
                .max(t.v[2].chord2(&t.v[0]))
        };
        let mut last = spread(&t);
        for _ in 0..5 {
            t = t.children()[3];
            let s = spread(&t);
            assert!(s < last * 0.5, "spread must shrink fast");
            last = s;
        }
    }
}
