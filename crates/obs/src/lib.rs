//! # obs — unified telemetry for the MaxBCG reproduction
//!
//! The paper's evidence is quantitative accounting: Table 1's per-task
//! elapsed/cpu/I/O decomposition, Table 3's 40× per-node comparison,
//! Figure 6's parallel speedup. This crate turns every run of the
//! reproduction into the same auditable ledger the paper publishes:
//!
//! * **Spans** ([`span`]) — lightweight hierarchical timers over a
//!   monotonic clock. A span guard records its name, its ancestry path
//!   (built from the active spans on the same thread), its start offset
//!   from process start, and its duration. Near-zero cost when telemetry
//!   is disabled ([`set_enabled`]): disabled guards are inert and touch
//!   no shared state.
//! * **Metrics** ([`counter`], [`gauge`], [`histogram`]) — typed
//!   instruments behind a global registry. Handles are cheap `Arc`s over
//!   atomics; hot paths cache them in a `OnceLock` so the per-operation
//!   cost is one relaxed atomic add. [`reset`] zeroes values in place, so
//!   cached handles stay wired to the registry.
//! * **Run reports** ([`RunReport`]) — a serializable snapshot of the
//!   whole run: every counter/gauge/histogram, every finished span, the
//!   git revision, the experiment seed and config, plus an
//!   experiment-specific payload. Serialized as *canonical* JSON (map
//!   keys sorted, struct fields in declaration order) so reports diff
//!   cleanly across commits.
//!
//! The counter taxonomy lives with the instrumented crates (`stardb`
//! names its buffer-pool counters, `gridsim` its scheduler counters, and
//! so on); this crate only provides the instruments. See DESIGN.md
//! ("Observability") for the full name catalog.
//!
//! Telemetry never influences results: instruments only observe, and the
//! `telemetry_report` integration test proves a disabled-telemetry run
//! produces a byte-identical catalog to an instrumented one.

#![warn(missing_docs)]

mod metrics;
mod report;
mod span;

pub use metrics::{
    counter, gauge, histogram, reset, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsSnapshot,
};
pub use report::{git_rev, RunReport};
pub use span::{span, spans_snapshot, take_spans, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable telemetry collection. Disabling makes
/// [`span`] return inert guards and stops metric mutation; it never
/// changes what instrumented code computes.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Tests mutate process-global state (the registry, the span buffer, the
/// enable flag); they serialize on this lock so the harness's parallel
/// test threads cannot interleave.
#[cfg(test)]
pub(crate) fn test_guard() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
    LOCK.lock()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_flag_round_trips() {
        let _g = test_guard();
        assert!(enabled(), "telemetry defaults to on");
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
    }
}
