//! Typed counters, gauges, and histograms behind a global registry.
//!
//! Handles are `Arc`s over atomics: acquiring one goes through the
//! registry lock once, after which every update is a relaxed atomic
//! operation. [`reset`] zeroes values *in place* rather than clearing the
//! registry, so handles cached in `OnceLock`s (the hot-path idiom across
//! the workspace) remain wired to the registry forever.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter (no-op while telemetry is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the gauge (no-op while telemetry is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta.
    #[inline]
    pub fn add(&self, d: i64) {
        if crate::enabled() {
            self.0.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Power-of-two bucket count: values up to 2^63 land in bucket
/// `64 - leading_zeros(v)` (value 0 in bucket 0), so bucket `k` covers
/// `[2^(k-1), 2^k)`.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistInner {
    fn new() -> Self {
        HistInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A histogram over `u64` samples with power-of-two buckets.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Record one sample (no-op while telemetry is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let h = &self.0;
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
        let bucket = (64 - v.leading_zeros()) as usize;
        h.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &self.0;
        let mut s = HistogramSnapshot {
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
            buckets: h
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(k, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((k as u32, n))
                })
                .collect(),
            p50: 0,
            p95: 0,
            p99: 0,
        };
        s.p50 = s.percentile(0.50);
        s.p95 = s.percentile(0.95);
        s.p99 = s.percentile(0.99);
        s
    }
}

/// A point-in-time copy of a [`Histogram`]. Buckets are sparse:
/// `(bucket_index, count)` pairs where bucket `k > 0` covers samples in
/// `[2^(k-1), 2^k)` and bucket 0 holds exact zeros. The percentile fields
/// are upper-bound estimates derived from the buckets at snapshot time
/// (see [`HistogramSnapshot::percentile`]); they default to zero when
/// deserializing reports written before they existed.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Sparse `(bucket, count)` pairs, ascending by bucket.
    pub buckets: Vec<(u32, u64)>,
    /// Median estimate (bucket upper bound, clamped to `max`).
    #[serde(default)]
    pub p50: u64,
    /// 95th-percentile estimate.
    #[serde(default)]
    pub p95: u64,
    /// 99th-percentile estimate.
    #[serde(default)]
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) as an upper-bound estimate: the
    /// inclusive upper edge of the bucket holding the sample of rank
    /// `ceil(q * count)`, clamped to the observed `max`. Exact for the
    /// count (which sample's bucket), conservative for the value (a
    /// power-of-two bucket edge) — so a reported p99 never understates
    /// the true p99 by more than one bucket width.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(k, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let upper: u128 = if k == 0 { 0 } else { (1u128 << k) - 1 };
                return upper.min(u128::from(self.max)) as u64;
            }
        }
        self.max
    }
}

#[derive(Default)]
struct Registry {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, Histogram>,
}

fn registry() -> &'static RwLock<Registry> {
    static REG: OnceLock<RwLock<Registry>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(Registry::default()))
}

/// Get (or create) the counter named `name`. Interned: every caller with
/// the same name shares one underlying atomic.
pub fn counter(name: &str) -> Counter {
    if let Some(c) = registry().read().counters.get(name) {
        return c.clone();
    }
    registry()
        .write()
        .counters
        .entry(name.to_owned())
        .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
        .clone()
}

/// Get (or create) the gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    if let Some(g) = registry().read().gauges.get(name) {
        return g.clone();
    }
    registry()
        .write()
        .gauges
        .entry(name.to_owned())
        .or_insert_with(|| Gauge(Arc::new(AtomicI64::new(0))))
        .clone()
}

/// Get (or create) the histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    if let Some(h) = registry().read().histograms.get(name) {
        return h.clone();
    }
    registry()
        .write()
        .histograms
        .entry(name.to_owned())
        .or_insert_with(|| Histogram(Arc::new(HistInner::new())))
        .clone()
}

/// Zero every registered metric **in place** (handles stay valid) and
/// drop all finished spans. Run reports capture deltas from the last
/// reset, so bench binaries reset before the measured phase.
pub fn reset() {
    let reg = registry().read();
    for c in reg.counters.values() {
        c.0.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.values() {
        g.0.store(0, Ordering::Relaxed);
    }
    for h in reg.histograms.values() {
        h.0.count.store(0, Ordering::Relaxed);
        h.0.sum.store(0, Ordering::Relaxed);
        h.0.max.store(0, Ordering::Relaxed);
        for b in &h.0.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
    drop(reg);
    crate::span::take_spans();
}

/// A snapshot of every registered metric, map-keyed so serialization is
/// canonical (BTreeMap iterates sorted).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Capture the registry right now.
    pub fn capture() -> Self {
        let reg = registry().read();
        MetricsSnapshot {
            counters: reg.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: reg.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: reg
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_interned_and_atomic_under_threads() {
        let _g = crate::test_guard();
        let c = counter("test.metrics.atomicity");
        c.0.store(0, Ordering::Relaxed);
        const THREADS: usize = 8;
        const PER: usize = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    // Each thread resolves its own handle: same atomic.
                    let mine = counter("test.metrics.atomicity");
                    for _ in 0..PER {
                        mine.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), (THREADS * PER) as u64, "no lost increments");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let _g = crate::test_guard();
        let g = gauge("test.metrics.gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let _g = crate::test_guard();
        let h = histogram("test.metrics.hist");
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.max, 1000);
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3;
        // 1000 → bucket 10.
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (10, 1)]);
        assert!((s.mean() - 1010.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentiles_track_bucket_edges() {
        let _g = crate::test_guard();
        let h = histogram("test.metrics.pctl");
        // 100 samples of 10 (bucket 4, upper edge 15) and one huge outlier.
        for _ in 0..100 {
            h.record(10);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.p50, 15, "median lands in the [8,16) bucket");
        assert_eq!(s.p95, 15);
        assert_eq!(s.p99, 15, "rank 100 of 101 is still a 10");
        assert_eq!(s.percentile(1.0), 1_000_000, "p100 is the outlier, clamped to max");
        // Percentiles survive a serde round trip (they are plain fields).
        let json = serde_json::to_string(&s).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        // Reports written before percentiles existed default to zero.
        let legacy: HistogramSnapshot =
            serde_json::from_str(r#"{"count":1,"sum":7,"max":7,"buckets":[[3,1]]}"#).unwrap();
        assert_eq!((legacy.p50, legacy.p95, legacy.p99), (0, 0, 0));
        assert_eq!(legacy.percentile(0.5), 7, "recompute from buckets still works");
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let _g = crate::test_guard();
        let s = histogram("test.metrics.pctl.empty").snapshot();
        assert_eq!((s.p50, s.p95, s.p99), (0, 0, 0));
    }

    #[test]
    fn reset_zeroes_in_place_keeping_handles_live() {
        let _g = crate::test_guard();
        let c = counter("test.metrics.reset");
        c.add(5);
        reset();
        assert_eq!(c.get(), 0);
        c.add(2);
        // The pre-reset handle and a fresh lookup agree: same atomic.
        assert_eq!(counter("test.metrics.reset").get(), 2);
    }

    #[test]
    fn disabled_telemetry_freezes_metrics() {
        let _g = crate::test_guard();
        let c = counter("test.metrics.disabled");
        let base = c.get();
        crate::set_enabled(false);
        c.add(100);
        histogram("test.metrics.disabled.h").record(9);
        crate::set_enabled(true);
        assert_eq!(c.get(), base, "disabled counter must not move");
    }

    #[test]
    fn snapshot_captures_all_kinds() {
        let _g = crate::test_guard();
        counter("test.metrics.snap.c").add(1);
        gauge("test.metrics.snap.g").set(-4);
        histogram("test.metrics.snap.h").record(8);
        let s = MetricsSnapshot::capture();
        assert!(s.counters["test.metrics.snap.c"] >= 1);
        assert_eq!(s.gauges["test.metrics.snap.g"], -4);
        assert!(s.histograms["test.metrics.snap.h"].count >= 1);
    }
}
