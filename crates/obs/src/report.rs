//! The `RunReport` sink: one canonical-JSON document per run.
//!
//! A report captures everything the registry and span collector saw —
//! plus provenance (git revision, seed, config) and an
//! experiment-specific `payload` — so a bench run can be diffed against
//! the same run on another commit. Canonicality comes from `BTreeMap`
//! keys (sorted) and fixed struct field order; `serde_json` preserves
//! insertion order for `Map`, so payloads built from structs are stable
//! too.

use crate::metrics::MetricsSnapshot;
use crate::span::SpanRecord;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

/// The git revision of the working tree, resolved once per process via
/// `git rev-parse HEAD`; `"unknown"` when git is unavailable.
pub fn git_rev() -> &'static str {
    static REV: OnceLock<String> = OnceLock::new();
    REV.get_or_init(|| {
        std::process::Command::new("git")
            .args(["rev-parse", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_owned())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_owned())
    })
}

/// A machine-readable record of one run: metrics, spans, provenance,
/// and an experiment-specific payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Experiment name (`table1`, `chaos`, ...). The output file is
    /// `BENCH_{name}.json`.
    pub name: String,
    /// Git revision the run was built from (`unknown` outside a repo).
    pub git_rev: String,
    /// RNG seed driving the run, when the experiment is seeded.
    pub seed: Option<u64>,
    /// Experiment configuration (scale, partitions, fault plan, ...).
    pub config: BTreeMap<String, serde_json::Value>,
    /// Every counter registered at capture time, by name.
    pub counters: BTreeMap<String, u64>,
    /// Every gauge, by name.
    pub gauges: BTreeMap<String, i64>,
    /// Every histogram, by name.
    pub histograms: BTreeMap<String, crate::HistogramSnapshot>,
    /// Every span finished by capture time.
    pub spans: Vec<SpanRecord>,
    /// Experiment-specific results (the numbers the human table prints).
    pub payload: serde_json::Value,
}

impl RunReport {
    /// Snapshot the registry and span collector into a report named
    /// `name`. Spans are *copied*, not drained, so a later capture in
    /// the same process still sees them.
    pub fn capture(name: &str) -> Self {
        let metrics = MetricsSnapshot::capture();
        RunReport {
            name: name.to_owned(),
            git_rev: git_rev().to_owned(),
            seed: None,
            config: BTreeMap::new(),
            counters: metrics.counters,
            gauges: metrics.gauges,
            histograms: metrics.histograms,
            spans: crate::span::spans_snapshot(),
            payload: serde_json::Value::Null,
        }
    }

    /// Attach the experiment seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Attach one config entry (serialize failures become JSON `null`).
    pub fn with_config<T: Serialize>(mut self, key: &str, value: T) -> Self {
        self.config.insert(
            key.to_owned(),
            serde_json::to_value(value).unwrap_or(serde_json::Value::Null),
        );
        self
    }

    /// Attach the experiment payload (the data the human table prints).
    pub fn with_payload<T: Serialize>(mut self, payload: &T) -> Self {
        self.payload = serde_json::to_value(payload).unwrap_or(serde_json::Value::Null);
        self
    }

    /// Canonical JSON: map keys sorted (BTreeMap), struct fields in
    /// declaration order, trailing newline.
    pub fn to_canonical_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("report serializes");
        s.push('\n');
        s
    }

    /// Parse a report back from JSON (the round-trip inverse of
    /// [`RunReport::to_canonical_json`]).
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Write `BENCH_{name}.json` under `dir`, returning the path.
    pub fn write(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_canonical_json())?;
        Ok(path)
    }

    /// Names of `required` counters missing from the report. Empty means
    /// the report is complete; CI fails the run otherwise.
    pub fn missing_counters(&self, required: &[&str]) -> Vec<String> {
        required
            .iter()
            .filter(|r| !self.counters.contains_key(**r))
            .map(|r| (*r).to_owned())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_through_canonical_json() {
        let _g = crate::test_guard();
        crate::reset();
        crate::counter("test.report.pages").add(42);
        crate::gauge("test.report.depth").set(-1);
        crate::histogram("test.report.sizes").record(7);
        {
            let _s = crate::span("test-root");
        }
        let report = RunReport::capture("unit")
            .with_seed(2005)
            .with_config("scale", 0.05)
            .with_payload(&serde_json::json!({"rows": 3}));
        let json = report.to_canonical_json();
        let back = RunReport::from_json(&json).expect("parses");
        assert_eq!(report, back, "serialize → deserialize → equal");
        // A second serialization of the parsed form is byte-identical.
        assert_eq!(json, back.to_canonical_json());
    }

    #[test]
    fn write_emits_bench_file_named_after_run() {
        let _g = crate::test_guard();
        let dir = std::env::temp_dir().join(format!("obs-report-{}", std::process::id()));
        let report = RunReport::capture("smoke");
        let path = report.write(&dir).expect("writes");
        assert_eq!(path.file_name().unwrap(), "BENCH_smoke.json");
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(RunReport::from_json(&body).unwrap().name, "smoke");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_counters_reports_gaps() {
        let _g = crate::test_guard();
        crate::counter("test.report.present").incr();
        let report = RunReport::capture("gaps");
        assert!(report.missing_counters(&["test.report.present"]).is_empty());
        assert_eq!(
            report.missing_counters(&["test.report.present", "test.report.absent"]),
            vec!["test.report.absent".to_owned()]
        );
    }

    #[test]
    fn git_rev_is_nonempty() {
        assert!(!git_rev().is_empty());
    }
}
