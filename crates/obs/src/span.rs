//! Hierarchical spans over a monotonic clock.
//!
//! A span is opened with [`span`] and closed when its guard drops. Spans
//! nest per thread: the guard records the `/`-joined path of the spans
//! active on its thread at open time, so a Table 1 run produces records
//! like `table1/P2/spZone`. Start offsets are measured from a single
//! process-wide [`Instant`], making every record's `(start, duration)`
//! pair comparable across threads without wall-clock skew.
//!
//! When telemetry is disabled the guard is inert: no allocation, no
//! thread-local access, no shared-state mutation on drop.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::OnceLock;
use std::time::Instant;

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Span name (the leaf of `path`).
    pub name: String,
    /// `/`-joined ancestry, e.g. `table1/P2/spZone`.
    pub path: String,
    /// Nesting depth (0 = root span on its thread).
    pub depth: u32,
    /// Nanoseconds from process epoch to span open.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn finished() -> &'static Mutex<Vec<SpanRecord>> {
    static FINISHED: OnceLock<Mutex<Vec<SpanRecord>>> = OnceLock::new();
    FINISHED.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    /// Names of the spans currently open on this thread, root first.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span; dropping it records the [`SpanRecord`].
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard {
    /// `None` when telemetry was disabled at open time.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    path: String,
    depth: u32,
    opened: Instant,
    start_ns: u64,
}

/// Open a span named `name`, nested under the spans already open on this
/// thread. Returns an inert guard when telemetry is disabled.
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    let start_ns = epoch().elapsed().as_nanos() as u64;
    let (path, depth) = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = if stack.is_empty() {
            name.to_owned()
        } else {
            format!("{}/{name}", stack.join("/"))
        };
        let depth = stack.len() as u32;
        stack.push(name.to_owned());
        (path, depth)
    });
    SpanGuard { live: Some(LiveSpan { path, depth, opened: Instant::now(), start_ns }) }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let dur_ns = live.opened.elapsed().as_nanos() as u64;
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        let name = live.path.rsplit('/').next().unwrap_or(&live.path).to_owned();
        finished().lock().push(SpanRecord {
            name,
            path: live.path,
            depth: live.depth,
            start_ns: live.start_ns,
            dur_ns,
        });
    }
}

/// Copy of every finished span so far.
pub fn spans_snapshot() -> Vec<SpanRecord> {
    finished().lock().clone()
}

/// Drain (and return) every finished span.
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut *finished().lock())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_paths_and_depths() {
        let _g = crate::test_guard();
        take_spans();
        {
            let _a = span("outer");
            {
                let _b = span("inner");
                let _c = span("leaf");
            }
        }
        let mut got = take_spans();
        got.sort_by_key(|s| s.path.clone());
        let paths: Vec<(&str, u32)> =
            got.iter().map(|s| (s.path.as_str(), s.depth)).collect();
        assert_eq!(
            paths,
            vec![("outer", 0), ("outer/inner", 1), ("outer/inner/leaf", 2)]
        );
        assert_eq!(got[2].name, "leaf");
    }

    #[test]
    fn timing_is_monotonic_and_children_fit_in_parents() {
        let _g = crate::test_guard();
        take_spans();
        {
            let _p = span("parent");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _c = span("child");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let spans = take_spans();
        let parent = spans.iter().find(|s| s.name == "parent").unwrap();
        let child = spans.iter().find(|s| s.name == "child").unwrap();
        assert!(child.start_ns >= parent.start_ns, "child opens after parent");
        assert!(child.dur_ns <= parent.dur_ns, "child cannot outlive parent");
        assert!(
            child.start_ns + child.dur_ns <= parent.start_ns + parent.dur_ns,
            "child closes before parent"
        );
        assert!(parent.dur_ns >= 4_000_000, "parent spans both sleeps");
    }

    #[test]
    fn spans_from_many_threads_all_land() {
        let _g = crate::test_guard();
        take_spans();
        std::thread::scope(|s| {
            for t in 0..4 {
                s.spawn(move || {
                    let _root = span(&format!("thread-{t}"));
                    let _leaf = span("work");
                });
            }
        });
        let spans = take_spans();
        assert_eq!(spans.len(), 8);
        // Each thread's `work` nests under its own root, not a sibling's.
        for t in 0..4 {
            assert!(spans.iter().any(|s| s.path == format!("thread-{t}/work")));
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = crate::test_guard();
        take_spans();
        crate::set_enabled(false);
        {
            let _g = span("ghost");
        }
        crate::set_enabled(true);
        assert!(take_spans().iter().all(|s| s.name != "ghost"));
    }
}
