//! Angle utilities for equatorial coordinates.
//!
//! All public APIs in this workspace express angles in **degrees**, matching
//! the paper's SQL code (`fGetNearbyObjEqZd` takes degrees, zones are 30
//! arcseconds tall, buffers are quoted in degrees). Radians only appear at
//! trigonometric call sites.

use std::f64::consts::PI;

/// Degrees-to-radians factor, the `@d2r` constant of the paper's SQL.
pub const D2R: f64 = PI / 180.0;

/// Radians-to-degrees factor.
pub const R2D: f64 = 180.0 / PI;

/// One arcsecond in degrees.
pub const ARCSEC: f64 = 1.0 / 3600.0;

/// The zone height used throughout the paper: 30 arcseconds, in degrees.
pub const ZONE_HEIGHT_DEG: f64 = 30.0 * ARCSEC;

/// Small epsilon used to avoid division by zero near the poles, mirroring
/// `@epsilon` in `fGetNearbyObjEqZd`.
pub const POLE_EPSILON: f64 = 1e-9;

/// Convert degrees to radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * D2R
}

/// Convert radians to degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * R2D
}

/// Normalize a right ascension into `[0, 360)` degrees.
#[inline]
pub fn wrap_ra(ra: f64) -> f64 {
    let r = ra % 360.0;
    if r < 0.0 {
        r + 360.0
    } else {
        r
    }
}

/// Clamp a declination into `[-90, +90]` degrees.
#[inline]
pub fn clamp_dec(dec: f64) -> f64 {
    dec.clamp(-90.0, 90.0)
}

/// The search-radius correction applied before cutting on right ascension:
/// an interval of `r` degrees on the sky spans `r / cos(dec)` degrees of
/// right ascension at declination `dec`. This is `@adjustedRadius` in the
/// paper's SQL.
#[inline]
pub fn ra_adjusted_radius(r_deg: f64, dec_deg: f64) -> f64 {
    r_deg / (deg_to_rad(dec_deg.abs()).cos() + POLE_EPSILON)
}

/// Squared chord length corresponding to an angular separation of `r`
/// degrees on the unit sphere: `4 sin^2(r/2)`. This is `@r2` in
/// `fGetNearbyObjEqZd`; comparisons against it avoid any trigonometry in
/// the inner loop.
#[inline]
pub fn chord2_of_deg(r_deg: f64) -> f64 {
    let s = (deg_to_rad(r_deg) / 2.0).sin();
    4.0 * s * s
}

/// Exact angular separation, in degrees, for a chord of length `chord` on
/// the unit sphere.
#[inline]
pub fn deg_of_chord(chord: f64) -> f64 {
    2.0 * rad_to_deg((chord / 2.0).clamp(-1.0, 1.0).asin())
}

/// The paper's small-angle approximation: `fGetNearbyObjEqZd` reports
/// `distance = chord / @d2r`, i.e. it treats the chord length as if it were
/// the arc length. For the sub-degree radii MaxBCG uses, the relative error
/// is below 2.5e-5; we reproduce the same convention so distances agree with
/// the paper's SQL bit-for-bit in spirit.
#[inline]
pub fn deg_of_chord_approx(chord: f64) -> f64 {
    chord / D2R
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_ra_wraps_into_range() {
        assert_eq!(wrap_ra(0.0), 0.0);
        assert_eq!(wrap_ra(359.5), 359.5);
        assert_eq!(wrap_ra(360.0), 0.0);
        assert!((wrap_ra(-1.0) - 359.0).abs() < 1e-12);
        assert!((wrap_ra(725.0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn clamp_dec_clamps() {
        assert_eq!(clamp_dec(95.0), 90.0);
        assert_eq!(clamp_dec(-95.0), -90.0);
        assert_eq!(clamp_dec(12.5), 12.5);
    }

    #[test]
    fn zone_height_is_30_arcsec() {
        assert!((ZONE_HEIGHT_DEG - 30.0 / 3600.0).abs() < 1e-15);
    }

    #[test]
    fn adjusted_radius_grows_away_from_equator() {
        let at_equator = ra_adjusted_radius(0.5, 0.0);
        let at_60 = ra_adjusted_radius(0.5, 60.0);
        assert!((at_equator - 0.5).abs() < 1e-6);
        // cos(60 deg) = 0.5, so the window doubles.
        assert!((at_60 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn chord_roundtrip_small_angles() {
        for &r in &[0.01, 0.1, 0.5, 1.0, 5.0] {
            let c2 = chord2_of_deg(r);
            let back = deg_of_chord(c2.sqrt());
            assert!((back - r).abs() < 1e-9, "r={r} back={back}");
        }
    }

    #[test]
    fn chord_approx_close_for_subdegree_radii() {
        for &r in &[0.05, 0.25, 0.5, 1.0] {
            let chord = chord2_of_deg(r).sqrt();
            let approx = deg_of_chord_approx(chord);
            assert!(
                (approx - r).abs() / r < 1e-4,
                "r={r} approx={approx}"
            );
        }
    }

    #[test]
    fn chord_of_antipodes_is_two() {
        // 180 degrees apart: chord = diameter = 2.
        assert!((chord2_of_deg(180.0) - 4.0).abs() < 1e-12);
    }
}
