//! The MaxBCG likelihood machinery, transcribed from the paper's appendix
//! SQL (`fBCGCandidate`, `fIsCluster`, `fBCGr200`,
//! `fGetClusterGalaxiesMetric`).
//!
//! These are *pure* functions over the k-correction table: the database
//! implementation (`maxbcg` crate) and the file-based TAM baseline (`tam`
//! crate) differ only in how they fetch neighbors, so both call into this
//! module for the scoring math. That is exactly the property the paper
//! relies on when it states the SQL implementation computes "the same
//! MaxBCG algorithm".
//!
//! The algorithm, per galaxy:
//!
//! 1. **Filter** — χ² against every row of the k-correction table; keep the
//!    redshifts where `χ² < 7`. Most galaxies fail everywhere and are
//!    discarded without ever doing a spatial search (the early-filtering win
//!    of §2.6).
//! 2. **Windows** — from the passing rows, derive one bounding search
//!    radius and one photometric window, so a single spatial query suffices.
//! 3. **Check neighbors** — count, for each passing redshift, the friends
//!    within that redshift's 1 Mpc radius, magnitude window, and ridge-line
//!    color window.
//! 4. **Pick most likely** — weight the fit by neighbor count:
//!    `chi = max over z of ln(ngal+1) − χ²(z)`, requiring at least one
//!    neighbor.

use crate::kcorr::{KcorrRow, KcorrTable};
use crate::types::{Candidate, Friend, Galaxy};
use serde::{Deserialize, Serialize};

/// Tunable constants of the algorithm. Defaults are the paper's values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BcgParams {
    /// Population dispersion of the g-r ridge line (`@grPopSigma = 0.05`).
    pub gr_pop_sigma: f64,
    /// Population dispersion of the r-i ridge line (`@riPopSigma = 0.06`).
    pub ri_pop_sigma: f64,
    /// Population dispersion of BCG magnitudes (the `0.57` in the χ²).
    pub mag_dispersion: f64,
    /// χ² acceptance threshold (the `< 7` filter).
    pub chisq_cut: f64,
    /// Redshift window when comparing candidates in `fIsCluster`
    /// (`c.z BETWEEN @z - 0.05 AND @z + 0.05`).
    pub z_window: f64,
    /// Tie tolerance when selecting the maximum-likelihood redshift
    /// (`< 0.00000001` in `fBCGCandidate`).
    pub tie_eps: f64,
    /// Likelihood-match tolerance in `fIsCluster` (`< 0.00001`).
    pub chi_match_eps: f64,
}

impl Default for BcgParams {
    fn default() -> Self {
        BcgParams {
            gr_pop_sigma: 0.05,
            ri_pop_sigma: 0.06,
            mag_dispersion: 0.57,
            chisq_cut: 7.0,
            z_window: 0.05,
            tie_eps: 1e-8,
            chi_match_eps: 1e-5,
        }
    }
}

/// The unweighted BCG χ² of a galaxy against one k-correction row:
///
/// ```text
/// (i − k.i)² / 0.57²
///   + (gr − k.gr)² / (σ_gr² + 0.05²)
///   + (ri − k.ri)² / (σ_ri² + 0.06²)
/// ```
#[inline]
pub fn chisq(g: &Galaxy, k: &KcorrRow, p: &BcgParams) -> f64 {
    let di = g.i - k.i;
    let dgr = g.gr - k.gr;
    let dri = g.ri - k.ri;
    di * di / (p.mag_dispersion * p.mag_dispersion)
        + dgr * dgr / (g.sigma_gr * g.sigma_gr + p.gr_pop_sigma * p.gr_pop_sigma)
        + dri * dri / (g.sigma_ri * g.sigma_ri + p.ri_pop_sigma * p.ri_pop_sigma)
}

/// One redshift at which a galaxy is a plausible BCG (a row of the SQL
/// `@chisquare` table variable before neighbor counting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PassingRedshift {
    /// 1-based key into the k-correction table.
    pub zid: u32,
    /// The unweighted χ² at that redshift.
    pub chisq: f64,
}

/// The **Filter** step: all redshifts where the galaxy passes `χ² < cut`.
/// Returns rows in increasing `zid` order. An empty result means the galaxy
/// is discarded before any spatial work — the common case (~97% of
/// galaxies).
pub fn passing_redshifts(g: &Galaxy, kcorr: &KcorrTable, p: &BcgParams) -> Vec<PassingRedshift> {
    kcorr
        .rows()
        .iter()
        .filter_map(|k| {
            let c = chisq(g, k, p);
            (c < p.chisq_cut).then_some(PassingRedshift { zid: k.zid, chisq: c })
        })
        .collect()
}

/// The bounding search window derived from the passing redshifts — one
/// spatial query covers every passing redshift, then per-redshift cuts
/// narrow it down. Mirrors the `SELECT @rad = MAX(k.radius), ...` block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SearchWindows {
    /// Maximum 1 Mpc angular radius over passing redshifts, degrees.
    pub radius_deg: f64,
    /// `@imin` — the candidate's own magnitude (friends must be fainter).
    pub i_min: f64,
    /// `@imax` — the faintest limiting magnitude over passing redshifts.
    pub i_max: f64,
    /// Lower g-r bound (`MIN(k.gr) - 2 sigma_pop`).
    pub gr_min: f64,
    /// Upper g-r bound (`MAX(k.gr) + 2 sigma_pop`).
    pub gr_max: f64,
    /// Lower r-i bound.
    pub ri_min: f64,
    /// Upper r-i bound.
    pub ri_max: f64,
}

impl SearchWindows {
    /// `true` when a friend galaxy falls inside the bounding photometric
    /// window **and** the bounding radius (SQL `BETWEEN` semantics:
    /// inclusive bounds; the radius cut is strict as in
    /// `fGetNearbyObjEqZd`).
    #[inline]
    pub fn admits(&self, f: &Friend) -> bool {
        f.distance < self.radius_deg
            && f.i >= self.i_min
            && f.i <= self.i_max
            && f.gr >= self.gr_min
            && f.gr <= self.gr_max
            && f.ri >= self.ri_min
            && f.ri <= self.ri_max
    }
}

/// Compute the bounding windows from the passing redshifts.
///
/// Panics if `passing` is empty — callers must have handled the
/// galaxy-discarded case already.
pub fn search_windows(
    imag: f64,
    passing: &[PassingRedshift],
    kcorr: &KcorrTable,
    p: &BcgParams,
) -> SearchWindows {
    assert!(!passing.is_empty(), "search_windows on a discarded galaxy");
    let mut radius = f64::MIN;
    let mut i_max = f64::MIN;
    let mut gr_min = f64::MAX;
    let mut gr_max = f64::MIN;
    let mut ri_min = f64::MAX;
    let mut ri_max = f64::MIN;
    for pr in passing {
        let k = kcorr.row(pr.zid).expect("passing zid must exist");
        radius = radius.max(k.radius);
        i_max = i_max.max(k.ilim);
        gr_min = gr_min.min(k.gr);
        gr_max = gr_max.max(k.gr);
        ri_min = ri_min.min(k.ri);
        ri_max = ri_max.max(k.ri);
    }
    SearchWindows {
        radius_deg: radius,
        i_min: imag,
        i_max,
        gr_min: gr_min - 2.0 * p.gr_pop_sigma,
        gr_max: gr_max + 2.0 * p.gr_pop_sigma,
        ri_min: ri_min - 2.0 * p.ri_pop_sigma,
        ri_max: ri_max + 2.0 * p.ri_pop_sigma,
    }
}

/// The **Check neighbors** step: for each passing redshift, count the
/// friends inside that redshift's radius, magnitude window
/// (`i BETWEEN imag AND k.ilim`), and ±1σ ridge-line color windows.
/// Returns counts parallel to `passing`.
pub fn count_neighbors(
    passing: &[PassingRedshift],
    friends: &[Friend],
    kcorr: &KcorrTable,
    imag: f64,
    p: &BcgParams,
) -> Vec<u32> {
    passing
        .iter()
        .map(|pr| {
            let k = kcorr.row(pr.zid).expect("passing zid must exist");
            friends
                .iter()
                .filter(|f| {
                    f.distance < k.radius
                        && f.i >= imag
                        && f.i <= k.ilim
                        && f.gr >= k.gr - p.gr_pop_sigma
                        && f.gr <= k.gr + p.gr_pop_sigma
                        && f.ri >= k.ri - p.ri_pop_sigma
                        && f.ri <= k.ri + p.ri_pop_sigma
                })
                .count() as u32
        })
        .collect()
}

/// The **Pick most likely** step: `chi = max(ln(ngal+1) − χ²)` over passing
/// redshifts with at least one neighbor. Returns the index into `passing`
/// of the winning redshift and the weighted likelihood, or `None` when no
/// redshift has a neighbor (the candidate is dropped, matching
/// `WHERE ngal > 0`).
///
/// Ties within `tie_eps` resolve to the lowest redshift, which keeps the
/// output deterministic (the SQL's `Candidates` primary key makes ties
/// effectively single-row there too).
pub fn best_likelihood(
    passing: &[PassingRedshift],
    counts: &[u32],
    p: &BcgParams,
) -> Option<(usize, f64)> {
    debug_assert_eq!(passing.len(), counts.len());
    let chi = passing
        .iter()
        .zip(counts)
        .filter(|(_, &n)| n > 0)
        .map(|(pr, &n)| (f64::from(n) + 1.0).ln() - pr.chisq)
        .fold(f64::NEG_INFINITY, f64::max);
    if chi == f64::NEG_INFINITY {
        return None;
    }
    let idx = passing
        .iter()
        .zip(counts)
        .position(|(pr, &n)| {
            n > 0 && ((f64::from(n) + 1.0).ln() - pr.chisq - chi).abs() < p.tie_eps
        })
        .expect("max likelihood row must exist");
    Some((idx, chi))
}

/// Evaluate one galaxy end-to-end (the whole of `fBCGCandidate`).
///
/// ```
/// use skycore::bcg::{evaluate_candidate, BcgParams};
/// use skycore::kcorr::{KcorrConfig, KcorrTable};
/// use skycore::{Friend, Galaxy};
///
/// let kcorr = KcorrTable::generate(KcorrConfig::sql());
/// let params = BcgParams::default();
/// // A galaxy sitting exactly on the ridge line at z = 0.2 ...
/// let k = *kcorr.nearest(0.2);
/// let bcg = Galaxy::with_derived_errors(1, 180.0, 0.0, k.i, k.gr, k.ri);
/// // ... with three fainter companions inside the 1 Mpc radius.
/// let friends: Vec<Friend> = (0..3)
///     .map(|j| Friend { objid: 2 + j, distance: k.radius * 0.4, i: k.i + 0.5, gr: k.gr, ri: k.ri })
///     .collect();
/// let cand = evaluate_candidate(&bcg, &kcorr, &params, |_| friends.clone()).unwrap();
/// assert_eq!(cand.ngal, 4); // three friends + the BCG itself
/// assert!((cand.z - 0.2).abs() < 0.05);
/// ```
///
/// `fetch_friends` is called at most once, with the bounding
/// [`SearchWindows`]; it must return every galaxy within
/// `windows.radius_deg` degrees of the input galaxy **excluding the galaxy
/// itself**, with distances in degrees. It may pre-filter by the windows or
/// return a superset — this function re-applies [`SearchWindows::admits`]
/// either way, so both the brute-force TAM path and the zone-indexed
/// database path produce identical candidates.
pub fn evaluate_candidate<F>(
    g: &Galaxy,
    kcorr: &KcorrTable,
    p: &BcgParams,
    fetch_friends: F,
) -> Option<Candidate>
where
    F: FnOnce(&SearchWindows) -> Vec<Friend>,
{
    let passing = passing_redshifts(g, kcorr, p);
    if passing.is_empty() {
        return None;
    }
    let windows = search_windows(g.i, &passing, kcorr, p);
    let mut friends = fetch_friends(&windows);
    friends.retain(|f| f.objid != g.objid && windows.admits(f));
    let counts = count_neighbors(&passing, &friends, kcorr, g.i, p);
    let (idx, chi) = best_likelihood(&passing, &counts, p)?;
    let k = kcorr.row(passing[idx].zid).expect("winning zid must exist");
    Some(Candidate {
        objid: g.objid,
        ra: g.ra,
        dec: g.dec,
        z: k.z,
        i: g.i,
        ngal: counts[idx] as i32 + 1,
        chi2: chi,
    })
}

/// `fBCGr200`: the radius, in Mpc, within which the mean density is 200
/// times the mean galaxy density of the sky: `0.17 * ngal^0.51`.
#[inline]
pub fn r200_mpc(ngal: f64) -> f64 {
    0.17 * ngal.powf(0.51)
}

/// The decision of `fIsCluster`: a candidate is a cluster center when its
/// likelihood matches the best likelihood among all candidates in its
/// neighborhood (which includes itself, so `best >= own` always).
#[inline]
pub fn is_cluster_center(own_chi2: f64, neighborhood_best_chi2: f64, p: &BcgParams) -> bool {
    (neighborhood_best_chi2 - own_chi2).abs() < p.chi_match_eps
}

/// The member-retrieval windows of `fGetClusterGalaxiesMetric`: a galaxy
/// belongs to the cluster when it lies within `radius(z) * r200(ngal)`
/// degrees and inside the magnitude/color windows at the cluster redshift.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemberWindows {
    /// `k.radius * r200(ngal)` in degrees.
    pub radius_deg: f64,
    /// `imag - 0.001` (the BCG itself is re-admitted separately).
    pub i_min: f64,
    /// The limiting magnitude at the cluster redshift.
    pub i_max: f64,
    /// Lower g-r bound (`k.gr - sigma_pop`).
    pub gr_min: f64,
    /// Upper g-r bound.
    pub gr_max: f64,
    /// Lower r-i bound.
    pub ri_min: f64,
    /// Upper r-i bound.
    pub ri_max: f64,
}

impl MemberWindows {
    /// Member admission test (inclusive photometric bounds, strict radius).
    #[inline]
    pub fn admits(&self, f: &Friend) -> bool {
        f.distance < self.radius_deg
            && f.i >= self.i_min
            && f.i <= self.i_max
            && f.gr >= self.gr_min
            && f.gr <= self.gr_max
            && f.ri >= self.ri_min
            && f.ri <= self.ri_max
    }
}

/// Build the member windows for a cluster at k-correction row `k` with BCG
/// magnitude `imag` and richness `ngal`.
pub fn member_windows(k: &KcorrRow, imag: f64, ngal: f64, p: &BcgParams) -> MemberWindows {
    MemberWindows {
        radius_deg: k.radius * r200_mpc(ngal),
        i_min: imag - 0.001,
        i_max: k.ilim,
        gr_min: k.gr - p.gr_pop_sigma,
        gr_max: k.gr + p.gr_pop_sigma,
        ri_min: k.ri - p.ri_pop_sigma,
        ri_max: k.ri + p.ri_pop_sigma,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcorr::KcorrConfig;

    fn table() -> KcorrTable {
        KcorrTable::generate(KcorrConfig::sql())
    }

    /// A galaxy sitting exactly on the ridge line at redshift `z`.
    fn ridge_galaxy(kcorr: &KcorrTable, z: f64, objid: i64, ra: f64, dec: f64) -> Galaxy {
        let k = kcorr.nearest(z);
        Galaxy::with_derived_errors(objid, ra, dec, k.i, k.gr, k.ri)
    }

    #[test]
    fn ridge_galaxy_has_zero_chisq_at_its_redshift() {
        let t = table();
        let g = ridge_galaxy(&t, 0.2, 1, 180.0, 0.0);
        let k = t.nearest(0.2);
        assert!(chisq(&g, k, &BcgParams::default()) < 1e-18);
    }

    #[test]
    fn ridge_galaxy_passes_filter_near_its_redshift_only() {
        let t = table();
        let p = BcgParams::default();
        let g = ridge_galaxy(&t, 0.2, 1, 180.0, 0.0);
        let passing = passing_redshifts(&g, &t, &p);
        assert!(!passing.is_empty());
        let zs: Vec<f64> = passing.iter().map(|pr| t.row(pr.zid).unwrap().z).collect();
        assert!(zs.iter().all(|&z| (z - 0.2).abs() < 0.1), "passing z: {zs:?}");
        // And the best chisq is at (or adjacent to) the true redshift.
        let best = passing.iter().min_by(|a, b| a.chisq.total_cmp(&b.chisq)).unwrap();
        assert!((t.row(best.zid).unwrap().z - 0.2).abs() < 0.005);
    }

    #[test]
    fn absurd_colors_fail_everywhere() {
        let t = table();
        let g = Galaxy::with_derived_errors(1, 180.0, 0.0, 17.0, -2.0, 3.5);
        assert!(passing_redshifts(&g, &t, &BcgParams::default()).is_empty());
    }

    #[test]
    fn windows_bound_all_passing_rows() {
        let t = table();
        let p = BcgParams::default();
        let g = ridge_galaxy(&t, 0.15, 1, 180.0, 0.0);
        let passing = passing_redshifts(&g, &t, &p);
        let w = search_windows(g.i, &passing, &t, &p);
        for pr in &passing {
            let k = t.row(pr.zid).unwrap();
            assert!(k.radius <= w.radius_deg);
            assert!(k.ilim <= w.i_max);
            assert!(k.gr - p.gr_pop_sigma >= w.gr_min && k.gr + p.gr_pop_sigma <= w.gr_max);
            assert!(k.ri - p.ri_pop_sigma >= w.ri_min && k.ri + p.ri_pop_sigma <= w.ri_max);
        }
        assert_eq!(w.i_min, g.i);
    }

    /// Build a friend on the ridge at redshift z, a bit fainter than the BCG.
    fn ridge_friend(kcorr: &KcorrTable, z: f64, objid: i64, distance: f64, dmag: f64) -> Friend {
        let k = kcorr.nearest(z);
        Friend { objid, distance, i: k.i + dmag, gr: k.gr, ri: k.ri }
    }

    #[test]
    fn counting_respects_per_redshift_radius() {
        let t = table();
        let p = BcgParams::default();
        let g = ridge_galaxy(&t, 0.2, 1, 180.0, 0.0);
        let passing = passing_redshifts(&g, &t, &p);
        let k = t.nearest(0.2);
        // One friend just inside the 1 Mpc radius, one far outside.
        let friends = vec![
            ridge_friend(&t, 0.2, 2, k.radius * 0.9, 0.5),
            ridge_friend(&t, 0.2, 3, k.radius * 40.0, 0.5),
        ];
        let counts = count_neighbors(&passing, &friends, &t, g.i, &p);
        let idx = passing.iter().position(|pr| pr.zid == k.zid).unwrap();
        assert_eq!(counts[idx], 1);
    }

    #[test]
    fn brighter_friends_are_not_counted() {
        // Friends must satisfy i BETWEEN imag AND ilim: anything brighter
        // than the candidate does not count toward its richness.
        let t = table();
        let p = BcgParams::default();
        let g = ridge_galaxy(&t, 0.2, 1, 180.0, 0.0);
        let passing = passing_redshifts(&g, &t, &p);
        let k = t.nearest(0.2);
        let friends = vec![ridge_friend(&t, 0.2, 2, k.radius * 0.5, -0.5)];
        let counts = count_neighbors(&passing, &friends, &t, g.i, &p);
        assert!(counts.iter().all(|&c| c == 0));
    }

    #[test]
    fn no_neighbors_means_no_candidate() {
        let t = table();
        let p = BcgParams::default();
        let g = ridge_galaxy(&t, 0.2, 1, 180.0, 0.0);
        let cand = evaluate_candidate(&g, &t, &p, |_| Vec::new());
        assert!(cand.is_none());
    }

    #[test]
    fn candidate_with_neighbors_lands_near_true_redshift() {
        let t = table();
        let p = BcgParams::default();
        let g = ridge_galaxy(&t, 0.2, 1, 180.0, 0.0);
        let k = t.nearest(0.2);
        let friends: Vec<Friend> = (0..5)
            .map(|j| ridge_friend(&t, 0.2, 10 + j, k.radius * 0.3, 0.5 + 0.1 * j as f64))
            .collect();
        let cand = evaluate_candidate(&g, &t, &p, |_| friends.clone()).expect("candidate");
        assert_eq!(cand.objid, 1);
        assert!((cand.z - 0.2).abs() < 0.05, "z = {}", cand.z);
        assert_eq!(cand.ngal, 6, "5 friends + the BCG itself");
        assert!(cand.chi2 <= (6f64).ln());
    }

    #[test]
    fn likelihood_grows_with_richness() {
        let t = table();
        let p = BcgParams::default();
        let g = ridge_galaxy(&t, 0.2, 1, 180.0, 0.0);
        let k = t.nearest(0.2);
        let mk = |n: usize| -> Vec<Friend> {
            (0..n)
                .map(|j| ridge_friend(&t, 0.2, 10 + j as i64, k.radius * 0.3, 0.5))
                .collect()
        };
        let poor = evaluate_candidate(&g, &t, &p, |_| mk(2)).unwrap();
        let rich = evaluate_candidate(&g, &t, &p, |_| mk(20)).unwrap();
        assert!(rich.chi2 > poor.chi2);
        assert!(rich.ngal > poor.ngal);
    }

    #[test]
    fn self_is_excluded_from_friends() {
        let t = table();
        let p = BcgParams::default();
        let g = ridge_galaxy(&t, 0.2, 7, 180.0, 0.0);
        // Provider wrongly returns the galaxy itself; evaluate_candidate
        // must drop it, leaving zero neighbors.
        let self_friend = Friend { objid: 7, distance: 0.0, i: g.i, gr: g.gr, ri: g.ri };
        assert!(evaluate_candidate(&g, &t, &p, |_| vec![self_friend]).is_none());
    }

    #[test]
    fn r200_matches_paper_anchor() {
        assert!((r200_mpc(100.0) - 1.78).abs() < 0.01);
        assert!(r200_mpc(10.0) < r200_mpc(100.0));
    }

    #[test]
    fn is_cluster_center_tolerates_float_noise() {
        let p = BcgParams::default();
        assert!(is_cluster_center(1.234567, 1.234567 + 4e-6, &p));
        assert!(!is_cluster_center(1.0, 1.1, &p));
    }

    #[test]
    fn member_windows_shape() {
        let t = table();
        let p = BcgParams::default();
        let k = t.nearest(0.1);
        let w = member_windows(k, 16.0, 25.0, &p);
        assert!((w.radius_deg - k.radius * r200_mpc(25.0)).abs() < 1e-12);
        assert!((w.i_min - 15.999).abs() < 1e-12);
        assert_eq!(w.i_max, k.ilim);
        // The BCG itself passes its own windows at distance 0.
        let bcg = Friend { objid: 1, distance: 0.0, i: 16.0, gr: k.gr, ri: k.ri };
        assert!(w.admits(&bcg));
    }

    #[test]
    fn tie_break_is_deterministic_lowest_redshift() {
        let p = BcgParams::default();
        let passing = vec![
            PassingRedshift { zid: 10, chisq: 1.0 },
            PassingRedshift { zid: 20, chisq: 1.0 },
        ];
        let counts = vec![3, 3];
        let (idx, _) = best_likelihood(&passing, &counts, &p).unwrap();
        assert_eq!(idx, 0);
    }

    #[test]
    fn zero_count_rows_never_win() {
        let p = BcgParams::default();
        let passing = vec![
            PassingRedshift { zid: 1, chisq: 0.0 }, // best fit but no neighbors
            PassingRedshift { zid: 2, chisq: 5.0 },
        ];
        let counts = vec![0, 1];
        let (idx, chi) = best_likelihood(&passing, &counts, &p).unwrap();
        assert_eq!(idx, 1);
        assert!((chi - (2f64.ln() - 5.0)).abs() < 1e-12);
    }
}
