//! Positions on the celestial sphere.
//!
//! The paper stores each object both as `(ra, dec)` in degrees and as a unit
//! vector `(cx, cy, cz)`; neighborhood predicates compare squared chord
//! lengths between unit vectors because that needs no trigonometry per pair.

use crate::angle::{chord2_of_deg, deg_of_chord, deg_of_chord_approx, deg_to_rad, wrap_ra};
use serde::{Deserialize, Serialize};

/// A point on the unit sphere, the `(cx, cy, cz)` triple of the SDSS Zone
/// table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitVec {
    /// x component (towards ra 0, dec 0).
    pub x: f64,
    /// y component (towards ra 90, dec 0).
    pub y: f64,
    /// z component (towards the north celestial pole).
    pub z: f64,
}

impl UnitVec {
    /// Build a unit vector from equatorial coordinates in degrees.
    pub fn from_radec(ra_deg: f64, dec_deg: f64) -> Self {
        let ra = deg_to_rad(wrap_ra(ra_deg));
        let dec = deg_to_rad(dec_deg);
        let cd = dec.cos();
        UnitVec {
            x: cd * ra.cos(),
            y: cd * ra.sin(),
            z: dec.sin(),
        }
    }

    /// Recover `(ra, dec)` in degrees.
    pub fn to_radec(&self) -> (f64, f64) {
        let ra = self.y.atan2(self.x).to_degrees();
        let dec = self.z.clamp(-1.0, 1.0).asin().to_degrees();
        (wrap_ra(ra), dec)
    }

    /// Squared chord distance to another unit vector. Cheap: six
    /// multiplications, no trig. This is exactly the quantity
    /// `POWER(cx-@cx,2)+POWER(cy-@cy,2)+POWER(cz-@cz,2)` in the paper.
    #[inline]
    pub fn chord2(&self, other: &UnitVec) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        dx * dx + dy * dy + dz * dz
    }

    /// Exact angular separation in degrees.
    pub fn sep_deg(&self, other: &UnitVec) -> f64 {
        deg_of_chord(self.chord2(other).sqrt())
    }

    /// Angular separation using the paper's chord/d2r approximation
    /// (see [`crate::angle::deg_of_chord_approx`]).
    pub fn sep_deg_approx(&self, other: &UnitVec) -> f64 {
        deg_of_chord_approx(self.chord2(other).sqrt())
    }

    /// Dot product.
    #[inline]
    pub fn dot(&self, other: &UnitVec) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Euclidean norm — 1.0 up to floating point error for vectors built by
    /// [`UnitVec::from_radec`].
    pub fn norm(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Renormalize to unit length; useful after midpoint interpolation
    /// (the HTM crate subdivides triangles this way).
    pub fn normalized(&self) -> UnitVec {
        let n = self.norm();
        UnitVec {
            x: self.x / n,
            y: self.y / n,
            z: self.z / n,
        }
    }

    /// Midpoint of two unit vectors, projected back onto the sphere.
    pub fn midpoint(&self, other: &UnitVec) -> UnitVec {
        UnitVec {
            x: self.x + other.x,
            y: self.y + other.y,
            z: self.z + other.z,
        }
        .normalized()
    }

    /// Cross product (not normalized).
    pub fn cross(&self, other: &UnitVec) -> UnitVec {
        UnitVec {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }
}

/// `true` when two positions are within `r_deg` degrees of each other,
/// evaluated through the squared-chord shortcut.
#[inline]
pub fn within_deg(a: &UnitVec, b: &UnitVec, r_deg: f64) -> bool {
    a.chord2(b) < chord2_of_deg(r_deg)
}

/// Great-circle separation of two `(ra, dec)` pairs in degrees.
pub fn sep_radec_deg(ra1: f64, dec1: f64, ra2: f64, dec2: f64) -> f64 {
    UnitVec::from_radec(ra1, dec1).sep_deg(&UnitVec::from_radec(ra2, dec2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radec_roundtrip() {
        for &(ra, dec) in &[
            (0.0, 0.0),
            (180.0, 45.0),
            (359.9, -89.5),
            (123.456, -12.345),
            (195.163, 2.5), // MySkyServerDr1 center
        ] {
            let v = UnitVec::from_radec(ra, dec);
            let (ra2, dec2) = v.to_radec();
            assert!((ra - ra2).abs() < 1e-9, "ra {ra} vs {ra2}");
            assert!((dec - dec2).abs() < 1e-9, "dec {dec} vs {dec2}");
            assert!((v.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn separation_along_equator_equals_ra_difference() {
        let d = sep_radec_deg(10.0, 0.0, 10.5, 0.0);
        assert!((d - 0.5).abs() < 1e-9);
    }

    #[test]
    fn separation_along_meridian_equals_dec_difference() {
        let d = sep_radec_deg(42.0, 1.0, 42.0, 2.25);
        assert!((d - 1.25).abs() < 1e-9);
    }

    #[test]
    fn ra_separation_shrinks_with_declination() {
        // 1 degree of RA at dec=60 is only 0.5 degrees on the sky.
        let d = sep_radec_deg(10.0, 60.0, 11.0, 60.0);
        assert!((d - 0.5).abs() < 1e-3, "d={d}");
    }

    #[test]
    fn within_deg_matches_exact_separation() {
        let a = UnitVec::from_radec(100.0, 20.0);
        let b = UnitVec::from_radec(100.3, 20.2);
        let sep = a.sep_deg(&b);
        assert!(within_deg(&a, &b, sep + 1e-9));
        assert!(!within_deg(&a, &b, sep - 1e-9));
    }

    #[test]
    fn midpoint_is_on_sphere_and_between() {
        let a = UnitVec::from_radec(10.0, 0.0);
        let b = UnitVec::from_radec(20.0, 0.0);
        let m = a.midpoint(&b);
        assert!((m.norm() - 1.0).abs() < 1e-12);
        let (ra, dec) = m.to_radec();
        assert!((ra - 15.0).abs() < 1e-9);
        assert!(dec.abs() < 1e-9);
    }

    #[test]
    fn cross_of_orthogonal_axes() {
        let x = UnitVec { x: 1.0, y: 0.0, z: 0.0 };
        let y = UnitVec { x: 0.0, y: 1.0, z: 0.0 };
        let z = x.cross(&y);
        assert!((z.z - 1.0).abs() < 1e-12 && z.x.abs() < 1e-12 && z.y.abs() < 1e-12);
    }
}
