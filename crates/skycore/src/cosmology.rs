//! A small flat-FLRW cosmology: redshift → distance conversions.
//!
//! The paper never publishes its cosmological parameters, but the comment in
//! `fIsCluster` pins them down observationally: *"the r200 radius is, at
//! ngal=100, 1.78 degree [Mpc] which, at z=0.05, is 0.74 degrees"*. With
//! `r200(100) = 0.17 * 100^0.51 = 1.78 Mpc`, an angular scale of
//! 0.74 deg / 1.78 Mpc at z = 0.05 requires an angular-diameter distance of
//! ~138 Mpc — i.e. distances measured in h = 1 units (H0 = 100 km/s/Mpc),
//! the common convention of 2004-era SDSS work. We therefore default to
//! H0 = 100, Omega_m = 0.3, Omega_Lambda = 0.7.

use serde::{Deserialize, Serialize};

/// Speed of light in km/s.
pub const C_KM_S: f64 = 299_792.458;

/// A flat Friedmann–Lemaître–Robertson–Walker cosmology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cosmology {
    /// Hubble constant in km/s/Mpc.
    pub h0: f64,
    /// Matter density parameter.
    pub omega_m: f64,
    /// Dark-energy density parameter (flatness: `omega_m + omega_l = 1`).
    pub omega_l: f64,
}

impl Default for Cosmology {
    fn default() -> Self {
        Cosmology { h0: 100.0, omega_m: 0.3, omega_l: 0.7 }
    }
}

impl Cosmology {
    /// Hubble distance `c / H0` in Mpc.
    pub fn hubble_distance_mpc(&self) -> f64 {
        C_KM_S / self.h0
    }

    /// Dimensionless Hubble parameter `E(z)` for a flat universe.
    #[inline]
    fn e_of_z(&self, z: f64) -> f64 {
        (self.omega_m * (1.0 + z).powi(3) + self.omega_l).sqrt()
    }

    /// Line-of-sight comoving distance in Mpc, by composite Simpson
    /// integration of `dz / E(z)`. Accurate to well below 0.01% for the
    /// z <= 1 range MaxBCG works in.
    pub fn comoving_distance_mpc(&self, z: f64) -> f64 {
        assert!(z >= 0.0, "negative redshift {z}");
        if z == 0.0 {
            return 0.0;
        }
        // Enough panels for smooth integrands on [0, 1].
        let n = 64usize; // must be even for Simpson
        let h = z / n as f64;
        let mut sum = 1.0 / self.e_of_z(0.0) + 1.0 / self.e_of_z(z);
        for k in 1..n {
            let w = if k % 2 == 1 { 4.0 } else { 2.0 };
            sum += w / self.e_of_z(h * k as f64);
        }
        self.hubble_distance_mpc() * sum * h / 3.0
    }

    /// Angular-diameter distance in Mpc (flat universe: `D_C / (1+z)`).
    pub fn angular_diameter_distance_mpc(&self, z: f64) -> f64 {
        self.comoving_distance_mpc(z) / (1.0 + z)
    }

    /// Luminosity distance in Mpc (flat universe: `D_C * (1+z)`).
    pub fn luminosity_distance_mpc(&self, z: f64) -> f64 {
        self.comoving_distance_mpc(z) * (1.0 + z)
    }

    /// Distance modulus `m - M = 5 log10(D_L / 10 pc)`.
    pub fn distance_modulus(&self, z: f64) -> f64 {
        5.0 * (self.luminosity_distance_mpc(z) * 1.0e5).log10()
    }

    /// Angular size, in degrees, subtended by a proper length of
    /// `length_mpc` at redshift `z`. This is the `radius` column of the
    /// k-correction table when `length_mpc = 1`.
    pub fn angular_size_deg(&self, z: f64, length_mpc: f64) -> f64 {
        let da = self.angular_diameter_distance_mpc(z);
        (length_mpc / da).to_degrees()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hubble_distance() {
        let c = Cosmology::default();
        assert!((c.hubble_distance_mpc() - 2997.92458).abs() < 1e-4);
    }

    #[test]
    fn comoving_distance_is_monotone_increasing() {
        let c = Cosmology::default();
        let mut last = 0.0;
        for k in 1..=100 {
            let z = k as f64 * 0.01;
            let d = c.comoving_distance_mpc(z);
            assert!(d > last, "z={z}");
            last = d;
        }
    }

    #[test]
    fn low_z_matches_hubble_law() {
        // D ~ cz/H0 for z << 1.
        let c = Cosmology::default();
        let z = 0.01;
        let d = c.comoving_distance_mpc(z);
        let hubble = c.hubble_distance_mpc() * z;
        assert!((d - hubble).abs() / hubble < 0.01, "d={d} hubble={hubble}");
    }

    #[test]
    fn reproduces_the_papers_fiscluster_comment() {
        // "the r200 radius is, at ngal=100, 1.78 [Mpc] which, at z=0.05, is
        // 0.74 degrees". Allow a few percent for their unknown exact params.
        let c = Cosmology::default();
        let r200_mpc = 0.17 * 100f64.powf(0.51);
        assert!((r200_mpc - 1.78).abs() < 0.01);
        let deg = c.angular_size_deg(0.05, r200_mpc);
        assert!(
            (deg - 0.74).abs() < 0.05,
            "angular r200 at z=0.05 should be ~0.74 deg, got {deg}"
        );
    }

    #[test]
    fn angular_size_shrinks_with_redshift_below_z1() {
        let c = Cosmology::default();
        let a = c.angular_size_deg(0.05, 1.0);
        let b = c.angular_size_deg(0.3, 1.0);
        let d = c.angular_size_deg(0.8, 1.0);
        assert!(a > b && b > d);
    }

    #[test]
    fn distance_modulus_reasonable() {
        let c = Cosmology::default();
        // At z=0.1, D_L ~ 320 Mpc (h=1): mu ~ 5 log10(3.2e7) ~ 37.5.
        let mu = c.distance_modulus(0.1);
        assert!((37.0..38.2).contains(&mu), "mu={mu}");
    }

    #[test]
    fn luminosity_vs_angular_diameter_relation() {
        // Etherington: D_L = (1+z)^2 D_A.
        let c = Cosmology::default();
        for &z in &[0.05, 0.2, 0.5, 1.0] {
            let dl = c.luminosity_distance_mpc(z);
            let da = c.angular_diameter_distance_mpc(z);
            assert!((dl - (1.0 + z).powi(2) * da).abs() < 1e-6 * dl);
        }
    }

    #[test]
    #[should_panic(expected = "negative redshift")]
    fn negative_redshift_panics() {
        Cosmology::default().comoving_distance_mpc(-0.1);
    }
}
