//! The k-correction table: expected brightness, colors, and angular scale of
//! a brightest cluster galaxy (BCG) as a function of redshift.
//!
//! The paper's `Kcorr` table has 1000 rows at redshift steps of 0.001 (the
//! TAM baseline used 100 rows at steps of 0.01) with columns
//! `zid, z, i, ilim, ug, gr, ri, iz, radius`. Its actual values come from
//! unpublished SDSS calibration work, so this module *generates* a table
//! with the published shape:
//!
//! * `i(z)` — apparent i-band magnitude of a BCG, from a fixed absolute
//!   magnitude plus the distance modulus of [`Cosmology`];
//! * `ilim(z)` — the limiting magnitude for counting cluster members,
//!   two magnitudes fainter but never fainter than the survey limit;
//! * `gr(z)`, `ri(z)` — the red-sequence ridge line: smooth, monotonically
//!   reddening colors;
//! * `radius(z)` — the angular radius, in degrees, of 1 Mpc at `z`.
//!
//! Both the database implementation and the TAM file-based baseline consume
//! the same generated table, so their comparison is apples-to-apples, just
//! as in the paper.

use crate::cosmology::Cosmology;
use serde::{Deserialize, Serialize};

/// One row of the k-correction table (`CREATE TABLE Kcorr` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KcorrRow {
    /// 1-based identity key, as in the paper's `zid int identity(1,1)`.
    pub zid: u32,
    /// Redshift.
    pub z: f64,
    /// Apparent i-band Petrosian magnitude of a BCG at `z`.
    pub i: f64,
    /// Limiting i magnitude for cluster-member counting at `z`.
    pub ilim: f64,
    /// K(u-g) ridge-line color.
    pub ug: f64,
    /// K(g-r) ridge-line color.
    pub gr: f64,
    /// K(r-i) ridge-line color.
    pub ri: f64,
    /// K(i-z) ridge-line color.
    pub iz: f64,
    /// Angular radius of 1 Mpc at `z`, in degrees.
    pub radius: f64,
}

/// Parameters controlling table generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KcorrConfig {
    /// Lowest tabulated redshift. The paper's low-redshift cutoff is 0.05
    /// ("all candidates within 0.5 deg as this corresponds to a reasonable
    /// low redshift cutoff"): at z = 0.05 the 1 Mpc radius is ~0.42 deg,
    /// which is what makes the 0.5 deg buffers sufficient everywhere.
    pub z_min: f64,
    /// Redshift step between consecutive rows.
    pub z_step: f64,
    /// Number of rows; row `zid` sits at `z = z_min + (zid - 1) * z_step`.
    pub steps: u32,
    /// Absolute i-band magnitude of the BCG population (h = 1 units).
    pub m_bcg: f64,
    /// Passive-evolution slope added as `q_evolve * z` magnitudes.
    pub q_evolve: f64,
    /// Member counting reaches `i + member_depth` magnitudes deep...
    pub member_depth: f64,
    /// ...but never beyond the survey limiting magnitude.
    pub survey_ilim: f64,
    /// Cosmology used for distances.
    pub cosmology: Cosmology,
}

impl KcorrConfig {
    /// The database implementation's table: redshift steps of 0.001,
    /// 1000 rows (z from 0.05 to 1.049).
    pub fn sql() -> Self {
        KcorrConfig {
            z_min: 0.05,
            z_step: 0.001,
            steps: 1000,
            m_bcg: -23.0,
            q_evolve: 0.8,
            member_depth: 2.0,
            survey_ilim: 21.5,
            cosmology: Cosmology::default(),
        }
    }

    /// The TAM baseline's coarser table: redshift steps of 0.01, 100 rows.
    pub fn tam() -> Self {
        KcorrConfig { z_step: 0.01, steps: 100, ..Self::sql() }
    }
}

impl Default for KcorrConfig {
    fn default() -> Self {
        Self::sql()
    }
}

/// The generated k-correction table. Rows are stored in `zid` order
/// (equivalently: increasing redshift).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KcorrTable {
    config: KcorrConfig,
    rows: Vec<KcorrRow>,
}

/// The red-sequence g-r ridge line as a smooth, monotone function of z.
fn ridge_gr(z: f64) -> f64 {
    0.60 + 1.20 * (2.6 * z).tanh()
}

/// The red-sequence r-i ridge line.
fn ridge_ri(z: f64) -> f64 {
    0.35 + 0.75 * (1.8 * z).tanh()
}

/// The u-g ridge line (stored for schema completeness; MaxBCG never reads it).
fn ridge_ug(z: f64) -> f64 {
    1.50 + 0.80 * (2.0 * z).tanh()
}

/// The i-z ridge line (stored for schema completeness).
fn ridge_iz(z: f64) -> f64 {
    0.20 + 0.50 * z
}

impl KcorrTable {
    /// Generate a table from `config`.
    pub fn generate(config: KcorrConfig) -> Self {
        assert!(config.steps > 0 && config.z_step > 0.0, "empty k-correction grid");
        let rows = (1..=config.steps)
            .map(|zid| {
                let z = config.z_min + f64::from(zid - 1) * config.z_step;
                let i = config.m_bcg
                    + config.cosmology.distance_modulus(z)
                    + config.q_evolve * z;
                let ilim = (i + config.member_depth).min(config.survey_ilim);
                KcorrRow {
                    zid,
                    z,
                    i,
                    ilim,
                    ug: ridge_ug(z),
                    gr: ridge_gr(z),
                    ri: ridge_ri(z),
                    iz: ridge_iz(z),
                    radius: config.cosmology.angular_size_deg(z, 1.0),
                }
            })
            .collect();
        KcorrTable { config, rows }
    }

    /// The configuration the table was generated from.
    pub fn config(&self) -> &KcorrConfig {
        &self.config
    }

    /// All rows in `zid` order.
    pub fn rows(&self) -> &[KcorrRow] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows (never the case for generated
    /// tables, but required by the `len` convention).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Row lookup by the 1-based `zid` key.
    pub fn row(&self, zid: u32) -> Option<&KcorrRow> {
        if zid == 0 {
            return None;
        }
        self.rows.get(zid as usize - 1)
    }

    /// The row whose redshift is closest to `z` — the counterpart of the
    /// paper's `WHERE ABS(z - @z) < 0.0000001` lookups, tolerant to the
    /// float round-trip through the Candidates table.
    pub fn nearest(&self, z: f64) -> &KcorrRow {
        let idx = ((z - self.config.z_min) / self.config.z_step).round() as i64;
        let idx = idx.clamp(0, self.rows.len() as i64 - 1) as usize;
        &self.rows[idx]
    }

    /// The largest 1 Mpc angular radius in the table (attained at the lowest
    /// redshift); an upper bound used to size buffers.
    pub fn max_radius_deg(&self) -> f64 {
        // Radius decreases with z below z~1, so row 0 holds the max, but do
        // not rely on that here.
        self.rows.iter().map(|r| r.radius).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_table_has_1000_rows_at_step_0001() {
        let t = KcorrTable::generate(KcorrConfig::sql());
        assert_eq!(t.len(), 1000);
        assert!((t.rows()[0].z - 0.05).abs() < 1e-12);
        assert!((t.rows()[999].z - 1.049).abs() < 1e-12);
    }

    #[test]
    fn tam_table_has_100_rows_at_step_001() {
        let t = KcorrTable::generate(KcorrConfig::tam());
        assert_eq!(t.len(), 100);
        assert!((t.rows()[0].z - 0.05).abs() < 1e-12);
        assert!((t.rows()[99].z - 1.04).abs() < 1e-12);
    }

    #[test]
    fn zid_lookup_is_one_based() {
        let t = KcorrTable::generate(KcorrConfig::tam());
        assert!(t.row(0).is_none());
        assert_eq!(t.row(1).unwrap().zid, 1);
        assert_eq!(t.row(100).unwrap().zid, 100);
        assert!(t.row(101).is_none());
    }

    #[test]
    fn brightness_dims_with_redshift() {
        let t = KcorrTable::generate(KcorrConfig::sql());
        let rows = t.rows();
        for w in rows.windows(2) {
            assert!(w[1].i > w[0].i, "i must increase with z");
        }
        // Observable range for an SDSS-like survey.
        assert!(rows[49].i > 10.0 && rows[999].i < 22.0);
    }

    #[test]
    fn member_window_narrows_at_high_redshift() {
        // Once i + depth hits the survey limit, ilim - i shrinks: distant
        // clusters have fewer countable members, as in the real survey.
        let t = KcorrTable::generate(KcorrConfig::sql());
        let low = t.nearest(0.05);
        let high = t.nearest(0.9);
        assert!((low.ilim - low.i - 2.0).abs() < 1e-9);
        assert!(high.ilim - high.i < 2.0);
        for r in t.rows() {
            assert!(r.ilim >= r.i, "ilim must not be brighter than the BCG");
            assert!(r.ilim <= 21.5 + 1e-9);
        }
    }

    #[test]
    fn colors_redden_monotonically() {
        let t = KcorrTable::generate(KcorrConfig::sql());
        for w in t.rows().windows(2) {
            assert!(w[1].gr >= w[0].gr);
            assert!(w[1].ri >= w[0].ri);
            assert!(w[1].ug >= w[0].ug);
            assert!(w[1].iz >= w[0].iz);
        }
    }

    #[test]
    fn radius_shrinks_with_redshift() {
        let t = KcorrTable::generate(KcorrConfig::sql());
        for w in t.rows().windows(2) {
            assert!(w[1].radius < w[0].radius);
        }
        // 1 Mpc at z = 0.05 is ~0.4 deg in h=1 units.
        let r = t.nearest(0.05).radius;
        assert!((0.3..0.5).contains(&r), "radius at z=0.05: {r}");
        assert_eq!(t.max_radius_deg(), t.rows()[0].radius);
        // The low-redshift cutoff keeps every radius under the 0.5 deg
        // buffer the implementations rely on.
        assert!(t.max_radius_deg() < 0.5);
    }

    #[test]
    fn nearest_snaps_to_grid() {
        let t = KcorrTable::generate(KcorrConfig::sql());
        assert_eq!(t.nearest(0.05).zid, 1);
        assert_eq!(t.nearest(0.0503).zid, 1, "0.0503 rounds to the 0.050 row");
        assert_eq!(t.nearest(0.0506).zid, 2);
        assert_eq!(t.nearest(0.2).zid, 151);
        // Values off either end clamp instead of panicking.
        assert_eq!(t.nearest(0.0).zid, 1);
        assert_eq!(t.nearest(5.0).zid, 1000);
    }

    #[test]
    fn both_grids_agree_where_they_overlap() {
        // The TAM grid is a 10x decimation of the SQL grid; physics columns
        // must agree on shared redshifts.
        let sql = KcorrTable::generate(KcorrConfig::sql());
        let tam = KcorrTable::generate(KcorrConfig::tam());
        for row in tam.rows() {
            if row.z > sql.rows().last().unwrap().z {
                break; // the coarse grid reaches slightly deeper
            }
            let fine = sql.nearest(row.z);
            assert!((fine.z - row.z).abs() < 1e-12);
            assert!((fine.i - row.i).abs() < 1e-12);
            assert!((fine.gr - row.gr).abs() < 1e-12);
            assert!((fine.radius - row.radius).abs() < 1e-12);
        }
    }
}
