//! # skycore — the astronomy substrate
//!
//! Shared primitives for the MaxBCG reproduction: angle and spherical
//! geometry helpers, rectangular sky regions, a small FLRW cosmology, the
//! generated k-correction table, zone arithmetic, the record types of the
//! paper's schema, and — most importantly — the MaxBCG likelihood math of
//! [`bcg`], transcribed from the paper's appendix SQL.
//!
//! Everything downstream (`skysim`, `stardb`'s zone index, the `tam`
//! baseline, the `maxbcg` database pipeline) builds on these definitions so
//! that the two competing implementations provably share their physics.

#![warn(missing_docs)]

pub mod angle;
pub mod bcg;
pub mod coords;
pub mod cosmology;
pub mod kcorr;
pub mod region;
pub mod types;
pub mod zones;

pub use bcg::BcgParams;
pub use coords::UnitVec;
pub use cosmology::Cosmology;
pub use kcorr::{KcorrConfig, KcorrRow, KcorrTable};
pub use region::SkyRegion;
pub use types::{Candidate, Cluster, ClusterMember, Friend, Galaxy};
pub use zones::{ra_intervals, ShardMap, ZoneScheme};
