//! Rectangular sky regions (`ra/dec` boxes).
//!
//! All of the paper's selections are coordinate-window queries:
//! `WHERE ra BETWEEN .. AND dec BETWEEN ..` (Figures 4 and 5). A
//! [`SkyRegion`] models such a box, plus the buffered/partitioned variants
//! the implementations need:
//!
//! * the TAM tiling: 0.5 x 0.5 deg targets inside 1 x 1 deg buffer files;
//! * the SQL target `T` (e.g. 11 x 6 = 66 deg^2) inside a buffer region
//!   `B`/`P` extended by 0.5 deg on every side (13 x 8 = 104 deg^2);
//! * the 3-way zone partitioning of Figure 6 with 1 deg duplicated stripes.

use serde::{Deserialize, Serialize};

/// An inclusive rectangular window on the sky, in degrees.
///
/// Regions used by this workspace stay away from the RA wrap point and the
/// poles, just like the paper's SDSS stripes; `ra_min <= ra_max` is required.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkyRegion {
    /// Western edge, degrees.
    pub ra_min: f64,
    /// Eastern edge, degrees.
    pub ra_max: f64,
    /// Southern edge, degrees.
    pub dec_min: f64,
    /// Northern edge, degrees.
    pub dec_max: f64,
}

impl SkyRegion {
    /// Create a region; panics on an inverted window, which is always a
    /// programming error in this workspace (regions come from presets or
    /// arithmetic on presets).
    pub fn new(ra_min: f64, ra_max: f64, dec_min: f64, dec_max: f64) -> Self {
        assert!(
            ra_min <= ra_max && dec_min <= dec_max,
            "inverted region: ra [{ra_min}, {ra_max}], dec [{dec_min}, {dec_max}]"
        );
        SkyRegion { ra_min, ra_max, dec_min, dec_max }
    }

    /// The paper's main test case: an 11 x 6 = 66 deg^2 target area
    /// (`EXEC spMakeCandidates 172.5, 184.5, -2.5, 4.5` ... the target is
    /// `ra in [173, 184], dec in [-2, 4]` per Figure 5).
    pub fn paper_target_66() -> Self {
        SkyRegion::new(173.0, 184.0, -2.0, 4.0)
    }

    /// The paper's 13 x 8 = 104 deg^2 import region (`EXEC spImportGalaxy
    /// 172, 185, -3, 5`).
    pub fn paper_import_104() -> Self {
        SkyRegion::new(172.0, 185.0, -3.0, 5.0)
    }

    /// The MySkyServerDr1 demo region of the appendix: about 2.5 x 2.5 deg^2
    /// centered on (195.163, 2.5); the demo runs
    /// `spMakeCandidates 194, 196, 1.5, 3.5`.
    pub fn mysky_demo() -> Self {
        SkyRegion::new(194.0, 196.0, 1.5, 3.5)
    }

    /// Width in RA degrees (coordinate span, not proper length).
    pub fn ra_span(&self) -> f64 {
        self.ra_max - self.ra_min
    }

    /// Height in Dec degrees.
    pub fn dec_span(&self) -> f64 {
        self.dec_max - self.dec_min
    }

    /// Coordinate-box area in deg^2, the convention the paper uses when it
    /// says "66 deg^2" (11 x 6 near the equator).
    pub fn area_deg2(&self) -> f64 {
        self.ra_span() * self.dec_span()
    }

    /// Containment test with inclusive bounds, matching SQL `BETWEEN`.
    #[inline]
    pub fn contains(&self, ra: f64, dec: f64) -> bool {
        ra >= self.ra_min && ra <= self.ra_max && dec >= self.dec_min && dec <= self.dec_max
    }

    /// Expand the window by `margin` degrees on every side — the buffer
    /// construction of Figures 1 and 4.
    pub fn expanded(&self, margin: f64) -> SkyRegion {
        SkyRegion::new(
            self.ra_min - margin,
            self.ra_max + margin,
            self.dec_min - margin,
            self.dec_max + margin,
        )
    }

    /// Shrink by `margin` degrees on every side (inverse of [`expanded`];
    /// panics if the region would invert).
    ///
    /// [`expanded`]: SkyRegion::expanded
    pub fn shrunk(&self, margin: f64) -> SkyRegion {
        self.expanded(-margin)
    }

    /// Intersection with another region, `None` when disjoint.
    pub fn intersect(&self, other: &SkyRegion) -> Option<SkyRegion> {
        let ra_min = self.ra_min.max(other.ra_min);
        let ra_max = self.ra_max.min(other.ra_max);
        let dec_min = self.dec_min.max(other.dec_min);
        let dec_max = self.dec_max.min(other.dec_max);
        if ra_min <= ra_max && dec_min <= dec_max {
            Some(SkyRegion::new(ra_min, ra_max, dec_min, dec_max))
        } else {
            None
        }
    }

    /// Center of the box.
    pub fn center(&self) -> (f64, f64) {
        (
            (self.ra_min + self.ra_max) / 2.0,
            (self.dec_min + self.dec_max) / 2.0,
        )
    }

    /// Split into `n` horizontal (declination) stripes of equal height —
    /// the zone-partitioning unit of Figure 6. Stripe `0` is the bottom one.
    pub fn dec_stripes(&self, n: usize) -> Vec<SkyRegion> {
        assert!(n > 0, "cannot split into zero stripes");
        let h = self.dec_span() / n as f64;
        (0..n)
            .map(|k| {
                SkyRegion::new(
                    self.ra_min,
                    self.ra_max,
                    self.dec_min + h * k as f64,
                    // Use the exact top for the last stripe to avoid float
                    // drift leaving a sliver uncovered.
                    if k + 1 == n { self.dec_max } else { self.dec_min + h * (k + 1) as f64 },
                )
            })
            .collect()
    }

    /// The buffered partition layout of Figure 6: split the region into `n`
    /// native dec stripes, then give every stripe `margin` degrees of
    /// duplicated sky on each interior edge (stripes at the survey edge get
    /// no buffer beyond the region). Returns `(native, buffered)` pairs.
    pub fn partition_with_buffers(&self, n: usize, margin: f64) -> Vec<(SkyRegion, SkyRegion)> {
        self.dec_stripes(n)
            .into_iter()
            .enumerate()
            .map(|(k, native)| {
                let dec_min = if k == 0 { native.dec_min } else { native.dec_min - margin };
                let dec_max = if k + 1 == n { native.dec_max } else { native.dec_max + margin };
                (
                    native,
                    SkyRegion::new(self.ra_min, self.ra_max, dec_min.max(self.dec_min - margin), dec_max.min(self.dec_max + margin)),
                )
            })
            .collect()
    }
}

impl std::fmt::Display for SkyRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ra [{:.3}, {:.3}] dec [{:.3}, {:.3}] ({:.1} deg^2)",
            self.ra_min,
            self.ra_max,
            self.dec_min,
            self.dec_max,
            self.area_deg2()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_regions_have_paper_areas() {
        assert!((SkyRegion::paper_target_66().area_deg2() - 66.0).abs() < 1e-9);
        assert!((SkyRegion::paper_import_104().area_deg2() - 104.0).abs() < 1e-9);
    }

    #[test]
    fn import_region_is_target_plus_one_degree() {
        // 13 x 8 = (11 + 2) x (6 + 2): the import region gives the target a
        // 0.5 deg candidate buffer plus 0.5 deg of neighbor buffer.
        let t = SkyRegion::paper_target_66();
        let p = SkyRegion::paper_import_104();
        assert_eq!(t.expanded(1.0), p);
    }

    #[test]
    fn contains_is_inclusive_like_sql_between() {
        let r = SkyRegion::new(10.0, 20.0, -1.0, 1.0);
        assert!(r.contains(10.0, -1.0));
        assert!(r.contains(20.0, 1.0));
        assert!(!r.contains(20.0001, 0.0));
        assert!(!r.contains(15.0, 1.0001));
    }

    #[test]
    fn expand_shrink_roundtrip() {
        let r = SkyRegion::new(10.0, 20.0, -1.0, 1.0);
        assert_eq!(r.expanded(0.5).shrunk(0.5), r);
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = SkyRegion::new(0.0, 1.0, 0.0, 1.0);
        let b = SkyRegion::new(2.0, 3.0, 0.0, 1.0);
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn intersect_overlapping() {
        let a = SkyRegion::new(0.0, 2.0, 0.0, 2.0);
        let b = SkyRegion::new(1.0, 3.0, 1.0, 3.0);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, SkyRegion::new(1.0, 2.0, 1.0, 2.0));
    }

    #[test]
    fn stripes_tile_exactly() {
        let r = SkyRegion::paper_import_104();
        let stripes = r.dec_stripes(3);
        assert_eq!(stripes.len(), 3);
        assert_eq!(stripes[0].dec_min, r.dec_min);
        assert_eq!(stripes[2].dec_max, r.dec_max);
        for w in stripes.windows(2) {
            assert_eq!(w[0].dec_max, w[1].dec_min);
        }
        let total: f64 = stripes.iter().map(|s| s.area_deg2()).sum();
        assert!((total - r.area_deg2()).abs() < 1e-9);
    }

    #[test]
    fn figure6_duplication_accounting() {
        // Figure 6: partitioning P (13 x 8) into 3 servers with 1 deg of
        // buffer duplicates 4 stripes of 13 deg^2: the middle server carries
        // two buffers, the outer servers one each.
        let p = SkyRegion::paper_import_104();
        let parts = p.partition_with_buffers(3, 1.0);
        let native_area: f64 = parts.iter().map(|(n, _)| n.area_deg2()).sum();
        let buffered_area: f64 = parts.iter().map(|(_, b)| b.area_deg2()).sum();
        assert!((native_area - 104.0).abs() < 1e-9);
        assert!(
            (buffered_area - native_area - 4.0 * 13.0).abs() < 1e-9,
            "duplicated area should be 4 x 13 deg^2, got {}",
            buffered_area - native_area
        );
        // Middle partition is buffered on both sides.
        assert!((parts[1].1.dec_span() - (p.dec_span() / 3.0 + 2.0)).abs() < 1e-9);
    }

    #[test]
    fn partition_buffers_stay_within_survey() {
        let p = SkyRegion::paper_import_104();
        for (native, buffered) in p.partition_with_buffers(3, 1.0) {
            assert!(buffered.dec_min >= p.dec_min - 1e-9);
            assert!(buffered.dec_max <= p.dec_max + 1e-9);
            assert!(buffered.intersect(&native) == Some(native));
        }
    }

    #[test]
    #[should_panic(expected = "inverted region")]
    fn inverted_region_panics() {
        SkyRegion::new(10.0, 5.0, 0.0, 1.0);
    }
}
