//! The shared record types flowing through both MaxBCG implementations:
//! galaxies, BCG candidates, clusters, and cluster members. Field sets match
//! the paper's `Galaxy`, `Candidates`, `Clusters`, and
//! `ClusterGalaxiesMetric` tables.

use crate::coords::UnitVec;
use serde::{Deserialize, Serialize};

/// One galaxy from the catalog — the 5-space MaxBCG works in (two spatial
/// dimensions, two colors, one brightness) plus the per-object color errors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Galaxy {
    /// Unique SDSS-style object identifier.
    pub objid: i64,
    /// Right ascension, degrees.
    pub ra: f64,
    /// Declination, degrees.
    pub dec: f64,
    /// De-reddened i-band magnitude.
    pub i: f64,
    /// g-r color.
    pub gr: f64,
    /// r-i color.
    pub ri: f64,
    /// Standard error of g-r (see [`sigma_gr`]).
    pub sigma_gr: f64,
    /// Standard error of r-i (see [`sigma_ri`]).
    pub sigma_ri: f64,
}

impl Galaxy {
    /// Construct a galaxy computing the color-error model from the i-band
    /// magnitude, exactly as `spImportGalaxy` does.
    pub fn with_derived_errors(objid: i64, ra: f64, dec: f64, i: f64, gr: f64, ri: f64) -> Self {
        Galaxy { objid, ra, dec, i, gr, ri, sigma_gr: sigma_gr(i), sigma_ri: sigma_ri(i) }
    }

    /// Unit vector of the galaxy's position.
    pub fn unit_vec(&self) -> UnitVec {
        UnitVec::from_radec(self.ra, self.dec)
    }
}

/// The g-r photometric error model of `spImportGalaxy`:
/// `2.089 * 10^(0.228 * i - 6)`.
#[inline]
pub fn sigma_gr(i: f64) -> f64 {
    2.089 * 10f64.powf(0.228 * i - 6.0)
}

/// The r-i photometric error model of `spImportGalaxy`:
/// `4.266 * 10^(0.206 * i - 6)`.
#[inline]
pub fn sigma_ri(i: f64) -> f64 {
    4.266 * 10f64.powf(0.206 * i - 6.0)
}

/// A BCG candidate (one row of the paper's `Candidates` table): a galaxy
/// that, at its best redshift, is plausibly the brightest galaxy of a
/// cluster, together with its maximum-likelihood redshift, neighbor count,
/// and weighted likelihood.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Unique object identifier.
    pub objid: i64,
    /// Right ascension, degrees.
    pub ra: f64,
    /// Declination, degrees.
    pub dec: f64,
    /// Maximum-likelihood redshift.
    pub z: f64,
    /// i-band magnitude of the candidate.
    pub i: f64,
    /// Number of galaxies in the cluster (neighbors + the BCG itself).
    pub ngal: i32,
    /// Weighted likelihood `max(ln(ngal+1) - chisq)`; the paper stores it in
    /// the `chi2` column.
    pub chi2: f64,
}

/// A confirmed cluster (one row of `Clusters`): a candidate that carries the
/// best likelihood among all candidates in its neighborhood and redshift
/// slice. Identical shape to [`Candidate`].
pub type Cluster = Candidate;

/// One cluster-membership row (`ClusterGalaxiesMetric`): `galaxy` belongs to
/// the cluster centered on `cluster` at angular separation `distance`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterMember {
    /// The BCG at the cluster center.
    pub cluster_objid: i64,
    /// The member galaxy.
    pub galaxy_objid: i64,
    /// Angular separation in degrees (0 for the BCG itself).
    pub distance: f64,
}

/// A neighbor record produced by a spatial search: object id, angular
/// distance in degrees, and the photometry needed by the counting windows.
/// This is the paper's `@friends` table variable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Friend {
    /// Unique object identifier.
    pub objid: i64,
    /// Angular distance to the search center, degrees.
    pub distance: f64,
    /// i-band magnitude.
    pub i: f64,
    /// g-r color.
    pub gr: f64,
    /// r-i color.
    pub ri: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_model_matches_paper_constants() {
        // spImportGalaxy: sigmagr = 2.089 * 10^(0.228*i - 6).
        let s = sigma_gr(20.0);
        assert!((s - 2.089 * 10f64.powf(0.228 * 20.0 - 6.0)).abs() < 1e-15);
        let s = sigma_ri(20.0);
        assert!((s - 4.266 * 10f64.powf(0.206 * 20.0 - 6.0)).abs() < 1e-15);
    }

    #[test]
    fn errors_grow_for_fainter_galaxies() {
        assert!(sigma_gr(21.0) > sigma_gr(17.0));
        assert!(sigma_ri(21.0) > sigma_ri(17.0));
        // Bright galaxies have tiny color errors.
        assert!(sigma_gr(15.0) < 0.01);
    }

    #[test]
    fn with_derived_errors_populates_sigmas() {
        let g = Galaxy::with_derived_errors(42, 195.0, 2.5, 18.0, 1.1, 0.5);
        assert_eq!(g.objid, 42);
        assert!((g.sigma_gr - sigma_gr(18.0)).abs() < 1e-15);
        assert!((g.sigma_ri - sigma_ri(18.0)).abs() < 1e-15);
    }

    #[test]
    fn unit_vec_matches_coords() {
        let g = Galaxy::with_derived_errors(1, 10.0, -5.0, 18.0, 1.0, 0.4);
        let v = g.unit_vec();
        let (ra, dec) = v.to_radec();
        assert!((ra - 10.0).abs() < 1e-9 && (dec + 5.0).abs() < 1e-9);
    }
}
