//! The zone schema: mapping declinations to 30-arcsecond zones.
//!
//! The paper's zone-indexing scheme maps the celestial sphere into
//! declination stripes ("zones") of fixed height `h`:
//! `Zone = floor((dec + 90) / h)`. Neighborhood searches then loop over the
//! zones a search circle overlaps and cut on right ascension inside each
//! zone. Both the `stardb` zone index and the `maxbcg` pipeline use these
//! helpers so zone arithmetic lives in exactly one place.

use crate::angle::ZONE_HEIGHT_DEG;
use serde::{Deserialize, Serialize};

/// Half-extent in RA degrees of a circle of radius `r_deg` centered at
/// `center_dec`, measured at declination `dec`: the spherical triangle
/// identity `cos Δα = (cos r − sin δc sin δ) / (cos δc cos δ)`. Saturates
/// to 360 when the declination ring lies wholly inside the circle (polar
/// caps) and to 0 when the circle has no points at that declination.
fn ra_extent_deg(center_dec: f64, r_deg: f64, dec: f64) -> f64 {
    let (rr, dc, d) = (r_deg.to_radians(), center_dec.to_radians(), dec.to_radians());
    let num = rr.cos() - dc.sin() * d.sin();
    let denom = dc.cos() * d.cos();
    if denom <= f64::EPSILON {
        // At (or numerically at) a pole: the ring degenerates to a point,
        // inside the circle iff the numerator is non-positive.
        return if num <= 0.0 { 360.0 } else { 0.0 };
    }
    let f = num / denom;
    if f <= -1.0 {
        360.0
    } else if f >= 1.0 {
        0.0
    } else {
        f.acos().to_degrees()
    }
}

/// Zone numbering scheme with height `h` degrees (default: 30 arcsec).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneScheme {
    /// Zone height in degrees.
    pub height_deg: f64,
}

impl Default for ZoneScheme {
    fn default() -> Self {
        ZoneScheme { height_deg: ZONE_HEIGHT_DEG }
    }
}

impl ZoneScheme {
    /// Create a scheme with a custom height (tests use coarse zones).
    pub fn with_height(height_deg: f64) -> Self {
        assert!(height_deg > 0.0, "zone height must be positive");
        ZoneScheme { height_deg }
    }

    /// `Zone = floor((dec + 90) / h)` — the paper's formula.
    #[inline]
    pub fn zone_of(&self, dec_deg: f64) -> i32 {
        ((dec_deg + 90.0) / self.height_deg).floor() as i32
    }

    /// Declination of the *bottom* edge of a zone.
    #[inline]
    pub fn zone_bottom_dec(&self, zone: i32) -> f64 {
        f64::from(zone) * self.height_deg - 90.0
    }

    /// Zone range `[min, max]` overlapped by a circle of radius `r_deg`
    /// centered at declination `dec_deg` (the loop bounds of
    /// `fGetNearbyObjEqZd`).
    pub fn zone_range(&self, dec_deg: f64, r_deg: f64) -> (i32, i32) {
        (self.zone_of(dec_deg - r_deg), self.zone_of(dec_deg + r_deg))
    }

    /// The per-zone right-ascension half-window `@x` of `fGetNearbyObjEqZd`:
    /// in zones away from the circle's central zone, the circle is narrower
    /// in RA; the window is the chord half-width at the zone edge nearest
    /// the center, corrected for `cos(dec)`.
    ///
    /// Returns the half-width in RA degrees. For the central zone this is
    /// the full `cos(dec)`-adjusted radius.
    pub fn ra_half_window(&self, center_dec: f64, r_deg: f64, zone: i32) -> f64 {
        // The slice of this zone the circle's declination band can touch,
        // clamped to the physical sphere: a band reaching past a pole holds
        // no declinations beyond ±90, and cos(dec) past the pole would go
        // negative and poison the window.
        let zone_lo = self.zone_bottom_dec(zone);
        let zone_hi = zone_lo + self.height_deg;
        let lo = (center_dec - r_deg).max(zone_lo).max(-90.0);
        let hi = (center_dec + r_deg).min(zone_hi).min(90.0);
        if lo > hi {
            // The zone lies wholly outside the band: nothing can qualify.
            return 0.0;
        }
        // Exact spherical half-window, maximized over the slice. ΔRA(δ) on
        // the circle boundary is unimodal in δ with its interior peak at
        // sin δ* = sin δc / cos r, so the slice maximum is attained at an
        // endpoint or at δ* when the slice contains it. The planar
        // chord/cos(dec) shortcut of the plain SQL undersizes the window
        // near the poles (a circle over the pole reaches RA ≈ center+180°);
        // the window may only ever be generous — the dec-window and chord
        // cuts are exact.
        let mut w = ra_extent_deg(center_dec, r_deg, lo).max(ra_extent_deg(center_dec, r_deg, hi));
        let ratio = center_dec.to_radians().sin() / r_deg.to_radians().cos();
        if ratio.abs() <= 1.0 {
            let peak = ratio.asin().to_degrees();
            if peak > lo && peak < hi {
                w = w.max(ra_extent_deg(center_dec, r_deg, peak));
            }
        }
        if w >= 360.0 {
            360.0
        } else {
            // A hair of slack against acos/cos rounding: widening is always
            // safe, shrinking could drop a rim-adjacent object.
            w + 1e-9
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_height_is_30_arcsec() {
        let s = ZoneScheme::default();
        assert!((s.height_deg - 30.0 / 3600.0).abs() < 1e-15);
    }

    #[test]
    fn zone_formula_matches_paper() {
        let s = ZoneScheme::default();
        // floor((dec + 90)/h): dec = -90 is zone 0.
        assert_eq!(s.zone_of(-90.0), 0);
        // dec = 0 is zone 90/h = 10800.
        assert_eq!(s.zone_of(0.0), 10800);
        // One zone above after 30 arcsec.
        assert_eq!(s.zone_of(30.0 / 3600.0), 10801);
    }

    #[test]
    fn zone_bottom_inverts_zone_of() {
        let s = ZoneScheme::default();
        for &dec in &[-89.9, -5.0, 0.0, 2.5, 45.1] {
            let z = s.zone_of(dec);
            let bottom = s.zone_bottom_dec(z);
            assert!(bottom <= dec && dec < bottom + s.height_deg, "dec={dec}");
        }
    }

    #[test]
    fn zone_range_covers_circle() {
        let s = ZoneScheme::default();
        let (lo, hi) = s.zone_range(2.5, 0.5);
        assert!(s.zone_bottom_dec(lo) <= 2.0);
        assert!(s.zone_bottom_dec(hi) + s.height_deg >= 3.0);
        // 1 degree of circle diameter spans ~120 thirty-arcsec zones.
        assert!((hi - lo) >= 119 && (hi - lo) <= 121, "span {}", hi - lo);
    }

    #[test]
    fn central_zone_window_is_adjusted_radius() {
        let s = ZoneScheme::default();
        let w = s.ra_half_window(0.0, 0.5, s.zone_of(0.0));
        assert!((w - 0.5).abs() < 1e-6);
    }

    #[test]
    fn window_narrows_away_from_center() {
        let s = ZoneScheme::default();
        let center = 2.5;
        let r = 0.5;
        let cen_zone = s.zone_of(center);
        let near = s.ra_half_window(center, r, cen_zone + 1);
        let far = s.ra_half_window(center, r, s.zone_of(center + r));
        assert!(near <= s.ra_half_window(center, r, cen_zone) + 1e-9);
        assert!(far < near, "far={far} near={near}");
    }

    #[test]
    fn coarse_zones_for_tests() {
        let s = ZoneScheme::with_height(1.0);
        assert_eq!(s.zone_of(0.5), 90);
        assert_eq!(s.zone_of(-0.5), 89);
    }

    #[test]
    #[should_panic(expected = "zone height must be positive")]
    fn zero_height_panics() {
        ZoneScheme::with_height(0.0);
    }

    /// The window must cover every point of the circle that falls inside the
    /// zone: for sampled declinations in the zone∩band slice, the circle's
    /// exact RA half-extent `ra_adjusted_radius(sqrt(r²−δ²), dec)` may never
    /// exceed the reported window.
    fn assert_window_covers_circle(s: &ZoneScheme, center_dec: f64, r: f64) {
        let (z_lo, z_hi) = s.zone_range(center_dec, r);
        for zone in z_lo..=z_hi {
            let w = s.ra_half_window(center_dec, r, zone);
            let zone_lo = s.zone_bottom_dec(zone);
            let zone_hi = zone_lo + s.height_deg;
            let lo = (center_dec - r).max(zone_lo).max(-90.0);
            let hi = (center_dec + r).min(zone_hi).min(90.0);
            if lo > hi {
                assert_eq!(w, 0.0, "zone {zone} outside the band must get a zero window");
                continue;
            }
            for i in 0..=32 {
                let dec = lo + (hi - lo) * f64::from(i) / 32.0;
                let extent = ra_extent_deg(center_dec, r, dec);
                assert!(
                    extent <= w + 1e-9,
                    "zone {zone} dec {dec}: circle extent {extent} exceeds window {w} \
                     (center_dec={center_dec}, r={r})"
                );
            }
        }
    }

    #[test]
    fn window_covers_circle_near_poles() {
        let s = ZoneScheme::default();
        // Centers within r of each pole: cos(dec) changes measurably across
        // a single 30-arcsec zone here, so an edge-nearest-center correction
        // would undersize the window.
        for &(dec, r) in &[(89.99, 0.05), (-89.99, 0.05), (89.999, 0.01), (-89.95, 0.2)] {
            assert_window_covers_circle(&s, dec, r);
        }
    }

    #[test]
    fn window_covers_circle_when_radius_exceeds_zone_height() {
        // Coarse 1-degree zones and a 2.5-degree circle: every zone's slice
        // spans the full zone height, and the central zone's widest point is
        // not at its edges.
        let s = ZoneScheme::with_height(1.0);
        for &(dec, r) in &[(0.3, 2.5), (45.7, 2.5), (-60.2, 1.7)] {
            assert_window_covers_circle(&s, dec, r);
        }
        // Default 30-arcsec zones with the Table 1 search radius (already
        // many zone heights): same invariant.
        assert_window_covers_circle(&ZoneScheme::default(), 2.5, 0.5);
    }

    #[test]
    fn zone_wholly_outside_band_gets_zero_window() {
        let s = ZoneScheme::with_height(1.0);
        let (z_lo, z_hi) = s.zone_range(10.5, 0.4);
        assert_eq!(s.ra_half_window(10.5, 0.4, z_lo - 1), 0.0);
        assert_eq!(s.ra_half_window(10.5, 0.4, z_hi + 1), 0.0);
        // Zones inside the range still get positive windows.
        assert!(s.ra_half_window(10.5, 0.4, s.zone_of(10.5)) > 0.0);
    }

    #[test]
    fn pole_zone_window_saturates_to_full_ra() {
        // A circle over the pole: every meridian crosses it, so the most
        // polar zone's window saturates to the full RA circle and the scan
        // degenerates to the whole zone — the exact cuts do the filtering,
        // exactly like the SQL original.
        let s = ZoneScheme::default();
        let dec: f64 = 90.0 - 0.001;
        let top_zone = s.zone_of((dec + 0.01).min(90.0 - 1e-12));
        assert_eq!(s.ra_half_window(dec, 0.01, top_zone), 360.0);
    }

    #[test]
    fn zone_range_clamps_sanely_past_poles() {
        let s = ZoneScheme::default();
        // A band reaching past +90: the top zone index is simply the formula
        // applied to dec+r; callers iterate the range and find no rows in
        // zones beyond the data.
        let (lo, hi) = s.zone_range(89.999, 0.01);
        assert!(lo <= s.zone_of(89.999) && s.zone_of(89.999) <= hi);
        assert!(hi >= s.zone_of(90.0 - 1e-9));
    }
}
