//! The zone schema: mapping declinations to 30-arcsecond zones.
//!
//! The paper's zone-indexing scheme maps the celestial sphere into
//! declination stripes ("zones") of fixed height `h`:
//! `Zone = floor((dec + 90) / h)`. Neighborhood searches then loop over the
//! zones a search circle overlaps and cut on right ascension inside each
//! zone. Both the `stardb` zone index and the `maxbcg` pipeline use these
//! helpers so zone arithmetic lives in exactly one place.

use crate::angle::ZONE_HEIGHT_DEG;
use crate::region::SkyRegion;
use serde::{Deserialize, Serialize};

/// Half-extent in RA degrees of a circle of radius `r_deg` centered at
/// `center_dec`, measured at declination `dec`: the spherical triangle
/// identity `cos Δα = (cos r − sin δc sin δ) / (cos δc cos δ)`. Saturates
/// to 360 when the declination ring lies wholly inside the circle (polar
/// caps) and to 0 when the circle has no points at that declination.
fn ra_extent_deg(center_dec: f64, r_deg: f64, dec: f64) -> f64 {
    let (rr, dc, d) = (r_deg.to_radians(), center_dec.to_radians(), dec.to_radians());
    let num = rr.cos() - dc.sin() * d.sin();
    let denom = dc.cos() * d.cos();
    if denom <= f64::EPSILON {
        // At (or numerically at) a pole: the ring degenerates to a point,
        // inside the circle iff the numerator is non-positive.
        return if num <= 0.0 { 360.0 } else { 0.0 };
    }
    let f = num / denom;
    if f <= -1.0 {
        360.0
    } else if f >= 1.0 {
        0.0
    } else {
        f.acos().to_degrees()
    }
}

/// Zone numbering scheme with height `h` degrees (default: 30 arcsec).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneScheme {
    /// Zone height in degrees.
    pub height_deg: f64,
}

impl Default for ZoneScheme {
    fn default() -> Self {
        ZoneScheme { height_deg: ZONE_HEIGHT_DEG }
    }
}

impl ZoneScheme {
    /// Create a scheme with a custom height (tests use coarse zones).
    pub fn with_height(height_deg: f64) -> Self {
        assert!(height_deg > 0.0, "zone height must be positive");
        ZoneScheme { height_deg }
    }

    /// `Zone = floor((dec + 90) / h)` — the paper's formula.
    #[inline]
    pub fn zone_of(&self, dec_deg: f64) -> i32 {
        ((dec_deg + 90.0) / self.height_deg).floor() as i32
    }

    /// Declination of the *bottom* edge of a zone.
    #[inline]
    pub fn zone_bottom_dec(&self, zone: i32) -> f64 {
        f64::from(zone) * self.height_deg - 90.0
    }

    /// Zone range `[min, max]` overlapped by a circle of radius `r_deg`
    /// centered at declination `dec_deg` (the loop bounds of
    /// `fGetNearbyObjEqZd`).
    pub fn zone_range(&self, dec_deg: f64, r_deg: f64) -> (i32, i32) {
        (self.zone_of(dec_deg - r_deg), self.zone_of(dec_deg + r_deg))
    }

    /// The per-zone right-ascension half-window `@x` of `fGetNearbyObjEqZd`:
    /// in zones away from the circle's central zone, the circle is narrower
    /// in RA; the window is the chord half-width at the zone edge nearest
    /// the center, corrected for `cos(dec)`.
    ///
    /// Returns the half-width in RA degrees. For the central zone this is
    /// the full `cos(dec)`-adjusted radius.
    pub fn ra_half_window(&self, center_dec: f64, r_deg: f64, zone: i32) -> f64 {
        // The slice of this zone the circle's declination band can touch,
        // clamped to the physical sphere: a band reaching past a pole holds
        // no declinations beyond ±90, and cos(dec) past the pole would go
        // negative and poison the window.
        let zone_lo = self.zone_bottom_dec(zone);
        let zone_hi = zone_lo + self.height_deg;
        let lo = (center_dec - r_deg).max(zone_lo).max(-90.0);
        let hi = (center_dec + r_deg).min(zone_hi).min(90.0);
        if lo > hi {
            // The zone lies wholly outside the band: nothing can qualify.
            return 0.0;
        }
        // Exact spherical half-window, maximized over the slice. ΔRA(δ) on
        // the circle boundary is unimodal in δ with its interior peak at
        // sin δ* = sin δc / cos r, so the slice maximum is attained at an
        // endpoint or at δ* when the slice contains it. The planar
        // chord/cos(dec) shortcut of the plain SQL undersizes the window
        // near the poles (a circle over the pole reaches RA ≈ center+180°);
        // the window may only ever be generous — the dec-window and chord
        // cuts are exact.
        let mut w = ra_extent_deg(center_dec, r_deg, lo).max(ra_extent_deg(center_dec, r_deg, hi));
        let ratio = center_dec.to_radians().sin() / r_deg.to_radians().cos();
        if ratio.abs() <= 1.0 {
            let peak = ratio.asin().to_degrees();
            if peak > lo && peak < hi {
                w = w.max(ra_extent_deg(center_dec, r_deg, peak));
            }
        }
        if w >= 360.0 {
            360.0
        } else {
            // A hair of slack against acos/cos rounding: widening is always
            // safe, shrinking could drop a rim-adjacent object.
            w + 1e-9
        }
    }
}

/// The RA window `[ra - x, ra + x]` mapped onto the wrapped `[0, 360)`
/// circle as up to two *ascending* intervals (count in `.1`). Every scan
/// path iterates the same intervals in the same order, so a circle
/// straddling RA 0/360 surfaces its far-side neighbors — and surfaces them
/// in identical order on any path. A half-window of 180° or more covers
/// the whole circle (pole-adjacent zones): one `[0, 360]` interval, scan
/// it all and let the exact cuts filter.
pub fn ra_intervals(ra: f64, x: f64) -> ([(f64, f64); 2], usize) {
    if x >= 180.0 {
        // Window wider than the circle (pole-adjacent zones): scan it all.
        return ([(0.0, 360.0), (0.0, 0.0)], 1);
    }
    let (lo, hi) = (ra - x, ra + x);
    if lo < 0.0 {
        ([(0.0, hi), (lo + 360.0, 360.0)], 2)
    } else if hi > 360.0 {
        ([(0.0, hi - 360.0), (lo, 360.0)], 2)
    } else {
        ([(lo, hi), (0.0, 0.0)], 1)
    }
}

/// A deterministic partition of a contiguous zone range into `n` shards.
///
/// This is the single bucketing function shared by the in-process partition
/// runner (`maxbcg::partition`) and the distributed query fabric: shard `k`
/// owns the half-open zone range `[bounds[k], bounds[k+1])`, the ranges are
/// contiguous and exhaustive over the covered span, and the split depends
/// only on `(scheme, zone span, n)` — never on data order or thread timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardMap {
    scheme: ZoneScheme,
    /// `n + 1` ascending zone boundaries; shard `k` owns `[bounds[k], bounds[k+1])`.
    bounds: Vec<i32>,
}

impl ShardMap {
    /// Build a map covering the zones overlapped by `[dec_min, dec_max]`,
    /// split into `shards` contiguous ranges of near-equal zone count.
    pub fn build(scheme: ZoneScheme, dec_min: f64, dec_max: f64, shards: usize) -> ShardMap {
        assert!(dec_max >= dec_min, "declination range must be non-empty");
        let zone_lo = scheme.zone_of(dec_min);
        // The top zone is inclusive: the zone containing dec_max belongs to
        // the last shard even when dec_max sits on a zone bottom.
        let zone_hi = scheme.zone_of(dec_max);
        ShardMap::from_zone_span(scheme, zone_lo, zone_hi, shards)
    }

    /// Build a map over the inclusive zone span `[zone_lo, zone_hi]`.
    pub fn from_zone_span(scheme: ZoneScheme, zone_lo: i32, zone_hi: i32, shards: usize) -> ShardMap {
        assert!(shards > 0, "shard count must be positive");
        assert!(zone_hi >= zone_lo, "zone span must be non-empty");
        let span = i64::from(zone_hi) - i64::from(zone_lo) + 1;
        let n = shards as i64;
        // Integer split: bounds[k] = zone_lo + span*k/n. Contiguous and
        // exhaustive by construction; when n exceeds the zone count some
        // trailing shards own empty ranges, which is fine — they simply hold
        // no data and are always pruned.
        let bounds: Vec<i32> = (0..=n)
            .map(|k| (i64::from(zone_lo) + span * k / n) as i32)
            .collect();
        ShardMap { scheme, bounds }
    }

    /// The zone scheme the map was built against.
    pub fn scheme(&self) -> ZoneScheme {
        self.scheme
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Inclusive zone span `[lo, hi]` covered by the whole map.
    pub fn zone_span(&self) -> (i32, i32) {
        (self.bounds[0], self.bounds[self.bounds.len() - 1] - 1)
    }

    /// Half-open zone range `[lo, hi)` owned by shard `k`. Empty ranges
    /// (`lo == hi`) occur only when there are more shards than zones.
    pub fn shard_zones(&self, k: usize) -> (i32, i32) {
        (self.bounds[k], self.bounds[k + 1])
    }

    /// The unique shard owning `zone`. Zones outside the covered span clamp
    /// to the nearest end shard, so edge effects (a dec exactly on the top
    /// boundary) still route somewhere deterministic.
    pub fn shard_of_zone(&self, zone: i32) -> usize {
        let n = self.shard_count();
        // First k with bounds[k+1] > zone — skips empty ranges, so each zone
        // maps to exactly one shard.
        let k = self.bounds[1..=n].partition_point(|&hi| hi <= zone);
        k.min(n - 1)
    }

    /// The shard owning the zone containing `dec`.
    pub fn shard_of_dec(&self, dec: f64) -> usize {
        self.shard_of_zone(self.scheme.zone_of(dec))
    }

    /// Declination interval `[lo, hi)` covered by shard `k`'s zones.
    pub fn shard_dec_range(&self, k: usize) -> (f64, f64) {
        let (zlo, zhi) = self.shard_zones(k);
        (self.scheme.zone_bottom_dec(zlo), self.scheme.zone_bottom_dec(zhi))
    }

    /// Inclusive shard-index range overlapping the declination interval
    /// `[dec_lo, dec_hi]` — the zone-pruning rule: a query whose sargable
    /// dec bounds touch 3 zones contacts only the shards holding them.
    pub fn shards_for_dec_range(&self, dec_lo: f64, dec_hi: f64) -> (usize, usize) {
        (self.shard_of_dec(dec_lo), self.shard_of_dec(dec_hi.max(dec_lo)))
    }

    /// Zone-aligned `(native, buffered)` stripes of `window`, the shard-map
    /// analogue of `SkyRegion::partition_with_buffers`: interior stripe
    /// boundaries sit on zone bottoms (so each shard's stripe holds exactly
    /// its zones), the outer edges coincide with the window, and `margin`
    /// degrees of overlap are added on interior edges only. Buffered
    /// stripes are clamped to the window — no shard imports sky the
    /// sequential run would not.
    pub fn stripes_with_buffers(&self, window: &SkyRegion, margin: f64) -> Vec<(SkyRegion, SkyRegion)> {
        let n = self.shard_count();
        let edge = |k: usize| -> f64 {
            if k == 0 {
                window.dec_min
            } else if k == n {
                window.dec_max
            } else {
                self.scheme
                    .zone_bottom_dec(self.bounds[k])
                    .clamp(window.dec_min, window.dec_max)
            }
        };
        (0..n)
            .map(|k| {
                let (lo, hi) = (edge(k), edge(k + 1));
                let native = SkyRegion::new(window.ra_min, window.ra_max, lo, hi);
                let blo = if k == 0 { lo } else { (lo - margin).max(window.dec_min) };
                let bhi = if k == n - 1 { hi } else { (hi + margin).min(window.dec_max) };
                let buffered = SkyRegion::new(window.ra_min, window.ra_max, blo, bhi);
                (native, buffered)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_height_is_30_arcsec() {
        let s = ZoneScheme::default();
        assert!((s.height_deg - 30.0 / 3600.0).abs() < 1e-15);
    }

    #[test]
    fn zone_formula_matches_paper() {
        let s = ZoneScheme::default();
        // floor((dec + 90)/h): dec = -90 is zone 0.
        assert_eq!(s.zone_of(-90.0), 0);
        // dec = 0 is zone 90/h = 10800.
        assert_eq!(s.zone_of(0.0), 10800);
        // One zone above after 30 arcsec.
        assert_eq!(s.zone_of(30.0 / 3600.0), 10801);
    }

    #[test]
    fn zone_bottom_inverts_zone_of() {
        let s = ZoneScheme::default();
        for &dec in &[-89.9, -5.0, 0.0, 2.5, 45.1] {
            let z = s.zone_of(dec);
            let bottom = s.zone_bottom_dec(z);
            assert!(bottom <= dec && dec < bottom + s.height_deg, "dec={dec}");
        }
    }

    #[test]
    fn zone_range_covers_circle() {
        let s = ZoneScheme::default();
        let (lo, hi) = s.zone_range(2.5, 0.5);
        assert!(s.zone_bottom_dec(lo) <= 2.0);
        assert!(s.zone_bottom_dec(hi) + s.height_deg >= 3.0);
        // 1 degree of circle diameter spans ~120 thirty-arcsec zones.
        assert!((hi - lo) >= 119 && (hi - lo) <= 121, "span {}", hi - lo);
    }

    #[test]
    fn central_zone_window_is_adjusted_radius() {
        let s = ZoneScheme::default();
        let w = s.ra_half_window(0.0, 0.5, s.zone_of(0.0));
        assert!((w - 0.5).abs() < 1e-6);
    }

    #[test]
    fn window_narrows_away_from_center() {
        let s = ZoneScheme::default();
        let center = 2.5;
        let r = 0.5;
        let cen_zone = s.zone_of(center);
        let near = s.ra_half_window(center, r, cen_zone + 1);
        let far = s.ra_half_window(center, r, s.zone_of(center + r));
        assert!(near <= s.ra_half_window(center, r, cen_zone) + 1e-9);
        assert!(far < near, "far={far} near={near}");
    }

    #[test]
    fn coarse_zones_for_tests() {
        let s = ZoneScheme::with_height(1.0);
        assert_eq!(s.zone_of(0.5), 90);
        assert_eq!(s.zone_of(-0.5), 89);
    }

    #[test]
    #[should_panic(expected = "zone height must be positive")]
    fn zero_height_panics() {
        ZoneScheme::with_height(0.0);
    }

    /// The window must cover every point of the circle that falls inside the
    /// zone: for sampled declinations in the zone∩band slice, the circle's
    /// exact RA half-extent `ra_adjusted_radius(sqrt(r²−δ²), dec)` may never
    /// exceed the reported window.
    fn assert_window_covers_circle(s: &ZoneScheme, center_dec: f64, r: f64) {
        let (z_lo, z_hi) = s.zone_range(center_dec, r);
        for zone in z_lo..=z_hi {
            let w = s.ra_half_window(center_dec, r, zone);
            let zone_lo = s.zone_bottom_dec(zone);
            let zone_hi = zone_lo + s.height_deg;
            let lo = (center_dec - r).max(zone_lo).max(-90.0);
            let hi = (center_dec + r).min(zone_hi).min(90.0);
            if lo > hi {
                assert_eq!(w, 0.0, "zone {zone} outside the band must get a zero window");
                continue;
            }
            for i in 0..=32 {
                let dec = lo + (hi - lo) * f64::from(i) / 32.0;
                let extent = ra_extent_deg(center_dec, r, dec);
                assert!(
                    extent <= w + 1e-9,
                    "zone {zone} dec {dec}: circle extent {extent} exceeds window {w} \
                     (center_dec={center_dec}, r={r})"
                );
            }
        }
    }

    #[test]
    fn window_covers_circle_near_poles() {
        let s = ZoneScheme::default();
        // Centers within r of each pole: cos(dec) changes measurably across
        // a single 30-arcsec zone here, so an edge-nearest-center correction
        // would undersize the window.
        for &(dec, r) in &[(89.99, 0.05), (-89.99, 0.05), (89.999, 0.01), (-89.95, 0.2)] {
            assert_window_covers_circle(&s, dec, r);
        }
    }

    #[test]
    fn window_covers_circle_when_radius_exceeds_zone_height() {
        // Coarse 1-degree zones and a 2.5-degree circle: every zone's slice
        // spans the full zone height, and the central zone's widest point is
        // not at its edges.
        let s = ZoneScheme::with_height(1.0);
        for &(dec, r) in &[(0.3, 2.5), (45.7, 2.5), (-60.2, 1.7)] {
            assert_window_covers_circle(&s, dec, r);
        }
        // Default 30-arcsec zones with the Table 1 search radius (already
        // many zone heights): same invariant.
        assert_window_covers_circle(&ZoneScheme::default(), 2.5, 0.5);
    }

    #[test]
    fn zone_wholly_outside_band_gets_zero_window() {
        let s = ZoneScheme::with_height(1.0);
        let (z_lo, z_hi) = s.zone_range(10.5, 0.4);
        assert_eq!(s.ra_half_window(10.5, 0.4, z_lo - 1), 0.0);
        assert_eq!(s.ra_half_window(10.5, 0.4, z_hi + 1), 0.0);
        // Zones inside the range still get positive windows.
        assert!(s.ra_half_window(10.5, 0.4, s.zone_of(10.5)) > 0.0);
    }

    #[test]
    fn pole_zone_window_saturates_to_full_ra() {
        // A circle over the pole: every meridian crosses it, so the most
        // polar zone's window saturates to the full RA circle and the scan
        // degenerates to the whole zone — the exact cuts do the filtering,
        // exactly like the SQL original.
        let s = ZoneScheme::default();
        let dec: f64 = 90.0 - 0.001;
        let top_zone = s.zone_of((dec + 0.01).min(90.0 - 1e-12));
        assert_eq!(s.ra_half_window(dec, 0.01, top_zone), 360.0);
    }

    #[test]
    fn ra_intervals_interior_window_is_one_interval() {
        let ([a, _], n) = ra_intervals(180.0, 0.5);
        assert_eq!(n, 1);
        assert_eq!(a, (179.5, 180.5));
    }

    #[test]
    fn ra_intervals_wrap_below_zero_splits_ascending() {
        let ([a, b], n) = ra_intervals(0.2, 0.5);
        assert_eq!(n, 2);
        // Both intervals ascend and are listed low-first.
        assert_eq!(a, (0.0, 0.7));
        assert!((b.0 - 359.7).abs() < 1e-12 && b.1 == 360.0);
    }

    #[test]
    fn ra_intervals_wrap_above_360_splits_ascending() {
        let ([a, b], n) = ra_intervals(359.8, 0.5);
        assert_eq!(n, 2);
        assert!((a.1 - 0.3).abs() < 1e-12 && a.0 == 0.0);
        assert_eq!(b, (359.3, 360.0));
    }

    #[test]
    fn ra_intervals_saturated_window_scans_whole_circle() {
        for &x in &[180.0, 200.0, 360.0] {
            let ([a, _], n) = ra_intervals(10.0, x);
            assert_eq!(n, 1);
            assert_eq!(a, (0.0, 360.0));
        }
    }

    #[test]
    fn shard_ranges_contiguous_exhaustive_and_exclusive() {
        // Every zone in the span maps to exactly one shard, ranges are
        // contiguous, and their union is exactly the span — across shard
        // counts that divide the span evenly, unevenly, and exceed it.
        let s = ZoneScheme::with_height(1.0);
        for &n in &[1usize, 2, 3, 4, 7, 8, 16, 40] {
            let map = ShardMap::build(s, -5.0, 5.0, n);
            assert_eq!(map.shard_count(), n);
            let (span_lo, span_hi) = map.zone_span();
            assert_eq!((span_lo, span_hi), (s.zone_of(-5.0), s.zone_of(5.0)));
            // Contiguity: each shard starts where the previous one ended.
            for k in 1..n {
                assert_eq!(map.shard_zones(k).0, map.shard_zones(k - 1).1, "n={n} k={k}");
            }
            // Outer edges coincide with the span.
            assert_eq!(map.shard_zones(0).0, span_lo);
            assert_eq!(map.shard_zones(n - 1).1, span_hi + 1);
            // Exclusivity + exhaustiveness: zone z lies in shard_of_zone(z)'s
            // range and in no other shard's range.
            for z in span_lo..=span_hi {
                let owner = map.shard_of_zone(z);
                let owners = (0..n)
                    .filter(|&k| {
                        let (lo, hi) = map.shard_zones(k);
                        lo <= z && z < hi
                    })
                    .collect::<Vec<_>>();
                assert_eq!(owners, vec![owner], "n={n} zone={z}");
            }
        }
    }

    #[test]
    fn shard_of_dec_agrees_with_zone_ownership() {
        let s = ZoneScheme::with_height(1.0);
        let map = ShardMap::build(s, -5.0, 5.0, 4);
        let mut dec = -5.0;
        while dec < 5.0 {
            let k = map.shard_of_dec(dec);
            let (lo, hi) = map.shard_dec_range(k);
            assert!(lo <= dec && dec < hi, "dec={dec} shard={k} range=[{lo},{hi})");
            dec += 0.23;
        }
        // The top boundary clamps to the last shard instead of falling off.
        assert_eq!(map.shard_of_dec(5.0), 3);
        assert_eq!(map.shard_of_dec(90.0), 3);
        assert_eq!(map.shard_of_dec(-90.0), 0);
    }

    #[test]
    fn shard_pruning_contacts_only_overlapping_shards() {
        let s = ZoneScheme::with_height(1.0);
        let map = ShardMap::build(s, -5.0, 5.0, 4);
        // A 3-zone dec band inside one shard's range contacts 1 of 4 shards.
        let (lo, hi) = map.shards_for_dec_range(-4.8, -3.2);
        assert_eq!((lo, hi), (0, 0));
        // A band straddling a shard boundary contacts both sides.
        let (lo, hi) = map.shards_for_dec_range(-3.5, -2.0);
        assert_eq!((lo, hi), (0, 1));
        // The full window contacts everything.
        let (lo, hi) = map.shards_for_dec_range(-5.0, 5.0);
        assert_eq!((lo, hi), (0, 3));
    }

    #[test]
    fn more_shards_than_zones_leaves_trailing_shards_empty() {
        let s = ZoneScheme::with_height(1.0);
        // 3 zones split 5 ways: every zone still owned exactly once, the
        // shards with empty ranges own nothing.
        let map = ShardMap::from_zone_span(s, 10, 12, 5);
        let owned: Vec<usize> = (10..=12).map(|z| map.shard_of_zone(z)).collect();
        assert_eq!(owned.len(), 3);
        for k in 0..5 {
            let (lo, hi) = map.shard_zones(k);
            assert!(hi >= lo);
        }
        let total: i64 = (0..5)
            .map(|k| {
                let (lo, hi) = map.shard_zones(k);
                i64::from(hi) - i64::from(lo)
            })
            .sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn stripes_cover_window_and_align_to_zone_bottoms() {
        let s = ZoneScheme::with_height(1.0);
        let map = ShardMap::build(s, -4.5, 4.5, 3);
        let window = SkyRegion::new(10.0, 20.0, -4.5, 4.5);
        let stripes = map.stripes_with_buffers(&window, 0.25);
        assert_eq!(stripes.len(), 3);
        // Natives tile the window exactly.
        assert_eq!(stripes[0].0.dec_min, window.dec_min);
        assert_eq!(stripes[2].0.dec_max, window.dec_max);
        for w in stripes.windows(2) {
            assert_eq!(w[0].0.dec_max, w[1].0.dec_min);
        }
        // Interior edges sit on zone bottoms.
        for (native, _) in &stripes[1..] {
            let z = s.zone_of(native.dec_min);
            assert!((s.zone_bottom_dec(z) - native.dec_min).abs() < 1e-12);
        }
        // Buffers: margin on interior edges only, clamped to the window.
        for (i, (native, buffered)) in stripes.iter().enumerate() {
            assert!(buffered.dec_min <= native.dec_min && buffered.dec_max >= native.dec_max);
            assert!(buffered.dec_min >= window.dec_min - 1e-12);
            assert!(buffered.dec_max <= window.dec_max + 1e-12);
            if i > 0 {
                assert!((native.dec_min - buffered.dec_min - 0.25).abs() < 1e-12);
            }
            if i + 1 < stripes.len() {
                assert!((buffered.dec_max - native.dec_max - 0.25).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shard_map_is_deterministic() {
        let s = ZoneScheme::default();
        let a = ShardMap::build(s, -1.25, 1.25, 8);
        let b = ShardMap::build(s, -1.25, 1.25, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn zone_range_clamps_sanely_past_poles() {
        let s = ZoneScheme::default();
        // A band reaching past +90: the top zone index is simply the formula
        // applied to dec+r; callers iterate the range and find no rows in
        // zones beyond the data.
        let (lo, hi) = s.zone_range(89.999, 0.01);
        assert!(lo <= s.zone_of(89.999) && s.zone_of(89.999) <= hi);
        assert!(hi >= s.zone_of(90.0 - 1e-9));
    }
}
