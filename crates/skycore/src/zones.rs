//! The zone schema: mapping declinations to 30-arcsecond zones.
//!
//! The paper's zone-indexing scheme maps the celestial sphere into
//! declination stripes ("zones") of fixed height `h`:
//! `Zone = floor((dec + 90) / h)`. Neighborhood searches then loop over the
//! zones a search circle overlaps and cut on right ascension inside each
//! zone. Both the `stardb` zone index and the `maxbcg` pipeline use these
//! helpers so zone arithmetic lives in exactly one place.

use crate::angle::{ra_adjusted_radius, ZONE_HEIGHT_DEG};
use serde::{Deserialize, Serialize};

/// Zone numbering scheme with height `h` degrees (default: 30 arcsec).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZoneScheme {
    /// Zone height in degrees.
    pub height_deg: f64,
}

impl Default for ZoneScheme {
    fn default() -> Self {
        ZoneScheme { height_deg: ZONE_HEIGHT_DEG }
    }
}

impl ZoneScheme {
    /// Create a scheme with a custom height (tests use coarse zones).
    pub fn with_height(height_deg: f64) -> Self {
        assert!(height_deg > 0.0, "zone height must be positive");
        ZoneScheme { height_deg }
    }

    /// `Zone = floor((dec + 90) / h)` — the paper's formula.
    #[inline]
    pub fn zone_of(&self, dec_deg: f64) -> i32 {
        ((dec_deg + 90.0) / self.height_deg).floor() as i32
    }

    /// Declination of the *bottom* edge of a zone.
    #[inline]
    pub fn zone_bottom_dec(&self, zone: i32) -> f64 {
        f64::from(zone) * self.height_deg - 90.0
    }

    /// Zone range `[min, max]` overlapped by a circle of radius `r_deg`
    /// centered at declination `dec_deg` (the loop bounds of
    /// `fGetNearbyObjEqZd`).
    pub fn zone_range(&self, dec_deg: f64, r_deg: f64) -> (i32, i32) {
        (self.zone_of(dec_deg - r_deg), self.zone_of(dec_deg + r_deg))
    }

    /// The per-zone right-ascension half-window `@x` of `fGetNearbyObjEqZd`:
    /// in zones away from the circle's central zone, the circle is narrower
    /// in RA; the window is the chord half-width at the zone edge nearest
    /// the center, corrected for `cos(dec)`.
    ///
    /// Returns the half-width in RA degrees. For the central zone this is
    /// the full `cos(dec)`-adjusted radius.
    pub fn ra_half_window(&self, center_dec: f64, r_deg: f64, zone: i32) -> f64 {
        let cen_zone = self.zone_of(center_dec);
        if zone == cen_zone {
            return ra_adjusted_radius(r_deg, center_dec);
        }
        // Zones below the center use their top edge; zones above use their
        // bottom edge — the point of the zone closest to the circle center.
        let zone_x = if zone < cen_zone { zone + 1 } else { zone };
        let dec_at_zone = self.zone_bottom_dec(zone_x);
        let delta_dec = (center_dec - dec_at_zone).abs();
        // The paper computes sqrt(|r^2 - delta^2|): when the zone is wholly
        // outside the circle (possible at the extreme loop bounds) the
        // absolute value keeps the arithmetic finite and the distance test
        // still rejects everything.
        let chord = (r_deg * r_deg - delta_dec * delta_dec).abs().sqrt();
        ra_adjusted_radius(chord, dec_at_zone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_height_is_30_arcsec() {
        let s = ZoneScheme::default();
        assert!((s.height_deg - 30.0 / 3600.0).abs() < 1e-15);
    }

    #[test]
    fn zone_formula_matches_paper() {
        let s = ZoneScheme::default();
        // floor((dec + 90)/h): dec = -90 is zone 0.
        assert_eq!(s.zone_of(-90.0), 0);
        // dec = 0 is zone 90/h = 10800.
        assert_eq!(s.zone_of(0.0), 10800);
        // One zone above after 30 arcsec.
        assert_eq!(s.zone_of(30.0 / 3600.0), 10801);
    }

    #[test]
    fn zone_bottom_inverts_zone_of() {
        let s = ZoneScheme::default();
        for &dec in &[-89.9, -5.0, 0.0, 2.5, 45.1] {
            let z = s.zone_of(dec);
            let bottom = s.zone_bottom_dec(z);
            assert!(bottom <= dec && dec < bottom + s.height_deg, "dec={dec}");
        }
    }

    #[test]
    fn zone_range_covers_circle() {
        let s = ZoneScheme::default();
        let (lo, hi) = s.zone_range(2.5, 0.5);
        assert!(s.zone_bottom_dec(lo) <= 2.0);
        assert!(s.zone_bottom_dec(hi) + s.height_deg >= 3.0);
        // 1 degree of circle diameter spans ~120 thirty-arcsec zones.
        assert!((hi - lo) >= 119 && (hi - lo) <= 121, "span {}", hi - lo);
    }

    #[test]
    fn central_zone_window_is_adjusted_radius() {
        let s = ZoneScheme::default();
        let w = s.ra_half_window(0.0, 0.5, s.zone_of(0.0));
        assert!((w - 0.5).abs() < 1e-6);
    }

    #[test]
    fn window_narrows_away_from_center() {
        let s = ZoneScheme::default();
        let center = 2.5;
        let r = 0.5;
        let cen_zone = s.zone_of(center);
        let near = s.ra_half_window(center, r, cen_zone + 1);
        let far = s.ra_half_window(center, r, s.zone_of(center + r));
        assert!(near <= s.ra_half_window(center, r, cen_zone) + 1e-9);
        assert!(far < near, "far={far} near={near}");
    }

    #[test]
    fn coarse_zones_for_tests() {
        let s = ZoneScheme::with_height(1.0);
        assert_eq!(s.zone_of(0.5), 90);
        assert_eq!(s.zone_of(-0.5), 89);
    }

    #[test]
    #[should_panic(expected = "zone height must be positive")]
    fn zero_height_panics() {
        ZoneScheme::with_height(0.0);
    }
}
