//! Property tests on the astronomy substrate.

use proptest::prelude::*;
use skycore::angle::{chord2_of_deg, deg_of_chord, wrap_ra};
use skycore::bcg::{self, BcgParams};
use skycore::kcorr::{KcorrConfig, KcorrTable};
use skycore::{Galaxy, SkyRegion, UnitVec, ZoneScheme};

proptest! {
    #[test]
    fn unitvec_roundtrip(ra in 0.0f64..360.0, dec in -89.9f64..89.9) {
        let v = UnitVec::from_radec(ra, dec);
        prop_assert!((v.norm() - 1.0).abs() < 1e-12);
        let (ra2, dec2) = v.to_radec();
        prop_assert!((wrap_ra(ra) - ra2).abs() < 1e-8 || (wrap_ra(ra) - ra2).abs() > 359.9);
        prop_assert!((dec - dec2).abs() < 1e-8);
    }

    #[test]
    fn chord_angle_inverse(r in 0.0001f64..179.0) {
        let c2 = chord2_of_deg(r);
        prop_assert!((deg_of_chord(c2.sqrt()) - r).abs() < 1e-8);
    }

    #[test]
    fn separation_is_a_metric(
        a in (0.0f64..360.0, -89.0f64..89.0),
        b in (0.0f64..360.0, -89.0f64..89.0),
        c in (0.0f64..360.0, -89.0f64..89.0),
    ) {
        let va = UnitVec::from_radec(a.0, a.1);
        let vb = UnitVec::from_radec(b.0, b.1);
        let vc = UnitVec::from_radec(c.0, c.1);
        let ab = va.sep_deg(&vb);
        let ba = vb.sep_deg(&va);
        prop_assert!((ab - ba).abs() < 1e-9, "symmetry");
        prop_assert!(va.sep_deg(&va) < 1e-9, "identity");
        // Triangle inequality with float slack.
        prop_assert!(ab <= va.sep_deg(&vc) + vc.sep_deg(&vb) + 1e-9);
    }

    #[test]
    fn region_expand_shrink_and_containment(
        ra0 in 0.0f64..300.0,
        dec0 in -60.0f64..50.0,
        w in 0.2f64..20.0,
        h in 0.2f64..20.0,
        m in 0.0f64..0.09,
    ) {
        let r = SkyRegion::new(ra0, ra0 + w, dec0, dec0 + h);
        // Float add/sub round-trips only approximately.
        let rt = r.expanded(m).shrunk(m);
        prop_assert!((rt.ra_min - r.ra_min).abs() < 1e-9);
        prop_assert!((rt.ra_max - r.ra_max).abs() < 1e-9);
        prop_assert!((rt.dec_min - r.dec_min).abs() < 1e-9);
        prop_assert!((rt.dec_max - r.dec_max).abs() < 1e-9);
        // Everything in r is in the expansion; centers survive shrinking.
        let (cra, cdec) = r.center();
        prop_assert!(r.expanded(m).contains(cra, cdec));
        prop_assert!(r.shrunk(m).contains(cra, cdec));
        prop_assert!((r.area_deg2() - w * h).abs() < 1e-6);
    }

    #[test]
    fn stripes_partition_any_region(
        dec0 in -60.0f64..40.0,
        h in 1.0f64..30.0,
        n in 1usize..12,
    ) {
        let r = SkyRegion::new(100.0, 120.0, dec0, dec0 + h);
        let stripes = r.dec_stripes(n);
        prop_assert_eq!(stripes.len(), n);
        let total: f64 = stripes.iter().map(|s| s.area_deg2()).sum();
        prop_assert!((total - r.area_deg2()).abs() < 1e-6);
        for w in stripes.windows(2) {
            prop_assert_eq!(w[0].dec_max, w[1].dec_min);
        }
    }

    #[test]
    fn zone_of_matches_paper_formula(dec in -89.99f64..89.99, h in 0.001f64..5.0) {
        let s = ZoneScheme::with_height(h);
        prop_assert_eq!(s.zone_of(dec), ((dec + 90.0) / h).floor() as i32);
    }

    #[test]
    fn search_windows_bound_every_passing_redshift(
        z in 0.06f64..1.0,
        di in -0.8f64..0.8,
        dgr in -0.1f64..0.1,
        dri in -0.1f64..0.1,
    ) {
        // Sample near the ridge line so the chisq filter usually passes.
        let kcorr = KcorrTable::generate(KcorrConfig::tam());
        let p = BcgParams::default();
        let k0 = *kcorr.nearest(z);
        let g = Galaxy::with_derived_errors(1, 180.0, 0.0, k0.i + di, k0.gr + dgr, k0.ri + dri);
        let passing = bcg::passing_redshifts(&g, &kcorr, &p);
        prop_assume!(!passing.is_empty());
        let w = bcg::search_windows(g.i, &passing, &kcorr, &p);
        for pr in &passing {
            let k = kcorr.row(pr.zid).unwrap();
            prop_assert!(k.radius <= w.radius_deg + 1e-12);
            prop_assert!(k.ilim <= w.i_max + 1e-12);
            prop_assert!(w.gr_min <= k.gr - 2.0 * p.gr_pop_sigma + 1e-12);
            prop_assert!(w.ri_max >= k.ri + 2.0 * p.ri_pop_sigma - 1e-12);
        }
        // Counting windows are strictly inside the search windows, so any
        // friend counted at some redshift is admitted by the search bound.
        for pr in &passing {
            let k = kcorr.row(pr.zid).unwrap();
            let f = skycore::Friend {
                objid: 2,
                distance: k.radius * 0.99,
                i: g.i.max(k.ilim - 0.001),
                gr: k.gr,
                ri: k.ri,
            };
            if f.i >= g.i && f.i <= k.ilim {
                prop_assert!(w.admits(&f));
            }
        }
    }

    #[test]
    fn candidate_likelihood_monotone_in_neighbor_count(
        z in 0.06f64..0.9,
        extra in 1usize..20,
    ) {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let p = BcgParams::default();
        let k = kcorr.nearest(z);
        let g = Galaxy::with_derived_errors(1, 180.0, 0.0, k.i, k.gr, k.ri);
        let mk_friends = |n: usize| -> Vec<skycore::Friend> {
            (0..n)
                .map(|j| skycore::Friend {
                    objid: 10 + j as i64,
                    distance: k.radius * 0.5,
                    i: (k.i + 0.3).min(k.ilim),
                    gr: k.gr,
                    ri: k.ri,
                })
                .collect()
        };
        let a = bcg::evaluate_candidate(&g, &kcorr, &p, |_| mk_friends(1));
        let b = bcg::evaluate_candidate(&g, &kcorr, &p, |_| mk_friends(1 + extra));
        prop_assume!(a.is_some() && b.is_some());
        prop_assert!(b.unwrap().chi2 >= a.unwrap().chi2 - 1e-12);
    }

    #[test]
    fn r200_grows_sublinearly(n in 1.0f64..1000.0) {
        let r = bcg::r200_mpc(n);
        prop_assert!(r > 0.0);
        prop_assert!(bcg::r200_mpc(n * 2.0) < r * 2.0, "exponent < 1");
        prop_assert!(bcg::r200_mpc(n * 2.0) > r, "monotone");
    }
}
