//! Catalog generation: a Poisson field of galaxies plus injected clusters,
//! with a truth table recording what was injected (for completeness and
//! purity checks against what MaxBCG recovers).

use crate::config::SkyConfig;
use crate::rng::{normal, poisson, power_law, stream};
use rand::rngs::SmallRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use skycore::bcg::r200_mpc;
use skycore::kcorr::KcorrTable;
use skycore::region::SkyRegion;
use skycore::types::Galaxy;

/// One injected cluster, as ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrueCluster {
    /// objid of the injected BCG.
    pub bcg_objid: i64,
    /// Right ascension of the BCG, degrees.
    pub ra: f64,
    /// Declination of the BCG, degrees.
    pub dec: f64,
    /// True redshift.
    pub z: f64,
    /// Number of injected member galaxies (excluding the BCG).
    pub members: u32,
}

/// A generated sky: the galaxy catalog and the injection truth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sky {
    /// The region generated.
    pub region: SkyRegion,
    /// All galaxies (field + cluster members + BCGs), in objid order.
    pub galaxies: Vec<Galaxy>,
    /// Injected clusters.
    pub truth: Vec<TrueCluster>,
}

impl Sky {
    /// Generate a sky over `region`. Deterministic in
    /// `(region, config, kcorr, seed)`.
    ///
    /// The same `kcorr` table handed to MaxBCG must be used here: injected
    /// BCGs and members sit on that table's ridge line, which is what makes
    /// them findable.
    ///
    /// ```
    /// use skycore::kcorr::{KcorrConfig, KcorrTable};
    /// use skycore::SkyRegion;
    /// use skysim::{Sky, SkyConfig};
    ///
    /// let kcorr = KcorrTable::generate(KcorrConfig::sql());
    /// let region = SkyRegion::new(180.0, 181.0, 0.0, 1.0);
    /// let sky = Sky::generate(region, &SkyConfig::test(), &kcorr, 42);
    /// assert!(!sky.galaxies.is_empty());
    /// assert!(sky.galaxies.iter().all(|g| region.contains(g.ra, g.dec)));
    /// // Same seed, same sky.
    /// let again = Sky::generate(region, &SkyConfig::test(), &kcorr, 42);
    /// assert_eq!(sky.galaxies, again.galaxies);
    /// ```
    pub fn generate(region: SkyRegion, config: &SkyConfig, kcorr: &KcorrTable, seed: u64) -> Sky {
        let mut galaxies = Vec::new();
        let mut truth = Vec::new();
        let mut next_objid = 1i64;

        // --- field population ------------------------------------------
        let mut rng = stream(seed, "field");
        let n_field = poisson(&mut rng, config.field.density_per_deg2 * region.area_deg2());
        let f = &config.field;
        // Inverse-CDF sampling of N(<i) ~ 10^(slope i).
        let a_min = 10f64.powf(f.count_slope * f.i_min);
        let a_max = 10f64.powf(f.count_slope * f.i_max);
        for _ in 0..n_field {
            let u: f64 = rng.gen();
            let i = (a_min + u * (a_max - a_min)).log10() / f.count_slope;
            let gr = normal(&mut rng, f.gr_mean, f.gr_sigma);
            let ri = normal(&mut rng, f.ri_mean, f.ri_sigma);
            let (ra, dec) = uniform_position(&mut rng, &region);
            galaxies.push(Galaxy::with_derived_errors(next_objid, ra, dec, i, gr, ri));
            next_objid += 1;
        }

        // --- injected clusters ------------------------------------------
        let mut rng = stream(seed, "clusters");
        let c = &config.clusters;
        let n_clusters = poisson(&mut rng, c.density_per_deg2 * region.area_deg2());
        for _ in 0..n_clusters {
            let z = rng.gen_range(c.z_min..=c.z_max);
            let k = kcorr.nearest(z);
            let richness = power_law(&mut rng, c.richness_min, c.richness_max, c.richness_alpha);
            let n_members = richness.round() as u32;
            let (ra, dec) = uniform_position(&mut rng, &region);

            // The BCG: on the ridge, small scatter.
            let bcg_i = k.i + normal(&mut rng, 0.0, c.bcg_mag_sigma);
            let bcg = Galaxy::with_derived_errors(
                next_objid,
                ra,
                dec,
                bcg_i,
                k.gr + normal(&mut rng, 0.0, c.bcg_color_sigma),
                k.ri + normal(&mut rng, 0.0, c.bcg_color_sigma),
            );
            truth.push(TrueCluster { bcg_objid: bcg.objid, ra, dec, z, members: n_members });
            galaxies.push(bcg);
            next_objid += 1;

            // Members: inside the angular r200, fainter than the BCG, on
            // the ridge within the counting windows.
            let r_deg = k.radius * r200_mpc(f64::from(n_members) + 1.0);
            let cos_dec = (dec.to_radians()).cos().max(0.05);
            for _ in 0..n_members {
                // Uniform over the disk; clusters are centrally
                // concentrated in reality but the counting windows only
                // care about containment.
                let rr = r_deg * rng.gen::<f64>().sqrt();
                let th = rng.gen_range(0.0..std::f64::consts::TAU);
                let mra = ra + rr * th.cos() / cos_dec;
                let mdec = dec + rr * th.sin();
                if !region.contains(mra, mdec) {
                    continue; // clipped at the survey edge, like real data
                }
                let depth = (k.ilim - bcg_i - 0.1).max(0.2);
                let mi = bcg_i + 0.1 + rng.gen::<f64>() * depth;
                let m = Galaxy::with_derived_errors(
                    next_objid,
                    mra,
                    mdec,
                    mi,
                    k.gr + normal(&mut rng, 0.0, c.member_color_sigma),
                    k.ri + normal(&mut rng, 0.0, c.member_color_sigma),
                );
                galaxies.push(m);
                next_objid += 1;
            }
        }
        Sky { region, galaxies, truth }
    }

    /// Galaxies within a sub-window (the generator-side counterpart of
    /// `spImportGalaxy`'s WHERE clause).
    pub fn galaxies_in<'a>(&'a self, window: &'a SkyRegion) -> impl Iterator<Item = &'a Galaxy> + 'a {
        self.galaxies.iter().filter(move |g| window.contains(g.ra, g.dec))
    }

    /// Injected clusters whose BCG lies inside a window.
    pub fn truth_in<'a>(
        &'a self,
        window: &'a SkyRegion,
    ) -> impl Iterator<Item = &'a TrueCluster> + 'a {
        self.truth.iter().filter(move |c| window.contains(c.ra, c.dec))
    }
}

fn uniform_position(rng: &mut SmallRng, region: &SkyRegion) -> (f64, f64) {
    // Uniform in the coordinate box — adequate for the near-equator stripes
    // the paper works in (|dec| <= 5 deg, cos(dec) >= 0.996).
    (
        rng.gen_range(region.ra_min..=region.ra_max),
        rng.gen_range(region.dec_min..=region.dec_max),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use skycore::bcg::{evaluate_candidate, BcgParams};
    use skycore::coords::UnitVec;
    use skycore::kcorr::KcorrConfig;
    use skycore::types::Friend;

    fn small_sky() -> (Sky, KcorrTable) {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let region = SkyRegion::new(180.0, 182.0, -1.0, 1.0);
        let sky = Sky::generate(region, &SkyConfig::test(), &kcorr, 12345);
        (sky, kcorr)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let region = SkyRegion::new(180.0, 181.0, 0.0, 1.0);
        let a = Sky::generate(region, &SkyConfig::test(), &kcorr, 7);
        let b = Sky::generate(region, &SkyConfig::test(), &kcorr, 7);
        assert_eq!(a.galaxies, b.galaxies);
        assert_eq!(a.truth, b.truth);
        let c = Sky::generate(region, &SkyConfig::test(), &kcorr, 8);
        assert_ne!(a.galaxies.len(), 0);
        assert!(a.galaxies != c.galaxies, "different seeds differ");
    }

    #[test]
    fn density_matches_config() {
        let (sky, _) = small_sky();
        let cfg = SkyConfig::test();
        let area = sky.region.area_deg2();
        let expected = cfg.field.density_per_deg2 * area;
        let n = sky.galaxies.len() as f64;
        // Field plus cluster members: between 1x and 1.6x the field count.
        assert!(n > expected * 0.8 && n < expected * 1.8, "n={n} expected~{expected}");
    }

    #[test]
    fn objids_unique_and_ordered() {
        let (sky, _) = small_sky();
        for w in sky.galaxies.windows(2) {
            assert!(w[0].objid < w[1].objid);
        }
    }

    #[test]
    fn galaxies_inside_region() {
        let (sky, _) = small_sky();
        for g in &sky.galaxies {
            assert!(sky.region.contains(g.ra, g.dec), "{g:?}");
        }
    }

    #[test]
    fn magnitudes_within_survey_limits() {
        let (sky, _) = small_sky();
        let cfg = SkyConfig::test();
        for g in &sky.galaxies {
            assert!(g.i >= cfg.field.i_min - 1.5, "too bright: {}", g.i);
            assert!(g.i <= cfg.field.i_max + 0.01, "too faint: {}", g.i);
        }
    }

    #[test]
    fn magnitude_counts_follow_the_configured_slope() {
        // N(<i) ~ 10^(0.3 i): each magnitude-deeper bin holds ~2x the
        // galaxies (10^0.3 ~ 2). Check the ratio over a 3-mag baseline.
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let region = SkyRegion::new(180.0, 184.0, -2.0, 2.0);
        let sky = Sky::generate(region, &SkyConfig::scaled(0.3), &kcorr, 314);
        let count_below = |lim: f64| sky.galaxies.iter().filter(|g| g.i < lim).count() as f64;
        let ratio = count_below(20.0) / count_below(17.0).max(1.0);
        let expected = 10f64.powf(0.3 * 3.0); // ~8
        assert!(
            (ratio / expected - 1.0).abs() < 0.35,
            "count ratio {ratio:.1} vs expected {expected:.1}"
        );
    }

    #[test]
    fn richness_distribution_is_bottom_heavy() {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let region = SkyRegion::new(180.0, 184.0, -2.0, 2.0);
        let mut cfg = SkyConfig::test();
        cfg.clusters.density_per_deg2 = 20.0;
        let sky = Sky::generate(region, &cfg, &kcorr, 272);
        assert!(sky.truth.len() > 100, "need a cluster sample");
        let poor = sky.truth.iter().filter(|t| t.members < 15).count();
        let rich = sky.truth.iter().filter(|t| t.members >= 30).count();
        assert!(poor > rich * 3, "power law must favor poor clusters: {poor} vs {rich}");
        // All richness values inside the configured bounds.
        assert!(sky
            .truth
            .iter()
            .all(|t| f64::from(t.members) >= cfg.clusters.richness_min - 1.0
                && f64::from(t.members) <= cfg.clusters.richness_max + 1.0));
    }

    #[test]
    fn cluster_members_lie_within_their_r200() {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let region = SkyRegion::new(180.0, 182.0, -1.0, 1.0);
        let mut cfg = SkyConfig::test();
        cfg.clusters.density_per_deg2 = 15.0;
        let sky = Sky::generate(region, &cfg, &kcorr, 4242);
        // Members are generated consecutively after their BCG; verify by
        // proximity instead: every truth cluster has >= 1 galaxy (its BCG)
        // and its neighborhood density within r200 exceeds the field mean.
        for t in sky.truth.iter().take(20) {
            let k = kcorr.nearest(t.z);
            let r = k.radius * skycore::bcg::r200_mpc(f64::from(t.members) + 1.0);
            let center = skycore::UnitVec::from_radec(t.ra, t.dec);
            let nearby = sky
                .galaxies
                .iter()
                .filter(|g| skycore::coords::within_deg(&center, &g.unit_vec(), r))
                .count() as f64;
            let area = std::f64::consts::PI * r * r;
            let field_expect = cfg.field.density_per_deg2 * area;
            assert!(
                nearby > field_expect,
                "cluster at ({}, {}) shows no overdensity: {nearby} vs field {field_expect:.1}",
                t.ra,
                t.dec
            );
        }
    }

    #[test]
    fn injected_bcgs_pass_the_chisq_filter() {
        let (sky, kcorr) = small_sky();
        let p = BcgParams::default();
        assert!(!sky.truth.is_empty(), "test sky must have clusters");
        let by_id: std::collections::HashMap<i64, &Galaxy> =
            sky.galaxies.iter().map(|g| (g.objid, g)).collect();
        let mut passed = 0;
        for t in &sky.truth {
            let bcg = by_id[&t.bcg_objid];
            if !skycore::bcg::passing_redshifts(bcg, &kcorr, &p).is_empty() {
                passed += 1;
            }
        }
        // The BCG scatter (0.2 mag) against a 0.57 dispersion: essentially
        // all injected BCGs must pass at some redshift.
        assert!(
            passed * 10 >= sky.truth.len() * 9,
            "only {passed}/{} BCGs pass the filter",
            sky.truth.len()
        );
    }

    #[test]
    fn injected_clusters_are_recoverable_end_to_end() {
        // Full-physics check on one cluster: evaluate the BCG with a
        // brute-force neighbor provider; it must come out a candidate at
        // roughly the injected redshift.
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let region = SkyRegion::new(180.0, 181.5, -0.7, 0.7);
        // Dense-ish sky so clusters have their members.
        let sky = Sky::generate(region, &SkyConfig::scaled(0.3), &kcorr, 99);
        let p = BcgParams::default();
        let rich: Vec<&TrueCluster> = sky
            .truth
            .iter()
            .filter(|t| t.members >= 8 && sky.region.shrunk(0.35).contains(t.ra, t.dec))
            .collect();
        assert!(!rich.is_empty(), "need a rich, interior cluster to test");
        let by_id: std::collections::HashMap<i64, &Galaxy> =
            sky.galaxies.iter().map(|g| (g.objid, g)).collect();
        let mut found = 0;
        for t in &rich {
            let bcg = by_id[&t.bcg_objid];
            let center = bcg.unit_vec();
            let cand = evaluate_candidate(bcg, &kcorr, &p, |w| {
                sky.galaxies
                    .iter()
                    .filter(|g| g.objid != bcg.objid)
                    .filter_map(|g| {
                        let d = center.sep_deg_approx(&g.unit_vec());
                        (d < w.radius_deg).then_some(Friend {
                            objid: g.objid,
                            distance: d,
                            i: g.i,
                            gr: g.gr,
                            ri: g.ri,
                        })
                    })
                    .collect()
            });
            if let Some(cand) = cand {
                assert!(
                    (cand.z - t.z).abs() < 0.08,
                    "recovered z {} vs injected {}",
                    cand.z,
                    t.z
                );
                found += 1;
            }
        }
        assert!(
            found * 10 >= rich.len() * 7,
            "only {found}/{} rich clusters recovered as candidates",
            rich.len()
        );
        let _ = UnitVec::from_radec(0.0, 0.0); // silence unused import on some cfgs
    }
}
