//! Generation parameters, calibrated to the surface densities the paper
//! reports: ~14,000 galaxies per deg² (a 0.25 deg² Target field holds
//! ~3,500 galaxies; the 104 deg² import region holds ~1.5 million), a BCG
//! candidate rate of a few percent, and ~18 clusters per deg²
//! ("approximately 4.5 clusters per [0.25 deg²] target area").

use serde::{Deserialize, Serialize};
use skycore::cosmology::Cosmology;

/// Field (non-cluster) galaxy population parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldConfig {
    /// Mean surface density, galaxies per deg².
    pub density_per_deg2: f64,
    /// Brightest field magnitude generated.
    pub i_min: f64,
    /// Survey limiting magnitude.
    pub i_max: f64,
    /// Number-count slope: `N(<i) ~ 10^(slope * i)`.
    pub count_slope: f64,
    /// Mean g-r color of the field.
    pub gr_mean: f64,
    /// g-r scatter.
    pub gr_sigma: f64,
    /// Mean r-i color.
    pub ri_mean: f64,
    /// r-i scatter.
    pub ri_sigma: f64,
}

impl Default for FieldConfig {
    fn default() -> Self {
        FieldConfig {
            density_per_deg2: 14_000.0,
            i_min: 14.0,
            i_max: 21.5,
            count_slope: 0.3,
            gr_mean: 0.9,
            gr_sigma: 0.45,
            ri_mean: 0.45,
            ri_sigma: 0.30,
        }
    }
}

/// Injected galaxy-cluster population parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Clusters per deg² (the paper finds ~18).
    pub density_per_deg2: f64,
    /// Lowest cluster redshift.
    pub z_min: f64,
    /// Highest cluster redshift.
    pub z_max: f64,
    /// Minimum richness (member count).
    pub richness_min: f64,
    /// Maximum richness.
    pub richness_max: f64,
    /// Richness power-law slope.
    pub richness_alpha: f64,
    /// BCG magnitude scatter around the k-correction ridge (the paper's χ²
    /// uses a population dispersion of 0.57; injected BCGs sit tighter so
    /// they reliably pass).
    pub bcg_mag_sigma: f64,
    /// BCG color scatter around the ridge.
    pub bcg_color_sigma: f64,
    /// Member color scatter around the ridge (must sit within the ±0.05 /
    /// ±0.06 counting windows most of the time).
    pub member_color_sigma: f64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            density_per_deg2: 18.0,
            z_min: 0.05,
            z_max: 0.35,
            richness_min: 6.0,
            richness_max: 60.0,
            richness_alpha: 2.2,
            bcg_mag_sigma: 0.20,
            bcg_color_sigma: 0.02,
            member_color_sigma: 0.03,
        }
    }
}

/// Full synthetic-sky configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkyConfig {
    /// Field population.
    pub field: FieldConfig,
    /// Cluster population.
    pub clusters: ClusterConfig,
    /// Cosmology for placing clusters (must match the k-correction table's).
    pub cosmology: Cosmology,
}

impl SkyConfig {
    /// Paper-calibrated densities (heavy: ~14,000 galaxies/deg²).
    pub fn paper() -> Self {
        SkyConfig {
            field: FieldConfig::default(),
            clusters: ClusterConfig::default(),
            cosmology: Cosmology::default(),
        }
    }

    /// Same population *shape* at `scale` times the density — benches use
    /// this to keep wall times sane while preserving per-galaxy costs and
    /// relative rates. Cluster density scales identically so the
    /// clusters-per-galaxy ratio is unchanged.
    pub fn scaled(scale: f64) -> Self {
        assert!(scale > 0.0);
        let mut cfg = Self::paper();
        cfg.field.density_per_deg2 *= scale;
        cfg.clusters.density_per_deg2 *= scale;
        cfg
    }

    /// A light configuration for unit tests (~700 galaxies/deg²).
    pub fn test() -> Self {
        Self::scaled(0.05)
    }
}

impl Default for SkyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_densities_match_reported_numbers() {
        let cfg = SkyConfig::paper();
        // ~3,500 galaxies per 0.25 deg² target field.
        assert!((cfg.field.density_per_deg2 * 0.25 - 3_500.0).abs() < 100.0);
        // ~4.5 clusters per 0.25 deg² target field.
        assert!((cfg.clusters.density_per_deg2 * 0.25 - 4.5).abs() < 0.1);
    }

    #[test]
    fn scaling_preserves_cluster_fraction() {
        let a = SkyConfig::paper();
        let b = SkyConfig::scaled(0.1);
        let ratio_a = a.clusters.density_per_deg2 / a.field.density_per_deg2;
        let ratio_b = b.clusters.density_per_deg2 / b.field.density_per_deg2;
        assert!((ratio_a - ratio_b).abs() < 1e-12);
    }
}
