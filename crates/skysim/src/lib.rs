//! # skysim — synthetic SDSS-like skies
//!
//! The data substitute for the SDSS DR1 catalog the paper runs on (see
//! DESIGN.md §2): a Poisson field of galaxies with a realistic magnitude
//! distribution, plus injected galaxy clusters whose brightest members sit
//! on the k-correction ridge line, calibrated to the paper's surface
//! densities (~14,000 galaxies/deg², ~18 clusters/deg²). Generation is
//! deterministic per seed, and a truth table records every injection so
//! recovery can be scored.

#![warn(missing_docs)]

pub mod catalog;
pub mod config;
pub mod rng;
pub mod survey;

pub use catalog::{Sky, TrueCluster};
pub use config::{ClusterConfig, FieldConfig, SkyConfig};
pub use survey::{SurveyConfig, SurveyObject};
