//! Deterministic random sampling helpers.
//!
//! Everything in `skysim` is reproducible from a single `u64` seed: the
//! same seed and region always generate the same sky, so the TAM baseline,
//! the database pipeline, and every bench see identical data — the
//! apples-to-apples requirement of the comparison.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Create a generator from a root seed and a purpose label, so different
/// generation stages (field, clusters) draw independent streams.
pub fn stream(seed: u64, label: &str) -> SmallRng {
    // FNV-1a over the label, mixed into the seed.
    let mut h = 0xcbf29ce484222325u64;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    SmallRng::seed_from_u64(seed ^ h)
}

/// Standard normal via Box–Muller (rand's `StandardNormal` lives in
/// `rand_distr`, which is outside the sanctioned dependency set).
pub fn normal(rng: &mut SmallRng, mean: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + sigma * z
}

/// Poisson sample via inversion for small means, normal approximation for
/// large ones (cluster and galaxy counts per region).
pub fn poisson(rng: &mut SmallRng, mean: f64) -> u64 {
    assert!(mean >= 0.0, "negative Poisson mean");
    if mean == 0.0 {
        return 0;
    }
    if mean > 50.0 {
        return normal(rng, mean, mean.sqrt()).round().max(0.0) as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
    }
}

/// Sample from a truncated power-law `p(n) ~ n^-alpha` on `[lo, hi]`
/// (cluster richness distribution).
pub fn power_law(rng: &mut SmallRng, lo: f64, hi: f64, alpha: f64) -> f64 {
    debug_assert!(lo > 0.0 && hi > lo && alpha > 1.0);
    let u: f64 = rng.gen();
    let a = 1.0 - alpha;
    (lo.powf(a) + u * (hi.powf(a) - lo.powf(a))).powf(1.0 / a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_independent() {
        let a1: Vec<u64> = {
            let mut r = stream(42, "field");
            (0..5).map(|_| r.gen()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = stream(42, "field");
            (0..5).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = stream(42, "clusters");
            (0..5).map(|_| r.gen()).collect()
        };
        assert_eq!(a1, a2, "same seed+label must repeat");
        assert_ne!(a1, b, "different labels must diverge");
    }

    #[test]
    fn normal_moments() {
        let mut r = stream(7, "normal");
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_moments_small_and_large() {
        let mut r = stream(7, "poisson");
        for &mean in &[0.5, 4.0, 200.0] {
            let n = 5_000;
            let total: u64 = (0..n).map(|_| poisson(&mut r, mean)).sum();
            let got = total as f64 / n as f64;
            assert!(
                (got - mean).abs() < mean.sqrt() * 0.2 + 0.05,
                "mean {mean} got {got}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn power_law_respects_bounds_and_skew() {
        let mut r = stream(9, "pl");
        let samples: Vec<f64> = (0..10_000).map(|_| power_law(&mut r, 5.0, 50.0, 2.5)).collect();
        assert!(samples.iter().all(|&x| (5.0..=50.0).contains(&x)));
        let below_10 = samples.iter().filter(|&&x| x < 10.0).count();
        assert!(below_10 > 6_000, "power law must favor the low end: {below_10}");
    }
}
