//! A second synthetic survey derived from a generated sky.
//!
//! Cross-survey workloads (DESIGN.md §6j) need two catalogs of the *same*
//! sky observed differently: the second survey re-observes the truth
//! galaxies with per-axis Gaussian positional scatter and Bernoulli
//! incompleteness, so every emitted object carries its truth `objid` and a
//! cross-match can be scored exactly — a matched pair is *correct* iff the
//! objids agree, and the match rate has a closed form (completeness times
//! the Rayleigh CDF of the match radius over the scatter).

use crate::catalog::Sky;
use crate::rng::{normal, stream};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How the second survey re-observes the truth sky.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyConfig {
    /// Probability a truth galaxy appears in the second survey.
    pub completeness: f64,
    /// Per-axis positional scatter, arcseconds (1-sigma). The separation
    /// between a truth position and its re-observation is then Rayleigh
    /// with this scale, so `P(sep < r) = 1 - exp(-r^2 / (2 sigma^2))`.
    pub scatter_arcsec: f64,
}

impl SurveyConfig {
    /// A plausible photometric follow-up: most objects re-detected, with
    /// sub-arcsecond astrometry.
    pub fn paper() -> SurveyConfig {
        SurveyConfig { completeness: 0.9, scatter_arcsec: 0.3 }
    }
}

impl Default for SurveyConfig {
    fn default() -> SurveyConfig {
        SurveyConfig::paper()
    }
}

/// One object of the derived survey: the truth `objid` with the observed
/// (scattered) position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurveyObject {
    /// objid of the truth galaxy this observation came from.
    pub objid: i64,
    /// Observed right ascension, degrees, normalized to `[0, 360)`.
    pub ra: f64,
    /// Observed declination, degrees, clamped to `[-90, 90]`.
    pub dec: f64,
}

impl Sky {
    /// Re-observe this sky as a second survey. Deterministic in
    /// `(self, config, seed)`; objects come out in truth objid order.
    ///
    /// The RA scatter is divided by `cos(dec)` so the *angular* scatter is
    /// isotropic; observed RA wraps onto `[0, 360)` (a truth galaxy at
    /// 359.9999° can scatter across the meridian) and dec clamps at the
    /// poles.
    pub fn second_survey(&self, config: &SurveyConfig, seed: u64) -> Vec<SurveyObject> {
        let sigma_deg = config.scatter_arcsec / 3600.0;
        let mut rng = stream(seed, "survey2");
        let mut out = Vec::with_capacity(
            (self.galaxies.len() as f64 * config.completeness).ceil() as usize,
        );
        for g in &self.galaxies {
            // Draw the detection coin and both axis offsets for every truth
            // galaxy, kept or not: the observed position of galaxy k then
            // never depends on whether earlier galaxies were detected.
            let detected = rng.gen::<f64>() < config.completeness;
            let dra = normal(&mut rng, 0.0, sigma_deg);
            let ddec = normal(&mut rng, 0.0, sigma_deg);
            if !detected {
                continue;
            }
            let cos_dec = g.dec.to_radians().cos().max(1e-6);
            out.push(SurveyObject {
                objid: g.objid,
                ra: (g.ra + dra / cos_dec).rem_euclid(360.0),
                dec: (g.dec + ddec).clamp(-90.0, 90.0),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SkyConfig;
    use skycore::kcorr::{KcorrConfig, KcorrTable};
    use skycore::region::SkyRegion;

    fn sky() -> Sky {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        let region = SkyRegion::new(180.0, 183.0, -1.5, 1.5);
        Sky::generate(region, &SkyConfig::test(), &kcorr, 2005)
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let s = sky();
        let cfg = SurveyConfig::paper();
        let a = s.second_survey(&cfg, 11);
        let b = s.second_survey(&cfg, 11);
        assert_eq!(a, b);
        let c = s.second_survey(&cfg, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn completeness_thins_the_catalog_to_the_configured_fraction() {
        let s = sky();
        let cfg = SurveyConfig { completeness: 0.7, scatter_arcsec: 0.3 };
        let obs = s.second_survey(&cfg, 5);
        let frac = obs.len() as f64 / s.galaxies.len() as f64;
        assert!((frac - 0.7).abs() < 0.05, "kept fraction {frac}");
        // objid order preserved, each objid a truth objid, no duplicates.
        for w in obs.windows(2) {
            assert!(w[0].objid < w[1].objid);
        }
    }

    #[test]
    fn scatter_matches_the_configured_sigma() {
        let s = sky();
        let cfg = SurveyConfig { completeness: 1.0, scatter_arcsec: 2.0 };
        let obs = s.second_survey(&cfg, 5);
        assert_eq!(obs.len(), s.galaxies.len());
        let sigma_deg = cfg.scatter_arcsec / 3600.0;
        let mut sum2 = 0.0;
        for (g, o) in s.galaxies.iter().zip(&obs) {
            assert_eq!(g.objid, o.objid);
            let ddec = o.dec - g.dec;
            let dra = (o.ra - g.ra) * g.dec.to_radians().cos();
            sum2 += dra * dra + ddec * ddec;
        }
        // Mean squared angular offset of a 2D Gaussian is 2 sigma^2.
        let got = (sum2 / obs.len() as f64).sqrt();
        let expected = sigma_deg * std::f64::consts::SQRT_2;
        assert!((got / expected - 1.0).abs() < 0.05, "rms {got} vs {expected}");
    }

    #[test]
    fn dropping_a_galaxy_does_not_shift_later_positions() {
        let s = sky();
        let full = s.second_survey(&SurveyConfig { completeness: 1.0, scatter_arcsec: 1.0 }, 5);
        let thin = s.second_survey(&SurveyConfig { completeness: 0.5, scatter_arcsec: 1.0 }, 5);
        // Every thin observation equals its full-survey counterpart: the
        // per-galaxy draw discipline means incompleteness only deletes.
        let by_id: std::collections::HashMap<i64, &SurveyObject> =
            full.iter().map(|o| (o.objid, o)).collect();
        assert!(!thin.is_empty());
        for o in &thin {
            assert_eq!(*by_id[&o.objid], *o);
        }
    }

    #[test]
    fn observed_positions_stay_on_the_sphere() {
        let kcorr = KcorrTable::generate(KcorrConfig::sql());
        // A region hugging RA 0 so scatter wraps.
        let region = SkyRegion::new(0.0, 0.5, -1.0, 1.0);
        let s = Sky::generate(region, &SkyConfig::test(), &kcorr, 7);
        let cfg = SurveyConfig { completeness: 1.0, scatter_arcsec: 30.0 };
        let obs = s.second_survey(&cfg, 3);
        assert!(obs.iter().all(|o| (0.0..360.0).contains(&o.ra)));
        assert!(obs.iter().all(|o| (-90.0..=90.0).contains(&o.dec)));
        // Some galaxy near ra=0 must have wrapped high.
        assert!(obs.iter().any(|o| o.ra > 359.0), "expected RA wrap in the sample");
    }
}
