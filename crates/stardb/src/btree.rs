//! A page-backed B+tree.
//!
//! This is the engine's clustered index: leaves hold the full row payload,
//! keyed by the order-preserving bytes of [`crate::key`], so key
//! comparisons are plain `memcmp` against page memory — no decoding, no
//! allocation on the search path. Range scans descend once and then walk
//! the leaf sibling chain, which is what makes the paper's zone joins
//! (`WHERE zoneID = @z AND ra BETWEEN ..`) cheap.
//!
//! ## Node layout (one 8 KiB page)
//!
//! ```text
//! 0      : node type (0 = leaf, 1 = inner)
//! 1..3   : entry count, u16 LE
//! 3..5   : free_end, u16 LE (cells grow down from the page end)
//! 5..9   : extra, u32 LE — leaf: right-sibling page; inner: leftmost child
//! 9..9+4n: slot array, key-sorted: (cell offset u16, cell len u16)
//! ```
//!
//! Cells: `[key_len u16][key bytes][payload]`; inner payloads are a child
//! page id (u32 LE). Deletes remove the slot and leave a cell hole; inserts
//! compact the page when the hole space is needed. Underfull nodes are not
//! rebalanced — the workloads here are bulk-load and append heavy, and a
//! simulator does not need delete-side rebalancing (documented trade-off).

use crate::buffer::BufferPool;
use crate::error::{DbError, DbResult};
use crate::page::PAGE_SIZE;
use crate::store::{PageId, NO_PAGE};
use std::ops::Bound;
use std::sync::Arc;

const T_LEAF: u8 = 0;
const T_INNER: u8 = 1;
const HDR: usize = 9;
const SLOT: usize = 4;

/// Root-to-leaf descents (point lookups and range-scan seeks). One seek
/// per query is the B+tree promise the zone join relies on; a regression
/// here shows up as this counter outpacing query counts.
fn seeks() -> &'static obs::Counter {
    static C: std::sync::OnceLock<obs::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| obs::counter("stardb.btree.seeks"))
}

/// Largest key+payload combination a single node accepts. Half a page keeps
/// splits always possible.
pub const MAX_ENTRY: usize = (PAGE_SIZE - HDR - SLOT) / 2 - 8;

// ---- raw node accessors -------------------------------------------------

#[inline]
fn node_type(p: &[u8]) -> u8 {
    p[0]
}
#[inline]
fn set_node_type(p: &mut [u8], t: u8) {
    p[0] = t;
}
#[inline]
fn count(p: &[u8]) -> usize {
    u16::from_le_bytes([p[1], p[2]]) as usize
}
#[inline]
fn set_count(p: &mut [u8], n: usize) {
    p[1..3].copy_from_slice(&(n as u16).to_le_bytes());
}
#[inline]
fn free_end(p: &[u8]) -> usize {
    u16::from_le_bytes([p[3], p[4]]) as usize
}
#[inline]
fn set_free_end(p: &mut [u8], v: usize) {
    p[3..5].copy_from_slice(&(v as u16).to_le_bytes());
}
#[inline]
fn extra(p: &[u8]) -> u32 {
    u32::from_le_bytes([p[5], p[6], p[7], p[8]])
}
#[inline]
fn set_extra(p: &mut [u8], v: u32) {
    p[5..9].copy_from_slice(&v.to_le_bytes());
}
#[inline]
fn slot(p: &[u8], i: usize) -> (usize, usize) {
    let b = HDR + i * SLOT;
    (
        u16::from_le_bytes([p[b], p[b + 1]]) as usize,
        u16::from_le_bytes([p[b + 2], p[b + 3]]) as usize,
    )
}
#[inline]
fn set_slot(p: &mut [u8], i: usize, off: usize, len: usize) {
    let b = HDR + i * SLOT;
    p[b..b + 2].copy_from_slice(&(off as u16).to_le_bytes());
    p[b + 2..b + 4].copy_from_slice(&(len as u16).to_le_bytes());
}

#[inline]
fn cell(p: &[u8], i: usize) -> &[u8] {
    let (off, len) = slot(p, i);
    &p[off..off + len]
}

#[inline]
fn cell_key(p: &[u8], i: usize) -> &[u8] {
    let c = cell(p, i);
    let klen = u16::from_le_bytes([c[0], c[1]]) as usize;
    &c[2..2 + klen]
}

#[inline]
fn cell_payload(p: &[u8], i: usize) -> &[u8] {
    let c = cell(p, i);
    let klen = u16::from_le_bytes([c[0], c[1]]) as usize;
    &c[2 + klen..]
}

fn init_node(p: &mut [u8], t: u8) {
    set_node_type(p, t);
    set_count(p, 0);
    set_free_end(p, PAGE_SIZE);
    set_extra(p, NO_PAGE.0);
}

/// Binary search: position of the first entry with key >= `key`, plus
/// whether an exact match sits there.
fn search(p: &[u8], key: &[u8]) -> (usize, bool) {
    let n = count(p);
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        match cell_key(p, mid).cmp(key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Equal => return (mid, true),
            std::cmp::Ordering::Greater => hi = mid,
        }
    }
    (lo, false)
}

/// For an inner node: the child to descend into for `key`.
fn child_for(p: &[u8], key: &[u8]) -> DbResult<PageId> {
    let (pos, exact) = search(p, key);
    // Entry i separates: keys < entries[i].key go left of it. An exact
    // match belongs to the right child (separators are copied-up leaf
    // keys: the key itself lives right).
    let idx = if exact { pos + 1 } else { pos };
    if idx == 0 {
        Ok(PageId(extra(p)))
    } else {
        let raw: [u8; 4] = cell_payload(p, idx - 1)
            .try_into()
            .map_err(|_| DbError::Corrupt("inner node child pointer truncated".into()))?;
        Ok(PageId(u32::from_le_bytes(raw)))
    }
}

fn contiguous_free(p: &[u8]) -> usize {
    free_end(p) - (HDR + count(p) * SLOT)
}

fn total_free(p: &[u8]) -> usize {
    let live: usize = (0..count(p)).map(|i| slot(p, i).1).sum();
    PAGE_SIZE - HDR - count(p) * SLOT - live
}

fn compact_node(p: &mut [u8]) {
    let n = count(p);
    let mut cells: Vec<(usize, Vec<u8>)> = (0..n).map(|i| (i, cell(p, i).to_vec())).collect();
    let mut end = PAGE_SIZE;
    // Rewrite from the page end; order within the payload area is
    // irrelevant as slots carry the offsets.
    for (i, bytes) in cells.drain(..) {
        end -= bytes.len();
        p[end..end + bytes.len()].copy_from_slice(&bytes);
        set_slot(p, i, end, bytes.len());
    }
    set_free_end(p, end);
}

/// Insert a cell at slot position `pos`. Caller must have verified fit.
fn insert_at(p: &mut [u8], pos: usize, key: &[u8], payload: &[u8]) {
    let cell_len = 2 + key.len() + payload.len();
    if contiguous_free(p) < cell_len + SLOT {
        compact_node(p);
    }
    debug_assert!(contiguous_free(p) >= cell_len + SLOT, "insert_at without room");
    let n = count(p);
    let off = free_end(p) - cell_len;
    p[off..off + 2].copy_from_slice(&(key.len() as u16).to_le_bytes());
    p[off + 2..off + 2 + key.len()].copy_from_slice(key);
    p[off + 2 + key.len()..off + cell_len].copy_from_slice(payload);
    set_free_end(p, off);
    // Shift the slot array open.
    let start = HDR + pos * SLOT;
    let end = HDR + n * SLOT;
    p.copy_within(start..end, start + SLOT);
    set_slot(p, pos, off, cell_len);
    set_count(p, n + 1);
}

/// Remove the slot at `pos` (cell bytes become a hole).
fn remove_at(p: &mut [u8], pos: usize) {
    let n = count(p);
    let start = HDR + (pos + 1) * SLOT;
    let end = HDR + n * SLOT;
    p.copy_within(start..end, start - SLOT);
    set_count(p, n - 1);
}

fn fits(p: &[u8], key: &[u8], payload: &[u8]) -> bool {
    total_free(p) >= 2 + key.len() + payload.len() + SLOT
}

// ---- the tree ------------------------------------------------------------

/// A unique-key B+tree over a buffer pool.
pub struct BTree {
    pool: Arc<BufferPool>,
    root: PageId,
    len: u64,
    /// When set, every read resolves pages at this snapshot epoch
    /// through the MVCC version table ([`BufferPool::with_page_at`]).
    snap: Option<u64>,
}

enum Ins {
    Done,
    Split { sep: Vec<u8>, right: PageId },
}

impl BTree {
    /// Create an empty tree.
    pub fn create(pool: Arc<BufferPool>) -> DbResult<Self> {
        let root = pool.allocate()?;
        pool.with_page_mut(root, |p| init_node(p, T_LEAF))?;
        Ok(BTree { pool, root, len: 0, snap: None })
    }

    /// Re-attach a tree recovered from a WAL catalog: root and length were
    /// serialized at commit, node contents replay from the log.
    pub fn attach(pool: Arc<BufferPool>, root: PageId, len: u64) -> Self {
        BTree { pool, root, len, snap: None }
    }

    /// A read-only view of a tree (given by its committed `root`/`len`)
    /// pinned at snapshot epoch `snap`: reads resolve copy-on-write page
    /// versions, so the view is stable while writers commit concurrently.
    pub fn attach_at(pool: Arc<BufferPool>, root: PageId, len: u64, snap: u64) -> Self {
        BTree { pool, root, len, snap: Some(snap) }
    }

    /// The current root page (serialized into WAL commit catalogs).
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Read a page at this tree's visibility: the pinned snapshot when one
    /// is set, the live frame otherwise.
    fn read<R>(&self, pid: PageId, f: impl FnOnce(&[u8]) -> R) -> DbResult<R> {
        match self.snap {
            Some(s) => self.pool.with_page_at(pid, s, f),
            None => self.pool.with_page(pid, f),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Point lookup: the payload stored under `key`.
    pub fn get(&self, key: &[u8]) -> DbResult<Option<Vec<u8>>> {
        seeks().incr();
        let mut pid = self.root;
        loop {
            enum Step {
                Descend(PageId),
                Found(Option<Vec<u8>>),
            }
            let step = self.read(pid, |p| -> DbResult<Step> {
                if node_type(p) == T_INNER {
                    Ok(Step::Descend(child_for(p, key)?))
                } else {
                    let (pos, exact) = search(p, key);
                    Ok(Step::Found(exact.then(|| cell_payload(p, pos).to_vec())))
                }
            })??;
            match step {
                Step::Descend(c) => pid = c,
                Step::Found(v) => return Ok(v),
            }
        }
    }

    /// Insert a unique key. [`DbError::DuplicateKey`] if present.
    pub fn insert(&mut self, key: &[u8], payload: &[u8]) -> DbResult<()> {
        if 2 + key.len() + payload.len() > MAX_ENTRY {
            return Err(DbError::RecordTooLarge {
                size: key.len() + payload.len(),
                max: MAX_ENTRY,
            });
        }
        match self.insert_rec(self.root, key, payload)? {
            Ins::Done => {}
            Ins::Split { sep, right } => {
                let new_root = self.pool.allocate()?;
                let old_root = self.root;
                self.pool.with_page_mut(new_root, |p| {
                    init_node(p, T_INNER);
                    set_extra(p, old_root.0);
                    insert_at(p, 0, &sep, &right.0.to_le_bytes());
                })?;
                self.root = new_root;
            }
        }
        self.len += 1;
        Ok(())
    }

    fn insert_rec(&mut self, pid: PageId, key: &[u8], payload: &[u8]) -> DbResult<Ins> {
        enum Plan {
            Leaf,
            Inner(PageId),
        }
        let plan = self.pool.with_page(pid, |p| -> DbResult<Plan> {
            if node_type(p) == T_INNER {
                Ok(Plan::Inner(child_for(p, key)?))
            } else {
                Ok(Plan::Leaf)
            }
        })??;
        match plan {
            Plan::Leaf => self.leaf_insert(pid, key, payload),
            Plan::Inner(child) => {
                match self.insert_rec(child, key, payload)? {
                    Ins::Done => Ok(Ins::Done),
                    Ins::Split { sep, right } => {
                        // Insert the separator into this node; may cascade.
                        self.node_insert(pid, &sep, &right.0.to_le_bytes(), T_INNER)
                    }
                }
            }
        }
    }

    fn leaf_insert(&mut self, pid: PageId, key: &[u8], payload: &[u8]) -> DbResult<Ins> {
        let dup = self.pool.with_page(pid, |p| search(p, key).1)?;
        if dup {
            return Err(DbError::DuplicateKey(format!("{key:02x?}")));
        }
        self.node_insert(pid, key, payload, T_LEAF)
    }

    /// Insert into a node of known type, splitting on overflow.
    fn node_insert(&mut self, pid: PageId, key: &[u8], payload: &[u8], t: u8) -> DbResult<Ins> {
        let inserted = self.pool.with_page_mut(pid, |p| {
            debug_assert_eq!(node_type(p), t);
            if fits(p, key, payload) {
                let (pos, exact) = search(p, key);
                debug_assert!(!exact, "duplicate checked by caller");
                insert_at(p, pos, key, payload);
                true
            } else {
                false
            }
        })?;
        if inserted {
            return Ok(Ins::Done);
        }
        // Split: pull all entries out, partition by bytes, rebuild.
        let right_pid = self.pool.allocate()?;
        let (entries, old_extra) = self.pool.with_page(pid, |p| {
            let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..count(p))
                .map(|i| (cell_key(p, i).to_vec(), cell_payload(p, i).to_vec()))
                .collect();
            (entries, extra(p))
        })?;
        // Merge the pending entry into the sorted list.
        let mut entries = entries;
        let pos = entries.partition_point(|(k, _)| k.as_slice() < key);
        entries.insert(pos, (key.to_vec(), payload.to_vec()));
        // Split at the byte midpoint so both halves keep headroom even with
        // skewed entry sizes.
        let total: usize = entries.iter().map(|(k, v)| 2 + k.len() + v.len() + SLOT).sum();
        let mut acc = 0usize;
        let mut mid = entries.len() / 2; // fallback
        for (i, (k, v)) in entries.iter().enumerate() {
            acc += 2 + k.len() + v.len() + SLOT;
            if acc >= total / 2 {
                mid = (i + 1).min(entries.len() - 1).max(1);
                break;
            }
        }
        let right_entries = entries.split_off(mid);
        let (sep, right_first_payload) = (right_entries[0].0.clone(), right_entries[0].1.clone());

        if t == T_LEAF {
            let old_sibling = self.pool.with_page_mut(pid, |p| {
                let sibling = extra(p);
                init_node(p, T_LEAF);
                set_extra(p, right_pid.0);
                for (i, (k, v)) in entries.iter().enumerate() {
                    insert_at(p, i, k, v);
                }
                sibling
            })?;
            self.pool.with_page_mut(right_pid, |p| {
                init_node(p, T_LEAF);
                set_extra(p, old_sibling);
                for (i, (k, v)) in right_entries.iter().enumerate() {
                    insert_at(p, i, k, v);
                }
            })?;
            Ok(Ins::Split { sep, right: right_pid })
        } else {
            // Inner split: the separator moves up; the right node's
            // leftmost child is the promoted entry's child.
            let raw: [u8; 4] = right_first_payload.as_slice().try_into().map_err(|_| {
                DbError::Corrupt("promoted separator carries no child pointer".into())
            })?;
            let promoted_child = u32::from_le_bytes(raw);
            self.pool.with_page_mut(pid, |p| {
                init_node(p, T_INNER);
                set_extra(p, old_extra);
                for (i, (k, v)) in entries.iter().enumerate() {
                    insert_at(p, i, k, v);
                }
            })?;
            self.pool.with_page_mut(right_pid, |p| {
                init_node(p, T_INNER);
                set_extra(p, promoted_child);
                for (i, (k, v)) in right_entries[1..].iter().enumerate() {
                    insert_at(p, i, k, v);
                }
            })?;
            Ok(Ins::Split { sep, right: right_pid })
        }
    }

    /// Delete `key`; `Ok(true)` when it existed. Leaves may become
    /// underfull (documented simulator trade-off: no rebalancing).
    pub fn delete(&mut self, key: &[u8]) -> DbResult<bool> {
        let mut pid = self.root;
        loop {
            enum Step {
                Descend(PageId),
                Removed(bool),
            }
            let step = self.pool.with_page_mut(pid, |p| -> DbResult<Step> {
                if node_type(p) == T_INNER {
                    Ok(Step::Descend(child_for(p, key)?))
                } else {
                    let (pos, exact) = search(p, key);
                    if exact {
                        remove_at(p, pos);
                    }
                    Ok(Step::Removed(exact))
                }
            })??;
            match step {
                Step::Descend(c) => pid = c,
                Step::Removed(found) => {
                    if found {
                        self.len -= 1;
                    }
                    return Ok(found);
                }
            }
        }
    }

    /// Reset the tree to empty (the clustered-table `TRUNCATE`).
    pub fn truncate(&mut self) -> DbResult<()> {
        let root = self.pool.allocate()?;
        self.pool.with_page_mut(root, |p| init_node(p, T_LEAF))?;
        self.root = root;
        self.len = 0;
        Ok(())
    }

    /// Leftmost leaf (scan start).
    fn leftmost_leaf(&self) -> DbResult<PageId> {
        let mut pid = self.root;
        loop {
            let next = self.read(pid, |p| {
                (node_type(p) == T_INNER).then(|| PageId(extra(p)))
            })?;
            match next {
                Some(c) => pid = c,
                None => return Ok(pid),
            }
        }
    }

    /// Leaf where a scan starting at `bound` begins, plus the entry index.
    fn seek(&self, bound: Bound<&[u8]>) -> DbResult<(PageId, usize)> {
        seeks().incr();
        let key = match bound {
            Bound::Unbounded => return Ok((self.leftmost_leaf()?, 0)),
            Bound::Included(k) | Bound::Excluded(k) => k,
        };
        let mut pid = self.root;
        loop {
            enum Step {
                Descend(PageId),
                At(usize),
            }
            let step = self.read(pid, |p| -> DbResult<Step> {
                if node_type(p) == T_INNER {
                    Ok(Step::Descend(child_for(p, key)?))
                } else {
                    let (pos, exact) = search(p, key);
                    let pos = if exact && matches!(bound, Bound::Excluded(_)) {
                        pos + 1
                    } else {
                        pos
                    };
                    Ok(Step::At(pos))
                }
            })??;
            match step {
                Step::Descend(c) => pid = c,
                Step::At(pos) => return Ok((pid, pos)),
            }
        }
    }

    /// Visit every `(key, payload)` in `[lo, hi]` in key order, without
    /// copying: `visit` is called with slices borrowed straight from page
    /// memory. Return `false` from `visit` to stop early.
    ///
    /// This is the hot path of the zone-index neighbor search.
    pub fn scan_range_with(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
        mut visit: impl FnMut(&[u8], &[u8]) -> bool,
    ) -> DbResult<()> {
        let (mut pid, mut pos) = self.seek(lo)?;
        loop {
            enum Step {
                Next(PageId),
                Stop,
            }
            let step = self.read(pid, |p| {
                let n = count(p);
                for i in pos..n {
                    let k = cell_key(p, i);
                    let in_range = match hi {
                        Bound::Unbounded => true,
                        Bound::Included(h) => k <= h,
                        Bound::Excluded(h) => k < h,
                    };
                    if !in_range {
                        return Step::Stop;
                    }
                    if !visit(k, cell_payload(p, i)) {
                        return Step::Stop;
                    }
                }
                let sibling = extra(p);
                if sibling == NO_PAGE.0 {
                    Step::Stop
                } else {
                    Step::Next(PageId(sibling))
                }
            })?;
            match step {
                Step::Next(next) => {
                    pid = next;
                    pos = 0;
                }
                Step::Stop => return Ok(()),
            }
        }
    }

    /// Materializing convenience over [`BTree::scan_range_with`].
    pub fn scan_range(
        &self,
        lo: Bound<&[u8]>,
        hi: Bound<&[u8]>,
    ) -> DbResult<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan_range_with(lo, hi, |k, v| {
            out.push((k.to_vec(), v.to_vec()));
            true
        })?;
        Ok(out)
    }

    /// Full scan in key order.
    pub fn scan_all(&self) -> DbResult<Vec<(Vec<u8>, Vec<u8>)>> {
        self.scan_range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Tree height (leaf = 1); used by tests and the stats report.
    pub fn height(&self) -> DbResult<usize> {
        let mut h = 1;
        let mut pid = self.root;
        loop {
            let next = self.read(pid, |p| {
                (node_type(p) == T_INNER).then(|| PageId(extra(p)))
            })?;
            match next {
                Some(c) => {
                    h += 1;
                    pid = c;
                }
                None => return Ok(h),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::DiskProfile;
    use crate::store::MemStore;

    fn tree() -> BTree {
        let pool = Arc::new(BufferPool::new(
            Arc::new(MemStore::new()),
            256,
            DiskProfile::instant(),
        ));
        BTree::create(pool).unwrap()
    }

    fn k(i: u64) -> Vec<u8> {
        i.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_get_small() {
        let mut t = tree();
        t.insert(&k(5), b"five").unwrap();
        t.insert(&k(3), b"three").unwrap();
        t.insert(&k(9), b"nine").unwrap();
        assert_eq!(t.get(&k(3)).unwrap().unwrap(), b"three");
        assert_eq!(t.get(&k(9)).unwrap().unwrap(), b"nine");
        assert!(t.get(&k(4)).unwrap().is_none());
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut t = tree();
        t.insert(&k(1), b"a").unwrap();
        assert!(matches!(t.insert(&k(1), b"b"), Err(DbError::DuplicateKey(_))));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn many_sequential_inserts_split_and_stay_sorted() {
        let mut t = tree();
        let n = 20_000u64;
        for i in 0..n {
            t.insert(&k(i), &i.to_le_bytes()).unwrap();
        }
        assert_eq!(t.len(), n);
        assert!(t.height().unwrap() >= 2, "20k entries must split");
        let all = t.scan_all().unwrap();
        assert_eq!(all.len(), n as usize);
        for (i, (key, val)) in all.iter().enumerate() {
            assert_eq!(key, &k(i as u64));
            assert_eq!(val, &(i as u64).to_le_bytes());
        }
    }

    #[test]
    fn reverse_and_shuffled_inserts() {
        let mut t = tree();
        // Deterministic pseudo-shuffle via multiplication by an odd constant.
        let n = 10_000u64;
        for i in 0..n {
            let key = i.wrapping_mul(2654435761) % n;
            // Skip duplicates from the modular map by offsetting.
            let key = key * n + i;
            t.insert(&k(key), b"v").unwrap();
        }
        let all = t.scan_all().unwrap();
        assert_eq!(all.len(), n as usize);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "keys must be sorted");
    }

    #[test]
    fn range_scan_inclusive_exclusive() {
        let mut t = tree();
        for i in 0..100 {
            t.insert(&k(i), b"").unwrap();
        }
        let r = t
            .scan_range(Bound::Included(&k(10)), Bound::Included(&k(20)))
            .unwrap();
        assert_eq!(r.len(), 11);
        assert_eq!(r[0].0, k(10));
        assert_eq!(r[10].0, k(20));
        let r = t
            .scan_range(Bound::Excluded(&k(10)), Bound::Excluded(&k(20)))
            .unwrap();
        assert_eq!(r.len(), 9);
        assert_eq!(r[0].0, k(11));
    }

    #[test]
    fn range_scan_across_leaf_boundaries() {
        let mut t = tree();
        let n = 5_000u64;
        for i in 0..n {
            t.insert(&k(i), &[0u8; 64]).unwrap();
        }
        let r = t
            .scan_range(Bound::Included(&k(100)), Bound::Excluded(&k(4_900)))
            .unwrap();
        assert_eq!(r.len(), 4_800);
    }

    #[test]
    fn early_termination_stops_scan() {
        let mut t = tree();
        for i in 0..1000 {
            t.insert(&k(i), b"").unwrap();
        }
        let mut seen = 0;
        t.scan_range_with(Bound::Unbounded, Bound::Unbounded, |_, _| {
            seen += 1;
            seen < 7
        })
        .unwrap();
        assert_eq!(seen, 7);
    }

    #[test]
    fn delete_removes_and_reports() {
        let mut t = tree();
        for i in 0..100 {
            t.insert(&k(i), b"x").unwrap();
        }
        assert!(t.delete(&k(50)).unwrap());
        assert!(!t.delete(&k(50)).unwrap());
        assert!(t.get(&k(50)).unwrap().is_none());
        assert_eq!(t.len(), 99);
        assert_eq!(t.scan_all().unwrap().len(), 99);
    }

    #[test]
    fn truncate_resets() {
        let mut t = tree();
        for i in 0..1000 {
            t.insert(&k(i), b"x").unwrap();
        }
        t.truncate().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.scan_all().unwrap().len(), 0);
        t.insert(&k(1), b"again").unwrap();
        assert_eq!(t.get(&k(1)).unwrap().unwrap(), b"again");
    }

    #[test]
    fn variable_size_payloads() {
        let mut t = tree();
        for i in 0..2000u64 {
            let payload = vec![b'p'; (i % 200) as usize];
            t.insert(&k(i), &payload).unwrap();
        }
        for i in (0..2000u64).step_by(97) {
            assert_eq!(t.get(&k(i)).unwrap().unwrap().len(), (i % 200) as usize);
        }
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut t = tree();
        let err = t.insert(&k(1), &vec![0u8; MAX_ENTRY + 1]).unwrap_err();
        assert!(matches!(err, DbError::RecordTooLarge { .. }));
    }

    #[test]
    fn interleaved_insert_delete_reuse() {
        let mut t = tree();
        for round in 0..5u64 {
            for i in 0..500 {
                t.insert(&k(round * 10_000 + i), b"payload-bytes").unwrap();
            }
            for i in 0..250 {
                assert!(t.delete(&k(round * 10_000 + i * 2)).unwrap());
            }
        }
        assert_eq!(t.len(), 5 * 250);
        let all = t.scan_all().unwrap();
        assert_eq!(all.len(), 5 * 250);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
