//! The buffer pool: a fixed set of in-memory frames over a [`PageStore`],
//! with clock eviction and the I/O accounting that backs Table 1's I/O
//! column.
//!
//! Accounting follows SQL Server's conventions as the paper reports them:
//!
//! * **logical read** — any page access through the pool, hit or miss;
//! * **physical read** — a miss that had to fetch from the store;
//! * **physical write** — a dirty eviction or flush.
//!
//! A [`DiskProfile`] attaches a *modeled* latency to physical operations.
//! The engine never sleeps; instead the accumulated model time is reported
//! separately so task timings can present `elapsed = cpu + modeled I/O
//! wait`, the decomposition Table 1 shows (the paper's `fBCGCandidate` has
//! low I/O density — data stays in memory — while `spZone` rewrites
//! everything and is I/O heavy; the same contrast shows up in these
//! counters).
//!
//! ## Latch sharding
//!
//! The frame table is split into up to [`MAX_SHARDS`] independently-latched
//! shards keyed by `page_id % n_shards`, each with its own frame set and
//! clock hand, so concurrent readers on different pages do not serialize on
//! one global mutex. Pools smaller than `2 × MIN_FRAMES_PER_SHARD` frames
//! keep a single shard and behave exactly like the pre-sharding pool
//! (deliberate: the deliberately starved `tiny(n)` test pools keep their
//! historical eviction patterns). I/O counters are atomics shared across
//! shards, so [`IoStats`] accounting is identical either way. Contended
//! latch acquisitions are counted in `stardb.buffer.latch_waits`.

use crate::error::{DbError, DbResult};
use crate::mvcc::MvccState;
use crate::page::PAGE_SIZE;
use crate::store::{PageId, PageStore};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// Latency model for the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiskProfile {
    /// Modeled time per physical page read.
    pub read_latency: Duration,
    /// Modeled time per physical page write.
    pub write_latency: Duration,
}

impl DiskProfile {
    /// A 2004-era server disk subsystem: ~0.2 ms per 8 KiB sequentialish
    /// page read, ~0.3 ms per write.
    pub fn spinning_disk() -> Self {
        DiskProfile {
            read_latency: Duration::from_micros(200),
            write_latency: Duration::from_micros(300),
        }
    }

    /// No modeled latency (unit tests).
    pub fn instant() -> Self {
        DiskProfile { read_latency: Duration::ZERO, write_latency: Duration::ZERO }
    }
}

impl Default for DiskProfile {
    fn default() -> Self {
        DiskProfile::spinning_disk()
    }
}

/// Monotonic I/O counters. Cheap to share and snapshot.
#[derive(Debug, Default)]
pub struct IoStats {
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    modeled_io_nanos: AtomicU64,
}

/// A point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Page accesses through the pool (the paper's "I/O" column counts
    /// these logical operations).
    pub logical_reads: u64,
    /// Misses served from the store.
    pub physical_reads: u64,
    /// Dirty pages written back.
    pub physical_writes: u64,
    /// Accumulated modeled I/O wait.
    pub modeled_io: Duration,
}

impl IoStats {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            modeled_io: Duration::from_nanos(self.modeled_io_nanos.load(Ordering::Relaxed)),
        }
    }
}

impl IoSnapshot {
    /// Counter deltas `self - earlier` (both from the same pool).
    pub fn since(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            logical_reads: self.logical_reads - earlier.logical_reads,
            physical_reads: self.physical_reads - earlier.physical_reads,
            physical_writes: self.physical_writes - earlier.physical_writes,
            modeled_io: self.modeled_io - earlier.modeled_io,
        }
    }
}

struct Frame {
    page: PageId,
    data: Box<[u8]>,
    dirty: bool,
    referenced: bool,
}

/// One latch shard: a private frame set with its own clock hand.
struct Shard {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    hand: usize,
    capacity: usize,
}

/// Upper bound on latch shards per pool.
pub const MAX_SHARDS: usize = 16;

/// A pool only splits into shards once every shard would own at least this
/// many frames; below that a single latch preserves the exact historical
/// eviction behavior of starved test pools.
pub const MIN_FRAMES_PER_SHARD: usize = 64;

fn shard_count_for(capacity: usize) -> usize {
    (capacity / MIN_FRAMES_PER_SHARD).clamp(1, MAX_SHARDS)
}

/// Global `obs` counters mirroring [`IoStats`], plus hit/miss/eviction
/// splits the per-pool snapshot does not carry. Handles are resolved once
/// per pool; updates are relaxed atomic adds.
struct PoolObs {
    logical_reads: obs::Counter,
    hits: obs::Counter,
    misses: obs::Counter,
    evictions: obs::Counter,
    physical_reads: obs::Counter,
    physical_writes: obs::Counter,
    latch_waits: obs::Counter,
}

impl PoolObs {
    fn new() -> Self {
        PoolObs {
            logical_reads: obs::counter("stardb.buffer.logical_reads"),
            hits: obs::counter("stardb.buffer.hits"),
            misses: obs::counter("stardb.buffer.misses"),
            evictions: obs::counter("stardb.buffer.evictions"),
            physical_reads: obs::counter("stardb.buffer.physical_reads"),
            physical_writes: obs::counter("stardb.buffer.physical_writes"),
            latch_waits: obs::counter("stardb.buffer.latch_waits"),
        }
    }
}

/// The buffer pool. All page access goes through [`BufferPool::with_page`]
/// and [`BufferPool::with_page_mut`]; the closure discipline guarantees a
/// frame cannot be evicted while in use without the complexity of pin
/// bookkeeping leaking into callers — and, because a closure never
/// re-enters the pool, holding one shard latch can never deadlock against
/// another.
pub struct BufferPool {
    store: Arc<dyn PageStore>,
    shards: Vec<Mutex<Shard>>,
    capacity: usize,
    stats: IoStats,
    obs: PoolObs,
    profile: DiskProfile,
    /// Copy-on-write hooks; [`BufferPool::enable_mvcc`] installs them once.
    mvcc: OnceLock<Arc<MvccState>>,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `store`.
    pub fn new(store: Arc<dyn PageStore>, capacity: usize, profile: DiskProfile) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let n = shard_count_for(capacity);
        let shards = (0..n)
            .map(|i| {
                // Distribute remainder frames to the low shards.
                let share = capacity / n + usize::from(i < capacity % n);
                Mutex::new(Shard {
                    frames: Vec::new(),
                    map: HashMap::new(),
                    hand: 0,
                    capacity: share,
                })
            })
            .collect();
        BufferPool {
            store,
            shards,
            capacity,
            stats: IoStats::default(),
            obs: PoolObs::new(),
            profile,
            mvcc: OnceLock::new(),
        }
    }

    /// Install the multi-version hooks: from here on, the first mutation of
    /// a page per transaction files its committed image as a copy-on-write
    /// version (see [`crate::mvcc`]), and [`BufferPool::with_page_at`]
    /// resolves snapshot reads against the version table. Installing twice
    /// is a no-op (the first state wins).
    pub fn enable_mvcc(&self, state: Arc<MvccState>) {
        let _ = self.mvcc.set(state);
    }

    /// Pool capacity in frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of latch shards the frame table is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The I/O counters.
    pub fn stats(&self) -> IoSnapshot {
        self.stats.snapshot()
    }

    fn shard_of(&self, id: PageId) -> usize {
        id.0 as usize % self.shards.len()
    }

    /// Lock a shard, counting contended acquisitions.
    fn lock_shard(&self, idx: usize) -> parking_lot::MutexGuard<'_, Shard> {
        if let Some(guard) = self.shards[idx].try_lock() {
            return guard;
        }
        self.obs.latch_waits.incr();
        self.shards[idx].lock()
    }

    /// Allocate a fresh page (zeroed, resident, dirty).
    pub fn allocate(&self) -> DbResult<PageId> {
        let id = self.store.allocate()?;
        if let Some(mvcc) = self.mvcc.get() {
            // No committed predecessor: mark owned, file no version.
            mvcc.note_fresh(id);
        }
        let mut shard = self.lock_shard(self.shard_of(id));
        let frame_idx = self.frame_for(&mut shard, id, /*load=*/ false)?;
        shard.frames[frame_idx].data.fill(0);
        shard.frames[frame_idx].dirty = true;
        Ok(id)
    }

    /// Run `f` over an immutable view of page `id`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&[u8]) -> R) -> DbResult<R> {
        self.stats.logical_reads.fetch_add(1, Ordering::Relaxed);
        self.obs.logical_reads.incr();
        let mut shard = self.lock_shard(self.shard_of(id));
        let idx = self.frame_for(&mut shard, id, true)?;
        Ok(f(&shard.frames[idx].data))
    }

    /// Run `f` over page `id` as it stood at snapshot epoch `snap`: the
    /// copy-on-write version filed by a later writer when one exists, the
    /// live frame otherwise. The version lookup happens inside the page's
    /// shard latch — the same latch a writer holds while filing the
    /// pre-image and mutating the frame — so a snapshot reader can never
    /// observe a mutated frame whose pre-image is not yet filed.
    pub fn with_page_at<R>(
        &self,
        id: PageId,
        snap: u64,
        f: impl FnOnce(&[u8]) -> R,
    ) -> DbResult<R> {
        let Some(mvcc) = self.mvcc.get() else {
            return self.with_page(id, f);
        };
        self.stats.logical_reads.fetch_add(1, Ordering::Relaxed);
        self.obs.logical_reads.incr();
        let mut shard = self.lock_shard(self.shard_of(id));
        if let Some(version) = mvcc.read_version(id, snap) {
            self.obs.hits.incr();
            return Ok(f(&version));
        }
        let idx = self.frame_for(&mut shard, id, true)?;
        Ok(f(&shard.frames[idx].data))
    }

    /// Run `f` over a mutable view of page `id`; the page is marked dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut [u8]) -> R) -> DbResult<R> {
        self.stats.logical_reads.fetch_add(1, Ordering::Relaxed);
        self.obs.logical_reads.incr();
        let mut shard = self.lock_shard(self.shard_of(id));
        let idx = self.frame_for(&mut shard, id, true)?;
        if let Some(mvcc) = self.mvcc.get() {
            // First mutation per transaction copies the committed image.
            mvcc.before_write(id, &shard.frames[idx].data);
        }
        shard.frames[idx].dirty = true;
        Ok(f(&mut shard.frames[idx].data))
    }

    /// Write every dirty frame back to the store (shard by shard, in shard
    /// order, so flush ordering stays deterministic).
    pub fn flush_all(&self) -> DbResult<()> {
        for mutex in &self.shards {
            let mut shard = mutex.lock();
            for frame in &mut shard.frames {
                if frame.dirty {
                    self.store.write_page(frame.page, &frame.data)?;
                    self.stats.physical_writes.fetch_add(1, Ordering::Relaxed);
                    self.obs.physical_writes.incr();
                    self.stats
                        .modeled_io_nanos
                        .fetch_add(self.profile.write_latency.as_nanos() as u64, Ordering::Relaxed);
                    frame.dirty = false;
                }
            }
        }
        Ok(())
    }

    fn write_back(&self, frame: &Frame) -> DbResult<()> {
        self.store.write_page(frame.page, &frame.data)?;
        self.stats.physical_writes.fetch_add(1, Ordering::Relaxed);
        self.obs.physical_writes.incr();
        self.stats
            .modeled_io_nanos
            .fetch_add(self.profile.write_latency.as_nanos() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Locate (or load) `id` in a frame of its shard, evicting if needed.
    ///
    /// Hit/miss accounting only applies to logical accesses (`load`):
    /// `allocate` acquires a frame too, but a fresh allocation is neither —
    /// counting it would break `logical_reads == hits + misses`.
    fn frame_for(&self, shard: &mut Shard, id: PageId, load: bool) -> DbResult<usize> {
        if let Some(&idx) = shard.map.get(&id) {
            shard.frames[idx].referenced = true;
            if load {
                self.obs.hits.incr();
            }
            return Ok(idx);
        }
        if load {
            self.obs.misses.incr();
        }
        let idx = if shard.frames.len() < shard.capacity {
            shard.frames.push(Frame {
                page: id,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                dirty: false,
                referenced: true,
            });
            shard.frames.len() - 1
        } else {
            let victim = self.pick_victim(shard)?;
            self.obs.evictions.incr();
            let old = shard.frames[victim].page;
            if shard.frames[victim].dirty {
                self.write_back(&shard.frames[victim])?;
            }
            shard.frames[victim].page = id;
            shard.frames[victim].dirty = false;
            shard.frames[victim].referenced = true;
            shard.map.remove(&old);
            victim
        };
        shard.map.insert(id, idx);
        if load {
            self.store.read_page(id, &mut shard.frames[idx].data)?;
            self.stats.physical_reads.fetch_add(1, Ordering::Relaxed);
            self.obs.physical_reads.incr();
            self.stats
                .modeled_io_nanos
                .fetch_add(self.profile.read_latency.as_nanos() as u64, Ordering::Relaxed);
        }
        Ok(idx)
    }

    /// Clock (second-chance) eviction within one shard.
    fn pick_victim(&self, shard: &mut Shard) -> DbResult<usize> {
        let n = shard.frames.len();
        for _ in 0..2 * n {
            let idx = shard.hand;
            shard.hand = (shard.hand + 1) % n;
            if shard.frames[idx].referenced {
                shard.frames[idx].referenced = false;
            } else {
                return Ok(idx);
            }
        }
        // Unreachable with the closure discipline (nothing stays pinned),
        // but keep the error path for safety.
        Err(DbError::BufferExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemStore::new()), capacity, DiskProfile::instant())
    }

    #[test]
    fn allocate_and_readback() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |data| data[0] = 42).unwrap();
        let v = p.with_page(id, |data| data[0]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn hits_do_not_count_as_physical() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        for _ in 0..10 {
            p.with_page(id, |_| ()).unwrap();
        }
        let s = p.stats();
        assert_eq!(s.logical_reads, 10);
        assert_eq!(s.physical_reads, 0, "resident page must not hit the store");
    }

    #[test]
    fn eviction_round_trips_through_store() {
        let p = pool(2);
        let ids: Vec<_> = (0..5).map(|_| p.allocate().unwrap()).collect();
        for (k, &id) in ids.iter().enumerate() {
            p.with_page_mut(id, |data| data[0] = k as u8).unwrap();
        }
        // All five pages survive a pool of two frames.
        for (k, &id) in ids.iter().enumerate() {
            let v = p.with_page(id, |data| data[0]).unwrap();
            assert_eq!(v, k as u8, "page {id}");
        }
        let s = p.stats();
        assert!(s.physical_reads > 0, "small pool must have missed");
        assert!(s.physical_writes > 0, "dirty evictions must write back");
    }

    #[test]
    fn working_set_within_capacity_stays_resident() {
        let p = pool(8);
        let ids: Vec<_> = (0..8).map(|_| p.allocate().unwrap()).collect();
        for &id in &ids {
            p.with_page_mut(id, |d| d[1] = 7).unwrap();
        }
        let before = p.stats().physical_reads;
        for _ in 0..100 {
            for &id in &ids {
                p.with_page(id, |_| ()).unwrap();
            }
        }
        assert_eq!(p.stats().physical_reads, before, "no misses expected");
    }

    #[test]
    fn modeled_latency_accumulates() {
        let store = Arc::new(MemStore::new());
        let p = BufferPool::new(
            store,
            1,
            DiskProfile {
                read_latency: Duration::from_micros(100),
                write_latency: Duration::from_micros(100),
            },
        );
        let a = p.allocate().unwrap();
        let b = p.allocate().unwrap();
        // Ping-pong between two pages in a single frame.
        for _ in 0..5 {
            p.with_page_mut(a, |d| d[0] += 1).unwrap();
            p.with_page_mut(b, |d| d[0] += 1).unwrap();
        }
        let s = p.stats();
        assert!(s.modeled_io >= Duration::from_micros(100 * (s.physical_reads)));
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let store = Arc::new(MemStore::new());
        let p = BufferPool::new(store.clone(), 4, DiskProfile::instant());
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |d| d[7] = 99).unwrap();
        p.flush_all().unwrap();
        let mut raw = vec![0u8; PAGE_SIZE];
        store.read_page(id, &mut raw).unwrap();
        assert_eq!(raw[7], 99);
    }

    #[test]
    fn snapshot_since_subtracts() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        let before = p.stats();
        p.with_page(id, |_| ()).unwrap();
        p.with_page(id, |_| ()).unwrap();
        let delta = p.stats().since(&before);
        assert_eq!(delta.logical_reads, 2);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        pool(0);
    }

    #[test]
    fn shard_counts_scale_with_capacity() {
        // Starved pools stay single-latch (historical eviction behavior);
        // server-sized pools split up to the shard cap.
        for cap in [1, 2, 8, 127] {
            assert_eq!(pool(cap).shard_count(), 1, "capacity {cap}");
        }
        assert_eq!(pool(128).shard_count(), 2);
        assert_eq!(pool(256).shard_count(), 4);
        assert_eq!(pool(4096).shard_count(), MAX_SHARDS);
        assert_eq!(pool(262_144).shard_count(), MAX_SHARDS);
    }

    #[test]
    fn sharded_capacity_is_fully_distributed() {
        // Every frame of a sharded pool is usable: a working set equal to
        // the capacity, spread uniformly over page ids (and therefore over
        // shards), stays resident.
        let p = pool(256);
        assert!(p.shard_count() > 1);
        let ids: Vec<_> = (0..256).map(|_| p.allocate().unwrap()).collect();
        let before = p.stats().physical_reads;
        for _ in 0..50 {
            for &id in &ids {
                p.with_page(id, |_| ()).unwrap();
            }
        }
        assert_eq!(p.stats().physical_reads, before, "working set must stay resident");
    }

    #[test]
    fn concurrent_readers_under_eviction_see_consistent_pages() {
        // The satellite stress test: many readers over a page set ~2.3×
        // the pool, so shards continuously evict and reload while other
        // threads hold sibling latches. Every read must observe the bytes
        // written before the flush, from any thread, in any order.
        let p = std::sync::Arc::new(pool(256));
        assert!(p.shard_count() > 1, "stress test must cross shards");
        let ids: Vec<PageId> = (0..600).map(|_| p.allocate().unwrap()).collect();
        for (k, &id) in ids.iter().enumerate() {
            p.with_page_mut(id, |d| d[..8].copy_from_slice(&(k as u64).to_le_bytes()))
                .unwrap();
        }
        p.flush_all().unwrap();
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let p = std::sync::Arc::clone(&p);
                let ids = &ids;
                scope.spawn(move || {
                    for round in 0..3usize {
                        // Each thread walks the pages from a different
                        // offset so shard access patterns interleave.
                        let start = (t * 97 + round * 31) % ids.len();
                        for k in 0..ids.len() {
                            let k = (k + start) % ids.len();
                            let v = p
                                .with_page(ids[k], |d| {
                                    u64::from_le_bytes(d[..8].try_into().unwrap())
                                })
                                .unwrap();
                            assert_eq!(v, k as u64, "page {k} corrupted under eviction");
                        }
                    }
                });
            }
        });
        let s = p.stats();
        assert!(s.physical_reads > 0, "a 600-page set in 256 frames must evict and reload");
    }

    #[test]
    fn concurrent_readers_and_writers_are_safe() {
        // The pool is the only shared mutable state between partition
        // threads in principle; hammer it from several threads and verify
        // per-page sums (each page is only touched by its owner thread, as
        // in the share-nothing design, but through one pool).
        let p = std::sync::Arc::new(pool(8));
        let ids: Vec<PageId> = (0..4).map(|_| p.allocate().unwrap()).collect();
        std::thread::scope(|scope| {
            for (t, &id) in ids.iter().enumerate() {
                let p = std::sync::Arc::clone(&p);
                scope.spawn(move || {
                    for k in 0..500u32 {
                        p.with_page_mut(id, |d| {
                            let cur = u32::from_le_bytes(d[..4].try_into().unwrap());
                            d[..4].copy_from_slice(&(cur + 1).to_le_bytes());
                        })
                        .unwrap();
                        if k % 7 == 0 {
                            p.with_page(id, |d| {
                                assert_eq!(d[8], 0, "thread {t} page must stay zero beyond its counter");
                            })
                            .unwrap();
                        }
                    }
                });
            }
        });
        for &id in &ids {
            let v = p
                .with_page(id, |d| u32::from_le_bytes(d[..4].try_into().unwrap()))
                .unwrap();
            assert_eq!(v, 500);
        }
    }
}
