//! Column-major batches: the vectorized executor's exchange format.
//!
//! A [`ColumnBatch`] stores up to one operator batch of rows as typed
//! per-column buffers — `Vec<i64>` / `Vec<f64>` / a byte arena for text —
//! with a null *bitmap* per column instead of `Value::Null` sentinels.
//! Scans decode page payloads straight into these buffers
//! ([`ColumnBatch::push_wire`]) without materializing a `Row` per record,
//! filters evaluate compiled predicates as tight per-column loops
//! producing *selection vectors* ([`VPredicate::select`]), and joins
//! produce output batches by columnwise gather
//! ([`ColumnBatch::concat_gather`]). `Row`s exist again only at the
//! pipeline boundary (projection / aggregation output).
//!
//! Row ↔ batch conversion is lossless: every `Value` variant maps to its
//! own buffer type (`Int` is *not* widened to `BigInt`, `Real` not to
//! `Float`), float payloads preserve bits (NaN, -0.0), and NULL cells
//! round-trip through the bitmap regardless of the placeholder stored in
//! the typed buffer.
//!
//! [`VPredicate`] compiles the planner's residual predicates into branch-
//! light kernels over a tri-state truth vector (false / true / NULL —
//! SQL's three-valued logic). Only shapes whose columnar evaluation is
//! *provably identical* to row-at-a-time [`Expr::eval`] compile: numeric
//! column vs. numeric constant comparisons (both sides go through the same
//! `as f64` widening `Expr` uses), text column vs. text constant, BETWEEN
//! with constant numeric bounds, IS NULL on a column, NOT/AND/OR over
//! compiled operands. Everything else — arithmetic, column-to-column
//! comparisons, scalar functions — falls back to evaluating the original
//! expression on a reused scratch row, so results can never diverge from
//! the row pipeline.

use crate::error::{DbError, DbResult};
use crate::expr::{BinOp, Expr};
use crate::key::encode_value;
use crate::row::{self, Row};
use crate::value::{DataType, Value};
use bytes::Buf;
use std::collections::HashMap;

// ---- null bitmap ------------------------------------------------------------

/// Per-column null bitmap: bit set ⇒ the cell is NULL. The typed buffer
/// holds an arbitrary placeholder at null positions (0 / 0.0 / empty
/// string), keeping the buffers dense and loops branch-light.
#[derive(Debug, Clone, Default)]
pub struct NullMask {
    bits: Vec<u64>,
    len: usize,
}

impl NullMask {
    fn with_capacity(cap: usize) -> NullMask {
        NullMask { bits: Vec::with_capacity(cap.div_ceil(64)), len: 0 }
    }

    #[inline]
    fn push(&mut self, null: bool) {
        let word = self.len / 64;
        if word == self.bits.len() {
            self.bits.push(0);
        }
        if null {
            self.bits[word] |= 1 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Is row `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.bits[i / 64] & (1 << (i % 64)) != 0
    }

    /// Number of NULL rows.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Any NULL at all? (Lets kernels skip the bitmap probe entirely.)
    pub fn any(&self) -> bool {
        self.bits.iter().any(|&w| w != 0)
    }

    fn gather(&self, sel: &[u32]) -> NullMask {
        let mut out = NullMask::with_capacity(sel.len());
        for &i in sel {
            out.push(self.is_null(i as usize));
        }
        out
    }

    fn extend(&mut self, other: &NullMask) {
        for i in 0..other.len {
            self.push(other.is_null(i));
        }
    }
}

// ---- columns ----------------------------------------------------------------

/// The typed buffer of one column. Text uses a shared byte arena with an
/// offsets vector (`offsets.len() == rows + 1`), so a batch of strings is
/// two allocations, not one per row.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// `bigint` buffer.
    BigInt(Vec<i64>),
    /// `int` buffer.
    Int(Vec<i32>),
    /// `real` buffer.
    Real(Vec<f32>),
    /// `float` buffer.
    Float(Vec<f64>),
    /// `text` arena: `bytes[offsets[i]..offsets[i+1]]` is row `i`.
    Text {
        /// Row boundaries into `bytes` (always `rows + 1` entries).
        offsets: Vec<u32>,
        /// Concatenated UTF-8 payloads.
        bytes: Vec<u8>,
    },
}

/// One column of a [`ColumnBatch`]: typed buffer plus null bitmap.
#[derive(Debug, Clone)]
pub struct Column {
    /// Typed values (placeholders at null positions).
    pub data: ColumnData,
    /// Which rows are NULL.
    pub nulls: NullMask,
}

impl Column {
    fn with_capacity(dtype: DataType, cap: usize) -> Column {
        let data = match dtype {
            DataType::BigInt => ColumnData::BigInt(Vec::with_capacity(cap)),
            DataType::Int => ColumnData::Int(Vec::with_capacity(cap)),
            DataType::Real => ColumnData::Real(Vec::with_capacity(cap)),
            DataType::Float => ColumnData::Float(Vec::with_capacity(cap)),
            DataType::Text => ColumnData::Text {
                offsets: {
                    let mut v = Vec::with_capacity(cap + 1);
                    v.push(0);
                    v
                },
                bytes: Vec::new(),
            },
        };
        Column { data, nulls: NullMask::with_capacity(cap) }
    }

    /// The column's declared type.
    pub fn dtype(&self) -> DataType {
        match &self.data {
            ColumnData::BigInt(_) => DataType::BigInt,
            ColumnData::Int(_) => DataType::Int,
            ColumnData::Real(_) => DataType::Real,
            ColumnData::Float(_) => DataType::Float,
            ColumnData::Text { .. } => DataType::Text,
        }
    }

    /// Is the cell at row `i` NULL?
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        self.nulls.is_null(i)
    }

    #[inline]
    fn push_null(&mut self) {
        match &mut self.data {
            ColumnData::BigInt(v) => v.push(0),
            ColumnData::Int(v) => v.push(0),
            ColumnData::Real(v) => v.push(0.0),
            ColumnData::Float(v) => v.push(0.0),
            ColumnData::Text { offsets, .. } => offsets.push(*offsets.last().expect("base offset")),
        }
        self.nulls.push(true);
    }

    fn push_value(&mut self, v: &Value) -> DbResult<()> {
        match (&mut self.data, v) {
            (_, Value::Null) => {
                self.push_null();
                return Ok(());
            }
            (ColumnData::BigInt(buf), Value::BigInt(x)) => buf.push(*x),
            (ColumnData::Int(buf), Value::Int(x)) => buf.push(*x),
            (ColumnData::Real(buf), Value::Real(x)) => buf.push(*x),
            (ColumnData::Float(buf), Value::Float(x)) => buf.push(*x),
            (ColumnData::Text { offsets, bytes }, Value::Text(s)) => {
                bytes.extend_from_slice(s.as_bytes());
                offsets.push(bytes.len() as u32);
            }
            (_, v) => {
                return Err(DbError::TypeError(format!(
                    "cannot store {v} in a {} column buffer",
                    self.dtype()
                )))
            }
        }
        self.nulls.push(false);
        Ok(())
    }

    /// Materialize the cell at row `i` as a `Value` (the only place a
    /// per-cell allocation can happen, and only for text).
    pub fn value(&self, i: usize) -> Value {
        if self.nulls.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::BigInt(v) => Value::BigInt(v[i]),
            ColumnData::Int(v) => Value::Int(v[i]),
            ColumnData::Real(v) => Value::Real(v[i]),
            ColumnData::Float(v) => Value::Float(v[i]),
            ColumnData::Text { offsets, bytes } => {
                let s = &bytes[offsets[i] as usize..offsets[i + 1] as usize];
                Value::Text(String::from_utf8(s.to_vec()).expect("validated on ingest"))
            }
        }
    }

    /// Text payload of row `i` as bytes (NULL and non-text return `None`).
    #[inline]
    pub fn text_at(&self, i: usize) -> Option<&[u8]> {
        if self.nulls.is_null(i) {
            return None;
        }
        match &self.data {
            ColumnData::Text { offsets, bytes } => {
                Some(&bytes[offsets[i] as usize..offsets[i + 1] as usize])
            }
            _ => None,
        }
    }

    fn gather(&self, sel: &[u32]) -> Column {
        let data = match &self.data {
            ColumnData::BigInt(v) => {
                ColumnData::BigInt(sel.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnData::Int(v) => ColumnData::Int(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Real(v) => ColumnData::Real(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Float(v) => ColumnData::Float(sel.iter().map(|&i| v[i as usize]).collect()),
            ColumnData::Text { offsets, bytes } => {
                let mut out_off = Vec::with_capacity(sel.len() + 1);
                out_off.push(0u32);
                let mut out_bytes = Vec::new();
                for &i in sel {
                    let i = i as usize;
                    out_bytes.extend_from_slice(&bytes[offsets[i] as usize..offsets[i + 1] as usize]);
                    out_off.push(out_bytes.len() as u32);
                }
                ColumnData::Text { offsets: out_off, bytes: out_bytes }
            }
        };
        Column { data, nulls: self.nulls.gather(sel) }
    }

    fn extend_from(&mut self, other: &Column) -> DbResult<()> {
        match (&mut self.data, &other.data) {
            (ColumnData::BigInt(a), ColumnData::BigInt(b)) => a.extend_from_slice(b),
            (ColumnData::Int(a), ColumnData::Int(b)) => a.extend_from_slice(b),
            (ColumnData::Real(a), ColumnData::Real(b)) => a.extend_from_slice(b),
            (ColumnData::Float(a), ColumnData::Float(b)) => a.extend_from_slice(b),
            (
                ColumnData::Text { offsets: ao, bytes: ab },
                ColumnData::Text { offsets: bo, bytes: bb },
            ) => {
                let base = ab.len() as u32;
                ab.extend_from_slice(bb);
                ao.extend(bo.iter().skip(1).map(|&o| base + o));
            }
            _ => {
                return Err(DbError::TypeError(format!(
                    "cannot append a {} column to a {} column",
                    other.dtype(),
                    self.dtype()
                )))
            }
        }
        self.nulls.extend(&other.nulls);
        Ok(())
    }
}

// ---- batches ----------------------------------------------------------------

/// A column-major batch of rows: the native exchange format of the
/// vectorized operator pipeline (see the module docs).
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    cols: Vec<Column>,
    len: usize,
}

impl ColumnBatch {
    /// An empty batch with per-column buffers sized for `cap` rows.
    pub fn with_capacity(dtypes: &[DataType], cap: usize) -> ColumnBatch {
        ColumnBatch {
            cols: dtypes.iter().map(|&t| Column::with_capacity(t, cap)).collect(),
            len: 0,
        }
    }

    /// Rows in the batch.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// Per-column declared types.
    pub fn dtypes(&self) -> Vec<DataType> {
        self.cols.iter().map(Column::dtype).collect()
    }

    /// Borrow column `c`.
    pub fn col(&self, c: usize) -> &Column {
        &self.cols[c]
    }

    /// Materialize cell `(c, i)`.
    pub fn value(&self, c: usize, i: usize) -> Value {
        self.cols[c].value(i)
    }

    /// Append one materialized row. Value variants must match the batch's
    /// column types exactly (NULL fits everywhere) — the lossless-ingest
    /// contract the round-trip property test pins down.
    pub fn push_row(&mut self, row: &Row) -> DbResult<()> {
        if row.arity() != self.cols.len() {
            return Err(DbError::SchemaMismatch(format!(
                "row arity {} != batch arity {}",
                row.arity(),
                self.cols.len()
            )));
        }
        for (col, v) in self.cols.iter_mut().zip(row.values()) {
            col.push_value(v)?;
        }
        self.len += 1;
        Ok(())
    }

    /// Decode one row-codec payload (see [`crate::row`]) straight into the
    /// column buffers — the no-`Row` scan path. The wire tags must match
    /// the batch's column types (they do for any schema-checked table);
    /// trailing bytes are corruption, exactly as in [`Row::decode`].
    pub fn push_wire(&mut self, mut buf: &[u8]) -> DbResult<()> {
        for col in &mut self.cols {
            if !buf.has_remaining() {
                return Err(DbError::Corrupt("row truncated".into()));
            }
            let tag = buf.get_u8();
            if tag == row::TAG_NULL {
                col.push_null();
                continue;
            }
            match (&mut col.data, tag) {
                (ColumnData::BigInt(v), row::TAG_BIGINT) => {
                    ensure(buf.remaining() >= 8)?;
                    v.push(buf.get_i64_le());
                }
                (ColumnData::Int(v), row::TAG_INT) => {
                    ensure(buf.remaining() >= 4)?;
                    v.push(buf.get_i32_le());
                }
                (ColumnData::Real(v), row::TAG_REAL) => {
                    ensure(buf.remaining() >= 4)?;
                    v.push(buf.get_f32_le());
                }
                (ColumnData::Float(v), row::TAG_FLOAT) => {
                    ensure(buf.remaining() >= 8)?;
                    v.push(buf.get_f64_le());
                }
                (ColumnData::Text { offsets, bytes }, row::TAG_TEXT) => {
                    ensure(buf.remaining() >= 4)?;
                    let len = buf.get_u32_le() as usize;
                    ensure(buf.remaining() >= len)?;
                    std::str::from_utf8(&buf[..len])
                        .map_err(|_| DbError::Corrupt("invalid utf8 in text value".into()))?;
                    bytes.extend_from_slice(&buf[..len]);
                    offsets.push(bytes.len() as u32);
                    buf.advance(len);
                }
                _ => {
                    return Err(DbError::Corrupt(format!(
                        "value tag {tag} does not fit a {} column",
                        col.dtype()
                    )))
                }
            }
            col.nulls.push(false);
        }
        if buf.has_remaining() {
            return Err(DbError::Corrupt(format!("{} trailing bytes after row", buf.remaining())));
        }
        self.len += 1;
        Ok(())
    }

    /// Build a batch from materialized rows (see [`ColumnBatch::push_row`]).
    pub fn from_rows(dtypes: &[DataType], rows: &[Row]) -> DbResult<ColumnBatch> {
        let mut b = ColumnBatch::with_capacity(dtypes, rows.len());
        for row in rows {
            b.push_row(row)?;
        }
        Ok(b)
    }

    /// Materialize every row (the inverse of [`ColumnBatch::from_rows`]).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Materialize row `i`.
    pub fn row(&self, i: usize) -> Row {
        Row(self.cols.iter().map(|c| c.value(i)).collect())
    }

    /// Materialize row `i` into a reused buffer (scratch rows for the
    /// row-fallback predicate path and expression projection).
    pub fn read_row_into(&self, i: usize, out: &mut Vec<Value>) {
        out.clear();
        out.extend(self.cols.iter().map(|c| c.value(i)));
    }

    /// Columnwise gather: the batch containing exactly the selected rows,
    /// in selection order.
    pub fn gather(&self, sel: &[u32]) -> ColumnBatch {
        ColumnBatch { cols: self.cols.iter().map(|c| c.gather(sel)).collect(), len: sel.len() }
    }

    /// Append all of `other`'s rows (columns must match in type).
    pub fn extend_from(&mut self, other: &ColumnBatch) -> DbResult<()> {
        if self.cols.len() != other.cols.len() {
            return Err(DbError::SchemaMismatch(format!(
                "batch arity {} != {}",
                other.cols.len(),
                self.cols.len()
            )));
        }
        for (a, b) in self.cols.iter_mut().zip(&other.cols) {
            a.extend_from(b)?;
        }
        self.len += other.len;
        Ok(())
    }

    /// Join-output constructor: left columns gathered by `li` concatenated
    /// with right columns gathered by `ri` (`li.len() == ri.len()` pairs).
    pub fn concat_gather(
        left: &ColumnBatch,
        li: &[u32],
        right: &ColumnBatch,
        ri: &[u32],
    ) -> ColumnBatch {
        debug_assert_eq!(li.len(), ri.len());
        let mut cols = Vec::with_capacity(left.cols.len() + right.cols.len());
        cols.extend(left.cols.iter().map(|c| c.gather(li)));
        cols.extend(right.cols.iter().map(|c| c.gather(ri)));
        ColumnBatch { cols, len: li.len() }
    }
}

fn ensure(ok: bool) -> DbResult<()> {
    if ok {
        Ok(())
    } else {
        Err(DbError::Corrupt("row truncated".into()))
    }
}

// ---- vectorized predicates --------------------------------------------------

/// Tri-state truth values in kernel output vectors.
const T_FALSE: u8 = 0;
const T_TRUE: u8 = 1;
const T_NULL: u8 = 2;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    fn of(op: BinOp) -> Option<CmpOp> {
        Some(match op {
            BinOp::Lt => CmpOp::Lt,
            BinOp::Le => CmpOp::Le,
            BinOp::Gt => CmpOp::Gt,
            BinOp::Ge => CmpOp::Ge,
            BinOp::Eq => CmpOp::Eq,
            BinOp::Ne => CmpOp::Ne,
            _ => return None,
        })
    }

    /// `a OP b` flipped to `b OP' a` (for `lit OP col` conjuncts).
    fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }

    #[inline]
    fn apply_f64(self, x: f64, y: f64) -> bool {
        match self {
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
        }
    }

    #[inline]
    fn apply_bytes(self, x: &[u8], y: &[u8]) -> bool {
        match self {
            CmpOp::Lt => x < y,
            CmpOp::Le => x <= y,
            CmpOp::Gt => x > y,
            CmpOp::Ge => x >= y,
            CmpOp::Eq => x == y,
            CmpOp::Ne => x != y,
        }
    }
}

/// A compiled predicate node evaluating to a tri-state vector.
#[derive(Debug, Clone)]
enum Kernel {
    /// `col OP constant` over a numeric column — both sides widened to
    /// `f64`, exactly as [`crate::expr`]'s `eval_bin` widens them.
    CmpNum { col: usize, op: CmpOp, lit: f64 },
    /// `col OP constant` over a text column (byte-wise, like `String` Ord).
    CmpText { col: usize, op: CmpOp, lit: String },
    /// `col BETWEEN lo AND hi` with constant numeric bounds (inclusive).
    BetweenNum { col: usize, lo: f64, hi: f64 },
    /// `col IS NULL` (never yields NULL itself).
    IsNullCol { col: usize },
    /// A bare numeric column as a predicate (`truthy`: value != 0).
    TruthyCol { col: usize },
    /// `NOT k` (NULL stays NULL).
    Not(Box<Kernel>),
    /// Three-valued AND (false dominates NULL).
    And(Box<Kernel>, Box<Kernel>),
    /// Three-valued OR (true dominates NULL).
    Or(Box<Kernel>, Box<Kernel>),
}

/// A predicate ready for columnar evaluation: either a compiled kernel
/// tree or the original expression evaluated row-at-a-time on a scratch
/// row. Compile once per operator, evaluate once per batch.
#[derive(Debug, Clone)]
pub struct VPredicate {
    inner: Pred,
}

#[derive(Debug, Clone)]
enum Pred {
    /// Fully compiled: tight per-column loops, no `Value` materialization.
    Compiled(Kernel),
    /// Row-at-a-time fallback, bit-identical to the row pipeline by
    /// construction (it *is* the row pipeline's evaluator).
    Fallback(Expr),
}

impl VPredicate {
    /// Compile `pred` against the input's column types. Shapes without a
    /// provably identical columnar kernel fall back to row-at-a-time
    /// evaluation of the original expression.
    pub fn compile(pred: &Expr, dtypes: &[DataType]) -> VPredicate {
        let inner = match compile_kernel(pred, dtypes) {
            Some(k) => Pred::Compiled(k),
            None => Pred::Fallback(pred.clone()),
        };
        VPredicate { inner }
    }

    /// Was the whole predicate compiled to columnar kernels?
    pub fn is_compiled(&self) -> bool {
        matches!(self.inner, Pred::Compiled(_))
    }

    /// Evaluate over a batch, returning the selection vector: indices of
    /// the rows where the predicate is *true* (NULL counts as false, as in
    /// SQL `WHERE`), in row order.
    pub fn select(&self, batch: &ColumnBatch) -> DbResult<Vec<u32>> {
        let n = batch.len();
        let mut sel = Vec::with_capacity(n);
        if n == 0 {
            return Ok(sel);
        }
        match &self.inner {
            Pred::Compiled(k) => {
                let mut truth = vec![T_FALSE; n];
                k.eval(batch, &mut truth);
                for (i, &t) in truth.iter().enumerate() {
                    if t == T_TRUE {
                        sel.push(i as u32);
                    }
                }
            }
            Pred::Fallback(expr) => {
                let mut scratch = Row(Vec::with_capacity(batch.num_cols()));
                for i in 0..n {
                    batch.read_row_into(i, &mut scratch.0);
                    if expr.matches(&scratch)? {
                        sel.push(i as u32);
                    }
                }
            }
        }
        Ok(sel)
    }
}

/// Numeric view of a column for comparison kernels: `None` when the
/// column is text (whose comparisons against numeric constants must go
/// through the row path to reproduce its type errors).
fn numeric(dtypes: &[DataType], col: usize) -> bool {
    matches!(
        dtypes.get(col),
        Some(DataType::BigInt | DataType::Int | DataType::Real | DataType::Float)
    )
}

fn num_lit(v: &Value) -> Option<f64> {
    match v {
        Value::BigInt(_) | Value::Int(_) | Value::Real(_) | Value::Float(_) => {
            Some(v.as_f64().expect("numeric"))
        }
        _ => None,
    }
}

fn compile_kernel(pred: &Expr, dtypes: &[DataType]) -> Option<Kernel> {
    match pred {
        Expr::Bin(BinOp::And, a, b) => Some(Kernel::And(
            Box::new(compile_kernel(a, dtypes)?),
            Box::new(compile_kernel(b, dtypes)?),
        )),
        Expr::Bin(BinOp::Or, a, b) => Some(Kernel::Or(
            Box::new(compile_kernel(a, dtypes)?),
            Box::new(compile_kernel(b, dtypes)?),
        )),
        Expr::Bin(op, a, b) => {
            let op = CmpOp::of(*op)?;
            let (col, lit, op) = match (a.as_ref(), b.as_ref()) {
                (Expr::Col(c), Expr::Lit(v)) => (*c, v, op),
                (Expr::Lit(v), Expr::Col(c)) => (*c, v, op.flip()),
                _ => return None,
            };
            match (dtypes.get(col)?, lit) {
                (DataType::Text, Value::Text(s)) => {
                    Some(Kernel::CmpText { col, op, lit: s.clone() })
                }
                (DataType::Text, _) => None,
                _ => num_lit(lit).map(|lit| Kernel::CmpNum { col, op, lit }),
            }
        }
        Expr::Between(v, lo, hi) => {
            let (Expr::Col(c), Expr::Lit(lo), Expr::Lit(hi)) = (v.as_ref(), lo.as_ref(), hi.as_ref())
            else {
                return None;
            };
            if !numeric(dtypes, *c) {
                return None;
            }
            Some(Kernel::BetweenNum { col: *c, lo: num_lit(lo)?, hi: num_lit(hi)? })
        }
        Expr::IsNull(a) => match a.as_ref() {
            Expr::Col(c) if *c < dtypes.len() => Some(Kernel::IsNullCol { col: *c }),
            _ => None,
        },
        Expr::Not(a) => Some(Kernel::Not(Box::new(compile_kernel(a, dtypes)?))),
        Expr::Col(c) if numeric(dtypes, *c) => Some(Kernel::TruthyCol { col: *c }),
        _ => None,
    }
}

impl Kernel {
    fn eval(&self, batch: &ColumnBatch, out: &mut [u8]) {
        match self {
            Kernel::CmpNum { col, op, lit } => {
                let c = batch.col(*col);
                cmp_num_kernel(c, *op, *lit, out);
            }
            Kernel::CmpText { col, op, lit } => {
                let c = batch.col(*col);
                let y = lit.as_bytes();
                if let ColumnData::Text { offsets, bytes } = &c.data {
                    for (i, t) in out.iter_mut().enumerate() {
                        *t = if c.nulls.is_null(i) {
                            T_NULL
                        } else {
                            let x = &bytes[offsets[i] as usize..offsets[i + 1] as usize];
                            op.apply_bytes(x, y) as u8
                        };
                    }
                }
            }
            Kernel::BetweenNum { col, lo, hi } => {
                between_kernel(batch.col(*col), *lo, *hi, out);
            }
            Kernel::IsNullCol { col } => {
                let c = batch.col(*col);
                for (i, t) in out.iter_mut().enumerate() {
                    *t = c.nulls.is_null(i) as u8;
                }
            }
            Kernel::TruthyCol { col } => {
                let c = batch.col(*col);
                cmp_num_kernel(c, CmpOp::Ne, 0.0, out);
            }
            Kernel::Not(k) => {
                k.eval(batch, out);
                for t in out.iter_mut() {
                    // 0 ↔ 1, NULL stays NULL.
                    if *t != T_NULL {
                        *t ^= 1;
                    }
                }
            }
            Kernel::And(a, b) => {
                a.eval(batch, out);
                let mut rhs = vec![T_FALSE; out.len()];
                b.eval(batch, &mut rhs);
                for (t, &r) in out.iter_mut().zip(&rhs) {
                    // false dominates; otherwise NULL dominates.
                    *t = if *t == T_FALSE || r == T_FALSE {
                        T_FALSE
                    } else if *t == T_NULL || r == T_NULL {
                        T_NULL
                    } else {
                        T_TRUE
                    };
                }
            }
            Kernel::Or(a, b) => {
                a.eval(batch, out);
                let mut rhs = vec![T_FALSE; out.len()];
                b.eval(batch, &mut rhs);
                for (t, &r) in out.iter_mut().zip(&rhs) {
                    // true dominates; otherwise NULL dominates.
                    *t = if *t == T_TRUE || r == T_TRUE {
                        T_TRUE
                    } else if *t == T_NULL || r == T_NULL {
                        T_NULL
                    } else {
                        T_FALSE
                    };
                }
            }
        }
    }
}

/// `column OP lit` over every row: one tight loop per buffer type. The
/// no-NULL fast path drops the bitmap probe so the loop autovectorizes.
fn cmp_num_kernel(c: &Column, op: CmpOp, lit: f64, out: &mut [u8]) {
    macro_rules! run {
        ($vals:expr) => {{
            let vals = $vals;
            if c.nulls.any() {
                for (i, t) in out.iter_mut().enumerate() {
                    *t = if c.nulls.is_null(i) {
                        T_NULL
                    } else {
                        op.apply_f64(vals[i] as f64, lit) as u8
                    };
                }
            } else {
                for (t, &v) in out.iter_mut().zip(vals.iter()) {
                    *t = op.apply_f64(v as f64, lit) as u8;
                }
            }
        }};
    }
    match &c.data {
        ColumnData::BigInt(v) => run!(v),
        ColumnData::Int(v) => run!(v),
        ColumnData::Real(v) => run!(v),
        ColumnData::Float(v) => run!(v),
        // Unreachable by compilation rules; mark every row NULL (filters
        // drop NULL) rather than panic.
        ColumnData::Text { .. } => out.fill(T_NULL),
    }
}

/// `lo <= column <= hi` (both numeric constants) in one pass.
fn between_kernel(c: &Column, lo: f64, hi: f64, out: &mut [u8]) {
    macro_rules! run {
        ($vals:expr) => {{
            let vals = $vals;
            if c.nulls.any() {
                for (i, t) in out.iter_mut().enumerate() {
                    *t = if c.nulls.is_null(i) {
                        T_NULL
                    } else {
                        let x = vals[i] as f64;
                        (x >= lo && x <= hi) as u8
                    };
                }
            } else {
                for (t, &v) in out.iter_mut().zip(vals.iter()) {
                    let x = v as f64;
                    *t = (x >= lo && x <= hi) as u8;
                }
            }
        }};
    }
    match &c.data {
        ColumnData::BigInt(v) => run!(v),
        ColumnData::Int(v) => run!(v),
        ColumnData::Real(v) => run!(v),
        ColumnData::Float(v) => run!(v),
        ColumnData::Text { .. } => out.fill(T_NULL),
    }
}

// ---- columnar hash join -----------------------------------------------------

/// Build-side key directory for the vectorized hash join. The planner
/// picks the hash path only for same-`DataType` integer or text
/// equalities, so keys hash on the native representation (`i64` for both
/// integer widths within one type, arena bytes for text) — equality on
/// those is exactly the `=` predicate. NULL keys are skipped on both
/// sides, per SQL three-valued logic.
pub struct ColumnHashTable {
    build: ColumnBatch,
    map: KeyMap,
}

enum KeyMap {
    Int(HashMap<i64, Vec<u32>>),
    Text(HashMap<Vec<u8>, Vec<u32>>),
}

impl ColumnHashTable {
    /// Hash `build` on `key_col`.
    pub fn build(build: ColumnBatch, key_col: usize) -> DbResult<ColumnHashTable> {
        let col = build.col(key_col);
        let map = match &col.data {
            ColumnData::BigInt(v) => {
                let mut m: HashMap<i64, Vec<u32>> = HashMap::with_capacity(v.len());
                for (i, &k) in v.iter().enumerate() {
                    if !col.nulls.is_null(i) {
                        m.entry(k).or_default().push(i as u32);
                    }
                }
                KeyMap::Int(m)
            }
            ColumnData::Int(v) => {
                let mut m: HashMap<i64, Vec<u32>> = HashMap::with_capacity(v.len());
                for (i, &k) in v.iter().enumerate() {
                    if !col.nulls.is_null(i) {
                        m.entry(i64::from(k)).or_default().push(i as u32);
                    }
                }
                KeyMap::Int(m)
            }
            ColumnData::Text { offsets, bytes } => {
                let mut m: HashMap<Vec<u8>, Vec<u32>> = HashMap::with_capacity(offsets.len());
                for i in 0..build.len() {
                    if !col.nulls.is_null(i) {
                        let k = bytes[offsets[i] as usize..offsets[i + 1] as usize].to_vec();
                        m.entry(k).or_default().push(i as u32);
                    }
                }
                KeyMap::Text(m)
            }
            other => {
                return Err(DbError::TypeError(format!(
                    "hash join key must be integer or text, got {:?}",
                    other
                )))
            }
        };
        Ok(ColumnHashTable { build, map })
    }

    /// Rows on the build side.
    pub fn build_rows(&self) -> usize {
        self.build.len()
    }

    /// Probe with a batch of left rows, emitting the concatenated output
    /// batch in left-major order with build rows in input order — exactly
    /// the order the row pipeline's hash join (and the nested loop)
    /// produces. The key column is hashed columnwise; output columns are
    /// built by gather, never row by row.
    pub fn probe(&self, left: &ColumnBatch, left_col: usize) -> DbResult<ColumnBatch> {
        let col = left.col(left_col);
        let mut li: Vec<u32> = Vec::new();
        let mut ri: Vec<u32> = Vec::new();
        let mut push = |i: usize, hits: &[u32]| {
            li.extend(std::iter::repeat_n(i as u32, hits.len()));
            ri.extend_from_slice(hits);
        };
        match (&self.map, &col.data) {
            (KeyMap::Int(m), ColumnData::BigInt(v)) => {
                for (i, &k) in v.iter().enumerate() {
                    if !col.nulls.is_null(i) {
                        if let Some(hits) = m.get(&k) {
                            push(i, hits);
                        }
                    }
                }
            }
            (KeyMap::Int(m), ColumnData::Int(v)) => {
                for (i, &k) in v.iter().enumerate() {
                    if !col.nulls.is_null(i) {
                        if let Some(hits) = m.get(&i64::from(k)) {
                            push(i, hits);
                        }
                    }
                }
            }
            (KeyMap::Text(m), ColumnData::Text { offsets, bytes }) => {
                for i in 0..left.len() {
                    if !col.nulls.is_null(i) {
                        let k = &bytes[offsets[i] as usize..offsets[i + 1] as usize];
                        if let Some(hits) = m.get(k) {
                            push(i, hits);
                        }
                    }
                }
            }
            _ => {
                return Err(DbError::TypeError(
                    "hash join probe key type does not match the build side".into(),
                ))
            }
        }
        Ok(ColumnBatch::concat_gather(left, &li, &self.build, &ri))
    }
}

/// Encode the cell `(col, i)` with the order-preserving key codec into a
/// reused scratch buffer (hash-join key parity with the row pipeline's
/// `encode_key`, minus its per-row allocation).
pub fn encode_cell_key(batch: &ColumnBatch, col: usize, i: usize, out: &mut Vec<u8>) {
    out.clear();
    encode_value(&batch.value(col, i), out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dtypes() -> Vec<DataType> {
        vec![DataType::BigInt, DataType::Int, DataType::Real, DataType::Float, DataType::Text]
    }

    fn rows() -> Vec<Row> {
        vec![
            Row(vec![
                Value::BigInt(i64::MAX),
                Value::Int(-7),
                Value::Real(2.5),
                Value::Float(-0.0),
                Value::Text(String::new()),
            ]),
            Row(vec![Value::Null, Value::Null, Value::Null, Value::Null, Value::Null]),
            Row(vec![
                Value::BigInt(-42),
                Value::Int(i32::MIN),
                Value::Real(f32::NAN),
                Value::Float(f64::INFINITY),
                Value::Text("skyserver".into()),
            ]),
        ]
    }

    #[test]
    fn row_batch_roundtrip_is_lossless() {
        let batch = ColumnBatch::from_rows(&dtypes(), &rows()).unwrap();
        assert_eq!(batch.len(), 3);
        let back = batch.to_rows();
        for (a, b) in rows().iter().zip(&back) {
            assert_eq!(a.encode(), b.encode(), "byte-exact round trip");
        }
    }

    #[test]
    fn wire_decode_matches_row_decode() {
        let mut batch = ColumnBatch::with_capacity(&dtypes(), 4);
        for row in rows() {
            batch.push_wire(&row.encode()).unwrap();
        }
        for (i, row) in rows().iter().enumerate() {
            assert_eq!(batch.row(i).encode(), row.encode());
        }
    }

    #[test]
    fn wire_decode_rejects_mismatched_tags_and_trailing_bytes() {
        let mut batch = ColumnBatch::with_capacity(&[DataType::Int], 1);
        let bigint = Row(vec![Value::BigInt(1)]).encode();
        assert!(batch.push_wire(&bigint).is_err());
        let mut ok = Row(vec![Value::Int(1)]).encode();
        ok.push(0);
        assert!(batch.push_wire(&ok).is_err());
    }

    #[test]
    fn gather_and_extend_preserve_values() {
        let batch = ColumnBatch::from_rows(&dtypes(), &rows()).unwrap();
        let picked = batch.gather(&[2, 0]);
        assert_eq!(picked.row(0).encode(), rows()[2].encode());
        assert_eq!(picked.row(1).encode(), rows()[0].encode());
        let mut all = ColumnBatch::with_capacity(&dtypes(), 0);
        all.extend_from(&batch).unwrap();
        all.extend_from(&picked).unwrap();
        assert_eq!(all.len(), 5);
        assert_eq!(all.row(3).encode(), rows()[2].encode());
    }

    #[test]
    fn compiled_selection_matches_row_at_a_time() {
        let dt = vec![DataType::Float, DataType::Int];
        let rows: Vec<Row> = (0..10)
            .map(|i| {
                Row(vec![
                    if i % 4 == 0 { Value::Null } else { Value::Float(f64::from(i)) },
                    Value::Int(i % 3),
                ])
            })
            .collect();
        let batch = ColumnBatch::from_rows(&dt, &rows).unwrap();
        let pred = Expr::Col(0)
            .between(Expr::lit(2.0), Expr::lit(8.0))
            .and(Expr::Col(1).bin(BinOp::Ne, Expr::lit(1i32)));
        let vp = VPredicate::compile(&pred, &dt);
        assert!(vp.is_compiled());
        let sel = vp.select(&batch).unwrap();
        let expect: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, r)| pred.matches(r).unwrap())
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(sel, expect);
    }

    #[test]
    fn arithmetic_predicates_fall_back() {
        let dt = vec![DataType::Float];
        let pred = Expr::Col(0).bin(BinOp::Add, Expr::lit(1.0)).bin(BinOp::Gt, Expr::lit(3.0));
        let vp = VPredicate::compile(&pred, &dt);
        assert!(!vp.is_compiled());
        let rows = vec![Row(vec![Value::Float(1.0)]), Row(vec![Value::Float(5.0)])];
        let batch = ColumnBatch::from_rows(&dt, &rows).unwrap();
        assert_eq!(vp.select(&batch).unwrap(), vec![1]);
    }

    #[test]
    fn columnar_hash_join_probe_orders_like_nested_loop() {
        let ldt = vec![DataType::Int, DataType::Float];
        let rdt = vec![DataType::Int, DataType::Text];
        let left = ColumnBatch::from_rows(
            &ldt,
            &[
                Row(vec![Value::Int(1), Value::Float(0.5)]),
                Row(vec![Value::Null, Value::Float(1.5)]),
                Row(vec![Value::Int(2), Value::Float(2.5)]),
            ],
        )
        .unwrap();
        let right = ColumnBatch::from_rows(
            &rdt,
            &[
                Row(vec![Value::Int(2), Value::Text("a".into())]),
                Row(vec![Value::Int(1), Value::Text("b".into())]),
                Row(vec![Value::Int(2), Value::Text("c".into())]),
            ],
        )
        .unwrap();
        let table = ColumnHashTable::build(right, 0).unwrap();
        let out = table.probe(&left, 0).unwrap();
        let got: Vec<Vec<u8>> = out.to_rows().iter().map(Row::encode).collect();
        let want: Vec<Vec<u8>> = [
            Row(vec![Value::Int(1), Value::Float(0.5), Value::Int(1), Value::Text("b".into())]),
            Row(vec![Value::Int(2), Value::Float(2.5), Value::Int(2), Value::Text("a".into())]),
            Row(vec![Value::Int(2), Value::Float(2.5), Value::Int(2), Value::Text("c".into())]),
        ]
        .iter()
        .map(Row::encode)
        .collect();
        assert_eq!(got, want);
    }
}
