//! The database facade: a catalog of heap and clustered tables over one
//! buffer pool, with task-scoped statistics and cursors.

use crate::btree::BTree;
use crate::buffer::{BufferPool, DiskProfile, IoSnapshot};
use crate::colbatch::ColumnBatch;
use crate::error::{DbError, DbResult};
use crate::heap::{HeapFile, RowId};
use crate::key::encode_key;
use crate::mvcc::MvccState;
use crate::page;
use crate::row::Row;
use crate::schema::{Column, Schema};
use crate::expr::Expr;
use crate::stats::{TableStats, TaskStats};
use crate::store::{FileStore, MemStore, PageId, PageStore};
use crate::value::{DataType, Value};
use crate::wal::{Wal, WalConfig};
use parking_lot::RwLock;
use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::Arc;
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct DbConfig {
    /// Buffer pool size in 8 KiB frames.
    pub buffer_frames: usize,
    /// Latency model for the simulated disk.
    pub disk: DiskProfile,
}

impl DbConfig {
    /// The paper-like server profile: a 2 GB buffer pool (the TAM-era SQL
    /// cluster nodes had 2 GB of RAM) over a modeled spinning disk.
    pub fn server() -> Self {
        DbConfig { buffer_frames: 262_144, disk: DiskProfile::spinning_disk() }
    }

    /// Small pool, no modeled latency — unit tests.
    pub fn in_memory() -> Self {
        DbConfig { buffer_frames: 4096, disk: DiskProfile::instant() }
    }

    /// A deliberately tiny pool to force eviction (failure-injection and
    /// I/O-shape tests).
    pub fn tiny(frames: usize) -> Self {
        DbConfig { buffer_frames: frames, disk: DiskProfile::instant() }
    }
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig::server()
    }
}

enum Storage {
    Heap { file: HeapFile, rows: u64 },
    Clustered { tree: BTree, key_cols: Vec<usize> },
}

/// A nonclustered index: a B-tree from `(index-key..., clustered-key...)`
/// to an empty payload, the SQL Server layout where secondary indexes
/// locate rows through the clustering key.
struct SecondaryIndex {
    name: String,
    cols: Vec<usize>,
    tree: BTree,
}

/// One table: schema plus storage.
struct Table {
    schema: Schema,
    storage: Storage,
    indexes: Vec<SecondaryIndex>,
    /// Mutation epoch: stamped from the database-wide monotonic counter on
    /// every data change (insert/delete/truncate and table creation).
    /// Derived read-optimized structures (the zone snapshot cache) record
    /// the epoch they were built at and treat any difference as stale.
    /// Epochs are never reused, so a drop + recreate cannot alias an old
    /// snapshot onto a new table.
    epoch: u64,
    /// Epoch of the last [`Database::commit`] that included a mutation of
    /// this table (0 before the first). Commit epochs draw from the same
    /// monotonic counter as mutation epochs, so the two never collide.
    commit_epoch: u64,
}

/// The committed shape of one table, as serialized into WAL commit records
/// and pinned by snapshots: enough to re-attach storage without replaying
/// logical operations.
enum SnapStorage {
    Heap { pages: Vec<PageId>, rows: u64 },
    Clustered { root: PageId, len: u64, key_cols: Vec<usize> },
}

struct SnapTable {
    schema: Schema,
    storage: SnapStorage,
}

/// The catalog as of the last commit. Snapshots hold an `Arc` to the
/// version they pinned; commit swaps in a fresh one.
struct CommittedCatalog {
    epoch: u64,
    tables: HashMap<String, SnapTable>,
}

// ---- catalog codec --------------------------------------------------------
//
// Commit and checkpoint records carry the serialized catalog: table
// schemas, heap page lists, B-tree roots, index definitions, and the epoch
// counter. A hand-rolled little-endian codec keeps the format stable and
// dependency-free; corruption of these bytes is caught one level down by
// the WAL record checksum, so the decoder treats any structural surprise
// as [`DbError::WalCorrupt`].

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::BigInt => 0,
        DataType::Int => 1,
        DataType::Real => 2,
        DataType::Float => 3,
        DataType::Text => 4,
    }
}

fn dtype_from(tag: u8) -> DbResult<DataType> {
    Ok(match tag {
        0 => DataType::BigInt,
        1 => DataType::Int,
        2 => DataType::Real,
        3 => DataType::Float,
        4 => DataType::Text,
        other => return Err(DbError::WalCorrupt(format!("unknown dtype tag {other}"))),
    })
}

/// Bounds-checked reader over catalog bytes.
struct CatReader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> CatReader<'a> {
    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        if self.buf.len() - self.at < n {
            return Err(DbError::WalCorrupt("catalog truncated".into()));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> DbResult<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> DbResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> DbResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> DbResult<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| DbError::WalCorrupt("catalog string is not utf-8".into()))
    }

    fn done(&self) -> bool {
        self.at == self.buf.len()
    }
}

/// An embedded database instance: one buffer pool, many tables.
///
/// Instances are single-writer by construction (methods take `&mut self`
/// for writes); the partitioned MaxBCG runner gives each worker thread its
/// own `Database`, exactly like the paper's share-nothing SQL Server
/// cluster.
///
/// ```
/// use stardb::{Database, DbConfig};
///
/// let mut db = Database::new(DbConfig::in_memory());
/// db.execute_sql("CREATE TABLE star (id BIGINT PRIMARY KEY, mag FLOAT)").unwrap();
/// db.execute_sql("INSERT INTO star VALUES (1, 17.5), (2, 19.0)").unwrap();
/// let (cols, rows) = db
///     .execute_sql("SELECT COUNT(*) AS n FROM star WHERE mag < 18")
///     .unwrap()
///     .rows()
///     .unwrap();
/// assert_eq!(cols, vec!["n"]);
/// assert_eq!(rows[0].i64(0).unwrap(), 1);
/// ```
pub struct Database {
    pool: Arc<BufferPool>,
    tables: HashMap<String, Table>,
    /// Database-wide monotonic epoch source (see [`Table::epoch`]).
    next_epoch: u64,
    /// Snapshot/version state (hooks are installed into the pool only for
    /// durable databases — see [`Database::open`]).
    mvcc: Arc<MvccState>,
    /// The write-ahead log, present for durable databases.
    wal: Option<Arc<Wal>>,
    /// Catalog as of the last commit, shared with snapshot handles.
    committed: Arc<RwLock<Arc<CommittedCatalog>>>,
    /// Tables mutated since the last commit (normalized names).
    dirty_tables: HashSet<String>,
    /// Schema-level changes (create/drop table or index) since the last
    /// commit — they change the catalog without dirtying table data.
    catalog_dirty: bool,
    /// Serialized catalog of the last WAL commit (checkpoint reuses it).
    last_catalog: Vec<u8>,
    /// Profile of the most recent profiled SELECT (set while telemetry is
    /// enabled, and always by `EXPLAIN ANALYZE`); `None` after an
    /// unprofiled SELECT. Interior mutability because SELECTs run through
    /// `&Database`.
    last_profile: parking_lot::Mutex<Option<crate::sql::QueryProfile>>,
    /// Zone maps built from full unfiltered scans, one per table, keyed by
    /// [`Database::table_version`] epochs — stale maps are dropped on
    /// lookup, so writers never invalidate explicitly. Interior mutability
    /// because SELECTs run through `&Database`.
    zonemaps: parking_lot::Mutex<HashMap<String, Arc<crate::zonemap::ZoneMap>>>,
}

/// Wall time of non-trivial commits (WAL append + fsync for durable
/// databases, epoch/catalog bookkeeping for in-memory ones), feeding the
/// `stardb.wal.commit_latency_ns` histogram's p50/p95/p99.
fn commit_latency() -> &'static obs::Histogram {
    static H: std::sync::OnceLock<obs::Histogram> = std::sync::OnceLock::new();
    H.get_or_init(|| obs::histogram("stardb.wal.commit_latency_ns"))
}

impl Database {
    /// Create an empty database.
    pub fn new(config: DbConfig) -> Self {
        let pool = Arc::new(BufferPool::new(
            Arc::new(MemStore::new()),
            config.buffer_frames,
            config.disk,
        ));
        Database {
            pool,
            tables: HashMap::new(),
            next_epoch: 0,
            mvcc: Arc::new(MvccState::new()),
            wal: None,
            committed: Arc::new(RwLock::new(Arc::new(CommittedCatalog {
                epoch: 0,
                tables: HashMap::new(),
            }))),
            dirty_tables: HashSet::new(),
            catalog_dirty: false,
            last_catalog: Vec::new(),
            last_profile: parking_lot::Mutex::new(None),
            zonemaps: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// Open (or create) a durable database at `dir`: a page file plus a
    /// write-ahead log, with MVCC copy-on-write hooks installed in the
    /// buffer pool. Opening runs recovery — committed transactions are
    /// replayed, torn tail records are detected by checksum and truncated
    /// — and re-attaches every table from the last consistent commit's
    /// catalog. See [`crate::wal`] for the full protocol.
    pub fn open(dir: &std::path::Path, config: DbConfig, wal_cfg: WalConfig) -> DbResult<Database> {
        std::fs::create_dir_all(dir).map_err(|e| DbError::io("create db dir", &e))?;
        let store = FileStore::open_repair(&dir.join("pages.db"))
            .map_err(|e| DbError::io("open page file", &e))?;
        let (wal, recovery) = Wal::open(&dir.join("wal"), wal_cfg, Arc::new(store))?;
        let pool = Arc::new(BufferPool::new(
            wal.clone() as Arc<dyn PageStore>,
            config.buffer_frames,
            config.disk,
        ));
        let mvcc = Arc::new(MvccState::new());
        pool.enable_mvcc(mvcc.clone());
        let mut db = Database {
            pool,
            tables: HashMap::new(),
            next_epoch: recovery.epoch,
            mvcc,
            wal: Some(wal),
            committed: Arc::new(RwLock::new(Arc::new(CommittedCatalog {
                epoch: recovery.epoch,
                tables: HashMap::new(),
            }))),
            dirty_tables: HashSet::new(),
            catalog_dirty: false,
            last_catalog: Vec::new(),
            last_profile: parking_lot::Mutex::new(None),
            zonemaps: parking_lot::Mutex::new(HashMap::new()),
        };
        if let Some(bytes) = recovery.catalog {
            db.decode_catalog(&bytes)?;
            db.last_catalog = bytes;
        }
        if recovery.epoch > 0 {
            // Future snapshots pin at the recovered epoch.
            db.mvcc.commit(recovery.epoch);
        }
        *db.committed.write() = Arc::new(db.build_committed(recovery.epoch));
        Ok(db)
    }

    /// The write-ahead log of a durable database (`None` for in-memory
    /// instances). Exposed for the chaos drills, which arm crash points.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Claim the next mutation epoch (monotonic, never reused).
    fn fresh_epoch(&mut self) -> u64 {
        self.next_epoch += 1;
        self.next_epoch
    }

    /// Serialize the current catalog (see the codec notes above).
    fn encode_catalog(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        put_u64(&mut buf, self.next_epoch);
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        put_u32(&mut buf, names.len() as u32);
        for name in names {
            let t = &self.tables[name];
            put_str(&mut buf, name);
            put_u64(&mut buf, t.epoch);
            put_u64(&mut buf, t.commit_epoch);
            put_u32(&mut buf, t.schema.arity() as u32);
            for c in t.schema.columns() {
                put_str(&mut buf, &c.name);
                buf.push(dtype_tag(c.dtype));
                buf.push(u8::from(c.nullable));
            }
            match &t.storage {
                Storage::Heap { file, rows } => {
                    buf.push(0);
                    put_u64(&mut buf, *rows);
                    put_u32(&mut buf, file.pages().len() as u32);
                    for p in file.pages() {
                        put_u32(&mut buf, p.0);
                    }
                }
                Storage::Clustered { tree, key_cols } => {
                    buf.push(1);
                    put_u32(&mut buf, tree.root().0);
                    put_u64(&mut buf, tree.len());
                    put_u32(&mut buf, key_cols.len() as u32);
                    for &k in key_cols {
                        put_u32(&mut buf, k as u32);
                    }
                }
            }
            put_u32(&mut buf, t.indexes.len() as u32);
            for idx in &t.indexes {
                put_str(&mut buf, &idx.name);
                put_u32(&mut buf, idx.cols.len() as u32);
                for &c in &idx.cols {
                    put_u32(&mut buf, c as u32);
                }
                put_u32(&mut buf, idx.tree.root().0);
                put_u64(&mut buf, idx.tree.len());
            }
        }
        buf
    }

    /// Rebuild the table map from a recovered catalog, re-attaching heaps
    /// and trees over the (already replayed) pool.
    fn decode_catalog(&mut self, bytes: &[u8]) -> DbResult<()> {
        let mut r = CatReader { buf: bytes, at: 0 };
        self.next_epoch = r.u64()?;
        let n_tables = r.u32()? as usize;
        let mut tables = HashMap::with_capacity(n_tables);
        for _ in 0..n_tables {
            let name = r.str()?;
            let epoch = r.u64()?;
            let commit_epoch = r.u64()?;
            let n_cols = r.u32()? as usize;
            let mut cols = Vec::with_capacity(n_cols);
            for _ in 0..n_cols {
                let cname = r.str()?;
                let dtype = dtype_from(r.u8()?)?;
                let nullable = r.u8()? != 0;
                cols.push(if nullable {
                    Column::nullable(&cname, dtype)
                } else {
                    Column::new(&cname, dtype)
                });
            }
            let schema = Schema::new(cols);
            let storage = match r.u8()? {
                0 => {
                    let rows = r.u64()?;
                    let n_pages = r.u32()? as usize;
                    let mut pages = Vec::with_capacity(n_pages);
                    for _ in 0..n_pages {
                        pages.push(PageId(r.u32()?));
                    }
                    Storage::Heap { file: HeapFile::attach(self.pool.clone(), pages)?, rows }
                }
                1 => {
                    let root = PageId(r.u32()?);
                    let len = r.u64()?;
                    let n_keys = r.u32()? as usize;
                    let mut key_cols = Vec::with_capacity(n_keys);
                    for _ in 0..n_keys {
                        key_cols.push(r.u32()? as usize);
                    }
                    Storage::Clustered {
                        tree: BTree::attach(self.pool.clone(), root, len),
                        key_cols,
                    }
                }
                other => {
                    return Err(DbError::WalCorrupt(format!("unknown storage tag {other}")))
                }
            };
            let n_indexes = r.u32()? as usize;
            let mut indexes = Vec::with_capacity(n_indexes);
            for _ in 0..n_indexes {
                let iname = r.str()?;
                let n_icols = r.u32()? as usize;
                let mut icols = Vec::with_capacity(n_icols);
                for _ in 0..n_icols {
                    icols.push(r.u32()? as usize);
                }
                let root = PageId(r.u32()?);
                let len = r.u64()?;
                indexes.push(SecondaryIndex {
                    name: iname,
                    cols: icols,
                    tree: BTree::attach(self.pool.clone(), root, len),
                });
            }
            tables.insert(name, Table { schema, storage, indexes, epoch, commit_epoch });
        }
        if !r.done() {
            return Err(DbError::WalCorrupt("catalog has trailing bytes".into()));
        }
        self.tables = tables;
        Ok(())
    }

    /// Snapshot-facing view of the current tables, stamped `epoch`.
    fn build_committed(&self, epoch: u64) -> CommittedCatalog {
        let tables = self
            .tables
            .iter()
            .map(|(name, t)| {
                let storage = match &t.storage {
                    Storage::Heap { file, rows } => {
                        SnapStorage::Heap { pages: file.pages().to_vec(), rows: *rows }
                    }
                    Storage::Clustered { tree, key_cols } => SnapStorage::Clustered {
                        root: tree.root(),
                        len: tree.len(),
                        key_cols: key_cols.clone(),
                    },
                };
                (name.clone(), SnapTable { schema: t.schema.clone(), storage })
            })
            .collect();
        CommittedCatalog { epoch, tables }
    }

    /// Commit everything since the last commit as one transaction: flush
    /// dirty frames into the WAL's staged overlay, append their page
    /// images plus a commit record carrying the serialized catalog (group
    /// commit — one fsync for the whole batch), stamp MVCC pending
    /// versions with the commit epoch, and publish a fresh committed
    /// catalog for new snapshots. Returns the commit epoch (for an
    /// unchanged database: the previous one, with nothing written).
    ///
    /// In-memory databases skip the log but still advance commit epochs,
    /// so [`Database::table_version`] and snapshots behave identically.
    pub fn commit(&mut self) -> DbResult<u64> {
        if self.dirty_tables.is_empty() && !self.catalog_dirty {
            return Ok(self.committed.read().epoch);
        }
        let t0 = Instant::now();
        let epoch = self.fresh_epoch();
        if let Some(wal) = self.wal.clone() {
            self.pool.flush_all()?;
            let catalog = self.encode_catalog();
            wal.commit(epoch, &catalog)?;
            self.last_catalog = catalog;
        }
        self.mvcc.commit(epoch);
        for name in std::mem::take(&mut self.dirty_tables) {
            if let Some(t) = self.tables.get_mut(&name) {
                t.commit_epoch = epoch;
            }
        }
        self.catalog_dirty = false;
        *self.committed.write() = Arc::new(self.build_committed(epoch));
        commit_latency().record(t0.elapsed().as_nanos() as u64);
        Ok(epoch)
    }

    /// Commit, then checkpoint the WAL: committed pages are written
    /// through to the page file and fsync'd, the log rolls to a fresh
    /// segment, and older segments are deleted. No-op (beyond the commit)
    /// for in-memory databases.
    pub fn checkpoint(&mut self) -> DbResult<u64> {
        let epoch = self.commit()?;
        if let Some(wal) = self.wal.clone() {
            if self.last_catalog.is_empty() {
                self.last_catalog = self.encode_catalog();
            }
            wal.checkpoint(epoch, &self.last_catalog)?;
        }
        Ok(epoch)
    }

    /// Cleanly shut down a durable database: commit and checkpoint, so the
    /// next [`Database::open`] recovers from the checkpoint record alone.
    pub fn close(mut self) -> DbResult<()> {
        self.checkpoint()?;
        Ok(())
    }

    /// Pin an owned, `Send + Sync` snapshot of the last committed state.
    ///
    /// The snapshot sees exactly the tables and rows of the commit it
    /// pinned — scans, range scans, and point gets resolve page reads
    /// through the MVCC version table, so a writer may keep mutating and
    /// committing concurrently (durable databases install the
    /// copy-on-write hooks; see [`Database::open`]). Superseded page
    /// versions are held until the snapshot drops, then reclaimed by the
    /// watermark GC.
    pub fn snapshot(&self) -> DbSnapshot {
        loop {
            let epoch = self.mvcc.pin_snapshot();
            let catalog = self.committed.read().clone();
            if catalog.epoch == epoch {
                return DbSnapshot {
                    pool: self.pool.clone(),
                    mvcc: self.mvcc.clone(),
                    epoch,
                    catalog,
                };
            }
            // A commit raced between the pin and the catalog read; retry
            // against the newer epoch.
            self.mvcc.unpin_snapshot(epoch);
        }
    }

    /// The shared buffer pool (stats, direct index construction).
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Current I/O counters.
    pub fn io_stats(&self) -> IoSnapshot {
        self.pool.stats()
    }

    fn norm(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(&Self::norm(name))
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    fn table_mut(&mut self, name: &str) -> DbResult<&mut Table> {
        self.tables
            .get_mut(&Self::norm(name))
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// `true` when `name` exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::norm(name))
    }

    /// All table names (sorted, for deterministic listings).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Schema of a table.
    pub fn schema_of(&self, name: &str) -> DbResult<&Schema> {
        Ok(&self.table(name)?.schema)
    }

    /// Create a heap table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> DbResult<()> {
        let key = Self::norm(name);
        if self.tables.contains_key(&key) {
            return Err(DbError::TableExists(name.to_owned()));
        }
        let file = HeapFile::create(self.pool.clone())?;
        let epoch = self.fresh_epoch();
        self.dirty_tables.insert(key.clone());
        self.catalog_dirty = true;
        self.tables.insert(
            key,
            Table {
                schema,
                storage: Storage::Heap { file, rows: 0 },
                indexes: Vec::new(),
                epoch,
                commit_epoch: 0,
            },
        );
        Ok(())
    }

    /// Create a table clustered on `key_cols` (a unique composite key —
    /// the engine's `CREATE CLUSTERED INDEX`).
    pub fn create_clustered_table(
        &mut self,
        name: &str,
        schema: Schema,
        key_cols: &[&str],
    ) -> DbResult<()> {
        let key = Self::norm(name);
        if self.tables.contains_key(&key) {
            return Err(DbError::TableExists(name.to_owned()));
        }
        if key_cols.is_empty() {
            return Err(DbError::SchemaMismatch(
                "clustered table needs at least one key column".into(),
            ));
        }
        let key_cols = key_cols
            .iter()
            .map(|c| schema.col(c))
            .collect::<DbResult<Vec<usize>>>()?;
        let tree = BTree::create(self.pool.clone())?;
        let epoch = self.fresh_epoch();
        self.dirty_tables.insert(key.clone());
        self.catalog_dirty = true;
        self.tables.insert(
            key,
            Table {
                schema,
                storage: Storage::Clustered { tree, key_cols },
                indexes: Vec::new(),
                epoch,
                commit_epoch: 0,
            },
        );
        Ok(())
    }

    /// Drop a table.
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        let key = Self::norm(name);
        self.tables
            .remove(&key)
            .map(|_| {
                self.dirty_tables.remove(&key);
                self.catalog_dirty = true;
            })
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Remove all rows (`TRUNCATE TABLE`), emptying secondary indexes too.
    pub fn truncate(&mut self, name: &str) -> DbResult<()> {
        let epoch = self.fresh_epoch();
        self.dirty_tables.insert(Self::norm(name));
        let table = self.table_mut(name)?;
        table.epoch = epoch;
        for idx in &mut table.indexes {
            idx.tree.truncate()?;
        }
        match &mut table.storage {
            Storage::Heap { file, rows } => {
                file.truncate()?;
                *rows = 0;
                Ok(())
            }
            Storage::Clustered { tree, .. } => tree.truncate(),
        }
    }

    /// Insert one row, maintaining any secondary indexes.
    pub fn insert(&mut self, name: &str, row: Row) -> DbResult<()> {
        let epoch = self.fresh_epoch();
        self.dirty_tables.insert(Self::norm(name));
        let table = self.table_mut(name)?;
        table.epoch = epoch;
        table.schema.check_row(row.values())?;
        match &mut table.storage {
            Storage::Heap { file, rows } => {
                if !table.indexes.is_empty() {
                    return Err(DbError::TypeError(
                        "secondary indexes require a clustered table".into(),
                    ));
                }
                file.insert(&row.encode())?;
                *rows += 1;
                Ok(())
            }
            Storage::Clustered { tree, key_cols } => {
                let key: Vec<Value> = key_cols.iter().map(|&i| row[i].clone()).collect();
                tree.insert(&encode_key(&key), &row.encode())?;
                for idx in &mut table.indexes {
                    let mut ikey: Vec<Value> =
                        idx.cols.iter().map(|&i| row[i].clone()).collect();
                    ikey.extend(key.iter().cloned());
                    idx.tree.insert(&encode_key(&ikey), &[])?;
                }
                Ok(())
            }
        }
    }

    /// Insert many rows.
    pub fn insert_rows(
        &mut self,
        name: &str,
        rows: impl IntoIterator<Item = Row>,
    ) -> DbResult<u64> {
        let mut n = 0;
        for row in rows {
            self.insert(name, row)?;
            n += 1;
        }
        Ok(n)
    }

    /// The table's current mutation epoch. Every insert, delete, and
    /// truncate moves it forward (monotonically, database-wide, so a
    /// drop + recreate can never repeat an epoch). Snapshot-style caches
    /// record the epoch at build time and compare it before trusting their
    /// contents; a mismatch — or a missing table — means stale.
    pub fn table_epoch(&self, name: &str) -> DbResult<u64> {
        Ok(self.table(name)?.epoch)
    }

    /// The table's *visible* version for derived caches: its last commit
    /// epoch while the table has no uncommitted changes, the live mutation
    /// epoch while it does. Under the commit protocol a cache keyed on
    /// this value stays valid across read-only tasks (commits that touch
    /// other tables do not move it) and invalidates the moment the table
    /// itself changes — committed or not.
    pub fn table_version(&self, name: &str) -> DbResult<u64> {
        let t = self.table(name)?;
        Ok(if self.dirty_tables.contains(&Self::norm(name)) {
            t.epoch
        } else {
            t.commit_epoch
        })
    }

    /// The cached zone map for `table` at version `epoch`, if one is held.
    /// A map built at any other version is stale: it is dropped from the
    /// cache and `None` returned, so callers rebuild and re-store.
    pub(crate) fn cached_zonemap(
        &self,
        table: &str,
        epoch: u64,
    ) -> Option<Arc<crate::zonemap::ZoneMap>> {
        let mut maps = self.zonemaps.lock();
        match maps.get(table) {
            Some(m) if m.epoch() == epoch => Some(m.clone()),
            Some(_) => {
                maps.remove(table);
                None
            }
            None => None,
        }
    }

    /// Cache a zone map built from a full unfiltered scan of `table`.
    pub(crate) fn store_zonemap(&self, table: &str, map: Arc<crate::zonemap::ZoneMap>) {
        self.zonemaps.lock().insert(table.to_string(), map);
    }

    /// Row count.
    pub fn row_count(&self, name: &str) -> DbResult<u64> {
        Ok(match &self.table(name)?.storage {
            Storage::Heap { rows, .. } => *rows,
            Storage::Clustered { tree, .. } => tree.len(),
        })
    }

    /// Point lookup by clustered key.
    pub fn get(&self, name: &str, key: &[Value]) -> DbResult<Option<Row>> {
        let table = self.table(name)?;
        let Storage::Clustered { tree, .. } = &table.storage else {
            return Err(DbError::TypeError(format!("{name} is not clustered")));
        };
        match tree.get(&encode_key(key))? {
            Some(bytes) => Ok(Some(Row::decode(&bytes, table.schema.arity())?)),
            None => Ok(None),
        }
    }

    /// Point lookup by clustered key, returning the undecoded row payload
    /// (the vectorized scan decodes it straight into column buffers).
    pub fn get_raw(&self, name: &str, key: &[Value]) -> DbResult<Option<Vec<u8>>> {
        let table = self.table(name)?;
        let Storage::Clustered { tree, .. } = &table.storage else {
            return Err(DbError::TypeError(format!("{name} is not clustered")));
        };
        tree.get(&encode_key(key))
    }

    /// The positions of a clustered table's key columns.
    pub fn clustered_key_cols(&self, name: &str) -> DbResult<Vec<usize>> {
        match &self.table(name)?.storage {
            Storage::Clustered { key_cols, .. } => Ok(key_cols.clone()),
            Storage::Heap { .. } => {
                Err(DbError::TypeError(format!("{name} is not clustered")))
            }
        }
    }

    /// Create a nonclustered index over `cols` of a clustered table,
    /// backfilling it from existing rows. Index names are unique per table.
    pub fn create_index(&mut self, table: &str, index: &str, cols: &[&str]) -> DbResult<()> {
        let pool = self.pool.clone();
        // Collect the backfill before mutably borrowing the table entry.
        let schema = self.schema_of(table)?.clone();
        let key_cols = self.clustered_key_cols(table)?;
        let col_ids: Vec<usize> = cols.iter().map(|c| schema.col(c)).collect::<DbResult<_>>()?;
        let mut rows = Vec::new();
        self.scan_with(table, |row| {
            rows.push(row.clone());
            Ok(true)
        })?;
        let t = self.table_mut(table)?;
        if t.indexes.iter().any(|i| i.name.eq_ignore_ascii_case(index)) {
            return Err(DbError::TableExists(format!("index {index}")));
        }
        let mut tree = BTree::create(pool)?;
        for row in &rows {
            let mut ikey: Vec<Value> = col_ids.iter().map(|&i| row[i].clone()).collect();
            ikey.extend(key_cols.iter().map(|&i| row[i].clone()));
            tree.insert(&encode_key(&ikey), &[])?;
        }
        t.indexes.push(SecondaryIndex { name: index.to_owned(), cols: col_ids, tree });
        self.dirty_tables.insert(Self::norm(table));
        self.catalog_dirty = true;
        Ok(())
    }

    /// Drop a nonclustered index.
    pub fn drop_index(&mut self, table: &str, index: &str) -> DbResult<()> {
        let t = self.table_mut(table)?;
        let before = t.indexes.len();
        t.indexes.retain(|i| !i.name.eq_ignore_ascii_case(index));
        if t.indexes.len() == before {
            return Err(DbError::NoSuchTable(format!("index {index}")));
        }
        self.catalog_dirty = true;
        Ok(())
    }

    /// Names of a table's nonclustered indexes.
    pub fn index_names(&self, table: &str) -> DbResult<Vec<String>> {
        Ok(self.table(table)?.indexes.iter().map(|i| i.name.clone()).collect())
    }

    /// Stream rows whose *index* key lies between the `lo` and `hi`
    /// prefixes (inclusive, prefix semantics as in
    /// [`Database::range_scan_prefix`]), fetching each row through the
    /// clustering key — the nonclustered-seek + key-lookup plan shape.
    pub fn index_range_scan(
        &self,
        table: &str,
        index: &str,
        lo: &[Value],
        hi: &[Value],
        mut visit: impl FnMut(&Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        // Phase 1: collect clustering keys from the index (the scan holds
        // the pool latch; lookups happen after).
        let locators = self.index_range_keys(table, index, lo, hi)?;
        // Phase 2: key lookups.
        for loc in locators {
            if let Some(row) = self.get(table, &loc)? {
                if !visit(&row)? {
                    break;
                }
            }
        }
        Ok(())
    }

    /// Phase 1 of a nonclustered index range scan on its own: the
    /// clustering-key locators of every index entry between the `lo` and
    /// `hi` index-key prefixes (inclusive, prefix semantics as in
    /// [`Database::range_scan_prefix`]), in index-key order. The query
    /// planner's index-scan operator collects locators once, then fetches
    /// rows in batches through [`Database::get`].
    pub fn index_range_keys(
        &self,
        table: &str,
        index: &str,
        lo: &[Value],
        hi: &[Value],
    ) -> DbResult<Vec<Vec<Value>>> {
        let t = self.table(table)?;
        let idx = t
            .indexes
            .iter()
            .find(|i| i.name.eq_ignore_ascii_case(index))
            .ok_or_else(|| DbError::NoSuchTable(format!("index {index}")))?;
        let n_prefix = idx.cols.len();
        let lo_key = encode_key(lo);
        let mut hi_key = encode_key(hi);
        hi_key.push(0xFF);
        let mut locators: Vec<Vec<Value>> = Vec::new();
        idx.tree.scan_range_with(
            std::ops::Bound::Included(&lo_key),
            std::ops::Bound::Included(&hi_key),
            |k, _| {
                if let Ok(vals) = crate::key::decode_key(k) {
                    locators.push(vals[n_prefix..].to_vec());
                }
                true
            },
        )?;
        Ok(locators)
    }

    /// The column positions a nonclustered index covers, in index order.
    pub fn index_key_cols(&self, table: &str, index: &str) -> DbResult<Vec<usize>> {
        let t = self.table(table)?;
        let idx = t
            .indexes
            .iter()
            .find(|i| i.name.eq_ignore_ascii_case(index))
            .ok_or_else(|| DbError::NoSuchTable(format!("index {index}")))?;
        Ok(idx.cols.clone())
    }

    /// Parse and execute one SQL statement (see [`crate::sql`]).
    pub fn execute_sql(&mut self, sql: &str) -> DbResult<crate::sql::SqlOutput> {
        crate::sql::execute(self, sql)
    }

    /// The profile of the most recent profiled SELECT: its ANALYZE-rendered
    /// plan lines and per-operator stats. SELECTs are profiled while
    /// telemetry is enabled ([`obs::enabled`]) and always by
    /// `EXPLAIN ANALYZE`; an unprofiled SELECT clears this to `None`.
    pub fn last_profile(&self) -> Option<crate::sql::QueryProfile> {
        self.last_profile.lock().clone()
    }

    /// Store (or clear) the last-SELECT profile. Engine-internal.
    pub(crate) fn set_last_profile(&self, prof: Option<crate::sql::QueryProfile>) {
        *self.last_profile.lock() = prof;
    }

    /// Delete by clustered key; `Ok(true)` if a row was removed.
    pub fn delete_by_key(&mut self, name: &str, key: &[Value]) -> DbResult<bool> {
        let epoch = self.fresh_epoch();
        self.dirty_tables.insert(Self::norm(name));
        let table = self.table_mut(name)?;
        table.epoch = epoch;
        let Storage::Clustered { tree, .. } = &mut table.storage else {
            return Err(DbError::TypeError(format!("{name} is not clustered")));
        };
        let removed = tree.get(&encode_key(key))?;
        let existed = tree.delete(&encode_key(key))?;
        if existed {
            if let Some(bytes) = removed {
                let row = Row::decode(&bytes, table.schema.arity())?;
                for idx in &mut table.indexes {
                    let mut ikey: Vec<Value> =
                        idx.cols.iter().map(|&i| row[i].clone()).collect();
                    ikey.extend(key.iter().cloned());
                    idx.tree.delete(&encode_key(&ikey))?;
                }
            }
        }
        Ok(existed)
    }

    /// Stream every row through `visit`; return `false` to stop early.
    /// Clustered tables stream in key order, heaps in page order.
    ///
    /// `visit` runs while the engine holds the buffer-pool latch: it must
    /// not call back into this database (materialize first, or buffer hits
    /// and re-enter after the scan, as `maxbcg::neighbors` does).
    pub fn scan_with(
        &self,
        name: &str,
        mut visit: impl FnMut(&Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        let table = self.table(name)?;
        let arity = table.schema.arity();
        match &table.storage {
            Storage::Heap { file, .. } => {
                for (_, bytes) in file.scan() {
                    let row = Row::decode(&bytes, arity)?;
                    if !visit(&row)? {
                        break;
                    }
                }
                Ok(())
            }
            Storage::Clustered { tree, .. } => {
                let mut err = None;
                tree.scan_range_with(Bound::Unbounded, Bound::Unbounded, |_, payload| {
                    match Row::decode(payload, arity).and_then(|row| visit(&row)) {
                        Ok(more) => more,
                        Err(e) => {
                            err = Some(e);
                            false
                        }
                    }
                })?;
                match err {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
        }
    }

    /// Materialize a full table (convenience for small tables and tests).
    pub fn scan(&self, name: &str) -> DbResult<Vec<Row>> {
        let mut out = Vec::new();
        self.scan_with(name, |row| {
            out.push(row.clone());
            Ok(true)
        })?;
        Ok(out)
    }

    /// Stream rows whose clustered key lies between the `lo` and `hi` key
    /// *prefixes*, both inclusive — `hi` admits every key extending it.
    /// This is the access path of the zone join: e.g. for a key
    /// `(zoneID, ra, objid)`, `lo = (z, ra_min)`, `hi = (z, ra_max)`.
    ///
    /// `visit` runs under the buffer-pool latch and must not re-enter the
    /// database (see [`Database::scan_with`]).
    pub fn range_scan_prefix(
        &self,
        name: &str,
        lo: &[Value],
        hi: &[Value],
        mut visit: impl FnMut(&Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        let table = self.table(name)?;
        let Storage::Clustered { tree, .. } = &table.storage else {
            return Err(DbError::TypeError(format!("{name} is not clustered")));
        };
        let arity = table.schema.arity();
        let lo_key = encode_key(lo);
        let mut hi_key = encode_key(hi);
        // No encoded field begins with 0xFF, so appending it admits every
        // extension of the hi prefix and nothing beyond it.
        hi_key.push(0xFF);
        let mut err = None;
        tree.scan_range_with(
            Bound::Included(&lo_key),
            Bound::Included(&hi_key),
            |_, payload| match Row::decode(payload, arity).and_then(|row| visit(&row)) {
                Ok(more) => more,
                Err(e) => {
                    err = Some(e);
                    false
                }
            },
        )?;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Raw-payload variant of [`Database::range_scan_prefix`] for hot
    /// loops: `visit` sees the undecoded row bytes borrowed from the page.
    ///
    /// `visit` runs under the buffer-pool latch and must not re-enter the
    /// database (see [`Database::scan_with`]).
    pub fn range_scan_prefix_raw(
        &self,
        name: &str,
        lo: &[Value],
        hi: &[Value],
        mut visit: impl FnMut(&[u8]) -> bool,
    ) -> DbResult<()> {
        let table = self.table(name)?;
        let Storage::Clustered { tree, .. } = &table.storage else {
            return Err(DbError::TypeError(format!("{name} is not clustered")));
        };
        let lo_key = encode_key(lo);
        let mut hi_key = encode_key(hi);
        hi_key.push(0xFF);
        tree.scan_range_with(Bound::Included(&lo_key), Bound::Included(&hi_key), |_, payload| {
            visit(payload)
        })
    }

    /// Bulk extraction: stream every raw row payload of a clustered table
    /// in clustered-key order; return `false` to stop early. This is the
    /// snapshot-build path — one sequential pass, no per-row decode by the
    /// engine, so read-optimized caches (the zone snapshot) can be
    /// materialized at memory speed.
    ///
    /// `visit` runs under the buffer-pool latch and must not re-enter the
    /// database (see [`Database::scan_with`]).
    pub fn scan_raw(&self, name: &str, mut visit: impl FnMut(&[u8]) -> bool) -> DbResult<()> {
        let table = self.table(name)?;
        let Storage::Clustered { tree, .. } = &table.storage else {
            return Err(DbError::TypeError(format!("{name} is not clustered")));
        };
        tree.scan_range_with(Bound::Unbounded, Bound::Unbounded, |_, payload| visit(payload))
    }

    /// Open a row-at-a-time cursor (the paper's `DECLARE c CURSOR`).
    pub fn cursor(&self, name: &str) -> DbResult<Cursor> {
        let table = self.table(name)?;
        let kind = match &table.storage {
            Storage::Heap { .. } => CursorPos::Heap(None),
            Storage::Clustered { .. } => CursorPos::Clustered(None),
        };
        Ok(Cursor { table: Self::norm(name), pos: kind, done: false })
    }

    /// Planner-facing statistics for a table (currently the row count).
    pub fn table_stats(&self, name: &str) -> DbResult<TableStats> {
        Ok(TableStats { rows: self.row_count(name)? })
    }

    /// Scan a table keeping only rows matching `pred` (column positions
    /// are table positions). Returns the matching rows plus the number of
    /// rows *examined*, so callers can report how much a pushed-down
    /// predicate pruned.
    pub fn scan_filtered(&self, name: &str, pred: &Expr) -> DbResult<(Vec<Row>, u64)> {
        let mut out = Vec::new();
        let mut scanned = 0u64;
        self.scan_with(name, |row| {
            scanned += 1;
            if pred.matches(row)? {
                out.push(row.clone());
            }
            Ok(true)
        })?;
        Ok((out, scanned))
    }

    /// Open a streaming batched scan over the whole table (clustered
    /// tables in key order, heaps in page order). The scan holds no latch
    /// between batches — like [`Cursor`], each fetch re-descends from the
    /// last key — so the pull-based executor can interleave fetches with
    /// arbitrary database reads.
    pub fn batch_scan(&self, name: &str) -> DbResult<BatchScan> {
        let table = self.table(name)?;
        let mode = match &table.storage {
            Storage::Heap { .. } => BatchMode::Heap { last: None },
            Storage::Clustered { .. } => BatchMode::Clustered {
                last_key: None,
                lo_key: Vec::new(),
                hi_key: vec![0xFF],
            },
        };
        Ok(BatchScan { table: Self::norm(name), mode, done: false })
    }

    /// Open a streaming batched scan over the clustered-key range between
    /// the `lo` and `hi` key *prefixes*, both inclusive (`hi` admits every
    /// key extending it, as in [`Database::range_scan_prefix`]).
    pub fn batch_range_scan(&self, name: &str, lo: &[Value], hi: &[Value]) -> DbResult<BatchScan> {
        let table = self.table(name)?;
        let Storage::Clustered { .. } = &table.storage else {
            return Err(DbError::TypeError(format!("{name} is not clustered")));
        };
        let mut hi_key = encode_key(hi);
        hi_key.push(0xFF);
        Ok(BatchScan {
            table: Self::norm(name),
            mode: BatchMode::Clustered { last_key: None, lo_key: encode_key(lo), hi_key },
            done: false,
        })
    }

    /// A `Send + Sync` read-only snapshot handle for concurrent readers.
    ///
    /// The returned [`DbReader`] derefs to [`Database`], so every `&self`
    /// read path — [`Database::get`], [`Database::scan_with`],
    /// [`Database::range_scan_prefix_raw`], cursors — is available from
    /// many threads at once; the sharded buffer pool latches per page
    /// shard underneath. Writes still require `&mut Database`, so the
    /// borrow checker guarantees no writer coexists with outstanding
    /// readers: the handle really is a snapshot for its lifetime.
    pub fn reader(&self) -> DbReader<'_> {
        DbReader { db: self }
    }

    /// Run a named task, capturing its [`TaskStats`]: wall time of the body
    /// plus the I/O-counter delta it produced. The task ends with a
    /// checkpoint (every dirty page written back), so bulk-writing tasks
    /// like the paper's `spZone` show their physical I/O even when the
    /// buffer pool could have held everything — matching how SQL Server's
    /// statistics attribute writes to the statement that dirtied the pages.
    pub fn run_task<T>(
        &mut self,
        name: &str,
        body: impl FnOnce(&mut Database) -> DbResult<T>,
    ) -> DbResult<(T, TaskStats)> {
        let _span = obs::span(name);
        let before = self.pool.stats();
        let start = Instant::now();
        let out = body(self)?;
        let cpu = start.elapsed();
        self.pool.flush_all()?;
        // Each task is one transaction: group-commit whatever it dirtied
        // (no-op for read-only tasks, no log for in-memory databases).
        self.commit()?;
        let io = self.pool.stats().since(&before);
        // The modeled I/O wait is not part of the measured wall time (the
        // engine never sleeps), so the measured time *is* the cpu time.
        Ok((out, TaskStats::from_delta(name, cpu, io)))
    }
}

/// A shared read-only view of a [`Database`], safe to copy into worker
/// threads (see [`Database::reader`]). While any `DbReader` is alive the
/// borrow checker keeps the database immutable, so readers never observe a
/// write in progress.
#[derive(Clone, Copy)]
pub struct DbReader<'a> {
    db: &'a Database,
}

impl std::ops::Deref for DbReader<'_> {
    type Target = Database;
    fn deref(&self) -> &Database {
        self.db
    }
}

// Compile-time proof that reader handles may cross threads: scoped worker
// pools (maxbcg's candidate fan-out) rely on it.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DbReader<'static>>();
};

/// An owned, pinned view of one committed transaction (see
/// [`Database::snapshot`]). Unlike [`DbReader`], which borrows the database
/// and therefore excludes writers, a `DbSnapshot` holds no borrow: a writer
/// may insert and commit concurrently, and the snapshot keeps serving the
/// rows of the epoch it pinned. Page reads resolve through the MVCC version
/// table; dropping the snapshot releases the pin so the watermark GC can
/// reclaim superseded versions.
pub struct DbSnapshot {
    pool: Arc<BufferPool>,
    mvcc: Arc<MvccState>,
    epoch: u64,
    catalog: Arc<CommittedCatalog>,
}

impl DbSnapshot {
    /// The commit epoch this snapshot is pinned to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// All table names in the pinned catalog (sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.catalog.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// `true` when `name` existed at the pinned commit.
    pub fn has_table(&self, name: &str) -> bool {
        self.catalog.tables.contains_key(&Database::norm(name))
    }

    fn table(&self, name: &str) -> DbResult<&SnapTable> {
        self.catalog
            .tables
            .get(&Database::norm(name))
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))
    }

    /// Row count of `name` at the pinned commit.
    pub fn row_count(&self, name: &str) -> DbResult<u64> {
        Ok(match &self.table(name)?.storage {
            SnapStorage::Heap { rows, .. } => *rows,
            SnapStorage::Clustered { len, .. } => *len,
        })
    }

    fn clustered(&self, name: &str) -> DbResult<(BTree, usize)> {
        let t = self.table(name)?;
        let SnapStorage::Clustered { root, len, .. } = &t.storage else {
            return Err(DbError::TypeError(format!("{name} is not clustered")));
        };
        Ok((
            BTree::attach_at(self.pool.clone(), *root, *len, self.epoch),
            t.schema.arity(),
        ))
    }

    /// Column positions of `name`'s clustered key, as recorded at the
    /// pinned commit.
    pub fn clustered_key_cols(&self, name: &str) -> DbResult<Vec<usize>> {
        match &self.table(name)?.storage {
            SnapStorage::Clustered { key_cols, .. } => Ok(key_cols.clone()),
            SnapStorage::Heap { .. } => {
                Err(DbError::TypeError(format!("{name} is not clustered")))
            }
        }
    }

    /// Point lookup by clustered key, as of the pinned commit.
    pub fn get(&self, name: &str, key: &[Value]) -> DbResult<Option<Row>> {
        let (tree, arity) = self.clustered(name)?;
        match tree.get(&encode_key(key))? {
            Some(bytes) => Ok(Some(Row::decode(&bytes, arity)?)),
            None => Ok(None),
        }
    }

    /// Stream decoded rows of `name` as of the pinned commit; `visit`
    /// returns `false` to stop early.
    pub fn scan_with(
        &self,
        name: &str,
        mut visit: impl FnMut(&Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        let t = self.table(name)?;
        let arity = t.schema.arity();
        match &t.storage {
            SnapStorage::Heap { pages, .. } => {
                for &pid in pages {
                    let cells: Vec<Vec<u8>> = self.pool.with_page_at(pid, self.epoch, |p| {
                        page::iter(p).map(|(_, cell)| cell.to_vec()).collect()
                    })?;
                    for bytes in cells {
                        if !visit(&Row::decode(&bytes, arity)?)? {
                            return Ok(());
                        }
                    }
                }
                Ok(())
            }
            SnapStorage::Clustered { root, len, .. } => {
                let tree = BTree::attach_at(self.pool.clone(), *root, *len, self.epoch);
                let mut err = None;
                tree.scan_range_with(Bound::Unbounded, Bound::Unbounded, |_, payload| {
                    match Row::decode(payload, arity).and_then(|row| visit(&row)) {
                        Ok(more) => more,
                        Err(e) => {
                            err = Some(e);
                            false
                        }
                    }
                })?;
                match err {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
        }
    }

    /// Stream raw clustered payloads in key order as of the pinned commit
    /// (the snapshot analogue of [`Database::scan_raw`]).
    pub fn scan_raw(&self, name: &str, mut visit: impl FnMut(&[u8]) -> bool) -> DbResult<()> {
        let (tree, _) = self.clustered(name)?;
        tree.scan_range_with(Bound::Unbounded, Bound::Unbounded, |_, payload| visit(payload))
    }

    /// Prefix range scan over the clustered key as of the pinned commit
    /// (the snapshot analogue of [`Database::range_scan_prefix`]).
    pub fn range_scan_prefix(
        &self,
        name: &str,
        lo: &[Value],
        hi: &[Value],
        mut visit: impl FnMut(&Row) -> DbResult<bool>,
    ) -> DbResult<()> {
        let (tree, arity) = self.clustered(name)?;
        let lo_key = encode_key(lo);
        let mut hi_key = encode_key(hi);
        // No encoded field begins with 0xFF, so appending it admits every
        // extension of the hi prefix and nothing beyond it.
        hi_key.push(0xFF);
        let mut err = None;
        tree.scan_range_with(
            Bound::Included(&lo_key),
            Bound::Included(&hi_key),
            |_, payload| match Row::decode(payload, arity).and_then(|row| visit(&row)) {
                Ok(more) => more,
                Err(e) => {
                    err = Some(e);
                    false
                }
            },
        )?;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl Drop for DbSnapshot {
    fn drop(&mut self) {
        self.mvcc.unpin_snapshot(self.epoch);
    }
}

// Snapshots are built to cross threads: a pinned reader scans from a worker
// while the owning thread keeps committing.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DbSnapshot>();
};

enum CursorPos {
    Heap(Option<RowId>),
    Clustered(Option<Vec<u8>>),
}

/// A row-at-a-time cursor. Each [`Cursor::fetch_next`] re-descends the
/// index (clustered) or re-reads the page (heap) — deliberately faithful to
/// the cost profile of SQL cursors, which §2.6 of the paper singles out as
/// "very slow". The cursor-vs-set-based ablation bench quantifies this.
pub struct Cursor {
    table: String,
    pos: CursorPos,
    done: bool,
}

impl Cursor {
    /// Fetch the next row, or `None` at the end (`@@fetch_status < 0`).
    pub fn fetch_next(&mut self, db: &Database) -> DbResult<Option<Row>> {
        if self.done {
            return Ok(None);
        }
        let table = db.table(&self.table)?;
        let arity = table.schema.arity();
        match (&mut self.pos, &table.storage) {
            (CursorPos::Heap(last), Storage::Heap { file, .. }) => {
                match file.next_record(*last)? {
                    Some((id, bytes)) => {
                        *last = Some(id);
                        Ok(Some(Row::decode(&bytes, arity)?))
                    }
                    None => {
                        self.done = true;
                        Ok(None)
                    }
                }
            }
            (CursorPos::Clustered(last), Storage::Clustered { tree, .. }) => {
                let lo = match last {
                    None => Bound::Unbounded,
                    Some(k) => Bound::Excluded(k.as_slice()),
                };
                let mut hit: Option<(Vec<u8>, Vec<u8>)> = None;
                tree.scan_range_with(lo, Bound::Unbounded, |k, v| {
                    hit = Some((k.to_vec(), v.to_vec()));
                    false
                })?;
                match hit {
                    Some((k, bytes)) => {
                        *last = Some(k);
                        Ok(Some(Row::decode(&bytes, arity)?))
                    }
                    None => {
                        self.done = true;
                        Ok(None)
                    }
                }
            }
            _ => Err(DbError::Corrupt("cursor/storage kind mismatch".into())),
        }
    }
}

enum BatchMode {
    Heap { last: Option<RowId> },
    Clustered { last_key: Option<Vec<u8>>, lo_key: Vec<u8>, hi_key: Vec<u8> },
}

/// One column-major batch fetched by [`BatchScan::fetch_columns`]: every
/// stored row examined lands in the batch (predicates run columnwise
/// *after* the fetch, producing selection vectors), so `batch.len()` is
/// also the pruning denominator.
pub struct ColChunk {
    /// The examined rows, decoded straight into column buffers.
    pub batch: ColumnBatch,
}

/// One batch fetched by a [`BatchScan`]: the rows that passed the pushed
/// predicate and the number of stored rows examined to produce them.
pub struct ScanChunk {
    /// Rows that passed the predicate (all examined rows when no
    /// predicate was pushed).
    pub rows: Vec<Row>,
    /// Stored rows examined, matching or not — the pruning denominator.
    pub scanned: u64,
}

/// A streaming batched table scan: the planner's pull-based leaf operator
/// (see [`Database::batch_scan`] / [`Database::batch_range_scan`]).
///
/// Between fetches the scan holds nothing but the last clustered key (or
/// heap row id) examined; each fetch re-descends the B-tree from there,
/// exactly like [`Cursor`], but amortizes the descent over a whole batch.
pub struct BatchScan {
    table: String,
    mode: BatchMode,
    done: bool,
}

impl BatchScan {
    /// Fetch up to `max` rows matching `pred` (every row if `None`),
    /// examining stored rows until the batch is full or the range ends.
    /// Returns `None` once the scan is exhausted. The predicate runs under
    /// the buffer-pool latch and therefore must not re-enter the database
    /// — expression predicates over the row alone, as the planner pushes,
    /// are always safe.
    pub fn fetch(
        &mut self,
        db: &Database,
        max: usize,
        pred: Option<&Expr>,
    ) -> DbResult<Option<ScanChunk>> {
        if self.done || max == 0 {
            self.done = true;
            return Ok(None);
        }
        let table = db.table(&self.table)?;
        let arity = table.schema.arity();
        let mut rows: Vec<Row> = Vec::new();
        let mut scanned = 0u64;
        match (&mut self.mode, &table.storage) {
            (BatchMode::Heap { last }, Storage::Heap { file, .. }) => {
                while rows.len() < max {
                    match file.next_record(*last)? {
                        Some((id, bytes)) => {
                            *last = Some(id);
                            scanned += 1;
                            let row = Row::decode(&bytes, arity)?;
                            if pred.map_or(Ok(true), |p| p.matches(&row))? {
                                rows.push(row);
                            }
                        }
                        None => {
                            self.done = true;
                            break;
                        }
                    }
                }
            }
            (BatchMode::Clustered { last_key, lo_key, hi_key }, Storage::Clustered { tree, .. }) => {
                let lo = match last_key {
                    Some(k) => Bound::Excluded(k.as_slice()),
                    None => Bound::Included(lo_key.as_slice()),
                };
                let mut newest: Option<Vec<u8>> = None;
                let mut err = None;
                let mut filled = false;
                tree.scan_range_with(lo, Bound::Included(hi_key.as_slice()), |k, payload| {
                    scanned += 1;
                    newest = Some(k.to_vec());
                    let keep = Row::decode(payload, arity).and_then(|row| {
                        Ok(match pred {
                            Some(p) => p.matches(&row)?.then_some(row),
                            None => Some(row),
                        })
                    });
                    match keep {
                        Ok(Some(row)) => {
                            rows.push(row);
                            filled = rows.len() >= max;
                            !filled
                        }
                        Ok(None) => true,
                        Err(e) => {
                            err = Some(e);
                            false
                        }
                    }
                })?;
                if let Some(e) = err {
                    return Err(e);
                }
                if let Some(k) = newest {
                    *last_key = Some(k);
                }
                if !filled {
                    self.done = true;
                }
            }
            _ => return Err(DbError::Corrupt("scan/storage kind mismatch".into())),
        }
        if scanned == 0 && rows.is_empty() {
            self.done = true;
            return Ok(None);
        }
        Ok(Some(ScanChunk { rows, scanned }))
    }

    /// Fetch up to `max` stored rows as a column-major batch, decoding
    /// page payloads straight into typed buffers with no per-row `Row`
    /// materialization — the vectorized pipeline's leaf. Unlike
    /// [`BatchScan::fetch`] no predicate runs here: filtering happens
    /// columnwise on the returned batch, so every examined row is in it.
    /// Returns `None` once the scan is exhausted.
    pub fn fetch_columns(&mut self, db: &Database, max: usize) -> DbResult<Option<ColChunk>> {
        if self.done || max == 0 {
            self.done = true;
            return Ok(None);
        }
        let table = db.table(&self.table)?;
        let dtypes: Vec<DataType> =
            table.schema.columns().iter().map(|c| c.dtype).collect();
        let mut batch = ColumnBatch::with_capacity(&dtypes, max);
        match (&mut self.mode, &table.storage) {
            (BatchMode::Heap { last }, Storage::Heap { file, .. }) => {
                while batch.len() < max {
                    match file.next_record(*last)? {
                        Some((id, bytes)) => {
                            *last = Some(id);
                            batch.push_wire(&bytes)?;
                        }
                        None => {
                            self.done = true;
                            break;
                        }
                    }
                }
            }
            (BatchMode::Clustered { last_key, lo_key, hi_key }, Storage::Clustered { tree, .. }) => {
                let lo = match last_key {
                    Some(k) => Bound::Excluded(k.as_slice()),
                    None => Bound::Included(lo_key.as_slice()),
                };
                let mut newest: Option<Vec<u8>> = None;
                let mut err = None;
                let mut filled = false;
                // The decode runs under the buffer-pool latch but touches
                // only the batch buffers — it cannot re-enter the database.
                tree.scan_range_with(lo, Bound::Included(hi_key.as_slice()), |k, payload| {
                    newest = Some(k.to_vec());
                    match batch.push_wire(payload) {
                        Ok(()) => {
                            filled = batch.len() >= max;
                            !filled
                        }
                        Err(e) => {
                            err = Some(e);
                            false
                        }
                    }
                })?;
                if let Some(e) = err {
                    return Err(e);
                }
                if let Some(k) = newest {
                    *last_key = Some(k);
                }
                if !filled {
                    self.done = true;
                }
            }
            _ => return Err(DbError::Corrupt("scan/storage kind mismatch".into())),
        }
        if batch.is_empty() {
            self.done = true;
            return Ok(None);
        }
        Ok(Some(ColChunk { batch }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn galaxy_schema() -> Schema {
        Schema::new(vec![
            Column::new("objid", DataType::BigInt),
            Column::new("ra", DataType::Float),
            Column::new("dec", DataType::Float),
            Column::new("i", DataType::Real),
        ])
    }

    fn db() -> Database {
        Database::new(DbConfig::in_memory())
    }

    fn g(objid: i64, ra: f64, dec: f64, i: f32) -> Row {
        Row(vec![Value::BigInt(objid), Value::Float(ra), Value::Float(dec), Value::Real(i)])
    }

    #[test]
    fn heap_table_crud() {
        let mut d = db();
        d.create_table("galaxy", galaxy_schema()).unwrap();
        d.insert("galaxy", g(1, 180.0, 2.0, 17.5)).unwrap();
        d.insert("galaxy", g(2, 181.0, 2.1, 18.5)).unwrap();
        assert_eq!(d.row_count("galaxy").unwrap(), 2);
        let rows = d.scan("GALAXY").unwrap();
        assert_eq!(rows.len(), 2);
        d.truncate("galaxy").unwrap();
        assert_eq!(d.row_count("galaxy").unwrap(), 0);
    }

    #[test]
    fn clustered_table_ordered_and_unique() {
        let mut d = db();
        d.create_clustered_table("galaxy", galaxy_schema(), &["objid"]).unwrap();
        for id in [5i64, 1, 3, 2, 4] {
            d.insert("galaxy", g(id, 180.0 + id as f64, 0.0, 17.0)).unwrap();
        }
        let rows = d.scan("galaxy").unwrap();
        let ids: Vec<i64> = rows.iter().map(|r| r.i64(0).unwrap()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        assert!(matches!(
            d.insert("galaxy", g(3, 0.0, 0.0, 0.0)),
            Err(DbError::DuplicateKey(_))
        ));
        let row = d.get("galaxy", &[Value::BigInt(4)]).unwrap().unwrap();
        assert_eq!(row.f64(1).unwrap(), 184.0);
        assert!(d.get("galaxy", &[Value::BigInt(99)]).unwrap().is_none());
    }

    #[test]
    fn composite_key_range_scan() {
        let mut d = db();
        let schema = Schema::new(vec![
            Column::new("zoneid", DataType::Int),
            Column::new("ra", DataType::Float),
            Column::new("objid", DataType::BigInt),
        ]);
        d.create_clustered_table("zone", schema, &["zoneid", "ra", "objid"]).unwrap();
        let mut id = 0i64;
        for z in 0..5i32 {
            for r in 0..100 {
                id += 1;
                d.insert(
                    "zone",
                    Row(vec![Value::Int(z), Value::Float(f64::from(r) * 0.1), Value::BigInt(id)]),
                )
                .unwrap();
            }
        }
        // Zone 2, ra in [3.0, 5.0]: entries 30..=50.
        let mut got = Vec::new();
        d.range_scan_prefix(
            "zone",
            &[Value::Int(2), Value::Float(3.0)],
            &[Value::Int(2), Value::Float(5.0)],
            |row| {
                got.push((row.i64(0).unwrap(), row.f64(1).unwrap()));
                Ok(true)
            },
        )
        .unwrap();
        assert_eq!(got.len(), 21);
        assert!(got.iter().all(|&(z, _)| z == 2));
        assert!(got.iter().all(|&(_, ra)| (3.0..=5.0).contains(&ra)));
        // Prefix scan over just the zone.
        let mut n = 0;
        d.range_scan_prefix("zone", &[Value::Int(3)], &[Value::Int(3)], |_| {
            n += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(n, 100);
    }

    #[test]
    fn scan_with_early_stop() {
        let mut d = db();
        d.create_table("t", galaxy_schema()).unwrap();
        for i in 0..100 {
            d.insert("t", g(i, 0.0, 0.0, 0.0)).unwrap();
        }
        let mut n = 0;
        d.scan_with("t", |_| {
            n += 1;
            Ok(n < 10)
        })
        .unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn cursor_walks_clustered_table_in_key_order() {
        let mut d = db();
        d.create_clustered_table("galaxy", galaxy_schema(), &["objid"]).unwrap();
        for id in [30i64, 10, 20] {
            d.insert("galaxy", g(id, 0.0, 0.0, 0.0)).unwrap();
        }
        let mut c = d.cursor("galaxy").unwrap();
        let mut seen = Vec::new();
        while let Some(row) = c.fetch_next(&d).unwrap() {
            seen.push(row.i64(0).unwrap());
        }
        assert_eq!(seen, vec![10, 20, 30]);
        assert!(c.fetch_next(&d).unwrap().is_none(), "stays done");
    }

    #[test]
    fn cursor_walks_heap() {
        let mut d = db();
        d.create_table("t", galaxy_schema()).unwrap();
        for i in 0..250 {
            d.insert("t", g(i, 0.0, 0.0, 0.0)).unwrap();
        }
        let mut c = d.cursor("t").unwrap();
        let mut n = 0;
        while c.fetch_next(&d).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 250);
    }

    #[test]
    fn schema_violations_rejected() {
        let mut d = db();
        d.create_table("t", galaxy_schema()).unwrap();
        let bad = Row(vec![Value::Text("no".into()), Value::Float(0.0), Value::Float(0.0), Value::Real(0.0)]);
        assert!(matches!(d.insert("t", bad), Err(DbError::SchemaMismatch(_))));
    }

    #[test]
    fn missing_table_errors() {
        let d = db();
        assert!(matches!(d.scan("ghost"), Err(DbError::NoSuchTable(_))));
    }

    #[test]
    fn create_duplicate_table_errors() {
        let mut d = db();
        d.create_table("t", galaxy_schema()).unwrap();
        assert!(matches!(
            d.create_table("T", galaxy_schema()),
            Err(DbError::TableExists(_))
        ));
    }

    #[test]
    fn run_task_reports_io_delta() {
        let mut d = db();
        d.create_clustered_table("t", galaxy_schema(), &["objid"]).unwrap();
        let ((), stats) = d
            .run_task("load", |db| {
                for i in 0..1000 {
                    db.insert("t", g(i, f64::from(i as i32), 0.0, 0.0))?;
                }
                Ok(())
            })
            .unwrap();
        assert!(stats.logical_reads > 1000, "inserts must touch pages");
        assert_eq!(stats.name, "load");
        // A second task sees only its own delta.
        let (rows, stats2) = d.run_task("scan", |db| db.scan("t")).unwrap();
        assert_eq!(rows.len(), 1000);
        assert!(stats2.logical_reads < stats.logical_reads);
    }

    #[test]
    fn secondary_index_lifecycle() {
        let mut d = db();
        d.create_clustered_table("galaxy", galaxy_schema(), &["objid"]).unwrap();
        for id in 0..200i64 {
            d.insert("galaxy", g(id, 180.0 + f64::from(id as i32) * 0.01, 0.0, (id % 7) as f32))
                .unwrap();
        }
        d.create_index("galaxy", "ix_i", &["i"]).unwrap();
        assert_eq!(d.index_names("galaxy").unwrap(), vec!["ix_i"]);
        // Seek i = 3 through the index: ids 3, 10, 17, ...
        let mut ids = Vec::new();
        d.index_range_scan(
            "galaxy",
            "ix_i",
            &[Value::Real(3.0)],
            &[Value::Real(3.0)],
            |row| {
                ids.push(row.i64(0).unwrap());
                Ok(true)
            },
        )
        .unwrap();
        assert_eq!(ids.len(), 200 / 7 + 1);
        assert!(ids.iter().all(|id| id % 7 == 3));
        // Inserts and deletes maintain the index.
        d.insert("galaxy", g(1000, 185.0, 0.0, 3.0)).unwrap();
        d.delete_by_key("galaxy", &[Value::BigInt(3)]).unwrap();
        let mut ids2 = Vec::new();
        d.index_range_scan(
            "galaxy",
            "ix_i",
            &[Value::Real(3.0)],
            &[Value::Real(3.0)],
            |row| {
                ids2.push(row.i64(0).unwrap());
                Ok(true)
            },
        )
        .unwrap();
        assert!(ids2.contains(&1000));
        assert!(!ids2.contains(&3));
        // Range over the index prefix.
        let mut n = 0;
        d.index_range_scan(
            "galaxy",
            "ix_i",
            &[Value::Real(0.0)],
            &[Value::Real(1.0)],
            |_| {
                n += 1;
                Ok(true)
            },
        )
        .unwrap();
        assert!(n > 40, "i in {{0,1}} covers ~2/7 of rows, got {n}");
        // Truncate empties the index.
        d.truncate("galaxy").unwrap();
        let mut any = false;
        d.index_range_scan(
            "galaxy",
            "ix_i",
            &[Value::Real(0.0)],
            &[Value::Real(9.0)],
            |_| {
                any = true;
                Ok(true)
            },
        )
        .unwrap();
        assert!(!any);
        d.drop_index("galaxy", "ix_i").unwrap();
        assert!(d.drop_index("galaxy", "ix_i").is_err());
    }

    #[test]
    fn duplicate_index_name_rejected() {
        let mut d = db();
        d.create_clustered_table("t", galaxy_schema(), &["objid"]).unwrap();
        d.create_index("t", "ix", &["ra"]).unwrap();
        assert!(matches!(d.create_index("t", "IX", &["dec"]), Err(DbError::TableExists(_))));
    }

    #[test]
    fn heap_tables_reject_indexes_on_insert() {
        let mut d = db();
        d.create_table("h", galaxy_schema()).unwrap();
        assert!(d.create_index("h", "ix", &["ra"]).is_err());
    }

    #[test]
    fn reader_supports_concurrent_scans_and_gets() {
        let mut d = db();
        d.create_clustered_table("galaxy", galaxy_schema(), &["objid"]).unwrap();
        for id in 0..500i64 {
            d.insert("galaxy", g(id, 180.0 + id as f64 * 0.01, 0.0, (id % 9) as f32))
                .unwrap();
        }
        let reader = d.reader();
        std::thread::scope(|scope| {
            for t in 0..4i64 {
                scope.spawn(move || {
                    // Point lookups.
                    for id in (t * 125)..((t + 1) * 125) {
                        let row = reader.get("galaxy", &[Value::BigInt(id)]).unwrap().unwrap();
                        assert_eq!(row.i64(0).unwrap(), id);
                    }
                    // Range scan over a prefix window.
                    let mut n = 0;
                    reader
                        .range_scan_prefix(
                            "galaxy",
                            &[Value::BigInt(100)],
                            &[Value::BigInt(199)],
                            |_| {
                                n += 1;
                                Ok(true)
                            },
                        )
                        .unwrap();
                    assert_eq!(n, 100);
                    // Full scan.
                    let mut total = 0;
                    reader
                        .scan_with("galaxy", |_| {
                            total += 1;
                            Ok(true)
                        })
                        .unwrap();
                    assert_eq!(total, 500);
                });
            }
        });
    }

    #[test]
    fn epochs_move_on_every_mutation_and_never_repeat() {
        let mut d = db();
        d.create_clustered_table("t", galaxy_schema(), &["objid"]).unwrap();
        let e0 = d.table_epoch("t").unwrap();
        d.insert("t", g(1, 180.0, 0.0, 17.0)).unwrap();
        let e1 = d.table_epoch("t").unwrap();
        assert!(e1 > e0, "insert must bump the epoch");
        d.delete_by_key("t", &[Value::BigInt(1)]).unwrap();
        let e2 = d.table_epoch("t").unwrap();
        assert!(e2 > e1, "delete must bump the epoch");
        d.truncate("t").unwrap();
        let e3 = d.table_epoch("t").unwrap();
        assert!(e3 > e2, "truncate must bump the epoch");
        // Reads never move the epoch.
        d.scan("t").unwrap();
        d.get("t", &[Value::BigInt(1)]).unwrap();
        assert_eq!(d.table_epoch("t").unwrap(), e3);
        // Drop + recreate cannot alias an old epoch.
        d.drop_table("t").unwrap();
        assert!(d.table_epoch("t").is_err());
        d.create_clustered_table("t", galaxy_schema(), &["objid"]).unwrap();
        assert!(d.table_epoch("t").unwrap() > e3, "recreated table must get a fresh epoch");
        // Epochs are per table: mutating one leaves the other untouched.
        d.create_table("other", galaxy_schema()).unwrap();
        let et = d.table_epoch("t").unwrap();
        d.insert("other", g(9, 0.0, 0.0, 0.0)).unwrap();
        assert_eq!(d.table_epoch("t").unwrap(), et);
    }

    #[test]
    fn scan_raw_streams_payloads_in_key_order() {
        let mut d = db();
        d.create_clustered_table("t", galaxy_schema(), &["objid"]).unwrap();
        for id in [30i64, 10, 20] {
            d.insert("t", g(id, f64::from(id as i32), 0.0, 0.0)).unwrap();
        }
        let mut ids = Vec::new();
        d.scan_raw("t", |payload| {
            ids.push(Row::decode(payload, 4).unwrap().i64(0).unwrap());
            true
        })
        .unwrap();
        assert_eq!(ids, vec![10, 20, 30]);
        // Early stop.
        let mut n = 0;
        d.scan_raw("t", |_| {
            n += 1;
            false
        })
        .unwrap();
        assert_eq!(n, 1);
        // Heaps have no clustered payload stream.
        d.create_table("h", galaxy_schema()).unwrap();
        assert!(d.scan_raw("h", |_| true).is_err());
    }

    #[test]
    fn drop_table_removes() {
        let mut d = db();
        d.create_table("t", galaxy_schema()).unwrap();
        d.drop_table("t").unwrap();
        assert!(!d.has_table("t"));
        assert!(d.drop_table("t").is_err());
    }
}
