//! Distributed exchange operators: the gather side of scatter–gather.
//!
//! A distributed query ships each shard's partial result back to the
//! coordinator as wire-encoded rows decoded into [`ColumnBatch`]es (one
//! stream of batches per shard, indexed by shard id). The operators here
//! recombine those streams:
//!
//! * [`union_streams`] — concatenation in shard-id order, for queries with
//!   no required output order;
//! * [`merge_streams`] — order-preserving k-way merge on sort keys, for
//!   queries whose per-shard subqueries were already sorted;
//! * [`merge_top_n`] — distributed TopN: every shard ships its local
//!   top-n, the coordinator merges and keeps the global first n;
//! * [`dedup_sorted_rows`] — adjacent-duplicate elimination over a merged
//!   sorted stream, for DISTINCT.
//!
//! Every operator is a pure function of `(streams indexed by shard id,
//! keys)`: shard *arrival* order and the batch boundaries inside a stream
//! cannot change the output. Ties compare by the lowest shard id, so even
//! partial sort keys yield one deterministic answer. NULLs sort first and
//! floats compare via `total_cmp`, exactly like the single-node engine
//! ([`Value::total_cmp`]), so a merge of sorted shard streams is
//! indistinguishable from one node having sorted the union.

use crate::colbatch::ColumnBatch;
use crate::row::Row;
use crate::value::Value;
use std::cmp::Ordering;
use std::sync::OnceLock;

/// One sort key at the gather point: output-column position + direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Column position in the shipped row.
    pub col: usize,
    /// Descending?
    pub desc: bool,
}

/// The canonical key list for `width`-column rows: the query's explicit
/// keys first, then every remaining column ascending. Under this list two
/// rows compare equal only if they are identical value-for-value, which is
/// what makes per-shard `ORDER BY` + gather merge reproduce one canonical
/// order at any node count.
pub fn canonical_keys(width: usize, explicit: &[SortKey]) -> Vec<SortKey> {
    let mut keys: Vec<SortKey> = explicit.to_vec();
    for col in 0..width {
        if !explicit.iter().any(|k| k.col == col) {
            keys.push(SortKey { col, desc: false });
        }
    }
    keys
}

/// Compare row `ai` of `a` against row `bi` of `b` under `keys`.
pub fn cmp_at(a: &ColumnBatch, ai: usize, b: &ColumnBatch, bi: usize, keys: &[SortKey]) -> Ordering {
    for k in keys {
        let va = a.value(k.col, ai);
        let vb = b.value(k.col, bi);
        let ord = va.total_cmp(&vb);
        let ord = if k.desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Cursor over one shard's stream of batches.
struct Cursor<'a> {
    batches: &'a [ColumnBatch],
    batch: usize,
    row: usize,
}

impl<'a> Cursor<'a> {
    fn new(batches: &'a [ColumnBatch]) -> Self {
        let mut c = Cursor { batches, batch: 0, row: 0 };
        c.skip_empty();
        c
    }

    fn skip_empty(&mut self) {
        while self.batch < self.batches.len() && self.row >= self.batches[self.batch].len() {
            self.batch += 1;
            self.row = 0;
        }
    }

    fn peek(&self) -> Option<(&'a ColumnBatch, usize)> {
        (self.batch < self.batches.len()).then(|| (&self.batches[self.batch], self.row))
    }

    fn advance(&mut self) {
        self.row += 1;
        self.skip_empty();
    }
}

/// Union exchange: concatenate the shard streams in shard-id order.
pub fn union_streams(streams: &[Vec<ColumnBatch>]) -> Vec<Row> {
    let mut out = Vec::new();
    for stream in streams {
        for batch in stream {
            out.extend(batch.to_rows());
        }
    }
    out
}

/// Merge exchange: order-preserving k-way merge of per-shard sorted
/// streams under `keys`; key-ties take the lowest shard id first. With a
/// small k a linear minimum scan per output row is both simpler and
/// faster than a heap, and its tie behavior is transparent.
pub fn merge_streams(streams: &[Vec<ColumnBatch>], keys: &[SortKey]) -> Vec<Row> {
    let mut cursors: Vec<Cursor> = streams.iter().map(|s| Cursor::new(s)).collect();
    let total: usize = streams.iter().flatten().map(ColumnBatch::len).sum();
    let mut out = Vec::with_capacity(total);
    loop {
        let mut best: Option<usize> = None;
        for (i, cur) in cursors.iter().enumerate() {
            let Some((batch, row)) = cur.peek() else { continue };
            best = match best {
                None => Some(i),
                Some(j) => {
                    let (jb, jr) = cursors[j].peek().expect("best cursor is live");
                    // Strictly-less wins; ties keep the earlier shard.
                    if cmp_at(batch, row, jb, jr, keys) == Ordering::Less {
                        Some(i)
                    } else {
                        Some(j)
                    }
                }
            };
        }
        let Some(i) = best else { break };
        let (batch, row) = cursors[i].peek().expect("chosen cursor is live");
        out.push(batch.row(row));
        cursors[i].advance();
    }
    out
}

/// Distributed TopN gather: merge the per-shard top-n streams and keep the
/// global first `n`. Correct because selection of the first `n` under a
/// total order distributes over partitions: the global top-n is contained
/// in the union of per-shard top-n's.
pub fn merge_top_n(streams: &[Vec<ColumnBatch>], keys: &[SortKey], n: usize) -> Vec<Row> {
    let mut rows = merge_streams(streams, keys);
    rows.truncate(n);
    rows
}

/// Adjacent-duplicate elimination over an already-merged sorted stream —
/// the distributed DISTINCT finalizer. Rows compare by value identity
/// (every column, `total_cmp`), matching the engine's sorted-distinct.
pub fn dedup_sorted_rows(rows: Vec<Row>) -> Vec<Row> {
    let mut out: Vec<Row> = Vec::with_capacity(rows.len());
    for row in rows {
        let dup = out.last().is_some_and(|prev| {
            prev.0.len() == row.0.len()
                && prev.0.iter().zip(&row.0).all(|(a, b)| a.total_cmp(b) == Ordering::Equal)
        });
        if !dup {
            out.push(row);
        }
    }
    out
}

/// Decode wire-encoded row payloads (shard-id order) into a stream of
/// column batches of at most `batch_rows` rows each. Column dtypes are
/// inferred from the first non-NULL wire tag seen per column across the
/// payloads — the coordinator does not need the shard's schema in hand,
/// only its bytes, mirroring how a networked gather would work.
pub fn decode_wire_stream(
    payloads: &[Vec<u8>],
    dtypes: &[crate::value::DataType],
    batch_rows: usize,
) -> crate::error::DbResult<Vec<ColumnBatch>> {
    let mut out = Vec::new();
    let mut batch = ColumnBatch::with_capacity(dtypes, batch_rows.min(payloads.len()));
    for payload in payloads {
        if batch.len() >= batch_rows {
            out.push(std::mem::replace(&mut batch, ColumnBatch::with_capacity(dtypes, batch_rows)));
        }
        batch.push_wire(payload)?;
    }
    if !batch.is_empty() || out.is_empty() {
        out.push(batch);
    }
    Ok(out)
}

/// Infer per-column dtypes from wire payloads: the first non-NULL tag per
/// column wins, scanning payloads in order. Columns that are NULL in every
/// row fall back to `BigInt` (any dtype accepts NULLs on the wire).
pub fn infer_wire_dtypes(
    payloads: &[Vec<u8>],
    width: usize,
) -> crate::error::DbResult<Vec<crate::value::DataType>> {
    use crate::value::DataType;
    let mut dtypes: Vec<Option<DataType>> = vec![None; width];
    for payload in payloads {
        if dtypes.iter().all(|d| d.is_some()) {
            break;
        }
        let row = Row::decode(payload, width)?;
        for (slot, v) in dtypes.iter_mut().zip(&row.0) {
            if slot.is_none() {
                *slot = match v {
                    Value::Null => None,
                    Value::BigInt(_) => Some(DataType::BigInt),
                    Value::Int(_) => Some(DataType::Int),
                    Value::Real(_) => Some(DataType::Real),
                    Value::Float(_) => Some(DataType::Float),
                    Value::Text(_) => Some(DataType::Text),
                };
            }
        }
    }
    Ok(dtypes.into_iter().map(|d| d.unwrap_or(DataType::BigInt)).collect())
}

// ---- telemetry --------------------------------------------------------------

/// The `stardb.dist.*` counter family, registered once.
pub struct DistCounters {
    /// Subqueries scattered to shard-holding nodes.
    pub subqueries: obs::Counter,
    /// Shards skipped by zone-range pruning (not contacted at all).
    pub shards_pruned: obs::Counter,
    /// Rows shipped shard → coordinator.
    pub rows_shipped: obs::Counter,
    /// Wire bytes shipped shard → coordinator.
    pub bytes_shipped: obs::Counter,
    /// Subquery attempts beyond the first (crash failovers).
    pub retries: obs::Counter,
}

/// Lazily-registered singleton for the `stardb.dist.*` counters.
pub fn dist_counters() -> &'static DistCounters {
    static C: OnceLock<DistCounters> = OnceLock::new();
    C.get_or_init(|| DistCounters {
        subqueries: obs::counter("stardb.dist.subqueries"),
        shards_pruned: obs::counter("stardb.dist.shards_pruned"),
        rows_shipped: obs::counter("stardb.dist.rows_shipped"),
        bytes_shipped: obs::counter("stardb.dist.bytes_shipped"),
        retries: obs::counter("stardb.dist.retries"),
    })
}

/// End-to-end scatter–gather latency per distributed query, nanoseconds.
pub fn gather_latency() -> &'static obs::Histogram {
    static H: OnceLock<obs::Histogram> = OnceLock::new();
    H.get_or_init(|| obs::histogram("stardb.dist.gather_latency_ns"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn batch(rows: &[Vec<Value>]) -> ColumnBatch {
        let rows: Vec<Row> = rows.iter().map(|r| Row(r.clone())).collect();
        ColumnBatch::from_rows(&[DataType::BigInt, DataType::Float], &rows).unwrap()
    }

    fn ints(rows: &[(i64, f64)]) -> ColumnBatch {
        batch(
            &rows
                .iter()
                .map(|&(a, b)| vec![Value::BigInt(a), Value::Float(b)])
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn merge_interleaves_sorted_streams() {
        let streams = vec![
            vec![ints(&[(1, 0.5)]), ints(&[(4, 0.1)])],
            vec![ints(&[(2, 0.2), (3, 0.9)])],
        ];
        let keys = [SortKey { col: 0, desc: false }];
        let rows = merge_streams(&streams, &keys);
        let got: Vec<i64> = rows
            .iter()
            .map(|r| match r.0[0] {
                Value::BigInt(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn merge_is_insensitive_to_batch_splits() {
        let whole = vec![vec![ints(&[(1, 1.0), (3, 3.0), (5, 5.0)])], vec![ints(&[(2, 2.0)])]];
        let split = vec![
            vec![ints(&[(1, 1.0)]), ints(&[]), ints(&[(3, 3.0), (5, 5.0)])],
            vec![ints(&[]), ints(&[(2, 2.0)])],
        ];
        let keys = [SortKey { col: 0, desc: false }];
        assert_eq!(merge_streams(&whole, &keys), merge_streams(&split, &keys));
    }

    #[test]
    fn merge_ties_keep_shard_id_order() {
        let streams =
            vec![vec![ints(&[(7, 1.0)])], vec![ints(&[(7, 2.0)])], vec![ints(&[(7, 3.0)])]];
        let keys = [SortKey { col: 0, desc: false }];
        let rows = merge_streams(&streams, &keys);
        let payload: Vec<f64> = rows
            .iter()
            .map(|r| match r.0[1] {
                Value::Float(f) => f,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(payload, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn nulls_sort_first_and_nans_merge_totally() {
        let streams = vec![
            vec![batch(&[vec![Value::Null, Value::Float(0.0)]])],
            vec![ints(&[(1, f64::NAN)])],
        ];
        let keys = [SortKey { col: 0, desc: false }];
        let rows = merge_streams(&streams, &keys);
        assert!(rows[0].0[0].is_null(), "NULL key must gather first");
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn top_n_takes_global_prefix() {
        let streams = vec![vec![ints(&[(1, 1.0), (5, 5.0)])], vec![ints(&[(2, 2.0), (9, 9.0)])]];
        let keys = [SortKey { col: 0, desc: false }];
        let rows = merge_top_n(&streams, &keys, 3);
        let got: Vec<i64> = rows
            .iter()
            .map(|r| match r.0[0] {
                Value::BigInt(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![1, 2, 5]);
    }

    #[test]
    fn dedup_removes_only_adjacent_identical_rows() {
        let rows = vec![
            Row(vec![Value::BigInt(1), Value::Float(1.0)]),
            Row(vec![Value::BigInt(1), Value::Float(1.0)]),
            Row(vec![Value::BigInt(1), Value::Float(2.0)]),
            Row(vec![Value::BigInt(2), Value::Float(2.0)]),
        ];
        assert_eq!(dedup_sorted_rows(rows).len(), 3);
    }

    #[test]
    fn wire_round_trip_infers_dtypes_and_rebatches() {
        let src = ints(&[(10, 1.5), (20, 2.5), (30, 3.5)]);
        let payloads: Vec<Vec<u8>> = src.to_rows().iter().map(Row::encode).collect();
        let dtypes = infer_wire_dtypes(&payloads, 2).unwrap();
        assert_eq!(dtypes, vec![DataType::BigInt, DataType::Float]);
        let batches = decode_wire_stream(&payloads, &dtypes, 2).unwrap();
        assert_eq!(batches.len(), 2, "3 rows at 2 rows/batch = 2 batches");
        let rows: Vec<Row> = batches.iter().flat_map(ColumnBatch::to_rows).collect();
        assert_eq!(rows, src.to_rows());
    }

    #[test]
    fn all_null_column_still_decodes() {
        let payloads: Vec<Vec<u8>> =
            vec![Row(vec![Value::Null, Value::Text("x".into())]).encode()];
        let dtypes = infer_wire_dtypes(&payloads, 2).unwrap();
        assert_eq!(dtypes[0], DataType::BigInt, "all-NULL column falls back");
        let batches = decode_wire_stream(&payloads, &dtypes, 1024).unwrap();
        assert!(batches[0].value(0, 0).is_null());
    }

    #[test]
    fn canonical_keys_cover_every_column_once() {
        let keys = canonical_keys(4, &[SortKey { col: 2, desc: true }]);
        let cols: Vec<usize> = keys.iter().map(|k| k.col).collect();
        assert_eq!(cols, vec![2, 0, 1, 3]);
        assert!(keys[0].desc && keys.iter().skip(1).all(|k| !k.desc));
    }
}
