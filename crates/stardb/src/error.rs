//! Error type for the engine.

use std::fmt;

/// Errors surfaced by the storage and execution layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A table name was not found in the catalog.
    NoSuchTable(String),
    /// A column name was not found in a schema.
    NoSuchColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A row did not match the table schema (arity or type).
    SchemaMismatch(String),
    /// A duplicate key was inserted into a unique (clustered) index.
    DuplicateKey(String),
    /// A value could not be decoded from its on-page representation.
    Corrupt(String),
    /// A record was too large to fit in one page.
    RecordTooLarge {
        /// Size of the offending record in bytes.
        size: usize,
        /// Largest record the page layout accepts.
        max: usize,
    },
    /// The buffer pool could not evict any frame (everything pinned).
    BufferExhausted,
    /// An expression referenced an incompatible type.
    TypeError(String),
    /// An operating-system I/O failure from the store or the WAL.
    Io {
        /// What the engine was doing (`"read page"`, `"fsync wal"`, ...).
        op: String,
        /// OS-level detail, stringified (keeps the enum `Clone + Eq`).
        detail: String,
        /// Whether retrying the same operation can plausibly succeed.
        transient: bool,
    },
    /// The write-ahead log failed a checksum or structural check. Recovery
    /// truncates the log instead of raising this; it surfaces only when a
    /// caller asks for strict validation.
    WalCorrupt(String),
}

impl DbError {
    /// Whether the failure is transient — retrying the same work (or
    /// re-planning it over smaller partitions, §2.6's memory-fit loop) can
    /// succeed. Schema and corruption errors are permanent; buffer-pool
    /// pressure is a resource condition that a re-plan relieves, and an
    /// interrupted/timed-out I/O may complete on retry.
    pub fn is_transient(&self) -> bool {
        match self {
            DbError::BufferExhausted => true,
            DbError::Io { transient, .. } => *transient,
            _ => false,
        }
    }

    /// Wrap an OS error, classifying transience by its kind: interrupted
    /// and timed-out operations are retryable, everything else (bad fd,
    /// full disk, permission) is permanent.
    pub fn io(op: &str, err: &std::io::Error) -> DbError {
        use std::io::ErrorKind;
        let transient = matches!(
            err.kind(),
            ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock
        );
        DbError::Io { op: op.to_owned(), detail: err.to_string(), transient }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            DbError::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            DbError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            DbError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            DbError::BufferExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            DbError::TypeError(m) => write!(f, "type error: {m}"),
            DbError::Io { op, detail, transient } => {
                let kind = if *transient { "transient" } else { "permanent" };
                write!(f, "{kind} i/o error during {op}: {detail}")
            }
            DbError::WalCorrupt(m) => write!(f, "wal corrupt: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Result alias used throughout the engine.
pub type DbResult<T> = Result<T, DbError>;
