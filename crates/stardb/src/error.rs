//! Error type for the engine.

use std::fmt;

/// Errors surfaced by the storage and execution layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A table name was not found in the catalog.
    NoSuchTable(String),
    /// A column name was not found in a schema.
    NoSuchColumn(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A row did not match the table schema (arity or type).
    SchemaMismatch(String),
    /// A duplicate key was inserted into a unique (clustered) index.
    DuplicateKey(String),
    /// A value could not be decoded from its on-page representation.
    Corrupt(String),
    /// A record was too large to fit in one page.
    RecordTooLarge {
        /// Size of the offending record in bytes.
        size: usize,
        /// Largest record the page layout accepts.
        max: usize,
    },
    /// The buffer pool could not evict any frame (everything pinned).
    BufferExhausted,
    /// An expression referenced an incompatible type.
    TypeError(String),
}

impl DbError {
    /// Whether the failure is transient — retrying the same work (or
    /// re-planning it over smaller partitions, §2.6's memory-fit loop) can
    /// succeed. Schema and corruption errors are permanent; buffer-pool
    /// pressure is a resource condition that a re-plan relieves.
    pub fn is_transient(&self) -> bool {
        matches!(self, DbError::BufferExhausted)
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            DbError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::SchemaMismatch(m) => write!(f, "schema mismatch: {m}"),
            DbError::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            DbError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            DbError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            DbError::BufferExhausted => write!(f, "buffer pool exhausted: all frames pinned"),
            DbError::TypeError(m) => write!(f, "type error: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Result alias used throughout the engine.
pub type DbResult<T> = Result<T, DbError>;
