//! Relational operators.
//!
//! A compact pull-based operator set: filter, project, nested-loop join,
//! sort, limit, and grouped aggregation. The MaxBCG stored procedures are
//! hand-written loops (as stored procedures are), but the query-shaped
//! steps — the k-correction join of the Filter stage, the region selections
//! of Figures 4/5, CasJobs user queries — run through these operators, and
//! the cursor-vs-set ablation uses them as the set-based side.

use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::colbatch::ColumnBatch;
use crate::key::{encode_key, encode_value};
use crate::row::Row;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::OnceLock;

/// Rows dropped by [`filter`] predicates, workspace-wide.
pub(crate) fn rows_filtered() -> &'static obs::Counter {
    static C: OnceLock<obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("stardb.exec.rows_filtered"))
}

/// Row pairs a join operator examined (the nested-loop cost driver).
pub(crate) fn join_pairs() -> &'static obs::Counter {
    static C: OnceLock<obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("stardb.exec.join_pairs_examined"))
}

/// Rows produced by [`hash_join`] — the equi-join's output cardinality,
/// reported alongside the pair counter so the cursor-vs-set ablation can
/// show how much probing the hash table saved.
pub(crate) fn hash_join_rows() -> &'static obs::Counter {
    static C: OnceLock<obs::Counter> = OnceLock::new();
    C.get_or_init(|| obs::counter("stardb.exec.hash_join_rows"))
}

/// Keep rows matching `pred`.
pub fn filter(rows: Vec<Row>, pred: &Expr) -> DbResult<Vec<Row>> {
    let before = rows.len();
    let mut out = Vec::new();
    for row in rows {
        if pred.matches(&row)? {
            out.push(row);
        }
    }
    rows_filtered().add((before - out.len()) as u64);
    Ok(out)
}

/// Evaluate `exprs` for each row (SELECT list).
pub fn project(rows: &[Row], exprs: &[Expr]) -> DbResult<Vec<Row>> {
    rows.iter()
        .map(|row| {
            exprs
                .iter()
                .map(|e| e.eval(row))
                .collect::<DbResult<Vec<Value>>>()
                .map(Row)
        })
        .collect()
}

/// Concatenated arity of a joined row (0 + 0 for two empty inputs, where
/// no row is ever built).
fn joined_arity(left: &[Row], right: &[Row]) -> usize {
    left.first().map_or(0, Row::arity) + right.first().map_or(0, Row::arity)
}

/// Nested-loop inner join: concatenated rows where `on` holds. `on` sees
/// the concatenated row (left columns first).
///
/// One scratch row is reused across all pairs; only pairs that pass the
/// predicate pay a clone, and that clone is sized to the exact joined
/// arity — the straightforward clone-extend-wrap per probe pair costs two
/// allocations per *examined* pair, which dominates selective joins.
pub fn nested_loop_join(left: &[Row], right: &[Row], on: &Expr) -> DbResult<Vec<Row>> {
    join_pairs().add((left.len() * right.len()) as u64);
    let mut out = Vec::new();
    let mut scratch = Row(Vec::with_capacity(joined_arity(left, right)));
    for l in left {
        for r in right {
            scratch.0.clear();
            scratch.0.extend_from_slice(&l.0);
            scratch.0.extend_from_slice(&r.0);
            if on.matches(&scratch)? {
                out.push(Row(scratch.0.clone()));
            }
        }
    }
    Ok(out)
}

/// Hash inner equi-join on `left[left_col] == right[right_col]`.
///
/// Builds on the right input, probes with the left, and emits rows in
/// left-major order with right rows in input order — exactly the order
/// [`nested_loop_join`] produces — so the two operators are
/// interchangeable wherever the equality is well-typed. Keys are hashed
/// through their order-preserving key encoding, which never equates
/// values of different column types; callers (the SQL engine) pick this
/// operator only when both columns share a `DataType`, leaving
/// cross-type numeric coercion to the nested loop. NULL keys match
/// nothing on either side, per SQL three-valued logic.
pub fn hash_join(left: &[Row], right: &[Row], left_col: usize, right_col: usize) -> Vec<Row> {
    let mut table = HashTable::build(right.to_vec(), right_col);
    table.probe(left, left_col)
}

/// The build side of a hash equi-join, reusable across probe batches so
/// the streaming executor builds once and probes one left batch at a time.
///
/// Keys hash through their order-preserving key encoding, which never
/// equates values of different column types; callers pick the hash path
/// only when both columns share a `DataType`. NULL keys are skipped on
/// both sides, per SQL three-valued logic.
pub struct HashTable {
    rows: Vec<Row>,
    map: HashMap<Vec<u8>, Vec<usize>>,
    right_arity: usize,
    /// Probe-key encode buffer, reused across probe rows *and* batches —
    /// the streaming executor probes thousands of batches through one
    /// table, and a fresh `Vec` per probe row was pure allocator churn.
    scratch: Vec<u8>,
}

impl HashTable {
    /// Hash `right` on `right_col`. Counts one examined pair per build row.
    pub fn build(right: Vec<Row>, right_col: usize) -> Self {
        join_pairs().add(right.len() as u64);
        let mut map: HashMap<Vec<u8>, Vec<usize>> = HashMap::with_capacity(right.len());
        for (i, r) in right.iter().enumerate() {
            let k = &r.0[right_col];
            if k.is_null() {
                continue;
            }
            map.entry(encode_key(std::slice::from_ref(k))).or_default().push(i);
        }
        let right_arity = right.first().map_or(0, Row::arity);
        HashTable { rows: right, map, right_arity, scratch: Vec::new() }
    }

    /// Probe with a batch of left rows; emits concatenated rows in
    /// left-major order with build rows in input order — exactly the order
    /// [`nested_loop_join`] produces, so the operators are interchangeable.
    pub fn probe(&mut self, left: &[Row], left_col: usize) -> Vec<Row> {
        join_pairs().add(left.len() as u64);
        let arity = left.first().map_or(0, Row::arity) + self.right_arity;
        let mut out = Vec::with_capacity(left.len());
        for l in left {
            let k = &l.0[left_col];
            if k.is_null() {
                continue;
            }
            self.scratch.clear();
            encode_value(k, &mut self.scratch);
            let Some(hits) = self.map.get(self.scratch.as_slice()) else {
                continue;
            };
            for &i in hits {
                let mut joined = Vec::with_capacity(arity);
                joined.extend_from_slice(&l.0);
                joined.extend_from_slice(&self.rows[i].0);
                out.push(Row(joined));
            }
        }
        hash_join_rows().add(out.len() as u64);
        out
    }
}

/// CROSS JOIN (the paper's `Galaxy CROSS JOIN Kcorr` filter step).
pub fn cross_join(left: &[Row], right: &[Row]) -> Vec<Row> {
    join_pairs().add((left.len() * right.len()) as u64);
    let arity = joined_arity(left, right);
    let mut out = Vec::with_capacity(left.len() * right.len());
    for l in left {
        for r in right {
            let mut joined = Vec::with_capacity(arity);
            joined.extend_from_slice(&l.0);
            joined.extend_from_slice(&r.0);
            out.push(Row(joined));
        }
    }
    out
}

/// Sort by the listed column positions ascending.
pub fn sort_by_cols(rows: Vec<Row>, cols: &[usize]) -> Vec<Row> {
    let keys: Vec<(usize, bool)> = cols.iter().map(|&c| (c, false)).collect();
    sort_by_keys(rows, &keys)
}

/// Stable sort by `(column, descending)` keys (SQL `ORDER BY`).
pub fn sort_by_keys(mut rows: Vec<Row>, keys: &[(usize, bool)]) -> Vec<Row> {
    rows.sort_by(|a, b| cmp_rows(a, b, keys));
    rows
}

fn cmp_rows(a: &Row, b: &Row, keys: &[(usize, bool)]) -> Ordering {
    for &(c, desc) in keys {
        let ord = a[c].total_cmp(&b[c]);
        let ord = if desc { ord.reverse() } else { ord };
        match ord {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// First `n` rows (SQL `TOP n`).
pub fn limit(mut rows: Vec<Row>, n: usize) -> Vec<Row> {
    rows.truncate(n);
    rows
}

/// Bounded top-N accumulator: the `ORDER BY … LIMIT n` short-circuit.
///
/// Keeps the `n` best rows seen so far in a max-heap keyed by the sort
/// keys plus arrival order, so the result — including how ties are broken
/// — is exactly what a stable sort followed by `truncate(n)` produces,
/// without ever buffering more than `n` rows.
pub struct TopN {
    keys: Vec<(usize, bool)>,
    n: usize,
    heap: BinaryHeap<TopNEntry>,
    seq: u64,
    evictions: u64,
}

/// Heap entry carrying its extracted `(key value, descending)` pairs and
/// arrival sequence, so the max-heap's `Ord` bound is self-contained and
/// the ranking is exactly [`cmp_rows`] — including across numeric types,
/// where the key codec's byte order diverges (it groups by type tag,
/// `total_cmp` compares numerically).
struct TopNEntry {
    keys: Vec<(Value, bool)>,
    seq: u64,
    row: Row,
}

impl TopNEntry {
    fn rank(&self, other: &Self) -> Ordering {
        for ((a, desc), (b, _)) in self.keys.iter().zip(&other.keys) {
            let ord = a.total_cmp(b);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        self.seq.cmp(&other.seq)
    }
}

impl PartialEq for TopNEntry {
    fn eq(&self, other: &Self) -> bool {
        self.rank(other) == Ordering::Equal
    }
}
impl Eq for TopNEntry {}
impl PartialOrd for TopNEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TopNEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.rank(other)
    }
}

impl TopN {
    /// A top-N accumulator over `(column, descending)` sort keys.
    pub fn new(keys: Vec<(usize, bool)>, n: usize) -> Self {
        TopN { keys, n, heap: BinaryHeap::new(), seq: 0, evictions: 0 }
    }

    /// Offer one row; kept only if it ranks among the best `n` so far.
    /// Equal keys rank by arrival order — the stability guarantee.
    pub fn push(&mut self, row: Row) {
        if self.n == 0 {
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        if self.heap.len() >= self.n {
            // Rank the candidate against the current worst by *reference*
            // before paying the key clones. Key ties lose: the candidate's
            // larger arrival sequence ranks it after the incumbent.
            let keeps = self.heap.peek().is_some_and(|worst| {
                self.keys
                    .iter()
                    .zip(&worst.keys)
                    .find_map(|(&(c, desc), (wv, _))| {
                        let ord = row[c].total_cmp(wv);
                        let ord = if desc { ord.reverse() } else { ord };
                        (ord != Ordering::Equal).then_some(ord)
                    })
                    .is_some_and(|ord| ord == Ordering::Less)
            });
            if !keeps {
                return;
            }
            self.heap.pop();
            self.evictions += 1;
        }
        let keys = self.keys.iter().map(|&(c, desc)| (row[c].clone(), desc)).collect();
        self.heap.push(TopNEntry { keys, seq, row });
    }

    /// Rows that entered the heap and were later displaced by a better
    /// row — the work the bounded heap does beyond a plain `take(n)`.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// The best `n` rows in sort order (ties keep arrival order, exactly
    /// as a stable sort followed by `truncate(n)` would).
    pub fn finish(self) -> Vec<Row> {
        self.heap.into_sorted_vec().into_iter().map(|e| e.row).collect()
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// `COUNT(*)`.
    Count,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `SUM(expr)`.
    Sum,
    /// `AVG(expr)`.
    Avg,
}

/// One aggregate specification: the function and its argument (ignored for
/// `Count`).
pub struct AggSpec {
    /// Aggregate function.
    pub agg: Agg,
    /// Argument expression (use `Expr::lit(0)` for COUNT).
    pub arg: Expr,
}

/// GROUP BY `group_col` (pass `None` for a single global group), computing
/// `aggs`. Output rows are `[group_key?, agg_0, agg_1, ...]`, ordered by
/// group key.
pub fn aggregate(rows: &[Row], group_col: Option<usize>, aggs: &[AggSpec]) -> DbResult<Vec<Row>> {
    let mut state = GroupState::new(group_col, aggs);
    for row in rows {
        state.update(row)?;
    }
    state.finish()
}

/// One aggregate's running state. MIN/MAX track the actual `Value` under
/// total order (so integer columns stay integers and text is comparable);
/// SUM keeps an exact `i128` alongside the float accumulator and reports
/// `BIGINT` when every input was an integer — type fidelity the old
/// everything-through-`f64` accumulator silently lost.
struct Acc {
    count: u64,
    seen: u64,
    min: Option<Value>,
    max: Option<Value>,
    fsum: f64,
    isum: i128,
    ints_only: bool,
}

impl Acc {
    fn new() -> Self {
        Acc { count: 0, seen: 0, min: None, max: None, fsum: 0.0, isum: 0, ints_only: true }
    }
}

/// Incremental grouped-aggregation state: the streaming executor feeds it
/// one batch at a time and materializes only the group table, never the
/// input. [`aggregate`] is the fold-it-all-at-once convenience wrapper.
pub struct GroupState<'a> {
    group_col: Option<usize>,
    aggs: &'a [AggSpec],
    // Group keys are compared via total order; a Vec keeps groups sorted.
    groups: Vec<(Option<Value>, Vec<Acc>)>,
}

impl<'a> GroupState<'a> {
    /// Empty state for `GROUP BY group_col` (`None` = one global group).
    pub fn new(group_col: Option<usize>, aggs: &'a [AggSpec]) -> Self {
        GroupState { group_col, aggs, groups: Vec::new() }
    }

    /// Resolve (inserting if new) the group index for `key`.
    fn group_idx(&mut self, key: Option<Value>) -> usize {
        match self.groups.binary_search_by(|(k, _)| cmp_opt(k, &key)) {
            Ok(i) => i,
            Err(i) => {
                self.groups.insert(i, (key, self.aggs.iter().map(|_| Acc::new()).collect()));
                i
            }
        }
    }

    /// Fold one input row into its group.
    pub fn update(&mut self, row: &Row) -> DbResult<()> {
        let key = self.group_col.map(|c| row[c].clone());
        let idx = self.group_idx(key);
        for (spec, acc) in self.aggs.iter().zip(&mut self.groups[idx].1) {
            acc.count += 1;
            if spec.agg == Agg::Count {
                continue;
            }
            let v = spec.arg.eval(row)?;
            if !v.is_null() {
                fold_value(spec.agg, acc, v)?;
            }
        }
        Ok(())
    }

    /// Fold a whole column-major batch, accumulating columnwise: group
    /// indices are resolved once per row up front (two passes, so
    /// mid-batch group inserts cannot shift already-resolved indices),
    /// then each aggregate sweeps its argument column in a tight loop,
    /// touching the null bitmap instead of matching `Value::Null`. The
    /// per-(group, aggregate) value sequences are exactly those of
    /// row-at-a-time [`GroupState::update`], so float accumulation order
    /// — and therefore every emitted bit — is identical.
    pub fn update_columns(&mut self, batch: &ColumnBatch) -> DbResult<()> {
        let n = batch.len();
        if n == 0 {
            return Ok(());
        }
        let mut idxs: Vec<u32> = Vec::with_capacity(n);
        match self.group_col {
            None => {
                let g = self.group_idx(None) as u32;
                idxs.resize(n, g);
            }
            Some(c) => {
                for i in 0..n {
                    self.group_idx(Some(batch.value(c, i)));
                }
                for i in 0..n {
                    let key = Some(batch.value(c, i));
                    let g = self
                        .groups
                        .binary_search_by(|(k, _)| cmp_opt(k, &key))
                        .expect("inserted in first pass");
                    idxs.push(g as u32);
                }
            }
        }
        for (s, spec) in self.aggs.iter().enumerate() {
            for &g in &idxs {
                self.groups[g as usize].1[s].count += 1;
            }
            if spec.agg == Agg::Count {
                continue;
            }
            match &spec.arg {
                // The common shape: aggregate over a plain column.
                Expr::Col(c) => {
                    let col = batch.col(*c);
                    match (spec.agg, &col.data) {
                        // SUM/AVG over numeric buffers accumulate without
                        // materializing a single `Value`.
                        (Agg::Sum | Agg::Avg, crate::colbatch::ColumnData::BigInt(vals)) => {
                            for (i, &g) in idxs.iter().enumerate() {
                                if !col.is_null(i) {
                                    let acc = &mut self.groups[g as usize].1[s];
                                    acc.seen += 1;
                                    acc.fsum += vals[i] as f64;
                                    acc.isum += i128::from(vals[i]);
                                }
                            }
                        }
                        (Agg::Sum | Agg::Avg, crate::colbatch::ColumnData::Int(vals)) => {
                            for (i, &g) in idxs.iter().enumerate() {
                                if !col.is_null(i) {
                                    let acc = &mut self.groups[g as usize].1[s];
                                    acc.seen += 1;
                                    acc.fsum += f64::from(vals[i]);
                                    acc.isum += i128::from(vals[i]);
                                }
                            }
                        }
                        (Agg::Sum | Agg::Avg, crate::colbatch::ColumnData::Real(vals)) => {
                            for (i, &g) in idxs.iter().enumerate() {
                                if !col.is_null(i) {
                                    let acc = &mut self.groups[g as usize].1[s];
                                    acc.seen += 1;
                                    acc.fsum += f64::from(vals[i]);
                                    acc.ints_only = false;
                                }
                            }
                        }
                        (Agg::Sum | Agg::Avg, crate::colbatch::ColumnData::Float(vals)) => {
                            for (i, &g) in idxs.iter().enumerate() {
                                if !col.is_null(i) {
                                    let acc = &mut self.groups[g as usize].1[s];
                                    acc.seen += 1;
                                    acc.fsum += vals[i];
                                    acc.ints_only = false;
                                }
                            }
                        }
                        // MIN/MAX (any type) and SUM over text (a type
                        // error, reported exactly as the row path reports
                        // it) go through the shared fold.
                        _ => {
                            for (i, &g) in idxs.iter().enumerate() {
                                if !col.is_null(i) {
                                    fold_value(
                                        spec.agg,
                                        &mut self.groups[g as usize].1[s],
                                        col.value(i),
                                    )?;
                                }
                            }
                        }
                    }
                }
                // Computed arguments: evaluate on a reused scratch row.
                arg => {
                    let mut scratch = Row(Vec::with_capacity(batch.num_cols()));
                    for (i, &g) in idxs.iter().enumerate() {
                        batch.read_row_into(i, &mut scratch.0);
                        let v = arg.eval(&scratch)?;
                        if !v.is_null() {
                            fold_value(spec.agg, &mut self.groups[g as usize].1[s], v)?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Emit one `[group_key?, agg_0, ...]` row per group, ordered by key.
    pub fn finish(self) -> DbResult<Vec<Row>> {
        self.groups
            .into_iter()
            .map(|(key, accs)| {
                let mut out: Vec<Value> = Vec::new();
                if let Some(k) = key {
                    out.push(k);
                }
                for (spec, acc) in self.aggs.iter().zip(accs) {
                    out.push(finish_one(spec.agg, acc)?);
                }
                Ok(Row(out))
            })
            .collect()
    }
}

/// Fold one non-NULL value into an accumulator (shared by the row-at-a-
/// time and columnar update paths, so their semantics cannot drift).
fn fold_value(agg: Agg, acc: &mut Acc, v: Value) -> DbResult<()> {
    acc.seen += 1;
    match agg {
        Agg::Min => {
            if acc.min.as_ref().is_none_or(|m| v.total_cmp(m) == Ordering::Less) {
                acc.min = Some(v);
            }
        }
        Agg::Max => {
            if acc.max.as_ref().is_none_or(|m| v.total_cmp(m) == Ordering::Greater) {
                acc.max = Some(v);
            }
        }
        Agg::Sum | Agg::Avg => {
            acc.fsum += v.as_f64()?;
            match v {
                Value::Int(i) => acc.isum += i128::from(i),
                Value::BigInt(i) => acc.isum += i128::from(i),
                _ => acc.ints_only = false,
            }
        }
        Agg::Count => unreachable!("COUNT never folds values"),
    }
    Ok(())
}

fn finish_one(agg: Agg, acc: Acc) -> DbResult<Value> {
    if agg == Agg::Count {
        return Ok(Value::BigInt(acc.count as i64));
    }
    // SQL: aggregates over no non-NULL input are NULL.
    if acc.seen == 0 {
        return Ok(Value::Null);
    }
    Ok(match agg {
        Agg::Count => unreachable!("handled above"),
        Agg::Min => acc.min.expect("seen > 0 implies a min"),
        Agg::Max => acc.max.expect("seen > 0 implies a max"),
        Agg::Sum if acc.ints_only => {
            let s = i64::try_from(acc.isum)
                .map_err(|_| DbError::TypeError("SUM overflows BIGINT".into()))?;
            Value::BigInt(s)
        }
        Agg::Sum => Value::Float(acc.fsum),
        // For all-integer input, divide the exact integer sum to avoid
        // inheriting the float accumulator's rounding.
        Agg::Avg if acc.ints_only => Value::Float(acc.isum as f64 / acc.seen as f64),
        Agg::Avg => Value::Float(acc.fsum / acc.seen as f64),
    })
}

fn cmp_opt(a: &Option<Value>, b: &Option<Value>) -> Ordering {
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => x.total_cmp(y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn rows() -> Vec<Row> {
        (0..10)
            .map(|i| Row(vec![Value::Int(i), Value::Float(f64::from(i) * 1.5), Value::Int(i % 3)]))
            .collect()
    }

    #[test]
    fn filter_keeps_matches() {
        let pred = Expr::Col(0).bin(BinOp::Ge, Expr::lit(7i32));
        let out = filter(rows(), &pred).unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn project_evaluates_select_list() {
        let out = project(&rows(), &[Expr::Col(1).bin(BinOp::Mul, Expr::lit(2.0))]).unwrap();
        assert_eq!(out[3].f64(0).unwrap(), 9.0);
        assert_eq!(out[0].arity(), 1);
    }

    #[test]
    fn join_matches_on_predicate() {
        let left = rows();
        let right = vec![Row(vec![Value::Int(2)]), Row(vec![Value::Int(5)])];
        // left.col2 == right.col0 (concatenated index 3).
        let on = Expr::Col(2).bin(BinOp::Eq, Expr::Col(3));
        let out = nested_loop_join(&left, &right, &on).unwrap();
        // col2 = i % 3 in {2, 5}: only 2 matches (i = 2, 5, 8).
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.arity() == 4));
    }

    #[test]
    fn hash_join_matches_nested_loop_on_typed_equality() {
        let left = rows();
        let right = vec![
            Row(vec![Value::Int(2), Value::Float(20.0)]),
            Row(vec![Value::Int(5), Value::Float(50.0)]),
            Row(vec![Value::Int(2), Value::Float(21.0)]), // duplicate key
        ];
        let on = Expr::Col(2).bin(BinOp::Eq, Expr::Col(3));
        let slow = nested_loop_join(&left, &right, &on).unwrap();
        let fast = hash_join(&left, &right, 2, 0);
        assert_eq!(fast, slow, "hash join must be a drop-in for the nested loop");
        // i % 3 == 2 for i in {2, 5, 8}, each matching both Int(2) rows.
        assert_eq!(fast.len(), 6);
        assert!(fast.iter().all(|r| r.arity() == 5));
    }

    #[test]
    fn hash_join_null_keys_match_nothing() {
        let left = vec![Row(vec![Value::Null]), Row(vec![Value::Int(1)])];
        let right = vec![Row(vec![Value::Null]), Row(vec![Value::Int(1)])];
        let out = hash_join(&left, &right, 0, 0);
        assert_eq!(out.len(), 1, "NULL = NULL is not true in SQL");
        assert_eq!(out[0], Row(vec![Value::Int(1), Value::Int(1)]));
    }

    #[test]
    fn hash_join_of_empty_inputs() {
        assert!(hash_join(&[], &rows(), 0, 0).is_empty());
        assert!(hash_join(&rows(), &[], 0, 0).is_empty());
    }

    #[test]
    fn hash_join_counts_output_rows() {
        obs::set_enabled(true);
        let before = super::hash_join_rows().get();
        let left = vec![Row(vec![Value::Int(7)])];
        let right = vec![Row(vec![Value::Int(7)]), Row(vec![Value::Int(7)])];
        let out = hash_join(&left, &right, 0, 0);
        assert_eq!(out.len(), 2);
        assert!(
            super::hash_join_rows().get() >= before + 2,
            "hash_join_rows must count emitted rows"
        );
    }

    #[test]
    fn cross_join_cardinality() {
        let out = cross_join(&rows(), &rows());
        assert_eq!(out.len(), 100);
        assert_eq!(out[0].arity(), 6);
    }

    #[test]
    fn sort_and_limit() {
        let mut r = rows();
        r.reverse();
        let sorted = sort_by_cols(r, &[2, 0]);
        assert_eq!(sorted[0][2], Value::Int(0));
        assert_eq!(sorted[0][0], Value::Int(0));
        let top = limit(sorted, 4);
        assert_eq!(top.len(), 4);
    }

    #[test]
    fn global_aggregates() {
        let out = aggregate(
            &rows(),
            None,
            &[
                AggSpec { agg: Agg::Count, arg: Expr::lit(0i32) },
                AggSpec { agg: Agg::Min, arg: Expr::Col(1) },
                AggSpec { agg: Agg::Max, arg: Expr::Col(1) },
                AggSpec { agg: Agg::Avg, arg: Expr::Col(0) },
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0][0], Value::BigInt(10));
        assert_eq!(out[0].f64(1).unwrap(), 0.0);
        assert_eq!(out[0].f64(2).unwrap(), 13.5);
        assert_eq!(out[0].f64(3).unwrap(), 4.5);
    }

    #[test]
    fn grouped_count() {
        let out = aggregate(
            &rows(),
            Some(2),
            &[AggSpec { agg: Agg::Count, arg: Expr::lit(0i32) }],
        )
        .unwrap();
        // Groups 0,1,2 with counts 4,3,3.
        assert_eq!(out.len(), 3);
        assert_eq!(out[0][0], Value::Int(0));
        assert_eq!(out[0][1], Value::BigInt(4));
        assert_eq!(out[1][1], Value::BigInt(3));
    }

    #[test]
    fn aggregate_of_empty_input() {
        let out = aggregate(&[], None, &[AggSpec { agg: Agg::Count, arg: Expr::lit(0i32) }])
            .unwrap();
        assert!(out.is_empty(), "no rows means no groups, as in SQL GROUP BY");
    }

    #[test]
    fn min_of_all_null_group_is_null() {
        let rows = vec![Row(vec![Value::Int(1), Value::Null])];
        let out = aggregate(&rows, None, &[AggSpec { agg: Agg::Min, arg: Expr::Col(1) }]).unwrap();
        assert!(out[0][0].is_null(), "MIN over all-NULL input is NULL in SQL");
    }

    #[test]
    fn avg_ignores_nulls() {
        let rows = vec![
            Row(vec![Value::Float(2.0)]),
            Row(vec![Value::Null]),
            Row(vec![Value::Float(4.0)]),
        ];
        let out = aggregate(&rows, None, &[AggSpec { agg: Agg::Avg, arg: Expr::Col(0) }]).unwrap();
        assert_eq!(out[0].f64(0).unwrap(), 3.0);
    }

    /// Deterministic pseudo-property sweep (the proptest version lives in
    /// `tests/prop_sql_topn.rs`): many seeded row sets with heavy ties and
    /// NULLs, every (keys, n) combination checked against stable
    /// sort-then-truncate.
    #[test]
    fn top_n_heap_sweeps_identical_to_sort_truncate() {
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let len = (next() % 70) as usize;
            let data: Vec<Row> = (0..len)
                .map(|_| {
                    let mut v = |m: u64| -> Value {
                        match next() % m {
                            0 => Value::Null,
                            k => Value::BigInt((k % 5) as i64 - 2),
                        }
                    };
                    Row(vec![v(6), v(4), Value::Float((next() % 3) as f64 / 2.0)])
                })
                .collect();
            let keys: Vec<(usize, bool)> = match trial % 4 {
                0 => vec![(0, false)],
                1 => vec![(0, true)],
                2 => vec![(1, false), (2, true)],
                _ => vec![(2, true), (0, false), (1, true)],
            };
            for n in [0, 1, 3, len / 2, len, len + 5] {
                let mut heap = TopN::new(keys.clone(), n);
                for r in data.clone() {
                    heap.push(r);
                }
                let got = heap.finish();
                let mut want = sort_by_keys(data.clone(), &keys);
                want.truncate(n);
                assert_eq!(got, want, "trial {trial}, n={n}, keys {keys:?}");
            }
        }
    }
}
