//! Scalar expressions over rows.
//!
//! A small expression tree covering what the paper's SQL actually computes
//! in queries: column references, literals, arithmetic, comparisons with
//! `BETWEEN`, boolean connectives, and the few scalar functions MaxBCG
//! leans on (`POWER`, `LOG`, `ABS`, `FLOOR`). Booleans follow SQL
//! three-valued logic far enough for these workloads: any comparison with
//! NULL is NULL, and filters keep only rows evaluating to true.

use crate::error::{DbError, DbResult};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Unary scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// Absolute value.
    Abs,
    /// Natural logarithm (T-SQL `LOG`).
    Log,
    /// `FLOOR`.
    Floor,
    /// Square root.
    Sqrt,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column by position.
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// `POWER(base, exp)`.
    Power(Box<Expr>, Box<Expr>),
    /// Unary scalar function.
    Call(Func, Box<Expr>),
    /// `a BETWEEN lo AND hi` (inclusive both ends, like SQL).
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `NOT a`.
    Not(Box<Expr>),
    /// `a IS NULL`.
    IsNull(Box<Expr>),
}

impl Expr {
    /// Column reference by name, resolved against a schema.
    pub fn col(schema: &Schema, name: &str) -> DbResult<Expr> {
        Ok(Expr::Col(schema.col(name)?))
    }

    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Builder: `self op other`.
    pub fn bin(self, op: BinOp, other: Expr) -> Expr {
        Expr::Bin(op, Box::new(self), Box::new(other))
    }

    /// Builder: `self BETWEEN lo AND hi`.
    pub fn between(self, lo: Expr, hi: Expr) -> Expr {
        Expr::Between(Box::new(self), Box::new(lo), Box::new(hi))
    }

    /// Builder: `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.bin(BinOp::And, other)
    }

    /// Evaluate against a row. Comparisons yield `Int(1)`, `Int(0)`, or
    /// `Null`.
    pub fn eval(&self, row: &Row) -> DbResult<Value> {
        match self {
            Expr::Col(i) => row
                .values()
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::TypeError(format!("column index {i} out of range"))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Bin(op, a, b) => {
                let a = a.eval(row)?;
                let b = b.eval(row)?;
                eval_bin(*op, a, b)
            }
            Expr::Power(base, exp) => {
                let base = base.eval(row)?;
                let exp = exp.eval(row)?;
                if base.is_null() || exp.is_null() {
                    return Ok(Value::Null);
                }
                Ok(Value::Float(base.as_f64()?.powf(exp.as_f64()?)))
            }
            Expr::Call(f, a) => {
                let v = a.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let x = v.as_f64()?;
                Ok(Value::Float(match f {
                    Func::Abs => x.abs(),
                    Func::Log => x.ln(),
                    Func::Floor => x.floor(),
                    Func::Sqrt => x.sqrt(),
                }))
            }
            Expr::Between(v, lo, hi) => {
                let v = v.eval(row)?;
                let lo = lo.eval(row)?;
                let hi = hi.eval(row)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let ge = eval_bin(BinOp::Ge, v.clone(), lo)?;
                let le = eval_bin(BinOp::Le, v, hi)?;
                eval_bin(BinOp::And, ge, le)
            }
            Expr::Not(a) => match a.eval(row)? {
                Value::Null => Ok(Value::Null),
                v => Ok(Value::Int(i32::from(!truthy(&v)?))),
            },
            Expr::IsNull(a) => Ok(Value::Int(i32::from(a.eval(row)?.is_null()))),
        }
    }

    /// Evaluate as a filter predicate: NULL counts as false, as in SQL
    /// `WHERE`.
    pub fn matches(&self, row: &Row) -> DbResult<bool> {
        match self.eval(row)? {
            Value::Null => Ok(false),
            v => truthy(&v),
        }
    }

    /// Visit every column position referenced by this expression.
    pub fn for_each_col(&self, f: &mut impl FnMut(usize)) {
        match self {
            Expr::Col(i) => f(*i),
            Expr::Lit(_) => {}
            Expr::Bin(_, a, b) | Expr::Power(a, b) => {
                a.for_each_col(f);
                b.for_each_col(f);
            }
            Expr::Call(_, a) | Expr::Not(a) | Expr::IsNull(a) => a.for_each_col(f),
            Expr::Between(v, lo, hi) => {
                v.for_each_col(f);
                lo.for_each_col(f);
                hi.for_each_col(f);
            }
        }
    }

    /// All referenced column positions, sorted and deduplicated.
    pub fn col_refs(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        self.for_each_col(&mut |c| cols.push(c));
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// A copy of this expression with every column position rewritten by
    /// `f` (the planner uses this to re-base predicates pushed below a
    /// join onto the base table's own column positions).
    pub fn map_cols(&self, f: &impl Fn(usize) -> usize) -> Expr {
        match self {
            Expr::Col(i) => Expr::Col(f(*i)),
            Expr::Lit(v) => Expr::Lit(v.clone()),
            Expr::Bin(op, a, b) => {
                Expr::Bin(*op, Box::new(a.map_cols(f)), Box::new(b.map_cols(f)))
            }
            Expr::Power(a, b) => {
                Expr::Power(Box::new(a.map_cols(f)), Box::new(b.map_cols(f)))
            }
            Expr::Call(func, a) => Expr::Call(*func, Box::new(a.map_cols(f))),
            Expr::Between(v, lo, hi) => Expr::Between(
                Box::new(v.map_cols(f)),
                Box::new(lo.map_cols(f)),
                Box::new(hi.map_cols(f)),
            ),
            Expr::Not(a) => Expr::Not(Box::new(a.map_cols(f))),
            Expr::IsNull(a) => Expr::IsNull(Box::new(a.map_cols(f))),
        }
    }

    /// Split a predicate into its top-level AND conjuncts. Filtering each
    /// conjunct independently keeps exactly the rows the conjunction
    /// keeps: a row passes iff every conjunct evaluates to true, and SQL's
    /// NULL-counts-as-false rule distributes over AND.
    pub fn split_conjuncts(self) -> Vec<Expr> {
        match self {
            Expr::Bin(BinOp::And, a, b) => {
                let mut out = a.split_conjuncts();
                out.extend(b.split_conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuild a conjunction from conjuncts (`None` for an empty list).
    pub fn join_conjuncts(conjuncts: Vec<Expr>) -> Option<Expr> {
        conjuncts.into_iter().reduce(|a, b| a.and(b))
    }
}

fn truthy(v: &Value) -> DbResult<bool> {
    Ok(v.as_f64()? != 0.0)
}

fn eval_bin(op: BinOp, a: Value, b: Value) -> DbResult<Value> {
    use BinOp::*;
    // SQL semantics: NULL propagates through every operator except that
    // AND/OR shortcut when the other side decides the result.
    match op {
        And => {
            return Ok(match (null_bool(&a)?, null_bool(&b)?) {
                (Some(false), _) | (_, Some(false)) => Value::Int(0),
                (Some(true), Some(true)) => Value::Int(1),
                _ => Value::Null,
            });
        }
        Or => {
            return Ok(match (null_bool(&a)?, null_bool(&b)?) {
                (Some(true), _) | (_, Some(true)) => Value::Int(1),
                (Some(false), Some(false)) => Value::Int(0),
                _ => Value::Null,
            });
        }
        _ => {}
    }
    if a.is_null() || b.is_null() {
        return Ok(Value::Null);
    }
    // Text equality is the only text operation needed (CasJobs lookups).
    if let (Value::Text(x), Value::Text(y)) = (&a, &b) {
        return match op {
            Eq => Ok(Value::Int(i32::from(x == y))),
            Ne => Ok(Value::Int(i32::from(x != y))),
            Lt => Ok(Value::Int(i32::from(x < y))),
            Le => Ok(Value::Int(i32::from(x <= y))),
            Gt => Ok(Value::Int(i32::from(x > y))),
            Ge => Ok(Value::Int(i32::from(x >= y))),
            _ => Err(DbError::TypeError("arithmetic on text".into())),
        };
    }
    let x = a.as_f64()?;
    let y = b.as_f64()?;
    Ok(match op {
        Add => Value::Float(x + y),
        Sub => Value::Float(x - y),
        Mul => Value::Float(x * y),
        Div => Value::Float(x / y),
        Lt => Value::Int(i32::from(x < y)),
        Le => Value::Int(i32::from(x <= y)),
        Gt => Value::Int(i32::from(x > y)),
        Ge => Value::Int(i32::from(x >= y)),
        Eq => Value::Int(i32::from(x == y)),
        Ne => Value::Int(i32::from(x != y)),
        And | Or => unreachable!("handled above"),
    })
}

fn null_bool(v: &Value) -> DbResult<Option<bool>> {
    if v.is_null() {
        Ok(None)
    } else {
        Ok(Some(truthy(v)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row(vec![
            Value::BigInt(42),
            Value::Float(180.5),
            Value::Real(2.5),
            Value::Null,
            Value::Text("abc".into()),
        ])
    }

    #[test]
    fn column_and_literal() {
        let r = row();
        assert_eq!(Expr::Col(0).eval(&r).unwrap(), Value::BigInt(42));
        assert_eq!(Expr::lit(7i32).eval(&r).unwrap(), Value::Int(7));
        assert!(Expr::Col(99).eval(&r).is_err());
    }

    #[test]
    fn arithmetic() {
        let r = row();
        let e = Expr::Col(1).bin(BinOp::Add, Expr::lit(0.5));
        assert_eq!(e.eval(&r).unwrap().as_f64().unwrap(), 181.0);
        let e = Expr::Power(Box::new(Expr::lit(2.0)), Box::new(Expr::lit(10.0)));
        assert_eq!(e.eval(&r).unwrap().as_f64().unwrap(), 1024.0);
    }

    #[test]
    fn between_is_inclusive() {
        let r = row();
        let e = Expr::Col(1).between(Expr::lit(180.5), Expr::lit(200.0));
        assert!(e.matches(&r).unwrap());
        let e = Expr::Col(1).between(Expr::lit(180.6), Expr::lit(200.0));
        assert!(!e.matches(&r).unwrap());
    }

    #[test]
    fn null_comparisons_are_null_and_filter_false() {
        let r = row();
        let e = Expr::Col(3).bin(BinOp::Eq, Expr::lit(1.0));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        assert!(!e.matches(&r).unwrap());
        let e = Expr::IsNull(Box::new(Expr::Col(3)));
        assert!(e.matches(&r).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let r = row();
        let null = Expr::Col(3).bin(BinOp::Eq, Expr::lit(1.0));
        // false AND NULL = false
        let e = Expr::lit(0i32).bin(BinOp::And, null.clone());
        assert_eq!(e.eval(&r).unwrap(), Value::Int(0));
        // true OR NULL = true
        let e = Expr::lit(1i32).bin(BinOp::Or, null.clone());
        assert_eq!(e.eval(&r).unwrap(), Value::Int(1));
        // true AND NULL = NULL
        let e = Expr::lit(1i32).bin(BinOp::And, null);
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn scalar_functions() {
        let r = row();
        assert_eq!(
            Expr::Call(Func::Abs, Box::new(Expr::lit(-3.0))).eval(&r).unwrap().as_f64().unwrap(),
            3.0
        );
        let ln = Expr::Call(Func::Log, Box::new(Expr::lit(std::f64::consts::E)));
        assert!((ln.eval(&r).unwrap().as_f64().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(
            Expr::Call(Func::Floor, Box::new(Expr::lit(2.9))).eval(&r).unwrap().as_f64().unwrap(),
            2.0
        );
        assert_eq!(
            Expr::Call(Func::Sqrt, Box::new(Expr::lit(16.0))).eval(&r).unwrap().as_f64().unwrap(),
            4.0
        );
    }

    #[test]
    fn text_comparisons() {
        let r = row();
        let e = Expr::Col(4).bin(BinOp::Eq, Expr::lit("abc"));
        assert!(e.matches(&r).unwrap());
        let e = Expr::Col(4).bin(BinOp::Lt, Expr::lit("abd"));
        assert!(e.matches(&r).unwrap());
        let e = Expr::Col(4).bin(BinOp::Add, Expr::lit("x"));
        assert!(e.eval(&r).is_err());
    }

    #[test]
    fn not_inverts() {
        let r = row();
        let e = Expr::Not(Box::new(Expr::lit(0i32)));
        assert!(e.matches(&r).unwrap());
    }
}
